// Benchmark harness regenerating every experiment in DESIGN.md's index
// (E1–E7 and the substrate microbenchmarks). The paper is theoretical, so
// each "table" is a theorem rendered measurable: benches report rounds,
// messages and convergence as custom metrics next to the formula values,
// and EXPERIMENTS.md records the paper-vs-measured comparison produced by
// `go test -bench=. -benchmem`.
package treeaa

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"treeaa/internal/adversary"
	"treeaa/internal/async"
	"treeaa/internal/baseline"
	"treeaa/internal/core"
	"treeaa/internal/crashaa"
	"treeaa/internal/exactaa"
	"treeaa/internal/lowerbound"
	"treeaa/internal/realaa"
	"treeaa/internal/sim"
	"treeaa/internal/simbench"
	"treeaa/internal/tree"
)

// spreadInputs places n party inputs roughly evenly across the vertex range.
func spreadInputs(tr *tree.Tree, n int) []tree.VertexID {
	inputs := make([]tree.VertexID, n)
	for i := range inputs {
		inputs[i] = tree.VertexID(i * (tr.NumVertices() - 1) / max(n-1, 1))
	}
	return inputs
}

// BenchmarkE1RealAARounds measures RealAA's fixed-schedule round count
// against Theorem 3's R_RealAA(D, eps) formula across input spreads and
// party counts. The n=64 cases double as the substrate throughput gauge:
// they exercise the multi-word suspicion masks and put ~4x more gradecast
// instances per round through the engine than the paper-scale n=7 runs.
func BenchmarkE1RealAARounds(b *testing.B) {
	for _, n := range []int{7, 64} {
		t := (n - 1) / 3
		for _, d := range []float64{10, 100, 1e4, 1e6} {
			b.Run(fmt.Sprintf("n=%d/D=%g", n, d), func(b *testing.B) {
				inputs := make([]float64, n)
				for i := range inputs {
					inputs[i] = d * float64(i) / float64(n-1)
				}
				var rounds int
				for i := 0; i < b.N; i++ {
					outputs, _, err := realaa.RunReal(n, t, inputs, d, 1, true, nil)
					if err != nil {
						b.Fatal(err)
					}
					rounds = 3*realaa.Iterations(d, 1) + 1
					_ = outputs
				}
				b.ReportMetric(float64(rounds), "rounds")
				b.ReportMetric(float64(realaa.Rounds(d, 1)), "theoryR_RealAA")
			})
		}
	}
}

// BenchmarkE1RealAABatch runs the whole E1 diameter sweep as a single
// sim.RunBatch call: the four executions are independent deterministic
// protocol runs, so the batch runner spreads them across cores. Comparing
// its ns/op against the summed BenchmarkE1RealAARounds n=7 cases measures
// the sweep-level speedup the parallel runner buys.
func BenchmarkE1RealAABatch(b *testing.B) {
	n, t := 7, 2
	ds := []float64{10, 100, 1e4, 1e6}
	cfgs := make([]sim.Config, len(ds))
	for i, d := range ds {
		cfgs[i] = sim.Config{N: n, MaxCorrupt: t, MaxRounds: 3*realaa.Iterations(d, 1) + 2}
	}
	machinesFor := func(i int) []sim.Machine {
		d := ds[i]
		inputs := make([]float64, n)
		for p := range inputs {
			inputs[p] = d * float64(p) / float64(n-1)
		}
		machines := make([]sim.Machine, n)
		for p := 0; p < n; p++ {
			m, err := realaa.NewMachine(realaa.Config{
				N: n, T: t, ID: sim.PartyID(p), Tag: "real", StartRound: 1,
				Input: inputs[p], Iterations: realaa.Iterations(d, 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			machines[p] = m
		}
		return machines
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunBatch(cfgs, machinesFor); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1ConvergenceUnderSplitVote measures how many iterations honest
// values stay divergent under the strongest implemented attack, which
// Theorem 1 says can be as many as ~t.
func BenchmarkE1ConvergenceUnderSplitVote(b *testing.B) {
	for _, nt := range [][2]int{{7, 2}, {10, 3}, {16, 5}} {
		n, t := nt[0], nt[1]
		b.Run(fmt.Sprintf("n=%d_t=%d", n, t), func(b *testing.B) {
			inputs := make([]float64, n)
			for i := range inputs {
				// Non-symmetric spread: symmetric inputs can neutralize the
				// splitter by coincidence of trimmed windows.
				inputs[i] = float64((i*37 + 13) % 101)
			}
			iters := realaa.Iterations(100, 1)
			var divergent int
			for i := 0; i < b.N; i++ {
				ids := adversary.FirstParties(n, t)
				adv := &adversary.SplitVote{IDs: ids, N: n, T: t, Tag: "real", PerIteration: 1}
				_, histories, err := realaa.RunReal(n, t, inputs, 100, 1, true, adv)
				if err != nil {
					b.Fatal(err)
				}
				divergent = realaa.DivergentIterations(histories, 1e-12)
				_ = iters
			}
			b.ReportMetric(float64(divergent), "divergent_iters")
			b.ReportMetric(float64(t), "budget_t")
		})
	}
}

// BenchmarkE2TreeAARounds sweeps tree families and sizes, reporting measured
// TreeAA rounds next to the c·log|V|/loglog|V| theory curve (Theorem 4).
func BenchmarkE2TreeAARounds(b *testing.B) {
	families := []struct {
		name string
		mk   func(size int) *tree.Tree
	}{
		{"path", tree.NewPath},
		{"caterpillar", func(s int) *tree.Tree { return tree.NewCaterpillar(s/3, 2) }},
		{"spider", func(s int) *tree.Tree { return tree.NewSpider(4, s/4) }},
		{"random", func(s int) *tree.Tree { return tree.RandomPruefer(s, rand.New(rand.NewSource(7))) }},
	}
	for _, f := range families {
		for _, size := range []int{64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/V=%d", f.name, size), func(b *testing.B) {
				tr := f.mk(size)
				n, t := 4, 1
				inputs := spreadInputs(tr, n)
				var res *core.Result
				var err error
				for i := 0; i < b.N; i++ {
					res, err = core.Run(tr, n, t, inputs, nil)
					if err != nil {
						b.Fatal(err)
					}
				}
				v := float64(tr.NumVertices())
				b.ReportMetric(float64(res.Rounds), "rounds")
				b.ReportMetric(math.Log2(v)/math.Log2(math.Log2(v)), "logV_loglogV")
				b.ReportMetric(float64(res.Messages), "msgs")
			})
		}
	}
}

// BenchmarkE3LowerBound computes the Theorem 2 machinery (exact partition
// sup, minimal R with K <= 1) across scales — the paper's lower-bound table.
func BenchmarkE3LowerBound(b *testing.B) {
	for _, tc := range []struct {
		d    float64
		n, t int
	}{
		{1e3, 10, 3}, {1e6, 10, 3}, {1e6, 100, 33}, {1e12, 1000, 333},
	} {
		b.Run(fmt.Sprintf("D=%g_n=%d", tc.d, tc.n), func(b *testing.B) {
			var lb int
			for i := 0; i < b.N; i++ {
				lb = lowerbound.MinRounds(tc.d, tc.n, tc.t)
			}
			b.ReportMetric(float64(lb), "minRounds")
			b.ReportMetric(lowerbound.Theorem2Formula(tc.d, tc.n, tc.t), "thm2formula")
		})
	}
}

// BenchmarkE4DetectVsNoDetect is the paper's central ablation (Section 4):
// RealAA's detect-and-ignore vs the classic DLPSW trimmed midpoint, both
// under their strongest implemented per-protocol splitter. Two metrics per
// protocol: the fixed worst-case round budget (where the asymptotic
// advantage only bites for astronomical D/eps due to the constant 7), and
// the *measured* rounds until the honest range actually dropped to eps
// under attack — where detection wins whenever t < log2(D/eps), because the
// attack budget burns out after ~t iterations while DLPSW is forced to a
// full halving ladder.
func BenchmarkE4DetectVsNoDetect(b *testing.B) {
	n, t := 10, 3
	d := 1e6
	inputs := make([]float64, n)
	for i := range inputs {
		inputs[i] = d * float64((i*37+13)%101) / 101
	}
	measured := func(histories map[sim.PartyID][]float64, roundsPerIter int) float64 {
		return float64(realaa.ConvergenceRound(histories, 1, roundsPerIter))
	}
	b.Run("RealAA", func(b *testing.B) {
		var conv float64
		for i := 0; i < b.N; i++ {
			ids := adversary.FirstParties(n, t)
			adv := &adversary.SplitVote{IDs: ids, N: n, T: t, Tag: "real", PerIteration: 1}
			_, histories, err := realaa.RunReal(n, t, inputs, d, 1, true, adv)
			if err != nil {
				b.Fatal(err)
			}
			conv = measured(histories, 3)
		}
		b.ReportMetric(float64(3*realaa.Iterations(d, 1)+1), "budget_rounds")
		b.ReportMetric(conv, "measured_rounds")
	})
	b.Run("DLPSW", func(b *testing.B) {
		var conv float64
		for i := 0; i < b.N; i++ {
			ids := adversary.FirstParties(n, t)
			adv := &adversary.DLPSWSplitter{IDs: ids, N: n, Tag: "real"}
			_, histories, err := realaa.RunReal(n, t, inputs, d, 1, false, adv)
			if err != nil {
				b.Fatal(err)
			}
			conv = measured(histories, 1)
		}
		b.ReportMetric(float64(realaa.DLPSWIterations(d, 1)+1), "budget_rounds")
		b.ReportMetric(conv, "measured_rounds")
	})
}

// BenchmarkE5TreeAAVsBaseline regenerates the headline comparison: TreeAA's
// O(log V / loglog V) rounds vs the iteration-based O(log D) baseline on
// high-diameter trees, plus the low-diameter regime where the baseline's
// D-dependence wins.
func BenchmarkE5TreeAAVsBaseline(b *testing.B) {
	shapes := []struct {
		name string
		tr   *tree.Tree
	}{
		{"highDiam_path1024_shortcut", tree.NewPath(1024)},    // Section 4 single phase
		{"highDiam_caterpillar", tree.NewCaterpillar(342, 2)}, // two-phase, D=343
		{"midDiam_spider", tree.NewSpider(4, 128)},
		{"lowDiam_binary", tree.NewCompleteKAry(2, 9)}, // 1023 vertices, D=18
	}
	for _, s := range shapes {
		n, t := 4, 1
		inputs := spreadInputs(s.tr, n)
		b.Run(s.name+"/TreeAA", func(b *testing.B) {
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Run(s.tr, n, t, inputs, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(res.Messages), "msgs")
		})
		b.Run(s.name+"/BaselineLogD", func(b *testing.B) {
			var res *sim.Result
			var err error
			for i := 0; i < b.N; i++ {
				_, res, err = baseline.Run(s.tr, n, t, inputs, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(res.Messages), "msgs")
		})
	}
}

// BenchmarkE5bExactAgreementCost shows the alternative TreeAA avoids
// (Section 6's remark): exact agreement via authenticated Byzantine
// broadcast costs t+1 = O(n) rounds, exploding as n grows while TreeAA's
// round count stays flat.
func BenchmarkE5bExactAgreementCost(b *testing.B) {
	tr := tree.NewPath(64)
	for _, n := range []int{4, 7, 13} {
		t := (n - 1) / 3
		inputs := spreadInputs(tr, n)
		b.Run(fmt.Sprintf("n=%d/DolevStrong", n), func(b *testing.B) {
			keys, err := exactaa.NewKeyring(n, nil)
			if err != nil {
				b.Fatal(err)
			}
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				_, res, err = exactaa.RunWithKeys(tr, keys, n, t, inputs, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
		})
		b.Run(fmt.Sprintf("n=%d/TreeAA", n), func(b *testing.B) {
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Run(tr, n, t, inputs, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
		})
	}
}

// BenchmarkE5cAsyncBaselineDepth measures the asynchronous NR-style tree
// protocol's causal depth (async rounds) across diameters — the model the
// paper's reference [33] lives in, where O(log D) "remains the state of the
// art". Depth per iteration is a constant (RBC + witness), so depth grows
// ~log D while sync TreeAA's rounds grow ~log V/loglog V.
func BenchmarkE5cAsyncBaselineDepth(b *testing.B) {
	for _, size := range []int{17, 65, 257} {
		b.Run(fmt.Sprintf("D=%d", size-1), func(b *testing.B) {
			tr := tree.NewPath(size)
			n, t := 4, 1
			inputs := spreadInputs(tr, n)
			d, _, _ := tr.Diameter()
			iters := async.TreeIterations(d)
			var depth int
			for i := 0; i < b.N; i++ {
				machines := make([]async.Machine, n)
				for p := 0; p < n; p++ {
					machines[p] = async.NewTreeAA(tr, n, t, async.PartyID(p), inputs[p], iters)
				}
				res, err := async.Run(async.Config{N: n, MaxDeliveries: 5_000_000}, machines)
				if err != nil {
					b.Fatal(err)
				}
				depth = res.Depth
			}
			b.ReportMetric(float64(depth), "async_depth")
			b.ReportMetric(float64(iters), "iterations")
			b.ReportMetric(math.Log2(float64(d)), "log2D")
		})
	}
}

// BenchmarkE6ResilienceSweep runs TreeAA at the maximum tolerated corruption
// (t = floor((n-1)/3)) under the SplitVote attack for growing n.
func BenchmarkE6ResilienceSweep(b *testing.B) {
	tr := tree.NewPath(128)
	for _, n := range []int{4, 7, 13, 22} {
		t := (n - 1) / 3
		b.Run(fmt.Sprintf("n=%d_t=%d", n, t), func(b *testing.B) {
			inputs := spreadInputs(tr, n)
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				ids := adversary.FirstParties(n, t)
				adv := &adversary.SplitVote{IDs: ids, N: n, T: t, Tag: core.TagPathsFinder, PerIteration: 1}
				res, err = core.Run(tr, n, t, inputs, adv)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(res.Messages), "msgs")
		})
	}
}

// BenchmarkE9CrashModel measures the crash-fault model of Fekete's papers
// [18, 19]: each partial crash splits the survivors' views once; divergent
// iterations equal the number of partial-crash rounds, and one clean round
// restores exact agreement.
func BenchmarkE9CrashModel(b *testing.B) {
	n := 8
	inputs := []float64{0, 100, 40, 60, 20, 80, 50, 30}
	var divergent int
	for i := 0; i < b.N; i++ {
		adv := &crashaa.PartialCrash{
			IDs:     []sim.PartyID{6, 7},
			Rounds:  []int{1, 2},
			Cutoffs: []int{3, 3},
		}
		_, histories, err := crashaa.Run(n, inputs, 5, adv)
		if err != nil {
			b.Fatal(err)
		}
		divergent = realaa.DivergentIterations(histories, 1e-12)
	}
	b.ReportMetric(float64(divergent), "divergent_iters")
	b.ReportMetric(2, "partial_crash_rounds")
}

// BenchmarkE7ExactAASigning isolates the cryptographic cost of the
// authenticated comparator (ed25519 sign+verify per chain hop).
func BenchmarkE7ExactAASigning(b *testing.B) {
	keys, err := exactaa.NewKeyring(8, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig := keys.Sign(0, "bench", 0, 5)
		if !keys.Verify(0, "bench", 0, 5, sig) {
			b.Fatal("verify failed")
		}
	}
}

// BenchmarkSimRound runs the sim-engine microbenchmark family from
// internal/simbench: sequential/concurrent/adversary round loops and the
// RunBatch parallel sweep runner. The same cases back `bench-rounds -json`
// (BENCH_sim.json), so CI-number comparisons and the committed snapshot
// measure identical workloads.
func BenchmarkSimRound(b *testing.B) {
	for _, c := range simbench.Cases() {
		b.Run(c.Name, c.Bench)
	}
}

// --- Substrate microbenchmarks (F3-adjacent: the ListConstruction and LCA
// machinery of Section 6 and the hull/safe-area machinery of Section 2).

func BenchmarkListConstruction(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 14, 1 << 17} {
		b.Run(fmt.Sprintf("V=%d", size), func(b *testing.B) {
			tr := tree.RandomPruefer(size, rand.New(rand.NewSource(3)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tree.ListConstruction(tr, tr.Root()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLCAQueries(b *testing.B) {
	tr := tree.RandomPruefer(1<<14, rand.New(rand.NewSource(5)))
	l, err := tree.ListConstruction(tr, tr.Root())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	n := tr.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := tree.VertexID(rng.Intn(n))
		v := tree.VertexID(rng.Intn(n))
		_ = l.LCA(u, v)
	}
}

func BenchmarkConvexHull(b *testing.B) {
	tr := tree.RandomPruefer(1<<14, rand.New(rand.NewSource(8)))
	rng := rand.New(rand.NewSource(9))
	s := make([]tree.VertexID, 16)
	for i := range s {
		s[i] = tree.VertexID(rng.Intn(tr.NumVertices()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.ConvexHull(s)
	}
}

func BenchmarkSafeArea(b *testing.B) {
	tr := tree.RandomPruefer(1<<12, rand.New(rand.NewSource(10)))
	rng := rand.New(rand.NewSource(11))
	m := make([]tree.VertexID, 16)
	for i := range m {
		m[i] = tree.VertexID(rng.Intn(tr.NumVertices()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.SafeArea(m, 5)
	}
}

func BenchmarkProjection(b *testing.B) {
	tr := tree.RandomPruefer(1<<14, rand.New(rand.NewSource(12)))
	_, a, c := tr.Diameter()
	path := tr.Path(a, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.ProjectAllOntoPath(path)
	}
}

func BenchmarkTreeAAEndToEnd(b *testing.B) {
	for _, n := range []int{4, 7, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tr := tree.NewPath(256)
			t := (n - 1) / 3
			inputs := spreadInputs(tr, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(tr, n, t, inputs, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
