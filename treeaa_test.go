package treeaa

import (
	"math/rand"
	"testing"
)

func TestFacadeRun(t *testing.T) {
	tr := NewPathTree(30)
	inputs := []VertexID{0, 29, 15, 7}
	res, err := Run(tr, 4, 1, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 4 {
		t.Fatalf("outputs = %d, want 4", len(res.Outputs))
	}
	for i, a := range res.Outputs {
		for j, b := range res.Outputs {
			if i != j && tr.Dist(a, b) > 1 {
				t.Errorf("outputs %s and %s too far apart", tr.Label(a), tr.Label(b))
			}
		}
	}
}

func TestFacadeBaseline(t *testing.T) {
	tr := NewSpiderTree(3, 5)
	inputs := []VertexID{0, 5, 10, 15}
	outputs, err := RunBaseline(tr, 4, 1, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outputs) != 4 {
		t.Fatalf("outputs = %d, want 4", len(outputs))
	}
}

func TestFacadeParse(t *testing.T) {
	tr, err := ParseTreeString("a - b\nb - c\n")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumVertices() != 3 {
		t.Errorf("vertices = %d", tr.NumVertices())
	}
	if _, err := ParseTreeString("a - b\nc - d\n"); err == nil {
		t.Error("disconnected input should fail")
	}
}

func TestFacadeGeneratorsAndBounds(t *testing.T) {
	if NewStarTree(10).NumVertices() != 10 {
		t.Error("star size")
	}
	if NewRandomTree(25, rand.New(rand.NewSource(1))).NumVertices() != 25 {
		t.Error("random size")
	}
	tr := NewPathTree(1000)
	ub := Rounds(tr)
	lb := LowerBoundRounds(999, 10, 3)
	if lb <= 0 || ub <= 0 {
		t.Fatalf("bounds: lb=%d ub=%d", lb, ub)
	}
	if ub < lb {
		t.Errorf("protocol budget %d below the lower bound %d", ub, lb)
	}
}

func TestFacadeBuilder(t *testing.T) {
	var b Builder
	b.AddEdge("root", "left")
	b.AddEdge("root", "right")
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inputs := []VertexID{tr.MustVertex("left"), tr.MustVertex("right"), tr.MustVertex("root"), tr.MustVertex("root")}
	res, err := Run(tr, 4, 1, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 4 {
		t.Errorf("outputs = %d", len(res.Outputs))
	}
}

func TestFacadeExact(t *testing.T) {
	tr := NewPathTree(15)
	inputs := []VertexID{0, 14, 7, 3, 10}
	outputs, err := RunExact(tr, 5, 2, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var first VertexID = -1
	for _, v := range outputs {
		if first == -1 {
			first = v
		}
		if v != first {
			t.Errorf("exact agreement violated: %v vs %v", v, first)
		}
	}
	if ExactRounds(2) != 4 {
		t.Errorf("ExactRounds(2) = %d, want 4", ExactRounds(2))
	}
}
