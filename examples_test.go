package treeaa

// Runtime regression for the example binaries: each must build, run to
// completion and print its key result lines. Skipped with -short (they
// spawn `go run` subprocesses).

import (
	"os/exec"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn subprocesses; skipped with -short")
	}
	cases := []struct {
		dir   string
		wants []string
	}{
		{"./examples/quickstart", []string{"1-Agreement true", "party 0 outputs"}},
		{"./examples/robotgathering", []string{"within distance", "gathers at"}},
		{"./examples/configtree", []string{"safe to serve traffic", "deploys"}},
		{"./examples/oracle", []string{"1-agreement reached at round", "RealAA under SplitVote"}},
		{"./examples/asynctree", []string{"depth=", "no scheduler can stop the protocol"}},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			out, err := exec.Command("go", "run", tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", tc.dir, err, out)
			}
			for _, want := range tc.wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", tc.dir, want, out)
				}
			}
		})
	}
}
