// Package treeaa is a Go implementation of round-optimal Byzantine
// Approximate Agreement on trees, reproducing "Brief Announcement: Towards
// Round-Optimal Approximate Agreement on Trees" (Fuchs, Ghinea, Parsaeian;
// PODC 2025).
//
// # Problem
//
// n parties hold vertices of a publicly known labeled tree T as inputs; up
// to t < n/3 parties are Byzantine. Every honest party must output a vertex
// such that all honest outputs are within distance 1 of each other
// (1-Agreement) and lie in the smallest subtree spanning the honest inputs
// (Validity).
//
// # What the library provides
//
//   - TreeAA, the paper's protocol: O(log|V(T)|/loglog|V(T)|) rounds via a
//     two-phase reduction to real-valued Approximate Agreement (Euler-list
//     flattening + projection onto an approximately-agreed path).
//   - The full substrate: labeled trees with convex-hull/projection/LCA
//     machinery, a synchronous lock-step simulator with rushing adaptive
//     adversaries, BDH gradecast, the RealAA building block, the classic
//     DLPSW baseline, an O(log D) iteration-based tree baseline, an
//     authenticated exact-agreement comparator (Dolev–Strong + tree median),
//     a library of Byzantine strategies, and Fekete lower-bound calculators.
//
// This root package is a thin façade over the internal packages for the
// most common entry points; examples/ and cmd/ show richer usage.
package treeaa

import (
	"io"
	"math/rand"

	"treeaa/internal/baseline"
	"treeaa/internal/core"
	"treeaa/internal/exactaa"
	"treeaa/internal/lowerbound"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// Tree is a labeled input-space tree. See the Parse*, New* and Builder
// constructors.
type Tree = tree.Tree

// VertexID identifies a vertex of a Tree.
type VertexID = tree.VertexID

// Builder incrementally constructs a Tree from labeled vertices and edges.
type Builder = tree.Builder

// PartyID identifies one of the n parties.
type PartyID = sim.PartyID

// Adversary is the interface Byzantine strategies implement; ready-made
// strategies live in internal/adversary and are exercised by cmd/ and the
// test suites.
type Adversary = sim.Adversary

// Result summarizes a TreeAA execution.
type Result = core.Result

// ParseTree reads a tree in the "a - b" edge-list format.
func ParseTree(r io.Reader) (*Tree, error) { return tree.Parse(r) }

// ParseTreeString reads a tree from an in-memory edge list.
func ParseTreeString(s string) (*Tree, error) { return tree.ParseString(s) }

// NewPathTree, NewStarTree, NewSpiderTree, NewRandomTree construct common
// input-space families with zero-padded numeric labels.
func NewPathTree(n int) *Tree                   { return tree.NewPath(n) }
func NewStarTree(n int) *Tree                   { return tree.NewStar(n) }
func NewSpiderTree(legs, legLen int) *Tree      { return tree.NewSpider(legs, legLen) }
func NewRandomTree(n int, rng *rand.Rand) *Tree { return tree.RandomPruefer(n, rng) }

// Run executes TreeAA for n parties with fault budget t on tr; inputs[i] is
// party i's input vertex and adv (nil for none) drives the Byzantine
// parties. It returns the honest parties' outputs and execution statistics.
func Run(tr *Tree, n, t int, inputs []VertexID, adv Adversary) (*Result, error) {
	return core.Run(tr, n, t, inputs, adv)
}

// RunBaseline executes the O(log D) iteration-based comparison protocol
// under the same conventions as Run.
func RunBaseline(tr *Tree, n, t int, inputs []VertexID, adv Adversary) (map[PartyID]VertexID, error) {
	out, _, err := baseline.Run(tr, n, t, inputs, adv)
	return out, err
}

// Rounds returns TreeAA's communication-round budget for tr: the paper's
// R_RealAA(2|V|,1) + R_RealAA(D(T),1) = O(log|V|/loglog|V|).
func Rounds(tr *Tree) int { return core.Rounds(tr) }

// LowerBoundRounds returns the smallest R for which Fekete's adapted bound
// permits 1-Agreement on a diameter-d input space with n parties and t
// faults (Theorem 2 machinery).
func LowerBoundRounds(d float64, n, t int) int { return lowerbound.MinRounds(d, n, t) }

// RunExact executes the authenticated exact-agreement comparator
// (Dolev–Strong broadcast + tree median, t < n/2, t+1 rounds) — the
// O(n)-round alternative the paper's PathsFinder avoids. A fresh ed25519
// keyring is generated per call.
func RunExact(tr *Tree, n, t int, inputs []VertexID, adv Adversary) (map[PartyID]VertexID, error) {
	out, _, err := exactaa.Run(tr, n, t, inputs, adv)
	return out, err
}

// ExactRounds returns the comparator's round budget (t+2: t+1 send rounds
// plus local processing).
func ExactRounds(t int) int { return exactaa.Rounds(t) }
