# treeaa — Round-Optimal Approximate Agreement on Trees
#
# Common developer entry points. Everything is stdlib-only Go >= 1.22.

GO ?= go

.PHONY: all build test race race-sim node-smoke overlay-smoke serve-smoke rolling-restart chaos-soak async-soak cover bench bench-sim bench-serve bench-compare scale-bench fuzz fuzz-short prop graph-prop check examples experiments clean

all: build test race-sim node-smoke overlay-smoke serve-smoke chaos-soak rolling-restart

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The sim engine's sequential/concurrent equivalence, the TCP transport's
# sim-equivalence, and the serving layer's per-session oracle identity must
# hold under the race detector; -short skips the 500-session load test,
# which serve-smoke covers from the outside.
race-sim:
	$(GO) test -race -short ./internal/sim/... ./internal/transport/... ./internal/session/...

# Multi-process smoke: spawn real cmd/node processes on loopback ports (an
# honest 3-node path cluster, then a 7-party splitvote deployment with the
# adversary host seat, then a block-graph deployment running TreeAA on the
# block-cut tree) and assert validity + agreement of the outputs.
node-smoke:
	$(GO) run ./cmd/node -cluster 3 -tree path:16
	$(GO) run ./cmd/node -cluster 7 -t 2 -tree path:40 -adversary splitvote
	$(GO) run ./cmd/node -cluster 4 -t 1 -space graph:cliquechain:3:4 -adversary splitvote

# Tree-overlay smoke: the same multi-process cmd/node deployments routed
# over a communication tree instead of the full mesh (leaves hold one
# connection), then a run with a mid-protocol sub-leader crash that must
# fail over and still agree.
overlay-smoke:
	$(GO) run ./cmd/node -cluster 7 -tree path:16 -overlay tree:2
	$(GO) run ./cmd/node -cluster 9 -t 2 -tree spider:3:3 -overlay tree:3 \
		-chaos 'crash:p1@r2'

# Serving-layer smoke: a 3-daemon loopback deployment hosting 100 concurrent
# sessions multiplexed over the shared links; exits non-zero if any session
# fails to decide or any Result diverges from the sequential sim.Run oracle.
# The second run turns on the journal and the observability endpoint and
# asserts /healthz and /metrics from the outside with curl while the
# cluster lingers.
serve-smoke:
	$(GO) run ./cmd/serve -cluster 3 -sessions 100 -tree spider:3:3
	@set -e; \
	$(GO) run ./cmd/serve -cluster 3 -sessions 100 -tree spider:3:3 \
		-journal-dir "$$(mktemp -d)" -metrics 127.0.0.1:9309 -overlay tree:2 -linger 8s & pid=$$!; \
	ok=0; for i in $$(seq 1 60); do \
		if curl -sf http://127.0.0.1:9309/healthz 2>/dev/null | grep -q ok; then ok=1; break; fi; \
		sleep 0.25; done; \
	if [ $$ok -ne 1 ]; then echo "serve-smoke: /healthz never became ready" >&2; kill $$pid 2>/dev/null; exit 1; fi; \
	for fam in treeaa_sessions_decided_total treeaa_journal_appends_total \
			treeaa_overlay_relayed_total treeaa_overlay_failovers_total treeaa_overlay_branching; do \
		if ! curl -sf http://127.0.0.1:9309/metrics | grep -q "^$$fam"; then \
			echo "serve-smoke: /metrics missing $$fam" >&2; kill $$pid 2>/dev/null; exit 1; fi; done; \
	wait $$pid; \
	echo "serve-smoke: /healthz and /metrics asserted over HTTP"

# Rolling-restart durability smoke: a journaled 4-daemon loopback cluster
# under continuous closed-loop load, each daemon restarted in turn; fails
# on any oracle mismatch or a restart the mesh fails to absorb.
rolling-restart:
	$(GO) run ./cmd/serve -cluster 4 -rolling -sessions 16 -tree spider:3:3

# Chaos safety soak (~30s): the race-instrumented chaos/transport suites
# (reconnect-resend, crash-restart byte-identity, golden fault schedules),
# then a real fault sweep — seeds × {latency, stall, drop, crash,
# partition, combined} plans × adversaries over the TCP substrate, every
# cell checked for honest-hull validity, 1-agreement, and byte-identity
# with the sequential sim.Run oracle. Exits non-zero on any violation.
chaos-soak:
	$(GO) test -race -count=1 ./internal/chaos/... ./internal/transport/...
	$(GO) run ./cmd/chaos -seeds 1-2 -trees path:16
	$(GO) run ./cmd/node -cluster 4 -t 1 -tree path:16 -adversary splitvote \
		-chaos 'lat:500µs±500µs,crash:p1@r2'

# Asynchronous-mode soak: every async suite under the race detector — RBC
# threshold boundaries, pipeline invariants, the event-driven transport
# driver, the serving layer's async engines, the checker's async cells, and
# the chaos latency battery whose headline cell (lat:200ms±150ms on one
# party's links) aborts the synchronous round barrier but decides
# asynchronously with validity + 1-agreement — then a multi-process cmd/node
# async fleet under a real latency plan, plus an async serving smoke. Exits
# non-zero on any validity/epsilon-agreement violation.
async-soak:
	$(GO) test -race -count=1 -run Async ./internal/async/... ./internal/chaos/... \
		./internal/session/... ./internal/transport/... ./internal/check/ ./internal/wire/
	$(GO) run ./cmd/node -cluster 4 -tree star:6 -mode async -chaos 'lat:20ms±15ms@p2'
	$(GO) run ./cmd/serve -cluster 3 -mode async -sessions 50 -tree spider:3:3

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -20

bench:
	$(GO) test -bench=. -benchmem ./...

# Engine microbenchmarks (the BenchmarkSimRound family); `go run
# ./cmd/bench-rounds -json > BENCH_sim.json` snapshots the same cases.
bench-sim:
	$(GO) test -run xxx -bench SimRound -benchmem .

# Serving-layer closed-loop load bench: sweeps a worker grid against a
# 4-daemon loopback cluster — journal off, then on — and snapshots
# sessions/sec + latency percentiles as BENCH_service.json (the E-serve
# and E-durable tables' source).
bench-serve:
	$(GO) run ./cmd/serve-bench -json -journal-dir auto > BENCH_service.json
	@cat BENCH_service.json

# Mesh-vs-tree scaling sweep: drives the crash-fault AA workload over the
# full TCP mesh (n = 16, 64) and the tree overlay (n = 128, 256, 512) on
# loopback, every run oracle-checked, and snapshots conns/node, frames,
# bytes and round latency as BENCH_scale.json (the E-scale table's source).
scale-bench:
	$(GO) run ./cmd/scale-bench -json > BENCH_scale.json
	@cat BENCH_scale.json

# Serving-layer perf regression gate: rerun the bench grid and fail if any
# cell drops below 80% of the committed BENCH_service.json sessions/sec,
# then rerun the scaling sweep and fail any row whose physical frames/round
# exceeds 1.25x its committed BENCH_scale.json value.
# (Machine-sensitive — run on hardware comparable to the committed rows.)
bench-compare:
	$(GO) run ./cmd/serve-bench -json -journal-dir auto -compare BENCH_service.json > /dev/null
	$(GO) run ./cmd/scale-bench -json -compare BENCH_scale.json > /dev/null

# Short fuzz pass over every fuzz target (tree parsing, Prüfer codec,
# Euler-list invariants, hull/safe-area cross-checks, wire decoding).
fuzz:
	$(GO) test -run FuzzDecode -fuzz FuzzDecode -fuzztime 30s ./internal/wire/
	$(GO) test -run FuzzParse -fuzz FuzzParse -fuzztime 30s ./internal/tree/
	$(GO) test -run FuzzPruefer -fuzz FuzzPruefer -fuzztime 30s ./internal/tree/
	$(GO) test -run FuzzEulerList -fuzz FuzzEulerList -fuzztime 30s ./internal/tree/
	$(GO) test -run FuzzConvexHullSafeArea -fuzz FuzzConvexHullSafeArea -fuzztime 30s ./internal/tree/

# Quick fuzz pass: the same targets as `fuzz` at 10s each, for use as a
# pre-commit gate. FuzzDecode starts from the committed corpus under
# testdata/wire/corpus/ so even the short budget begins at deep decoder
# states.
fuzz-short:
	$(GO) test -run FuzzDecode -fuzz FuzzDecode -fuzztime 10s ./internal/wire/
	$(GO) test -run FuzzParse -fuzz FuzzParse -fuzztime 10s ./internal/tree/
	$(GO) test -run FuzzPruefer -fuzz FuzzPruefer -fuzztime 10s ./internal/tree/
	$(GO) test -run FuzzEulerList -fuzz FuzzEulerList -fuzztime 10s ./internal/tree/
	$(GO) test -run FuzzConvexHullSafeArea -fuzz FuzzConvexHullSafeArea -fuzztime 10s ./internal/tree/

# Property-based protocol checking (deterministic): a bounded random
# exploration of (tree, inputs, adversary) cells with per-round invariant
# evaluation, plus the fixed differential matrix under the race detector.
# Async-compatible cells additionally run through the event-driven runtime
# under every adversarial scheduler (-async-every). Any violation prints a
# shrunk one-line repro spec and fails the target.
prop:
	$(GO) test -race -count=1 -run 'Differential|Async' ./internal/check/
	$(GO) run ./cmd/check -budget 100 -seeds 1-3 -async-every 4

# Block-graph property gate: the graph machine/decomposition suites under the
# race detector (including the driver-equivalence and TCP differentials),
# then 525 generated graph-only cells — cycles, cliques, clique chains,
# cacti, random block graphs × the full clause pool — each checked for
# geodesic-hull validity, the graph agreement guarantee, per-block hull
# non-expansion and block-cut-tree prefix agreement. Violations shrink to a
# one-line repro (block pruning, cycle shortening) replayable with -repro.
graph-prop:
	$(GO) test -race -count=1 ./internal/graph/
	$(GO) test -race -count=1 -run Graph ./internal/check/ ./internal/session/
	$(GO) run ./cmd/check -budget 175 -seeds 1-3 -space graph

# Tier-1-adjacent gate: build + vet + tests, a quick serve-bench cell (the
# serving layer under real closed-loop load, oracle-checked), then the
# property (tree and graph), short fuzz and async-soak passes.
check: build test bench-serve-smoke prop graph-prop fuzz-short async-soak

# One fast serve-bench cell as a smoke: small cluster, short window; fails
# on any oracle mismatch or client error.
.PHONY: bench-serve-smoke
bench-serve-smoke:
	$(GO) run ./cmd/serve-bench -cluster 3 -workers 16 -duration 2s

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/robotgathering
	$(GO) run ./examples/configtree
	$(GO) run ./examples/oracle
	$(GO) run ./examples/asynctree

# Regenerate the EXPERIMENTS.md measurements.
experiments:
	$(GO) run ./cmd/bench-rounds -sizes 64,256,1024,4096 -async -exact
	$(GO) run ./cmd/lowerbound
	$(GO) run ./cmd/adversary-eval

clean:
	rm -f cover.out test_output.txt bench_output.txt
