// Price-oracle aggregation on real values — the blockchain-oracle use case
// the paper cites [5]: n feeders hold slightly different observations of an
// asset price; up to t feeders are malicious and try to keep the quotes
// apart for as long as possible. This example contrasts the two real-valued
// protocols in the library, each under its strongest implemented attack:
//
//   - RealAA (gradecast + detect-and-ignore, the paper's building block [6]):
//     every attack iteration permanently burns attacker identities, so the
//     quotes collapse after ~t iterations;
//
//   - DLPSW (classic trimmed midpoint [12]): the same attackers equivocate
//     forever undetected, enforcing the halving floor for log2(D/eps)
//     iterations.
//
//     go run ./examples/oracle
package main

import (
	"fmt"
	"log"
	"math"

	"treeaa/internal/adversary"
	"treeaa/internal/realaa"
	"treeaa/internal/sim"
)

func main() {
	n, t := 10, 3
	// Feeder observations of a volatile asset: $65536 spread around $100k.
	// (Detection pays off when log2(spread/eps) exceeds ~3(t+1): RealAA
	// spends 3 rounds per iteration but only ~t+1 attacked iterations,
	// while DLPSW is forced through a full halving ladder.)
	base, spread := 100000.0, 65536.0
	inputs := make([]float64, n)
	for i := range inputs {
		inputs[i] = base + spread*float64((i*37+13)%101)/101
	}
	ids := adversary.FirstParties(n, t)

	fmt.Printf("oracle: %d feeders, %d malicious, spread $%.0f, target agreement $1\n\n", n, t, spread)

	run := func(name string, detect bool, adv sim.Adversary, roundsPerIter int) {
		outputs, histories, err := realaa.RunReal(n, t, inputs, spread, 1, detect, adv)
		if err != nil {
			log.Fatal(err)
		}
		iters := 0
		for _, h := range histories {
			if len(h) > iters {
				iters = len(h)
			}
		}
		fmt.Printf("%s — honest quote range per iteration:\n", name)
		converged := -1
		for it := 0; it < iters; it++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, h := range histories {
				if it < len(h) {
					lo = math.Min(lo, h[it])
					hi = math.Max(hi, h[it])
				}
			}
			bar := ""
			for k := 0; k < int(math.Min((hi-lo)/2, 60)); k++ {
				bar += "#"
			}
			fmt.Printf("  iter %2d (round %3d): range $%8.3f %s\n", it+1, (it+1)*roundsPerIter, hi-lo, bar)
			if converged < 0 && hi-lo <= 1 {
				converged = (it + 1) * roundsPerIter
			}
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range outputs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		fmt.Printf("  final range $%.3f; 1-agreement reached at round %d\n\n", hi-lo, converged)
	}

	run("RealAA under SplitVote (budget burns out)", true,
		&adversary.SplitVote{IDs: ids, N: n, T: t, Tag: "real", PerIteration: 1}, 3)
	run("DLPSW under persistent splitter (never detected)", false,
		&adversary.DLPSWSplitter{IDs: ids, N: n, Tag: "real"}, 1)

	fmt.Println("the detection mechanism is exactly what the paper's TreeAA inherits by")
	fmt.Println("reducing tree agreement to RealAA — see examples/quickstart for the tree side.")
}
