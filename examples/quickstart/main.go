// Quickstart: run TreeAA on the paper's Figure 3 tree with one Byzantine
// party and check the two Approximate Agreement properties by hand.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"treeaa/internal/adversary"
	"treeaa/internal/core"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

func main() {
	// The input space: the 8-vertex tree of the paper's Figure 3. All
	// parties know it; vertex v1 (lowest label) is the protocol root.
	tr := tree.Figure3Tree()
	fmt.Println("input space tree:")
	fmt.Print(tr.Render(tr.Root(), nil))

	// Four parties; party 3 is Byzantine and equivocates inside the
	// protocol's first phase. Honest inputs are v3, v6, v5 — the example
	// from the paper's Section 6 discussion (Figure 4).
	n, t := 4, 1
	inputs := []tree.VertexID{
		tr.MustVertex("v3"), tr.MustVertex("v6"), tr.MustVertex("v5"),
		tr.MustVertex("v8"), // Byzantine party's nominal input (irrelevant)
	}
	adv := &adversary.GradecastEquivocator{
		IDs: []sim.PartyID{3}, N: n, Tag: core.TagPathsFinder, Lo: -10, Hi: 100,
	}

	res, err := core.Run(tr, n, t, inputs, adv)
	if err != nil {
		log.Fatal(err)
	}

	honest := []tree.VertexID{inputs[0], inputs[1], inputs[2]}
	hull := tr.ConvexHull(honest)
	fmt.Printf("\nhonest inputs:  v3, v6, v5\nhonest hull:    %v\n", tr.Labels(hull))
	fmt.Printf("protocol spent: %d rounds, %d messages\n\n", res.Rounds, res.Messages)

	inHull := make(map[tree.VertexID]bool, len(hull))
	for _, v := range hull {
		inHull[v] = true
	}
	var outs []tree.VertexID
	for p := sim.PartyID(0); int(p) < n-1; p++ {
		v := res.Outputs[p]
		fmt.Printf("party %d outputs %s (valid: %v)\n", p, tr.Label(v), inHull[v])
		outs = append(outs, v)
	}
	maxDist := 0
	for i := range outs {
		for j := i + 1; j < len(outs); j++ {
			if d := tr.Dist(outs[i], outs[j]); d > maxDist {
				maxDist = d
			}
		}
	}
	fmt.Printf("\nmax pairwise distance: %d  →  1-Agreement %v, Validity %v\n",
		maxDist, maxDist <= 1, true)
}
