// Robot gathering on a tree-shaped map — the motivating application the
// paper inherits from the robot-gathering literature [2, 34]: robots spread
// over a corridor map (a tree) must meet, but some robots' controllers are
// compromised. Approximate Agreement on trees gets every honest robot to
// vertices at distance <= 1 of each other — i.e. within mutual sensor range
// — without trusting the compromised ones, and never outside the region
// spanned by the honest robots' own positions.
//
//	go run ./examples/robotgathering
package main

import (
	"fmt"
	"log"

	"treeaa/internal/adversary"
	"treeaa/internal/core"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

func main() {
	// A warehouse: a central spine of junctions with aisles branching off.
	var b tree.Builder
	edges := [][2]string{
		{"dock", "hall1"}, {"hall1", "hall2"}, {"hall2", "hall3"}, {"hall3", "hall4"},
		{"hall1", "aisleA1"}, {"aisleA1", "aisleA2"}, {"aisleA2", "aisleA3"},
		{"hall2", "aisleB1"}, {"aisleB1", "aisleB2"},
		{"hall3", "aisleC1"}, {"aisleC1", "aisleC2"}, {"aisleC2", "aisleC3"},
		{"hall4", "aisleD1"}, {"aisleD1", "aisleD2"},
		{"hall4", "exit"},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	warehouse, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Seven robots report their positions; robots 5 and 6 are compromised
	// and try to split the fleet by equivocating in both protocol phases.
	n, t := 7, 2
	positions := []string{"aisleA3", "aisleC2", "hall2", "aisleB2", "dock", "exit", "exit"}
	inputs := make([]tree.VertexID, n)
	for i, p := range positions {
		inputs[i] = warehouse.MustVertex(p)
	}
	ids := adversary.FirstParties(n, t) // robots 5, 6
	adv := &adversary.Compose{Strategies: []sim.Adversary{
		&adversary.SplitVote{IDs: ids, N: n, T: t, Tag: core.TagPathsFinder, PerIteration: 1},
		&adversary.SplitVote{IDs: ids, N: n, T: t, Tag: core.TagProjection,
			StartRound: core.PathsFinderRounds(warehouse) + 1, PerIteration: 1},
	}}

	res, err := core.Run(warehouse, n, t, inputs, adv)
	if err != nil {
		log.Fatal(err)
	}

	honest := inputs[:n-t]
	hull := warehouse.ConvexHull(honest)
	marks := map[tree.VertexID]string{}
	for i, v := range inputs[:n-t] {
		tag := fmt.Sprintf("robot %d", i)
		if prev, ok := marks[v]; ok {
			tag = prev + ", " + tag
		}
		marks[v] = tag
	}
	for p, v := range res.Outputs {
		tag := fmt.Sprintf("→ meet(p%d)", p)
		if prev, ok := marks[v]; ok {
			tag = prev + " " + tag
		}
		marks[v] = tag
	}
	fmt.Println("warehouse map (honest robot positions and chosen meeting vertices):")
	fmt.Print(warehouse.Render(warehouse.Root(), marks))

	fmt.Printf("\nhonest region (convex hull): %v\n", warehouse.Labels(hull))
	fmt.Printf("rounds: %d  messages: %d\n\n", res.Rounds, res.Messages)

	inHull := make(map[tree.VertexID]bool)
	for _, v := range hull {
		inHull[v] = true
	}
	var outs []tree.VertexID
	for p := sim.PartyID(0); int(p) < n-t; p++ {
		v := res.Outputs[p]
		outs = append(outs, v)
		fmt.Printf("robot %d gathers at %-8s (inside honest region: %v)\n",
			p, warehouse.Label(v), inHull[v])
	}
	maxDist := 0
	for i := range outs {
		for j := i + 1; j < len(outs); j++ {
			if d := warehouse.Dist(outs[i], outs[j]); d > maxDist {
				maxDist = d
			}
		}
	}
	fmt.Printf("\nall honest meeting points within distance %d of each other (sensor range: 1)\n", maxDist)
	if maxDist > 1 {
		log.Fatal("gathering failed: 1-agreement violated")
	}
}
