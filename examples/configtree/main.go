// Configuration rollout on a version hierarchy: replicas of a service each
// observe a "known good" node in the release tree (trunk releases with
// hotfix branches). A few replicas are compromised and report garbage. The
// fleet uses Approximate Agreement on the version tree to converge on
// adjacent tree nodes — so every honest replica runs either the same
// release or its immediate parent/hotfix, and never a release outside the
// span of what honest replicas actually vetted (Validity).
//
//	go run ./examples/configtree
package main

import (
	"fmt"
	"log"

	"treeaa/internal/adversary"
	"treeaa/internal/core"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

func main() {
	// The release tree: trunk 1.0 → 2.0 → 3.0 → 4.0 with hotfix branches.
	var b tree.Builder
	for _, e := range [][2]string{
		{"1.0", "2.0"}, {"2.0", "3.0"}, {"3.0", "4.0"},
		{"1.0", "1.0.1"}, {"1.0.1", "1.0.2"},
		{"2.0", "2.0.1"},
		{"3.0", "3.0.1"}, {"3.0.1", "3.0.2"}, {"3.0.2", "3.0.3"},
		{"4.0", "4.0.1"},
	} {
		b.AddEdge(e[0], e[1])
	}
	releases, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Ten replicas; replicas 7-9 are compromised. Honest replicas have
	// vetted versions between 2.0 and the 3.0.x hotfix line.
	n, t := 10, 3
	vetted := []string{"2.0", "3.0.1", "3.0", "3.0.2", "2.0.1", "3.0.3", "3.0"}
	inputs := make([]tree.VertexID, n)
	for i := 0; i < n-t; i++ {
		inputs[i] = releases.MustVertex(vetted[i])
	}
	for i := n - t; i < n; i++ {
		inputs[i] = releases.MustVertex("4.0.1") // compromised claim
	}
	ids := adversary.FirstParties(n, t)
	adv := &adversary.Compose{Strategies: []sim.Adversary{
		&adversary.GradecastEquivocator{IDs: ids, N: n, Tag: core.TagPathsFinder, Lo: -50, Hi: 500},
		&adversary.RandomNoise{IDs: ids, N: n, Tag: core.TagProjection,
			StartRound: core.PathsFinderRounds(releases) + 1, Seed: 7, MaxVal: 40},
	}}

	res, err := core.Run(releases, n, t, inputs, adv)
	if err != nil {
		log.Fatal(err)
	}

	honest := inputs[:n-t]
	hull := releases.ConvexHull(honest)
	marks := map[tree.VertexID]string{}
	for _, v := range hull {
		marks[v] = "vetted span"
	}
	for p, v := range res.Outputs {
		tag := fmt.Sprintf("→ p%d", p)
		if prev, ok := marks[v]; ok {
			tag = prev + " " + tag
		}
		marks[v] = tag
	}
	fmt.Println("release tree (vetted span and chosen versions):")
	fmt.Print(releases.Render(releases.Root(), marks))
	fmt.Printf("\nrounds: %d, messages: %d\n\n", res.Rounds, res.Messages)

	inHull := make(map[tree.VertexID]bool)
	for _, v := range hull {
		inHull[v] = true
	}
	counts := map[tree.VertexID]int{}
	for p := sim.PartyID(0); int(p) < n-t; p++ {
		v := res.Outputs[p]
		counts[v]++
		fmt.Printf("replica %d deploys %-6s (within vetted span: %v)\n",
			p, releases.Label(v), inHull[v])
		if !inHull[v] {
			log.Fatal("validity violated: deployed an unvetted release")
		}
	}
	fmt.Println()
	for v, c := range counts {
		fmt.Printf("%d replica(s) on %s\n", c, releases.Label(v))
	}
	fmt.Println("every honest replica runs the same release or an adjacent one — safe to serve traffic")
}
