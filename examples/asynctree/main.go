// Asynchronous tree agreement — the model the paper's related work [33]
// lives in: no clocks, no delivery bound, an adversarial network scheduler.
// This example runs the NR-style asynchronous protocol (Bracha reliable
// broadcast + witness technique + safe-area/center updates) on a tree under
// three schedulers, including one that starves a victim's links as long as
// the model permits, and reports the causal depth ("async rounds") each
// execution consumed — the O(log D) complexity the paper's synchronous
// TreeAA improves on for high-diameter trees.
//
//	go run ./examples/asynctree
package main

import (
	"fmt"
	"log"
	"math/rand"

	"treeaa/internal/async"
	"treeaa/internal/tree"
)

func main() {
	tr := tree.NewCaterpillar(16, 1) // 32 vertices, diameter 17
	n, t := 4, 1
	inputs := []tree.VertexID{0, 10, 15, 5}
	d, _, _ := tr.Diameter()
	iters := async.TreeIterations(d)
	fmt.Printf("asynchronous NR-style tree AA: |V|=%d D=%d n=%d t=%d (%d iterations)\n\n",
		tr.NumVertices(), d, n, t, iters)

	schedulers := []struct {
		name  string
		sched async.Scheduler
	}{
		{"FIFO (benign network)", async.FIFO{}},
		{"random delivery", async.Random{Rng: rand.New(rand.NewSource(42))}},
		{"starve party 0's links", async.Starve{Victims: map[async.PartyID]bool{0: true}}},
	}
	for _, s := range schedulers {
		machines := make([]async.Machine, n)
		for i := 0; i < n; i++ {
			machines[i] = async.NewTreeAA(tr, n, t, async.PartyID(i), inputs[i], iters)
		}
		res, err := async.Run(async.Config{N: n, MaxDeliveries: 2_000_000, Scheduler: s.sched}, machines)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		fmt.Printf("%-26s", s.name)
		var outs []tree.VertexID
		for p := async.PartyID(0); int(p) < n; p++ {
			v := res.Outputs[p].(tree.VertexID)
			outs = append(outs, v)
			fmt.Printf("  p%d→%s", p, tr.Label(v))
		}
		maxDist := 0
		for i := range outs {
			for j := i + 1; j < len(outs); j++ {
				if dd := tr.Dist(outs[i], outs[j]); dd > maxDist {
					maxDist = dd
				}
			}
		}
		fmt.Printf("   depth=%d deliveries=%d maxDist=%d\n", res.Depth, res.Deliveries, maxDist)
		if maxDist > 1 {
			log.Fatal("1-agreement violated")
		}
	}
	fmt.Println("\nno scheduler can stop the protocol — only slow it down; every run lands on")
	fmt.Println("1-close vertices inside the honest hull. depth ≈ 6·iterations = O(log D).")
}
