// Command bench-rounds regenerates experiments E2 and E5: it sweeps tree
// families and sizes, measures TreeAA's and the O(log D) baseline's round
// counts, and prints them next to the theory curves (Theorem 4 and the
// Theorem 2 lower bound) as a table, a CSV (with -csv) and an ASCII figure.
// With -async it appends the E5c asynchronous-depth table and with -exact
// the E5b Dolev–Strong comparison. With -json it instead runs the
// BenchmarkSimRound engine microbenchmark family (internal/simbench) and
// emits the measurements as JSON on stdout — the format committed as
// BENCH_sim.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"treeaa/internal/experiments"
	"treeaa/internal/metrics"
	"treeaa/internal/simbench"
	"treeaa/internal/tree"
)

func main() {
	var (
		nFlag     = flag.Int("n", 4, "number of parties")
		tFlag     = flag.Int("t", 1, "Byzantine budget")
		csv       = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		family    = flag.String("family", "all", "path|caterpillar|spider|kary|random|all")
		sizes     = flag.String("sizes", "64,256,1024,4096", "comma-separated vertex counts")
		withAsync = flag.Bool("async", false, "append the E5c asynchronous-depth table")
		withExact = flag.Bool("exact", false, "append the E5b Dolev–Strong comparison")
		jsonBench = flag.Bool("json", false, "run the sim-engine microbenchmarks and emit JSON (BENCH_sim.json format)")
	)
	flag.Parse()
	if *jsonBench {
		if err := simbench.RunJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bench-rounds:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*nFlag, *tFlag, *family, *sizes, *csv, *withAsync, *withExact); err != nil {
		fmt.Fprintln(os.Stderr, "bench-rounds:", err)
		os.Exit(1)
	}
}

func run(n, t int, family, sizeList string, csv, withAsync, withExact bool) error {
	fams := experiments.DefaultFamilies()
	if family != "all" {
		var picked []experiments.Family
		for _, f := range fams {
			if f.Name == family {
				picked = append(picked, f)
			}
		}
		if len(picked) == 0 {
			return fmt.Errorf("unknown family %q", family)
		}
		fams = picked
	}
	sizes, err := splitInts(sizeList)
	if err != nil {
		return err
	}
	rows, err := experiments.E2RoundsSweep(fams, sizes, n, t)
	if err != nil {
		return err
	}
	tab := experiments.E2Table(rows)
	if csv {
		if err := tab.WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else {
		fmt.Println("E2/E5 — rounds by tree family and size")
		fmt.Printf("n=%d t=%d; treeaa_norm = rounds/(log2V/loglog2V) should be ~flat (Theorem 4);\n", n, t)
		fmt.Println("baseline_norm = rounds/log2(D) should be ~flat ([33]); lowerbound = Theorem 2 minimal rounds")
		fmt.Println()
		fmt.Print(tab.String())
		seriesFamily := fams[0].Name
		a, b := experiments.E2Series(rows, seriesFamily)
		if len(a.Points) > 1 {
			fmt.Println()
			fmt.Printf("rounds vs log2|V| (%s family):\n", seriesFamily)
			fmt.Print(metrics.RenderASCII(60, 14, a, b))
		}
	}
	if withAsync {
		atab, err := experiments.E5cAsyncDepth(n, t, []int{16, 64, 256})
		if err != nil {
			return err
		}
		fmt.Println("\nE5c — asynchronous NR-style protocol depth (async rounds):")
		if csv {
			return atab.WriteCSV(os.Stdout)
		}
		fmt.Print(atab.String())
	}
	if withExact {
		etab, err := experiments.E5bExactCost(tree.NewPath(64), []int{4, 7, 13})
		if err != nil {
			return err
		}
		fmt.Println("\nE5b — exact agreement via Dolev–Strong (t+1 rounds) vs TreeAA:")
		if csv {
			return etab.WriteCSV(os.Stdout)
		}
		fmt.Print(etab.String())
	}
	return nil
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
