// Command adversary-eval regenerates experiments E1, E4 and E6: it runs the
// real-valued protocols (RealAA with gradecast detection, DLPSW without)
// and full TreeAA under every adversary strategy, reporting correctness
// (validity + agreement), measured convergence, and the detection ablation.
package main

import (
	"flag"
	"fmt"
	"os"

	"treeaa/internal/cli"
	"treeaa/internal/experiments"
)

func main() {
	var (
		nFlag = flag.Int("n", 10, "number of parties")
		tFlag = flag.Int("t", 3, "Byzantine budget (t < n/3)")
		dFlag = flag.Float64("d", 1e6, "honest input spread for the real-valued ablation")
		spec  = flag.String("tree", "path:256", "tree spec for the TreeAA matrix")
		seed  = flag.Int64("seed", 1, "noise adversary seed")
		csv   = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()
	if err := run(*nFlag, *tFlag, *dFlag, *spec, *seed, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "adversary-eval:", err)
		os.Exit(1)
	}
}

func run(n, t int, d float64, spec string, seed int64, csv bool) error {
	e1rows, err := experiments.E1RoundsSweep(n, t, []float64{10, 1e3, d})
	if err != nil {
		return err
	}
	e1Tab := experiments.E1Table(e1rows)

	ablation, err := experiments.E4DetectAblation(n, t, d)
	if err != nil {
		return err
	}
	realTab := experiments.E4Table(ablation)

	tr, err := cli.ParseTreeSpec(spec, seed)
	if err != nil {
		return err
	}
	matrix, err := experiments.E6Matrix(tr, n, t, seed)
	if err != nil {
		return err
	}
	treeTab := experiments.E6Table(matrix)

	if csv {
		if err := e1Tab.WriteCSV(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if err := realTab.WriteCSV(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return treeTab.WriteCSV(os.Stdout)
	}
	fmt.Printf("E1 — RealAA fixed schedule vs Theorem 3 formula: n=%d t=%d eps=1\n\n", n, t)
	fmt.Print(e1Tab.String())
	fmt.Println()
	fmt.Printf("E4 — detection ablation on real values: n=%d t=%d D=%g eps=1\n", n, t, d)
	fmt.Println("(budget = fixed worst-case rounds; measured = rounds until honest range <= eps under attack)")
	fmt.Println()
	fmt.Print(realTab.String())
	fmt.Println()
	fmt.Printf("E1/E6 — TreeAA correctness matrix on %s: n=%d t=%d\n", spec, n, t)
	fmt.Println()
	fmt.Print(treeTab.String())
	return nil
}
