// Command scale-bench measures how the networked substrate scales with
// fleet size: the full TCP mesh (internal/transport) against the
// communication-tree overlay (internal/overlay), both driven in-process on
// loopback with the crash-fault AA workload — one small broadcast per party
// per round, so fleet size rather than protocol weight is what the numbers
// move with.
//
// The mesh holds n·(n−1)/2 connections and pushes O(n²) physical frames
// per round; past a few hundred parties the file-descriptor bill alone
// (two fds per connection plus goroutine stacks) hits the process limit —
// the all-to-all wall. The tree holds one connection per edge (n−1 total,
// O(branching) per node) and its end-of-round traffic aggregates at
// sub-leaders, so fleets the mesh cannot even establish complete in
// seconds. Every run is checked byte-identical against the sequential
// sim.Run oracle before its row is reported.
//
//	scale-bench                        # human-readable rows
//	scale-bench -json > BENCH_scale.json
//	scale-bench -json -compare BENCH_scale.json > /dev/null
//
// With -compare the fresh rows gate against the committed file: a row
// whose physical frames/round exceeds 1.25× its committed counterpart
// (equivalently, drops below the 80% efficiency floor) fails the run —
// the `make scale-bench-compare` regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"time"

	"treeaa/internal/crashaa"
	"treeaa/internal/metrics"
	"treeaa/internal/overlay"
	"treeaa/internal/sim"
	"treeaa/internal/transport"
)

// Row is one measured (mode, n) cell. Frames and bytes are physical —
// counted at the socket, handshakes and control traffic included — while
// Messages is the logical protocol count the engine would report; the gap
// between the two is exactly what the substrate costs.
type Row struct {
	Name           string  `json:"name"` // "mesh/n64", "tree/n256"
	Mode           string  `json:"mode"` // mesh | tree
	N              int     `json:"n"`
	Branching      int     `json:"branching,omitempty"` // tree only
	Rounds         int     `json:"rounds"`
	ConnsPerNode   int     `json:"conns_per_node"` // peak simultaneous per-node links
	Frames         int64   `json:"frames"`         // physical frames sent, whole run
	FramesPerRound float64 `json:"frames_per_round"`
	Bytes          int64   `json:"bytes"`    // physical bytes sent
	Messages       int64   `json:"messages"` // logical protocol messages, whole run
	ElapsedNS      int64   `json:"elapsed_ns"`
	RoundP50NS     float64 `json:"round_p50_ns"`
	RoundP99NS     float64 `json:"round_p99_ns"`
}

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit rows as JSON on stdout (the BENCH_scale.json format)")
		compare  = flag.String("compare", "", "committed rows file; with -json, fail any row whose frames/round exceeds 1.25x its committed value")
		meshNs   = flag.String("mesh", "16,64", "comma-separated mesh fleet sizes")
		treeNs   = flag.String("tree", "128,256,512", "comma-separated tree-overlay fleet sizes")
		branch   = flag.Int("branching", 0, "tree branching factor (0 = ceil(sqrt(n-1)) per fleet)")
		iters    = flag.Int("iterations", 3, "crash-fault AA iterations per run")
		failover = flag.Duration("failover-timeout", 30*time.Second, "tree parent-silence budget (generous: a busy shared core must not read as a dead parent)")
	)
	flag.Parse()
	if err := run(*jsonOut, *compare, *meshNs, *treeNs, *branch, *iters, *failover); err != nil {
		fmt.Fprintln(os.Stderr, "scale-bench:", err)
		os.Exit(1)
	}
}

func run(jsonOut bool, compare, meshNs, treeNs string, branch, iters int, failover time.Duration) error {
	meshSizes, err := parseSizes(meshNs)
	if err != nil {
		return fmt.Errorf("-mesh: %w", err)
	}
	treeSizes, err := parseSizes(treeNs)
	if err != nil {
		return fmt.Errorf("-tree: %w", err)
	}

	var rows []*Row
	for _, n := range meshSizes {
		row, err := runMesh(n, iters)
		if err != nil {
			return fmt.Errorf("mesh n=%d: %w", n, err)
		}
		rows = append(rows, report(jsonOut, row))
	}
	for _, n := range treeSizes {
		row, err := runTree(n, branch, iters, failover)
		if err != nil {
			return fmt.Errorf("tree n=%d: %w", n, err)
		}
		rows = append(rows, report(jsonOut, row))
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
	}
	if compare != "" {
		return compareRows(rows, compare)
	}
	return nil
}

// machines builds one fleet of crash-fault AA machines; each driver gets a
// fresh set because machines hold state.
func machines(n, iters int) ([]sim.Machine, error) {
	ms := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		m, err := crashaa.NewMachine(crashaa.Config{N: n, ID: sim.PartyID(i),
			Iterations: iters, Input: float64(i % 17)})
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	return ms, nil
}

// oracle runs the sequential engine for the same fleet — the byte-identity
// reference every measured run must reproduce.
func oracle(n, iters int) (*sim.Result, sim.Config, error) {
	cfg := sim.Config{N: n, MaxCorrupt: 1, MaxRounds: iters + 2}
	ms, err := machines(n, iters)
	if err != nil {
		return nil, cfg, err
	}
	want, err := sim.Run(cfg, ms)
	return want, cfg, err
}

func runMesh(n, iters int) (*Row, error) {
	want, cfg, err := oracle(n, iters)
	if err != nil {
		return nil, err
	}
	ms, err := machines(n, iters)
	if err != nil {
		return nil, err
	}
	wires := &metrics.WireStats{}
	lat := &metrics.ChaosStats{}
	start := time.Now()
	got, err := transport.LocalCluster(cfg, ms, transport.Options{Stats: wires, Chaos: lat})
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(got, want) {
		return nil, fmt.Errorf("result diverges from the sim.Run oracle")
	}
	sum := lat.RoundLatency()
	return &Row{
		Name: fmt.Sprintf("mesh/n%d", n), Mode: "mesh", N: n,
		Rounds: got.Rounds, ConnsPerNode: n - 1,
		Frames: wires.FramesSent.Load(), FramesPerRound: perRound(wires.FramesSent.Load(), got.Rounds),
		Bytes: wires.BytesSent.Load(), Messages: int64(got.Messages),
		ElapsedNS: elapsed.Nanoseconds(), RoundP50NS: sum.P50, RoundP99NS: sum.P99,
	}, nil
}

func runTree(n, branch, iters int, failover time.Duration) (*Row, error) {
	lay, err := overlay.NewLayout(n, branch)
	if err != nil {
		return nil, err
	}
	want, cfg, err := oracle(n, iters)
	if err != nil {
		return nil, err
	}
	ms, err := machines(n, iters)
	if err != nil {
		return nil, err
	}
	wires := &metrics.WireStats{}
	stats := &metrics.OverlayStats{}
	start := time.Now()
	got, err := overlay.Cluster(cfg, ms, overlay.Options{
		Branching: lay.Branching, Stats: stats, Wire: wires, FailoverTimeout: failover,
		// Hundreds of goroutine seats sharing one core can take tens of
		// seconds just to drain the join thundering-herd; the default 10s
		// setup budget is sized for real fleets, not this test rig.
		SetupTimeout: 2 * time.Minute,
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(got, want) {
		return nil, fmt.Errorf("result diverges from the sim.Run oracle")
	}
	if peak := stats.PeakConns(); peak > lay.MaxDegree() {
		return nil, fmt.Errorf("peak %d conns/node exceeds the layout degree %d", peak, lay.MaxDegree())
	}
	sum := stats.RoundLatency()
	return &Row{
		Name: fmt.Sprintf("tree/n%d", n), Mode: "tree", N: n, Branching: lay.Branching,
		Rounds: got.Rounds, ConnsPerNode: stats.PeakConns(),
		Frames: wires.FramesSent.Load(), FramesPerRound: perRound(wires.FramesSent.Load(), got.Rounds),
		Bytes: wires.BytesSent.Load(), Messages: int64(got.Messages),
		ElapsedNS: elapsed.Nanoseconds(), RoundP50NS: sum.P50, RoundP99NS: sum.P99,
	}, nil
}

func perRound(frames int64, rounds int) float64 {
	if rounds == 0 {
		return 0
	}
	return float64(frames) / float64(rounds)
}

func report(jsonOut bool, row *Row) *Row {
	w := os.Stdout
	if jsonOut {
		w = os.Stderr // keep stdout pure JSON
	}
	extra := ""
	if row.Mode == "tree" {
		extra = fmt.Sprintf(" (branching %d)", row.Branching)
	}
	fmt.Fprintf(w, "scale-bench: %s%s: %d rounds in %v; %d conns/node; %d frames (%.0f/round, %d bytes) carrying %d logical msgs; round p50 %v p99 %v\n",
		row.Name, extra, row.Rounds, time.Duration(row.ElapsedNS).Round(time.Millisecond),
		row.ConnsPerNode, row.Frames, row.FramesPerRound, row.Bytes, row.Messages,
		time.Duration(row.RoundP50NS).Round(time.Microsecond), time.Duration(row.RoundP99NS).Round(time.Microsecond))
	return row
}

// compareRows gates fresh rows against the committed baseline: a row's
// frames/round may grow to at most 1.25x its committed value (the 80%
// efficiency floor). Rows present on only one side are reported but don't
// fail — grids may grow.
func compareRows(fresh []*Row, path string) error {
	body, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-compare: %w", err)
	}
	var committed []*Row
	if err := json.Unmarshal(body, &committed); err != nil {
		return fmt.Errorf("-compare %s: %w", path, err)
	}
	baseline := make(map[string]*Row, len(committed))
	for _, r := range committed {
		baseline[r.Name] = r
	}
	var regressions int
	for _, r := range fresh {
		base, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "scale-bench: %s: no committed row (new cell)\n", r.Name)
			continue
		}
		if base.FramesPerRound > 0 && r.FramesPerRound > base.FramesPerRound*1.25 {
			fmt.Fprintf(os.Stderr, "scale-bench: REGRESSION %s: %.0f frames/round vs %.0f committed (>1.25x)\n",
				r.Name, r.FramesPerRound, base.FramesPerRound)
			regressions++
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d frames/round regressions past the 1.25x gate", regressions)
	}
	return nil
}

func parseSizes(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("fleet size %q: want an integer >= 2", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no fleet sizes in %q", spec)
	}
	return out, nil
}
