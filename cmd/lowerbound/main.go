// Command lowerbound regenerates experiment E3: the Section 3 lower-bound
// machinery as tables — K(R, D) with the exact partition supremum, the
// minimal round counts forced by 1-Agreement, the Theorem 2 closed form,
// and the one-round chain-of-views demonstration.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"treeaa/internal/experiments"
	"treeaa/internal/lowerbound"
)

func main() {
	var (
		nFlag = flag.Int("n", 10, "number of parties")
		tFlag = flag.Int("t", 3, "Byzantine budget")
		csv   = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()
	if err := run(*nFlag, *tFlag, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(n, t int, csv bool) error {
	diameters := []float64{1e2, 1e4, 1e6, 1e9, 1e12}
	tab := experiments.E3KTable(n, t, diameters)
	tab2 := experiments.E3MinRoundsTable(n, t, diameters)

	if csv {
		if err := tab.WriteCSV(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return tab2.WriteCSV(os.Stdout)
	}

	fmt.Printf("E3 — Fekete bound adapted to trees (Theorem 1/2, Corollary 1); n=%d t=%d\n", n, t)
	fmt.Println("K(R,D) = D·sup/(n+t)^R; 1-Agreement forces log2 K <= 0 (K <= 1)")
	fmt.Println()
	fmt.Print(tab.String())
	fmt.Println()
	fmt.Println("minimal rounds forced by the bound vs the Theorem 2 closed form:")
	fmt.Print(tab2.String())

	// The executable chain argument for one round.
	fmt.Println()
	fmt.Println("one-round chain-of-views demonstration (trimmed-midpoint rule, D = 1000):")
	f := func(view []float64) float64 {
		vals := append([]float64(nil), view...)
		sort.Float64s(vals)
		vals = vals[1 : len(vals)-1]
		return (vals[0] + vals[len(vals)-1]) / 2
	}
	gap, at, err := lowerbound.DemonstrateOneRound(f, n, 0, 1000)
	if err != nil {
		return err
	}
	fmt.Printf("  adjacent views %d/%d are honest-indistinguishable yet force outputs %.1f apart\n", at, at+1, gap)
	fmt.Printf("  (>= D/n = %.1f: no one-round protocol can 1-agree on spreads beyond n)\n", 1000.0/float64(n))
	return nil
}
