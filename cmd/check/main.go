// Command check is the property-based protocol checker: it explores randomly
// generated (tree, inputs, adversary) cells through the simulation engine,
// evaluates per-round invariants (validity, 1-agreement, hull non-expansion,
// burn-rule monotonicity, PathsFinder trailing-edge agreement, round budget)
// and the sequential/concurrent/TCP differential, and on a violation shrinks
// the cell to a minimal one-line repro spec.
//
//	check                                  # default budget over seeds 1-3
//	check -seeds 1-5 -budget 200           # 200 cells per seed
//	check -space graph -budget 175         # block-graph cells only
//	check -repro 's=1;tree=star:6;n=9;t=2;in=spread;adv=splitvote(per=1)'
//	check -repro 's=1;space=graph:cliquechain:3:4;n=7;t=2;in=spread;adv=splitvote(per=1)'
//	check -inject-bad                      # demo: catch + shrink a known-bad adversary
//	check -json -budget 50                 # one JSON object per cell
//	check -async-every 1 -async-budget 0   # async battery on every compatible cell
//
// Async-compatible cells (no omission filtering, no delivery-seam tamperers)
// additionally run through the event-driven internal/async runtime under
// every adversarial scheduler, asserting validity, 1-agreement, Lemma-4 path
// agreement, per-phase epsilon-agreement and hull non-expansion — the
// invariants that carry correctness where no round-indexed oracle exists.
//
// Cells are explored deterministically: the same -seeds and -budget always
// visit the same cells. Exit status is 1 if any violation survives, 2 on
// usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"treeaa/internal/check"
)

func main() {
	var (
		seeds       = flag.String("seeds", "1-3", "generator seeds: comma list and/or A-B ranges (e.g. 1,2,5-8)")
		budget      = flag.Int("budget", 50, "cells to explore per seed")
		cells       = flag.String("cells", "", "comma-free ';'-spec cells to run instead of generating ('|'-separated)")
		repro       = flag.String("repro", "", "run exactly one cell spec (as printed by a violation) and exit")
		injectBad   = flag.Bool("inject-bad", false, "inject a known-bad adversary (burn rule blinded) to demo the shrinker")
		shrinkB     = flag.Int("shrink-budget", 200, "candidate runs the shrinker may spend per violation")
		tcpEvery    = flag.Int("tcp-every", 8, "run the TCP differential on every Nth cell (0 = never)")
		asyncEvery  = flag.Int("async-every", 4, "run the async-mode battery on every Nth compatible cell (0 = never)")
		asyncBudget = flag.Int("async-budget", 0, "delivery budget per async execution (0 = derive from the pipelines)")
		jsonOut     = flag.Bool("json", false, "emit one JSON object per cell instead of text")
		spaceKind   = flag.String("space", "", `restrict generated cells to one input-space kind: "tree" or "graph" ("" mixes both)`)
	)
	flag.Parse()
	if *spaceKind != "" && *spaceKind != "tree" && *spaceKind != "graph" {
		fmt.Fprintf(os.Stderr, "check: -space %q: want \"\", \"tree\" or \"graph\"\n", *spaceKind)
		os.Exit(2)
	}
	code, err := run(*seeds, *budget, *cells, *repro, *spaceKind, *injectBad, *shrinkB, *tcpEvery, *asyncEvery, *asyncBudget, *jsonOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "check:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// knownBad is the deliberately broken adversary for the -inject-bad demo: a
// delivery-seam tamperer that rewrites every gradecast value consistently, so
// no equivocation is ever observed and the burn rule stays silent, while the
// concentrated input placement puts the tampered output outside the honest
// hull.
const knownBad = "s=1;tree=star:6;n=9;t=2;in=1.1.1.1.1.1.1.1.1;adv=splitvote(per=1)+evil(val=1000000)"

func run(seeds string, budget int, cells, repro, spaceKind string, injectBad bool, shrinkB, tcpEvery, asyncEvery, asyncBudget int, jsonOut bool) (int, error) {
	enc := json.NewEncoder(os.Stdout)
	explored, violated, asyncRan := 0, 0, 0

	// runAsync sends one compatible cell through the event-driven battery;
	// its violations count against the same exit status as the sync ones.
	runAsync := func(c *check.Cell) error {
		res, err := check.RunAsyncCell(c, check.AsyncOptions{Budget: asyncBudget})
		if err != nil {
			return fmt.Errorf("async cell %s: %w", c, err)
		}
		asyncRan++
		if jsonOut {
			enc.Encode(map[string]any{"async": res})
		}
		if len(res.Violations) == 0 {
			return nil
		}
		violated++
		if !jsonOut {
			for _, v := range res.Violations {
				fmt.Println(v)
			}
		}
		return nil
	}

	runOne := func(c *check.Cell, opt check.Options, shrink bool) error {
		res, err := check.RunCell(c, opt)
		if err != nil {
			return fmt.Errorf("cell %s: %w", c, err)
		}
		explored++
		if asyncEvery > 0 && check.AsyncCompatible(c) && explored%asyncEvery == 0 {
			if err := runAsync(c); err != nil {
				return err
			}
		}
		if jsonOut {
			enc.Encode(res)
		}
		if len(res.Violations) == 0 {
			return nil
		}
		violated++
		if !jsonOut {
			for _, v := range res.Violations {
				fmt.Println(v)
			}
		}
		if shrink {
			shrunk, runs := check.Shrink(c, check.Options{}, shrinkB)
			sres, err := check.RunCell(shrunk, check.Options{})
			if err != nil {
				return fmt.Errorf("shrunk cell %s: %w", shrunk, err)
			}
			if jsonOut {
				enc.Encode(map[string]any{"shrunk": sres, "shrinkRuns": runs})
			} else {
				fmt.Printf("shrunk after %d runs to: %s\n", runs, shrunk)
				for _, v := range sres.Violations {
					fmt.Println("  ", v)
				}
				fmt.Printf("re-run with: check -repro '%s'\n", shrunk)
			}
		}
		return nil
	}

	switch {
	case repro != "":
		c, err := check.Parse(repro)
		if err != nil {
			return 0, err
		}
		if err := runOne(c, check.Options{TCP: tcpEvery > 0}, false); err != nil {
			return 0, err
		}
		// A repro replays the async battery too (when compatible), so a spec
		// printed by an async violation reproduces without extra flags.
		if asyncEvery > 0 && check.AsyncCompatible(c) && explored%asyncEvery != 0 {
			if err := runAsync(c); err != nil {
				return 0, err
			}
		}
	case injectBad:
		c, err := check.Parse(knownBad)
		if err != nil {
			return 0, err
		}
		fmt.Printf("injecting known-bad cell: %s\n", c)
		if err := runOne(c, check.Options{}, true); err != nil {
			return 0, err
		}
	case cells != "":
		for i, spec := range strings.Split(cells, "|") {
			c, err := check.Parse(strings.TrimSpace(spec))
			if err != nil {
				return 0, err
			}
			opt := check.Options{TCP: tcpEvery > 0 && i%tcpEvery == 0}
			if err := runOne(c, opt, true); err != nil {
				return 0, err
			}
		}
	default:
		seedList, err := parseSeeds(seeds)
		if err != nil {
			return 0, err
		}
		for _, seed := range seedList {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < budget; i++ {
				c := check.GenerateIn(rng, spaceKind)
				opt := check.Options{TCP: tcpEvery > 0 && explored%tcpEvery == 0}
				if err := runOne(c, opt, true); err != nil {
					return 0, err
				}
			}
		}
	}

	if !jsonOut {
		fmt.Printf("check: %d cells explored (%d also run async), %d violated\n", explored, asyncRan, violated)
	}
	if violated > 0 {
		return 1, nil
	}
	return 0, nil
}

// parseSeeds decodes "1,2,5-8" into [1 2 5 6 7 8].
func parseSeeds(spec string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		a, b, isRange := strings.Cut(part, "-")
		lo, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		hi := lo
		if isRange {
			if hi, err = strconv.ParseInt(b, 10, 64); err != nil || hi < lo {
				return nil, fmt.Errorf("bad seed range %q", part)
			}
		}
		for s := lo; s <= hi; s++ {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds in %q", spec)
	}
	return out, nil
}
