// Command serve-bench is the closed-loop load generator for the serving
// layer: it starts an in-process n-daemon loopback cluster, runs -workers
// concurrent clients that each submit-and-await sessions back to back for
// -duration, verifies every Result against the sequential oracle, and
// reports throughput (sessions/sec) and per-session latency percentiles.
//
//	serve-bench -cluster 4 -workers 64 -duration 10s -tree spider:3:3
//	serve-bench -json > BENCH_service.json
//
// With -json it emits the measurement rows as JSON on stdout — the format
// committed as BENCH_service.json — sweeping a small worker grid so the
// file shows how throughput and tail latency move with concurrency; with
// -journal-dir the grid runs a second time with the write-ahead journal on,
// so the file also records the durability overhead. With -compare FILE the
// fresh rows are checked against the committed ones and the run exits
// nonzero on a >20% sessions/sec regression in any cell (>50% for the
// fsync-bound journal cells) — the `make bench-compare` gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"time"

	"treeaa/internal/cli"
	"treeaa/internal/journal"
	"treeaa/internal/metrics"
	"treeaa/internal/session"
	"treeaa/internal/sim"
)

// Row is one bench cell: a worker count driven for a duration. Allocation
// and byte figures are whole-deployment per decided session: AllocsPerSess
// is the process-wide malloc delta across the load window (all n daemons
// plus the clients — the figure the profile work optimises), BytesPerSess
// is peer-link batch bytes plus client API bytes actually written.
type Row struct {
	Name          string  `json:"name"`
	N             int     `json:"n"`
	Workers       int     `json:"workers"`
	Tree          string  `json:"tree"`
	Sessions      int     `json:"sessions"`
	Mismatches    int     `json:"mismatches"`
	SessionsSec   float64 `json:"sessions_per_sec"`
	P50NS         int64   `json:"p50_ns"`
	P90NS         int64   `json:"p90_ns"`
	P99NS         int64   `json:"p99_ns"`
	MeanBatch     float64 `json:"mean_frames_per_batch"`
	AllocsPerSess float64 `json:"allocs_per_session"`
	BytesPerSess  float64 `json:"bytes_per_session"`
	ElapsedNS     int64   `json:"elapsed_ns"`
}

var (
	syncFlag  time.Duration
	levelFlag session.JournalLevel
)

func main() {
	var (
		n        = flag.Int("cluster", 4, "daemons in the loopback deployment")
		workers  = flag.Int("workers", 64, "concurrent closed-loop clients")
		duration = flag.Duration("duration", 5*time.Second, "per-cell load duration")
		treeSpec = flag.String("tree", "spider:3:3", "tree spec for the driven sessions")
		tFlag    = flag.Int("t", 0, "corruption budget of the driven sessions")
		seed     = flag.Int64("seed", 1, "tree-spec seed")
		jsonOut  = flag.Bool("json", false, "sweep a worker grid and emit JSON rows (BENCH_service.json format)")
		jdirSync = flag.Duration("journal-sync", 0, "journal group-commit interval (0 = journal default)")
		jdir     = flag.String("journal-dir", "", "run with the write-ahead journal under this directory ('auto' = temp dir); rows gain a /journal suffix")
		jlevel   = flag.String("journal-level", "full", "journal capture level: full (frames too) or sealed (admissions+seals only); sealed rows gain a /journal-sealed suffix")
		compare  = flag.String("compare", "", "committed rows file (BENCH_service.json); with -json, fail on a >20% sessions/sec regression")
	)
	var prof cli.Profile
	prof.RegisterFlags()
	flag.Parse()
	syncFlag = *jdirSync
	lv, err := session.ParseJournalLevel(*jlevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve-bench:", err)
		os.Exit(1)
	}
	levelFlag = lv
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve-bench:", err)
		os.Exit(1)
	}
	if *jsonOut {
		err = runJSON(*n, *treeSpec, *tFlag, *seed, *duration, *compare, *jdir)
	} else {
		var row *Row
		row, err = runCell(*n, *workers, *treeSpec, *tFlag, *seed, *duration, *jdir)
		if err == nil {
			fmt.Printf("serve-bench: %s: %d sessions in %v → %.0f sessions/sec; "+
				"latency p50 %v p90 %v p99 %v; %.1f frames/batch; %d oracle mismatches\n",
				row.Name, row.Sessions, time.Duration(row.ElapsedNS).Round(time.Millisecond),
				row.SessionsSec, time.Duration(row.P50NS), time.Duration(row.P90NS),
				time.Duration(row.P99NS), row.MeanBatch, row.Mismatches)
			if row.Mismatches > 0 {
				err = fmt.Errorf("%d oracle mismatches", row.Mismatches)
			}
		}
	}
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve-bench:", err)
		os.Exit(1)
	}
}

// runJSON sweeps a worker grid and writes the rows as indented JSON. With a
// compare file it then checks every fresh cell against the committed row of
// the same name and fails past the per-cell regression gate.
func runJSON(n int, treeSpec string, t int, seed int64, duration time.Duration, compare, journalDir string) error {
	// With a journal directory the grid runs twice — journal-off, then
	// journal-on — so the file records the durability overhead alongside
	// the plain columns.
	dirs := []string{""}
	if journalDir != "" {
		dirs = append(dirs, journalDir)
	}
	var rows []*Row
	for _, dir := range dirs {
		for _, w := range []int{8, 64, 256} {
			row, err := runCell(n, w, treeSpec, t, seed, duration, dir)
			if err != nil {
				return err
			}
			if row.Mismatches > 0 {
				return fmt.Errorf("%s: %d oracle mismatches", row.Name, row.Mismatches)
			}
			rows = append(rows, row)
			fmt.Fprintf(os.Stderr, "serve-bench: %s: %.0f sessions/sec, p99 %v, %.0f allocs/session\n",
				row.Name, row.SessionsSec, time.Duration(row.P99NS), row.AllocsPerSess)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		return err
	}
	if compare == "" {
		return nil
	}
	return compareRows(rows, compare)
}

// compareRows gates on the committed baseline: every fresh row whose name
// appears in the committed file must hold ≥80% of its committed
// sessions/sec (≥50% for journal cells, whose fsync-bound throughput is
// far noisier). Committed cells with no fresh counterpart (or vice versa)
// are reported but don't fail — grids may grow.
func compareRows(fresh []*Row, path string) error {
	body, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-compare: %w", err)
	}
	var committed []*Row
	if err := json.Unmarshal(body, &committed); err != nil {
		return fmt.Errorf("-compare %s: %w", path, err)
	}
	baseline := make(map[string]*Row, len(committed))
	for _, r := range committed {
		baseline[r.Name] = r
	}
	var regressions int
	for _, r := range fresh {
		base, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "serve-bench: compare: %s has no committed baseline\n", r.Name)
			continue
		}
		// Journal cells are fsync-bound, and fsync latency on shared or
		// virtualized disks swings with writeback backlog far more than
		// CPU-bound cells do — give them a wider gate. 50% still catches
		// the regression class that matters (a serialized or per-append
		// fsync path costs 3-5x, not 1.3x).
		tolerance := 0.8
		if strings.Contains(r.Name, "/journal") {
			tolerance = 0.5
		}
		floor := tolerance * base.SessionsSec
		if r.SessionsSec < floor {
			regressions++
			fmt.Fprintf(os.Stderr, "serve-bench: REGRESSION %s: %.0f sessions/sec < %.0f%% of committed %.0f\n",
				r.Name, r.SessionsSec, 100*tolerance, base.SessionsSec)
		} else {
			fmt.Fprintf(os.Stderr, "serve-bench: compare ok %s: %.0f sessions/sec vs committed %.0f\n",
				r.Name, r.SessionsSec, base.SessionsSec)
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d cells regressed past the gate vs %s", regressions, path)
	}
	return nil
}

// runCell drives one closed-loop cell: workers clients, each submitting
// sessions back to back against the cluster until the duration elapses.
// journalDir != "" turns the write-ahead journal on, measuring the
// durability overhead against the journal-off cells of the same shape
// ("auto" journals into a discarded temp dir).
func runCell(n, workers int, treeSpec string, t int, seed int64, duration time.Duration, journalDir string) (*Row, error) {
	syncInterval := syncFlag
	tr, err := cli.ParseTreeSpec(treeSpec, seed)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("serve/n=%d/workers=%d", n, workers)
	if journalDir == "auto" {
		dir, err := os.MkdirTemp("", "treeaa-bench-journal-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		journalDir = dir
	}
	if journalDir != "" {
		name += "/journal"
		if levelFlag == session.JournalSealed {
			name += "-sealed"
		}
	}
	specFor := func(i int) session.Spec {
		return session.Spec{Tree: treeSpec, Seed: seed, T: t,
			Inputs: cli.RotateInputs(tr, n, i), TTL: 2 * time.Minute}
	}
	oracles := make(map[string]*sim.Result)
	for i := 0; i < tr.NumVertices(); i++ {
		s := specFor(i)
		want, err := session.Oracle(n, s)
		if err != nil {
			return nil, fmt.Errorf("oracle %d: %w", i, err)
		}
		oracles[s.Inputs] = want
	}

	stats := &metrics.ServeStats{}
	jstats := &journal.Stats{}
	c, err := session.StartCluster(n, session.Options{
		MaxSessions: workers + n, Stats: stats, JournalDir: journalDir,
		JournalStats:        jstats,
		JournalLevel:        levelFlag,
		JournalSyncInterval: syncInterval})
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		latencies  []float64
		sessions   int
		mismatches int
		firstErr   error
	)
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	deadline := time.Now().Add(duration)
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := session.DialClient(c.ClientAddr(w%n), 10*time.Second)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer cl.Close()
			for i := w; time.Now().Before(deadline); i += workers {
				s := specFor(i)
				begin := time.Now()
				resp, err := cl.Submit(s, 0, true)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("worker %d: %w", w, err)
					}
					mu.Unlock()
					return
				}
				lat := time.Since(begin)
				got, err := resp.SimResult()
				mu.Lock()
				sessions++
				latencies = append(latencies, float64(lat.Nanoseconds()))
				if err != nil || !reflect.DeepEqual(got, oracles[s.Inputs]) {
					mismatches++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if firstErr != nil {
		return nil, firstErr
	}

	if journalDir != "" {
		fmt.Fprintf(os.Stderr, "serve-bench: journal: %d appends, %d syncs, last fsync %v, depth %d\n",
			jstats.Appends.Load(), jstats.Syncs.Load(), time.Duration(jstats.LastSyncNS.Load()), jstats.Depth.Load())
	}
	lat := metrics.Summarize(latencies)
	var allocsPer, bytesPer float64
	if sessions > 0 {
		allocsPer = float64(after.Mallocs-before.Mallocs) / float64(sessions)
		bytesPer = float64(stats.BatchBytes.Load()+stats.ClientBytes.Load()) / float64(sessions)
	}
	return &Row{
		Name:          name,
		N:             n,
		Workers:       workers,
		Tree:          treeSpec,
		Sessions:      sessions,
		Mismatches:    mismatches,
		SessionsSec:   float64(sessions) / elapsed.Seconds(),
		P50NS:         int64(lat.P50),
		P90NS:         int64(lat.P90),
		P99NS:         int64(lat.P99),
		MeanBatch:     stats.BatchOccupancy(),
		AllocsPerSess: allocsPer,
		BytesPerSess:  bytesPer,
		ElapsedNS:     elapsed.Nanoseconds(),
	}, nil
}
