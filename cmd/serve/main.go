// Command serve runs one daemon of an agreement-as-a-service deployment: it
// joins the daemon mesh (one duplex TCP link per daemon pair, shared by
// every session), accepts client sessions over a framed binary wire API,
// and steps this seat's engine for each admitted session on a sharded
// worker pool. Many sessions run concurrently, multiplexed and batched over
// the same links; each decided session's Result is byte-identical to the
// sequential sim.Run on the same spec.
//
// A deployment is one process per seat; the peers file has one "host:port"
// per line, line i = daemon i's peer listen address:
//
//	serve -id 0 -peers peers.txt -client 127.0.0.1:7000
//
// Clients then submit to any daemon via internal/session.DialClient. The
// pre-binary JSON protocol is still served when every daemon runs with
// -json-api (clients use DialJSONClient):
//
//	serve -id 0 -peers peers.txt -json-api
//
// The -cluster mode is a self-contained smoke test: it starts the whole
// deployment in-process on loopback, drives -sessions concurrent sessions
// with rotated inputs through the client API, and exits nonzero if any
// session fails to decide or any Result diverges from its sim.Run oracle:
//
//	serve -cluster 3 -sessions 100 -tree spider:3:3
//
// -mode async switches every engine to the event-driven asynchronous
// pipeline: messages deliver on arrival, with no end-of-round barriers and
// no round timeouts (-round-timeout becomes an idle watchdog bounding total
// silence). The mode joins the cluster identity hash, so every daemon of a
// deployment must agree on it. Asynchronous decisions depend on delivery
// order, so the async smoke judges validity and 1-agreement instead of
// oracle byte-identity; -journal-dir, -overlay and -rolling are refused,
// their recovery and relay machinery being built on the lock-step rounds
// async mode abolishes:
//
//	serve -cluster 3 -mode async -sessions 100 -tree spider:3:3
//
// Durability: -journal-dir enables the write-ahead session journal. Each
// daemon journals admissions, inbound frames and outcome seals to
// <dir>/daemon-<id>, and on restart replays the log — sealed sessions
// restore their decided Results byte-identically, live ones re-step their
// engines deterministically. -journal-level picks the tradeoff: "full"
// (default) logs every frame for deterministic replay of live sessions;
// "sealed" logs only admissions and seals — the same durable-ack contract
// for decided sessions at a fraction of the write volume (EXPERIMENTS.md
// E-durable). Observability: -metrics ADDR serves /metrics
// (Prometheus text) and /healthz; -session-log writes one JSON line per
// session lifecycle event.
//
// The -rolling mode is the durability smoke: a journaled loopback cluster
// under continuous load while every daemon is gracefully restarted in
// turn; any oracle mismatch or lost decided session exits nonzero:
//
//	serve -cluster 4 -rolling -sessions 64 -tree spider:3:3
//
// SIGINT/SIGTERM shut down gracefully: admissions stop, in-flight sessions
// drain (up to -drain-timeout), then the mesh and client listeners close.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"treeaa/internal/cli"
	"treeaa/internal/experiments"
	"treeaa/internal/journal"
	"treeaa/internal/metrics"
	"treeaa/internal/obs"
	"treeaa/internal/overlay"
	"treeaa/internal/session"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

func main() {
	var (
		id         = flag.Int("id", -1, "this daemon's seat id (line number in -peers)")
		peersFile  = flag.String("peers", "", "peers file: one host:port per line, line i = daemon i")
		clientAddr = flag.String("client", "127.0.0.1:0", "client API listen address")
		cluster    = flag.Int("cluster", 0, "run an n-daemon loopback deployment in-process (smoke mode)")
		sessions   = flag.Int("sessions", 100, "cluster mode: concurrent sessions to drive")
		treeSpec   = flag.String("tree", "spider:3:3", "cluster mode: tree spec for the driven sessions")
		spaceSpec  = flag.String("space", "", `cluster mode: "graph:"-prefixed graph spec for the driven sessions (wins over -tree)`)
		tFlag      = flag.Int("t", 0, "cluster mode: corruption budget of the driven sessions")
		seed       = flag.Int64("seed", 1, "cluster mode: tree-spec seed")
		maxSess    = flag.Int("max-sessions", 1024, "admission control: max in-flight sessions per daemon")
		queueDepth = flag.Int("queue-depth", 256, "per-session inbound queue bound (backpressure)")
		flushEvery = flag.Duration("flush-interval", 200*time.Microsecond, "mux batching flush tick")
		batchBytes = flag.Int("max-batch-bytes", 64<<10, "flush early when a link's outbox reaches this size")
		defaultTTL = flag.Duration("ttl", 30*time.Second, "default session deadline")
		setupTO    = flag.Duration("setup-timeout", 10*time.Second, "mesh construction budget")
		roundTO    = flag.Duration("round-timeout", 60*time.Second, "per-round barrier budget")
		drainTO    = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")
		shards     = flag.Int("shards", 0, "engine-pool width (0 = one per core, capped at 16)")
		flushOcc   = flag.Int("flush-occupancy", 0, "frames that cut a coalescing flush short (0 = default 32)")
		jsonAPI    = flag.Bool("json-api", false, "serve the legacy length-prefixed JSON client API instead of the binary protocol")
		journalDir = flag.String("journal-dir", "", "enable the write-ahead session journal under this directory (per-daemon subdirs)")
		journalLvl = flag.String("journal-level", "full", "journal capture level: full (replayable frames) or sealed (admissions+seals only, lower overhead)")
		metricsAt  = flag.String("metrics", "", "serve /metrics and /healthz on this address (e.g. 127.0.0.1:9090)")
		overlayAt  = flag.String("overlay", "", "communication-tree fabric spec (tree or tree:<branching>): joins the cluster hash and exports the overlay metric families")
		sessionLog = flag.String("session-log", "", "write per-session JSON lifecycle logs to this file ('-' = stderr)")
		linger     = flag.Duration("linger", 0, "cluster mode: keep the cluster and metrics endpoint up this long after the smoke")
		rolling    = flag.Bool("rolling", false, "cluster mode: rolling-restart smoke — restart each daemon in turn under load")
		mode       = flag.String("mode", "sync", "execution mode: sync (lock-step rounds, oracle-identical Results) or async (event-driven, no round barriers)")
	)
	var prof cli.Profile
	prof.RegisterFlags()
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	jlevel, err := session.ParseJournalLevel(*journalLvl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if err := checkMode(*mode, *journalDir, *overlayAt, *rolling); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if *overlayAt != "" {
		if _, err := overlay.ParseSpec(*overlayAt); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	}

	opts := session.Options{
		MaxSessions: *maxSess, QueueDepth: *queueDepth,
		FlushInterval: *flushEvery, MaxBatchBytes: *batchBytes,
		DefaultTTL: *defaultTTL, SetupTimeout: *setupTO,
		RoundTimeout: *roundTO, DrainTimeout: *drainTO,
		Shards: *shards, FlushOccupancy: *flushOcc, JSONClientAPI: *jsonAPI,
		JournalDir: *journalDir, JournalLevel: jlevel,
		Stats: &metrics.ServeStats{}, JournalStats: &journal.Stats{},
		OverlaySpec: *overlayAt, OverlayStats: &metrics.OverlayStats{},
		Async: *mode == "async",
	}
	var logClose func() error
	opts.SessionLog, logClose, err = sessionLogger(*sessionLog)
	if err == nil {
		switch {
		case *rolling:
			err = runRolling(ctx, *cluster, *sessions, *spaceSpec, *treeSpec, *tFlag, *seed, *metricsAt, opts)
		case *cluster > 0:
			err = runSmoke(ctx, *cluster, *sessions, *spaceSpec, *treeSpec, *tFlag, *seed, *metricsAt, *linger, opts)
		default:
			err = runSeat(ctx, *id, *peersFile, *clientAddr, *metricsAt, opts)
		}
	}
	if logClose != nil {
		logClose()
	}
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// checkMode validates -mode and refuses the flag combinations whose
// machinery is built on the lock-step round structure async mode abolishes.
func checkMode(mode, journalDir, overlaySpec string, rolling bool) error {
	switch mode {
	case "sync":
		return nil
	case "async":
	default:
		return fmt.Errorf("unknown -mode %q (want sync or async)", mode)
	}
	if journalDir != "" {
		return fmt.Errorf("-mode async: the journal's muted replay re-steps engines through " +
			"lock-step rounds, which async mode does not have — drop -journal-dir or use -mode sync")
	}
	if overlaySpec != "" {
		return fmt.Errorf("-mode async: the tree overlay relays round-batched traffic between " +
			"eor barriers, which async mode does not have — drop -overlay or use -mode sync")
	}
	if rolling {
		return fmt.Errorf("-mode async: the rolling-restart smoke needs the journal, " +
			"which async mode rejects — use -mode sync")
	}
	return nil
}

// sessionLogger builds the per-session structured logger for -session-log.
func sessionLogger(path string) (*slog.Logger, func() error, error) {
	switch path {
	case "":
		return nil, nil, nil
	case "-":
		return obs.NewSessionLogger(os.Stderr), nil, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("-session-log: %w", err)
	}
	return obs.NewSessionLogger(f), f.Close, nil
}

// serveObs binds the observability endpoint, if requested. ready is the
// /healthz probe, n the deployment's daemon count (it shapes the overlay
// gauges); the returned closer is a no-op when -metrics is unset.
func serveObs(addr string, id, n int, opts session.Options, ready func() error) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	jstats := opts.JournalStats
	if opts.JournalDir == "" {
		jstats = nil // no journal, no treeaa_journal_* families
	}
	oopts := obs.Options{
		DaemonID: id,
		Serve:    opts.Stats,
		Journal:  jstats,
		Ready:    ready,
	}
	if opts.OverlaySpec != "" {
		branching, err := overlay.ParseSpec(opts.OverlaySpec)
		if err != nil {
			return nil, err
		}
		lay, err := overlay.NewLayout(n, branching)
		if err != nil {
			return nil, fmt.Errorf("-overlay: %w", err)
		}
		oopts.Overlay = opts.OverlayStats
		oopts.OverlayDepth = lay.Depth()
		oopts.OverlayBranching = lay.Branching
	}
	srv, err := obs.Serve(addr, oopts)
	if err != nil {
		return nil, err
	}
	fmt.Printf("serve: metrics on http://%s/metrics, health on /healthz\n", srv.Addr())
	return func() { srv.Close() }, nil
}

// runSeat runs one daemon until the context cancels.
func runSeat(ctx context.Context, id int, peersFile, clientAddr, metricsAt string, opts session.Options) error {
	if peersFile == "" {
		return fmt.Errorf("-peers is required (or use -cluster)")
	}
	addrs, err := readPeers(peersFile)
	if err != nil {
		return err
	}
	d, err := session.NewDaemon(id, addrs, clientAddr, opts)
	if err != nil {
		return err
	}
	closeObs, err := serveObs(metricsAt, id, len(addrs), opts, d.Health)
	if err != nil {
		return err
	}
	defer closeObs()
	errCh := make(chan error, 1)
	go func() { errCh <- d.Run(ctx) }()
	select {
	case err := <-errCh:
		return err // setup failed before ready
	case <-d.Ready():
	}
	fmt.Printf("serve %d: mesh up (%d daemons), client API on %s\n", id, len(addrs), d.ClientAddr())
	err = <-errCh
	fmt.Printf("serve %d: %s\n", id, d.Stats())
	return err
}

// clusterHealth builds a /healthz probe covering every daemon of an
// in-process cluster.
func clusterHealth(c *session.Cluster, n int) func() error {
	return func() error {
		for i := 0; i < n; i++ {
			if err := c.Daemon(i).Health(); err != nil {
				return fmt.Errorf("daemon %d: %w", i, err)
			}
		}
		return nil
	}
}

// runSmoke starts n daemons in-process, drives sessions concurrent sessions
// through their client APIs, and verifies every Result against the
// sequential oracle. Any mismatch or failed session exits nonzero.
func runSmoke(ctx context.Context, n, sessions int, spaceSpec, treeSpec string, t int, seed int64,
	metricsAt string, linger time.Duration, opts session.Options) error {
	if sessions < 1 {
		return fmt.Errorf("-sessions must be ≥ 1")
	}
	sp, err := cli.ParseSpace(spaceSpec, treeSpec, seed)
	if err != nil {
		return err
	}
	if opts.Async && sp.IsGraph() {
		return fmt.Errorf("-mode async does not support graph spaces — drop -space or use -mode sync")
	}
	specFor := func(i int) session.Spec {
		return session.Spec{Tree: sp.Spec, Seed: seed, T: t,
			Inputs: sp.RotateInputs(n, i), TTL: 2 * time.Minute}
	}
	// Sync sessions are pinned to the sequential oracle byte for byte. Async
	// decisions depend on delivery order, so there is no reference schedule:
	// those sessions are judged by the paper's properties instead — validity
	// (outputs inside the input hull) and 1-agreement.
	oracles := make(map[string]*sim.Result)
	if !opts.Async {
		for i := 0; i < sp.NumVertices() && i < sessions; i++ {
			s := specFor(i)
			want, err := session.Oracle(n, s)
			if err != nil {
				return fmt.Errorf("oracle %d: %w", i, err)
			}
			oracles[s.Inputs] = want
		}
	}
	verify := func(s session.Spec, got *sim.Result) string {
		if !opts.Async {
			if !reflect.DeepEqual(got, oracles[s.Inputs]) {
				return "ORACLE MISMATCH: served Result diverges from sim.Run"
			}
			return ""
		}
		tr := sp.Tree // async is tree-only, rejected above for graphs
		inputs, err := cli.ParseInputs(tr, s.Inputs, n)
		if err != nil {
			return err.Error()
		}
		outputs := make(map[sim.PartyID]tree.VertexID, len(got.Outputs))
		for p, raw := range got.Outputs {
			v, ok := raw.(tree.VertexID)
			if !ok {
				return fmt.Sprintf("party %d output is %T, not a vertex", p, raw)
			}
			outputs[p] = v
		}
		if maxDist, valid := experiments.Judge(tr, inputs, nil, outputs); !valid || maxDist > 1 {
			return fmt.Sprintf("PROPERTY VIOLATION: valid=%v maxDist=%d", valid, maxDist)
		}
		return ""
	}

	if opts.MaxSessions < sessions+n {
		opts.MaxSessions = sessions + n
	}
	c, err := session.StartCluster(n, opts)
	if err != nil {
		return err
	}
	defer c.Stop()
	closeObs, err := serveObs(metricsAt, 0, n, opts, clusterHealth(c, n))
	if err != nil {
		return err
	}
	defer closeObs()
	clusterMode, check := "sync", "oracle-identical"
	if opts.Async {
		clusterMode, check = "async", "valid and 1-agreeing"
	}
	fmt.Printf("serve: %d-daemon %s loopback cluster up, driving %d concurrent sessions of %s\n",
		n, clusterMode, sessions, sp.Spec)

	start := time.Now()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []string
		decided  int
	)
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			fail := func(format string, args ...any) {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("session %d: ", i)+fmt.Sprintf(format, args...))
				mu.Unlock()
			}
			s := specFor(i)
			dial := session.DialClient
			if opts.JSONClientAPI {
				dial = session.DialJSONClient
			}
			cl, err := dial(c.ClientAddr(i%n), opts.SetupTimeout)
			if err != nil {
				fail("dial: %v", err)
				return
			}
			defer cl.Close()
			resp, err := cl.Submit(s, 0, true)
			if err != nil {
				fail("submit: %v", err)
				return
			}
			got, err := resp.SimResult()
			if err != nil {
				fail("%v", err)
				return
			}
			if msg := verify(s, got); msg != "" {
				fail("%s", msg)
				return
			}
			mu.Lock()
			decided++
			mu.Unlock()
		}()
	}
	waitCh := make(chan struct{})
	go func() { wg.Wait(); close(waitCh) }()
	select {
	case <-waitCh:
	case <-ctx.Done():
		return fmt.Errorf("interrupted")
	}
	elapsed := time.Since(start)

	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "serve:", f)
	}
	fmt.Printf("serve: %d/%d sessions decided %s in %v (%.0f sessions/sec)\n",
		decided, sessions, check, elapsed.Round(time.Millisecond), float64(decided)/elapsed.Seconds())
	// The Stats object is shared across the in-process daemons, so one line
	// carries the whole deployment's funnel and batching counters.
	fmt.Printf("serve: cluster totals: %s\n", c.Daemons[0].Stats())
	if len(failures) > 0 {
		return fmt.Errorf("%d of %d sessions failed the %s check", len(failures), sessions, check)
	}
	if linger > 0 {
		fmt.Printf("serve: lingering %v for external scrapes\n", linger)
		select {
		case <-time.After(linger):
		case <-ctx.Done():
		}
	}
	return nil
}

// runRolling is the rolling-restart smoke: a journaled n-daemon cluster
// under continuous closed-loop load while each daemon is gracefully
// restarted in turn. Workers retry transient window errors (dials and
// rejections while a seat is down or the mesh degraded); the hard failures
// are an oracle mismatch on any decided session or a cluster that stops
// making progress.
func runRolling(ctx context.Context, n, workers int, spaceSpec, treeSpec string, t int, seed int64,
	metricsAt string, opts session.Options) error {
	if n < 2 {
		return fmt.Errorf("-rolling needs -cluster ≥ 2, got %d", n)
	}
	if workers < 1 {
		return fmt.Errorf("-sessions must be ≥ 1")
	}
	if workers > 64 {
		workers = 64 // closed-loop workers, not total sessions
	}
	if opts.JournalDir == "" {
		dir, err := os.MkdirTemp("", "treeaa-rolling-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		opts.JournalDir = dir
	}
	sp, err := cli.ParseSpace(spaceSpec, treeSpec, seed)
	if err != nil {
		return err
	}
	specFor := func(i int) session.Spec {
		return session.Spec{Tree: sp.Spec, Seed: seed, T: t,
			Inputs: sp.RotateInputs(n, i), TTL: 2 * time.Minute}
	}
	oracles := make(map[string]*sim.Result)
	for i := 0; i < sp.NumVertices(); i++ {
		s := specFor(i)
		want, err := session.Oracle(n, s)
		if err != nil {
			return fmt.Errorf("oracle %d: %w", i, err)
		}
		oracles[s.Inputs] = want
	}
	if opts.MaxSessions < workers*2+n {
		opts.MaxSessions = workers*2 + n
	}
	c, err := session.StartCluster(n, opts)
	if err != nil {
		return err
	}
	defer c.Stop()
	closeObs, err := serveObs(metricsAt, 0, n, opts, clusterHealth(c, n))
	if err != nil {
		return err
	}
	defer closeObs()
	fmt.Printf("serve: rolling restart over %d journaled daemons, %d closed-loop workers\n", n, workers)

	var (
		stop       atomic.Bool
		decided    atomic.Int64
		retried    atomic.Int64
		mismatches atomic.Int64
		mu         sync.Mutex
		firstBad   string
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; !stop.Load(); i += workers {
				s := specFor(i)
				// Redial every iteration: the target's client port moves
				// across restarts, and a drained daemon resets old conns.
				cl, err := session.DialClient(c.ClientAddr(w%n), 2*time.Second)
				if err != nil {
					retried.Add(1)
					time.Sleep(50 * time.Millisecond)
					continue
				}
				resp, err := cl.Submit(s, 0, true)
				cl.Close()
				if err != nil {
					// Degraded/draining rejections and torn connections are
					// the expected restart-window noise; keep the load up.
					retried.Add(1)
					time.Sleep(20 * time.Millisecond)
					continue
				}
				got, err := resp.SimResult()
				if err != nil {
					retried.Add(1) // failed/expired in the window: retryable
					continue
				}
				if !reflect.DeepEqual(got, oracles[s.Inputs]) {
					mismatches.Add(1)
					mu.Lock()
					if firstBad == "" {
						firstBad = fmt.Sprintf("worker %d session %d: decided Result diverges from oracle", w, i)
					}
					mu.Unlock()
					return
				}
				decided.Add(1)
			}
		}()
	}

	rollErr := func() error {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return fmt.Errorf("interrupted")
			}
			before := decided.Load()
			fmt.Printf("serve: restarting daemon %d (decided so far: %d)\n", i, before)
			if err := c.Restart(i); err != nil {
				return fmt.Errorf("rolling restart of daemon %d: %w", i, err)
			}
			// The mesh must heal and the load must demonstrably progress
			// past the restart before the next seat goes down.
			deadline := time.Now().Add(opts.SetupTimeout + 30*time.Second)
			for {
				healthy := clusterHealth(c, n)() == nil
				if healthy && decided.Load() > before {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("no decided sessions after restarting daemon %d (healthy=%v)", i, healthy)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
		return nil
	}()
	stop.Store(true)
	wg.Wait()

	fmt.Printf("serve: rolling restart done: %d decided, %d retried in restart windows, %d mismatches\n",
		decided.Load(), retried.Load(), mismatches.Load())
	if rollErr != nil {
		return rollErr
	}
	if mismatches.Load() > 0 {
		return fmt.Errorf("rolling restart: %s", firstBad)
	}
	if decided.Load() == 0 {
		return fmt.Errorf("rolling restart: no session decided at all")
	}
	return nil
}

// readPeers parses a peers file: one host:port per line, ignoring blank
// lines and #-comments; line i is daemon i's peer listen address.
func readPeers(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var addrs []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, _, err := net.SplitHostPort(line); err != nil {
			return nil, fmt.Errorf("%s: bad peer address %q: %w", path, line, err)
		}
		addrs = append(addrs, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(addrs) < 2 {
		return nil, fmt.Errorf("%s: need at least 2 peers, got %d", path, len(addrs))
	}
	return addrs, nil
}
