// Command treeaa runs the TreeAA protocol on a tree with a chosen adversary
// and prints the execution: the tree, the party inputs, a per-round trace
// and the honest outputs with their hull/agreement check.
//
// Usage:
//
//	treeaa -n 7 -t 2 -tree path:40 -adversary splitvote -seed 1
//	treeaa -tree @map.txt -inputs v3,v6,v5,v8 -n 4 -t 1
//
// Tree specs: path:K, star:K, spider:LEGS:LEN, caterpillar:SPINE:LEGS,
// kary:K:DEPTH, random:K, figure3, or @FILE with "a - b" edge lines.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"treeaa/internal/adversary"
	"treeaa/internal/cli"
	"treeaa/internal/core"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

func main() {
	var (
		nFlag      = flag.Int("n", 7, "number of parties")
		tFlag      = flag.Int("t", 2, "Byzantine budget (t < n/3)")
		treeSpec   = flag.String("tree", "path:40", "input space tree spec (see -help)")
		inputSpec  = flag.String("inputs", "", "comma-separated input vertex labels (default: spread across the tree)")
		advName    = flag.String("adversary", "none", "none|silent|crash|equivocator|splitvote|halfburn|noise")
		seed       = flag.Int64("seed", 1, "seed for random trees / noise adversaries")
		quiet      = flag.Bool("q", false, "suppress the tree drawing and round trace")
		concurrent = flag.Bool("concurrent", false, "run each party in its own goroutine (round-barrier driver)")
		dotFile    = flag.String("dot", "", "write a Graphviz DOT visualization of the execution to this file")
	)
	flag.Parse()
	if err := run(*nFlag, *tFlag, *treeSpec, *inputSpec, *advName, *seed, *quiet, *concurrent, *dotFile); err != nil {
		fmt.Fprintln(os.Stderr, "treeaa:", err)
		os.Exit(1)
	}
}

func run(n, t int, treeSpec, inputSpec, advName string, seed int64, quiet, concurrent bool, dotFile string) error {
	tr, err := cli.ParseTreeSpec(treeSpec, seed)
	if err != nil {
		return err
	}
	inputs, err := parseInputs(tr, inputSpec, n)
	if err != nil {
		return err
	}
	adv, corrupt, err := buildAdversary(advName, tr, n, t, seed)
	if err != nil {
		return err
	}

	d, _, _ := tr.Diameter()
	fmt.Printf("TreeAA: n=%d t=%d |V|=%d D=%d budget=%d rounds\n",
		n, t, tr.NumVertices(), d, core.Rounds(tr))
	if !quiet {
		marks := map[tree.VertexID]string{}
		for i, v := range inputs {
			tag := fmt.Sprintf("input p%d", i)
			if corrupt[sim.PartyID(i)] {
				tag += " (byz)"
			}
			if prev, ok := marks[v]; ok {
				tag = prev + "; " + tag
			}
			marks[v] = tag
		}
		fmt.Println()
		fmt.Print(tr.Render(tr.Root(), marks))
		fmt.Println()
	}

	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		m, err := core.NewMachine(core.Config{Tree: tr, N: n, T: t, ID: sim.PartyID(i), Input: inputs[i]})
		if err != nil {
			return err
		}
		machines[i] = m
	}
	var trace sim.Trace
	simCfg := sim.Config{
		N: n, MaxCorrupt: t, MaxRounds: core.Rounds(tr) + 2,
		Adversary: adv, Trace: &trace,
	}
	driver := sim.Run
	if concurrent {
		driver = sim.RunConcurrent
	}
	res, err := driver(simCfg, machines)
	if err != nil {
		return err
	}

	if !quiet {
		fmt.Println("round trace:")
		for _, r := range trace.Rounds {
			done := ""
			if len(r.NewlyDone) > 0 {
				done = fmt.Sprintf("  done: %v", r.NewlyDone)
			}
			fmt.Printf("  round %3d: %5d msgs  %7d bytes%s\n", r.Round, r.Messages, r.Bytes, done)
		}
		fmt.Println()
	}

	fmt.Printf("execution: %d rounds, %d messages, %d bytes\n", res.Rounds, res.Messages, res.Bytes)
	var honestIn []tree.VertexID
	for i, v := range inputs {
		if !corrupt[sim.PartyID(i)] {
			honestIn = append(honestIn, v)
		}
	}
	hull := tr.ConvexHull(honestIn)
	hullSet := make(map[tree.VertexID]bool, len(hull))
	for _, v := range hull {
		hullSet[v] = true
	}
	fmt.Printf("honest hull: {%s}\n", strings.Join(tr.Labels(hull), ", "))
	ok := true
	var outs []tree.VertexID
	for p := sim.PartyID(0); int(p) < n; p++ {
		raw, have := res.Outputs[p]
		switch {
		case corrupt[p]:
			fmt.Printf("  p%-2d BYZANTINE\n", p)
		case have:
			v := raw.(tree.VertexID)
			valid := hullSet[v]
			if !valid {
				ok = false
			}
			fmt.Printf("  p%-2d output %-8s valid=%v\n", p, tr.Label(v), valid)
			outs = append(outs, v)
		default:
			ok = false
			fmt.Printf("  p%-2d NO OUTPUT\n", p)
		}
	}
	maxDist := 0
	for i := range outs {
		for j := i + 1; j < len(outs); j++ {
			if dd := tr.Dist(outs[i], outs[j]); dd > maxDist {
				maxDist = dd
			}
		}
	}
	fmt.Printf("max pairwise output distance: %d (1-agreement: %v)\n", maxDist, maxDist <= 1)
	if dotFile != "" {
		if err := writeDOT(dotFile, tr, inputs, corrupt, hullSet, outs); err != nil {
			return err
		}
		fmt.Printf("wrote %s (render with: dot -Tsvg %s -o out.svg)\n", dotFile, dotFile)
	}
	if !ok || maxDist > 1 {
		return fmt.Errorf("AA properties violated")
	}
	return nil
}

// writeDOT colors the execution: hull vertices light green, inputs outlined,
// outputs gold.
func writeDOT(path string, tr *tree.Tree, inputs []tree.VertexID, corrupt map[sim.PartyID]bool, hull map[tree.VertexID]bool, outs []tree.VertexID) error {
	attrs := map[tree.VertexID]string{}
	for v := range hull {
		attrs[v] = `fillcolor="palegreen", style=filled`
	}
	for i, v := range inputs {
		if corrupt[sim.PartyID(i)] {
			continue
		}
		if a, ok := attrs[v]; ok {
			attrs[v] = a + `, penwidth=2`
		} else {
			attrs[v] = `penwidth=2`
		}
	}
	for _, v := range outs {
		attrs[v] = `fillcolor="gold", style=filled, penwidth=2`
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteDOT(f, "treeaa", attrs)
}

func parseInputs(tr *tree.Tree, spec string, n int) ([]tree.VertexID, error) {
	if spec == "" {
		inputs := make([]tree.VertexID, n)
		for i := range inputs {
			inputs[i] = tree.VertexID(i * (tr.NumVertices() - 1) / maxInt(n-1, 1))
		}
		return inputs, nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("got %d inputs for n = %d", len(parts), n)
	}
	inputs := make([]tree.VertexID, n)
	for i, label := range parts {
		v, err := tr.VertexByLabel(strings.TrimSpace(label))
		if err != nil {
			return nil, err
		}
		inputs[i] = v
	}
	return inputs, nil
}

func buildAdversary(name string, tr *tree.Tree, n, t int, seed int64) (sim.Adversary, map[sim.PartyID]bool, error) {
	if name == "none" || t == 0 {
		return nil, map[sim.PartyID]bool{}, nil
	}
	ids := adversary.FirstParties(n, t)
	corrupt := make(map[sim.PartyID]bool, len(ids))
	for _, id := range ids {
		corrupt[id] = true
	}
	phases := core.PhaseTags(tr)
	perPhase := func(mk func(p core.PhaseTag, k int) sim.Adversary) sim.Adversary {
		var parts []sim.Adversary
		for k, p := range phases {
			parts = append(parts, mk(p, k))
		}
		return &adversary.Compose{Strategies: parts}
	}
	switch name {
	case "silent":
		return &adversary.Silent{IDs: ids}, corrupt, nil
	case "crash":
		rounds := make([]int, len(ids))
		rng := rand.New(rand.NewSource(seed))
		for i := range rounds {
			rounds[i] = 1 + rng.Intn(core.Rounds(tr)+1)
		}
		return &adversary.CrashAt{IDs: ids, Rounds: rounds}, corrupt, nil
	case "equivocator":
		return perPhase(func(p core.PhaseTag, _ int) sim.Adversary {
			return &adversary.GradecastEquivocator{IDs: ids, N: n, Tag: p.Tag, StartRound: p.StartRound, Lo: -100, Hi: 1e6}
		}), corrupt, nil
	case "splitvote":
		return perPhase(func(p core.PhaseTag, _ int) sim.Adversary {
			return &adversary.SplitVote{IDs: ids, N: n, T: t, Tag: p.Tag, StartRound: p.StartRound, PerIteration: 1}
		}), corrupt, nil
	case "halfburn":
		return perPhase(func(p core.PhaseTag, _ int) sim.Adversary {
			return &adversary.HalfBurn{IDs: ids, N: n, T: t, Tag: p.Tag, StartRound: p.StartRound}
		}), corrupt, nil
	case "noise":
		return perPhase(func(p core.PhaseTag, k int) sim.Adversary {
			return &adversary.RandomNoise{IDs: ids, N: n, Tag: p.Tag, StartRound: p.StartRound, Seed: seed + int64(1000*k), MaxVal: 2 * tr.NumVertices()}
		}), corrupt, nil
	default:
		return nil, nil, fmt.Errorf("unknown adversary %q", name)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
