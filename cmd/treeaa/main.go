// Command treeaa runs the TreeAA protocol on a tree with a chosen adversary
// and prints the execution: the tree, the party inputs, a per-round trace
// and the honest outputs with their hull/agreement check.
//
// Usage:
//
//	treeaa -n 7 -t 2 -tree path:40 -adversary splitvote -seed 1
//	treeaa -tree @map.txt -inputs v3,v6,v5,v8 -n 4 -t 1
//
// Tree specs: path:K, star:K, spider:LEGS:LEN, caterpillar:SPINE:LEGS,
// kary:K:DEPTH, random:K, figure3, or @FILE with "a - b" edge lines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"treeaa/internal/cli"
	"treeaa/internal/core"
	"treeaa/internal/sim"
	"treeaa/internal/transport"
	"treeaa/internal/tree"
)

func main() {
	var (
		nFlag      = flag.Int("n", 7, "number of parties")
		tFlag      = flag.Int("t", 2, "Byzantine budget (t < n/3)")
		treeSpec   = flag.String("tree", "path:40", "input space tree spec (see -help)")
		inputSpec  = flag.String("inputs", "", "comma-separated input vertex labels (default: spread across the tree)")
		advName    = flag.String("adversary", "none", strings.Join(cli.AdversaryNames(), "|"))
		seed       = flag.Int64("seed", 1, "seed for random trees / noise adversaries")
		quiet      = flag.Bool("q", false, "suppress the tree drawing and round trace")
		transName  = flag.String("transport", "mem", strings.Join(transport.Names(), "|"))
		concurrent = flag.Bool("concurrent", false, "alias for -transport mem-concurrent")
		dotFile    = flag.String("dot", "", "write a Graphviz DOT visualization of the execution to this file")
	)
	flag.Parse()
	name := *transName
	if *concurrent && name == "mem" {
		name = "mem-concurrent"
	}
	if err := run(*nFlag, *tFlag, *treeSpec, *inputSpec, *advName, *seed, *quiet, name, *dotFile); err != nil {
		fmt.Fprintln(os.Stderr, "treeaa:", err)
		os.Exit(1)
	}
}

func run(n, t int, treeSpec, inputSpec, advName string, seed int64, quiet bool, transName, dotFile string) error {
	tr, err := cli.ParseTreeSpec(treeSpec, seed)
	if err != nil {
		return err
	}
	inputs, err := cli.ParseInputs(tr, inputSpec, n)
	if err != nil {
		return err
	}
	adv, corrupt, err := cli.BuildAdversary(advName, tr, n, t, seed)
	if err != nil {
		return err
	}
	driver, err := transport.New(transName)
	if err != nil {
		return err
	}

	d, _, _ := tr.Diameter()
	fmt.Printf("TreeAA: n=%d t=%d |V|=%d D=%d budget=%d rounds\n",
		n, t, tr.NumVertices(), d, core.Rounds(tr))
	if !quiet {
		marks := map[tree.VertexID]string{}
		for i, v := range inputs {
			tag := fmt.Sprintf("input p%d", i)
			if corrupt[sim.PartyID(i)] {
				tag += " (byz)"
			}
			if prev, ok := marks[v]; ok {
				tag = prev + "; " + tag
			}
			marks[v] = tag
		}
		fmt.Println()
		fmt.Print(tr.Render(tr.Root(), marks))
		fmt.Println()
	}

	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		m, err := core.NewMachine(core.Config{Tree: tr, N: n, T: t, ID: sim.PartyID(i), Input: inputs[i]})
		if err != nil {
			return err
		}
		machines[i] = m
	}
	var trace sim.Trace
	simCfg := sim.Config{
		N: n, MaxCorrupt: t, MaxRounds: core.Rounds(tr) + 2,
		Adversary: adv, Trace: &trace,
	}
	res, err := driver.Run(simCfg, machines)
	if err != nil {
		return err
	}

	if !quiet {
		fmt.Println("round trace:")
		for _, r := range trace.Rounds {
			done := ""
			if len(r.NewlyDone) > 0 {
				done = fmt.Sprintf("  done: %v", r.NewlyDone)
			}
			fmt.Printf("  round %3d: %5d msgs  %7d bytes%s\n", r.Round, r.Messages, r.Bytes, done)
		}
		fmt.Println()
	}

	fmt.Printf("execution: %d rounds, %d messages, %d bytes\n", res.Rounds, res.Messages, res.Bytes)
	var honestIn []tree.VertexID
	for i, v := range inputs {
		if !corrupt[sim.PartyID(i)] {
			honestIn = append(honestIn, v)
		}
	}
	hull := tr.ConvexHull(honestIn)
	hullSet := make(map[tree.VertexID]bool, len(hull))
	for _, v := range hull {
		hullSet[v] = true
	}
	fmt.Printf("honest hull: {%s}\n", strings.Join(tr.Labels(hull), ", "))
	ok := true
	var outs []tree.VertexID
	for p := sim.PartyID(0); int(p) < n; p++ {
		raw, have := res.Outputs[p]
		switch {
		case corrupt[p]:
			fmt.Printf("  p%-2d BYZANTINE\n", p)
		case have:
			v := raw.(tree.VertexID)
			valid := hullSet[v]
			if !valid {
				ok = false
			}
			fmt.Printf("  p%-2d output %-8s valid=%v\n", p, tr.Label(v), valid)
			outs = append(outs, v)
		default:
			ok = false
			fmt.Printf("  p%-2d NO OUTPUT\n", p)
		}
	}
	maxDist := 0
	for i := range outs {
		for j := i + 1; j < len(outs); j++ {
			if dd := tr.Dist(outs[i], outs[j]); dd > maxDist {
				maxDist = dd
			}
		}
	}
	fmt.Printf("max pairwise output distance: %d (1-agreement: %v)\n", maxDist, maxDist <= 1)
	if dotFile != "" {
		if err := writeDOT(dotFile, tr, inputs, corrupt, hullSet, outs); err != nil {
			return err
		}
		fmt.Printf("wrote %s (render with: dot -Tsvg %s -o out.svg)\n", dotFile, dotFile)
	}
	if !ok || maxDist > 1 {
		return fmt.Errorf("AA properties violated")
	}
	return nil
}

// writeDOT colors the execution: hull vertices light green, inputs outlined,
// outputs gold.
func writeDOT(path string, tr *tree.Tree, inputs []tree.VertexID, corrupt map[sim.PartyID]bool, hull map[tree.VertexID]bool, outs []tree.VertexID) error {
	attrs := map[tree.VertexID]string{}
	for v := range hull {
		attrs[v] = `fillcolor="palegreen", style=filled`
	}
	for i, v := range inputs {
		if corrupt[sim.PartyID(i)] {
			continue
		}
		if a, ok := attrs[v]; ok {
			attrs[v] = a + `, penwidth=2`
		} else {
			attrs[v] = `penwidth=2`
		}
	}
	for _, v := range outs {
		attrs[v] = `fillcolor="gold", style=filled, penwidth=2`
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteDOT(f, "treeaa", attrs)
}
