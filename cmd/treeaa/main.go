// Command treeaa runs approximate agreement on a tree or block graph with a
// chosen adversary and prints the execution: the input space, the party
// inputs, a per-round trace and the honest outputs with their
// hull/agreement check.
//
// Usage:
//
//	treeaa -n 7 -t 2 -tree path:40 -adversary splitvote -seed 1
//	treeaa -tree @map.txt -inputs v3,v6,v5,v8 -n 4 -t 1
//	treeaa -n 4 -t 1 -space graph:cliquechain:3:4
//
// Tree specs: path:K, star:K, spider:LEGS:LEN, caterpillar:SPINE:LEGS,
// kary:K:DEPTH, random:K, figure3, or @FILE with "a - b" edge lines.
// Graph specs (-space): graph:cycle:K, graph:clique:K, graph:cliquechain:B:S,
// graph:cactus:B:L, graph:randomblock:K, graph:@FILE.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"treeaa/internal/cli"
	"treeaa/internal/sim"
	"treeaa/internal/transport"
	"treeaa/internal/tree"
)

func main() {
	var (
		nFlag      = flag.Int("n", 7, "number of parties")
		tFlag      = flag.Int("t", 2, "Byzantine budget (t < n/3)")
		treeSpec   = flag.String("tree", "path:40", "input space tree spec (see -help)")
		spaceSpec  = flag.String("space", "", `input space override: "graph:"-prefixed graph spec (wins over -tree)`)
		inputSpec  = flag.String("inputs", "", "comma-separated input vertex labels (default: spread across the space)")
		advName    = flag.String("adversary", "none", strings.Join(cli.AdversaryNames(), "|"))
		seed       = flag.Int64("seed", 1, "seed for random trees/graphs / noise adversaries")
		quiet      = flag.Bool("q", false, "suppress the space drawing and round trace")
		transName  = flag.String("transport", "mem", strings.Join(transport.Names(), "|"))
		concurrent = flag.Bool("concurrent", false, "alias for -transport mem-concurrent")
		dotFile    = flag.String("dot", "", "write a Graphviz DOT visualization of the execution to this file")
	)
	flag.Parse()
	name := *transName
	if *concurrent && name == "mem" {
		name = "mem-concurrent"
	}
	if err := run(*nFlag, *tFlag, *spaceSpec, *treeSpec, *inputSpec, *advName, *seed, *quiet, name, *dotFile); err != nil {
		fmt.Fprintln(os.Stderr, "treeaa:", err)
		os.Exit(1)
	}
}

func run(n, t int, spaceSpec, treeSpec, inputSpec, advName string, seed int64, quiet bool, transName, dotFile string) error {
	sp, err := cli.ParseSpace(spaceSpec, treeSpec, seed)
	if err != nil {
		return err
	}
	inputs, err := sp.ParseInputs(inputSpec, n)
	if err != nil {
		return err
	}
	adv, corrupt, err := sp.BuildAdversary(advName, n, t, seed)
	if err != nil {
		return err
	}
	driver, err := transport.New(transName)
	if err != nil {
		return err
	}

	if sp.IsGraph() {
		g := sp.Graph
		fmt.Printf("GraphAA: n=%d t=%d |V|=%d |E|=%d blocks=%d D=%d blockcut=%d nodes budget=%d rounds blockgraph=%v\n",
			n, t, g.NumVertices(), g.NumEdges(), len(g.Blocks()), g.Diameter(),
			g.BlockCutTree().NumVertices(), sp.Rounds(), g.IsBlockGraph())
	} else {
		d, _, _ := sp.Tree.Diameter()
		fmt.Printf("TreeAA: n=%d t=%d |V|=%d D=%d budget=%d rounds\n",
			n, t, sp.NumVertices(), d, sp.Rounds())
	}
	if !quiet {
		fmt.Println()
		if sp.IsGraph() {
			for i, b := range sp.Graph.Blocks() {
				fmt.Printf("  block %d (%s): {%s}\n", i, b.Kind,
					strings.Join(sp.Graph.Labels(b.Vertices), ", "))
			}
			for i, v := range inputs {
				tag := ""
				if corrupt[sim.PartyID(i)] {
					tag = " (byz)"
				}
				fmt.Printf("  input p%d: %s%s\n", i, sp.Label(v), tag)
			}
		} else {
			marks := map[tree.VertexID]string{}
			for i, v := range inputs {
				tag := fmt.Sprintf("input p%d", i)
				if corrupt[sim.PartyID(i)] {
					tag += " (byz)"
				}
				if prev, ok := marks[v]; ok {
					tag = prev + "; " + tag
				}
				marks[v] = tag
			}
			fmt.Print(sp.Tree.Render(sp.Tree.Root(), marks))
		}
		fmt.Println()
	}

	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		m, _, err := sp.NewMachine(n, t, sim.PartyID(i), inputs[i])
		if err != nil {
			return err
		}
		machines[i] = m
	}
	var trace sim.Trace
	simCfg := sim.Config{
		N: n, MaxCorrupt: t, MaxRounds: sp.Rounds() + 2,
		Adversary: adv, Trace: &trace,
	}
	res, err := driver.Run(simCfg, machines)
	if err != nil {
		return err
	}

	if !quiet {
		fmt.Println("round trace:")
		for _, r := range trace.Rounds {
			done := ""
			if len(r.NewlyDone) > 0 {
				done = fmt.Sprintf("  done: %v", r.NewlyDone)
			}
			fmt.Printf("  round %3d: %5d msgs  %7d bytes%s\n", r.Round, r.Messages, r.Bytes, done)
		}
		fmt.Println()
	}

	fmt.Printf("execution: %d rounds, %d messages, %d bytes\n", res.Rounds, res.Messages, res.Bytes)
	var honestIn []tree.VertexID
	for i, v := range inputs {
		if !corrupt[sim.PartyID(i)] {
			honestIn = append(honestIn, v)
		}
	}
	hull := sp.ConvexHull(honestIn)
	hullSet := make(map[tree.VertexID]bool, len(hull))
	for _, v := range hull {
		hullSet[v] = true
	}
	fmt.Printf("honest hull: {%s}\n", strings.Join(sp.Labels(hull), ", "))
	ok := true
	var outs []tree.VertexID
	for p := sim.PartyID(0); int(p) < n; p++ {
		raw, have := res.Outputs[p]
		switch {
		case corrupt[p]:
			fmt.Printf("  p%-2d BYZANTINE\n", p)
		case have:
			v := raw.(tree.VertexID)
			valid := hullSet[v]
			if !valid {
				ok = false
			}
			fmt.Printf("  p%-2d output %-8s valid=%v\n", p, sp.Label(v), valid)
			outs = append(outs, v)
		default:
			ok = false
			fmt.Printf("  p%-2d NO OUTPUT\n", p)
		}
	}
	maxDist, agree := 0, true
	for i := range outs {
		for j := i + 1; j < len(outs); j++ {
			if dd := sp.Dist(outs[i], outs[j]); dd > maxDist {
				maxDist = dd
			}
			if !sp.AgreementOK(outs[i], outs[j]) {
				agree = false
			}
		}
	}
	if sp.IsGraph() && !sp.Graph.IsBlockGraph() {
		fmt.Printf("max pairwise output distance: %d (per-block agreement: %v)\n", maxDist, agree)
	} else {
		fmt.Printf("max pairwise output distance: %d (1-agreement: %v)\n", maxDist, maxDist <= 1)
		agree = agree && maxDist <= 1
	}
	if dotFile != "" {
		if err := writeDOT(dotFile, sp, inputs, corrupt, hullSet, outs); err != nil {
			return err
		}
		fmt.Printf("wrote %s (render with: dot -Tsvg %s -o out.svg)\n", dotFile, dotFile)
	}
	if !ok || !agree {
		return fmt.Errorf("AA properties violated")
	}
	return nil
}

// dotWriter is the shared DOT surface of trees and graphs.
type dotWriter interface {
	WriteDOT(w io.Writer, name string, attrs map[tree.VertexID]string) error
}

// writeDOT colors the execution: hull vertices light green, inputs outlined,
// outputs gold.
func writeDOT(path string, sp *cli.Space, inputs []tree.VertexID, corrupt map[sim.PartyID]bool, hull map[tree.VertexID]bool, outs []tree.VertexID) error {
	attrs := map[tree.VertexID]string{}
	for v := range hull {
		attrs[v] = `fillcolor="palegreen", style=filled`
	}
	for i, v := range inputs {
		if corrupt[sim.PartyID(i)] {
			continue
		}
		if a, ok := attrs[v]; ok {
			attrs[v] = a + `, penwidth=2`
		} else {
			attrs[v] = `penwidth=2`
		}
	}
	for _, v := range outs {
		attrs[v] = `fillcolor="gold", style=filled, penwidth=2`
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var dw dotWriter = sp.Tree
	name := "treeaa"
	if sp.IsGraph() {
		dw, name = sp.Graph, "graphaa"
	}
	return dw.WriteDOT(f, name, attrs)
}
