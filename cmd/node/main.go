// Command node runs one TreeAA party as a real networked process: it binds
// its TCP listen address, meshes with its peers, and steps the protocol in
// lock-step rounds with every message wire-encoded onto sockets.
//
// A deployment is one process per honest party plus, when an adversary is
// configured, one *adversary host* process seated at the lowest corrupted
// id — it co-hosts all t corrupted parties, because the model's adversary
// is a single rushing, coordinated entity that cannot be split. The peers
// file has one "host:port" per line; line i is party i's listen address.
//
//	node -id 0 -peers peers.txt -t 2 -tree path:40 -adversary splitvote
//	node -id 5 -peers peers.txt -t 2 -tree path:40 -adversary splitvote   # host seat (n=7)
//
// The -cluster mode is a self-contained smoke test: it allocates loopback
// ports, spawns the whole deployment as child processes of this binary,
// and checks validity and 1-agreement of the outputs:
//
//	node -cluster 3 -tree path:16
//	node -cluster 7 -t 2 -tree path:40 -adversary splitvote
//
// A -chaos plan (see internal/chaos) injects seeded faults at every seat:
// per-link latency and stalls, one-shot connection drops, healing
// partitions, and honest crash-restarts. All seats must be launched with
// the same plan — it is part of the session handshake.
//
//	node -cluster 4 -tree path:16 -chaos 'lat:1ms±1ms,crash:p1@r2'
//
// -mode async replaces the lock-step rounds with the event-driven
// asynchronous pipeline: no EOR barriers, no round timeouts — every seat
// dispatches on arrival and decides when its RBC/witness thresholds fill.
// Async fleets are honest-only (Byzantine async behaviour is exercised
// in-process by cmd/check) and accept only delay-style chaos (lat, stall,
// partition); drop and crash clauses are refused with an explanation.
//
//	node -cluster 4 -tree star:6 -mode async -chaos 'lat:200ms±150ms@p2'
//
// -space graph:<spec> swaps the input space for a block graph (see
// internal/graph): the seats run TreeAA on the graph's block-cut tree and
// decode locally, and the cluster checks geodesic-hull validity plus the
// graph's agreement guarantee. Graph spaces run sync full-mesh only.
//
//	node -cluster 4 -t 1 -space graph:cliquechain:3:4 -adversary splitvote
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"treeaa/internal/adversary"
	"treeaa/internal/async"
	"treeaa/internal/chaos"
	"treeaa/internal/cli"
	"treeaa/internal/core"
	"treeaa/internal/metrics"
	"treeaa/internal/overlay"
	"treeaa/internal/sim"
	"treeaa/internal/transport"
	"treeaa/internal/tree"
)

func main() {
	var (
		id          = flag.Int("id", -1, "this process's party id (line number in -peers)")
		peersFile   = flag.String("peers", "", "peers file: one host:port per line, line i = party i")
		tFlag       = flag.Int("t", 0, "Byzantine budget (corrupted set is the highest t ids)")
		treeSpec    = flag.String("tree", "path:40", "input space tree spec (as in cmd/treeaa)")
		spaceSpec   = flag.String("space", "", `input space override: "graph:"-prefixed graph spec (wins over -tree); sync full-mesh only`)
		inputSpec   = flag.String("inputs", "", "comma-separated input vertex labels (default: spread)")
		advName     = flag.String("adversary", "none", strings.Join(cli.AdversaryNames(), "|"))
		mode        = flag.String("mode", "sync", "execution mode: sync (lock-step rounds) or async (event-driven, honest fleets only)")
		seed        = flag.Int64("seed", 1, "seed for random trees / noise adversaries / chaos")
		cluster     = flag.Int("cluster", 0, "spawn an n-party loopback cluster of this binary and check agreement")
		chaosSpec   = flag.String("chaos", "", "chaos plan (see internal/chaos); must match across all seats")
		overlaySpec = flag.String("overlay", "", "route traffic over a communication tree instead of the full mesh (tree or tree:<branching>); crash-fault only")
		setupTO     = flag.Duration("setup-timeout", 10*time.Second, "mesh construction budget")
		roundTO     = flag.Duration("round-timeout", 30*time.Second, "per-round traffic budget (also the reconnect budget)")
	)
	flag.Parse()
	// SIGINT/SIGTERM cancel the context, which unwinds the endpoint's
	// accept/read loops and any blocked barrier wait instead of leaving the
	// deployment to ride out its round timeout (or leak goroutines).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	if *mode != "sync" && *mode != "async" {
		err = fmt.Errorf("-mode %q: want sync or async", *mode)
	} else if *cluster > 0 {
		err = runCluster(ctx, *cluster, *tFlag, *spaceSpec, *treeSpec, *inputSpec, *advName, *mode, *seed, *chaosSpec, *overlaySpec, *setupTO, *roundTO)
	} else {
		err = runSeat(ctx, *id, *peersFile, *tFlag, *spaceSpec, *treeSpec, *inputSpec, *advName, *mode, *seed, *chaosSpec, *overlaySpec, *setupTO, *roundTO)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "node:", err)
		os.Exit(1)
	}
}

// runSeat runs one party (or the adversary host seat) of a deployment.
func runSeat(ctx context.Context, id int, peersFile string, t int, spaceSpec, treeSpec, inputSpec, advName, mode string, seed int64,
	chaosSpec, overlaySpec string, setupTO, roundTO time.Duration) error {
	if peersFile == "" {
		return fmt.Errorf("-peers is required (or use -cluster)")
	}
	addrs, err := readPeers(peersFile)
	if err != nil {
		return err
	}
	n := len(addrs)
	if id < 0 || id >= n {
		return fmt.Errorf("-id %d out of range for %d peers", id, n)
	}
	if advName == "crash" {
		return fmt.Errorf("the crash adversary corrupts adaptively; messages on the wire cannot " +
			"be retracted — use cmd/treeaa's in-process transport for it")
	}
	sp, err := cli.ParseSpace(spaceSpec, treeSpec, seed)
	if err != nil {
		return err
	}
	inputs, err := sp.ParseInputs(inputSpec, n)
	if err != nil {
		return err
	}
	adv, corruptSet, err := sp.BuildAdversary(advName, n, t, seed)
	if err != nil {
		return err
	}
	var corrupted []sim.PartyID
	if adv != nil {
		corrupted = adversary.FirstParties(n, t)
	}
	plan, err := chaos.Parse(chaosSpec)
	if err != nil {
		return err
	}
	if err := plan.Validate(n); err != nil {
		return err
	}
	for p := range plan.Crashes {
		if corruptSet[p] {
			return fmt.Errorf("chaos plan crashes party %d, which the adversary corrupts", p)
		}
	}
	if mode == "async" {
		if err := checkAsyncFlags(sp, advName, overlaySpec, plan); err != nil {
			return err
		}
		return runAsyncSeat(ctx, id, addrs, t, sp.Tree, treeSpec, inputSpec, inputs, seed,
			plan, chaosSpec, setupTO, roundTO)
	}
	if overlaySpec != "" {
		if sp.IsGraph() {
			return fmt.Errorf("-overlay: the tree overlay relays TreeAA rounds only; graph " +
				"spaces run on the full mesh — drop -overlay or drop -space")
		}
		return runOverlaySeat(ctx, id, addrs, t, sp.Tree, treeSpec, inputSpec, advName, inputs, seed,
			plan, chaosSpec, overlaySpec, setupTO, roundTO)
	}

	stats := &metrics.WireStats{}
	chaosStats := &metrics.ChaosStats{}
	opts := transport.Options{Stats: stats, SetupTimeout: setupTO, RoundTimeout: roundTO}
	opts = chaos.NewInjector(plan, seed, chaosStats).Apply(opts)
	// The chaos spec and timeouts join the session hash: a deployment where
	// seats disagree on the fault plan fails the handshake instead of
	// producing a half-faulted mesh.
	// The canonical space spec (sp.Spec equals treeSpec for tree spaces, so
	// tree deployments keep their session identity) leads the hash: a fleet
	// mixing tree and graph seats fails the handshake.
	pcfg := transport.ProcessConfig{
		Ctx: ctx,
		ID:  sim.PartyID(id), N: n, Addrs: addrs,
		Corrupted: corrupted, MaxRounds: sp.Rounds() + 2,
		Session: transport.DeriveSession(append([]string{sp.Spec, inputSpec, advName,
			fmt.Sprint(n), fmt.Sprint(t), fmt.Sprint(seed),
			chaosSpec, setupTO.String(), roundTO.String()}, addrs...)...),
		Opts: opts,
	}
	role := "party"
	if corruptSet[sim.PartyID(id)] {
		role = "adversary-host"
		pcfg.Adversary = adv
	} else {
		m, _, err := sp.NewMachine(n, t, sim.PartyID(id), inputs[id])
		if err != nil {
			return err
		}
		pcfg.Machine = m
		pcfg.Opts.Restart = func(p sim.PartyID) (sim.Machine, error) {
			m, _, err := sp.NewMachine(n, t, p, inputs[p])
			return m, err
		}
	}

	fmt.Printf("node %d: %s, n=%d t=%d space=%s adversary=%s, listening on %s\n",
		id, role, n, t, sp.Spec, advName, addrs[id])
	res, err := transport.RunProcess(pcfg)
	if err != nil {
		return err
	}
	fmt.Printf("node %d: execution %d rounds, sent %d protocol msgs / %d bytes\n",
		id, res.Rounds, res.Messages, res.Bytes)
	fmt.Printf("node %d: wire: %s\n", id, stats)
	if !plan.Empty() {
		fmt.Printf("node %d: chaos: %s\n", id, chaosStats)
	}
	if role == "party" {
		v := res.Output.(tree.VertexID)
		fmt.Printf("node %d: output %s (done round %d)\n", id, sp.Label(v), res.DoneRound)
		fmt.Printf("RESULT id=%d role=party output=%s rounds=%d\n", id, sp.Label(v), res.Rounds)
	} else {
		fmt.Printf("RESULT id=%d role=adversary rounds=%d\n", id, res.Rounds)
	}
	return nil
}

// checkAsyncFlags rejects the flag combinations -mode async cannot honor,
// each with the reason: adversary hosting needs the rushing adversary's
// round-global view, the overlay relays round-batched traffic, and drop or
// crash chaos requires the round-indexed recovery paths — all three are
// artifacts of the lock-step schedule async mode abolishes. Graph spaces
// are refused too: the async pipeline runs TreeAA directly on a tree and
// has no seam for the block-cut decode.
func checkAsyncFlags(sp *cli.Space, advName, overlaySpec string, plan *chaos.Plan) error {
	if sp.IsGraph() {
		return fmt.Errorf("-mode async: async mode does not support graph spaces — " +
			"drop -space or use -mode sync")
	}
	if advName != "none" {
		return fmt.Errorf("-mode async: async fleets are honest-only (the rushing adversary " +
			"is defined against lock-step rounds); Byzantine async behaviour is exercised " +
			"in-process by cmd/check — drop -adversary or use -mode sync")
	}
	if overlaySpec != "" {
		return fmt.Errorf("-mode async: the tree overlay relays round-batched traffic between " +
			"eor barriers, which async mode does not have — drop -overlay or use -mode sync")
	}
	return chaos.RestrictAsync(plan)
}

// runAsyncSeat runs one honest party of an asynchronous deployment: no
// rounds, no barriers — the seat dispatches whatever arrives, announces its
// decision, and exits once every peer has announced too.
func runAsyncSeat(ctx context.Context, id int, addrs []string, t int, tr *tree.Tree,
	treeSpec, inputSpec string, inputs []tree.VertexID, seed int64,
	plan *chaos.Plan, chaosSpec string, setupTO, roundTO time.Duration) error {
	n := len(addrs)
	m, err := async.NewPipeline(tr, n, t, async.PartyID(id), inputs[id])
	if err != nil {
		return err
	}
	stats := &metrics.WireStats{}
	chaosStats := &metrics.ChaosStats{}
	opts := transport.Options{Stats: stats, SetupTimeout: setupTO, RoundTimeout: roundTO}
	opts = chaos.NewInjector(plan, seed, chaosStats).Apply(opts)
	// The mode leads the session hash: a deployment mixing sync and async
	// seats fails the handshake instead of wedging on missing barriers.
	pcfg := transport.AsyncProcessConfig{
		Ctx: ctx,
		ID:  sim.PartyID(id), N: n, Addrs: addrs, Machine: m,
		Session: transport.DeriveSession(append([]string{"async", treeSpec, inputSpec,
			fmt.Sprint(n), fmt.Sprint(t), fmt.Sprint(seed),
			chaosSpec, setupTO.String(), roundTO.String()}, addrs...)...),
		Opts: opts,
	}
	fmt.Printf("node %d: party (async), n=%d t=%d tree=%s, listening on %s\n",
		id, n, t, treeSpec, addrs[id])
	res, err := transport.RunAsyncProcess(pcfg)
	if err != nil {
		return err
	}
	fmt.Printf("node %d: execution %d deliveries, sent %d protocol msgs / %d bytes\n",
		id, res.Deliveries, res.Messages, res.Bytes)
	fmt.Printf("node %d: wire: %s\n", id, stats)
	if !plan.Empty() {
		fmt.Printf("node %d: chaos: %s\n", id, chaosStats)
	}
	v := res.Outputs[sim.PartyID(id)].(tree.VertexID)
	fmt.Printf("node %d: output %s\n", id, tr.Label(v))
	fmt.Printf("RESULT id=%d role=party output=%s deliveries=%d\n", id, tr.Label(v), res.Deliveries)
	return nil
}

// runOverlaySeat runs one honest party over the tree overlay: interior
// seats (root, sub-leaders) listen and relay, leaves only dial their
// parent. The fleet is honest by construction — the overlay refuses
// adversaries — and the only chaos the relay fabric can host is the crash
// clause, injected through the overlay's own seat supervisor.
func runOverlaySeat(ctx context.Context, id int, addrs []string, t int, tr *tree.Tree,
	treeSpec, inputSpec, advName string, inputs []tree.VertexID, seed int64,
	plan *chaos.Plan, chaosSpec, overlaySpec string, setupTO, roundTO time.Duration) error {
	if advName != "none" {
		return fmt.Errorf("-overlay: the tree overlay runs honest fleets only; a rushing " +
			"adversary needs the full mesh's global view — drop -adversary or drop -overlay")
	}
	if err := plan.Restrict("-overlay",
		"the overlay's connections are internal relay hops, not the party-to-party links "+
			"link-level clauses name — only crash:pP@rR applies", chaos.ClauseCrash); err != nil {
		return err
	}
	branching, err := overlay.ParseSpec(overlaySpec)
	if err != nil {
		return err
	}
	n := len(addrs)
	lay, err := overlay.NewLayout(n, branching)
	if err != nil {
		return err
	}
	m, err := core.NewMachine(core.Config{Tree: tr, N: n, T: t, ID: sim.PartyID(id), Input: inputs[id]})
	if err != nil {
		return err
	}

	wires := &metrics.WireStats{}
	ostats := &metrics.OverlayStats{}
	// The overlay spec joins the session hash: a fleet mixing mesh and tree
	// seats — or two branching factors — refuses to pair at the handshake.
	ocfg := overlay.ProcessConfig{
		Ctx: ctx,
		ID:  sim.PartyID(id), N: n, Addrs: addrs,
		Machine: m, MaxRounds: core.Rounds(tr) + 2,
		Session: transport.DeriveSession(append([]string{"overlay", overlaySpec, treeSpec, inputSpec,
			fmt.Sprint(n), fmt.Sprint(t), fmt.Sprint(seed),
			chaosSpec, setupTO.String(), roundTO.String()}, addrs...)...),
		Opts: overlay.Options{
			Branching: branching, SetupTimeout: setupTO, RoundTimeout: roundTO,
			Stats: ostats, Wire: wires, CrashPlan: plan.Crashes,
			Restart: func(p sim.PartyID) (sim.Machine, error) {
				return core.NewMachine(core.Config{Tree: tr, N: n, T: t, ID: p, Input: inputs[p]})
			},
		},
	}
	position := "leaf"
	switch {
	case sim.PartyID(id) == overlay.Root:
		position = "root"
	case lay.IsSubleader(sim.PartyID(id)):
		position = "sub-leader"
	}
	fmt.Printf("node %d: party (%s of tree:%d overlay), n=%d t=%d tree=%s, listening on %s\n",
		id, position, lay.Branching, n, t, treeSpec, addrs[id])
	res, err := overlay.RunProcess(ocfg)
	if err != nil {
		return err
	}
	fmt.Printf("node %d: execution %d rounds, sent %d protocol msgs / %d bytes\n",
		id, res.Rounds, res.Messages, res.Bytes)
	fmt.Printf("node %d: wire: %s\n", id, wires)
	fmt.Printf("node %d: overlay: %s\n", id, ostats)
	v := res.Output.(tree.VertexID)
	fmt.Printf("node %d: output %s (done round %d)\n", id, tr.Label(v), res.DoneRound)
	fmt.Printf("RESULT id=%d role=party output=%s rounds=%d\n", id, tr.Label(v), res.Rounds)
	return nil
}

// runCluster spawns a whole deployment of this binary on loopback ports and
// checks the protocol's guarantees across the collected outputs.
func runCluster(ctx context.Context, n, t int, spaceSpec, treeSpec, inputSpec, advName, mode string, seed int64,
	chaosSpec, overlaySpec string, setupTO, roundTO time.Duration) error {
	if t < 0 || (t > 0 && n <= 3*t) {
		return fmt.Errorf("need n > 3t, got n=%d t=%d", n, t)
	}
	sp, err := cli.ParseSpace(spaceSpec, treeSpec, seed)
	if err != nil {
		return err
	}
	if overlaySpec != "" {
		// Fail fast before spawning children; each seat re-validates.
		if _, err := overlay.ParseSpec(overlaySpec); err != nil {
			return err
		}
		if advName != "none" {
			return fmt.Errorf("-overlay: the tree overlay runs honest fleets only — drop -adversary or drop -overlay")
		}
		if sp.IsGraph() {
			return fmt.Errorf("-overlay: the tree overlay relays TreeAA rounds only; graph " +
				"spaces run on the full mesh — drop -overlay or drop -space")
		}
	}
	inputs, err := sp.ParseInputs(inputSpec, n)
	if err != nil {
		return err
	}
	_, corruptSet, err := sp.BuildAdversary(advName, n, t, seed)
	if err != nil {
		return err
	}
	// Fail fast on a bad chaos plan before spawning n children (each child
	// re-validates against its own flags anyway).
	if plan, err := chaos.Parse(chaosSpec); err != nil {
		return err
	} else if err := plan.Validate(n); err != nil {
		return err
	} else if mode == "async" {
		if err := checkAsyncFlags(sp, advName, overlaySpec, plan); err != nil {
			return err
		}
	} else if overlaySpec != "" {
		if err := plan.Restrict("-overlay",
			"the overlay's connections are internal relay hops, not the party-to-party links "+
				"link-level clauses name — only crash:pP@rR applies", chaos.ClauseCrash); err != nil {
			return err
		}
	}

	// Reserve one loopback port per party, then release them for the
	// children to bind. The window between close and child bind is a
	// port-theft race in principle; the session handshake turns any
	// collision into a clean failure rather than a confused mesh.
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	dir, err := os.MkdirTemp("", "treeaa-node")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	peersFile := filepath.Join(dir, "peers.txt")
	if err := os.WriteFile(peersFile, []byte(strings.Join(addrs, "\n")+"\n"), 0o644); err != nil {
		return err
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	for _, ln := range lns {
		ln.Close()
	}

	// One child per honest party, plus the adversary host seat.
	var seats []int
	for i := 0; i < n; i++ {
		if !corruptSet[sim.PartyID(i)] {
			seats = append(seats, i)
		}
	}
	if len(corruptSet) > 0 {
		seats = append(seats, n-t) // observer = lowest corrupted id
	}
	outputs := make(map[int]string)
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		errs []error
	)
	for _, seat := range seats {
		wg.Add(1)
		go func(seat int) {
			defer wg.Done()
			cmd := exec.CommandContext(ctx, self, "-id", fmt.Sprint(seat), "-peers", peersFile,
				"-t", fmt.Sprint(t), "-space", spaceSpec, "-tree", treeSpec, "-inputs", inputSpec,
				"-adversary", advName, "-mode", mode, "-seed", fmt.Sprint(seed),
				"-chaos", chaosSpec, "-overlay", overlaySpec,
				"-setup-timeout", setupTO.String(), "-round-timeout", roundTO.String())
			// On Ctrl-C, forward SIGTERM so each seat unwinds through its own
			// signal handler (drain, shutdown) instead of being SIGKILLed.
			cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGTERM) }
			cmd.WaitDelay = 5 * time.Second
			out, err := cmd.CombinedOutput()
			mu.Lock()
			defer mu.Unlock()
			for _, line := range strings.Split(strings.TrimRight(string(out), "\n"), "\n") {
				fmt.Printf("  [%d] %s\n", seat, line)
				var id, work int
				var label string
				if _, e := fmt.Sscanf(line, "RESULT id=%d role=party output=%s rounds=%d", &id, &label, &work); e == nil {
					outputs[id] = strings.Fields(label)[0]
				} else if _, e := fmt.Sscanf(line, "RESULT id=%d role=party output=%s deliveries=%d", &id, &label, &work); e == nil {
					outputs[id] = strings.Fields(label)[0]
				}
			}
			if err != nil {
				errs = append(errs, fmt.Errorf("seat %d: %w", seat, err))
			}
		}(seat)
	}
	wg.Wait()
	if len(errs) > 0 {
		return fmt.Errorf("cluster children failed: %v", errs)
	}

	// Validity: outputs lie in the input-space hull of honest inputs.
	// Agreement: distance <= 1 on trees and block graphs, a shared block on
	// graphs with cycle blocks.
	var honestIn []tree.VertexID
	for i := 0; i < n; i++ {
		if !corruptSet[sim.PartyID(i)] {
			honestIn = append(honestIn, inputs[i])
		}
	}
	hull := make(map[tree.VertexID]bool)
	for _, v := range sp.ConvexHull(honestIn) {
		hull[v] = true
	}
	var outs []tree.VertexID
	ok := true
	for i := 0; i < n; i++ {
		if corruptSet[sim.PartyID(i)] {
			continue
		}
		label, have := outputs[i]
		if !have {
			fmt.Printf("cluster: party %d reported no output\n", i)
			ok = false
			continue
		}
		v, err := sp.VertexByLabel(label)
		if err != nil {
			return fmt.Errorf("party %d reported unknown vertex %q", i, label)
		}
		if !hull[v] {
			fmt.Printf("cluster: party %d output %s outside the honest hull\n", i, label)
			ok = false
		}
		outs = append(outs, v)
	}
	maxDist, agree := 0, true
	for i := range outs {
		for j := i + 1; j < len(outs); j++ {
			if d := sp.Dist(outs[i], outs[j]); d > maxDist {
				maxDist = d
			}
			if !sp.AgreementOK(outs[i], outs[j]) {
				agree = false
			}
		}
	}
	if sp.IsGraph() && !sp.Graph.IsBlockGraph() {
		fmt.Printf("cluster: n=%d t=%d adversary=%s, max pairwise output distance %d (per-block agreement: %v)\n",
			n, t, advName, maxDist, agree)
	} else {
		agree = agree && maxDist <= 1
		fmt.Printf("cluster: n=%d t=%d adversary=%s, max pairwise output distance %d (1-agreement: %v)\n",
			n, t, advName, maxDist, maxDist <= 1)
	}
	if !ok || !agree {
		return fmt.Errorf("AA properties violated")
	}
	return nil
}

// readPeers parses a peers file: one host:port per line, ignoring blank
// lines and #-comments; line i is party i's listen address.
func readPeers(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var addrs []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, _, err := net.SplitHostPort(line); err != nil {
			return nil, fmt.Errorf("%s: bad peer address %q: %w", path, line, err)
		}
		addrs = append(addrs, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(addrs) < 2 {
		return nil, fmt.Errorf("%s: need at least 2 peers, got %d", path, len(addrs))
	}
	return addrs, nil
}
