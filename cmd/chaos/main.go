// Command chaos soaks the TCP substrate under seeded fault injection: it
// sweeps seeds × chaos plans × adversaries over transport.LocalCluster and
// asserts the protocol's safety properties after every run — outputs inside
// the honest input hull, pairwise output distance ≤ 1, and a Result
// byte-identical to the sequential sim.Run oracle (latency, stalls and
// partitions are pure delays; drops and crashes are repaired losses).
//
//	chaos                                # default matrix, aligned table
//	chaos -n 7 -t 2 -seeds 1-5 -adversaries none,splitvote
//	chaos -plans 'lat:2ms±1ms;crash:p1@r2' -json
//	chaos -schedule -plans 'lat:5ms±3ms' -seeds 7   # print the fault schedule
//
// Plans are separated by ';' (clauses inside a plan use ','); see
// internal/chaos for the plan language. The exit status is non-zero if any
// cell fails a safety assertion.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"treeaa/internal/chaos"
)

func main() {
	var (
		trees    = flag.String("trees", "path:16", "comma-separated tree specs (as in cmd/treeaa)")
		n        = flag.Int("n", 4, "parties per run")
		t        = flag.Int("t", 1, "Byzantine budget (corrupted set is the highest t ids)")
		seeds    = flag.String("seeds", "1-3", "seeds: comma list and/or A-B ranges (e.g. 1,2,5-8)")
		plans    = flag.String("plans", defaultPlans, "chaos plans, ';'-separated ('' = no chaos)")
		advs     = flag.String("adversaries", "none,splitvote", "comma-separated adversary names")
		jsonOut  = flag.Bool("json", false, "emit one JSON object per cell instead of a table")
		schedule = flag.Bool("schedule", false, "print each plan's materialized fault schedule and exit")
		frames   = flag.Int("schedule-frames", 4, "frames per link to materialize with -schedule")
		setupTO  = flag.Duration("setup-timeout", 10*time.Second, "mesh construction budget per run")
		roundTO  = flag.Duration("round-timeout", 30*time.Second, "per-round traffic budget (also the reconnect budget)")
	)
	flag.Parse()
	if err := run(*trees, *n, *t, *seeds, *plans, *advs, *jsonOut, *schedule, *frames, *setupTO, *roundTO); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

// defaultPlans exercises every fault type on the default n=4 topology.
const defaultPlans = ";" +
	"lat:1ms±1ms;" +
	"stall:p1@r2-3:5ms;" +
	"drop:p0-p2@r2;" +
	"crash:p1@r2;" +
	"partition:{0-1|2-3}@r2:40ms;" +
	"lat:500µs±500µs,drop:p2@r3,crash:p1@r2"

func run(trees string, n, t int, seeds, plans, advs string, jsonOut, schedule bool, frames int,
	setupTO, roundTO time.Duration) error {
	seedList, err := parseSeeds(seeds)
	if err != nil {
		return err
	}
	planList := strings.Split(plans, ";")

	if schedule {
		for _, spec := range planList {
			p, err := chaos.Parse(spec)
			if err != nil {
				return err
			}
			for _, seed := range seedList {
				fmt.Print(p.Schedule(seed, n, frames))
			}
		}
		return nil
	}

	enc := json.NewEncoder(os.Stdout)
	failures := 0
	reports, err := chaos.Sweep(chaos.SweepConfig{
		Trees: strings.Split(trees, ","), N: n, T: t,
		Seeds: seedList, Plans: planList, Adversaries: strings.Split(advs, ","),
		SetupTimeout: setupTO, RoundTimeout: roundTO,
		Progress: func(rep *chaos.Report) {
			if !rep.Passed() {
				failures++
			}
			if jsonOut {
				enc.Encode(rep)
			}
		},
	})
	if err != nil {
		return err
	}
	if !jsonOut {
		fmt.Print(chaos.Table(reports))
	}
	fmt.Printf("chaos: %d cells, %d failed\n", len(reports), failures)
	if failures > 0 {
		return fmt.Errorf("%d cells failed safety assertions", failures)
	}
	return nil
}

// parseSeeds decodes "1,2,5-8" into [1 2 5 6 7 8].
func parseSeeds(spec string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		a, b, isRange := strings.Cut(part, "-")
		lo, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		hi := lo
		if isRange {
			if hi, err = strconv.ParseInt(b, 10, 64); err != nil || hi < lo {
				return nil, fmt.Errorf("bad seed range %q", part)
			}
		}
		for s := lo; s <= hi; s++ {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds in %q", spec)
	}
	return out, nil
}
