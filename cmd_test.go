package treeaa

// Runtime smoke tests for the cmd/ binaries (skipped with -short): every
// tool must run its default experiment to completion and print its key
// sections.

import (
	"os/exec"
	"strings"
	"testing"
)

func TestCommandsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("commands spawn subprocesses; skipped with -short")
	}
	cases := []struct {
		name  string
		args  []string
		wants []string
	}{
		{
			name:  "treeaa default",
			args:  []string{"run", "./cmd/treeaa", "-tree", "figure3", "-n", "4", "-t", "1", "-q"},
			wants: []string{"1-agreement: true", "honest hull"},
		},
		{
			name:  "treeaa splitvote concurrent",
			args:  []string{"run", "./cmd/treeaa", "-tree", "spider:3:6", "-n", "7", "-t", "2", "-adversary", "splitvote", "-concurrent", "-q"},
			wants: []string{"1-agreement: true"},
		},
		{
			name:  "treeaa halfburn on a path (shortcut phase)",
			args:  []string{"run", "./cmd/treeaa", "-tree", "path:30", "-n", "7", "-t", "2", "-adversary", "halfburn", "-q"},
			wants: []string{"1-agreement: true"},
		},
		{
			name:  "treeaa over tcp transport",
			args:  []string{"run", "./cmd/treeaa", "-tree", "path:24", "-n", "4", "-t", "1", "-adversary", "splitvote", "-transport", "tcp", "-q"},
			wants: []string{"1-agreement: true"},
		},
		{
			name:  "node loopback cluster",
			args:  []string{"run", "./cmd/node", "-cluster", "3", "-tree", "path:16"},
			wants: []string{"1-agreement: true"},
		},
		{
			name:  "node cluster with adversary host",
			args:  []string{"run", "./cmd/node", "-cluster", "7", "-t", "2", "-tree", "path:40", "-adversary", "splitvote"},
			wants: []string{"role=adversary", "1-agreement: true"},
		},
		{
			name: "node cluster under chaos",
			args: []string{"run", "./cmd/node", "-cluster", "4", "-t", "1", "-tree", "path:16",
				"-adversary", "splitvote", "-chaos", "lat:200µs±200µs,crash:p1@r2"},
			wants: []string{"chaos:", "1 crashes", "1-agreement: true"},
		},
		{
			name: "chaos soak tiny matrix",
			args: []string{"run", "./cmd/chaos", "-seeds", "1", "-plans", "lat:200µs±200µs;drop:p0-p2@r2",
				"-adversaries", "none", "-trees", "path:12"},
			wants: []string{"oracle", "pass", "2 cells, 0 failed"},
		},
		{
			name:  "chaos help exits zero",
			args:  []string{"run", "./cmd/chaos", "-help"},
			wants: []string{"Usage", "-plans"},
		},
		{
			name:  "chaos schedule print",
			args:  []string{"run", "./cmd/chaos", "-schedule", "-plans", "lat:1ms±1ms,crash:p1@r2", "-seeds", "7"},
			wants: []string{"chaos plan", "seed 7", "crash p1 at round 2"},
		},
		{
			name:  "bench-rounds",
			args:  []string{"run", "./cmd/bench-rounds", "-sizes", "64,256", "-family", "caterpillar"},
			wants: []string{"treeaa_norm", "caterpillar"},
		},
		{
			name:  "bench-rounds csv",
			args:  []string{"run", "./cmd/bench-rounds", "-sizes", "64", "-family", "path", "-csv"},
			wants: []string{"family,V,D"},
		},
		{
			name:  "lowerbound",
			args:  []string{"run", "./cmd/lowerbound", "-n", "7", "-t", "2"},
			wants: []string{"minimal rounds forced", "chain-of-views"},
		},
		{
			name:  "adversary-eval",
			args:  []string{"run", "./cmd/adversary-eval", "-n", "7", "-t", "2", "-d", "1000", "-tree", "spider:3:8"},
			wants: []string{"halfburn", "splitvote", "correctness matrix"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command("go", tc.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v failed: %v\n%s", tc.args, err, out)
			}
			for _, want := range tc.wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
