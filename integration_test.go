package treeaa

// Integration tests: full-system executions crossing every module — tree
// families × adversary strategies × (n, t) configurations × both simulator
// drivers — asserting the Definition 2 properties (Termination, Validity,
// 1-Agreement) on every run. These complement the per-package unit tests
// with end-to-end coverage.

import (
	"fmt"
	"math/rand"
	"testing"

	"treeaa/internal/adversary"
	"treeaa/internal/baseline"
	"treeaa/internal/core"
	"treeaa/internal/exactaa"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// assertAA checks Definition 2 over the honest outputs.
func assertAA(t *testing.T, tr *tree.Tree, inputs []tree.VertexID, corrupt map[sim.PartyID]bool, outputs map[sim.PartyID]tree.VertexID, ctx string) {
	t.Helper()
	var honestIn []tree.VertexID
	want := 0
	for i, v := range inputs {
		if !corrupt[sim.PartyID(i)] {
			honestIn = append(honestIn, v)
			want++
		}
	}
	hull := make(map[tree.VertexID]bool)
	for _, v := range tr.ConvexHull(honestIn) {
		hull[v] = true
	}
	got := 0
	var outs []tree.VertexID
	for p, v := range outputs {
		if corrupt[p] {
			continue
		}
		got++
		if !hull[v] {
			t.Errorf("%s: validity violated at party %d (output %s)", ctx, p, tr.Label(v))
		}
		outs = append(outs, v)
	}
	if got != want {
		t.Errorf("%s: termination violated: %d of %d honest outputs", ctx, got, want)
	}
	for i := range outs {
		for j := i + 1; j < len(outs); j++ {
			if d := tr.Dist(outs[i], outs[j]); d > 1 {
				t.Errorf("%s: 1-agreement violated: %s vs %s (distance %d)",
					ctx, tr.Label(outs[i]), tr.Label(outs[j]), d)
			}
		}
	}
}

// strategyFactory builds an adversary for a given tree and (n, t).
type strategyFactory struct {
	name string
	mk   func(tr *tree.Tree, n, t int, seed int64) sim.Adversary
}

func treeAAStrategies() []strategyFactory {
	return []strategyFactory{
		{"none", func(*tree.Tree, int, int, int64) sim.Adversary { return nil }},
		{"silent", func(_ *tree.Tree, n, t int, _ int64) sim.Adversary {
			return &adversary.Silent{IDs: adversary.FirstParties(n, t)}
		}},
		{"crash-staggered", func(tr *tree.Tree, n, t int, _ int64) sim.Adversary {
			ids := adversary.FirstParties(n, t)
			rounds := make([]int, len(ids))
			for i := range rounds {
				rounds[i] = 2 + 3*i
			}
			return &adversary.CrashAt{IDs: ids, Rounds: rounds}
		}},
		{"equivocator-all-phases", func(tr *tree.Tree, n, t int, _ int64) sim.Adversary {
			ids := adversary.FirstParties(n, t)
			return composePhases(tr, func(p core.PhaseTag, _ int) sim.Adversary {
				return &adversary.GradecastEquivocator{IDs: ids, N: n, Tag: p.Tag, StartRound: p.StartRound, Lo: -99, Hi: 9e5}
			})
		}},
		{"splitvote-all-phases", func(tr *tree.Tree, n, t int, _ int64) sim.Adversary {
			ids := adversary.FirstParties(n, t)
			return composePhases(tr, func(p core.PhaseTag, _ int) sim.Adversary {
				return &adversary.SplitVote{IDs: ids, N: n, T: t, Tag: p.Tag, StartRound: p.StartRound, PerIteration: 1}
			})
		}},
		{"halfburn-all-phases", func(tr *tree.Tree, n, t int, _ int64) sim.Adversary {
			ids := adversary.FirstParties(n, t)
			return composePhases(tr, func(p core.PhaseTag, _ int) sim.Adversary {
				return &adversary.HalfBurn{IDs: ids, N: n, T: t, Tag: p.Tag, StartRound: p.StartRound}
			})
		}},
		{"replay", func(_ *tree.Tree, n, t int, _ int64) sim.Adversary {
			return &adversary.Replay{IDs: adversary.FirstParties(n, t), Delay: 3}
		}},
		{"noise", func(tr *tree.Tree, n, t int, seed int64) sim.Adversary {
			ids := adversary.FirstParties(n, t)
			return composePhases(tr, func(p core.PhaseTag, k int) sim.Adversary {
				return &adversary.RandomNoise{IDs: ids, N: n, Tag: p.Tag, StartRound: p.StartRound, Seed: seed + int64(1000*k), MaxVal: 2 * tr.NumVertices()}
			})
		}},
	}
}

// composePhases builds one sub-strategy per active protocol phase.
func composePhases(tr *tree.Tree, mk func(p core.PhaseTag, k int) sim.Adversary) sim.Adversary {
	var parts []sim.Adversary
	for k, p := range core.PhaseTags(tr) {
		parts = append(parts, mk(p, k))
	}
	return &adversary.Compose{Strategies: parts}
}

func integrationTrees() map[string]*tree.Tree {
	return map[string]*tree.Tree{
		"path64":      tree.NewPath(64),
		"star40":      tree.NewStar(40),
		"spider4x12":  tree.NewSpider(4, 12),
		"caterpillar": tree.NewCaterpillar(12, 2),
		"binary5":     tree.NewCompleteKAry(2, 5),
		"random77":    tree.RandomPruefer(77, rand.New(rand.NewSource(99))),
		"figure3":     tree.Figure3Tree(),
	}
}

func TestIntegrationTreeAAMatrix(t *testing.T) {
	for treeName, tr := range integrationTrees() {
		for _, nt := range [][2]int{{4, 1}, {7, 2}} {
			n, tc := nt[0], nt[1]
			inputs := make([]tree.VertexID, n)
			for i := range inputs {
				inputs[i] = tree.VertexID((i * 13) % tr.NumVertices())
			}
			corrupt := make(map[sim.PartyID]bool)
			for _, id := range adversary.FirstParties(n, tc) {
				corrupt[id] = true
			}
			for _, s := range treeAAStrategies() {
				name := fmt.Sprintf("%s/n=%d/%s", treeName, n, s.name)
				t.Run(name, func(t *testing.T) {
					res, err := core.Run(tr, n, tc, inputs, s.mk(tr, n, tc, 7))
					if err != nil {
						t.Fatal(err)
					}
					assertAA(t, tr, inputs, corrupt, res.Outputs, name)
					if budget := core.Rounds(tr) + 2; res.Rounds > budget {
						t.Errorf("%s: %d rounds exceeds budget %d", name, res.Rounds, budget)
					}
				})
			}
		}
	}
}

func TestIntegrationBaselineMatrix(t *testing.T) {
	for treeName, tr := range integrationTrees() {
		n, tc := 7, 2
		inputs := make([]tree.VertexID, n)
		for i := range inputs {
			inputs[i] = tree.VertexID((i * 17) % tr.NumVertices())
		}
		corrupt := make(map[sim.PartyID]bool)
		for _, id := range adversary.FirstParties(n, tc) {
			corrupt[id] = true
		}
		t.Run(treeName, func(t *testing.T) {
			outputs, _, err := baseline.Run(tr, n, tc, inputs, &adversary.Silent{IDs: adversary.FirstParties(n, tc)})
			if err != nil {
				t.Fatal(err)
			}
			assertAA(t, tr, inputs, corrupt, outputs, treeName)
		})
	}
}

// TestIntegrationConcurrentDriverMatrix runs TreeAA under the goroutine-
// per-party driver across families (run with -race in CI).
func TestIntegrationConcurrentDriverMatrix(t *testing.T) {
	for treeName, tr := range integrationTrees() {
		n, tc := 4, 1
		inputs := make([]tree.VertexID, n)
		for i := range inputs {
			inputs[i] = tree.VertexID((i * 7) % tr.NumVertices())
		}
		t.Run(treeName, func(t *testing.T) {
			machines := make([]sim.Machine, n)
			for i := 0; i < n; i++ {
				m, err := core.NewMachine(core.Config{Tree: tr, N: n, T: tc, ID: sim.PartyID(i), Input: inputs[i]})
				if err != nil {
					t.Fatal(err)
				}
				machines[i] = m
			}
			res, err := sim.RunConcurrent(sim.Config{N: n, MaxCorrupt: tc, MaxRounds: core.Rounds(tr) + 2}, machines)
			if err != nil {
				t.Fatal(err)
			}
			outputs := make(map[sim.PartyID]tree.VertexID, len(res.Outputs))
			for p, v := range res.Outputs {
				outputs[p] = v.(tree.VertexID)
			}
			assertAA(t, tr, inputs, nil, outputs, treeName)
		})
	}
}

// TestIntegrationAllProtocolsAgreeOnSameScenario cross-checks the three
// tree protocols on one scenario: all satisfy Validity; TreeAA and the
// baseline are 1-agreeing; exactaa is exact.
func TestIntegrationAllProtocolsAgreeOnSameScenario(t *testing.T) {
	tr := tree.NewSpider(3, 10)
	n, tc := 7, 2 // tc < n/3 suits all three protocols
	inputs := make([]tree.VertexID, n)
	for i := range inputs {
		inputs[i] = tree.VertexID((i * 5) % tr.NumVertices())
	}
	corrupt := make(map[sim.PartyID]bool)
	for _, id := range adversary.FirstParties(n, tc) {
		corrupt[id] = true
	}
	silent := func() sim.Adversary { return &adversary.Silent{IDs: adversary.FirstParties(n, tc)} }

	res, err := core.Run(tr, n, tc, inputs, silent())
	if err != nil {
		t.Fatal(err)
	}
	assertAA(t, tr, inputs, corrupt, res.Outputs, "treeaa")

	bOut, _, err := baseline.Run(tr, n, tc, inputs, silent())
	if err != nil {
		t.Fatal(err)
	}
	assertAA(t, tr, inputs, corrupt, bOut, "baseline")

	eOut, _, err := exactaa.Run(tr, n, tc, inputs, silent())
	if err != nil {
		t.Fatal(err)
	}
	assertAA(t, tr, inputs, corrupt, eOut, "exactaa")
	var prev tree.VertexID = tree.None
	for p, v := range eOut {
		if corrupt[p] {
			continue
		}
		if prev != tree.None && v != prev {
			t.Errorf("exactaa outputs differ: %s vs %s", tr.Label(v), tr.Label(prev))
		}
		prev = v
	}
}

// TestIntegrationLargeScale runs one big configuration end to end.
func TestIntegrationLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large scale: skipped with -short")
	}
	tr := tree.RandomPruefer(2000, rand.New(rand.NewSource(123)))
	n, tc := 13, 4
	inputs := make([]tree.VertexID, n)
	for i := range inputs {
		inputs[i] = tree.VertexID((i * 151) % tr.NumVertices())
	}
	corrupt := make(map[sim.PartyID]bool)
	for _, id := range adversary.FirstParties(n, tc) {
		corrupt[id] = true
	}
	adv := &adversary.Compose{Strategies: []sim.Adversary{
		&adversary.SplitVote{IDs: adversary.FirstParties(n, tc), N: n, T: tc, Tag: core.TagPathsFinder, PerIteration: 2},
		&adversary.SplitVote{IDs: adversary.FirstParties(n, tc), N: n, T: tc, Tag: core.TagProjection,
			StartRound: core.PathsFinderRounds(tr) + 1, PerIteration: 2},
	}}
	res, err := core.Run(tr, n, tc, inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	assertAA(t, tr, inputs, corrupt, res.Outputs, "large")
	t.Logf("large scale: |V|=%d n=%d t=%d rounds=%d msgs=%d bytes=%d",
		tr.NumVertices(), n, tc, res.Rounds, res.Messages, res.Bytes)
}

// TestIntegrationTreeAAUnderOmission: Byzantine tolerance subsumes
// send-omission, so TreeAA must satisfy AA with up to t omission-faulty
// parties whose sends are dropped adversarially.
func TestIntegrationTreeAAUnderOmission(t *testing.T) {
	tr := tree.NewCaterpillar(12, 2)
	n, tc := 7, 2
	inputs := make([]tree.VertexID, n)
	for i := range inputs {
		inputs[i] = tree.VertexID((i * 5) % tr.NumVertices())
	}
	ids := adversary.FirstParties(n, tc)
	faulty := map[sim.PartyID]bool{ids[0]: true, ids[1]: true}
	for _, mode := range []string{"halves", "random"} {
		adv := &adversary.SendOmitter{IDs: ids, N: n, Halves: mode == "halves", Drop: 0.6, Seed: 3}
		res, err := core.Run(tr, n, tc, inputs, adv)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		assertAA(t, tr, inputs, faulty, res.Outputs, "omission/"+mode)
	}
}

// TestIntegrationLargeHalfBurn: the strongest attack at a larger scale,
// targeting both TreeAA phases.
func TestIntegrationLargeHalfBurn(t *testing.T) {
	if testing.Short() {
		t.Skip("large scale: skipped with -short")
	}
	tr := tree.NewCaterpillar(100, 2) // 300 vertices, non-path
	n, tc := 13, 4
	inputs := make([]tree.VertexID, n)
	for i := range inputs {
		inputs[i] = tree.VertexID((i * 23) % tr.NumVertices())
	}
	ids := adversary.FirstParties(n, tc)
	corrupt := make(map[sim.PartyID]bool)
	for _, id := range ids {
		corrupt[id] = true
	}
	adv := composePhases(tr, func(p core.PhaseTag, _ int) sim.Adversary {
		return &adversary.HalfBurn{IDs: ids, N: n, T: tc, Tag: p.Tag, StartRound: p.StartRound}
	})
	res, err := core.Run(tr, n, tc, inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	assertAA(t, tr, inputs, corrupt, res.Outputs, "large-halfburn")
	t.Logf("large halfburn: rounds=%d msgs=%d bytes=%d", res.Rounds, res.Messages, res.Bytes)
}
