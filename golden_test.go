package treeaa

// Golden-execution regression: a fully deterministic TreeAA run (fixed
// tree, inputs, adversary and seeds) must produce a byte-identical
// round-by-round fingerprint across refactors. Any intentional protocol
// change will fail this test — regenerate with:
//
//	go test -run TestGoldenExecution -update .
//
// and review the diff of testdata/golden_execution.txt like a protocol
// change log.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treeaa/internal/adversary"
	"treeaa/internal/core"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestGoldenExecution(t *testing.T) {
	tr := tree.Figure3Tree()
	n, tc := 4, 1
	inputs := []tree.VertexID{
		tr.MustVertex("v3"), tr.MustVertex("v6"), tr.MustVertex("v5"), tr.MustVertex("v8"),
	}
	ids := adversary.FirstParties(n, tc)
	adv := &adversary.Compose{Strategies: []sim.Adversary{
		&adversary.SplitVote{IDs: ids, N: n, T: tc, Tag: core.TagPathsFinder, PerIteration: 1},
		&adversary.RandomNoise{IDs: ids, N: n, Tag: core.TagProjection,
			StartRound: core.PathsFinderRounds(tr) + 1, Seed: 7, MaxVal: 16},
	}}
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		m, err := core.NewMachine(core.Config{Tree: tr, N: n, T: tc, ID: sim.PartyID(i), Input: inputs[i]})
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
	}
	var trace sim.Trace
	res, err := sim.Run(sim.Config{
		N: n, MaxCorrupt: tc, MaxRounds: core.Rounds(tr) + 2,
		Adversary: adv, Trace: &trace,
	}, machines)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "tree=figure3 n=%d t=%d adversary=splitvote+noise\n", n, tc)
	for _, r := range trace.Rounds {
		fmt.Fprintf(&sb, "round %02d: msgs=%d bytes=%d done=%v\n", r.Round, r.Messages, r.Bytes, r.NewlyDone)
	}
	for p := sim.PartyID(0); int(p) < n; p++ {
		if v, ok := res.Outputs[p]; ok {
			fmt.Fprintf(&sb, "output p%d=%s\n", p, tr.Label(v.(tree.VertexID)))
		}
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", "golden_execution.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("execution fingerprint changed (regenerate with -update if intentional):\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
