module treeaa

go 1.22
