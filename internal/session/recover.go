package session

import (
	"container/heap"
	"fmt"
	"time"

	"treeaa/internal/journal"
	"treeaa/internal/sim"
	"treeaa/internal/wire"
)

// Journal recovery. A restarted daemon rebuilds its session table before the
// mux exists: sealed sessions restore their terminal outcome directly, and
// non-terminal sessions re-admit with their original absolute deadline and
// re-step their engines — muted — through the journaled inbound frames. The
// deterministic machines reproduce the pre-crash seat state exactly, so the
// engines resume mid-protocol wherever the journal left them.
//
// The hard durability line: a decided session whose seal was fsynced (the
// only kind whose outcome a client can have observed, because waiters gate
// on the seal ticket) restores as decided with a byte-identical Result.
// Everything else — pending, running, or sealed-but-unsynced — restores as
// live and either finishes or times out by the ordinary round/deadline
// machinery, exactly as if the crash were a long network stall.

// recoverJournal replays the journal directory, opens the writer for new
// appends, and seals any session that went terminal during replay without a
// durable seal. Called by Daemon.Run before the mux is created.
func (m *Manager) recoverJournal(dir string, jopts journal.Options) error {
	m.replaying = true
	if err := journal.Replay(dir, jopts.Stats, m.restoreRecord); err != nil {
		return err
	}
	jopts.Dir = dir
	jw, err := journal.Open(jopts)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.jw = jw
	m.replaying = false
	// Sessions that reached a terminal state during replay (an abort or the
	// final decide was journaled, but the crash beat the seal) get their seal
	// now, so the next restart restores them directly.
	for _, s := range m.table {
		if s.state.Terminal() && !s.sealed {
			m.sealLocked(s)
		}
	}
	m.mu.Unlock()
	return nil
}

// restoreRecord is the journal.Replay callback.
func (m *Manager) restoreRecord(payload any) error {
	switch p := payload.(type) {
	case wire.JournalOpen:
		m.restoreOpen(p)
	case wire.JournalFrame:
		m.restoreFrame(p)
	case wire.JournalSeal:
		m.restoreSeal(p)
	}
	return nil
}

// restoreOpen re-admits one journaled session. The deadline is the recorded
// absolute one: a restart does not extend any session's TTL, and a session
// already past it expires on the first evict tick.
func (m *Manager) restoreOpen(open wire.JournalOpen) {
	spec := Spec{Tree: open.Tree, Seed: open.Seed, T: open.T, Inputs: open.Inputs,
		TTL: time.Duration(open.TTLMillis) * time.Millisecond}
	ps, err := parseSpec(spec, m.d.n, m.d.opts.DefaultTTL)
	if err != nil {
		return // journaled at admission, so it parsed once; tolerate, don't die
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.table[open.SID]; dup {
		return
	}
	s := &session{
		sid:      open.SID,
		origin:   open.Origin,
		ps:       ps,
		state:    StatePending,
		admitted: time.Now(),
		deadline: time.Unix(0, open.DeadlineUnixNano),
		decides:  make(map[sim.PartyID]wire.SessionDecide, m.d.n),
	}
	s.eng = newEngine(m, m.shardOf(s.sid), s)
	m.table[s.sid] = s
	heap.Push(&m.expiry, deadlineEntry{at: s.deadline.UnixNano(), sid: s.sid})
	m.inflight++
	// Locally-submitted sessions keep the id sequence moving past them so
	// post-restart submits cannot collide with restored ids.
	if seq := open.SID & (1<<48 - 1); open.Origin == m.d.id && seq >= m.nextSeq {
		m.nextSeq = seq + 1
	}
	m.stats().Restored.Add(1)
	m.restored = append(m.restored, s.eng)
	m.logSession(s, "session restored")
}

// restoreFrame re-files one journaled inbound frame. Data-plane frames
// queue on the restored engine for its muted re-step; control frames apply
// through the ordinary handlers (whose sends are no-ops while the mux is
// nil). Frames for unknown or already-terminal sessions drop, mirroring the
// tombstone behavior of the live path.
func (m *Manager) restoreFrame(fr wire.JournalFrame) {
	typ, sid, err := wire.PeekSession(fr.Body)
	if err != nil {
		return
	}
	switch typ {
	case wire.TypeSessionMsg, wire.TypeSessionEOR:
		m.mu.Lock()
		if s := m.table[sid]; s != nil && !s.state.Terminal() {
			s.eng.replay = append(s.eng.replay, rawEvent{from: fr.From, body: fr.Body})
		}
		m.mu.Unlock()
		return
	}
	payload, err := wire.Decode(fr.Body)
	if err != nil {
		return
	}
	switch p := payload.(type) {
	case wire.SessionAbort:
		m.handleAbort(p)
	case wire.SessionDecide:
		m.handleDecide(fr.From, p)
	}
}

// restoreSeal rebuilds a sealed session's terminal outcome without re-running
// anything: state, reason, latency, and (for decided sessions) the assembled
// Result come straight from the record. The seal on disk is the durability
// proof, so the restored outcome is immediately observable.
func (m *Manager) restoreSeal(seal wire.JournalSeal) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.table[seal.SID]
	if s == nil {
		return // seal without an open: tolerate (foreign or GC'd journal)
	}
	if s.state.Terminal() {
		s.sealed = true
		return
	}
	s.state = State(seal.State)
	s.reason = seal.Reason
	s.latency = time.Duration(seal.LatencyNS)
	if seal.HasResult {
		res := &sim.Result{
			Outputs:   make(map[sim.PartyID]any, len(seal.Outputs)),
			Corrupted: make(map[sim.PartyID]bool),
			Rounds:    seal.Rounds,
			Messages:  seal.Msgs,
			Bytes:     seal.Bytes,
		}
		for _, op := range seal.Outputs {
			res.Outputs[op.Party] = op.V
		}
		s.result = res
	}
	s.sealed = true
	m.inflight--
	s.terminal.Store(true)
	heap.Push(&m.reap, deadlineEntry{
		at: s.deadline.Add(m.d.opts.DefaultTTL).UnixNano(), sid: s.sid})
	if s.eng != nil {
		s.eng.replay = nil
		s.eng.sh.wake(s.eng)
	}
	m.stats().RestoredTerminal.Add(1)
	m.logSession(s, "session restored terminal")
}

// registerRestored hands every live restored engine to its shard, after the
// mux is up: the muted re-step happens on the shard workers, and any live
// frames that raced in since mux start are waiting in the shard's pending
// buffers to be absorbed right behind it.
func (m *Manager) registerRestored() {
	m.mu.Lock()
	engines := m.restored
	m.restored = nil
	m.mu.Unlock()
	for _, e := range engines {
		e.sh.register(e)
	}
}

// journalErr surfaces the journal writer's sticky error, if any.
func (m *Manager) journalErr() error {
	if m.jw == nil {
		return nil
	}
	if err := m.jw.Err(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
