package session

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"treeaa/internal/sim"
)

// durableOpts returns cluster options with the journal enabled in a
// per-test temp directory and a tight sync interval so decide acks do not
// dominate test wall-clock.
func durableOpts(t *testing.T) Options {
	t.Helper()
	return Options{
		JournalDir:          t.TempDir(),
		JournalSyncInterval: time.Millisecond,
	}
}

// pollUntil retries fn every few milliseconds until it returns nil or the
// deadline passes, failing the test with the last error.
func pollUntil(t *testing.T, d time.Duration, what string, fn func() error) {
	t.Helper()
	deadline := time.Now().Add(d)
	var last error
	for time.Now().Before(deadline) {
		if last = fn(); last == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s: not satisfied within %v: %v", what, d, last)
}

// TestKillRestartDecidedSurvive pins the journal's hard durability line: a
// session whose decide was acked to a client survives kill -9 with a
// byte-identical Result after restart, and the restarted daemon keeps
// admitting fresh sessions without id collisions.
func TestKillRestartDecidedSurvive(t *testing.T) {
	const victim = 1
	c := startTestCluster(t, 4, durableOpts(t))

	specs := []Spec{
		{Tree: "path:8"},
		{Tree: "star:9"},
		{Tree: "spider:3:4"},
		{Tree: "random:12", Seed: 7},
		{Tree: "caterpillar:4:2"},
		{Tree: "figure3"},
	}
	type decided struct {
		sid  uint64
		want *sim.Result
	}
	var acked []decided
	for _, spec := range specs {
		want, err := Oracle(4, spec)
		if err != nil {
			t.Fatalf("oracle %q: %v", spec.Tree, err)
		}
		resp := submitAndWait(t, c, victim, spec)
		got, err := resp.SimResult()
		if err != nil {
			t.Fatalf("pre-kill result %q: %v", spec.Tree, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pre-kill result diverges for %q", spec.Tree)
		}
		acked = append(acked, decided{sid: resp.SID, want: want})
	}

	if err := c.Kill(victim); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if err := c.Start(victim); err != nil {
		t.Fatalf("restart: %v", err)
	}

	if got := c.Daemon(victim).Stats().RestoredTerminal.Load(); got < int64(len(acked)) {
		t.Fatalf("restored %d sealed sessions, want >= %d", got, len(acked))
	}

	cl, err := DialClient(c.ClientAddr(victim), 5*time.Second)
	if err != nil {
		t.Fatalf("dial restarted daemon: %v", err)
	}
	defer cl.Close()
	for _, d := range acked {
		resp, err := cl.Status(d.sid)
		if err != nil {
			t.Fatalf("status %#x after restart: %v", d.sid, err)
		}
		got, err := resp.SimResult()
		if err != nil {
			t.Fatalf("session %#x lost its decided outcome: %v", d.sid, err)
		}
		if !reflect.DeepEqual(got, d.want) {
			t.Fatalf("session %#x result diverges after restart:\n got %+v\nwant %+v",
				d.sid, got, d.want)
		}
	}

	// The restored id range must not collide with fresh admissions.
	pollUntil(t, 10*time.Second, "post-restart admission", func() error {
		return allHealthy(c)
	})
	for i := 0; i < 3; i++ {
		resp, err := cl.Submit(Spec{Tree: "path:8"}, 0, true)
		if err != nil {
			t.Fatalf("fresh submit %d after restart: %v", i, err)
		}
		if !resp.Decided() {
			t.Fatalf("fresh session %d after restart: state %s (%s)", i, resp.State, resp.Err)
		}
	}
}

func allHealthy(c *Cluster) error {
	for i := 0; i < c.n; i++ {
		if err := c.Daemon(i).Health(); err != nil {
			return fmt.Errorf("daemon %d: %w", i, err)
		}
	}
	return nil
}

// TestDegradedRefusesAdmission verifies the outage contract: while a peer
// link is down the surviving daemons refuse new admissions with a retryable
// error, and re-open once the seat comes back and the mesh heals.
func TestDegradedRefusesAdmission(t *testing.T) {
	const victim = 2
	c := startTestCluster(t, 3, durableOpts(t))

	submitAndWait(t, c, 0, Spec{Tree: "path:8"}) // sanity: healthy cluster decides

	if err := c.Kill(victim); err != nil {
		t.Fatalf("kill: %v", err)
	}
	pollUntil(t, 10*time.Second, "degraded detection", func() error {
		if err := c.Daemon(0).Health(); err == nil {
			return fmt.Errorf("daemon 0 still reports healthy")
		}
		return nil
	})
	cl, err := DialClient(c.ClientAddr(0), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Submit(Spec{Tree: "path:8"}, 0, true); err == nil {
		t.Fatal("submit accepted while the cluster is degraded")
	} else if !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("degraded rejection should say so, got: %v", err)
	}

	if err := c.Start(victim); err != nil {
		t.Fatalf("restart: %v", err)
	}
	pollUntil(t, 10*time.Second, "mesh heal", func() error { return allHealthy(c) })
	resp, err := cl.Submit(Spec{Tree: "path:8"}, 0, true)
	if err != nil {
		t.Fatalf("submit after heal: %v", err)
	}
	if !resp.Decided() {
		t.Fatalf("post-heal session: state %s (%s)", resp.State, resp.Err)
	}
}

// TestGracefulRestartKeepsDecided exercises the rolling-restart building
// block: a drained shutdown syncs every seal, and the restarted seat serves
// both the old outcomes and new sessions.
func TestGracefulRestartKeepsDecided(t *testing.T) {
	const victim = 3
	c := startTestCluster(t, 4, durableOpts(t))

	var sids []uint64
	want, err := Oracle(4, Spec{Tree: "spider:3:4"})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	for i := 0; i < 4; i++ {
		resp := submitAndWait(t, c, victim, Spec{Tree: "spider:3:4"})
		sids = append(sids, resp.SID)
	}

	if err := c.Restart(victim); err != nil {
		t.Fatalf("graceful restart: %v", err)
	}
	cl, err := DialClient(c.ClientAddr(victim), 5*time.Second)
	if err != nil {
		t.Fatalf("dial restarted daemon: %v", err)
	}
	defer cl.Close()
	for _, sid := range sids {
		resp, err := cl.Status(sid)
		if err != nil {
			t.Fatalf("status %#x: %v", sid, err)
		}
		got, err := resp.SimResult()
		if err != nil {
			t.Fatalf("session %#x lost across graceful restart: %v", sid, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("session %#x result diverges after graceful restart", sid)
		}
	}
	pollUntil(t, 10*time.Second, "post-restart admission", func() error { return allHealthy(c) })
	resp, err := cl.Submit(Spec{Tree: "path:8"}, 0, true)
	if err != nil {
		t.Fatalf("fresh submit: %v", err)
	}
	if !resp.Decided() {
		t.Fatalf("fresh session after graceful restart: state %s (%s)", resp.State, resp.Err)
	}
}

// TestKillRestartMidFlight kills a daemon with sessions still running. The
// durability contract makes no promise about them beyond liveness: every
// such session must reach SOME terminal state after restart (no wedged
// engines, no replay panic), and the cluster must decide fresh sessions.
func TestKillRestartMidFlight(t *testing.T) {
	const victim = 0
	opts := durableOpts(t)
	opts.WrapConn = slowLinks(20 * time.Millisecond)
	c := startTestCluster(t, 4, opts)

	cl, err := DialClient(c.ClientAddr(victim), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var sids []uint64
	for i := 0; i < 4; i++ {
		resp, err := cl.Submit(Spec{Tree: "path:16", TTL: 3 * time.Second}, 0, false)
		if err != nil {
			t.Fatalf("async submit: %v", err)
		}
		sids = append(sids, resp.SID)
	}
	cl.Close()

	if err := c.Kill(victim); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if err := c.Start(victim); err != nil {
		t.Fatalf("restart: %v", err)
	}
	cl, err = DialClient(c.ClientAddr(victim), 5*time.Second)
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer cl.Close()
	for _, sid := range sids {
		sid := sid
		pollUntil(t, 15*time.Second, fmt.Sprintf("session %#x terminal", sid), func() error {
			resp, err := cl.Status(sid)
			if err != nil {
				// The open may have been in the journal's unsynced tail —
				// losing a never-acked session is within contract.
				return nil
			}
			switch resp.State {
			case StateDecided.String(), StateFailed.String(), StateExpired.String():
				return nil
			default:
				return fmt.Errorf("state %s", resp.State)
			}
		})
	}
	pollUntil(t, 10*time.Second, "post-restart admission", func() error { return allHealthy(c) })
	want, err := Oracle(4, Spec{Tree: "star:9"})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	resp, err := cl.Submit(Spec{Tree: "star:9"}, 0, true)
	if err != nil {
		t.Fatalf("fresh submit: %v", err)
	}
	got, err := resp.SimResult()
	if err != nil {
		t.Fatalf("fresh session: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fresh post-restart result diverges from oracle")
	}
}
