package session

import (
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treeaa/internal/metrics"
	"treeaa/internal/sim"
	"treeaa/internal/transport"
	"treeaa/internal/wire"
)

// TestFlushPolicyTable pins the adaptive flusher's decisions as pure
// functions: when it coalesces, how the frames-per-flush average evolves,
// and what cuts a waiting batch short.
func TestFlushPolicyTable(t *testing.T) {
	coalesce := []struct {
		ewma      float64
		occupancy int
		want      bool
	}{
		{0, 32, false},    // cold link: flush immediately, batching buys nothing
		{1, 32, false},    // single-frame flushes: still latency-bound
		{22, 32, false},   // bursty but under target: waits would burn the interval
		{31.9, 32, false}, // just under the target
		{32, 32, true},    // waits tend to fill the batch: hold for fuller ones
		{600, 32, true},   // saturated link
		{4, 4, true},      // target scales with FlushOccupancy
	}
	for _, c := range coalesce {
		if got := shouldCoalesce(c.ewma, c.occupancy); got != c.want {
			t.Errorf("shouldCoalesce(%v, %d) = %v, want %v", c.ewma, c.occupancy, got, c.want)
		}
	}

	ewma := []struct {
		prev   float64
		frames int
		want   float64
	}{
		{0, 0, 0},  // empty flush carries no signal
		{5, 0, 5},  // ditto: average unchanged
		{5, -1, 5}, // defensive: nonsense counts ignored
		{0, 8, 8},  // first sample seeds the average
		{4, 8, 5},  // 0.75*4 + 0.25*8
		{8, 4, 7},  // decays toward quiet
		{2, 2, 2},  // steady state is a fixed point
	}
	for _, c := range ewma {
		if got := updateEWMA(c.prev, c.frames); got != c.want {
			t.Errorf("updateEWMA(%v, %d) = %v, want %v", c.prev, c.frames, got, c.want)
		}
	}

	ready := []struct {
		frames, bytes, occupancy, maxBytes int
		want                               bool
	}{
		{1, 100, 32, 1 << 16, false},       // one small frame: wait
		{31, 1000, 32, 1 << 16, false},     // just under the occupancy cut
		{32, 1000, 32, 1 << 16, true},      // occupancy threshold
		{5, 1 << 16, 32, 1 << 16, true},    // byte cap trumps occupancy
		{5, 1<<16 - 1, 32, 1 << 16, false}, // just under the byte cap
		{1, 0, 1, 1 << 16, true},           // occupancy 1 disables coalescing
	}
	for _, c := range ready {
		if got := batchReady(c.frames, c.bytes, c.occupancy, c.maxBytes); got != c.want {
			t.Errorf("batchReady(%d, %d, %d, %d) = %v, want %v",
				c.frames, c.bytes, c.occupancy, c.maxBytes, got, c.want)
		}
	}
}

// gateConn blocks every write after the first until the gate is released —
// the test lever for a peer whose socket stopped draining after the mesh
// handshake (the first write is the mux hello, which must pass for start to
// complete).
type gateConn struct {
	net.Conn
	gate   <-chan struct{}
	writes *atomic.Int64
}

func (c gateConn) Write(b []byte) (int, error) {
	if c.writes.Add(1) > 1 {
		<-c.gate
	}
	return c.Conn.Write(b)
}

// startTestMeshes brings up an n-node mux mesh without daemons on top: the
// handler records raw deliveries, and onDown failures flunk the test
// unless the mesh is already closing.
func startTestMeshes(t *testing.T, n int, opts Options,
	handler func(me, from sim.PartyID, body []byte)) []*mux {
	t.Helper()
	opts = opts.withDefaults()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	muxes := make([]*mux, n)
	for i := range muxes {
		me := sim.PartyID(i)
		muxes[i] = newMux(me, n, addrs, 1, opts,
			func(from sim.PartyID, body []byte) error { handler(me, from, body); return nil },
			func(peer sim.PartyID, err error) {
				if !muxes[me].closed() {
					t.Errorf("link %d-%d down: %v", me, peer, err)
				}
			},
			func(peer sim.PartyID) {})
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range muxes {
		wg.Add(1)
		go func(i int) { defer wg.Done(); errs[i] = muxes[i].start(listeners[i]) }(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mux %d start: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, m := range muxes {
			m.close()
		}
	})
	return muxes
}

// TestSlowPeerDoesNotStallOtherLinks pins per-link isolation: a peer whose
// socket stops draining backs its own outbox up, but frames to healthy
// peers keep flowing — each link has its own flusher and its own buffers,
// and enqueue never blocks on a stuck write.
func TestSlowPeerDoesNotStallOtherLinks(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer release()

	var healthy atomic.Int64
	var gateWrites atomic.Int64
	opts := Options{
		RoundTimeout: 2 * time.Second, // bounds the stalled write at teardown
		WrapConn: func(from, to sim.PartyID, conn net.Conn) net.Conn {
			if from == 0 && to == 2 {
				return gateConn{Conn: conn, gate: gate, writes: &gateWrites}
			}
			return conn
		},
	}
	muxes := startTestMeshes(t, 3, opts, func(me, from sim.PartyID, body []byte) {
		if me == 1 && from == 0 {
			healthy.Add(1)
		}
	})

	frame, err := sessionFrame(wire.SessionEOR{SID: 7, Round: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Pile frames onto the gated link until its outbox is far beyond every
	// flush threshold, with the flusher wedged in a blocked write.
	for i := 0; i < 2000; i++ {
		muxes[0].enqueue(2, frame)
	}
	// The healthy link must still deliver promptly.
	const want = 50
	start := time.Now()
	for i := 0; i < want; i++ {
		muxes[0].enqueue(1, frame)
	}
	deadline := time.Now().Add(5 * time.Second)
	for healthy.Load() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := healthy.Load(); got < want {
		t.Fatalf("healthy link delivered %d/%d frames while peer 2 was stalled", got, want)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("healthy link took %v to deliver %d frames", elapsed, want)
	}
	release() // un-wedge the gated flusher so close() can drain it
}

// TestBinaryFrameMatchesTransportFraming pins appendSessionFrame to the
// byte format transport.AppendFrame produces — the zero-allocation path
// must not drift from the generic one.
func TestBinaryFrameMatchesTransportFraming(t *testing.T) {
	payloads := []any{
		wire.SessionEOR{SID: 1<<48 | 9, Round: 3, Done: true},
		wire.SessionAbort{SID: 42, Reason: "x"},
		wire.SessionDecide{SID: 7, Party: 2, V: 5, DoneRound: 3, TermRound: 4, Msgs: 12, Bytes: 96},
	}
	for _, p := range payloads {
		got, err := appendSessionFrame(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		body, err := wire.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		want := transport.AppendFrame(nil, append([]byte{transport.FrameMuxSession}, body...))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("appendSessionFrame(%T) = %x, want %x", p, got, want)
		}
	}
}

// TestJSONClientAPICompat pins the legacy protocol: a daemon running with
// JSONClientAPI serves the original length-prefixed JSON request loop, and
// DialJSONClient speaks it, end to end with a real decided session.
func TestJSONClientAPICompat(t *testing.T) {
	stats := &metrics.ServeStats{}
	c := startTestCluster(t, 3, Options{JSONClientAPI: true, Stats: stats})
	cl, err := DialJSONClient(c.ClientAddr(1), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	spec := Spec{Tree: "kary:2:3", Seed: 11, TTL: time.Minute}
	resp, err := cl.Submit(spec, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Decided() {
		t.Fatalf("session ended %s (%s), want decided", resp.State, resp.Err)
	}
	got, err := resp.SimResult()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Oracle(3, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("JSON-served result diverges from oracle:\n got %+v\nwant %+v", got, want)
	}
	// The binary-only byte counter must stay untouched on the JSON path.
	if n := stats.ClientBytes.Load(); n != 0 {
		t.Fatalf("ClientBytes = %d on the JSON protocol, want 0", n)
	}
}
