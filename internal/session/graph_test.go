package session

// Graph-space serving tests: a "graph:"-prefixed Spec.Tree rides the
// SessionOpenGraph wire payload between daemons, every seat rebuilds the
// same graph machine, and the served Result is byte-identical to sim.Run
// on the same spec (the Oracle). Async daemons reject graph sessions at
// admission.

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"treeaa/internal/graph"
	"treeaa/internal/tree"
)

// TestServeGraphMatchesSim pins oracle byte-identity for graph sessions
// across graph shapes and origin daemons.
func TestServeGraphMatchesSim(t *testing.T) {
	cases := []struct {
		n    int
		spec Spec
	}{
		{4, Spec{Tree: "graph:cliquechain:3:4"}},
		{4, Spec{Tree: "graph:cycle:9"}},
		{4, Spec{Tree: "graph:cactus:3:4"}},
		{5, Spec{Tree: "graph:randomblock:12", Seed: 7}},
		{4, Spec{Tree: "graph:clique:5", T: 1}},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s_n%d", strings.ReplaceAll(tc.spec.Tree, ":", "_"), tc.n), func(t *testing.T) {
			t.Parallel()
			c := startTestCluster(t, tc.n, Options{})
			want, err := Oracle(tc.n, tc.spec)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			origin := i % tc.n
			resp := submitAndWait(t, c, origin, tc.spec)
			got, err := resp.SimResult()
			if err != nil {
				t.Fatalf("session result: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("served result diverges from sim.Run:\n got %+v\nwant %+v", got, want)
			}
			// The outputs must satisfy the graph guarantees, not just match
			// the oracle: validity on the geodesic hull plus agreement.
			g, err := graph.ParseSpec(strings.TrimPrefix(tc.spec.Tree, "graph:"), tc.spec.Seed)
			if err != nil {
				t.Fatal(err)
			}
			var outs []tree.VertexID
			for _, raw := range got.Outputs {
				outs = append(outs, raw.(tree.VertexID))
			}
			for _, u := range outs {
				for _, v := range outs {
					if !g.AgreementOK(u, v) {
						t.Fatalf("outputs %s/%s violate agreement", g.Label(u), g.Label(v))
					}
					if g.IsBlockGraph() && g.Dist(u, v) > 1 {
						t.Fatalf("block graph outputs %s/%s at distance %d", g.Label(u), g.Label(v), g.Dist(u, v))
					}
				}
			}
		})
	}
}

// TestGraphSpecRejections pins admission-time rejections: malformed graph
// specs, bad graph input labels, and graph sessions on async daemons.
func TestGraphSpecRejections(t *testing.T) {
	t.Parallel()
	if _, err := parseSpec(Spec{Tree: "graph:nope:4"}, 4, time.Minute); err == nil {
		t.Fatal("bad graph spec accepted")
	}
	if _, err := parseSpec(Spec{Tree: "graph:cycle:9", Inputs: "zz,v2,v3,v4"}, 4, time.Minute); err == nil {
		t.Fatal("unknown graph label accepted")
	}
	if _, err := parseSpec(Spec{Tree: "graph:cycle:9", Inputs: "v1,v3,v5,v7"}, 4, time.Minute); err != nil {
		t.Fatalf("valid graph labels rejected: %v", err)
	}

	c := startTestCluster(t, 4, Options{Async: true})
	cl, err := DialClient(c.ClientAddr(0), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Submit(Spec{Tree: "graph:cliquechain:3:3"}, 0, true)
	if err == nil && resp.OK {
		t.Fatal("async daemon accepted a graph session")
	}
}
