package session

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"treeaa/internal/journal"
	"treeaa/internal/metrics"
	"treeaa/internal/sim"
	"treeaa/internal/transport"
)

// Options tunes one serving daemon. The zero value is usable: withDefaults
// fills every field.
// JournalLevel selects the journal's capture policy — see Options.
type JournalLevel int

const (
	// JournalFull captures admissions, every inbound session frame, and
	// terminal seals: full deterministic replay.
	JournalFull JournalLevel = iota
	// JournalSealed captures admissions and terminal seals only: the
	// durable-decided contract at a fraction of the write volume.
	JournalSealed
)

// ParseJournalLevel maps the CLI spelling ("full", "sealed") to a level.
func ParseJournalLevel(s string) (JournalLevel, error) {
	switch s {
	case "", "full":
		return JournalFull, nil
	case "sealed":
		return JournalSealed, nil
	}
	return 0, fmt.Errorf("session: unknown journal level %q (want full or sealed)", s)
}

type Options struct {
	// MaxSessions caps non-terminal sessions on this daemon — the admission
	// control knob. Submissions and peer opens beyond it are rejected.
	MaxSessions int
	// QueueDepth scales the pending-frame buffers for sessions whose open
	// has not arrived yet: QueueDepth/4 frames per session, 16×QueueDepth
	// per shard. Frames beyond the bound drop (the setup timeout then fails
	// the session); admitted sessions' queues are unbounded and drained by
	// their shard worker.
	QueueDepth int
	// Shards is the engine-pool width: sessions hash to shards by id, one
	// worker goroutine per shard. Defaults to min(GOMAXPROCS, 16).
	Shards int
	// FlushInterval is the longest a queued outbound frame waits for its
	// link's coalesced write once the adaptive flusher decides to batch.
	FlushInterval time.Duration
	// FlushOccupancy cuts a coalescing wait short once this many frames are
	// queued on a link.
	FlushOccupancy int
	// MaxBatchBytes kicks the flusher early when a link's outbox reaches
	// this size, bounding batch memory under load.
	MaxBatchBytes int
	// JSONClientAPI serves the legacy length-prefixed JSON client protocol
	// instead of the binary wire protocol (see DialJSONClient).
	JSONClientAPI bool
	// DefaultTTL is the session deadline applied when a spec's TTL is zero;
	// it also sets how long terminal sessions linger for status queries.
	DefaultTTL time.Duration

	SetupTimeout time.Duration // mux mesh establishment budget
	// RoundTimeout is the per-round barrier budget for every engine. In async
	// deployments there are no barriers; it is reused as the idle watchdog —
	// the longest an undecided seat tolerates total silence before the run
	// is declared wedged (the same reuse as transport's async driver).
	RoundTimeout time.Duration
	DrainTimeout time.Duration // graceful-shutdown wait for in-flight sessions

	// Async switches every engine on this daemon to the event-driven
	// asynchronous pipeline: messages are delivered to the protocol machine
	// on arrival, with no end-of-round barriers and no round timeouts. The
	// mode is a deployment property — it joins the cluster hash, so a sync
	// and an async daemon refuse to pair. Async daemons host honest seats
	// only and reject the journal and the overlay fabric (both are built on
	// the lock-step round structure async mode abolishes); NewDaemon refuses
	// those combinations up front.
	Async bool

	// JournalDir enables the write-ahead session journal: each daemon
	// journals to <JournalDir>/daemon-<id> and replays it on startup,
	// restoring sealed outcomes and re-stepping live sessions. Empty
	// disables durability (the pre-journal behavior).
	JournalDir string
	// JournalSegmentBytes and JournalSyncInterval tune the journal writer;
	// zero values take the journal package defaults (8 MiB, 2ms).
	JournalSegmentBytes int
	JournalSyncInterval time.Duration
	// JournalStats receives the journal's counters; nil allocates privately.
	JournalStats *journal.Stats
	// JournalLevel picks what the journal captures. JournalFull (default)
	// also write-ahead-logs every inbound session frame, so replay can
	// re-step engines to their exact pre-crash state — sessions that
	// reached decided but whose seal never synced are recovered, not lost.
	// JournalSealed logs only admissions and terminal seals: the durable
	// contract ("acked decided survives kill -9") is identical, running
	// sessions just cannot be reconstructed, and the write volume — and
	// with it the serving overhead — drops by an order of magnitude.
	JournalLevel JournalLevel

	// SessionLog, when set, receives one structured log line per session
	// lifecycle event (admitted, restored, terminal), keyed by session id.
	SessionLog *slog.Logger

	// Stats receives the daemon's counters; shared across daemons in tests.
	Stats *metrics.ServeStats
	// OverlaySpec, when set ("tree" or "tree:<branching>"), names the
	// communication-tree fabric this deployment is configured for. It joins
	// the cluster hash — daemons disagreeing on the fabric refuse to pair —
	// and selects the overlay metric families on the /metrics endpoint.
	// Validation is the CLI's job (overlay.ParseSpec); the manager treats
	// the spec as an opaque identity component.
	OverlaySpec string
	// OverlayStats receives the relay fabric's counters when OverlaySpec is
	// set, for the observability endpoint to export.
	OverlayStats *metrics.OverlayStats
	// WrapConn, when set, wraps every peer connection on the writing side —
	// the chaos injection seam, same contract as transport.Options.WrapConn.
	WrapConn func(from, to sim.PartyID, conn net.Conn) net.Conn
	// Dialer establishes peer connections; nil means transport.DialRetry.
	Dialer func(addr string, deadline time.Time) (net.Conn, error)
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 1024
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards > 16 {
			o.Shards = 16
		}
		if o.Shards < 1 {
			o.Shards = 1
		}
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 200 * time.Microsecond
	}
	if o.FlushOccupancy <= 0 {
		o.FlushOccupancy = 32
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 64 << 10
	}
	if o.DefaultTTL <= 0 {
		o.DefaultTTL = 30 * time.Second
	}
	if o.SetupTimeout <= 0 {
		o.SetupTimeout = 10 * time.Second
	}
	if o.RoundTimeout <= 0 {
		o.RoundTimeout = 60 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.Stats == nil {
		o.Stats = &metrics.ServeStats{}
	}
	if o.JournalStats == nil {
		o.JournalStats = &journal.Stats{}
	}
	if o.Dialer == nil {
		o.Dialer = transport.DialRetry
	}
	return o
}

// Daemon is one seat of an n-daemon serving deployment: it joins the peer
// mesh, accepts client requests, and runs this seat's engine for every
// admitted session.
type Daemon struct {
	id        sim.PartyID
	n         int
	peerAddrs []string
	clientArg string
	opts      Options

	mux *mux
	mgr *Manager

	// peerLn, when set before Run, is the pre-bound peer listener (the
	// in-process cluster binds first so peers know each other's ports).
	peerLn   net.Listener
	clientLn net.Listener

	ready chan struct{}
	// closedCh is closed after the drain completes: only then do client
	// connections die, so a client blocked in wait sees its session's
	// terminal outcome instead of a torn connection.
	closedCh chan struct{}
	clientWG sync.WaitGroup

	// killCh triggers the abrupt (kill -9 simulation) shutdown path.
	killCh   chan struct{}
	killOnce sync.Once
}

// NewDaemon configures seat id of a deployment whose peer listen addresses
// are peerAddrs (one per daemon, index = id). clientAddr is the client API
// listen address; ":0" style works, read the bound address from ClientAddr
// after Ready.
func NewDaemon(id int, peerAddrs []string, clientAddr string, opts Options) (*Daemon, error) {
	n := len(peerAddrs)
	if n < 2 {
		return nil, fmt.Errorf("session: need at least 2 daemons, got %d", n)
	}
	if id < 0 || id >= n {
		return nil, fmt.Errorf("session: daemon id %d out of range [0, %d)", id, n)
	}
	if opts.Async {
		if opts.JournalDir != "" {
			return nil, fmt.Errorf("session: the journal's muted replay re-steps engines through " +
				"lock-step rounds, which async mode does not have — drop -journal-dir or use -mode sync")
		}
		if opts.OverlaySpec != "" {
			return nil, fmt.Errorf("session: the tree overlay relays round-batched traffic between " +
				"eor barriers, which async mode does not have — drop -overlay or use -mode sync")
		}
	}
	return &Daemon{
		id:        sim.PartyID(id),
		n:         n,
		peerAddrs: append([]string(nil), peerAddrs...),
		clientArg: clientAddr,
		opts:      opts.withDefaults(),
		ready:     make(chan struct{}),
		closedCh:  make(chan struct{}),
		killCh:    make(chan struct{}),
	}, nil
}

// Run brings the daemon up and serves until ctx is cancelled, then shuts
// down gracefully: stop admissions, drain in-flight sessions (up to
// DrainTimeout), and tear the mesh and client listener down without leaking
// goroutines.
func (d *Daemon) Run(ctx context.Context) error {
	peerLn := d.peerLn
	if peerLn == nil {
		var err error
		peerLn, err = net.Listen("tcp", d.peerAddrs[d.id])
		if err != nil {
			return fmt.Errorf("session: daemon %d peer listener: %w", d.id, err)
		}
	}
	clientLn, err := net.Listen("tcp", d.clientArg)
	if err != nil {
		peerLn.Close()
		return fmt.Errorf("session: daemon %d client listener: %w", d.id, err)
	}
	d.clientLn = clientLn

	cluster := clusterHash(d.peerAddrs, d.opts.OverlaySpec, d.opts.Async)
	d.mgr = newManager(d)
	// Journal recovery runs before the mux exists: the session table is
	// rebuilt from disk in isolation, then the mesh comes up and the restored
	// engines re-step on the shard workers. Live frames arriving between mux
	// start and registration wait in the shards' pending buffers and are
	// absorbed in arrival order right behind the replayed ones.
	if d.opts.JournalDir != "" {
		dir := filepath.Join(d.opts.JournalDir, fmt.Sprintf("daemon-%d", d.id))
		jopts := journal.Options{
			SegmentBytes: d.opts.JournalSegmentBytes,
			SyncInterval: d.opts.JournalSyncInterval,
			Stats:        d.opts.JournalStats,
		}
		if err := d.mgr.recoverJournal(dir, jopts); err != nil {
			peerLn.Close()
			clientLn.Close()
			d.mgr.stop()
			return fmt.Errorf("session: daemon %d journal recovery: %w", d.id, err)
		}
	}
	d.mux = newMux(d.id, d.n, d.peerAddrs, cluster, d.opts, d.mgr.handleRaw,
		d.mgr.linkDown, d.mgr.linkUp)
	if err := d.mux.start(peerLn); err != nil {
		clientLn.Close()
		d.mux.close()
		d.mgr.stop()
		if jw := d.mgr.jw; jw != nil {
			jw.Close()
		}
		return err
	}
	d.mgr.registerRestored()
	go d.mgr.evictLoop()
	d.clientWG.Add(1)
	go d.acceptClients()
	close(d.ready)

	select {
	case <-ctx.Done():
		// Graceful shutdown. Order matters: drain first (in-flight sessions
		// reach their terminal states and blocked client waits get real
		// answers), then cut the client connections, then the mesh — the
		// mux's final flush ships queued decide frames to peers before the
		// sockets die. The journal closes last with a final fsync, so every
		// seal written during the drain is durable before Run returns: a
		// restart never sees a session it reported decided as pending again.
		d.mgr.drain(d.opts.DrainTimeout)
		close(d.closedCh)
		d.clientLn.Close()
		d.mux.close()
		d.mgr.stop()
		if jw := d.mgr.jw; jw != nil {
			jw.Close()
		}
		d.clientWG.Wait()
	case <-d.killCh:
		// Abrupt shutdown — the in-process stand-in for kill -9. No drain, no
		// final flush: client connections reset, peer sockets reset, and the
		// journal is abandoned with its buffered (unsynced) tail discarded.
		// Client connections die before the journal releases any sync
		// tickets, so no client can observe an outcome the journal lost.
		close(d.closedCh)
		d.clientLn.Close()
		d.mux.kill()
		d.mgr.stop()
		if jw := d.mgr.jw; jw != nil {
			jw.Abandon()
		}
		d.clientWG.Wait()
	}
	return nil
}

// Kill triggers the abrupt shutdown path: no drain, no flush, no journal
// sync — everything a kill -9 would deny the process. Run returns once the
// teardown finishes. Safe to call more than once.
func (d *Daemon) Kill() {
	d.killOnce.Do(func() { close(d.killCh) })
}

// Health reports daemon readiness (nil = ready): journal replay complete,
// every peer link up, admissions open, and no sticky journal write error.
func (d *Daemon) Health() error {
	select {
	case <-d.ready:
	default:
		return fmt.Errorf("session: daemon %d starting", d.id)
	}
	if err := d.mgr.Health(); err != nil {
		return err
	}
	return d.mgr.journalErr()
}

// Ready is closed once the mesh is up and the client API is accepting.
func (d *Daemon) Ready() <-chan struct{} { return d.ready }

// ClientAddr returns the bound client API address; valid after Ready.
func (d *Daemon) ClientAddr() string { return d.clientLn.Addr().String() }

// Manager exposes the session table for in-process callers (the smoke
// drivers submit through it directly); valid after Ready.
func (d *Daemon) Manager() *Manager { return d.mgr }

// Stats returns the daemon's counters.
func (d *Daemon) Stats() *metrics.ServeStats { return d.opts.Stats }

// clusterHash pins the deployment identity the mux hello checks: same
// daemon set, same order, same overlay fabric, same execution mode — or
// the handshake fails. Folding the mode in means a sync and an async
// daemon can never exchange a single session frame.
func clusterHash(addrs []string, overlaySpec string, async bool) uint64 {
	mode := "sync"
	if async {
		mode = "async"
	}
	parts := append([]string{"serve", mode, overlaySpec, strconv.Itoa(len(addrs))}, addrs...)
	return transport.DeriveSession(parts...)
}

// Cluster is an in-process deployment: n daemons on loopback, the harness
// for tests, the smoke target and the bench. Each daemon has its own
// context, so individual members can be killed (abruptly), restarted
// (gracefully), or brought back while the rest keep serving.
type Cluster struct {
	mu      sync.Mutex
	Daemons []*Daemon // live daemon per seat; slots are replaced on restart
	addrs   []string
	opts    Options
	cancels []context.CancelFunc
	dones   []chan error // buffered(1); the exit value is re-posted after reads
	n       int

	stopOnce sync.Once
	stopErr  error
}

// StartCluster binds n loopback daemons, starts them, and waits until every
// one is ready. Callers submit via clients dialed at ClientAddr(i) or
// through Daemons[i].Manager(). Stop with Stop.
func StartCluster(n int, opts Options) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("session: need at least 2 daemons, got %d", n)
	}
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	c := &Cluster{
		Daemons: make([]*Daemon, n),
		addrs:   addrs,
		opts:    opts,
		cancels: make([]context.CancelFunc, n),
		dones:   make([]chan error, n),
		n:       n,
	}
	for i := 0; i < n; i++ {
		if err := c.launch(i, listeners[i]); err != nil {
			c.Stop()
			for _, l := range listeners[i+1:] {
				l.Close()
			}
			return nil, err
		}
	}
	setup := opts.withDefaults().SetupTimeout
	deadline := time.Now().Add(setup)
	for i := 0; i < n; i++ {
		if err := c.waitReady(i, deadline); err != nil {
			c.Stop()
			return nil, err
		}
	}
	return c, nil
}

// launch starts seat i with a fresh Daemon and its own context. ln, when
// non-nil, is the pre-bound peer listener; nil makes Run bind addrs[i]
// itself (the restart path, after the old daemon released the port).
func (c *Cluster) launch(i int, ln net.Listener) error {
	d, err := NewDaemon(i, c.addrs, "127.0.0.1:0", c.opts)
	if err != nil {
		return err
	}
	d.peerLn = ln
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	c.mu.Lock()
	c.Daemons[i] = d
	c.cancels[i] = cancel
	c.dones[i] = done
	c.mu.Unlock()
	go func() { done <- d.Run(ctx) }()
	return nil
}

// waitReady blocks until seat i reports ready, its Run exits (error), or
// the deadline passes.
func (c *Cluster) waitReady(i int, deadline time.Time) error {
	c.mu.Lock()
	d, done := c.Daemons[i], c.dones[i]
	c.mu.Unlock()
	if d == nil {
		return fmt.Errorf("session: daemon %d never launched", i)
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-d.Ready():
		return nil
	case err := <-done:
		done <- err // leave the exit value for Stop
		if err == nil {
			err = fmt.Errorf("session: daemon %d exited during setup", i)
		}
		return err
	case <-timer.C:
		return fmt.Errorf("session: daemon %d not ready within %v", i, time.Until(deadline))
	}
}

// waitExit collects seat i's Run result and re-posts it so Stop (or a later
// waiter) sees the same value.
func (c *Cluster) waitExit(i int) error {
	c.mu.Lock()
	done := c.dones[i]
	c.mu.Unlock()
	err := <-done
	done <- err
	return err
}

// Kill tears seat i down abruptly — the kill -9 stand-in: no drain, no
// flush, journal abandoned with its unsynced tail. Returns when Run has
// exited. The seat can be brought back with Start.
func (c *Cluster) Kill(i int) error {
	c.mu.Lock()
	d := c.Daemons[i]
	c.mu.Unlock()
	d.Kill()
	return c.waitExit(i)
}

// Start relaunches seat i after a Kill or graceful stop. The new daemon
// rebinds the same peer address (the cluster identity hash pins the address
// set) but a fresh client port — read it from ClientAddr(i). Blocks until
// the seat is ready: journal replayed and the mesh links re-established.
func (c *Cluster) Start(i int) error {
	if err := c.launch(i, nil); err != nil {
		return err
	}
	return c.waitReady(i, time.Now().Add(c.opts.withDefaults().SetupTimeout))
}

// Restart stops seat i gracefully (drain, flush, journal sync) and brings
// it back, waiting for readiness — the rolling-restart building block.
func (c *Cluster) Restart(i int) error {
	c.mu.Lock()
	cancel := c.cancels[i]
	c.mu.Unlock()
	cancel()
	if err := c.waitExit(i); err != nil {
		return fmt.Errorf("session: daemon %d graceful stop: %w", i, err)
	}
	return c.Start(i)
}

// Daemon returns the live daemon at seat i (restart-safe accessor).
func (c *Cluster) Daemon(i int) *Daemon {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Daemons[i]
}

// ClientAddr returns daemon i's current client API address.
func (c *Cluster) ClientAddr(i int) string { return c.Daemon(i).ClientAddr() }

// Stop cancels every daemon and waits for all of them to exit, returning
// the first error. Idempotent: later calls return the first call's result.
func (c *Cluster) Stop() error {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		cancels := append([]context.CancelFunc(nil), c.cancels...)
		c.mu.Unlock()
		for _, cancel := range cancels {
			if cancel != nil {
				cancel()
			}
		}
		for i := range cancels {
			if cancels[i] == nil {
				continue
			}
			if err := c.waitExit(i); err != nil && c.stopErr == nil {
				c.stopErr = err
			}
		}
	})
	return c.stopErr
}
