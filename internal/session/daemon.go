package session

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"strconv"
	"sync"
	"time"

	"treeaa/internal/metrics"
	"treeaa/internal/sim"
	"treeaa/internal/transport"
)

// Options tunes one serving daemon. The zero value is usable: withDefaults
// fills every field.
type Options struct {
	// MaxSessions caps non-terminal sessions on this daemon — the admission
	// control knob. Submissions and peer opens beyond it are rejected.
	MaxSessions int
	// QueueDepth scales the pending-frame buffers for sessions whose open
	// has not arrived yet: QueueDepth/4 frames per session, 16×QueueDepth
	// per shard. Frames beyond the bound drop (the setup timeout then fails
	// the session); admitted sessions' queues are unbounded and drained by
	// their shard worker.
	QueueDepth int
	// Shards is the engine-pool width: sessions hash to shards by id, one
	// worker goroutine per shard. Defaults to min(GOMAXPROCS, 16).
	Shards int
	// FlushInterval is the longest a queued outbound frame waits for its
	// link's coalesced write once the adaptive flusher decides to batch.
	FlushInterval time.Duration
	// FlushOccupancy cuts a coalescing wait short once this many frames are
	// queued on a link.
	FlushOccupancy int
	// MaxBatchBytes kicks the flusher early when a link's outbox reaches
	// this size, bounding batch memory under load.
	MaxBatchBytes int
	// JSONClientAPI serves the legacy length-prefixed JSON client protocol
	// instead of the binary wire protocol (see DialJSONClient).
	JSONClientAPI bool
	// DefaultTTL is the session deadline applied when a spec's TTL is zero;
	// it also sets how long terminal sessions linger for status queries.
	DefaultTTL time.Duration

	SetupTimeout time.Duration // mux mesh establishment budget
	RoundTimeout time.Duration // per-round barrier budget for every engine
	DrainTimeout time.Duration // graceful-shutdown wait for in-flight sessions

	// Stats receives the daemon's counters; shared across daemons in tests.
	Stats *metrics.ServeStats
	// WrapConn, when set, wraps every peer connection on the writing side —
	// the chaos injection seam, same contract as transport.Options.WrapConn.
	WrapConn func(from, to sim.PartyID, conn net.Conn) net.Conn
	// Dialer establishes peer connections; nil means transport.DialRetry.
	Dialer func(addr string, deadline time.Time) (net.Conn, error)
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 1024
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards > 16 {
			o.Shards = 16
		}
		if o.Shards < 1 {
			o.Shards = 1
		}
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 200 * time.Microsecond
	}
	if o.FlushOccupancy <= 0 {
		o.FlushOccupancy = 32
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 64 << 10
	}
	if o.DefaultTTL <= 0 {
		o.DefaultTTL = 30 * time.Second
	}
	if o.SetupTimeout <= 0 {
		o.SetupTimeout = 10 * time.Second
	}
	if o.RoundTimeout <= 0 {
		o.RoundTimeout = 60 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.Stats == nil {
		o.Stats = &metrics.ServeStats{}
	}
	if o.Dialer == nil {
		o.Dialer = transport.DialRetry
	}
	return o
}

// Daemon is one seat of an n-daemon serving deployment: it joins the peer
// mesh, accepts client requests, and runs this seat's engine for every
// admitted session.
type Daemon struct {
	id        sim.PartyID
	n         int
	peerAddrs []string
	clientArg string
	opts      Options

	mux *mux
	mgr *Manager

	// peerLn, when set before Run, is the pre-bound peer listener (the
	// in-process cluster binds first so peers know each other's ports).
	peerLn   net.Listener
	clientLn net.Listener

	ready chan struct{}
	// closedCh is closed after the drain completes: only then do client
	// connections die, so a client blocked in wait sees its session's
	// terminal outcome instead of a torn connection.
	closedCh chan struct{}
	clientWG sync.WaitGroup
}

// NewDaemon configures seat id of a deployment whose peer listen addresses
// are peerAddrs (one per daemon, index = id). clientAddr is the client API
// listen address; ":0" style works, read the bound address from ClientAddr
// after Ready.
func NewDaemon(id int, peerAddrs []string, clientAddr string, opts Options) (*Daemon, error) {
	n := len(peerAddrs)
	if n < 2 {
		return nil, fmt.Errorf("session: need at least 2 daemons, got %d", n)
	}
	if id < 0 || id >= n {
		return nil, fmt.Errorf("session: daemon id %d out of range [0, %d)", id, n)
	}
	return &Daemon{
		id:        sim.PartyID(id),
		n:         n,
		peerAddrs: append([]string(nil), peerAddrs...),
		clientArg: clientAddr,
		opts:      opts.withDefaults(),
		ready:     make(chan struct{}),
		closedCh:  make(chan struct{}),
	}, nil
}

// Run brings the daemon up and serves until ctx is cancelled, then shuts
// down gracefully: stop admissions, drain in-flight sessions (up to
// DrainTimeout), and tear the mesh and client listener down without leaking
// goroutines.
func (d *Daemon) Run(ctx context.Context) error {
	peerLn := d.peerLn
	if peerLn == nil {
		var err error
		peerLn, err = net.Listen("tcp", d.peerAddrs[d.id])
		if err != nil {
			return fmt.Errorf("session: daemon %d peer listener: %w", d.id, err)
		}
	}
	clientLn, err := net.Listen("tcp", d.clientArg)
	if err != nil {
		peerLn.Close()
		return fmt.Errorf("session: daemon %d client listener: %w", d.id, err)
	}
	d.clientLn = clientLn

	cluster := clusterHash(d.peerAddrs)
	d.mgr = newManager(d)
	d.mux = newMux(d.id, d.n, d.peerAddrs, cluster, d.opts, d.mgr.handleRaw, d.mgr.linkDown)
	if err := d.mux.start(peerLn); err != nil {
		clientLn.Close()
		d.mux.close()
		return err
	}
	go d.mgr.evictLoop()
	d.clientWG.Add(1)
	go d.acceptClients()
	close(d.ready)

	<-ctx.Done()
	// Shutdown order matters: drain first (in-flight sessions reach their
	// terminal states and blocked client waits get real answers), then cut
	// the client connections, then the mesh.
	d.mgr.drain(d.opts.DrainTimeout)
	close(d.closedCh)
	d.clientLn.Close()
	d.mux.close()
	d.mgr.stop()
	d.clientWG.Wait()
	return nil
}

// Ready is closed once the mesh is up and the client API is accepting.
func (d *Daemon) Ready() <-chan struct{} { return d.ready }

// ClientAddr returns the bound client API address; valid after Ready.
func (d *Daemon) ClientAddr() string { return d.clientLn.Addr().String() }

// Manager exposes the session table for in-process callers (the smoke
// drivers submit through it directly); valid after Ready.
func (d *Daemon) Manager() *Manager { return d.mgr }

// Stats returns the daemon's counters.
func (d *Daemon) Stats() *metrics.ServeStats { return d.opts.Stats }

// clusterHash pins the deployment identity the mux hello checks: same
// daemon set, same order, or the handshake fails.
func clusterHash(addrs []string) uint64 {
	parts := append([]string{"serve", strconv.Itoa(len(addrs))}, addrs...)
	return transport.DeriveSession(parts...)
}

// Cluster is an in-process deployment: n daemons on loopback, the harness
// for tests, the smoke target and the bench.
type Cluster struct {
	Daemons  []*Daemon
	cancel   context.CancelFunc
	errs     chan error
	n        int
	stopOnce sync.Once
	stopErr  error
}

// StartCluster binds n loopback daemons, starts them, and waits until every
// one is ready. Callers submit via clients dialed at ClientAddr(i) or
// through Daemons[i].Manager(). Stop with Stop.
func StartCluster(n int, opts Options) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("session: need at least 2 daemons, got %d", n)
	}
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{cancel: cancel, errs: make(chan error, n), n: n}
	for i := 0; i < n; i++ {
		d, err := NewDaemon(i, addrs, "127.0.0.1:0", opts)
		if err != nil {
			cancel()
			for _, l := range listeners[i:] {
				l.Close()
			}
			c.drainErrs(i) // the i daemons already launched
			return nil, err
		}
		d.peerLn = listeners[i]
		c.Daemons = append(c.Daemons, d)
		go func() { c.errs <- d.Run(ctx) }()
	}
	deadline := time.After(opts.withDefaults().SetupTimeout)
	for _, d := range c.Daemons {
		select {
		case <-d.Ready():
		case err := <-c.errs:
			cancel()
			c.drainErrs(n - 1)
			if err == nil {
				err = fmt.Errorf("session: a daemon exited during setup")
			}
			return nil, err
		case <-deadline:
			cancel()
			c.drainErrs(n)
			return nil, fmt.Errorf("session: cluster not ready within %v", opts.withDefaults().SetupTimeout)
		}
	}
	return c, nil
}

// drainErrs waits for count daemon exits (their Run errors are discarded).
func (c *Cluster) drainErrs(count int) {
	for i := 0; i < count; i++ {
		<-c.errs
	}
}

// ClientAddr returns daemon i's client API address.
func (c *Cluster) ClientAddr(i int) string { return c.Daemons[i].ClientAddr() }

// Stop cancels every daemon and waits for all of them to exit, returning
// the first error. Idempotent: later calls return the first call's result.
func (c *Cluster) Stop() error {
	c.stopOnce.Do(func() {
		c.cancel()
		for range c.Daemons {
			if err := <-c.errs; err != nil && c.stopErr == nil {
				c.stopErr = err
			}
		}
	})
	return c.stopErr
}
