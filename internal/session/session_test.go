package session

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"treeaa/internal/cli"
	"treeaa/internal/metrics"
	"treeaa/internal/sim"
)

func startTestCluster(t *testing.T, n int, opts Options) *Cluster {
	t.Helper()
	c, err := StartCluster(n, opts)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() {
		if err := c.Stop(); err != nil {
			t.Errorf("cluster stop: %v", err)
		}
	})
	return c
}

// slowConn delays every peer-link write by a fixed amount — the test lever
// for stretching round trips (the flusher's first-frame kick makes
// FlushInterval a latency bound, not a floor).
type slowConn struct {
	net.Conn
	delay time.Duration
}

func (c slowConn) Write(b []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Write(b)
}

func slowLinks(delay time.Duration) func(_, _ sim.PartyID, conn net.Conn) net.Conn {
	return func(_, _ sim.PartyID, conn net.Conn) net.Conn {
		return slowConn{Conn: conn, delay: delay}
	}
}

// submitAndWait drives one session through daemon origin's client API and
// returns its terminal response.
func submitAndWait(t *testing.T, c *Cluster, origin int, spec Spec) *Response {
	t.Helper()
	cl, err := DialClient(c.ClientAddr(origin), 5*time.Second)
	if err != nil {
		t.Fatalf("dial daemon %d: %v", origin, err)
	}
	defer cl.Close()
	resp, err := cl.Submit(spec, 0, true)
	if err != nil {
		t.Fatalf("submit to daemon %d: %v", origin, err)
	}
	return resp
}

// TestServeMatchesSim pins the tentpole invariant: a served session's
// Result is byte-identical (DeepEqual) to sim.Run on the same spec, across
// tree shapes, party counts, and origin daemons.
func TestServeMatchesSim(t *testing.T) {
	cases := []struct {
		n    int
		spec Spec
	}{
		{4, Spec{Tree: "path:8"}},
		{4, Spec{Tree: "star:9"}},
		{4, Spec{Tree: "spider:3:4"}},
		{5, Spec{Tree: "caterpillar:4:2"}},
		{4, Spec{Tree: "random:12", Seed: 7}},
		{7, Spec{Tree: "path:16", T: 2}},
		{4, Spec{Tree: "figure3"}},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s_n%d", tc.spec.Tree, tc.n), func(t *testing.T) {
			t.Parallel()
			c := startTestCluster(t, tc.n, Options{})
			want, err := Oracle(tc.n, tc.spec)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			origin := i % tc.n
			resp := submitAndWait(t, c, origin, tc.spec)
			got, err := resp.SimResult()
			if err != nil {
				t.Fatalf("session result: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("served result diverges from sim.Run:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestManySessionsConcurrent is the acceptance load: ≥500 concurrent
// sessions over a 4-daemon loopback cluster, inputs rotated per session,
// every Result DeepEqual to its oracle. Submissions spread across all
// daemons so every seat plays origin.
func TestManySessionsConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	const (
		n        = 4
		sessions = 500
	)
	stats := &metrics.ServeStats{}
	c := startTestCluster(t, n, Options{MaxSessions: sessions + 8, Stats: stats})

	tr, err := cli.ParseTreeSpec("spider:3:3", 0)
	if err != nil {
		t.Fatal(err)
	}
	specFor := func(i int) Spec {
		return Spec{Tree: "spider:3:3", Inputs: cli.RotateInputs(tr, n, i), TTL: 2 * time.Minute}
	}
	// Distinct input rotations repeat with period NumVertices; oracles are
	// computed once per rotation, not per session.
	oracles := make(map[string]*sim.Result)
	for i := 0; i < tr.NumVertices(); i++ {
		spec := specFor(i)
		want, err := Oracle(n, spec)
		if err != nil {
			t.Fatalf("oracle %d: %v", i, err)
		}
		oracles[spec.Inputs] = want
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for w := 0; w < sessions; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := specFor(w)
			cl, err := DialClient(c.ClientAddr(w%n), 10*time.Second)
			if err != nil {
				errs <- fmt.Errorf("session %d: dial: %w", w, err)
				return
			}
			defer cl.Close()
			resp, err := cl.Submit(spec, 0, true)
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", w, err)
				return
			}
			got, err := resp.SimResult()
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", w, err)
				return
			}
			if !reflect.DeepEqual(got, oracles[spec.Inputs]) {
				errs <- fmt.Errorf("session %d: result diverges from oracle", w)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := stats.Decided.Load(); got < sessions {
		t.Errorf("decided %d sessions, want ≥ %d", got, sessions)
	}
	if stats.RejectedCapacity.Load() != 0 {
		t.Errorf("unexpected capacity rejections: %d", stats.RejectedCapacity.Load())
	}
}

// TestAdmissionRejectsAtCapacity pins admission control: with MaxSessions
// slots full of slow sessions, the next submit is rejected with a capacity
// error and counted, and the slot holders still decide.
func TestAdmissionRejectsAtCapacity(t *testing.T) {
	const cap = 3
	stats := &metrics.ServeStats{}
	c := startTestCluster(t, 4, Options{MaxSessions: cap, Stats: stats,
		// Slowed links keep the slot holders in flight while the
		// over-capacity submit lands.
		WrapConn: slowLinks(5 * time.Millisecond)})
	cl, err := DialClient(c.ClientAddr(0), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	spec := Spec{Tree: "kary:2:4", TTL: time.Minute}
	sids := make([]uint64, cap)
	for i := range sids {
		resp, err := cl.Submit(spec, 0, false)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		sids[i] = resp.SID
	}
	if _, err := cl.Submit(spec, 0, false); err == nil {
		t.Fatal("submit beyond capacity succeeded")
	}
	if got := stats.RejectedCapacity.Load(); got == 0 {
		t.Error("capacity rejection not counted")
	}
	for _, sid := range sids {
		resp, err := cl.Wait(sid)
		if err != nil {
			t.Fatalf("wait %#x: %v", sid, err)
		}
		if !resp.Decided() {
			t.Fatalf("session %#x ended %s: %s", sid, resp.State, resp.Err)
		}
	}
}

// TestDuplicateSubmitRejected pins the duplicate-sid check for
// client-chosen ids, both while the first session is in flight and after
// it decided (the id lingers in the table).
func TestDuplicateSubmitRejected(t *testing.T) {
	stats := &metrics.ServeStats{}
	c := startTestCluster(t, 4, Options{Stats: stats})
	cl, err := DialClient(c.ClientAddr(1), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const sid = 0xBEEF
	spec := Spec{Tree: "path:6", TTL: time.Minute}
	if _, err := cl.Submit(spec, sid, false); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if _, err := cl.Submit(spec, sid, false); err == nil {
		t.Fatal("duplicate submit while in flight succeeded")
	}
	if _, err := cl.Wait(sid); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if _, err := cl.Submit(spec, sid, false); err == nil {
		t.Fatal("duplicate submit after decision succeeded")
	}
	if got := stats.RejectedDuplicate.Load(); got < 2 {
		t.Errorf("duplicate rejections = %d, want ≥ 2", got)
	}
}

// TestDeadlineEvictionMidRound pins deadline eviction: a session whose TTL
// is far shorter than its rounds can complete (the flush interval is
// stretched to slow every round) must expire on every daemon, release its
// slot, and report StateExpired to a waiting client.
func TestDeadlineEvictionMidRound(t *testing.T) {
	stats := &metrics.ServeStats{}
	c := startTestCluster(t, 4, Options{Stats: stats,
		WrapConn: slowLinks(20 * time.Millisecond)})
	cl, err := DialClient(c.ClientAddr(0), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// kary:2:5 runs tens of rounds; at ≥20ms per link write it cannot
	// finish inside 120ms, so the deadline fires mid-execution.
	resp, err := cl.Submit(Spec{Tree: "kary:2:5", TTL: 120 * time.Millisecond}, 0, true)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if resp.State != StateExpired.String() {
		t.Fatalf("session ended %s (%s), want expired", resp.State, resp.Err)
	}
	if stats.Expired.Load() == 0 {
		t.Error("expiry not counted")
	}
	// The slot must be free again: a healthy session on the same daemon
	// still decides.
	ok, err := cl.Submit(Spec{Tree: "path:5", TTL: time.Minute}, 0, true)
	if err != nil {
		t.Fatalf("follow-up submit: %v", err)
	}
	if !ok.Decided() {
		t.Fatalf("follow-up session ended %s: %s", ok.State, ok.Err)
	}
}

// TestStatusLifecycle pins the status op: unknown ids error; a decided
// session reports state "decided" with its result attached.
func TestStatusLifecycle(t *testing.T) {
	c := startTestCluster(t, 4, Options{})
	cl, err := DialClient(c.ClientAddr(2), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Status(0x123456); err == nil {
		t.Error("status of unknown sid succeeded")
	}
	resp, err := cl.Submit(Spec{Tree: "star:7", TTL: time.Minute}, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Status(resp.SID)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if !st.Decided() {
		t.Fatalf("status reports %s, want decided", st.State)
	}
	got, err := st.SimResult()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Oracle(4, Spec{Tree: "star:7"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("status result diverges:\n got %+v\nwant %+v", got, want)
	}
}

// TestGracefulShutdownDrains pins the drain path: Stop while sessions are
// in flight lets them finish (inside DrainTimeout) rather than killing the
// mesh under them.
func TestGracefulShutdownDrains(t *testing.T) {
	c := startTestCluster(t, 4, Options{DrainTimeout: 30 * time.Second})
	cl, err := DialClient(c.ClientAddr(0), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Submit(Spec{Tree: "kary:2:4", TTL: time.Minute}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Response, 1)
	go func() {
		r, err := cl.Wait(resp.SID)
		if err != nil {
			done <- nil
			return
		}
		done <- r
	}()
	// Stop concurrently: drain must let the in-flight session decide.
	if err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	select {
	case r := <-done:
		if r == nil || !r.Decided() {
			state, reason := "connection lost", ""
			if r != nil {
				state, reason = r.State, r.Err
			}
			t.Fatalf("in-flight session ended %s (%s), want decided", state, reason)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("wait did not return after drain")
	}
}
