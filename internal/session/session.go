// Package session is the serving layer: agreement as a service. A Daemon
// hosts many concurrent TreeAA sessions multiplexed over a single set of
// peer links — one duplex TCP connection per daemon pair, shared by every
// session — instead of the one-shot, dedicated-mesh execution of
// internal/transport. BKR-style ACS stacks amortize link cost exactly this
// way: the links and their authentication are per-deployment, the protocol
// instances are cheap tenants on top.
//
// # Architecture
//
//	client ──TCP──▶ server.go ──▶ Manager ──▶ shard pool (engines as state
//	                                 ▲              │ machines, one worker
//	                                 │ inbound      │ goroutine per shard)
//	                                 │              ▼ outbound frames
//	                              mux.go ◀──── per-peer outbox + flusher
//	                                 │
//	                           peer daemons
//
// Every frame on a peer link is a transport-framed wire session payload
// (wire.SessionMsg / SessionEOR / SessionOpen / SessionAbort /
// SessionDecide) carrying its session id, so one link interleaves every
// session's rounds. Engines are passive state machines packed onto a small
// pool of shard workers (sessions hash to shards by id); link readers peek
// the session id from the still-encoded frame and hand the raw bytes to the
// owning shard with no decode, no copy, and no global lock on the data
// path. The flusher coalesces all sessions' outbound frames into one
// batched conn.Write per peer, adapting per link: it batches only while the
// link's flush-size average says waits actually fill batches, and flushes
// immediately on quiet links where waiting would just add latency.
//
// The engines replicate internal/transport's round loop exactly — encode
// once per payload, count messages and bytes at send (self-delivery
// included), end-of-round barrier, terminate when done and all peers done —
// so each session's Result is byte-identical to sim.Run on the same spec.
// The origin daemon (where the session was submitted) assembles that Result
// from its own record plus each peer's SessionDecide.
//
// With Options.Async the engines instead replicate transport's event-driven
// async driver: every inbound SessionMsg is delivered to an async.Pipeline
// on arrival, a seat broadcasts one SessionEOR{Done} as its decision
// announcement, and the seat finishes once it has decided and heard done
// from every peer. There are no barriers and no round timeouts (RoundTimeout
// becomes an idle watchdog), and decided Results are judged by the paper's
// properties — validity and 1-agreement — rather than oracle byte-identity,
// because an asynchronous decision legitimately depends on delivery order.
package session

import (
	"fmt"
	"math"
	"time"

	"treeaa/internal/cli"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// Spec describes one session: everything a daemon needs to run its seat
// deterministically. It is what a client submits and what SessionOpen
// carries to the peers.
type Spec struct {
	Tree   string        // cli.ParseSpaceSpec spec: a tree spec ("path:16") or "graph:"-prefixed graph spec
	Seed   int64         // tree/graph-spec seed (random shapes)
	T      int           // corruption budget the machines tolerate
	Inputs string        // cli.ParseInputs spec; "" spreads inputs
	TTL    time.Duration // deadline from admission; 0 means server default
}

// State is a session's lifecycle position. Transitions are monotone:
// Pending → Running → exactly one of the terminal states.
type State int

const (
	StatePending State = iota // admitted, engine not yet stepping
	StateRunning
	StateDecided // terminal: Result assembled (origin) or seat decided (peer)
	StateFailed  // terminal: aborted (rejection, engine error, peer abort)
	StateExpired // terminal: deadline eviction
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool { return s >= StateDecided }

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateDecided:
		return "decided"
	case StateFailed:
		return "failed"
	case StateExpired:
		return "expired"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Outcome is a session's terminal report on its origin daemon.
type Outcome struct {
	SID   uint64
	State State
	Err   string // failure / expiry reason
	// Result is set for decided sessions only. On sync deployments it is
	// DeepEqual to sim.Run on the same spec; on async deployments Rounds is
	// the constant 1 and Outputs satisfy validity and 1-agreement, but are
	// not pinned to any reference schedule.
	Result *sim.Result
	// Latency is admission → terminal, the closed-loop service time the
	// bench reports percentiles of.
	Latency time.Duration
}

// parsedSpec is a validated Spec, resolved against the daemon's n.
type parsedSpec struct {
	spec      Spec
	space     *cli.Space // tree, or block graph ("graph:"-prefixed Spec.Tree)
	inputs    []tree.VertexID
	maxRounds int
	deadline  time.Duration // resolved TTL
}

// parseSpec validates a spec for an n-party deployment. Rejections here
// happen before admission, so a malformed spec never occupies a slot.
func parseSpec(spec Spec, n int, defaultTTL time.Duration) (parsedSpec, error) {
	if spec.TTL < 0 {
		return parsedSpec{}, fmt.Errorf("session: negative ttl %v", spec.TTL)
	}
	space, err := cli.ParseSpaceSpec(spec.Tree, spec.Seed)
	if err != nil {
		return parsedSpec{}, fmt.Errorf("session: space spec: %w", err)
	}
	inputs, err := space.ParseInputs(spec.Inputs, n)
	if err != nil {
		return parsedSpec{}, fmt.Errorf("session: inputs: %w", err)
	}
	if spec.T < 0 || spec.T > math.MaxInt32 {
		return parsedSpec{}, fmt.Errorf("session: t = %d out of range", spec.T)
	}
	if spec.T > 0 && n <= 3*spec.T {
		return parsedSpec{}, fmt.Errorf("session: n = %d does not satisfy n > 3t for t = %d", n, spec.T)
	}
	ttl := spec.TTL
	if ttl == 0 {
		ttl = defaultTTL
	}
	return parsedSpec{
		spec:      spec,
		space:     space,
		inputs:    inputs,
		maxRounds: space.Rounds() + 2, // the repo-wide honest round budget
		deadline:  ttl,
	}, nil
}

// Oracle runs a spec through the sequential engine — the reference every
// served session's Result must DeepEqual. The smoke and bench drivers, the
// chaos soak and the tests all judge against it.
func Oracle(n int, spec Spec) (*sim.Result, error) {
	ps, err := parseSpec(spec, n, time.Hour)
	if err != nil {
		return nil, err
	}
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		m, _, err := ps.space.NewMachine(n, spec.T, sim.PartyID(i), ps.inputs[i])
		if err != nil {
			return nil, err
		}
		machines[i] = m
	}
	return sim.Run(sim.Config{N: n, MaxCorrupt: spec.T, MaxRounds: ps.maxRounds}, machines)
}
