package session

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"treeaa/internal/sim"
	"treeaa/internal/transport"
	"treeaa/internal/tree"
	"treeaa/internal/wire"
)

// Client speaks the client API to one daemon — the binary wire protocol by
// default, the legacy JSON protocol when dialed with DialJSONClient. It is
// safe for concurrent use; requests on one client serialize over its
// connection, so load generators open one client per worker.
type Client struct {
	json bool

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	wbuf []byte
}

// DialClient connects to a daemon's client API address, speaking the binary
// protocol (the daemon's default).
func DialClient(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn)}, nil
}

// DialJSONClient connects speaking the legacy length-prefixed JSON
// protocol; the daemon must run with Options.JSONClientAPI.
func DialJSONClient(addr string, timeout time.Duration) (*Client, error) {
	c, err := DialClient(addr, timeout)
	if err != nil {
		return nil, err
	}
	c.json = true
	return c, nil
}

func (c *Client) do(req Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.json {
		if err := writeJSON(c.conn, req); err != nil {
			return nil, err
		}
		var resp Response
		if err := readJSON(c.br, &resp); err != nil {
			return nil, err
		}
		return &resp, nil
	}
	payload, err := clientPayload(req)
	if err != nil {
		return nil, err
	}
	body, err := wire.Encode(payload)
	if err != nil {
		return nil, err
	}
	c.wbuf = transport.AppendFrame(c.wbuf[:0], body)
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return nil, err
	}
	respBody, err := transport.ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	decoded, err := wire.Decode(respBody)
	if err != nil {
		return nil, err
	}
	out, ok := decoded.(wire.ClientOutcome)
	if !ok {
		return nil, fmt.Errorf("session: unexpected %T from daemon", decoded)
	}
	return responseFromOutcome(out), nil
}

func (c *Client) Close() error { return c.conn.Close() }

// clientPayload maps one Request onto its wire payload.
func clientPayload(req Request) (any, error) {
	switch req.Op {
	case "submit":
		ttl := req.TTLMS
		if ttl < 0 {
			ttl = 0
		}
		return wire.ClientSubmit{SID: req.SID, Tree: req.Tree, Seed: req.Seed, T: req.T,
			Inputs: req.Inputs, TTLMillis: uint64(ttl), Wait: req.Wait}, nil
	case "wait":
		return wire.ClientWait{SID: req.SID}, nil
	case "status":
		return wire.ClientStatus{SID: req.SID}, nil
	}
	return nil, fmt.Errorf("session: unknown op %q", req.Op)
}

// responseFromOutcome is the inverse of the server's outcomeFrame.
func responseFromOutcome(out wire.ClientOutcome) *Response {
	resp := &Response{OK: out.OK, Err: out.Err, SID: out.SID,
		LatencyNS: out.LatencyNS, Rounds: out.Rounds,
		Messages: out.Msgs, Bytes: out.Bytes}
	if out.State != wire.ClientStateNone {
		resp.State = State(out.State).String()
	}
	if len(out.Outputs) > 0 {
		resp.Outputs = make(map[string]int, len(out.Outputs))
		for _, p := range out.Outputs {
			resp.Outputs[strconv.Itoa(int(p.Party))] = int(p.V)
		}
	}
	return resp
}

// Submit offers a session. sid 0 auto-assigns. With wait the call blocks
// until the terminal Outcome; without it the response carries the assigned
// sid immediately. A rejection (capacity, duplicate, bad spec) is returned
// as an error.
func (c *Client) Submit(spec Spec, sid uint64, wait bool) (*Response, error) {
	resp, err := c.do(Request{Op: "submit", SID: sid, Tree: spec.Tree, Seed: spec.Seed,
		T: spec.T, Inputs: spec.Inputs, TTLMS: spec.TTL.Milliseconds(), Wait: wait})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("session: submit rejected: %s", resp.Err)
	}
	return resp, nil
}

// Status queries a session's current lifecycle view.
func (c *Client) Status(sid uint64) (*Response, error) {
	resp, err := c.do(Request{Op: "status", SID: sid})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("session: status: %s", resp.Err)
	}
	return resp, nil
}

// Wait blocks until the session reaches a terminal state.
func (c *Client) Wait(sid uint64) (*Response, error) {
	resp, err := c.do(Request{Op: "wait", SID: sid})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("session: wait: %s", resp.Err)
	}
	return resp, nil
}

// Decided reports whether the response is a decided terminal outcome.
func (r *Response) Decided() bool { return r.State == StateDecided.String() }

// SimResult reconstructs the sim.Result a decided response carries, in the
// exact shape sim.Run returns — the form the oracle comparison DeepEquals.
func (r *Response) SimResult() (*sim.Result, error) {
	if !r.Decided() {
		return nil, fmt.Errorf("session: session %#x is %s: %s", r.SID, r.State, r.Err)
	}
	res := &sim.Result{
		Rounds:    r.Rounds,
		Messages:  r.Messages,
		Bytes:     r.Bytes,
		Outputs:   make(map[sim.PartyID]any, len(r.Outputs)),
		Corrupted: make(map[sim.PartyID]bool),
	}
	for p, v := range r.Outputs {
		id, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("session: bad party key %q", p)
		}
		res.Outputs[sim.PartyID(id)] = tree.VertexID(v)
	}
	return res, nil
}
