package session

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// Client speaks the length-prefixed JSON API to one daemon. It is safe for
// concurrent use; requests on one client serialize over its connection, so
// load generators open one client per worker.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

// DialClient connects to a daemon's client API address.
func DialClient(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn)}, nil
}

func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) do(req Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeJSON(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := readJSON(c.br, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Submit offers a session. sid 0 auto-assigns. With wait the call blocks
// until the terminal Outcome; without it the response carries the assigned
// sid immediately. A rejection (capacity, duplicate, bad spec) is returned
// as an error.
func (c *Client) Submit(spec Spec, sid uint64, wait bool) (*Response, error) {
	resp, err := c.do(Request{Op: "submit", SID: sid, Tree: spec.Tree, Seed: spec.Seed,
		T: spec.T, Inputs: spec.Inputs, TTLMS: spec.TTL.Milliseconds(), Wait: wait})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("session: submit rejected: %s", resp.Err)
	}
	return resp, nil
}

// Status queries a session's current lifecycle view.
func (c *Client) Status(sid uint64) (*Response, error) {
	resp, err := c.do(Request{Op: "status", SID: sid})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("session: status: %s", resp.Err)
	}
	return resp, nil
}

// Wait blocks until the session reaches a terminal state.
func (c *Client) Wait(sid uint64) (*Response, error) {
	resp, err := c.do(Request{Op: "wait", SID: sid})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("session: wait: %s", resp.Err)
	}
	return resp, nil
}

// Decided reports whether the response is a decided terminal outcome.
func (r *Response) Decided() bool { return r.State == StateDecided.String() }

// SimResult reconstructs the sim.Result a decided response carries, in the
// exact shape sim.Run returns — the form the oracle comparison DeepEquals.
func (r *Response) SimResult() (*sim.Result, error) {
	if !r.Decided() {
		return nil, fmt.Errorf("session: session %#x is %s: %s", r.SID, r.State, r.Err)
	}
	res := &sim.Result{
		Rounds:    r.Rounds,
		Messages:  r.Messages,
		Bytes:     r.Bytes,
		Outputs:   make(map[sim.PartyID]any, len(r.Outputs)),
		Corrupted: make(map[sim.PartyID]bool),
	}
	for p, v := range r.Outputs {
		id, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("session: bad party key %q", p)
		}
		res.Outputs[sim.PartyID(id)] = tree.VertexID(v)
	}
	return res, nil
}
