package session

import (
	"fmt"
	"sync"
	"time"

	"treeaa/internal/sim"
)

// shard is one worker of the engine pool. Sessions hash to shards by id
// (sid mod Shards); each shard owns its sessions' engines, their pending
// buffers (frames that outran the SessionOpen) and their tombstones, and
// steps ready engines from a run queue on one dedicated worker goroutine.
// The data plane — deliver, from the link readers — takes only this shard's
// mutex, never the manager's: per-frame contention on the global session
// table was a top serve-profile cost of the goroutine-per-session model.
//
// Lock order: Manager.mu before shard.mu, never the reverse. The worker
// holds shard.mu only to swap queues; engine stepping runs unlocked and may
// call into the manager (fail, finishSeat), which takes Manager.mu.
type shard struct {
	m *Manager

	mu         sync.Mutex
	engines    map[uint64]*engine
	dirty      []*engine // engines with queued work, deduplicated via engine.queued
	dirtySpare []*engine
	pending    map[uint64]*pendingBuf
	pendingN   int
	tombstone  map[uint64]time.Time

	kick chan struct{} // capacity 1: the dirty list became non-empty
	quit chan struct{}
	done chan struct{}
}

// pendingBuf buffers raw frames for a session whose open has not arrived
// yet (the open travels origin→peer while round-1 data arrives over every
// link). Bounded per session and per shard; overflow drops the session id.
type pendingBuf struct {
	since time.Time
	evs   []rawEvent
}

func newShard(m *Manager) *shard {
	return &shard{
		m:         m,
		engines:   make(map[uint64]*engine),
		pending:   make(map[uint64]*pendingBuf),
		tombstone: make(map[uint64]time.Time),
		kick:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// pendingPerSession bounds the frames buffered for one not-yet-opened
// session: at most one round of traffic can precede the open on any link,
// so a deep buffer only ever holds garbage.
func (sh *shard) pendingPerSession() int { return sh.m.d.opts.QueueDepth / 4 }

func (sh *shard) pendingTotal() int { return 16 * sh.m.d.opts.QueueDepth }

// deliver hands one raw in-session frame to the owning engine's queue and
// marks the engine ready. Unknown ids buffer (the open may still be in
// flight); tombstoned ids drop silently — late frames after eviction are
// expected, not errors.
func (sh *shard) deliver(from sim.PartyID, sid uint64, body []byte) {
	sh.mu.Lock()
	eng := sh.engines[sid]
	if eng == nil {
		if _, dead := sh.tombstone[sid]; !dead {
			sh.bufferPendingLocked(sid, rawEvent{from: from, body: body})
		}
		sh.mu.Unlock()
		return
	}
	eng.in = append(eng.in, rawEvent{from: from, body: body})
	sh.enqueueDirtyLocked(eng)
	sh.mu.Unlock()
}

func (sh *shard) bufferPendingLocked(sid uint64, ev rawEvent) {
	pb := sh.pending[sid]
	if pb == nil {
		if sh.pendingN >= sh.pendingTotal() {
			return // shard-wide pressure: drop, the open will time the session out
		}
		pb = &pendingBuf{since: time.Now()}
		sh.pending[sid] = pb
	}
	if len(pb.evs) >= sh.pendingPerSession() {
		// A session this chatty before its open is broken; drop it wholesale.
		sh.pendingN -= len(pb.evs)
		delete(sh.pending, sid)
		sh.tombstone[sid] = time.Now()
		return
	}
	pb.evs = append(pb.evs, ev)
	sh.pendingN++
}

func (sh *shard) enqueueDirtyLocked(eng *engine) {
	if eng.queued || eng.gone {
		return
	}
	eng.queued = true
	sh.dirty = append(sh.dirty, eng)
	select {
	case sh.kick <- struct{}{}:
	default:
	}
}

// register adds an admitted session's engine and queues it for its first
// step, absorbing any frames that outran the admission in arrival order. A
// session that went terminal before registration (eviction or a peer's
// rejection racing the admit) is buried instead.
func (sh *shard) register(eng *engine) {
	sh.mu.Lock()
	if eng.s.terminal.Load() {
		eng.gone = true
		sh.buryLocked(eng.s.sid)
		sh.mu.Unlock()
		return
	}
	sh.engines[eng.s.sid] = eng
	if pb := sh.pending[eng.s.sid]; pb != nil {
		delete(sh.pending, eng.s.sid)
		sh.pendingN -= len(pb.evs)
		eng.in = append(eng.in, pb.evs...)
	}
	sh.enqueueDirtyLocked(eng)
	sh.mu.Unlock()
}

// wake queues the engine for a prompt run — the terminal transition calls
// this so an externally failed or evicted engine retires without waiting
// for the sweep.
func (sh *shard) wake(eng *engine) {
	sh.mu.Lock()
	sh.enqueueDirtyLocked(eng)
	sh.mu.Unlock()
}

// bury tombstones a session id so late frames drop instead of buffering.
func (sh *shard) bury(sid uint64) {
	sh.mu.Lock()
	sh.buryLocked(sid)
	sh.mu.Unlock()
}

func (sh *shard) buryLocked(sid uint64) {
	sh.tombstone[sid] = time.Now()
	if pb := sh.pending[sid]; pb != nil {
		sh.pendingN -= len(pb.evs)
		delete(sh.pending, sid)
	}
}

// dead reports whether sid was recently buried (the recently-used check for
// client-chosen session ids).
func (sh *shard) dead(sid uint64) bool {
	sh.mu.Lock()
	_, ok := sh.tombstone[sid]
	sh.mu.Unlock()
	return ok
}

// remove retires an engine: out of the run queue's reach, id tombstoned.
func (sh *shard) remove(eng *engine) {
	sh.mu.Lock()
	eng.gone = true
	delete(sh.engines, eng.s.sid)
	sh.tombstone[eng.s.sid] = time.Now()
	sh.mu.Unlock()
}

// worker is the shard's loop: drain the run queue on every kick, and sweep
// (barrier timeouts, pending and tombstone GC) on a coarse tick.
func (sh *shard) worker(sweepEvery time.Duration) {
	defer close(sh.done)
	ticker := time.NewTicker(sweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-sh.quit:
			return
		case <-sh.kick:
			sh.drain()
		case <-ticker.C:
			sh.drain()
			sh.sweep(time.Now())
		}
	}
}

// drain runs every dirty engine until the queue stays empty. The swap keeps
// shard.mu out of the stepping path, and the spare list makes the steady
// state allocation-free.
func (sh *shard) drain() {
	for {
		sh.mu.Lock()
		if len(sh.dirty) == 0 {
			sh.mu.Unlock()
			return
		}
		batch := sh.dirty
		sh.dirty = sh.dirtySpare[:0]
		sh.mu.Unlock()
		for i, eng := range batch {
			sh.run(eng)
			batch[i] = nil
		}
		sh.dirtySpare = batch[:0]
	}
}

// run gives one engine its turn: swap its queue out under the lock, step it
// unlocked, retire it if the seat finished. The in/inSpare double buffer
// mirrors the mux outbox — no per-turn allocation.
func (sh *shard) run(eng *engine) {
	sh.mu.Lock()
	if eng.gone {
		sh.mu.Unlock()
		return
	}
	evs := eng.in
	eng.in = eng.inSpare
	eng.inSpare = evs[:0]
	eng.queued = false
	sh.mu.Unlock()

	alive := eng.run(evs)
	for i := range evs {
		evs[i] = rawEvent{} // release the frame bytes for GC
	}
	if !alive {
		sh.remove(eng)
	}
}

// sweep enforces barrier deadlines and collects stale pending buffers and
// old tombstones. Engine round state is worker-owned, and sweep runs on the
// worker, so the deadline reads need no lock.
func (sh *shard) sweep(now time.Time) {
	var victims []*engine
	sh.mu.Lock()
	for _, eng := range sh.engines {
		if eng.s.terminal.Load() || (eng.round > 0 && now.After(eng.barrierDeadline)) {
			victims = append(victims, eng)
		}
	}
	for sid, pb := range sh.pending {
		if now.Sub(pb.since) > sh.m.d.opts.SetupTimeout {
			sh.pendingN -= len(pb.evs)
			delete(sh.pending, sid)
			sh.tombstone[sid] = now
		}
	}
	linger := 2 * sh.m.d.opts.DefaultTTL
	for sid, t := range sh.tombstone {
		if now.Sub(t) > linger {
			delete(sh.tombstone, sid)
		}
	}
	sh.mu.Unlock()
	for _, eng := range victims {
		if !eng.s.terminal.Load() {
			reason := fmt.Sprintf("daemon %d: round %d barrier timed out after %v",
				sh.m.d.id, eng.round, sh.m.d.opts.RoundTimeout)
			if sh.m.d.opts.Async {
				reason = fmt.Sprintf("daemon %d: async seat idle for %v while undecided (wedged run)",
					sh.m.d.id, sh.m.d.opts.RoundTimeout)
			}
			sh.m.fail(eng.s, StateFailed, reason, true)
		}
		sh.remove(eng)
	}
}

func (sh *shard) stop() {
	close(sh.quit)
	<-sh.done
}
