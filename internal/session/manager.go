package session

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"strings"

	"treeaa/internal/cli"
	"treeaa/internal/journal"
	"treeaa/internal/metrics"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
	"treeaa/internal/wire"
)

// session is one tracked session on this daemon. Mutable fields are guarded
// by Manager.mu; terminal is the lock-free mirror of state.Terminal() the
// shard workers poll, set exactly once at the terminal transition.
type session struct {
	sid    uint64
	origin sim.PartyID // daemon the session was submitted to
	ps     parsedSpec
	eng    *engine // this daemon's seat; owned by shardOf(sid)

	state    State
	reason   string
	admitted time.Time
	deadline time.Time
	terminal atomic.Bool

	// Origin-side assembly state.
	decides map[sim.PartyID]wire.SessionDecide
	result  *sim.Result
	latency time.Duration
	waiters []chan Outcome

	// Durability state (journaled daemons only).
	sealed  bool            // a terminal seal record has been appended
	durable <-chan struct{} // closed once the seal is fsynced; nil = no gating
}

// Manager owns a daemon's session table: admission control, lifecycle
// transitions, deadline eviction, and origin-side Result assembly. The
// per-frame data plane does not come through here — link readers hand raw
// frames straight to the owning shard (handleRaw), so Manager.mu is a
// control-plane lock, taken per session transition, not per frame.
type Manager struct {
	d      *Daemon
	shards []*shard

	mu       sync.Mutex
	table    map[uint64]*session
	expiry   deadlineHeap // live sessions ordered by deadline
	reap     deadlineHeap // terminal sessions ordered by linger end
	inflight int          // non-terminal sessions, the admission-control quantity
	nextSeq  uint64
	draining bool // drain window: local submits refused, peer opens still admitted
	stopped  bool // drain complete: the mux is about to die, refuse everything
	// degraded tracks currently-down peer links. Admissions are refused while
	// any link is down; the mux's redial loop clears entries as links return,
	// so a peer restart degrades the daemon instead of poisoning it forever.
	degraded map[sim.PartyID]error

	// Durability plumbing. jw is nil on journal-less daemons. replaying is
	// true only during journal replay, before the mux exists: journal writes
	// are suppressed (replay must not re-journal itself) and restored engines
	// collect in restored until registerRestored runs them.
	jw        *journal.Writer
	replaying bool
	restored  []*engine

	evictQuit chan struct{}
	evictDone chan struct{}
}

func newManager(d *Daemon) *Manager {
	m := &Manager{
		d:         d,
		table:     make(map[uint64]*session),
		nextSeq:   1,
		degraded:  make(map[sim.PartyID]error),
		evictQuit: make(chan struct{}),
		evictDone: make(chan struct{}),
	}
	// The sweep only enforces coarse timeouts (barrier deadlines, pending
	// GC); keep it well under the round timeout without burning cycles.
	sweep := d.opts.RoundTimeout / 8
	if sweep > 50*time.Millisecond {
		sweep = 50 * time.Millisecond
	}
	if sweep < 5*time.Millisecond {
		sweep = 5 * time.Millisecond
	}
	m.shards = make([]*shard, d.opts.Shards)
	for i := range m.shards {
		m.shards[i] = newShard(m)
		go m.shards[i].worker(sweep)
	}
	return m
}

func (m *Manager) shardOf(sid uint64) *shard {
	return m.shards[sid%uint64(len(m.shards))]
}

// Submit admits a locally submitted session and starts its seat. sid 0
// means auto-assign; a client-chosen sid must be cluster-unique (the
// duplicate check is local to this origin plus remote via peer rejections).
func (m *Manager) Submit(spec Spec, sid uint64) (uint64, error) {
	ps, err := parseSpec(spec, m.d.n, m.d.opts.DefaultTTL)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	m.stats().Submitted.Add(1)
	if err := m.degradedLocked(); err != nil {
		m.mu.Unlock()
		return 0, err
	}
	if m.draining {
		m.mu.Unlock()
		return 0, fmt.Errorf("session: daemon %d is draining", m.d.id)
	}
	if sid == 0 {
		for {
			sid = (uint64(m.d.id)+1)<<48 | m.nextSeq
			m.nextSeq++
			if _, taken := m.table[sid]; !taken {
				break
			}
		}
	} else if _, dup := m.table[sid]; dup {
		m.stats().RejectedDuplicate.Add(1)
		m.mu.Unlock()
		return 0, fmt.Errorf("session: duplicate session id %#x", sid)
	} else if m.shardOf(sid).dead(sid) {
		m.stats().RejectedDuplicate.Add(1)
		m.mu.Unlock()
		return 0, fmt.Errorf("session: session id %#x was recently used", sid)
	}
	s, err := m.admitLocked(sid, m.d.id, ps)
	if err != nil {
		m.mu.Unlock()
		return 0, err
	}
	m.mu.Unlock()

	// Graph-space sessions announce over their own wire payload; the graph
	// spec travels without the "graph:" routing prefix (the tag is the
	// routing) and is re-prefixed on receipt.
	var openPayload any = wire.SessionOpen{
		SID: sid, Tree: spec.Tree, Seed: spec.Seed, T: spec.T, Inputs: spec.Inputs,
		TTLMillis: uint64(ps.deadline / time.Millisecond),
	}
	if ps.space.IsGraph() {
		openPayload = wire.SessionOpenGraph{
			SID: sid, Graph: strings.TrimPrefix(spec.Tree, cli.GraphPrefix),
			Seed: spec.Seed, T: spec.T, Inputs: spec.Inputs,
			TTLMillis: uint64(ps.deadline / time.Millisecond),
		}
	}
	open, ferr := sessionFrame(openPayload)
	if ferr != nil {
		m.fail(s, StateFailed, fmt.Sprintf("encoding open: %v", ferr), false)
		return 0, ferr
	}
	// The open precedes every round-1 frame on each link FIFO, because the
	// engine starts only after the broadcast is queued.
	m.d.mux.broadcast(open)
	s.eng.sh.register(s.eng)
	return sid, nil
}

// admitLocked performs the capacity check and registers the session. The
// engine is created here (so terminalLocked can always wake it) but joins
// its shard only after the caller releases Manager.mu.
func (m *Manager) admitLocked(sid uint64, origin sim.PartyID, ps parsedSpec) (*session, error) {
	if m.inflight >= m.d.opts.MaxSessions {
		m.stats().RejectedCapacity.Add(1)
		return nil, fmt.Errorf("session: daemon %d at capacity (%d in flight)", m.d.id, m.inflight)
	}
	if m.d.opts.Async && ps.space.IsGraph() {
		return nil, fmt.Errorf("session: async mode does not support graph spaces")
	}
	now := time.Now()
	s := &session{
		sid:      sid,
		origin:   origin,
		ps:       ps,
		state:    StatePending,
		admitted: now,
		deadline: now.Add(ps.deadline),
		decides:  make(map[sim.PartyID]wire.SessionDecide, m.d.n),
	}
	s.eng = newEngine(m, m.shardOf(sid), s)
	m.table[sid] = s
	heap.Push(&m.expiry, deadlineEntry{at: s.deadline.UnixNano(), sid: sid})
	m.inflight++
	m.stats().Admitted.Add(1)
	// Write-ahead: the admission hits the journal before any frame of this
	// session can (the open broadcast happens after this returns), so replay
	// always sees the open first. The absolute deadline is journaled so a
	// restart does not restart the TTL clock.
	if m.jw != nil && !m.replaying {
		m.jw.Append(wire.JournalOpen{
			SID: sid, Origin: origin, Tree: ps.spec.Tree, Seed: ps.spec.Seed,
			T: ps.spec.T, Inputs: ps.spec.Inputs,
			TTLMillis:        uint64(ps.deadline / time.Millisecond),
			DeadlineUnixNano: s.deadline.UnixNano(),
		})
	}
	m.logSession(s, "session admitted")
	return s, nil
}

// logSession emits one structured per-session log line, if configured.
func (m *Manager) logSession(s *session, msg string) {
	if lg := m.d.opts.SessionLog; lg != nil {
		lg.Info(msg, "daemon", int(m.d.id), "sid", fmt.Sprintf("%#x", s.sid),
			"origin", int(s.origin), "state", s.state.String(), "reason", s.reason)
	}
}

// handleRaw is the mux handler: every inbound wire body, still encoded,
// attributed to its authenticated peer. Data-plane frames (SessionMsg,
// SessionEOR) route zero-copy to the owning shard on the session id peeked
// from the header — no decode, no global lock, no re-buffering on the link
// reader. Control frames are rare; they decode here and take Manager.mu. A
// non-nil error fails the link (the mesh is trusted; garbage is fatal).
func (m *Manager) handleRaw(from sim.PartyID, body []byte) error {
	typ, sid, err := wire.PeekSession(body)
	if err != nil {
		return err
	}
	switch typ {
	case wire.TypeSessionMsg, wire.TypeSessionEOR:
		m.journalFrame(from, body)
		m.shardOf(sid).deliver(from, sid, body)
		return nil
	}
	payload, err := wire.Decode(body)
	if err != nil {
		return err
	}
	switch p := payload.(type) {
	case wire.SessionOpen:
		// Not journaled as a frame: admission writes a JournalOpen carrying
		// the resolved absolute deadline, which replay re-admits from.
		m.openRemote(from, p)
	case wire.SessionOpenGraph:
		// Re-prefix the graph spec into the canonical Spec form and reuse
		// the tree open path — journaling, replay, and the engine all key
		// off the prefixed spec string.
		m.openRemote(from, wire.SessionOpen{SID: p.SID, Tree: cli.GraphPrefix + p.Graph,
			Seed: p.Seed, T: p.T, Inputs: p.Inputs, TTLMillis: p.TTLMillis})
	case wire.SessionAbort:
		m.journalFrame(from, body)
		m.handleAbort(p)
	case wire.SessionDecide:
		m.journalFrame(from, body)
		m.handleDecide(from, p)
	}
	return nil
}

// journalFrame write-ahead-logs one inbound session-plane frame so replay
// can re-step the engines from the exact inputs they saw. Runs on the link
// reader goroutines; the journal serializes internally.
func (m *Manager) journalFrame(from sim.PartyID, body []byte) {
	if m.jw == nil || m.replaying || m.d.opts.JournalLevel == JournalSealed {
		return
	}
	m.jw.Append(wire.JournalFrame{From: from, Body: body})
}

// openRemote admits (or rejects) a session announced by a peer daemon. A
// rejection is answered with a SessionAbort to the origin, which fails the
// session cluster-wide; this daemon only tombstones the id.
func (m *Manager) openRemote(from sim.PartyID, open wire.SessionOpen) {
	spec := Spec{Tree: open.Tree, Seed: open.Seed, T: open.T, Inputs: open.Inputs,
		TTL: time.Duration(open.TTLMillis) * time.Millisecond}
	ps, perr := parseSpec(spec, m.d.n, m.d.opts.DefaultTTL)

	m.mu.Lock()
	m.stats().Submitted.Add(1)
	reject := func(reason string) {
		m.mu.Unlock()
		m.shardOf(open.SID).bury(open.SID)
		m.abortTo(from, open.SID, reason)
	}
	if _, dup := m.table[open.SID]; dup {
		m.stats().RejectedDuplicate.Add(1)
		reject(fmt.Sprintf("daemon %d: duplicate session id", m.d.id))
		return
	}
	if perr != nil {
		reject(fmt.Sprintf("daemon %d: %v", m.d.id, perr))
		return
	}
	// A peer open is a session already admitted at its origin, so the drain
	// window does not reject it — the drain's whole point is letting the
	// cluster's in-flight sessions finish, and its poll loop waits for
	// sessions admitted here. Once the drain has completed the mux is about
	// to die, so admitting would strand a seat whose frames go nowhere.
	if m.stopped || len(m.degraded) > 0 {
		reject(fmt.Sprintf("daemon %d: not accepting sessions", m.d.id))
		return
	}
	s, err := m.admitLocked(open.SID, from, ps)
	if err != nil {
		reject(err.Error())
		return
	}
	m.mu.Unlock()
	s.eng.sh.register(s.eng)
}

// handleAbort applies a terminal failure broadcast. The origin re-broadcasts
// on its own transition, so a rejection sent only origin-wards still reaches
// every peer; transitions are once-only, which bounds the gossip.
func (m *Manager) handleAbort(ab wire.SessionAbort) {
	m.mu.Lock()
	s := m.table[ab.SID]
	if s == nil {
		m.mu.Unlock()
		m.shardOf(ab.SID).bury(ab.SID)
		return
	}
	if s.state.Terminal() {
		m.mu.Unlock()
		return
	}
	rebroadcast := s.origin == m.d.id
	m.terminalLocked(s, StateFailed, ab.Reason)
	m.mu.Unlock()
	if rebroadcast {
		m.broadcastAbort(s.sid, ab.Reason)
	}
}

// handleDecide records one seat's terminal report; the origin assembles the
// Result once all n records (its own included) are in.
func (m *Manager) handleDecide(from sim.PartyID, dec wire.SessionDecide) {
	m.mu.Lock()
	s := m.table[dec.SID]
	if s == nil || s.state.Terminal() || s.origin != m.d.id {
		m.mu.Unlock()
		return
	}
	if from != m.d.id && dec.Party != from {
		m.terminalLocked(s, StateFailed,
			fmt.Sprintf("daemon %d reported a decide for party %d", from, dec.Party))
		m.mu.Unlock()
		m.broadcastAbort(s.sid, s.reason)
		return
	}
	if _, dup := s.decides[dec.Party]; dup {
		m.terminalLocked(s, StateFailed, fmt.Sprintf("duplicate decide from party %d", dec.Party))
		m.mu.Unlock()
		m.broadcastAbort(s.sid, s.reason)
		return
	}
	s.decides[dec.Party] = dec
	if len(s.decides) == m.d.n {
		m.assembleLocked(s)
	}
	m.mu.Unlock()
}

// assembleLocked builds the sim.Run-identical Result from the n seat
// records: outputs per party, the common termination round, and the
// cluster-wide message and byte totals (each seat counted its own sends,
// self-delivery included, exactly like the engine).
func (m *Manager) assembleLocked(s *session) {
	res := &sim.Result{
		Outputs:   make(map[sim.PartyID]any, m.d.n),
		Corrupted: make(map[sim.PartyID]bool),
	}
	term := -1
	for p, dec := range s.decides {
		if term == -1 {
			term = dec.TermRound
		} else if dec.TermRound != term {
			m.terminalLocked(s, StateFailed,
				fmt.Sprintf("termination rounds diverge: party %d at %d, others at %d", p, dec.TermRound, term))
			return
		}
		res.Outputs[p] = dec.V
		res.Messages += dec.Msgs
		res.Bytes += dec.Bytes
	}
	res.Rounds = term
	s.result = res
	m.terminalLocked(s, StateDecided, "")
}

// terminalLocked performs the one-and-only terminal transition: state,
// accounting, waiter notification, and the engine wake-up that retires a
// seat whose session ended externally (eviction, abort, link down).
func (m *Manager) terminalLocked(s *session, st State, reason string) {
	if s.state.Terminal() {
		return
	}
	s.state = st
	s.reason = reason
	s.latency = time.Since(s.admitted)
	m.inflight--
	s.terminal.Store(true)
	heap.Push(&m.reap, deadlineEntry{
		at: s.deadline.Add(m.d.opts.DefaultTTL).UnixNano(), sid: s.sid})
	if s.eng != nil {
		s.eng.sh.wake(s.eng)
	}
	switch st {
	case StateDecided:
		m.stats().Decided.Add(1)
	case StateExpired:
		m.stats().Expired.Add(1)
		m.stats().Failed.Add(1)
	default:
		m.stats().Failed.Add(1)
	}
	m.stats().AddSessionLatency(s.latency)
	m.sealLocked(s)
	m.logSession(s, "session terminal")
	out := m.outcomeLocked(s)
	waiters := s.waiters
	s.waiters = nil
	deliverOutcome(s.durable, waiters, out)
}

// sealLocked journals the terminal transition. Origin-side decided seals
// commit — waiters are released only once the seal is fsynced, making "the
// client saw decided" a durable fact — while non-origin seals, failures
// and expiries append without a ticket (no client ack is gated on them;
// after a crash they are re-derived by replay or re-derived as failures).
func (m *Manager) sealLocked(s *session) {
	if m.jw == nil || m.replaying || s.sealed {
		return
	}
	s.sealed = true
	seal := wire.JournalSeal{SID: s.sid, State: byte(s.state), Reason: s.reason,
		LatencyNS: s.latency.Nanoseconds()}
	if r := s.result; r != nil {
		seal.HasResult = true
		seal.Rounds, seal.Msgs, seal.Bytes = r.Rounds, r.Messages, r.Bytes
		for p, v := range r.Outputs {
			if vid, ok := v.(tree.VertexID); ok {
				seal.Outputs = append(seal.Outputs, wire.OutputPair{Party: p, V: vid})
			}
		}
		sort.Slice(seal.Outputs, func(i, j int) bool {
			return seal.Outputs[i].Party < seal.Outputs[j].Party
		})
	}
	if s.state == StateDecided && s.origin == m.d.id {
		// Only the origin acks the client, so only the origin needs the
		// fsync barrier. Non-origin seals ride the next group commit.
		if ticket, err := m.jw.Commit(seal); err == nil {
			s.durable = ticket
		}
	} else {
		m.jw.Append(seal)
	}
}

// deliverOutcome sends the outcome to each waiter (channels are buffered,
// sends never block), gated on seal durability when a ticket exists.
func deliverOutcome(durable <-chan struct{}, waiters []chan Outcome, out Outcome) {
	if len(waiters) == 0 {
		return
	}
	if durable == nil {
		for _, w := range waiters {
			w <- out
		}
		return
	}
	go func() {
		<-durable
		for _, w := range waiters {
			w <- out
		}
	}()
}

func (m *Manager) outcomeLocked(s *session) Outcome {
	return Outcome{SID: s.sid, State: s.state, Err: s.reason,
		Result: s.result, Latency: s.latency}
}

// fail transitions a session to a terminal failure state and, when asked,
// broadcasts the abort so the whole cluster converges.
func (m *Manager) fail(s *session, st State, reason string, broadcast bool) {
	m.mu.Lock()
	already := s.state.Terminal()
	if !already {
		m.terminalLocked(s, st, reason)
	}
	m.mu.Unlock()
	if !already && broadcast {
		m.broadcastAbort(s.sid, reason)
	}
}

func (m *Manager) broadcastAbort(sid uint64, reason string) {
	// No mux during journal replay: the cluster already heard these aborts in
	// the previous incarnation, or will fail the sessions by its own timeouts.
	if m.d.mux == nil {
		return
	}
	if frame, err := sessionFrame(wire.SessionAbort{SID: sid, Reason: reason}); err == nil {
		m.d.mux.broadcast(frame)
	}
}

func (m *Manager) abortTo(peer sim.PartyID, sid uint64, reason string) {
	if m.d.mux == nil {
		return
	}
	if frame, err := sessionFrame(wire.SessionAbort{SID: sid, Reason: reason}); err == nil {
		m.d.mux.enqueue(peer, frame)
	}
}

// Status returns a session's current view; ok is false for unknown ids.
func (m *Manager) Status(sid uint64) (Outcome, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.table[sid]
	if s == nil {
		return Outcome{}, false
	}
	return m.outcomeLocked(s), true
}

// Wait returns a channel that delivers the session's Outcome at its
// terminal transition (immediately, for an already-terminal session).
func (m *Manager) Wait(sid uint64) (<-chan Outcome, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.table[sid]
	if s == nil {
		return nil, fmt.Errorf("session: unknown session id %#x", sid)
	}
	ch := make(chan Outcome, 1)
	if s.state.Terminal() {
		// Same durability gate as the terminal transition: a decided outcome
		// is observable only after its seal is on stable storage.
		deliverOutcome(s.durable, []chan Outcome{ch}, m.outcomeLocked(s))
	} else {
		s.waiters = append(s.waiters, ch)
	}
	return ch, nil
}

// linkDown degrades the manager after a peer link died: every in-flight
// session spans all daemons, so all of them fail, and admissions are
// refused until the mux's redial loop restores the link (linkUp). During a
// drain the failure sweep is skipped: peers that finished draining hang up
// as soon as their final flush lands, and the decides that complete our
// sessions may already be buffered on other links — a session that really
// lost its decides still expires at the drain deadline instead.
func (m *Manager) linkDown(peer sim.PartyID, err error) {
	m.mu.Lock()
	m.degraded[peer] = err
	var victims []*session
	if !m.draining {
		for _, s := range m.table {
			if !s.state.Terminal() {
				victims = append(victims, s)
			}
		}
	}
	for _, s := range victims {
		m.terminalLocked(s, StateFailed, fmt.Sprintf("peer link down: %v", err))
	}
	m.mu.Unlock()
}

// linkUp clears a peer's degraded entry once its link is (re)established.
func (m *Manager) linkUp(peer sim.PartyID) {
	m.mu.Lock()
	delete(m.degraded, peer)
	m.mu.Unlock()
}

// degradedLocked returns the admission-refusal error while any link is down.
func (m *Manager) degradedLocked() error {
	for p, err := range m.degraded {
		return fmt.Errorf("session: cluster degraded (link to daemon %d down, retry shortly): %w", p, err)
	}
	return nil
}

// Health reports daemon readiness: nil once replay is complete, every peer
// link is up, and the daemon is accepting work. The obs /healthz endpoint
// surfaces the error text.
func (m *Manager) Health() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.replaying {
		return errors.New("replaying journal")
	}
	if err := m.degradedLocked(); err != nil {
		return err
	}
	if m.stopped {
		return errors.New("stopped")
	}
	if m.draining {
		return errors.New("draining")
	}
	return nil
}

// deadlineEntry schedules one session for an eviction action at a fixed
// time. Entries are never removed early: a popped entry whose session is
// gone or already in the target state is simply skipped, so each session
// costs exactly one expiry and one reap entry over its lifetime.
type deadlineEntry struct {
	at  int64 // unix nanoseconds
	sid uint64
}

type deadlineHeap []deadlineEntry

func (h deadlineHeap) Len() int           { return len(h) }
func (h deadlineHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h deadlineHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *deadlineHeap) Push(x any)        { *h = append(*h, x.(deadlineEntry)) }
func (h *deadlineHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// evictLoop enforces deadlines: non-terminal sessions past their deadline
// are expired (and the abort broadcast, so every seat stops paying for
// them); terminal sessions linger for status queries until the same
// deadline plus a grace period, then leave a tombstone on their shard.
// Both actions pop deadline-ordered heaps, so a tick costs the sessions
// actually due, not a scan of the whole table (which holds every lingering
// terminal session and grew with throughput).
func (m *Manager) evictLoop() {
	defer close(m.evictDone)
	const tick = 10 * time.Millisecond
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-m.evictQuit:
			return
		case <-ticker.C:
		}
		m.evictTick(time.Now())
	}
}

func (m *Manager) evictTick(now time.Time) {
	type abort struct {
		sid    uint64
		reason string
	}
	var aborts []abort
	var buried []uint64
	nowNS := now.UnixNano()
	m.mu.Lock()
	for len(m.expiry) > 0 && m.expiry[0].at <= nowNS {
		e := heap.Pop(&m.expiry).(deadlineEntry)
		s := m.table[e.sid]
		if s == nil || s.state.Terminal() {
			continue // already ended; its reap entry handles the rest
		}
		m.terminalLocked(s, StateExpired, "deadline exceeded")
		aborts = append(aborts, abort{sid: e.sid, reason: "deadline exceeded"})
	}
	for len(m.reap) > 0 && m.reap[0].at <= nowNS {
		e := heap.Pop(&m.reap).(deadlineEntry)
		if _, ok := m.table[e.sid]; ok {
			delete(m.table, e.sid)
			buried = append(buried, e.sid)
		}
	}
	m.mu.Unlock()
	for _, sid := range buried {
		m.shardOf(sid).bury(sid)
	}
	for _, a := range aborts {
		m.broadcastAbort(a.sid, a.reason)
	}
}

// drain stops admissions and waits (up to timeout) for in-flight sessions
// to reach a terminal state; leftovers are expired. Part of the daemon's
// graceful shutdown.
func (m *Manager) drain(timeout time.Duration) {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	// Grace beat: opens for sessions already admitted at their origin may
	// still be in flight, and admitting one after the mux died would strand
	// its seat. One short wait lets them surface; the poll below then keeps
	// the daemon up until they finish.
	grace := 25 * time.Millisecond
	if grace > timeout/4 {
		grace = timeout / 4
	}
	time.Sleep(grace)
	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		left := m.inflight
		if left == 0 {
			m.stopped = true
			m.mu.Unlock()
			return
		}
		m.mu.Unlock()
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.mu.Lock()
	m.stopped = true
	var leftovers []*session
	for _, s := range m.table {
		if !s.state.Terminal() {
			leftovers = append(leftovers, s)
		}
	}
	for _, s := range leftovers {
		m.terminalLocked(s, StateExpired, "daemon shutting down")
	}
	m.mu.Unlock()
}

func (m *Manager) stop() {
	close(m.evictQuit)
	<-m.evictDone
	for _, sh := range m.shards {
		sh.stop()
	}
}

func (m *Manager) stats() *metrics.ServeStats { return m.d.opts.Stats }
