package session

import (
	"fmt"
	"sync"
	"time"

	"treeaa/internal/metrics"
	"treeaa/internal/sim"
	"treeaa/internal/wire"
)

// muxEvent is one inbound in-session frame (SessionMsg or SessionEOR),
// attributed to its authenticated peer, queued for that session's engine.
type muxEvent struct {
	from    sim.PartyID
	payload any
}

// session is one tracked session on this daemon. Mutable fields are guarded
// by Manager.mu; inq and cancel are safe to use outside it (cancel is
// closed exactly once, under the lock, at the terminal transition).
type session struct {
	sid    uint64
	origin sim.PartyID // daemon the session was submitted to
	ps     parsedSpec

	state    State
	reason   string
	admitted time.Time
	deadline time.Time

	// inq feeds the engine's barrier loop. Bounded: a session whose engine
	// falls behind blocks the link reader delivering to it — backpressure
	// lands on the peers' flushers for this daemon, not on memory.
	inq    chan muxEvent
	cancel chan struct{}

	// Origin-side assembly state.
	decides map[sim.PartyID]wire.SessionDecide
	result  *sim.Result
	latency time.Duration
	waiters []chan Outcome
}

// Manager owns a daemon's session table: admission control, lifecycle
// transitions, frame routing, deadline eviction, and origin-side Result
// assembly.
type Manager struct {
	d *Daemon

	mu       sync.Mutex
	table    map[uint64]*session
	inflight int // non-terminal sessions, the admission-control quantity
	nextSeq  uint64
	draining bool
	downErr  error // first dead peer link; poisons all future admissions

	// pending buffers in-session frames that outran their SessionOpen (the
	// open travels origin→peer while round-1 data arrives over every link).
	// Bounded per session and overall; overflow drops the session id.
	pending  map[uint64]*pendingBuf
	pendingN int

	// tombstones remember recently rejected / evicted / garbage-collected
	// ids so their late frames are dropped instead of buffered.
	tombstone map[uint64]time.Time

	evictQuit chan struct{}
	evictDone chan struct{}
}

type pendingBuf struct {
	since time.Time
	evs   []muxEvent
}

func newManager(d *Daemon) *Manager {
	return &Manager{
		d:         d,
		table:     make(map[uint64]*session),
		pending:   make(map[uint64]*pendingBuf),
		tombstone: make(map[uint64]time.Time),
		nextSeq:   1,
		evictQuit: make(chan struct{}),
		evictDone: make(chan struct{}),
	}
}

// pendingPerSession bounds the frames buffered for one not-yet-opened
// session: at most one round of traffic can precede the open on any link,
// so a deep buffer only ever holds garbage.
func (m *Manager) pendingPerSession() int { return m.d.opts.QueueDepth / 4 }

func (m *Manager) pendingTotal() int { return 16 * m.d.opts.QueueDepth }

// Submit admits a locally submitted session and starts its seat. sid 0
// means auto-assign; a client-chosen sid must be cluster-unique (the
// duplicate check is local to this origin plus remote via peer rejections).
func (m *Manager) Submit(spec Spec, sid uint64) (uint64, error) {
	ps, err := parseSpec(spec, m.d.n, m.d.opts.DefaultTTL)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	m.stats().Submitted.Add(1)
	if m.downErr != nil {
		err := m.downErr
		m.mu.Unlock()
		return 0, fmt.Errorf("session: cluster degraded: %w", err)
	}
	if m.draining {
		m.mu.Unlock()
		return 0, fmt.Errorf("session: daemon %d is draining", m.d.id)
	}
	if sid == 0 {
		for {
			sid = (uint64(m.d.id)+1)<<48 | m.nextSeq
			m.nextSeq++
			if _, taken := m.table[sid]; !taken {
				break
			}
		}
	} else if _, dup := m.table[sid]; dup {
		m.stats().RejectedDuplicate.Add(1)
		m.mu.Unlock()
		return 0, fmt.Errorf("session: duplicate session id %#x", sid)
	} else if _, dead := m.tombstone[sid]; dead {
		m.stats().RejectedDuplicate.Add(1)
		m.mu.Unlock()
		return 0, fmt.Errorf("session: session id %#x was recently used", sid)
	}
	s, err := m.admitLocked(sid, m.d.id, ps)
	if err != nil {
		m.mu.Unlock()
		return 0, err
	}
	m.mu.Unlock()

	open, ferr := sessionFrame(wire.SessionOpen{
		SID: sid, Tree: spec.Tree, Seed: spec.Seed, T: spec.T, Inputs: spec.Inputs,
		TTLMillis: uint64(ps.deadline / time.Millisecond),
	})
	if ferr != nil {
		m.fail(s, StateFailed, fmt.Sprintf("encoding open: %v", ferr), false)
		return 0, ferr
	}
	// The open precedes every round-1 frame on each link FIFO, because the
	// engine starts only after the broadcast is queued.
	m.d.mux.broadcast(open)
	go m.runEngine(s)
	return sid, nil
}

// admitLocked performs the capacity check and registers the session.
func (m *Manager) admitLocked(sid uint64, origin sim.PartyID, ps parsedSpec) (*session, error) {
	if m.inflight >= m.d.opts.MaxSessions {
		m.stats().RejectedCapacity.Add(1)
		return nil, fmt.Errorf("session: daemon %d at capacity (%d in flight)", m.d.id, m.inflight)
	}
	now := time.Now()
	s := &session{
		sid:      sid,
		origin:   origin,
		ps:       ps,
		state:    StatePending,
		admitted: now,
		deadline: now.Add(ps.deadline),
		inq:      make(chan muxEvent, m.d.opts.QueueDepth),
		cancel:   make(chan struct{}),
		decides:  make(map[sim.PartyID]wire.SessionDecide, m.d.n),
	}
	// Frames that arrived before the open replay into the fresh queue; the
	// per-session pending cap is far below the queue depth, so this never
	// blocks under the lock.
	if pb := m.pending[sid]; pb != nil {
		delete(m.pending, sid)
		m.pendingN -= len(pb.evs)
		for _, ev := range pb.evs {
			s.inq <- ev
		}
	}
	m.table[sid] = s
	m.inflight++
	m.stats().Admitted.Add(1)
	return s, nil
}

// dispatch is the mux handler: it routes every decoded inbound payload. It
// runs on link reader goroutines.
func (m *Manager) dispatch(from sim.PartyID, payload any) {
	switch p := payload.(type) {
	case wire.SessionOpen:
		m.openRemote(from, p)
	case wire.SessionMsg:
		m.route(from, p.SID, muxEvent{from: from, payload: p})
	case wire.SessionEOR:
		m.route(from, p.SID, muxEvent{from: from, payload: p})
	case wire.SessionAbort:
		m.handleAbort(p)
	case wire.SessionDecide:
		m.handleDecide(from, p)
	}
}

// openRemote admits (or rejects) a session announced by a peer daemon. A
// rejection is answered with a SessionAbort to the origin, which fails the
// session cluster-wide; this daemon only tombstones the id.
func (m *Manager) openRemote(from sim.PartyID, open wire.SessionOpen) {
	spec := Spec{Tree: open.Tree, Seed: open.Seed, T: open.T, Inputs: open.Inputs,
		TTL: time.Duration(open.TTLMillis) * time.Millisecond}
	ps, perr := parseSpec(spec, m.d.n, m.d.opts.DefaultTTL)

	m.mu.Lock()
	m.stats().Submitted.Add(1)
	reject := func(reason string) {
		m.tombstone[open.SID] = time.Now()
		if pb := m.pending[open.SID]; pb != nil {
			m.pendingN -= len(pb.evs)
			delete(m.pending, open.SID)
		}
		m.mu.Unlock()
		m.abortTo(from, open.SID, reason)
	}
	if _, dup := m.table[open.SID]; dup {
		m.stats().RejectedDuplicate.Add(1)
		reject(fmt.Sprintf("daemon %d: duplicate session id", m.d.id))
		return
	}
	if perr != nil {
		reject(fmt.Sprintf("daemon %d: %v", m.d.id, perr))
		return
	}
	if m.draining || m.downErr != nil {
		reject(fmt.Sprintf("daemon %d: not accepting sessions", m.d.id))
		return
	}
	s, err := m.admitLocked(open.SID, from, ps)
	if err != nil {
		reject(err.Error())
		return
	}
	m.mu.Unlock()
	go m.runEngine(s)
}

// route delivers one in-session frame to its engine queue. Unknown ids go
// to the pending buffer (the open may still be in flight); tombstoned and
// terminal sessions drop silently — late frames after eviction are
// expected, not errors.
func (m *Manager) route(from sim.PartyID, sid uint64, ev muxEvent) {
	m.mu.Lock()
	s := m.table[sid]
	if s == nil {
		if _, dead := m.tombstone[sid]; !dead {
			m.bufferPendingLocked(sid, ev)
		}
		m.mu.Unlock()
		return
	}
	if s.state.Terminal() {
		m.mu.Unlock()
		return
	}
	inq, cancel := s.inq, s.cancel
	m.mu.Unlock()
	// Blocking send: this is the backpressure point. The terminal
	// transition closes cancel, so a reader blocked on a session that gets
	// evicted is released immediately.
	select {
	case inq <- ev:
	case <-cancel:
	}
}

func (m *Manager) bufferPendingLocked(sid uint64, ev muxEvent) {
	pb := m.pending[sid]
	if pb == nil {
		if m.pendingN >= m.pendingTotal() {
			return // global pressure: drop, the open will time the session out
		}
		pb = &pendingBuf{since: time.Now()}
		m.pending[sid] = pb
	}
	if len(pb.evs) >= m.pendingPerSession() {
		// A session this chatty before its open is broken; drop it wholesale.
		m.pendingN -= len(pb.evs)
		delete(m.pending, sid)
		m.tombstone[sid] = time.Now()
		return
	}
	pb.evs = append(pb.evs, ev)
	m.pendingN++
}

// handleAbort applies a terminal failure broadcast. The origin re-broadcasts
// on its own transition, so a rejection sent only origin-wards still reaches
// every peer; transitions are once-only, which bounds the gossip.
func (m *Manager) handleAbort(ab wire.SessionAbort) {
	m.mu.Lock()
	s := m.table[ab.SID]
	if s == nil {
		m.tombstone[ab.SID] = time.Now()
		if pb := m.pending[ab.SID]; pb != nil {
			m.pendingN -= len(pb.evs)
			delete(m.pending, ab.SID)
		}
		m.mu.Unlock()
		return
	}
	if s.state.Terminal() {
		m.mu.Unlock()
		return
	}
	rebroadcast := s.origin == m.d.id
	m.terminalLocked(s, StateFailed, ab.Reason)
	m.mu.Unlock()
	if rebroadcast {
		m.broadcastAbort(s.sid, ab.Reason)
	}
}

// handleDecide records one seat's terminal report; the origin assembles the
// Result once all n records (its own included) are in.
func (m *Manager) handleDecide(from sim.PartyID, dec wire.SessionDecide) {
	m.mu.Lock()
	s := m.table[dec.SID]
	if s == nil || s.state.Terminal() || s.origin != m.d.id {
		m.mu.Unlock()
		return
	}
	if from != m.d.id && dec.Party != from {
		m.terminalLocked(s, StateFailed,
			fmt.Sprintf("daemon %d reported a decide for party %d", from, dec.Party))
		m.mu.Unlock()
		m.broadcastAbort(s.sid, s.reason)
		return
	}
	if _, dup := s.decides[dec.Party]; dup {
		m.terminalLocked(s, StateFailed, fmt.Sprintf("duplicate decide from party %d", dec.Party))
		m.mu.Unlock()
		m.broadcastAbort(s.sid, s.reason)
		return
	}
	s.decides[dec.Party] = dec
	if len(s.decides) == m.d.n {
		m.assembleLocked(s)
	}
	m.mu.Unlock()
}

// assembleLocked builds the sim.Run-identical Result from the n seat
// records: outputs per party, the common termination round, and the
// cluster-wide message and byte totals (each seat counted its own sends,
// self-delivery included, exactly like the engine).
func (m *Manager) assembleLocked(s *session) {
	res := &sim.Result{
		Outputs:   make(map[sim.PartyID]any, m.d.n),
		Corrupted: make(map[sim.PartyID]bool),
	}
	term := -1
	for p, dec := range s.decides {
		if term == -1 {
			term = dec.TermRound
		} else if dec.TermRound != term {
			m.terminalLocked(s, StateFailed,
				fmt.Sprintf("termination rounds diverge: party %d at %d, others at %d", p, dec.TermRound, term))
			return
		}
		res.Outputs[p] = dec.V
		res.Messages += dec.Msgs
		res.Bytes += dec.Bytes
	}
	res.Rounds = term
	s.result = res
	m.terminalLocked(s, StateDecided, "")
}

// terminalLocked performs the one-and-only terminal transition: state,
// accounting, waiter notification, and the cancel broadcast that unblocks
// the engine and any reader parked on the queue.
func (m *Manager) terminalLocked(s *session, st State, reason string) {
	if s.state.Terminal() {
		return
	}
	s.state = st
	s.reason = reason
	s.latency = time.Since(s.admitted)
	m.inflight--
	close(s.cancel)
	switch st {
	case StateDecided:
		m.stats().Decided.Add(1)
	case StateExpired:
		m.stats().Expired.Add(1)
		m.stats().Failed.Add(1)
	default:
		m.stats().Failed.Add(1)
	}
	m.stats().AddSessionLatency(s.latency)
	out := m.outcomeLocked(s)
	for _, w := range s.waiters {
		w <- out // buffered, never blocks
	}
	s.waiters = nil
}

func (m *Manager) outcomeLocked(s *session) Outcome {
	return Outcome{SID: s.sid, State: s.state, Err: s.reason,
		Result: s.result, Latency: s.latency}
}

// fail transitions a session to a terminal failure state and, when asked,
// broadcasts the abort so the whole cluster converges.
func (m *Manager) fail(s *session, st State, reason string, broadcast bool) {
	m.mu.Lock()
	already := s.state.Terminal()
	if !already {
		m.terminalLocked(s, st, reason)
	}
	m.mu.Unlock()
	if !already && broadcast {
		m.broadcastAbort(s.sid, reason)
	}
}

func (m *Manager) broadcastAbort(sid uint64, reason string) {
	if frame, err := sessionFrame(wire.SessionAbort{SID: sid, Reason: reason}); err == nil {
		m.d.mux.broadcast(frame)
	}
}

func (m *Manager) abortTo(peer sim.PartyID, sid uint64, reason string) {
	if frame, err := sessionFrame(wire.SessionAbort{SID: sid, Reason: reason}); err == nil {
		m.d.mux.enqueue(peer, frame)
	}
}

// Status returns a session's current view; ok is false for unknown ids.
func (m *Manager) Status(sid uint64) (Outcome, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.table[sid]
	if s == nil {
		return Outcome{}, false
	}
	return m.outcomeLocked(s), true
}

// Wait returns a channel that delivers the session's Outcome at its
// terminal transition (immediately, for an already-terminal session).
func (m *Manager) Wait(sid uint64) (<-chan Outcome, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.table[sid]
	if s == nil {
		return nil, fmt.Errorf("session: unknown session id %#x", sid)
	}
	ch := make(chan Outcome, 1)
	if s.state.Terminal() {
		ch <- m.outcomeLocked(s)
	} else {
		s.waiters = append(s.waiters, ch)
	}
	return ch, nil
}

// linkDown poisons the manager after a peer link died: every in-flight
// session spans all daemons, so all of them fail, and future admissions are
// refused (the mux has no resend/reconnect path — that is the dedicated
// transport's job, not the serving layer's).
func (m *Manager) linkDown(peer sim.PartyID, err error) {
	m.mu.Lock()
	if m.downErr == nil {
		m.downErr = err
	}
	var victims []*session
	for _, s := range m.table {
		if !s.state.Terminal() {
			victims = append(victims, s)
		}
	}
	for _, s := range victims {
		m.terminalLocked(s, StateFailed, fmt.Sprintf("peer link down: %v", err))
	}
	m.mu.Unlock()
}

// evictLoop enforces deadlines: non-terminal sessions past their deadline
// are expired (and the abort broadcast, so every seat stops paying for
// them); terminal sessions linger for status queries until the same
// deadline plus a grace period, then leave a tombstone. Stale pending
// buffers and old tombstones are collected on the same tick.
func (m *Manager) evictLoop() {
	defer close(m.evictDone)
	const tick = 10 * time.Millisecond
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-m.evictQuit:
			return
		case <-ticker.C:
		}
		m.evictTick(time.Now())
	}
}

func (m *Manager) evictTick(now time.Time) {
	linger := m.d.opts.DefaultTTL
	type abort struct {
		sid    uint64
		reason string
	}
	var aborts []abort
	m.mu.Lock()
	for sid, s := range m.table {
		switch {
		case !s.state.Terminal() && now.After(s.deadline):
			m.terminalLocked(s, StateExpired, "deadline exceeded")
			aborts = append(aborts, abort{sid: sid, reason: "deadline exceeded"})
		case s.state.Terminal() && now.After(s.deadline.Add(linger)):
			delete(m.table, sid)
			m.tombstone[sid] = now
		}
	}
	for sid, pb := range m.pending {
		if now.Sub(pb.since) > m.d.opts.SetupTimeout {
			m.pendingN -= len(pb.evs)
			delete(m.pending, sid)
			m.tombstone[sid] = now
		}
	}
	for sid, t := range m.tombstone {
		if now.Sub(t) > 2*linger {
			delete(m.tombstone, sid)
		}
	}
	m.mu.Unlock()
	for _, a := range aborts {
		m.broadcastAbort(a.sid, a.reason)
	}
}

// drain stops admissions and waits (up to timeout) for in-flight sessions
// to reach a terminal state; leftovers are expired. Part of the daemon's
// graceful shutdown.
func (m *Manager) drain(timeout time.Duration) {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		left := m.inflight
		m.mu.Unlock()
		if left == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.mu.Lock()
	var leftovers []*session
	for _, s := range m.table {
		if !s.state.Terminal() {
			leftovers = append(leftovers, s)
		}
	}
	for _, s := range leftovers {
		m.terminalLocked(s, StateExpired, "daemon shutting down")
	}
	m.mu.Unlock()
}

func (m *Manager) stop() {
	close(m.evictQuit)
	<-m.evictDone
}

func (m *Manager) stats() *metrics.ServeStats { return m.d.opts.Stats }
