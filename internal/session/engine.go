package session

import (
	"fmt"
	"time"

	"treeaa/internal/core"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
	"treeaa/internal/wire"
)

// mailbox is one session seat's view of the lock-step structure: the same
// rotation as internal/transport's roundState (keys are sending rounds,
// round-r mail is consumed by Step(r+1)), minus the connection-failure
// tracking — link failures fail the whole daemon pair here, not one session.
type mailbox struct {
	n    int
	mail map[int]map[sim.PartyID][]sim.Message
	eor  map[int]map[sim.PartyID]bool
}

func newMailbox(n int) *mailbox {
	return &mailbox{
		n:    n,
		mail: make(map[int]map[sim.PartyID][]sim.Message),
		eor:  make(map[int]map[sim.PartyID]bool),
	}
}

func (mb *mailbox) add(m sim.Message) {
	box := mb.mail[m.Round]
	if box == nil {
		box = make(map[sim.PartyID][]sim.Message, mb.n)
		mb.mail[m.Round] = box
	}
	box[m.From] = append(box[m.From], m)
}

func (mb *mailbox) addEOR(r int, from sim.PartyID, done bool) error {
	flags := mb.eor[r]
	if flags == nil {
		flags = make(map[sim.PartyID]bool, mb.n)
		mb.eor[r] = flags
	}
	if _, dup := flags[from]; dup {
		return fmt.Errorf("duplicate eor(%d) from party %d", r, from)
	}
	flags[from] = done
	return nil
}

func (mb *mailbox) barrierDone(r, peers int) bool {
	return len(mb.eor[r]) == peers
}

func (mb *mailbox) peersDone(r int) bool {
	for _, done := range mb.eor[r] {
		if !done {
			return false
		}
	}
	return true
}

// inbox concatenates round r's mail in ascending sender order, each
// sender's messages in emission order — the per-link FIFO streams
// reassembled into the delivery order sim's counting sort produces.
func (mb *mailbox) inbox(r int) []sim.Message {
	box := mb.mail[r]
	if len(box) == 0 {
		return nil
	}
	total := 0
	for _, ms := range box {
		total += len(ms)
	}
	out := make([]sim.Message, 0, total)
	for p := sim.PartyID(0); int(p) < mb.n; p++ {
		out = append(out, box[p]...)
	}
	return out
}

func (mb *mailbox) drop(r int) {
	delete(mb.mail, r)
	delete(mb.eor, r)
}

// runEngine executes this daemon's seat of one session: the transport round
// loop (step → send → eor → barrier → decide) with session-framed traffic
// multiplexed through the shared links instead of a dedicated mesh. Message
// and byte accounting matches sim.Run exactly — counted at send, self-
// delivery included, sized as the leaf payload's canonical encoding (the
// session envelope is serving-layer overhead, not protocol cost).
func (m *Manager) runEngine(s *session) {
	d := m.d
	machine, err := core.NewMachine(core.Config{Tree: s.ps.tree, N: d.n,
		T: s.ps.spec.T, ID: d.id, Input: s.ps.inputs[d.id]})
	if err != nil {
		m.fail(s, StateFailed, fmt.Sprintf("daemon %d: %v", d.id, err), true)
		return
	}
	if !m.setRunning(s) {
		return // evicted before the first step
	}

	mb := newMailbox(d.n)
	peers := d.n - 1
	var (
		output    any
		done      bool
		doneRound int
		msgsSum   int
		bytesSum  int
	)
	for r := 1; r <= s.ps.maxRounds; r++ {
		out := machine.Step(r, mb.inbox(r-1))
		mb.drop(r - 1)
		if !done {
			if v, ok := machine.Output(); ok {
				output, done, doneRound = v, true, r
			}
		}

		for _, raw := range out {
			if raw.To != sim.Broadcast && (raw.To < 0 || int(raw.To) >= d.n) {
				m.fail(s, StateFailed,
					fmt.Sprintf("daemon %d round %d: recipient %d out of range", d.id, r, raw.To), true)
				return
			}
			frame, err := sessionFrame(wire.SessionMsg{SID: s.sid, Round: r, Payload: raw.Payload})
			if err != nil {
				m.fail(s, StateFailed, fmt.Sprintf("daemon %d round %d: %v", d.id, r, err), true)
				return
			}
			size := sim.PayloadSize(raw.Payload)
			first, last := raw.To, raw.To
			if raw.To == sim.Broadcast {
				first, last = 0, sim.PartyID(d.n-1)
			}
			for to := first; to <= last; to++ {
				msgsSum++
				bytesSum += size
				if to == d.id {
					mb.add(sim.Message{From: d.id, To: to, Round: r, Payload: raw.Payload})
				} else {
					d.mux.enqueue(to, frame)
				}
			}
		}

		eor, err := sessionFrame(wire.SessionEOR{SID: s.sid, Round: r, Done: done})
		if err != nil {
			m.fail(s, StateFailed, fmt.Sprintf("daemon %d round %d: %v", d.id, r, err), true)
			return
		}
		d.mux.broadcast(eor)

		if !m.awaitBarrier(s, mb, r, peers) {
			return
		}
		if done && mb.peersDone(r) {
			v, ok := output.(tree.VertexID)
			if !ok {
				m.fail(s, StateFailed,
					fmt.Sprintf("daemon %d: non-vertex output %T", d.id, output), true)
				return
			}
			m.finishSeat(s, wire.SessionDecide{
				SID: s.sid, Party: d.id, V: v,
				DoneRound: doneRound, TermRound: r, Msgs: msgsSum, Bytes: bytesSum,
			})
			return
		}
	}
	m.fail(s, StateFailed,
		fmt.Sprintf("daemon %d: not done after %d rounds", d.id, s.ps.maxRounds), true)
}

// setRunning moves Pending → Running; false means the session already went
// terminal (deadline eviction or a peer's rejection beat the engine here).
func (m *Manager) setRunning(s *session) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.state.Terminal() {
		return false
	}
	s.state = StateRunning
	return true
}

// awaitBarrier drains the session queue until eor(r) has arrived from every
// peer, filing message frames into their rounds as they pass by. Returns
// false when the engine must stop: session cancelled (eviction / abort —
// already terminal, nothing to report) or barrier timeout / protocol error
// (reported and broadcast here).
func (m *Manager) awaitBarrier(s *session, mb *mailbox, r, peers int) bool {
	timeout := time.NewTimer(m.d.opts.RoundTimeout)
	defer timeout.Stop()
	for !mb.barrierDone(r, peers) {
		select {
		case ev := <-s.inq:
			switch p := ev.payload.(type) {
			case wire.SessionMsg:
				mb.add(sim.Message{From: ev.from, To: m.d.id, Round: p.Round, Payload: p.Payload})
			case wire.SessionEOR:
				if err := mb.addEOR(p.Round, ev.from, p.Done); err != nil {
					m.fail(s, StateFailed, fmt.Sprintf("daemon %d: %v", m.d.id, err), true)
					return false
				}
			}
		case <-s.cancel:
			return false
		case <-timeout.C:
			m.fail(s, StateFailed,
				fmt.Sprintf("daemon %d: round %d barrier timed out after %v", m.d.id, r, m.d.opts.RoundTimeout), true)
			return false
		}
	}
	return true
}

// finishSeat reports this seat's terminal record. On the origin it feeds the
// assembly directly (the session stays Running until all n records are in);
// on a peer it ships the SessionDecide to the origin and marks the local
// session Decided — the origin owns the authoritative Outcome.
func (m *Manager) finishSeat(s *session, dec wire.SessionDecide) {
	if s.origin == m.d.id {
		m.handleDecide(m.d.id, dec)
		return
	}
	if frame, err := sessionFrame(dec); err == nil {
		m.d.mux.enqueue(s.origin, frame)
	}
	m.mu.Lock()
	m.terminalLocked(s, StateDecided, "")
	m.mu.Unlock()
}
