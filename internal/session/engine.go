package session

import (
	"fmt"
	"time"

	"treeaa/internal/async"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
	"treeaa/internal/wire"
)

// rawEvent is one inbound in-session frame, still encoded: the zero-copy
// hand-off from a link reader to the owning engine's shard. body is the wire
// body exactly as read off the socket (transport.ReadFrame allocates a fresh
// slice per frame, so retaining it is safe); it is decoded on the shard
// worker, off the link's critical path.
type rawEvent struct {
	from sim.PartyID
	body []byte
}

// mslot is one slot of the engine's four-round ring mailbox. The lock-step
// protocol bounds the live round window: while the engine awaits barrier r,
// inbound frames can only carry rounds r or r+1 (a peer needs our eor(r) to
// pass barrier r, and link FIFO delivers every round-r' message before
// eor(r')), and slot r-1 is still being consumed by Step(r) — three live
// rounds, so four slots indexed round&3 always leave the incoming slot
// clean. Anything outside the window is a protocol violation that fails the
// session. Slots are allocated once per engine and len-reset between rounds,
// the arena discipline of internal/sim's engine.
type mslot struct {
	byParty [][]sim.Message // index: sender; emission order within a sender
	eorSeen []bool
	eorDone []bool
	eors    int // peers whose eor arrived
	dones   int // of those, how many reported done
}

// engine is one daemon's seat of one session as a state machine stepped by
// its shard's worker — replacing the goroutine-per-session model (channel
// queue, per-round timer, blocking barrier select) that dominated the serve
// profile. All fields below the header are worker-owned: only the owning
// shard's single worker goroutine touches them, so stepping takes no locks
// and, with the slot ring and scratch buffers, no steady-state allocations.
type engine struct {
	s  *session
	m  *Manager
	sh *shard

	// Worker-owned round state.
	machine         sim.Machine
	started         bool
	round           int // barrier round currently awaited; 0 = not begun
	maxRounds       int
	n               int
	output          any
	done            bool
	doneRound       int
	msgs            int
	bytes           int
	barrierDeadline time.Time
	slots           [4]mslot
	inboxScratch    []sim.Message
	frameScratch    []byte

	// Async-mode state (Options.Async). The seat hosts an event-driven
	// asyncSeat instead of a lock-step sim.Machine: every inbound SessionMsg
	// is delivered to it on arrival, SessionEOR{Done: true} is a peer's
	// one-shot decision announcement, and round stays pinned at 1 — it only
	// arms the shard's watchdog, whose deadline is refreshed on every apply
	// so it bounds total silence (an idle timeout), never a round.
	aseat     asyncSeat
	abudget   int             // delivery flood guard, aseat.DeliveryBudget()
	adelivers int             // deliveries consumed so far
	aself     []async.Message // self-addressed traffic, delivered FIFO
	adoneSeen []bool
	adones    int

	// Replay state: journaled inbound frames a restarted daemon re-steps the
	// engine from before any live traffic. While mute is set the engine's
	// outbound sends are suppressed — peers received them in the previous
	// incarnation, and duplicates would trip their duplicate-EOR checks.
	replay []rawEvent
	mute   bool

	// Queue state, guarded by shard.mu.
	in      []rawEvent
	inSpare []rawEvent
	queued  bool // already on the shard's dirty list
	gone    bool // removed from the shard; stale wakes are no-ops
}

func newEngine(m *Manager, sh *shard, s *session) *engine {
	e := &engine{s: s, m: m, sh: sh, n: m.d.n, maxRounds: s.ps.maxRounds}
	for i := range e.slots {
		e.slots[i].byParty = make([][]sim.Message, e.n)
		e.slots[i].eorSeen = make([]bool, e.n)
		e.slots[i].eorDone = make([]bool, e.n)
	}
	return e
}

func (e *engine) slot(r int) *mslot { return &e.slots[r&3] }

func (e *engine) dropSlot(r int) {
	sl := e.slot(r)
	for p := range sl.byParty {
		sl.byParty[p] = sl.byParty[p][:0]
	}
	for p := range sl.eorSeen {
		sl.eorSeen[p] = false
		sl.eorDone[p] = false
	}
	sl.eors, sl.dones = 0, 0
}

// inWindow validates an inbound frame's round against the live window.
func (e *engine) inWindow(r int) bool { return r >= e.round && r <= e.round+1 }

// run is the engine's whole turn: begin if fresh, apply the queued frames,
// then advance through any barriers they completed. It returns false when
// the seat is finished (decided, failed, or the session went terminal
// elsewhere) and the shard should retire the engine.
func (e *engine) run(evs []rawEvent) bool {
	if e.s.terminal.Load() {
		return false
	}
	// A restored engine first re-steps through its journaled inputs, muted:
	// deterministic machines over identical inputs reproduce the pre-crash
	// state byte for byte, without re-sending what peers already hold. Live
	// frames that raced in before registration are processed after, unmuted.
	if len(e.replay) > 0 {
		rep := e.replay
		e.replay = nil
		e.mute = true
		ok := e.runEvents(rep)
		e.mute = false
		if !ok {
			return false
		}
	}
	return e.runEvents(evs)
}

func (e *engine) runEvents(evs []rawEvent) bool {
	if !e.started && !e.begin() {
		return false
	}
	for _, ev := range evs {
		if !e.apply(ev) {
			return false
		}
	}
	if e.aseat != nil {
		return e.asyncProgress()
	}
	return e.advance()
}

// begin creates the machine and steps round 1. The origin broadcasts
// SessionOpen before registering the engine, so our round-1 frames follow
// the open on every link FIFO.
func (e *engine) begin() bool {
	e.started = true
	d := e.m.d
	if d.opts.Async {
		return e.beginAsync()
	}
	machine, _, err := e.s.ps.space.NewMachine(d.n, e.s.ps.spec.T, d.id, e.s.ps.inputs[d.id])
	if err != nil {
		e.m.fail(e.s, StateFailed, fmt.Sprintf("daemon %d: %v", d.id, err), true)
		return false
	}
	if !e.m.setRunning(e.s) {
		return false // evicted before the first step
	}
	e.machine = machine
	return e.stepRound(1)
}

// apply decodes and files one raw frame. Round-window violations and
// duplicate EORs fail the session: the mesh is trusted, so they are bugs,
// not noise.
func (e *engine) apply(ev rawEvent) bool {
	payload, err := wire.Decode(ev.body)
	if err != nil {
		e.m.fail(e.s, StateFailed,
			fmt.Sprintf("daemon %d: frame from daemon %d: %v", e.m.d.id, ev.from, err), true)
		return false
	}
	if e.aseat != nil {
		return e.applyAsync(ev.from, payload)
	}
	switch p := payload.(type) {
	case wire.SessionMsg:
		if !e.inWindow(p.Round) {
			e.m.fail(e.s, StateFailed, fmt.Sprintf(
				"daemon %d: round %d message from daemon %d outside window [%d, %d]",
				e.m.d.id, p.Round, ev.from, e.round, e.round+1), true)
			return false
		}
		sl := e.slot(p.Round)
		sl.byParty[ev.from] = append(sl.byParty[ev.from],
			sim.Message{From: ev.from, To: e.m.d.id, Round: p.Round, Payload: p.Payload})
	case wire.SessionEOR:
		if !e.inWindow(p.Round) {
			e.m.fail(e.s, StateFailed, fmt.Sprintf(
				"daemon %d: eor(%d) from daemon %d outside window [%d, %d]",
				e.m.d.id, p.Round, ev.from, e.round, e.round+1), true)
			return false
		}
		sl := e.slot(p.Round)
		if sl.eorSeen[ev.from] {
			e.m.fail(e.s, StateFailed,
				fmt.Sprintf("daemon %d: duplicate eor(%d) from party %d", e.m.d.id, p.Round, ev.from), true)
			return false
		}
		sl.eorSeen[ev.from] = true
		sl.eors++
		if p.Done {
			sl.eorDone[ev.from] = true
			sl.dones++
		}
	default:
		e.m.fail(e.s, StateFailed,
			fmt.Sprintf("daemon %d: unexpected %T in session stream", e.m.d.id, payload), true)
		return false
	}
	return true
}

// advance crosses every barrier the mailbox has completed: terminate when
// this seat and all peers are done, otherwise step the next round. One
// delivery batch can carry the engine across several rounds.
func (e *engine) advance() bool {
	for {
		sl := e.slot(e.round)
		if sl.eors < e.n-1 {
			return true // barrier still open; wait for more frames
		}
		if e.done && sl.dones == e.n-1 {
			v, ok := e.output.(tree.VertexID)
			if !ok {
				e.m.fail(e.s, StateFailed,
					fmt.Sprintf("daemon %d: non-vertex output %T", e.m.d.id, e.output), true)
				return false
			}
			e.m.finishSeat(e.s, wire.SessionDecide{
				SID: e.s.sid, Party: e.m.d.id, V: v,
				DoneRound: e.doneRound, TermRound: e.round, Msgs: e.msgs, Bytes: e.bytes,
			}, e.mute)
			return false // seat complete; engine retires
		}
		if e.round+1 > e.maxRounds {
			e.m.fail(e.s, StateFailed,
				fmt.Sprintf("daemon %d: not done after %d rounds", e.m.d.id, e.maxRounds), true)
			return false
		}
		if !e.stepRound(e.round + 1) {
			return false
		}
	}
}

// stepRound runs Step(r) on the previous round's inbox and ships the
// outputs. Message and byte accounting matches sim.Run exactly — counted at
// send, self-delivery included, sized as the leaf payload's canonical
// encoding (the session envelope is serving overhead, not protocol cost).
// Encoding reuses frameScratch: the mux outbox copies every enqueued frame,
// so the per-message allocation of the old engine is gone.
func (e *engine) stepRound(r int) bool {
	d := e.m.d
	inbox := e.inboxScratch[:0]
	if r > 1 {
		prev := e.slot(r - 1)
		for p := 0; p < e.n; p++ {
			inbox = append(inbox, prev.byParty[p]...)
		}
	}
	out := e.machine.Step(r, inbox)
	e.inboxScratch = inbox
	if r > 1 {
		e.dropSlot(r - 1)
	}
	if !e.done {
		if v, ok := e.machine.Output(); ok {
			e.output, e.done, e.doneRound = v, true, r
		}
	}

	cur := e.slot(r)
	for _, raw := range out {
		if raw.To != sim.Broadcast && (raw.To < 0 || int(raw.To) >= e.n) {
			e.m.fail(e.s, StateFailed,
				fmt.Sprintf("daemon %d round %d: recipient %d out of range", d.id, r, raw.To), true)
			return false
		}
		frame, err := appendSessionFrame(e.frameScratch[:0],
			wire.SessionMsg{SID: e.s.sid, Round: r, Payload: raw.Payload})
		if err != nil {
			e.m.fail(e.s, StateFailed, fmt.Sprintf("daemon %d round %d: %v", d.id, r, err), true)
			return false
		}
		e.frameScratch = frame
		size := sim.PayloadSize(raw.Payload)
		first, last := raw.To, raw.To
		if raw.To == sim.Broadcast {
			first, last = 0, sim.PartyID(e.n-1)
		}
		for to := first; to <= last; to++ {
			e.msgs++
			e.bytes += size
			if to == d.id {
				cur.byParty[d.id] = append(cur.byParty[d.id],
					sim.Message{From: d.id, To: to, Round: r, Payload: raw.Payload})
			} else if !e.mute {
				d.mux.enqueue(to, frame)
			}
		}
	}

	eor, err := appendSessionFrame(e.frameScratch[:0],
		wire.SessionEOR{SID: e.s.sid, Round: r, Done: e.done})
	if err != nil {
		e.m.fail(e.s, StateFailed, fmt.Sprintf("daemon %d round %d: %v", d.id, r, err), true)
		return false
	}
	e.frameScratch = eor
	if !e.mute {
		d.mux.broadcast(eor)
	}

	e.round = r
	e.barrierDeadline = time.Now().Add(d.opts.RoundTimeout)
	return true
}

// asyncSeat is the event-driven machine an async-mode engine hosts;
// *async.Pipeline satisfies it (the same contract as transport.AsyncMachine,
// restated here so the session layer does not depend on the transport
// driver for an interface).
type asyncSeat interface {
	Init() []async.Message
	Deliver(m async.Message) []async.Message
	Output() (any, bool)
	EnvelopeRound(payload any) int
	DeliveryBudget() int
}

// beginAsync creates the event-driven seat and ships its opening
// broadcasts. There is no round 1 to step and round never advances: it is
// pinned at 1 purely to arm the shard's watchdog, whose deadline every
// apply pushes out — RoundTimeout bounds total silence, not a barrier.
func (e *engine) beginAsync() bool {
	d := e.m.d
	seat, err := async.NewPipeline(e.s.ps.space.Tree, d.n, e.s.ps.spec.T,
		async.PartyID(d.id), e.s.ps.inputs[d.id])
	if err != nil {
		e.m.fail(e.s, StateFailed, fmt.Sprintf("daemon %d: %v", d.id, err), true)
		return false
	}
	if !e.m.setRunning(e.s) {
		return false // evicted before the first step
	}
	e.aseat = seat
	e.abudget = seat.DeliveryBudget()
	e.adoneSeen = make([]bool, e.n)
	e.round = 1
	e.barrierDeadline = time.Now().Add(d.opts.RoundTimeout)
	return e.shipAsync(seat.Init()) && e.drainSelf()
}

// applyAsync handles one decoded frame in async mode: protocol payloads are
// delivered to the seat immediately — there is no round window, arbitrarily
// old and new iterations are both legal — and a SessionEOR is a peer's
// one-shot done announcement. Every arrival feeds the watchdog.
func (e *engine) applyAsync(from sim.PartyID, payload any) bool {
	e.barrierDeadline = time.Now().Add(e.m.d.opts.RoundTimeout)
	switch p := payload.(type) {
	case wire.SessionMsg:
		q, ok := async.FromWire(p.Payload)
		if !ok {
			e.m.fail(e.s, StateFailed, fmt.Sprintf(
				"daemon %d: non-async payload %T from daemon %d (peer running -mode sync?)",
				e.m.d.id, p.Payload, from), true)
			return false
		}
		return e.deliverAsync(async.Message{
			From: async.PartyID(from), To: async.PartyID(e.m.d.id), Payload: q,
		}) && e.drainSelf()
	case wire.SessionEOR:
		// Async seats send exactly one EOR, their decision announcement.
		if !p.Done {
			e.m.fail(e.s, StateFailed, fmt.Sprintf(
				"daemon %d: non-done eor from daemon %d in async mode", e.m.d.id, from), true)
			return false
		}
		if e.adoneSeen[from] {
			e.m.fail(e.s, StateFailed,
				fmt.Sprintf("daemon %d: duplicate done from party %d", e.m.d.id, from), true)
			return false
		}
		e.adoneSeen[from] = true
		e.adones++
	default:
		e.m.fail(e.s, StateFailed,
			fmt.Sprintf("daemon %d: unexpected %T in session stream", e.m.d.id, payload), true)
		return false
	}
	return true
}

// deliverAsync hands one message to the seat and ships whatever it emits.
// The delivery budget is the flood guard the round cap can no longer be.
func (e *engine) deliverAsync(msg async.Message) bool {
	e.adelivers++
	if e.adelivers > e.abudget {
		e.m.fail(e.s, StateFailed, fmt.Sprintf(
			"daemon %d: async delivery budget %d exceeded", e.m.d.id, e.abudget), true)
		return false
	}
	return e.shipAsync(e.aseat.Deliver(msg))
}

// drainSelf delivers queued self-addressed traffic FIFO. Local causality
// runs ahead of the network, exactly as in the transport driver: a
// self-delivery may emit further self-sends, which join the back of the
// queue rather than recursing.
func (e *engine) drainSelf() bool {
	for len(e.aself) > 0 {
		msg := e.aself[0]
		e.aself = e.aself[1:]
		if !e.deliverAsync(msg) {
			return false
		}
	}
	return true
}

// shipAsync encodes and routes one batch of seat output: self-copies join
// the local queue, remote copies ride SessionMsg frames on the mux.
// Counting matches the transport driver — per recipient at send, self
// included, sized as the leaf payload's canonical encoding. The frame's
// round field carries the seat's EnvelopeRound, asynchronous progress for
// observers, never waited on.
func (e *engine) shipAsync(out []async.Message) bool {
	d := e.m.d
	for _, raw := range out {
		if raw.To != async.Broadcast && (raw.To < 0 || int(raw.To) >= e.n) {
			e.m.fail(e.s, StateFailed,
				fmt.Sprintf("daemon %d: async recipient %d out of range", d.id, raw.To), true)
			return false
		}
		wp, err := async.ToWire(raw.Payload)
		if err != nil {
			e.m.fail(e.s, StateFailed, fmt.Sprintf("daemon %d: %v", d.id, err), true)
			return false
		}
		frame, err := appendSessionFrame(e.frameScratch[:0], wire.SessionMsg{
			SID: e.s.sid, Round: e.aseat.EnvelopeRound(raw.Payload), Payload: wp})
		if err != nil {
			e.m.fail(e.s, StateFailed, fmt.Sprintf("daemon %d: %v", d.id, err), true)
			return false
		}
		e.frameScratch = frame
		size := sim.PayloadSize(wp)
		first, last := raw.To, raw.To
		if raw.To == async.Broadcast {
			first, last = 0, async.PartyID(e.n-1)
		}
		for to := first; to <= last; to++ {
			e.msgs++
			e.bytes += size
			if int(to) == int(d.id) {
				e.aself = append(e.aself, async.Message{
					From: async.PartyID(d.id), To: to, Payload: raw.Payload})
			} else {
				d.mux.enqueue(sim.PartyID(to), frame)
			}
		}
	}
	return true
}

// asyncProgress runs after every event batch: announce our decision the
// moment the seat has one, then finish once we are decided and every peer
// has announced. DoneRound and TermRound are the constant 1 — there is no
// round to report, and the constant keeps the origin's uniform
// termination-round check meaningful (a mixed-mode fleet cannot slip
// through: the cluster hash already keeps it from pairing).
func (e *engine) asyncProgress() bool {
	if !e.done {
		if v, ok := e.aseat.Output(); ok {
			e.output, e.done, e.doneRound = v, true, 1
			if !e.announceAsync() {
				return false
			}
		}
	}
	if e.done && e.adones == e.n-1 {
		v, ok := e.output.(tree.VertexID)
		if !ok {
			e.m.fail(e.s, StateFailed,
				fmt.Sprintf("daemon %d: non-vertex output %T", e.m.d.id, e.output), true)
			return false
		}
		e.m.finishSeat(e.s, wire.SessionDecide{
			SID: e.s.sid, Party: e.m.d.id, V: v,
			DoneRound: 1, TermRound: 1, Msgs: e.msgs, Bytes: e.bytes,
		}, e.mute)
		return false // seat complete; engine retires
	}
	return true
}

// announceAsync broadcasts this seat's one-and-only SessionEOR, the done
// announcement. Decided peers keep amplifying RBC traffic for the rest, so
// unlike the sync engine there is nothing to purge — the mux flusher ships
// frames in enqueue order regardless.
func (e *engine) announceAsync() bool {
	eor, err := appendSessionFrame(e.frameScratch[:0],
		wire.SessionEOR{SID: e.s.sid, Round: 1, Done: true})
	if err != nil {
		e.m.fail(e.s, StateFailed, fmt.Sprintf("daemon %d: %v", e.m.d.id, err), true)
		return false
	}
	e.frameScratch = eor
	e.m.d.mux.broadcast(eor)
	return true
}

// setRunning moves Pending → Running; false means the session already went
// terminal (deadline eviction or a peer's rejection beat the engine here).
func (m *Manager) setRunning(s *session) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.state.Terminal() {
		return false
	}
	s.state = StateRunning
	return true
}

// finishSeat reports this seat's terminal record. On the origin it feeds the
// assembly directly (the session stays Running until all n records are in);
// on a peer it ships the SessionDecide to the origin and marks the local
// session Decided — the origin owns the authoritative Outcome. A muted
// (replaying) seat re-derives its local state without re-sending the decide:
// the origin heard it in the previous incarnation or has already failed the
// session its own way.
func (m *Manager) finishSeat(s *session, dec wire.SessionDecide, mute bool) {
	if s.origin == m.d.id {
		m.handleDecide(m.d.id, dec)
		return
	}
	if !mute {
		if frame, err := sessionFrame(dec); err == nil {
			m.d.mux.enqueue(s.origin, frame)
		}
	}
	m.mu.Lock()
	m.terminalLocked(s, StateDecided, "")
	m.mu.Unlock()
}
