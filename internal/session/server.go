package session

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"time"

	"treeaa/internal/sim"
	"treeaa/internal/transport"
	"treeaa/internal/tree"
	"treeaa/internal/wire"
)

// The client API speaks the binary wire codec over TCP: each request is one
// length-prefixed frame (transport framing) around a ClientSubmit,
// ClientWait or ClientStatus payload, and each response is one framed
// ClientOutcome. One connection carries any number of request/response
// pairs in order. Three ops:
//
//	submit  admit a session (sid 0 = auto-assign); wait=true blocks for the
//	        terminal Outcome, wait=false returns the assigned sid at once
//	status  current lifecycle view of a session on this daemon
//	wait    block until the session reaches a terminal state
//
// OK reports request-level success (the daemon processed the op); a session
// that failed or expired still answers OK with the failure in State/Err.
//
// The legacy protocol — uvarint(len)-prefixed JSON of Request/Response, the
// same three ops — is still served when Options.JSONClientAPI is set, and
// spoken by DialJSONClient.

// maxClientRequest bounds one request frame; specs are tiny, so anything
// bigger is a confused or hostile client.
const maxClientRequest = 1 << 20

// Request is one client API call.
type Request struct {
	Op     string `json:"op"`
	SID    uint64 `json:"sid,omitempty"`
	Tree   string `json:"tree,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	T      int    `json:"t,omitempty"`
	Inputs string `json:"inputs,omitempty"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
	Wait   bool   `json:"wait,omitempty"`
}

// Response answers one Request.
type Response struct {
	OK    bool   `json:"ok"`
	Err   string `json:"err,omitempty"`
	SID   uint64 `json:"sid,omitempty"`
	State string `json:"state,omitempty"`
	// Terminal decided sessions only: the assembled Result fields.
	Outputs   map[string]int `json:"outputs,omitempty"`
	Rounds    int            `json:"rounds,omitempty"`
	Messages  int            `json:"messages,omitempty"`
	Bytes     int            `json:"bytes,omitempty"`
	LatencyNS int64          `json:"latency_ns,omitempty"`
}

func (d *Daemon) acceptClients() {
	defer d.clientWG.Done()
	for {
		conn, err := d.clientLn.Accept()
		if err != nil {
			return // listener closed on shutdown
		}
		d.clientWG.Add(1)
		go d.serveClient(conn)
	}
}

// serveClient runs one connection's request loop until the client hangs up
// or the daemon finishes draining (closedCh fires only after the drain, so
// blocked waits get real outcomes before the connection dies).
func (d *Daemon) serveClient(conn net.Conn) {
	defer d.clientWG.Done()
	defer conn.Close()
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		select {
		case <-d.closedCh:
			conn.Close()
		case <-connDone:
		}
	}()
	br := bufio.NewReader(conn)
	if d.opts.JSONClientAPI {
		d.serveJSONClient(conn, br)
		return
	}
	d.serveBinaryClient(conn, br)
}

func (d *Daemon) serveJSONClient(conn net.Conn, br *bufio.Reader) {
	for {
		var req Request
		if err := readJSON(br, &req); err != nil {
			return
		}
		resp := d.handleRequest(req)
		if err := writeJSON(conn, resp); err != nil {
			return
		}
	}
}

// serveBinaryClient is the default request loop: framed wire payloads in
// both directions. A frame that fails to decode tears the connection down
// (framing is lost); a well-formed frame of the wrong type answers with an
// error outcome and keeps the connection.
func (d *Daemon) serveBinaryClient(conn net.Conn, br *bufio.Reader) {
	for {
		body, err := transport.ReadFrame(br)
		if err != nil || len(body) > maxClientRequest {
			return
		}
		payload, err := wire.Decode(body)
		if err != nil {
			return
		}
		var resp Response
		if req, ok := clientRequest(payload); ok {
			resp = d.handleRequest(req)
		} else {
			resp = Response{Err: fmt.Sprintf("unexpected %T on client connection", payload)}
		}
		out, err := wire.Encode(outcomeFrame(resp))
		if err != nil {
			return
		}
		frame := transport.AppendFrame(nil, out)
		if _, err := conn.Write(frame); err != nil {
			return
		}
		d.opts.Stats.ClientBytes.Add(int64(len(frame)))
	}
}

// clientRequest maps a decoded client-plane payload onto the op Request the
// shared handler consumes.
func clientRequest(payload any) (Request, bool) {
	switch p := payload.(type) {
	case wire.ClientSubmit:
		return Request{Op: "submit", SID: p.SID, Tree: p.Tree, Seed: p.Seed, T: p.T,
			Inputs: p.Inputs, TTLMS: int64(p.TTLMillis), Wait: p.Wait}, true
	case wire.ClientWait:
		return Request{Op: "wait", SID: p.SID}, true
	case wire.ClientStatus:
		return Request{Op: "status", SID: p.SID}, true
	}
	return Request{}, false
}

// stateByte maps a Response state string back onto the wire's State value;
// request-level errors carry no state and map to ClientStateNone.
func stateByte(s string) byte {
	for st := StatePending; st <= StateExpired; st++ {
		if st.String() == s {
			return byte(st)
		}
	}
	return wire.ClientStateNone
}

// outcomeFrame converts a Response into its wire form. Outputs sort by
// party, which is also what the codec's canonical encoding requires.
func outcomeFrame(resp Response) wire.ClientOutcome {
	out := wire.ClientOutcome{OK: resp.OK, SID: resp.SID, State: stateByte(resp.State),
		Err: resp.Err, LatencyNS: resp.LatencyNS,
		Rounds: resp.Rounds, Msgs: resp.Messages, Bytes: resp.Bytes}
	if len(resp.Outputs) > 0 {
		pairs := make([]wire.OutputPair, 0, len(resp.Outputs))
		for k, v := range resp.Outputs {
			id, err := strconv.Atoi(k)
			if err != nil {
				continue
			}
			pairs = append(pairs, wire.OutputPair{Party: sim.PartyID(id), V: tree.VertexID(v)})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].Party < pairs[j].Party })
		out.Outputs = pairs
	}
	return out
}

func (d *Daemon) handleRequest(req Request) Response {
	switch req.Op {
	case "submit":
		spec := Spec{Tree: req.Tree, Seed: req.Seed, T: req.T, Inputs: req.Inputs,
			TTL: time.Duration(req.TTLMS) * time.Millisecond}
		sid, err := d.mgr.Submit(spec, req.SID)
		if err != nil {
			return Response{Err: err.Error()}
		}
		if !req.Wait {
			return Response{OK: true, SID: sid, State: StatePending.String()}
		}
		return d.await(sid)
	case "status":
		out, ok := d.mgr.Status(req.SID)
		if !ok {
			return Response{Err: fmt.Sprintf("unknown session id %#x", req.SID)}
		}
		return outcomeResponse(out)
	case "wait":
		return d.await(req.SID)
	default:
		return Response{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// await blocks until the session's terminal Outcome. Bounded: every session
// has a deadline, and the post-drain shutdown closes closedCh.
func (d *Daemon) await(sid uint64) Response {
	ch, err := d.mgr.Wait(sid)
	if err != nil {
		return Response{Err: err.Error()}
	}
	select {
	case out := <-ch:
		return outcomeResponse(out)
	case <-d.closedCh:
		return Response{Err: "daemon shutting down"}
	}
}

func outcomeResponse(out Outcome) Response {
	resp := Response{OK: true, SID: out.SID, State: out.State.String(),
		Err: out.Err, LatencyNS: out.Latency.Nanoseconds()}
	if out.Result != nil {
		resp.Rounds = out.Result.Rounds
		resp.Messages = out.Result.Messages
		resp.Bytes = out.Result.Bytes
		resp.Outputs = make(map[string]int, len(out.Result.Outputs))
		for p, v := range out.Result.Outputs {
			if vid, ok := v.(tree.VertexID); ok {
				resp.Outputs[strconv.Itoa(int(p))] = int(vid)
			}
		}
	}
	return resp
}

func writeJSON(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	buf := binary.AppendUvarint(make([]byte, 0, len(body)+4), uint64(len(body)))
	buf = append(buf, body...)
	_, err = w.Write(buf)
	return err
}

func readJSON(br *bufio.Reader, v any) error {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if n > maxClientRequest {
		return fmt.Errorf("session: request of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
