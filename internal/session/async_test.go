package session

import (
	"strings"
	"testing"
	"time"

	"treeaa/internal/async"
	"treeaa/internal/cli"
	"treeaa/internal/experiments"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

func asyncOptions() Options {
	return Options{Async: true, SetupTimeout: 10 * time.Second,
		RoundTimeout: 20 * time.Second, DrainTimeout: 5 * time.Second}
}

// judgeAsyncResult asserts the async serving contract on one decided
// Result: Rounds is the constant 1, and the outputs are valid (inside the
// input hull) and 1-agreeing.
func judgeAsyncResult(t *testing.T, spec Spec, n int, got *sim.Result, ctx string) {
	t.Helper()
	if got.Rounds != 1 {
		t.Errorf("%s: async Result.Rounds = %d, want the constant 1", ctx, got.Rounds)
	}
	tr, err := cli.ParseTreeSpec(spec.Tree, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	inputs, err := cli.ParseInputs(tr, spec.Inputs, n)
	if err != nil {
		t.Fatal(err)
	}
	outputs := make(map[sim.PartyID]tree.VertexID, len(got.Outputs))
	for p, raw := range got.Outputs {
		v, ok := raw.(tree.VertexID)
		if !ok {
			t.Fatalf("%s: party %d output is %T, not a vertex", ctx, p, raw)
		}
		outputs[p] = v
	}
	if len(outputs) != n {
		t.Fatalf("%s: %d outputs for %d parties", ctx, len(outputs), n)
	}
	if maxDist, valid := experiments.Judge(tr, inputs, nil, outputs); !valid || maxDist > 1 {
		t.Errorf("%s: async outputs violate the paper's properties: valid=%v maxDist=%d",
			ctx, valid, maxDist)
	}
}

// TestAsyncServeDecides: an async deployment serves sessions across tree
// shapes, corruption budgets and origin daemons, and every decided Result
// upholds validity and 1-agreement. No oracle: asynchronous decisions
// legitimately depend on delivery order.
func TestAsyncServeDecides(t *testing.T) {
	cases := []struct {
		n    int
		spec Spec
	}{
		{3, Spec{Tree: "path:8"}},
		{3, Spec{Tree: "star:9"}},
		{4, Spec{Tree: "spider:3:4", T: 1}},
		{4, Spec{Tree: "random:12", Seed: 7, T: 1}},
	}
	for _, tc := range cases {
		c := startTestCluster(t, tc.n, asyncOptions())
		for origin := 0; origin < tc.n; origin++ {
			resp := submitAndWait(t, c, origin, tc.spec)
			ctx := tc.spec.Tree
			if !resp.Decided() {
				t.Fatalf("%s via daemon %d: state %s (%s)", ctx, origin, resp.State, resp.Err)
			}
			got, err := resp.SimResult()
			if err != nil {
				t.Fatalf("%s via daemon %d: %v", ctx, origin, err)
			}
			judgeAsyncResult(t, tc.spec, tc.n, got, ctx)
		}
		c.Stop()
	}
}

// TestAsyncServeSlowLinks: with every peer-link write held up, a sync
// engine would burn its round budget waiting at barriers; the async engine
// has no barriers — frames deliver whenever they arrive and the sessions
// still decide. The watchdog only bounds total silence, which a slow link
// never produces.
func TestAsyncServeSlowLinks(t *testing.T) {
	opts := asyncOptions()
	opts.WrapConn = slowLinks(2 * time.Millisecond)
	c := startTestCluster(t, 3, opts)
	spec := Spec{Tree: "spider:3:3"}
	resp := submitAndWait(t, c, 0, spec)
	if !resp.Decided() {
		t.Fatalf("slow-link async session: state %s (%s)", resp.State, resp.Err)
	}
	got, err := resp.SimResult()
	if err != nil {
		t.Fatal(err)
	}
	judgeAsyncResult(t, spec, 3, got, "slow links")
}

// TestAsyncServeQuietMatchesInProcess: with t=0 every witness report names
// all n senders, making the async update delivery-order independent — so a
// served session's outputs must be byte-identical to the in-process FIFO
// execution of the same pipeline, even though no oracle is enforced at
// serving time.
func TestAsyncServeQuietMatchesInProcess(t *testing.T) {
	const n = 3
	spec := Spec{Tree: "star:6"}
	tr, err := cli.ParseTreeSpec(spec.Tree, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	inputs, err := cli.ParseInputs(tr, spec.Inputs, n)
	if err != nil {
		t.Fatal(err)
	}
	machines := make([]async.Machine, n)
	budget := 0
	for i := range machines {
		p, err := async.NewPipeline(tr, n, 0, async.PartyID(i), inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = p
		if b := p.DeliveryBudget(); b > budget {
			budget = b
		}
	}
	want, err := async.Run(async.Config{N: n, MaxDeliveries: budget}, machines)
	if err != nil {
		t.Fatal(err)
	}

	c := startTestCluster(t, n, asyncOptions())
	resp := submitAndWait(t, c, 0, spec)
	if !resp.Decided() {
		t.Fatalf("state %s (%s)", resp.State, resp.Err)
	}
	got, err := resp.SimResult()
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		w := want.Outputs[async.PartyID(p)].(tree.VertexID)
		g, ok := got.Outputs[sim.PartyID(p)].(tree.VertexID)
		if !ok || g != w {
			t.Errorf("party %d decided %v when served, %v in-process", p, got.Outputs[sim.PartyID(p)], w)
		}
	}
}

// TestAsyncOptionsRejected: the journal and the overlay fabric are built on
// lock-step rounds, so an async daemon refuses them at construction with an
// error naming the conflict.
func TestAsyncOptionsRejected(t *testing.T) {
	addrs := []string{"127.0.0.1:1", "127.0.0.1:2"}
	for name, opts := range map[string]Options{
		"journal": {Async: true, JournalDir: t.TempDir()},
		"overlay": {Async: true, OverlaySpec: "tree"},
	} {
		_, err := NewDaemon(0, addrs, "127.0.0.1:0", opts)
		if err == nil {
			t.Fatalf("NewDaemon accepted async + %s", name)
		}
		if !strings.Contains(err.Error(), "async mode") {
			t.Errorf("%s rejection %q does not explain the async conflict", name, err)
		}
	}
}
