package session

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"treeaa/internal/metrics"
	"treeaa/internal/sim"
	"treeaa/internal/transport"
	"treeaa/internal/wire"
)

// The mux hello opens a daemon-pair link:
//
//	FrameMuxHello | magic(4) | mux version(1) | u32(from) | u32(to) |
//	u32(n) | u64(cluster hash, big-endian)
//
// One duplex connection serves each unordered daemon pair — the lower id
// dials — so a 4-daemon cluster runs every session over 6 connections,
// total, forever. All subsequent frames in both directions are
// FrameMuxSession envelopes around wire session bodies.
const muxVersion byte = 1

var muxMagic = [4]byte{'T', 'A', 'A', 'S'}

// mux owns a daemon's peer links: the mesh handshake, one reader per link
// (demultiplexing into the handler), and one flusher per link (coalescing
// every session's outbound frames into batched writes).
type mux struct {
	id      sim.PartyID
	n       int
	addrs   []string
	cluster uint64
	opts    Options
	stats   *metrics.ServeStats

	// handler receives every decoded inbound session payload, attributed to
	// its authenticated peer. It runs on the link's reader goroutine, so a
	// blocking handler exerts backpressure on that link only.
	handler func(from sim.PartyID, payload any)
	// onDown reports a dead link (read or write failure after setup).
	onDown func(peer sim.PartyID, err error)

	peers map[sim.PartyID]*peerLink
	ln    net.Listener

	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu    sync.Mutex
	conns []net.Conn
}

// peerLink is one duplex daemon-pair link: the shared connection, and the
// outbox the flusher drains.
type peerLink struct {
	m    *mux
	peer sim.PartyID

	ready chan struct{} // closed when conn is set
	conn  net.Conn
	br    *bufio.Reader

	mu      sync.Mutex
	pending []byte // concatenated encoded frames awaiting one batched write
	frames  int
	kick    chan struct{} // capacity 1: flush now (first frame or batch full)
}

func newMux(id sim.PartyID, n int, addrs []string, cluster uint64, opts Options,
	handler func(from sim.PartyID, payload any), onDown func(peer sim.PartyID, err error)) *mux {
	m := &mux{
		id: id, n: n, addrs: addrs, cluster: cluster, opts: opts,
		stats: opts.Stats, handler: handler, onDown: onDown,
		peers: make(map[sim.PartyID]*peerLink, n-1),
		quit:  make(chan struct{}),
	}
	for p := sim.PartyID(0); int(p) < n; p++ {
		if p == id {
			continue
		}
		m.peers[p] = &peerLink{m: m, peer: p,
			ready: make(chan struct{}), kick: make(chan struct{}, 1)}
	}
	return m
}

// start builds the mesh over the given bound listener: accept links from
// lower-id peers, dial higher-id peers, then wait until every link is up.
// On success the per-link readers and flushers are running.
func (m *mux) start(ln net.Listener) error {
	m.ln = ln
	deadline := time.Now().Add(m.opts.SetupTimeout)
	m.wg.Add(1)
	go m.acceptLoop(ln)
	for p := sim.PartyID(0); int(p) < m.n; p++ {
		if p <= m.id {
			continue
		}
		conn, err := m.opts.Dialer(m.addrs[p], deadline)
		if err != nil {
			return fmt.Errorf("session: daemon %d dialing daemon %d at %s: %w", m.id, p, m.addrs[p], err)
		}
		conn = m.wrap(p, conn)
		m.track(conn)
		hb := encodeMuxHello(m.id, p, m.n, m.cluster)
		conn.SetWriteDeadline(deadline)
		if _, err := conn.Write(hb); err != nil {
			return fmt.Errorf("session: daemon %d handshake to daemon %d: %w", m.id, p, err)
		}
		conn.SetWriteDeadline(time.Time{})
		if err := m.register(p, conn, bufio.NewReaderSize(conn, 64<<10)); err != nil {
			return err
		}
	}
	for p, l := range m.peers {
		select {
		case <-l.ready:
		case <-m.quit:
			return fmt.Errorf("session: daemon %d closed during setup", m.id)
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("session: daemon %d: no link from daemon %d within %v", m.id, p, m.opts.SetupTimeout)
		}
	}
	for _, l := range m.peers {
		m.wg.Add(2)
		go m.readLoop(l)
		go m.flushLoop(l)
	}
	return nil
}

func (m *mux) wrap(peer sim.PartyID, conn net.Conn) net.Conn {
	if m.opts.WrapConn == nil {
		return conn
	}
	// Both ends wrap with themselves as the writer: each side of the duplex
	// link faults its own outbound direction, so a chaos latency clause on
	// (a, b) shapes a→b traffic no matter which end dialed.
	return m.opts.WrapConn(m.id, peer, conn)
}

func (m *mux) track(conn net.Conn) {
	m.mu.Lock()
	m.conns = append(m.conns, conn)
	m.mu.Unlock()
}

func (m *mux) acceptLoop(ln net.Listener) {
	defer m.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by close()
		}
		m.track(conn)
		m.wg.Add(1)
		go m.handshakeIn(conn)
	}
}

// handshakeIn validates an inbound hello and registers the connection as
// the unique link from its claimed (lower-id) peer.
func (m *mux) handshakeIn(conn net.Conn) {
	defer m.wg.Done()
	conn.SetReadDeadline(time.Now().Add(m.opts.SetupTimeout))
	br := bufio.NewReaderSize(conn, 64<<10)
	body, err := transport.ReadFrame(br)
	if err != nil {
		conn.Close()
		return
	}
	from, to, n, cluster, err := parseMuxHello(body)
	switch {
	case err != nil:
	case to != m.id:
		err = fmt.Errorf("addressed to daemon %d", to)
	case from >= m.id || from < 0:
		err = fmt.Errorf("daemon %d must be dialed by this side", from)
	case n != m.n:
		err = fmt.Errorf("peer configured for n = %d, want %d", n, m.n)
	case cluster != m.cluster:
		err = fmt.Errorf("cluster %#x, want %#x", cluster, m.cluster)
	}
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	// Re-wrap happens on our side too: the acceptor faults its own writes.
	wrapped := m.wrap(from, conn)
	if wrapped != conn {
		m.track(wrapped)
	}
	if err := m.register(from, wrapped, br); err != nil {
		conn.Close()
	}
}

func (m *mux) register(peer sim.PartyID, conn net.Conn, br *bufio.Reader) error {
	l := m.peers[peer]
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn != nil {
		return fmt.Errorf("session: duplicate link from daemon %d", peer)
	}
	l.conn, l.br = conn, br
	close(l.ready)
	return nil
}

// enqueue appends one encoded frame to the peer's outbox. It never blocks:
// the flusher owns the socket, and backpressure is applied by the *peer's*
// bounded session queues, not here.
func (m *mux) enqueue(to sim.PartyID, frame []byte) {
	l := m.peers[to]
	if l == nil {
		return
	}
	l.mu.Lock()
	first := l.frames == 0
	l.pending = append(l.pending, frame...)
	l.frames++
	full := len(l.pending) >= m.opts.MaxBatchBytes
	l.mu.Unlock()
	if first || full {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
}

// broadcast enqueues the frame on every peer link.
func (m *mux) broadcast(frame []byte) {
	for p := sim.PartyID(0); int(p) < m.n; p++ {
		if p != m.id {
			m.enqueue(p, frame)
		}
	}
}

// flushLoop coalesces a link's outbox into one conn.Write per wakeup: the
// flush tick bounds latency, the kick channel delivers new-work and
// batch-full wakeups early. While a write is in flight new frames pile up
// in the outbox, so batches grow exactly when the link is the bottleneck.
func (m *mux) flushLoop(l *peerLink) {
	defer m.wg.Done()
	ticker := time.NewTicker(m.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
		case <-l.kick:
		case <-m.quit:
			l.flush() // best-effort final drain so queued decides reach peers
			return
		}
		if err := l.flush(); err != nil {
			if !m.closed() {
				m.onDown(l.peer, fmt.Errorf("session: link %d→%d: %w", m.id, l.peer, err))
			}
			return
		}
	}
}

func (l *peerLink) flush() error {
	l.mu.Lock()
	batch, frames := l.pending, l.frames
	l.pending, l.frames = nil, 0
	l.mu.Unlock()
	if frames == 0 {
		return nil
	}
	l.conn.SetWriteDeadline(time.Now().Add(l.m.opts.RoundTimeout))
	if _, err := l.conn.Write(batch); err != nil {
		return err
	}
	if s := l.m.stats; s != nil {
		s.Batches.Add(1)
		s.BatchFrames.Add(int64(frames))
		s.BatchBytes.Add(int64(len(batch)))
	}
	return nil
}

// readLoop turns one link into handler calls. No read deadline: an idle
// link is healthy (no sessions in flight), and per-session liveness is the
// engines' round timeout.
func (m *mux) readLoop(l *peerLink) {
	defer m.wg.Done()
	for {
		body, err := transport.ReadFrame(l.br)
		if err != nil {
			if !m.closed() {
				m.onDown(l.peer, fmt.Errorf("session: link %d→%d: %w", l.peer, m.id, err))
			}
			return
		}
		if body[0] != transport.FrameMuxSession {
			if !m.closed() {
				m.onDown(l.peer, fmt.Errorf("session: link %d→%d: unexpected frame type 0x%02x", l.peer, m.id, body[0]))
			}
			return
		}
		payload, err := wire.Decode(body[1:])
		if err != nil {
			if !m.closed() {
				m.onDown(l.peer, fmt.Errorf("session: link %d→%d: %w", l.peer, m.id, err))
			}
			return
		}
		m.handler(l.peer, payload)
	}
}

func (m *mux) closed() bool {
	select {
	case <-m.quit:
		return true
	default:
		return false
	}
}

// close tears the mux down: final flushes are triggered by quit, then the
// sockets die and every loop exits. Safe to call more than once.
func (m *mux) close() {
	m.closeOnce.Do(func() {
		close(m.quit)
		// Give each flusher one scheduling slot to drain its outbox before
		// the sockets close under it; decides queued by terminal engines are
		// small and this is best-effort (a peer that misses one fails the
		// session by timeout, never silently).
		time.Sleep(10 * time.Millisecond)
		if m.ln != nil {
			m.ln.Close()
		}
		m.mu.Lock()
		conns := m.conns
		m.conns = nil
		m.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	})
	m.wg.Wait()
}

// sessionFrame wraps an encoded wire session body in the mux envelope: one
// length-prefixed FrameMuxSession frame, ready for enqueue. The returned
// slice is immutable by convention — broadcasts share it across links.
func sessionFrame(payload any) ([]byte, error) {
	sz, err := wire.EncodedSize(payload)
	if err != nil {
		return nil, err
	}
	body := make([]byte, 0, sz+1)
	body = append(body, transport.FrameMuxSession)
	body, err = wire.Append(body, payload)
	if err != nil {
		return nil, err
	}
	return transport.AppendFrame(nil, body), nil
}

func encodeMuxHello(from, to sim.PartyID, n int, cluster uint64) []byte {
	body := make([]byte, 0, 26)
	body = append(body, transport.FrameMuxHello)
	body = append(body, muxMagic[:]...)
	body = append(body, muxVersion)
	body = wire.AppendU32(body, uint32(from))
	body = wire.AppendU32(body, uint32(to))
	body = wire.AppendU32(body, uint32(n))
	for shift := 56; shift >= 0; shift -= 8 {
		body = append(body, byte(cluster>>shift))
	}
	return transport.AppendFrame(nil, body)
}

func parseMuxHello(body []byte) (from, to sim.PartyID, n int, cluster uint64, err error) {
	fail := func(msg string) (sim.PartyID, sim.PartyID, int, uint64, error) {
		return 0, 0, 0, 0, fmt.Errorf("session: bad mux hello: %s", msg)
	}
	if len(body) < 1 || body[0] != transport.FrameMuxHello {
		return fail("not a mux hello")
	}
	b := body[1:]
	if len(b) != 4+1+4+4+4+8 {
		return fail("wrong length")
	}
	if [4]byte(b[:4]) != muxMagic {
		return fail("bad magic")
	}
	if b[4] != muxVersion {
		return fail(fmt.Sprintf("mux version %d, want %d", b[4], muxVersion))
	}
	b = b[5:]
	f, b, _ := wire.ConsumeU32(b)
	t, b, _ := wire.ConsumeU32(b)
	nv, b, _ := wire.ConsumeU32(b)
	if f > wire.MaxIDValue || t > wire.MaxIDValue || nv > wire.MaxIDValue {
		return fail("id out of range")
	}
	for _, x := range b {
		cluster = cluster<<8 | uint64(x)
	}
	return sim.PartyID(f), sim.PartyID(t), int(nv), cluster, nil
}
