package session

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"treeaa/internal/metrics"
	"treeaa/internal/sim"
	"treeaa/internal/transport"
	"treeaa/internal/wire"
)

// The mux hello opens a daemon-pair link:
//
//	FrameMuxHello | magic(4) | mux version(1) | u32(from) | u32(to) |
//	u32(n) | u64(cluster hash, big-endian)
//
// One duplex connection serves each unordered daemon pair — the lower id
// dials — so a 4-daemon cluster runs every session over 6 connections.
// All subsequent frames in both directions are FrameMuxSession envelopes
// around wire session bodies.
//
// Links are generational: when one dies (peer crash, restart, network
// fault) the lower-id side redials with backoff and the higher-id side
// accepts a replacement, bumping the link generation so goroutines of the
// dead incarnation unwind without disturbing the new one. The session
// layer hears onDown/onUp transitions and degrades admission rather than
// the whole daemon.
const muxVersion byte = 1

var muxMagic = [4]byte{'T', 'A', 'A', 'S'}

// mux owns a daemon's peer links: the mesh handshake, one reader per link
// (demultiplexing into the handler), one flusher per link (coalescing
// every session's outbound frames into batched writes), and the redial
// loop that restores links the peer's restart tore down.
type mux struct {
	id      sim.PartyID
	n       int
	addrs   []string
	cluster uint64
	opts    Options
	stats   *metrics.ServeStats

	// handler receives every inbound wire body, still encoded, attributed to
	// its authenticated peer. It runs on the link's reader goroutine and is
	// expected to route data-plane frames without decoding them (zero-copy:
	// transport.ReadFrame allocates a fresh slice per frame, so the handler
	// may retain body). A non-nil error fails the link.
	handler func(from sim.PartyID, body []byte) error
	// onDown reports a dead link (read or write failure after setup).
	onDown func(peer sim.PartyID, err error)
	// onUp reports a link restored after a failure (and the initial mesh).
	onUp func(peer sim.PartyID)

	peers map[sim.PartyID]*peerLink
	ln    net.Listener

	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	flushWG   sync.WaitGroup // the flushers alone, so close can await their final drain

	mu    sync.Mutex
	conns []net.Conn
}

// peerLink is one duplex daemon-pair link: the current connection (one
// generation at a time), and the outbox the flusher drains.
type peerLink struct {
	m    *mux
	peer sim.PartyID

	ready     chan struct{} // closed when the link first comes up
	readyOnce sync.Once

	mu        sync.Mutex
	conn      net.Conn
	br        *bufio.Reader
	gen       int           // incremented per registered connection
	up        bool          // current generation is live
	genQuit   chan struct{} // closed when the current generation dies
	redialing bool          // a redial goroutine is already running

	pending  []byte // concatenated encoded frames awaiting one batched write
	spare    []byte // last flushed batch, recycled to avoid regrowing pending
	frames   int
	kick     chan struct{} // capacity 1: outbox went non-empty
	kickFull chan struct{} // capacity 1: outbox reached the flush threshold
}

func newMux(id sim.PartyID, n int, addrs []string, cluster uint64, opts Options,
	handler func(from sim.PartyID, body []byte) error,
	onDown func(peer sim.PartyID, err error), onUp func(peer sim.PartyID)) *mux {
	m := &mux{
		id: id, n: n, addrs: addrs, cluster: cluster, opts: opts,
		stats: opts.Stats, handler: handler, onDown: onDown, onUp: onUp,
		peers: make(map[sim.PartyID]*peerLink, n-1),
		quit:  make(chan struct{}),
	}
	for p := sim.PartyID(0); int(p) < n; p++ {
		if p == id {
			continue
		}
		m.peers[p] = &peerLink{m: m, peer: p, ready: make(chan struct{}),
			kick: make(chan struct{}, 1), kickFull: make(chan struct{}, 1)}
	}
	return m
}

// start builds the mesh over the given bound listener: accept links from
// lower-id peers, dial higher-id peers, then wait until every link is up.
// On success the per-link readers and flushers are running. Lower-id peers
// of a restarted daemon reach it by their own redial loops, so start
// tolerates them arriving any time within SetupTimeout.
func (m *mux) start(ln net.Listener) error {
	m.ln = ln
	deadline := time.Now().Add(m.opts.SetupTimeout)
	m.wg.Add(1)
	go m.acceptLoop(ln)
	for p := sim.PartyID(0); int(p) < m.n; p++ {
		if p <= m.id {
			continue
		}
		if err := m.dial(p, deadline); err != nil {
			return err
		}
	}
	for p, l := range m.peers {
		select {
		case <-l.ready:
		case <-m.quit:
			return fmt.Errorf("session: daemon %d closed during setup", m.id)
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("session: daemon %d: no link from daemon %d within %v", m.id, p, m.opts.SetupTimeout)
		}
	}
	return nil
}

// dial connects to one higher-id peer and registers the link.
func (m *mux) dial(p sim.PartyID, deadline time.Time) error {
	conn, err := m.opts.Dialer(m.addrs[p], deadline)
	if err != nil {
		return fmt.Errorf("session: daemon %d dialing daemon %d at %s: %w", m.id, p, m.addrs[p], err)
	}
	conn = m.wrap(p, conn)
	m.track(conn)
	hb := encodeMuxHello(m.id, p, m.n, m.cluster)
	conn.SetWriteDeadline(deadline)
	if _, err := conn.Write(hb); err != nil {
		conn.Close()
		return fmt.Errorf("session: daemon %d handshake to daemon %d: %w", m.id, p, err)
	}
	conn.SetWriteDeadline(time.Time{})
	if err := m.register(p, conn, bufio.NewReaderSize(conn, 64<<10), false); err != nil {
		conn.Close()
		return err
	}
	return nil
}

func (m *mux) wrap(peer sim.PartyID, conn net.Conn) net.Conn {
	if m.opts.WrapConn == nil {
		return conn
	}
	// Both ends wrap with themselves as the writer: each side of the duplex
	// link faults its own outbound direction, so a chaos latency clause on
	// (a, b) shapes a→b traffic no matter which end dialed.
	return m.opts.WrapConn(m.id, peer, conn)
}

func (m *mux) track(conn net.Conn) {
	m.mu.Lock()
	m.conns = append(m.conns, conn)
	m.mu.Unlock()
}

func (m *mux) acceptLoop(ln net.Listener) {
	defer m.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by close()
		}
		m.track(conn)
		m.wg.Add(1)
		go m.handshakeIn(conn)
	}
}

// handshakeIn validates an inbound hello and registers the connection as
// the unique link from its claimed (lower-id) peer. A hello for a link that
// is already up replaces it: the only legitimate source of this connection
// is the peer itself, so a duplicate means the peer restarted while our
// half of the old connection is still undead.
func (m *mux) handshakeIn(conn net.Conn) {
	defer m.wg.Done()
	conn.SetReadDeadline(time.Now().Add(m.opts.SetupTimeout))
	br := bufio.NewReaderSize(conn, 64<<10)
	body, err := transport.ReadFrame(br)
	if err != nil {
		conn.Close()
		return
	}
	from, to, n, cluster, err := parseMuxHello(body)
	switch {
	case err != nil:
	case to != m.id:
		err = fmt.Errorf("addressed to daemon %d", to)
	case from >= m.id || from < 0:
		err = fmt.Errorf("daemon %d must be dialed by this side", from)
	case n != m.n:
		err = fmt.Errorf("peer configured for n = %d, want %d", n, m.n)
	case cluster != m.cluster:
		err = fmt.Errorf("cluster %#x, want %#x", cluster, m.cluster)
	}
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	// Re-wrap happens on our side too: the acceptor faults its own writes.
	wrapped := m.wrap(from, conn)
	if wrapped != conn {
		m.track(wrapped)
	}
	if err := m.register(from, wrapped, br, true); err != nil {
		conn.Close()
	}
}

// register installs a connection as the link's next generation and starts
// its reader and flusher. With replace set, a live previous generation is
// torn down first (peer-restart case); without it, a live link rejects the
// duplicate.
func (m *mux) register(peer sim.PartyID, conn net.Conn, br *bufio.Reader, replace bool) error {
	if m.closed() {
		return fmt.Errorf("session: daemon %d is closed", m.id)
	}
	l := m.peers[peer]
	l.mu.Lock()
	if l.up {
		if !replace {
			l.mu.Unlock()
			return fmt.Errorf("session: duplicate link from daemon %d", peer)
		}
		l.markDownLocked()
	}
	l.conn, l.br = conn, br
	l.gen++
	l.up = true
	l.genQuit = make(chan struct{})
	// Frames queued for the dead incarnation are stale: the sessions they
	// belonged to have been failed (or will resend via their own protocol
	// rounds). Carrying them over would interleave two incarnations' traffic.
	l.pending, l.frames = l.pending[:0], 0
	gen, genQuit := l.gen, l.genQuit
	l.mu.Unlock()
	m.wg.Add(2)
	m.flushWG.Add(1)
	go m.readLoop(l, gen, br)
	go m.flushLoop(l, gen, genQuit, conn)
	l.readyOnce.Do(func() { close(l.ready) })
	if m.onUp != nil && !m.closed() {
		m.onUp(peer)
	}
	return nil
}

// markDownLocked retires the current generation: the connection dies, its
// goroutines unwind (flushers via genQuit, readers via the closed socket),
// and queued frames are dropped. Caller holds l.mu.
func (l *peerLink) markDownLocked() {
	if !l.up {
		return
	}
	l.up = false
	close(l.genQuit)
	l.conn.Close()
	l.pending, l.frames = l.pending[:0], 0
}

// linkFailed handles a read or write failure on a specific generation. A
// stale generation (already replaced or already failed) is ignored. The
// lower-id side owns redialing, mirroring the initial mesh direction.
func (m *mux) linkFailed(l *peerLink, gen int, err error) {
	l.mu.Lock()
	if l.gen != gen || !l.up {
		l.mu.Unlock()
		return
	}
	l.markDownLocked()
	redial := l.peer > m.id && !l.redialing && !m.closed()
	if redial {
		l.redialing = true
	}
	l.mu.Unlock()
	if !m.closed() && m.onDown != nil {
		m.onDown(l.peer, err)
	}
	if s := m.stats; s != nil {
		s.LinkDowns.Add(1)
	}
	if redial {
		m.wg.Add(1)
		go m.redialLoop(l)
	}
}

// redialLoop restores a link to a higher-id peer with capped exponential
// backoff, giving up only when the mux closes. A restarting peer rebinds
// its listener late in recovery, so early attempts failing is the norm.
func (m *mux) redialLoop(l *peerLink) {
	defer m.wg.Done()
	defer func() {
		l.mu.Lock()
		l.redialing = false
		l.mu.Unlock()
	}()
	backoff := 25 * time.Millisecond
	for {
		select {
		case <-m.quit:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
		if err := m.dial(l.peer, time.Now().Add(m.opts.SetupTimeout)); err == nil {
			if s := m.stats; s != nil {
				s.LinkRedials.Add(1)
			}
			return
		}
	}
}

// enqueue appends one encoded frame to the peer's outbox. It never blocks:
// the flusher owns the socket, and backpressure is applied per link by the
// flusher's write, never across links. The frame bytes are copied, so
// callers may reuse their encode buffers. Frames for a down link are
// dropped — the session layer has already failed the affected sessions.
func (m *mux) enqueue(to sim.PartyID, frame []byte) {
	l := m.peers[to]
	if l == nil {
		return
	}
	l.mu.Lock()
	if !l.up {
		l.mu.Unlock()
		return
	}
	first := l.frames == 0
	l.pending = append(l.pending, frame...)
	l.frames++
	ready := batchReady(l.frames, len(l.pending), m.opts.FlushOccupancy, m.opts.MaxBatchBytes)
	l.mu.Unlock()
	if ready {
		select {
		case l.kickFull <- struct{}{}:
		default:
		}
	} else if first {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
}

// broadcast enqueues the frame on every peer link.
func (m *mux) broadcast(frame []byte) {
	for p := sim.PartyID(0); int(p) < m.n; p++ {
		if p != m.id {
			m.enqueue(p, frame)
		}
	}
}

// Adaptive flush policy, as pure functions so the table tests can pin the
// decisions without a cluster.
//
// The flusher tracks an EWMA of frames-per-flush. On a quiet link (EWMA
// below the occupancy target) the first queued frame flushes immediately —
// batching would only add latency no batch will ever repay, and immediate
// flushes still batch whatever piled up during the previous write. On a
// busy link the flusher holds the first frame up to FlushInterval, cutting
// the batch short the moment occupancy (frames or bytes) crosses the
// threshold. The loop is self-correcting: a coalescing wait that times out
// with a thin batch drags the EWMA back under the target and the link
// returns to immediate flushing.

// shouldCoalesce reports whether the recent frames-per-flush average makes
// waiting for a fuller batch worthwhile: only when history says a wait
// tends to fill the occupancy target rather than burn the interval.
func shouldCoalesce(ewma float64, occupancy int) bool { return ewma >= float64(occupancy) }

// updateEWMA folds one flush's frame count into the running average
// (quarter-weight on the new sample; empty flushes carry no signal).
func updateEWMA(prev float64, frames int) float64 {
	if frames <= 0 {
		return prev
	}
	if prev == 0 {
		return float64(frames)
	}
	return 0.75*prev + 0.25*float64(frames)
}

// batchReady reports whether the outbox has hit either flush threshold.
func batchReady(frames, bytes, occupancy, maxBytes int) bool {
	return frames >= occupancy || bytes >= maxBytes
}

// flushLoop coalesces a link's outbox into one conn.Write per wakeup,
// pacing itself by the adaptive policy above. kick wakes it when the outbox
// goes non-empty; kickFull cuts a coalescing wait short the moment the
// occupancy threshold is hit. Stale kicks (the frames they announced were
// already flushed) cost one no-op flush and are otherwise harmless, so the
// loop never tries to drain them. One flusher runs per link generation;
// genQuit retires it when the generation dies.
func (m *mux) flushLoop(l *peerLink, gen int, genQuit chan struct{}, conn net.Conn) {
	defer m.wg.Done()
	defer m.flushWG.Done()
	timer := time.NewTimer(m.opts.FlushInterval)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var ewma float64
	for {
		select {
		case <-l.kick:
			if shouldCoalesce(ewma, m.opts.FlushOccupancy) {
				// Busy link: hold for a fuller batch, up to FlushInterval.
				timer.Reset(m.opts.FlushInterval)
				select {
				case <-l.kickFull:
					if !timer.Stop() {
						<-timer.C
					}
					if s := m.stats; s != nil {
						s.BatchesCoalesced.Add(1)
					}
				case <-timer.C:
				case <-genQuit:
					return
				case <-m.quit:
					l.flush(gen, conn)
					return
				}
			}
		case <-l.kickFull:
			if s := m.stats; s != nil {
				s.BatchesCoalesced.Add(1)
			}
		case <-genQuit:
			return
		case <-m.quit:
			l.flush(gen, conn) // best-effort final drain so queued decides reach peers
			return
		}
		n, stale, err := l.flush(gen, conn)
		if stale {
			// A replacement generation owns the outbox now; hand it any kick
			// this loop consumed so its flusher wakes, then retire.
			select {
			case l.kick <- struct{}{}:
			default:
			}
			return
		}
		if err != nil {
			m.linkFailed(l, gen, fmt.Errorf("session: link %d→%d: %w", m.id, l.peer, err))
			return
		}
		ewma = updateEWMA(ewma, n)
	}
}

// flush writes the outbox in one syscall and reports how many frames it
// carried. The flushed buffer is recycled as the next pending buffer, so a
// steady-state link reuses two batch buffers forever. A stale generation's
// flush is a silent no-op: the outbox now belongs to the replacement.
func (l *peerLink) flush(gen int, conn net.Conn) (n int, stale bool, err error) {
	l.mu.Lock()
	if l.gen != gen {
		l.mu.Unlock()
		return 0, true, nil
	}
	batch, frames := l.pending, l.frames
	l.pending, l.frames = l.spare[:0], 0
	l.spare = nil
	l.mu.Unlock()
	if frames == 0 {
		l.recycle(batch)
		return 0, false, nil
	}
	conn.SetWriteDeadline(time.Now().Add(l.m.opts.RoundTimeout))
	if _, err := conn.Write(batch); err != nil {
		return 0, false, err
	}
	if s := l.m.stats; s != nil {
		s.Batches.Add(1)
		s.BatchFrames.Add(int64(frames))
		s.BatchBytes.Add(int64(len(batch)))
	}
	l.recycle(batch)
	return frames, false, nil
}

func (l *peerLink) recycle(batch []byte) {
	l.mu.Lock()
	if l.spare == nil {
		l.spare = batch[:0]
	}
	l.mu.Unlock()
}

// readLoop turns one link generation into handler calls. No read deadline:
// an idle link is healthy (no sessions in flight), and per-session liveness
// is the engines' round timeout.
func (m *mux) readLoop(l *peerLink, gen int, br *bufio.Reader) {
	defer m.wg.Done()
	var arena transport.ReadArena
	fail := func(err error) {
		if !m.closed() {
			m.linkFailed(l, gen, err)
		}
	}
	for {
		body, err := transport.ReadFrameArena(br, &arena)
		if err != nil {
			fail(fmt.Errorf("session: link %d→%d: %w", l.peer, m.id, err))
			return
		}
		if body[0] != transport.FrameMuxSession {
			fail(fmt.Errorf("session: link %d→%d: unexpected frame type 0x%02x", l.peer, m.id, body[0]))
			return
		}
		// The wire body is handed over still encoded; the handler routes it
		// to the owning shard by the peeked session id and the shard's worker
		// decodes it there, off this link's critical path.
		if err := m.handler(l.peer, body[1:]); err != nil {
			fail(fmt.Errorf("session: link %d→%d: %w", l.peer, m.id, err))
			return
		}
	}
}

func (m *mux) closed() bool {
	select {
	case <-m.quit:
		return true
	default:
		return false
	}
}

// close tears the mux down gracefully: final flushes are triggered by quit,
// then the sockets die and every loop exits. Safe to call more than once.
func (m *mux) close() { m.shutdown(false) }

// kill tears the mux down abruptly — sockets first, no final flush — the
// in-process stand-in for the process dying under kill -9. Peers observe
// exactly what a crash gives them: connections reset mid-stream.
func (m *mux) kill() { m.shutdown(true) }

func (m *mux) shutdown(abrupt bool) {
	m.closeOnce.Do(func() {
		if abrupt {
			// Sockets die before quit: flushers wake to dead connections and
			// queued frames are lost, as they would be in a real crash.
			m.closeConns()
			close(m.quit)
		} else {
			close(m.quit)
			// Wait for every flusher's final drain before the sockets close
			// under them: decides queued by terminal engines must hit the wire,
			// or a peer mid-assembly loses them and hangs until its drain
			// deadline. The writes are bounded by the usual write deadline, so
			// this cannot block shutdown indefinitely.
			m.flushWG.Wait()
			m.closeConns()
		}
	})
	m.wg.Wait()
}

func (m *mux) closeConns() {
	if m.ln != nil {
		m.ln.Close()
	}
	m.mu.Lock()
	conns := m.conns
	m.conns = nil
	m.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// appendSessionFrame appends one mux session frame — the length-prefixed
// FrameMuxSession envelope around the payload's wire encoding — to dst and
// returns the extended slice, byte-identical to transport.AppendFrame over
// the assembled body but without the intermediate body allocation. enqueue
// copies, so callers (the engines' hot path) reuse one scratch buffer.
func appendSessionFrame(dst []byte, payload any) ([]byte, error) {
	sz, err := wire.EncodedSize(payload)
	if err != nil {
		return nil, err
	}
	dst = wire.AppendUvarint(dst, uint64(sz+1))
	dst = append(dst, transport.FrameMuxSession)
	return wire.Append(dst, payload)
}

// sessionFrame is appendSessionFrame into a fresh slice: one frame, ready
// for enqueue. The returned slice is immutable by convention — broadcasts
// share it across links.
func sessionFrame(payload any) ([]byte, error) {
	return appendSessionFrame(nil, payload)
}

func encodeMuxHello(from, to sim.PartyID, n int, cluster uint64) []byte {
	body := make([]byte, 0, 26)
	body = append(body, transport.FrameMuxHello)
	body = append(body, muxMagic[:]...)
	body = append(body, muxVersion)
	body = wire.AppendU32(body, uint32(from))
	body = wire.AppendU32(body, uint32(to))
	body = wire.AppendU32(body, uint32(n))
	for shift := 56; shift >= 0; shift -= 8 {
		body = append(body, byte(cluster>>shift))
	}
	return transport.AppendFrame(nil, body)
}

func parseMuxHello(body []byte) (from, to sim.PartyID, n int, cluster uint64, err error) {
	fail := func(msg string) (sim.PartyID, sim.PartyID, int, uint64, error) {
		return 0, 0, 0, 0, fmt.Errorf("session: bad mux hello: %s", msg)
	}
	if len(body) < 1 || body[0] != transport.FrameMuxHello {
		return fail("not a mux hello")
	}
	b := body[1:]
	if len(b) != 4+1+4+4+4+8 {
		return fail("wrong length")
	}
	if [4]byte(b[:4]) != muxMagic {
		return fail("bad magic")
	}
	if b[4] != muxVersion {
		return fail(fmt.Sprintf("mux version %d, want %d", b[4], muxVersion))
	}
	b = b[5:]
	f, b, _ := wire.ConsumeU32(b)
	t, b, _ := wire.ConsumeU32(b)
	nv, b, _ := wire.ConsumeU32(b)
	if f > wire.MaxIDValue || t > wire.MaxIDValue || nv > wire.MaxIDValue {
		return fail("id out of range")
	}
	for _, x := range b {
		cluster = cluster<<8 | uint64(x)
	}
	return sim.PartyID(f), sim.PartyID(t), int(nv), cluster, nil
}
