package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeneratorShapes(t *testing.T) {
	tests := []struct {
		name     string
		tr       *Tree
		vertices int
		diameter int
	}{
		{"path1", NewPath(1), 1, 0},
		{"path2", NewPath(2), 2, 1},
		{"path100", NewPath(100), 100, 99},
		{"star1", NewStar(1), 1, 0},
		{"star2", NewStar(2), 2, 1},
		{"star50", NewStar(50), 50, 2},
		{"spider 4x3", NewSpider(4, 3), 13, 6},
		{"spider 1x5", NewSpider(1, 5), 6, 5},
		{"caterpillar 5x2", NewCaterpillar(5, 2), 15, 6},
		{"binary depth0", NewCompleteKAry(2, 0), 1, 0},
		{"binary depth4", NewCompleteKAry(2, 4), 31, 8},
		{"ternary depth2", NewCompleteKAry(3, 2), 13, 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.tr.NumVertices(); got != tc.vertices {
				t.Errorf("vertices = %d, want %d", got, tc.vertices)
			}
			if got, _, _ := tc.tr.Diameter(); got != tc.diameter {
				t.Errorf("diameter = %d, want %d", got, tc.diameter)
			}
		})
	}
}

func TestCaterpillarDegrees(t *testing.T) {
	tr := NewCaterpillar(4, 3)
	// Interior spine vertices: 2 spine neighbors + 3 legs = 5.
	deg5 := 0
	for v := 0; v < tr.NumVertices(); v++ {
		if tr.Degree(VertexID(v)) == 5 {
			deg5++
		}
	}
	if deg5 != 2 {
		t.Errorf("interior spine vertices = %d, want 2", deg5)
	}
}

func TestNewRandomDeterministic(t *testing.T) {
	a := NewRandom(40, rand.New(rand.NewSource(3)))
	b := NewRandom(40, rand.New(rand.NewSource(3)))
	if !a.Equal(b) {
		t.Error("same seed should generate identical trees")
	}
	c := NewRandom(40, rand.New(rand.NewSource(4)))
	if a.Equal(c) {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestFromPrueferKnown(t *testing.T) {
	// Sequence (4,4,4,5) on n=6: star-ish tree where 4 has degree 4.
	tr, err := FromPruefer([]int{4, 4, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumVertices() != 6 {
		t.Fatalf("vertices = %d, want 6", tr.NumVertices())
	}
	if got := tr.Degree(tr.MustVertex("v4")); got != 4 {
		t.Errorf("degree(v4) = %d, want 4", got)
	}
}

func TestFromPrueferRange(t *testing.T) {
	if _, err := FromPruefer([]int{0}); err == nil {
		t.Error("entry 0 should fail")
	}
	if _, err := FromPruefer([]int{4}); err == nil {
		t.Error("entry beyond n should fail")
	}
}

// TestPrueferRoundTrip is the core property test: decode∘encode = id for
// random sequences, via testing/quick.
func TestPrueferRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	f := func(rawLen uint8) bool {
		n := 3 + int(rawLen)%60
		seq := make([]int, n-2)
		for i := range seq {
			seq[i] = rng.Intn(n) + 1
		}
		tr, err := FromPruefer(seq)
		if err != nil {
			return false
		}
		got := tr.Pruefer()
		if len(got) != len(seq) {
			return false
		}
		for i := range got {
			if got[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrueferSmall(t *testing.T) {
	if got := NewPath(2).Pruefer(); len(got) != 0 {
		t.Errorf("Pruefer of 2-vertex tree = %v, want empty", got)
	}
	if got := NewPath(1).Pruefer(); len(got) != 0 {
		t.Errorf("Pruefer of 1-vertex tree = %v, want empty", got)
	}
}

func TestRandomPrueferValid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(50)
		tr := RandomPruefer(n, rng)
		if tr.NumVertices() != n {
			t.Fatalf("trial %d: vertices = %d, want %d", trial, tr.NumVertices(), n)
		}
	}
}

func TestLabelOrderIsNumeric(t *testing.T) {
	tr := NewPath(120)
	// Zero-padding must make label order == numeric order, so vertex 0 is v001.
	if got := tr.Label(0); got != "v001" {
		t.Errorf("Label(0) = %q, want v001", got)
	}
	if got := tr.Label(119); got != "v120" {
		t.Errorf("Label(119) = %q, want v120", got)
	}
	// Path structure: vertex i adjacent to i+1.
	for i := 0; i+1 < 120; i++ {
		if !tr.Adjacent(VertexID(i), VertexID(i+1)) {
			t.Fatalf("path vertices %d,%d not adjacent", i, i+1)
		}
	}
}

// TestSubtreeCenterProperties: the center of a convex set lies inside the
// set and minimizes the maximum distance (within the set) to its members.
func TestSubtreeCenterProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		tr := RandomPruefer(2+rng.Intn(30), rng)
		// A random convex set: the hull of a few random vertices.
		k := 1 + rng.Intn(4)
		seeds := make([]VertexID, k)
		for i := range seeds {
			seeds[i] = VertexID(rng.Intn(tr.NumVertices()))
		}
		s := tr.ConvexHull(seeds)
		c := SubtreeCenter(tr, s)
		inS := false
		for _, v := range s {
			if v == c {
				inS = true
				break
			}
		}
		if !inS {
			t.Fatalf("trial %d: center %s outside its set %v", trial, tr.Label(c), tr.Labels(s))
		}
		// Center eccentricity within the set must be minimal.
		ecc := func(u VertexID) int {
			worst := 0
			for _, v := range s {
				if d := tr.Dist(u, v); d > worst {
					worst = d
				}
			}
			return worst
		}
		cEcc := ecc(c)
		for _, v := range s {
			if e := ecc(v); e < cEcc {
				t.Fatalf("trial %d: center ecc %d > vertex %s ecc %d", trial, cEcc, tr.Label(v), e)
			}
		}
	}
}
