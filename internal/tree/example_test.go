package tree_test

import (
	"fmt"
	"strings"

	"treeaa/internal/tree"
)

// ExampleListConstruction reproduces the paper's Figure 3: the DFS visit
// list of the 8-vertex example tree rooted at v1.
func ExampleListConstruction() {
	tr := tree.Figure3Tree()
	l, err := tree.ListConstruction(tr, tr.Root())
	if err != nil {
		panic(err)
	}
	fmt.Println(strings.Join(tr.Labels(l.Sequence()), " "))
	fmt.Println("L(v3) =", l.Occurrences(tr.MustVertex("v3")))
	// Output:
	// v1 v2 v3 v6 v3 v7 v3 v2 v4 v8 v4 v2 v5 v2 v1
	// L(v3) = [3 5 7]
}

// ExampleTree_ConvexHull computes the smallest subtree spanning a set of
// vertices — the Validity region of Approximate Agreement on trees.
func ExampleTree_ConvexHull() {
	tr := tree.Figure3Tree()
	s := []tree.VertexID{tr.MustVertex("v6"), tr.MustVertex("v5")}
	fmt.Println(tr.Labels(tr.ConvexHull(s)))
	// Output: [v2 v3 v5 v6]
}

// ExampleTree_ProjectOntoPath projects a vertex onto a path, the Section 5
// reduction step.
func ExampleTree_ProjectOntoPath() {
	tr := tree.Figure3Tree()
	path := tr.Path(tr.MustVertex("v1"), tr.MustVertex("v6")) // v1 v2 v3 v6
	idx, proj := tr.ProjectOntoPath(path, tr.MustVertex("v8"))
	fmt.Printf("proj(v8) = %s at position %d\n", tr.Label(proj), idx+1)
	// Output: proj(v8) = v2 at position 2
}

// ExampleParse builds a tree from the textual edge-list format.
func ExampleParse() {
	tr, err := tree.ParseString("hub - left\nhub - right\n")
	if err != nil {
		panic(err)
	}
	d, a, b := tr.Diameter()
	fmt.Printf("|V|=%d D=%d between %s and %s\n", tr.NumVertices(), d, tr.Label(a), tr.Label(b))
	// Output: |V|=3 D=2 between left and right
}
