package tree

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// labelWidth returns the number of digits needed so that zero-padded numeric
// labels sort lexicographically in numeric order.
func labelWidth(n int) int {
	w := 1
	for p := 10; p <= n; p *= 10 {
		w++
	}
	return w
}

// numLabel formats i as a zero-padded label ("v007") so that lexicographic
// label order matches numeric order, keeping generated trees intuitive.
func numLabel(i, width int) string {
	return fmt.Sprintf("v%0*d", width, i)
}

func mustBuild(b *Builder) *Tree {
	t, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("tree: generator produced invalid tree: %v", err))
	}
	return t
}

// NewPath returns the labeled path with n >= 1 vertices v1-v2-...-vn
// (zero-padded labels). Its diameter is n-1.
func NewPath(n int) *Tree {
	var b Builder
	w := labelWidth(n)
	b.AddVertex(numLabel(1, w))
	for i := 2; i <= n; i++ {
		b.AddEdge(numLabel(i-1, w), numLabel(i, w))
	}
	return mustBuild(&b)
}

// NewStar returns the star with one center and n-1 leaves (n >= 1 vertices).
// Its diameter is min(2, n-1).
func NewStar(n int) *Tree {
	var b Builder
	w := labelWidth(n)
	b.AddVertex(numLabel(1, w))
	for i := 2; i <= n; i++ {
		b.AddEdge(numLabel(1, w), numLabel(i, w))
	}
	return mustBuild(&b)
}

// NewSpider returns a spider: legs paths of length legLen joined at a hub.
// It has legs*legLen + 1 vertices and diameter 2*legLen (for legs >= 2).
func NewSpider(legs, legLen int) *Tree {
	var b Builder
	n := legs*legLen + 1
	w := labelWidth(n)
	b.AddVertex(numLabel(1, w))
	next := 2
	for leg := 0; leg < legs; leg++ {
		prev := 1
		for j := 0; j < legLen; j++ {
			b.AddEdge(numLabel(prev, w), numLabel(next, w))
			prev = next
			next++
		}
	}
	return mustBuild(&b)
}

// NewCaterpillar returns a caterpillar: a spine path of spineLen vertices
// with legsPer leaf legs attached to each spine vertex.
func NewCaterpillar(spineLen, legsPer int) *Tree {
	var b Builder
	n := spineLen * (1 + legsPer)
	w := labelWidth(n)
	b.AddVertex(numLabel(1, w))
	next := spineLen + 1
	for i := 2; i <= spineLen; i++ {
		b.AddEdge(numLabel(i-1, w), numLabel(i, w))
	}
	for i := 1; i <= spineLen; i++ {
		for j := 0; j < legsPer; j++ {
			b.AddEdge(numLabel(i, w), numLabel(next, w))
			next++
		}
	}
	return mustBuild(&b)
}

// NewCompleteKAry returns the complete k-ary tree of the given depth
// (depth 0 is a single root). For k >= 2 its diameter is 2*depth while
// |V| = (k^(depth+1)-1)/(k-1), making it the canonical low-diameter family.
func NewCompleteKAry(k, depth int) *Tree {
	if k < 1 {
		panic("tree: NewCompleteKAry requires k >= 1")
	}
	n := 1
	width := 1
	for d := 0; d < depth; d++ {
		width *= k
		n += width
	}
	var b Builder
	w := labelWidth(n)
	b.AddVertex(numLabel(1, w))
	next := 2
	frontier := []int{1}
	for d := 0; d < depth; d++ {
		var newFrontier []int
		for _, p := range frontier {
			for c := 0; c < k; c++ {
				b.AddEdge(numLabel(p, w), numLabel(next, w))
				newFrontier = append(newFrontier, next)
				next++
			}
		}
		frontier = newFrontier
	}
	return mustBuild(&b)
}

// NewRandom returns a random tree on n vertices drawn by uniform random
// attachment: vertex i attaches to a uniformly random earlier vertex. The
// rng makes generation reproducible.
func NewRandom(n int, rng *rand.Rand) *Tree {
	var b Builder
	w := labelWidth(n)
	b.AddVertex(numLabel(1, w))
	for i := 2; i <= n; i++ {
		p := rng.Intn(i-1) + 1
		b.AddEdge(numLabel(p, w), numLabel(i, w))
	}
	return mustBuild(&b)
}

// FromPruefer decodes a Prüfer sequence into the unique labeled tree on
// n = len(seq)+2 vertices with zero-padded numeric labels; entries must be in
// [1, n]. Prüfer decoding is the classic bijection between sequences and
// labeled trees, which the tests use to sample trees uniformly at random.
func FromPruefer(seq []int) (*Tree, error) {
	n := len(seq) + 2
	degree := make([]int, n+1)
	for i := 1; i <= n; i++ {
		degree[i] = 1
	}
	for _, s := range seq {
		if s < 1 || s > n {
			return nil, fmt.Errorf("tree: prüfer entry %d out of range [1,%d]", s, n)
		}
		degree[s]++
	}
	var b Builder
	w := labelWidth(n)
	// ptr/leaf scan gives O(n) decoding.
	ptr := 1
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, s := range seq {
		b.AddEdge(numLabel(leaf, w), numLabel(s, w))
		degree[s]--
		if degree[s] == 1 && s < ptr {
			leaf = s
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	// Two leaves remain; the larger is n.
	b.AddEdge(numLabel(leaf, w), numLabel(n, w))
	return b.Build()
}

// RandomPruefer returns a uniformly random labeled tree on n >= 2 vertices.
func RandomPruefer(n int, rng *rand.Rand) *Tree {
	if n == 1 {
		var b Builder
		b.AddVertex("v1")
		return mustBuild(&b)
	}
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = rng.Intn(n) + 1
	}
	t, err := FromPruefer(seq)
	if err != nil {
		panic(err) // unreachable: entries are in range by construction
	}
	return t
}

// Pruefer encodes the tree as its Prüfer sequence, assuming the vertex
// numbering implied by ascending label order (VertexID+1). It is the inverse
// of FromPruefer for trees with zero-padded numeric labels. It repeatedly
// removes the smallest-labeled leaf (min-heap), recording the leaf's
// neighbor, which is the textbook definition.
func (t *Tree) Pruefer() []int {
	n := t.NumVertices()
	if n <= 2 {
		return nil
	}
	degree := make([]int, n)
	leaves := &intHeap{}
	for v := 0; v < n; v++ {
		degree[v] = t.Degree(VertexID(v))
		if degree[v] == 1 {
			heap.Push(leaves, v)
		}
	}
	removed := make([]bool, n)
	seq := make([]int, 0, n-2)
	for len(seq) < n-2 {
		leaf := heap.Pop(leaves).(int)
		removed[leaf] = true
		var nb VertexID = None
		for _, w := range t.Neighbors(VertexID(leaf)) {
			if !removed[w] {
				nb = w
				break
			}
		}
		seq = append(seq, int(nb)+1)
		degree[nb]--
		if degree[nb] == 1 {
			heap.Push(leaves, int(nb))
		}
	}
	return seq
}

// intHeap is a min-heap of ints for Pruefer encoding.
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Figure3Tree returns the 8-vertex tree of the paper's Figure 3, used across
// tests and examples: v1-v2, v2-{v3,v4,v5}, v3-{v6,v7}, v4-v8.
func Figure3Tree() *Tree {
	var b Builder
	for _, e := range [][2]string{
		{"v1", "v2"}, {"v2", "v3"}, {"v2", "v4"}, {"v2", "v5"},
		{"v3", "v6"}, {"v3", "v7"}, {"v4", "v8"},
	} {
		b.AddEdge(e[0], e[1])
	}
	return mustBuild(&b)
}
