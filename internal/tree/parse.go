package tree

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Parse reads a tree from the plain-text edge-list format:
//
//	# comment lines and blank lines are ignored
//	a - b
//	b - c
//
// A single-vertex tree is written as one line holding just the label.
// Whitespace around labels is trimmed; labels may not contain '-' or
// whitespace.
func Parse(r io.Reader) (*Tree, error) {
	var b Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "-")
		switch len(parts) {
		case 1:
			b.AddVertex(strings.TrimSpace(parts[0]))
		case 2:
			u, v := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
			if u == "" || v == "" {
				return nil, fmt.Errorf("tree: line %d: empty label in edge %q", lineNo, line)
			}
			b.AddEdge(u, v)
		default:
			return nil, fmt.Errorf("tree: line %d: expected \"a - b\", got %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tree: reading input: %w", err)
	}
	return b.Build()
}

// ParseString is Parse over an in-memory string.
func ParseString(s string) (*Tree, error) { return Parse(strings.NewReader(s)) }

// WriteTo writes the tree in the edge-list format understood by Parse.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	var total int64
	if t.NumVertices() == 1 {
		n, err := fmt.Fprintln(w, t.Label(0))
		return int64(n), err
	}
	for _, e := range t.Edges() {
		n, err := fmt.Fprintf(w, "%s - %s\n", t.Label(e[0]), t.Label(e[1]))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the edge list as a single string.
func (t *Tree) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return fmt.Sprintf("<tree: %v>", err)
	}
	return sb.String()
}

// treeJSON is the stable wire representation used by MarshalJSON.
type treeJSON struct {
	Vertices []string    `json:"vertices"`
	Edges    [][2]string `json:"edges"`
}

// MarshalJSON encodes the tree as {"vertices": [...], "edges": [[a,b],...]}.
func (t *Tree) MarshalJSON() ([]byte, error) {
	doc := treeJSON{Vertices: make([]string, t.NumVertices())}
	copy(doc.Vertices, t.labels)
	for _, e := range t.Edges() {
		doc.Edges = append(doc.Edges, [2]string{t.Label(e[0]), t.Label(e[1])})
	}
	return json.Marshal(doc)
}

// UnmarshalJSON decodes the representation produced by MarshalJSON,
// validating tree-ness.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var doc treeJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("tree: decoding JSON: %w", err)
	}
	var b Builder
	for _, v := range doc.Vertices {
		b.AddVertex(v)
	}
	for _, e := range doc.Edges {
		if !b.seen[e[0]] || !b.seen[e[1]] {
			return fmt.Errorf("%w: edge %q-%q references undeclared vertex", ErrUnknownVertex, e[0], e[1])
		}
		b.edges = append(b.edges, e)
	}
	built, err := b.Build()
	if err != nil {
		return err
	}
	*t = *built
	return nil
}

// Equal reports whether two trees have identical labeled vertex and edge
// sets.
func (t *Tree) Equal(o *Tree) bool {
	if t.NumVertices() != o.NumVertices() {
		return false
	}
	for i, l := range t.labels {
		if o.labels[i] != l {
			return false
		}
	}
	te, oe := t.Edges(), o.Edges()
	if len(te) != len(oe) {
		return false
	}
	for i := range te {
		if te[i] != oe[i] {
			return false
		}
	}
	return true
}

// SortedLabels returns all labels in lexicographic order (a copy).
func (t *Tree) SortedLabels() []string {
	out := make([]string, len(t.labels))
	copy(out, t.labels)
	sort.Strings(out) // already sorted by construction; kept for safety
	return out
}
