package tree

// SubtreeCenter returns the center of a convex vertex set s (a subtree):
// the midpoint of its diameter path. Ties resolve to the lower VertexID so
// all parties agree on identical inputs.
func SubtreeCenter(t *Tree, s []VertexID) VertexID {
	inS := make(map[VertexID]bool, len(s))
	for _, v := range s {
		inS[v] = true
	}
	a := farthestWithin(t, inS, s[0])
	b := farthestWithin(t, inS, a)
	p := t.Path(a, b)
	c1 := p[(len(p)-1)/2]
	c2 := p[len(p)/2]
	if c2 < c1 {
		return c2
	}
	return c1
}

// farthestWithin returns the vertex of s farthest from src by BFS restricted
// to s (valid because convex sets are connected and path-closed). Ties
// resolve to the lowest VertexID.
func farthestWithin(t *Tree, inS map[VertexID]bool, src VertexID) VertexID {
	type item struct {
		v VertexID
		d int
	}
	visited := map[VertexID]bool{src: true}
	queue := []item{{src, 0}}
	best := item{src, 0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d > best.d || (cur.d == best.d && cur.v < best.v) {
			best = cur
		}
		for _, w := range t.Neighbors(cur.v) {
			if inS[w] && !visited[w] {
				visited[w] = true
				queue = append(queue, item{w, cur.d + 1})
			}
		}
	}
	return best.v
}
