package tree

import (
	"math/rand"
	"testing"
)

// TestFigure1ConvexHull reproduces the paper's Figure 1: the convex hull of
// {u1, u2, u3} is {u1, u2, u3, u4, u5}. We build a tree realizing the figure:
// u1-u4, u4-u5, u5-u2, u5-u3, plus outside vertices hanging off.
func TestFigure1ConvexHull(t *testing.T) {
	var b Builder
	for _, e := range [][2]string{
		{"u1", "u4"}, {"u4", "u5"}, {"u5", "u2"}, {"u5", "u3"},
		{"u4", "x1"}, {"u1", "x2"}, {"u2", "x3"}, {"x3", "x4"},
	} {
		b.AddEdge(e[0], e[1])
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := []VertexID{tr.MustVertex("u1"), tr.MustVertex("u2"), tr.MustVertex("u3")}
	hull := tr.ConvexHull(s)
	want := map[string]bool{"u1": true, "u2": true, "u3": true, "u4": true, "u5": true}
	if len(hull) != len(want) {
		t.Fatalf("hull = %v, want %v", tr.Labels(hull), want)
	}
	for _, v := range hull {
		if !want[tr.Label(v)] {
			t.Errorf("hull contains unexpected %s", tr.Label(v))
		}
	}
}

// bruteHull computes ⟨S⟩ via the definition: w ∈ ⟨S⟩ iff w lies on P(u,v)
// for some u, v ∈ S.
func bruteHull(tr *Tree, s []VertexID) map[VertexID]bool {
	hull := make(map[VertexID]bool)
	for _, u := range s {
		for _, v := range s {
			for _, w := range tr.Path(u, v) {
				hull[w] = true
			}
		}
	}
	return hull
}

func TestConvexHullMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		tr := RandomPruefer(2+rng.Intn(25), rng)
		k := 1 + rng.Intn(5)
		s := make([]VertexID, k)
		for i := range s {
			s[i] = VertexID(rng.Intn(tr.NumVertices()))
		}
		want := bruteHull(tr, s)
		got := tr.ConvexHull(s)
		if len(got) != len(want) {
			t.Fatalf("trial %d: hull size %d, want %d (S=%v)\n%s",
				trial, len(got), len(want), tr.Labels(s), tr)
		}
		for _, v := range got {
			if !want[v] {
				t.Fatalf("trial %d: hull contains %s not in brute force", trial, tr.Label(v))
			}
		}
	}
}

func TestConvexHullEdgeCases(t *testing.T) {
	tr := Figure3Tree()
	if got := tr.ConvexHull(nil); got != nil {
		t.Errorf("hull(∅) = %v, want nil", got)
	}
	v5 := tr.MustVertex("v5")
	if got := tr.ConvexHull([]VertexID{v5}); len(got) != 1 || got[0] != v5 {
		t.Errorf("hull({v5}) = %v, want [v5]", tr.Labels(got))
	}
	// Duplicates behave as a set.
	got := tr.ConvexHull([]VertexID{v5, v5, v5})
	if len(got) != 1 || got[0] != v5 {
		t.Errorf("hull({v5,v5,v5}) = %v, want [v5]", tr.Labels(got))
	}
}

func TestInHull(t *testing.T) {
	tr := Figure3Tree()
	s := []VertexID{tr.MustVertex("v6"), tr.MustVertex("v5")}
	// Hull of {v6, v5} = {v6, v3, v2, v5}.
	for _, lbl := range []string{"v6", "v3", "v2", "v5"} {
		if !tr.InHull(s, tr.MustVertex(lbl)) {
			t.Errorf("InHull(%s) = false, want true", lbl)
		}
	}
	for _, lbl := range []string{"v1", "v4", "v7", "v8"} {
		if tr.InHull(s, tr.MustVertex(lbl)) {
			t.Errorf("InHull(%s) = true, want false", lbl)
		}
	}
}

// bruteSafeArea checks membership over all ways to discard exactly f
// elements (discarding fewer only shrinks hulls, so discarding exactly f
// of a larger multiset dominates... we enumerate all subsets of size
// len(m)-f and intersect their hulls, the definition).
func bruteSafeArea(tr *Tree, m []VertexID, f int) map[VertexID]bool {
	n := len(m)
	keep := n - f
	if keep <= 0 {
		return nil
	}
	safe := make(map[VertexID]bool)
	for v := 0; v < tr.NumVertices(); v++ {
		safe[VertexID(v)] = true
	}
	idx := make([]int, keep)
	var rec func(start, k int)
	var subset []VertexID
	rec = func(start, k int) {
		if k == keep {
			subset = subset[:0]
			for _, i := range idx {
				subset = append(subset, m[i])
			}
			hull := make(map[VertexID]bool)
			for _, v := range tr.ConvexHull(subset) {
				hull[v] = true
			}
			for v := range safe {
				if !hull[v] {
					delete(safe, v)
				}
			}
			return
		}
		for i := start; i <= n-(keep-k); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return safe
}

func TestSafeAreaMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		tr := RandomPruefer(2+rng.Intn(12), rng)
		mLen := 4 + rng.Intn(4) // multiset of 4..7 vertices (with repeats)
		m := make([]VertexID, mLen)
		for i := range m {
			m[i] = VertexID(rng.Intn(tr.NumVertices()))
		}
		f := rng.Intn(mLen) // discard budget 0..mLen-1
		want := bruteSafeArea(tr, m, f)
		got := tr.SafeArea(m, f)
		if len(got) != len(want) {
			t.Fatalf("trial %d: safe area %v, want %d vertices (m=%v f=%d)\n%s",
				trial, tr.Labels(got), len(want), tr.Labels(m), f, tr)
		}
		for _, v := range got {
			if !want[v] {
				t.Fatalf("trial %d: safe area has %s not in brute force", trial, tr.Label(v))
			}
		}
	}
}

func TestSafeAreaDegenerate(t *testing.T) {
	tr := Figure3Tree()
	v := tr.MustVertex("v5")
	if got := tr.SafeArea(nil, 0); got != nil {
		t.Errorf("SafeArea(∅) = %v", got)
	}
	if got := tr.SafeArea([]VertexID{v, v}, 2); got != nil {
		t.Errorf("SafeArea with f >= len(m) = %v, want nil", got)
	}
	// With no faults, safe area == hull.
	m := []VertexID{tr.MustVertex("v6"), tr.MustVertex("v5")}
	got := tr.SafeArea(m, 0)
	hull := tr.ConvexHull(m)
	if len(got) != len(hull) {
		t.Fatalf("SafeArea(f=0) = %v, want hull %v", tr.Labels(got), tr.Labels(hull))
	}
	for i := range got {
		if got[i] != hull[i] {
			t.Errorf("SafeArea(f=0)[%d] = %s, want %s", i, tr.Label(got[i]), tr.Label(hull[i]))
		}
	}
}

func TestSafeAreaNonEmptyUnderByzantineBound(t *testing.T) {
	// With n parties, f < n/3, and any multiset of n values, the safe area
	// must be non-empty: this is the liveness fact the baseline protocol
	// relies on.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		tr := RandomPruefer(2+rng.Intn(15), rng)
		n := 4 + rng.Intn(9)
		f := (n - 1) / 3
		m := make([]VertexID, n)
		for i := range m {
			m[i] = VertexID(rng.Intn(tr.NumVertices()))
		}
		if got := tr.SafeArea(m, f); len(got) == 0 {
			t.Fatalf("trial %d: empty safe area for n=%d f=%d m=%v\n%s",
				trial, n, f, tr.Labels(m), tr)
		}
	}
}

func TestInducedSubtree(t *testing.T) {
	tr := Figure3Tree()
	hull := tr.ConvexHull([]VertexID{tr.MustVertex("v6"), tr.MustVertex("v5")})
	sub, err := tr.InducedSubtree(hull)
	if err != nil {
		t.Fatalf("InducedSubtree: %v", err)
	}
	if sub.NumVertices() != len(hull) {
		t.Errorf("subtree has %d vertices, want %d", sub.NumVertices(), len(hull))
	}
	if _, err := sub.VertexByLabel("v3"); err != nil {
		t.Errorf("subtree missing v3: %v", err)
	}
	if _, err := tr.InducedSubtree([]VertexID{tr.MustVertex("v1"), tr.MustVertex("v8")}); err == nil {
		t.Error("disconnected induced set should fail")
	}
}
