package tree

import (
	"math/rand"
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that every
// successfully parsed tree round-trips through its own serialization.
func FuzzParse(f *testing.F) {
	f.Add("a - b\nb - c\n")
	f.Add("solo\n")
	f.Add("# comment\n\nx - y\n")
	f.Add("a - b\nb - a\n")
	f.Add("a - \n")
	f.Add("a - b - c\n")
	f.Add(strings.Repeat("x", 300))
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseString(input)
		if err != nil {
			return
		}
		back, err := ParseString(tr.String())
		if err != nil {
			t.Fatalf("round trip failed to parse: %v\noriginal input: %q", err, input)
		}
		if !tr.Equal(back) {
			t.Fatalf("round trip mismatch for input %q", input)
		}
	})
}

// FuzzPruefer checks the decode/encode bijection and the structural
// invariants of decoded trees for arbitrary byte-derived sequences.
func FuzzPruefer(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0})
	f.Add([]byte{255, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 64 {
			return
		}
		n := len(raw) + 2
		seq := make([]int, len(raw))
		for i, b := range raw {
			seq[i] = int(b)%n + 1
		}
		tr, err := FromPruefer(seq)
		if err != nil {
			t.Fatalf("in-range sequence rejected: %v (seq %v)", err, seq)
		}
		if tr.NumVertices() != n {
			t.Fatalf("decoded %d vertices, want %d", tr.NumVertices(), n)
		}
		got := tr.Pruefer()
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("encode(decode(seq)) = %v, want %v", got, seq)
			}
		}
	})
}

// FuzzEulerList checks Lemma 2's structural invariants on trees decoded
// from fuzzed Prüfer sequences with fuzzed roots.
func FuzzEulerList(f *testing.F) {
	f.Add([]byte{4, 4, 4}, uint8(0))
	f.Add([]byte{1}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, rootRaw uint8) {
		if len(raw) == 0 || len(raw) > 40 {
			return
		}
		n := len(raw) + 2
		seq := make([]int, len(raw))
		for i, b := range raw {
			seq[i] = int(b)%n + 1
		}
		tr, err := FromPruefer(seq)
		if err != nil {
			t.Skip()
		}
		root := VertexID(int(rootRaw) % tr.NumVertices())
		l, err := ListConstruction(tr, root)
		if err != nil {
			t.Fatal(err)
		}
		if l.Len() > 2*tr.NumVertices() {
			t.Fatalf("|L| = %d > 2|V| = %d", l.Len(), 2*tr.NumVertices())
		}
		seqv := l.Sequence()
		for i := 0; i+1 < len(seqv); i++ {
			if !tr.Adjacent(seqv[i], seqv[i+1]) {
				t.Fatalf("non-adjacent consecutive entries at %d", i)
			}
		}
		for v := 0; v < tr.NumVertices(); v++ {
			if len(l.Occurrences(VertexID(v))) == 0 {
				t.Fatalf("vertex %d missing from list", v)
			}
		}
	})
}

// FuzzConvexHullSafeArea cross-checks hull/safe-area membership against the
// brute-force definitions on fuzz-derived trees and multisets.
func FuzzConvexHullSafeArea(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(4), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, sizeRaw, pickRaw, fRaw uint8) {
		size := 2 + int(sizeRaw)%14
		rng := rand.New(rand.NewSource(seed))
		tr := RandomPruefer(size, rng)
		k := 1 + int(pickRaw)%6
		m := make([]VertexID, k)
		for i := range m {
			m[i] = VertexID(rng.Intn(size))
		}
		fBudget := int(fRaw) % k
		hull := tr.ConvexHull(m)
		want := bruteHull(tr, m)
		if len(hull) != len(want) {
			t.Fatalf("hull size %d, want %d", len(hull), len(want))
		}
		safe := tr.SafeArea(m, fBudget)
		wantSafe := bruteSafeArea(tr, m, fBudget)
		if len(safe) != len(wantSafe) {
			t.Fatalf("safe area size %d, want %d (m=%v f=%d)", len(safe), len(wantSafe), m, fBudget)
		}
		for _, v := range safe {
			if !wantSafe[v] {
				t.Fatalf("safe area contains %v not in brute force", v)
			}
		}
	})
}
