package tree

import "fmt"

// DistancesFrom returns d(src, v) for every vertex v, computed by BFS.
func (t *Tree) DistancesFrom(src VertexID) []int {
	dist := make([]int, t.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range t.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Dist returns the length of the unique path P(u, v).
func (t *Tree) Dist(u, v VertexID) int {
	if u == v {
		return 0
	}
	return t.DistancesFrom(u)[v]
}

// Path returns the unique path P(u, v) as the vertex sequence (u, ..., v),
// inclusive of both endpoints.
func (t *Tree) Path(u, v VertexID) []VertexID {
	if u == v {
		return []VertexID{u}
	}
	// BFS from v recording parents, then walk from u toward v.
	parent := make([]VertexID, t.NumVertices())
	for i := range parent {
		parent[i] = None
	}
	parent[v] = v
	queue := []VertexID{v}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == u {
			break
		}
		for _, w := range t.adj[x] {
			if parent[w] == None {
				parent[w] = x
				queue = append(queue, w)
			}
		}
	}
	path := []VertexID{u}
	for x := u; x != v; {
		x = parent[x]
		path = append(path, x)
	}
	return path
}

// Diameter returns D(T), the length of the longest path, together with the
// endpoints of one such path. It uses the classic double-BFS: the farthest
// vertex from any start is one endpoint of a diameter.
func (t *Tree) Diameter() (d int, endA, endB VertexID) {
	endA = farthest(t.DistancesFrom(0))
	distA := t.DistancesFrom(endA)
	endB = farthest(distA)
	return distA[endB], endA, endB
}

func farthest(dist []int) VertexID {
	best := VertexID(0)
	for v, d := range dist {
		if d > dist[best] {
			best = VertexID(v)
		}
	}
	return best
}

// Eccentricity returns max_v d(u, v).
func (t *Tree) Eccentricity(u VertexID) int {
	e := 0
	for _, d := range t.DistancesFrom(u) {
		if d > e {
			e = d
		}
	}
	return e
}

// Center returns a vertex minimizing eccentricity (a tree has one or two
// centers; the one with the lower VertexID is returned). It is located as
// the midpoint of a diameter path.
func (t *Tree) Center() VertexID {
	_, a, b := t.Diameter()
	p := t.Path(a, b)
	c1 := p[(len(p)-1)/2]
	c2 := p[len(p)/2]
	if c2 < c1 {
		return c2
	}
	return c1
}

// IsPath reports whether the whole tree is a simple path (every vertex has
// degree at most 2).
func (t *Tree) IsPath() bool {
	for v := VertexID(0); int(v) < t.NumVertices(); v++ {
		if t.Degree(v) > 2 {
			return false
		}
	}
	return true
}

// ValidatePath checks that p is a well-formed simple path in t: non-empty,
// consecutive vertices adjacent, and no repeated vertex.
func (t *Tree) ValidatePath(p []VertexID) error {
	if len(p) == 0 {
		return fmt.Errorf("tree: empty path")
	}
	seen := make(map[VertexID]bool, len(p))
	for i, v := range p {
		if !t.Valid(v) {
			return fmt.Errorf("%w: id %d", ErrUnknownVertex, int(v))
		}
		if seen[v] {
			return fmt.Errorf("tree: path repeats vertex %s", t.Label(v))
		}
		seen[v] = true
		if i > 0 && !t.Adjacent(p[i-1], v) {
			return fmt.Errorf("tree: path vertices %s and %s are not adjacent", t.Label(p[i-1]), t.Label(v))
		}
	}
	return nil
}

// Adjacent reports whether u and v share an edge.
func (t *Tree) Adjacent(u, v VertexID) bool {
	ns := t.adj[u]
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case ns[mid] == v:
			return true
		case ns[mid] < v:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// ProjectOntoPath returns proj_P(v): the vertex of path p closest to v
// (Section 5 of the paper). The projection is unique in a tree. The path is
// given as a vertex sequence; the returned value is the index into p of the
// projection, together with the vertex itself.
func (t *Tree) ProjectOntoPath(p []VertexID, v VertexID) (idx int, proj VertexID) {
	pos := make(map[VertexID]int, len(p))
	for i, u := range p {
		pos[u] = i
	}
	if i, ok := pos[v]; ok {
		return i, v
	}
	// Walk from v outward (BFS); the first path vertex reached is the
	// projection, since the unique v-to-path walk enters P exactly once
	// (Lemma 1's argument).
	visited := make([]bool, t.NumVertices())
	visited[v] = true
	queue := []VertexID{v}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if i, ok := pos[x]; ok {
			return i, x
		}
		for _, w := range t.adj[x] {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return -1, None // unreachable in a connected tree
}

// ProjectAllOntoPath returns, for every vertex v of the tree, the index into
// p of proj_P(v). It runs a single multi-source BFS from the path, so it is
// O(|V|) regardless of |p|.
func (t *Tree) ProjectAllOntoPath(p []VertexID) []int {
	proj := make([]int, t.NumVertices())
	for i := range proj {
		proj[i] = -1
	}
	queue := make([]VertexID, 0, len(p))
	for i, u := range p {
		proj[u] = i
		queue = append(queue, u)
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range t.adj[x] {
			if proj[w] < 0 {
				proj[w] = proj[x]
				queue = append(queue, w)
			}
		}
	}
	return proj
}
