package tree

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	orig := Figure3Tree()
	text := orig.String()
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("ParseString: %v\ninput:\n%s", err, text)
	}
	if !orig.Equal(back) {
		t.Errorf("round trip mismatch:\norig:\n%s\nback:\n%s", orig, back)
	}
}

func TestParseComments(t *testing.T) {
	tr, err := ParseString("# a comment\n\n a - b \n# trailing\nb - c\n")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumVertices() != 3 {
		t.Errorf("vertices = %d, want 3", tr.NumVertices())
	}
}

func TestParseSingleVertex(t *testing.T) {
	tr, err := ParseString("solo\n")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumVertices() != 1 || tr.Label(0) != "solo" {
		t.Errorf("got %d vertices, label %q", tr.NumVertices(), tr.Label(0))
	}
	// Write side of the single-vertex special case.
	if got := tr.String(); got != "solo\n" {
		t.Errorf("String() = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct{ name, in string }{
		{"three parts", "a - b - c\n"},
		{"empty side", "a - \n"},
		{"cycle", "a - b\nb - c\nc - a\n"},
		{"disconnected", "a - b\nc - d\n"},
		{"empty input", "# nothing\n"},
		{"duplicate edge", "a - b\nb - c\na - b\n"},
		{"reversed duplicate edge", "a - b\nb - c\nb - a\n"},
		{"self-loop", "a - a\na - b\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.in); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tc.in)
			}
		})
	}
}

// TestParseDuplicateEdgeMessage pins that a duplicated edge in the textual
// format reports ErrDuplicate naming the edge, not a misleading cycle error.
func TestParseDuplicateEdgeMessage(t *testing.T) {
	_, err := ParseString("a - b\nb - c\na - b\n")
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("error = %v, want ErrDuplicate", err)
	}
	if want := `tree: duplicate: edge "a"-"b"`; err.Error() != want {
		t.Fatalf("error message = %q, want %q", err.Error(), want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := NewSpider(3, 3)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(&back) {
		t.Errorf("JSON round trip mismatch")
	}
}

func TestJSONErrors(t *testing.T) {
	var tr Tree
	if err := json.Unmarshal([]byte(`{"vertices":["a"],"edges":[["a","zz"]]}`), &tr); err == nil {
		t.Error("undeclared edge endpoint should fail")
	}
	if err := json.Unmarshal([]byte(`not json`), &tr); err == nil {
		t.Error("garbage should fail")
	}
	if err := json.Unmarshal([]byte(`{"vertices":[],"edges":[]}`), &tr); err == nil {
		t.Error("empty tree should fail")
	}
}

func TestEqual(t *testing.T) {
	a := NewPath(5)
	if !a.Equal(NewPath(5)) {
		t.Error("identical trees unequal")
	}
	if a.Equal(NewPath(6)) {
		t.Error("different sizes equal")
	}
	if a.Equal(NewStar(5)) {
		t.Error("different shapes equal")
	}
}

func TestRender(t *testing.T) {
	tr := Figure3Tree()
	out := tr.Render(tr.Root(), map[VertexID]string{tr.MustVertex("v3"): "hull"})
	for _, want := range []string{"v1", "└── v2", "[hull]", "v8"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 8 {
		t.Errorf("render has %d lines, want 8:\n%s", lines, out)
	}
}

func TestRenderPath(t *testing.T) {
	tr := Figure3Tree()
	p := tr.Path(tr.MustVertex("v6"), tr.MustVertex("v1"))
	if got := tr.RenderPath(p); got != "v6 → v3 → v2 → v1" {
		t.Errorf("RenderPath = %q", got)
	}
}

func TestSortedLabels(t *testing.T) {
	tr := Figure3Tree()
	labels := tr.SortedLabels()
	if len(labels) != 8 || labels[0] != "v1" || labels[7] != "v8" {
		t.Errorf("SortedLabels = %v", labels)
	}
}

func TestWriteDOT(t *testing.T) {
	tr := Figure3Tree()
	var sb strings.Builder
	attrs := map[VertexID]string{tr.MustVertex("v3"): `fillcolor="gold", style=filled`}
	if err := tr.WriteDOT(&sb, "fig3", attrs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`graph "fig3" {`, `"v1" -- "v2";`, `"v3" [fillcolor="gold", style=filled];`, "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "--") != 7 {
		t.Errorf("DOT has %d edges, want 7", strings.Count(out, "--"))
	}
	// Invalid attribute id fails.
	if err := tr.WriteDOT(&sb, "x", map[VertexID]string{99: "x"}); err == nil {
		t.Error("invalid vertex in attrs should fail")
	}
	if got := tr.DOT(""); !strings.Contains(got, `graph "tree"`) {
		t.Errorf("DOT default name missing: %s", got)
	}
}
