package tree

import (
	"errors"
	"math/rand"
	"testing"
)

func TestBuilderValidTree(t *testing.T) {
	tr := Figure3Tree()
	if got := tr.NumVertices(); got != 8 {
		t.Fatalf("NumVertices = %d, want 8", got)
	}
	if got := tr.Label(tr.Root()); got != "v1" {
		t.Errorf("root label = %q, want v1 (lowest lexicographic)", got)
	}
	v2 := tr.MustVertex("v2")
	if got := tr.Degree(v2); got != 4 {
		t.Errorf("degree(v2) = %d, want 4", got)
	}
	wantN := []string{"v1", "v3", "v4", "v5"}
	for i, w := range tr.Neighbors(v2) {
		if tr.Label(w) != wantN[i] {
			t.Errorf("neighbors(v2)[%d] = %s, want %s", i, tr.Label(w), wantN[i])
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name    string
		build   func() *Builder
		wantErr error
	}{
		{
			name:    "empty",
			build:   func() *Builder { return &Builder{} },
			wantErr: ErrEmpty,
		},
		{
			name: "cycle",
			build: func() *Builder {
				var b Builder
				b.AddEdge("a", "b")
				b.AddEdge("b", "c")
				b.AddEdge("c", "a")
				return &b
			},
			wantErr: ErrCycle,
		},
		{
			name: "disconnected",
			build: func() *Builder {
				var b Builder
				b.AddEdge("a", "b")
				b.AddVertex("c")
				b.AddVertex("d")
				b.AddEdge("c", "d")
				return &b
			},
			wantErr: ErrNotConnected,
		},
		{
			name: "duplicate edge",
			build: func() *Builder {
				var b Builder
				b.AddEdge("a", "b")
				b.AddEdge("b", "a")
				b.AddVertex("c") // keep |E| = |V|-1 so the duplicate check fires
				return &b
			},
			wantErr: ErrDuplicate,
		},
		{
			name: "duplicate vertex",
			build: func() *Builder {
				var b Builder
				b.AddVertex("a")
				b.AddVertex("a")
				b.AddVertex("b") // |E|=1 (forced self-loop marker), |V|=2
				return &b
			},
			wantErr: ErrDuplicate,
		},
		{
			name: "self loop",
			build: func() *Builder {
				var b Builder
				b.AddEdge("a", "a")
				b.AddVertex("b")
				return &b
			},
			wantErr: ErrDuplicate,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.build().Build()
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Build() error = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestBuilderDuplicateEdgeDiagnosis pins the error *identity and message*
// for inputs that used to be misreported: a duplicated edge satisfies
// |E| > |V|-1 and formerly surfaced as "contains a cycle", and a self-loop
// plus a missing edge as "not connected". Both must now name the real
// mistake via ErrDuplicate before any count check runs.
func TestBuilderDuplicateEdgeDiagnosis(t *testing.T) {
	tests := []struct {
		name    string
		build   func() *Builder
		wantErr error
		wantMsg string
	}{
		{
			name: "duplicate edge over full tree", // |E| = |V|, was ErrCycle
			build: func() *Builder {
				var b Builder
				b.AddEdge("a", "b")
				b.AddEdge("b", "c")
				b.AddEdge("a", "b")
				return &b
			},
			wantErr: ErrDuplicate,
			wantMsg: `tree: duplicate: edge "a"-"b"`,
		},
		{
			name: "reversed duplicate edge", // undirected: b-a duplicates a-b
			build: func() *Builder {
				var b Builder
				b.AddEdge("a", "b")
				b.AddEdge("b", "c")
				b.AddEdge("b", "a")
				return &b
			},
			wantErr: ErrDuplicate,
			wantMsg: `tree: duplicate: edge "b"-"a"`,
		},
		{
			name: "self-loop under edge count", // |E| < |V|-1, was ErrNotConnected
			build: func() *Builder {
				var b Builder
				b.AddEdge("a", "a")
				b.AddVertex("b")
				b.AddVertex("c")
				return &b
			},
			wantErr: ErrDuplicate,
			wantMsg: `tree: duplicate: self-loop or duplicate vertex "a"`,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.build().Build()
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Build() error = %v, want %v", err, tc.wantErr)
			}
			if err.Error() != tc.wantMsg {
				t.Fatalf("Build() error message = %q, want %q", err.Error(), tc.wantMsg)
			}
		})
	}
}

func TestValidateEdges(t *testing.T) {
	tests := []struct {
		name  string
		edges [][2]string
		ok    bool
	}{
		{"empty", nil, true},
		{"distinct", [][2]string{{"a", "b"}, {"b", "c"}}, true},
		{"self-loop", [][2]string{{"x", "x"}}, false},
		{"duplicate", [][2]string{{"a", "b"}, {"a", "b"}}, false},
		{"reversed duplicate", [][2]string{{"a", "b"}, {"b", "a"}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateEdges(tc.edges)
			if tc.ok && err != nil {
				t.Fatalf("ValidateEdges(%v) = %v, want nil", tc.edges, err)
			}
			if !tc.ok && !errors.Is(err, ErrDuplicate) {
				t.Fatalf("ValidateEdges(%v) = %v, want ErrDuplicate", tc.edges, err)
			}
		})
	}
}

func TestSingleVertexTree(t *testing.T) {
	var b Builder
	b.AddVertex("only")
	tr, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if d, _, _ := tr.Diameter(); d != 0 {
		t.Errorf("diameter = %d, want 0", d)
	}
	if got := tr.Path(0, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("Path(0,0) = %v, want [0]", got)
	}
}

func TestVertexByLabel(t *testing.T) {
	tr := Figure3Tree()
	if _, err := tr.VertexByLabel("nope"); !errors.Is(err, ErrUnknownVertex) {
		t.Errorf("VertexByLabel(nope) error = %v, want ErrUnknownVertex", err)
	}
	v, err := tr.VertexByLabel("v5")
	if err != nil || tr.Label(v) != "v5" {
		t.Errorf("VertexByLabel(v5) = %v, %v", v, err)
	}
}

func TestDistAndPath(t *testing.T) {
	tr := Figure3Tree()
	tests := []struct {
		u, v string
		d    int
		path []string
	}{
		{"v1", "v1", 0, []string{"v1"}},
		{"v1", "v2", 1, []string{"v1", "v2"}},
		{"v6", "v8", 4, []string{"v6", "v3", "v2", "v4", "v8"}},
		{"v5", "v7", 3, []string{"v5", "v2", "v3", "v7"}},
		{"v8", "v1", 3, []string{"v8", "v4", "v2", "v1"}},
	}
	for _, tc := range tests {
		u, v := tr.MustVertex(tc.u), tr.MustVertex(tc.v)
		if got := tr.Dist(u, v); got != tc.d {
			t.Errorf("Dist(%s,%s) = %d, want %d", tc.u, tc.v, got, tc.d)
		}
		got := tr.Path(u, v)
		if len(got) != len(tc.path) {
			t.Fatalf("Path(%s,%s) = %v, want %v", tc.u, tc.v, tr.Labels(got), tc.path)
		}
		for i := range got {
			if tr.Label(got[i]) != tc.path[i] {
				t.Errorf("Path(%s,%s)[%d] = %s, want %s", tc.u, tc.v, i, tr.Label(got[i]), tc.path[i])
			}
		}
		if err := tr.ValidatePath(got); err != nil {
			t.Errorf("ValidatePath(%v): %v", tr.Labels(got), err)
		}
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name string
		tr   *Tree
		want int
	}{
		{"figure3", Figure3Tree(), 4},
		{"path10", NewPath(10), 9},
		{"star9", NewStar(9), 2},
		{"spider", NewSpider(3, 4), 8},
		{"binary depth3", NewCompleteKAry(2, 3), 6},
		{"single", NewPath(1), 0},
		{"edge", NewPath(2), 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d, a, b := tc.tr.Diameter()
			if d != tc.want {
				t.Fatalf("diameter = %d, want %d", d, tc.want)
			}
			if got := tc.tr.Dist(a, b); got != d {
				t.Errorf("Dist(endpoints) = %d, want %d", got, d)
			}
		})
	}
}

func TestDiameterMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		tr := RandomPruefer(2+rng.Intn(30), rng)
		want := 0
		for u := 0; u < tr.NumVertices(); u++ {
			for _, d := range tr.DistancesFrom(VertexID(u)) {
				if d > want {
					want = d
				}
			}
		}
		if got, _, _ := tr.Diameter(); got != want {
			t.Fatalf("trial %d: diameter = %d, want %d\n%s", trial, got, want, tr)
		}
	}
}

func TestCenterMinimizesEccentricity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		tr := RandomPruefer(2+rng.Intn(25), rng)
		c := tr.Center()
		got := tr.Eccentricity(c)
		for v := 0; v < tr.NumVertices(); v++ {
			if e := tr.Eccentricity(VertexID(v)); e < got {
				t.Fatalf("trial %d: center ecc %d > vertex %s ecc %d", trial, got, tr.Label(VertexID(v)), e)
			}
		}
	}
}

func TestAdjacent(t *testing.T) {
	tr := Figure3Tree()
	if !tr.Adjacent(tr.MustVertex("v2"), tr.MustVertex("v5")) {
		t.Error("v2-v5 should be adjacent")
	}
	if tr.Adjacent(tr.MustVertex("v1"), tr.MustVertex("v5")) {
		t.Error("v1-v5 should not be adjacent")
	}
}

func TestValidatePathErrors(t *testing.T) {
	tr := Figure3Tree()
	if err := tr.ValidatePath(nil); err == nil {
		t.Error("empty path should fail")
	}
	v1, v5 := tr.MustVertex("v1"), tr.MustVertex("v5")
	if err := tr.ValidatePath([]VertexID{v1, v5}); err == nil {
		t.Error("non-adjacent pair should fail")
	}
	v2 := tr.MustVertex("v2")
	if err := tr.ValidatePath([]VertexID{v1, v2, v1}); err == nil {
		t.Error("repeated vertex should fail")
	}
	if err := tr.ValidatePath([]VertexID{VertexID(99)}); err == nil {
		t.Error("unknown vertex should fail")
	}
}

func TestIsPath(t *testing.T) {
	if !NewPath(7).IsPath() {
		t.Error("NewPath(7).IsPath() = false")
	}
	if Figure3Tree().IsPath() {
		t.Error("Figure3Tree().IsPath() = true")
	}
}

// TestFigure2Projection reproduces the paper's Figure 2: an 8-vertex path
// v1..v8 with hanging subtrees; inputs u1, u2, u3 project to v3, v4, v6.
func TestFigure2Projection(t *testing.T) {
	var b Builder
	for _, e := range [][2]string{
		{"v1", "v2"}, {"v2", "v3"}, {"v3", "v4"}, {"v4", "v5"},
		{"v5", "v6"}, {"v6", "v7"}, {"v7", "v8"},
		// hanging inputs: u1 below v3 (distance 2), u2 below v4, u3 below v6
		{"v3", "w1"}, {"w1", "u1"},
		{"v4", "u2"},
		{"v6", "w2"}, {"w2", "u3"},
	} {
		b.AddEdge(e[0], e[1])
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var path []VertexID
	for i := 1; i <= 8; i++ {
		path = append(path, tr.MustVertex(numLabel(i, 1)))
	}
	tests := []struct{ in, want string }{
		{"u1", "v3"}, {"u2", "v4"}, {"u3", "v6"},
		{"v5", "v5"}, // on-path vertex projects to itself
		{"w1", "v3"},
	}
	for _, tc := range tests {
		idx, proj := tr.ProjectOntoPath(path, tr.MustVertex(tc.in))
		if tr.Label(proj) != tc.want {
			t.Errorf("proj(%s) = %s, want %s", tc.in, tr.Label(proj), tc.want)
		}
		if path[idx] != proj {
			t.Errorf("proj(%s) index %d inconsistent", tc.in, idx)
		}
	}
	all := tr.ProjectAllOntoPath(path)
	for _, tc := range tests {
		v := tr.MustVertex(tc.in)
		if tr.Label(path[all[v]]) != tc.want {
			t.Errorf("ProjectAll: proj(%s) = %s, want %s", tc.in, tr.Label(path[all[v]]), tc.want)
		}
	}
}

func TestProjectionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		tr := RandomPruefer(2+rng.Intn(40), rng)
		_, a, b := tr.Diameter()
		path := tr.Path(a, b)
		all := tr.ProjectAllOntoPath(path)
		for v := 0; v < tr.NumVertices(); v++ {
			// Brute force: nearest path vertex by distance.
			bestIdx, bestD := -1, 1<<30
			dist := tr.DistancesFrom(VertexID(v))
			for i, u := range path {
				if dist[u] < bestD {
					bestD, bestIdx = dist[u], i
				}
			}
			if all[v] != bestIdx {
				t.Fatalf("trial %d: proj(%s) index = %d, want %d", trial, tr.Label(VertexID(v)), all[v], bestIdx)
			}
			idx, _ := tr.ProjectOntoPath(path, VertexID(v))
			if idx != bestIdx {
				t.Fatalf("trial %d: ProjectOntoPath(%s) = %d, want %d", trial, tr.Label(VertexID(v)), idx, bestIdx)
			}
		}
	}
}

func TestEdges(t *testing.T) {
	tr := Figure3Tree()
	edges := tr.Edges()
	if len(edges) != 7 {
		t.Fatalf("len(Edges) = %d, want 7", len(edges))
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Errorf("edge %v not normalized", e)
		}
		if !tr.Adjacent(e[0], e[1]) {
			t.Errorf("edge %v not adjacent", e)
		}
	}
}

func TestBadLabelsRejected(t *testing.T) {
	for _, label := range []string{"", "#lead", "has space", "has-dash", "tab\there", "new\nline"} {
		var b Builder
		b.AddVertex(label)
		if _, err := b.Build(); !errors.Is(err, ErrBadLabel) {
			t.Errorf("label %q: err = %v, want ErrBadLabel", label, err)
		}
	}
	// Unicode labels without separators are fine.
	var b Builder
	b.AddEdge("αlpha", "βeta")
	if _, err := b.Build(); err != nil {
		t.Errorf("unicode labels rejected: %v", err)
	}
}
