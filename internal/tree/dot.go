package tree

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT emits the tree in Graphviz DOT format. Optional vertex
// attributes (e.g. colors for inputs/hull/outputs) are rendered as node
// attribute lists; entries use DOT syntax like `fillcolor="gold",
// style=filled`.
func (t *Tree) WriteDOT(w io.Writer, name string, attrs map[VertexID]string) error {
	if name == "" {
		name = "tree"
	}
	if _, err := fmt.Fprintf(w, "graph %q {\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	// Deterministic attribute order.
	var attributed []VertexID
	for v := range attrs {
		attributed = append(attributed, v)
	}
	sort.Slice(attributed, func(i, j int) bool { return attributed[i] < attributed[j] })
	for _, v := range attributed {
		if !t.Valid(v) {
			return fmt.Errorf("%w: id %d in attrs", ErrUnknownVertex, int(v))
		}
		if _, err := fmt.Fprintf(w, "  %q [%s];\n", t.Label(v), attrs[v]); err != nil {
			return err
		}
	}
	for _, e := range t.Edges() {
		if _, err := fmt.Fprintf(w, "  %q -- %q;\n", t.Label(e[0]), t.Label(e[1])); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// DOT renders the tree as a DOT string (no attributes).
func (t *Tree) DOT(name string) string {
	var sb strings.Builder
	if err := t.WriteDOT(&sb, name, nil); err != nil {
		return fmt.Sprintf("/* dot: %v */", err)
	}
	return sb.String()
}
