// Package tree implements the labeled-tree input space used by Approximate
// Agreement on trees (Fuchs, Ghinea, Parsaeian; PODC 2025).
//
// A Tree is an immutable, connected, acyclic, undirected graph whose vertices
// carry unique string labels. All protocol-visible determinism (root choice,
// DFS child order, Euler-list construction) is derived from lexicographic
// label order, matching the paper's conventions, so that independent parties
// computing over the same tree obtain byte-identical structures.
package tree

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex of a Tree. IDs are dense indices in
// [0, NumVertices()) assigned in lexicographic label order, so VertexID order
// coincides with label order.
type VertexID int

// None is the sentinel for "no vertex".
const None VertexID = -1

// Tree is an immutable labeled tree. The zero value is not useful; construct
// trees with a Builder, a generator, or a parser.
type Tree struct {
	labels []string
	index  map[string]VertexID
	adj    [][]VertexID // sorted by VertexID (== label order)
}

// Common construction and lookup errors.
var (
	// ErrEmpty is returned when building a tree with no vertices.
	ErrEmpty = errors.New("tree: no vertices")
	// ErrNotConnected is returned when the edge set does not connect all vertices.
	ErrNotConnected = errors.New("tree: not connected")
	// ErrCycle is returned when the edge set contains a cycle.
	ErrCycle = errors.New("tree: contains a cycle")
	// ErrUnknownVertex is returned when a label or VertexID does not exist.
	ErrUnknownVertex = errors.New("tree: unknown vertex")
	// ErrDuplicate is returned when a label or edge is added twice.
	ErrDuplicate = errors.New("tree: duplicate")
	// ErrBadLabel is returned for labels that cannot round-trip through the
	// textual format: empty, containing '-' or whitespace, or starting
	// with '#'.
	ErrBadLabel = errors.New("tree: invalid label")
)

// ValidLabel reports whether a label survives the edge-list serialization:
// non-empty, no '-' (the edge separator), no whitespace (trimmed by the
// parser), and not starting with '#' (comment marker). It is the label rule
// shared by every labeled input space (trees here, block graphs in
// internal/graph).
func ValidLabel(l string) bool { return validLabel(l) }

// validLabel is the internal form of ValidLabel.
func validLabel(l string) bool {
	if l == "" || l[0] == '#' {
		return false
	}
	for _, r := range l {
		switch r {
		case '-', ' ', '\t', '\n', '\r':
			return false
		}
	}
	return true
}

// ValidateEdges rejects self-loops and duplicate undirected edges in a
// label-pair edge list — the input validation shared by the tree Builder and
// the block-graph builder in internal/graph. Edge direction is ignored:
// "a-b" and "b-a" are the same edge. Errors wrap ErrDuplicate and name the
// offending edge, so a bad edge list fails with the real cause instead of
// surfacing later as a misleading cycle or connectivity error.
func ValidateEdges(edges [][2]string) error {
	type edgeKey struct{ a, b string }
	seen := make(map[edgeKey]bool, len(edges))
	for _, e := range edges {
		a, b := e[0], e[1]
		if a == b {
			return fmt.Errorf("%w: self-loop or duplicate vertex %q", ErrDuplicate, a)
		}
		if a > b {
			a, b = b, a
		}
		k := edgeKey{a, b}
		if seen[k] {
			return fmt.Errorf("%w: edge %q-%q", ErrDuplicate, e[0], e[1])
		}
		seen[k] = true
	}
	return nil
}

// Builder accumulates vertices and edges and validates them into a Tree.
// The zero value is ready to use.
type Builder struct {
	labels []string
	seen   map[string]bool
	edges  [][2]string
}

// AddVertex registers a vertex label. Adding the same label twice is an
// error reported by Build. Labels referenced by AddEdge are registered
// implicitly, so calling AddVertex is only required for isolated
// single-vertex trees.
func (b *Builder) AddVertex(label string) {
	if b.seen == nil {
		b.seen = make(map[string]bool)
	}
	if b.seen[label] {
		b.edges = append(b.edges, [2]string{label, label}) // force duplicate error in Build
		return
	}
	b.seen[label] = true
	b.labels = append(b.labels, label)
}

// AddEdge registers an undirected edge between two labels, registering the
// labels as vertices if they are new.
func (b *Builder) AddEdge(a, c string) {
	if b.seen == nil {
		b.seen = make(map[string]bool)
	}
	for _, l := range []string{a, c} {
		if !b.seen[l] {
			b.seen[l] = true
			b.labels = append(b.labels, l)
		}
	}
	b.edges = append(b.edges, [2]string{a, c})
}

// Build validates the accumulated vertices and edges and returns the Tree.
// It checks non-emptiness, |E| = |V|-1, acyclicity and connectivity.
func (b *Builder) Build() (*Tree, error) {
	n := len(b.labels)
	if n == 0 {
		return nil, ErrEmpty
	}
	labels := make([]string, n)
	copy(labels, b.labels)
	sort.Strings(labels)
	for _, l := range labels {
		if !validLabel(l) {
			return nil, fmt.Errorf("%w: %q", ErrBadLabel, l)
		}
	}
	index := make(map[string]VertexID, n)
	for i, l := range labels {
		index[l] = VertexID(i)
	}
	// Self-loops and duplicate edges are diagnosed before the |E| = |V|-1
	// count check: a duplicated edge would otherwise surface as a bogus
	// "contains a cycle" (and a duplicate plus a missing edge as "not
	// connected"), hiding the actual input mistake.
	if err := ValidateEdges(b.edges); err != nil {
		return nil, err
	}
	if len(b.edges) != n-1 {
		if len(b.edges) > n-1 {
			return nil, fmt.Errorf("%w: %d vertices but %d edges", ErrCycle, n, len(b.edges))
		}
		return nil, fmt.Errorf("%w: %d vertices but %d edges", ErrNotConnected, n, len(b.edges))
	}
	adj := make([][]VertexID, n)
	for _, e := range b.edges {
		u, v := index[e[0]], index[e[1]]
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	t := &Tree{labels: labels, index: index, adj: adj}
	for _, ns := range t.adj {
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	// |E| == |V|-1 plus connectivity implies acyclicity.
	if reached := len(t.bfsOrder(0)); reached != n {
		return nil, fmt.Errorf("%w: reached %d of %d vertices", ErrNotConnected, reached, n)
	}
	return t, nil
}

// NumVertices returns |V(T)|.
func (t *Tree) NumVertices() int { return len(t.labels) }

// Label returns the label of v.
func (t *Tree) Label(v VertexID) string {
	if !t.Valid(v) {
		return fmt.Sprintf("<invalid:%d>", int(v))
	}
	return t.labels[v]
}

// Labels returns the labels of vs, in order.
func (t *Tree) Labels(vs []VertexID) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = t.Label(v)
	}
	return out
}

// Valid reports whether v is a vertex of t.
func (t *Tree) Valid(v VertexID) bool { return v >= 0 && int(v) < len(t.labels) }

// VertexByLabel returns the vertex with the given label.
func (t *Tree) VertexByLabel(label string) (VertexID, error) {
	v, ok := t.index[label]
	if !ok {
		return None, fmt.Errorf("%w: %q", ErrUnknownVertex, label)
	}
	return v, nil
}

// MustVertex is VertexByLabel for known-good labels; it panics on unknown
// labels and is intended for tests and examples, not library paths.
func (t *Tree) MustVertex(label string) VertexID {
	v, err := t.VertexByLabel(label)
	if err != nil {
		panic(err)
	}
	return v
}

// Neighbors returns the neighbors of v in ascending VertexID (= label) order.
// The returned slice is shared; callers must not modify it.
func (t *Tree) Neighbors(v VertexID) []VertexID { return t.adj[v] }

// Degree returns the number of neighbors of v.
func (t *Tree) Degree(v VertexID) int { return len(t.adj[v]) }

// Root returns the canonical protocol root: the vertex with the
// lexicographically lowest label (Section 7 of the paper). Because IDs are
// assigned in label order, this is always vertex 0.
func (t *Tree) Root() VertexID { return 0 }

// Edges returns all undirected edges as (smaller, larger) VertexID pairs, in
// deterministic order.
func (t *Tree) Edges() [][2]VertexID {
	out := make([][2]VertexID, 0, t.NumVertices()-1)
	for u := VertexID(0); int(u) < t.NumVertices(); u++ {
		for _, v := range t.adj[u] {
			if u < v {
				out = append(out, [2]VertexID{u, v})
			}
		}
	}
	return out
}

// bfsOrder returns vertices reachable from src in BFS order.
func (t *Tree) bfsOrder(src VertexID) []VertexID {
	visited := make([]bool, t.NumVertices())
	order := make([]VertexID, 0, t.NumVertices())
	queue := []VertexID{src}
	visited[src] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range t.adj[v] {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return order
}
