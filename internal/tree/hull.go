package tree

// ConvexHull returns ⟨S⟩: the vertex set of the smallest connected subtree
// containing every vertex of S (Section 2 of the paper). Equivalently,
// w ∈ ⟨S⟩ iff w lies on P(u, v) for some u, v ∈ S. The result is returned in
// ascending VertexID order. An empty S yields an empty hull.
//
// The computation roots the tree at an arbitrary vertex, counts S-vertices in
// each subtree, and includes v iff the S-vertices do not all lie strictly in
// one component of T − v (or v ∈ S). This is O(|V|).
func (t *Tree) ConvexHull(s []VertexID) []VertexID {
	if len(s) == 0 {
		return nil
	}
	inS := make([]bool, t.NumVertices())
	k := 0
	for _, v := range s {
		if !inS[v] {
			inS[v] = true
			k++
		}
	}
	if k == 1 {
		for v := range inS {
			if inS[v] {
				return []VertexID{VertexID(v)}
			}
		}
	}
	order := t.bfsOrder(0)
	parent := make([]VertexID, t.NumVertices())
	parent[0] = None
	for _, v := range order {
		for _, w := range t.adj[v] {
			if w != parent[v] {
				parent[w] = v
			}
		}
	}
	// cnt[v] = number of S-vertices in the subtree rooted at v (root 0).
	cnt := make([]int, t.NumVertices())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if inS[v] {
			cnt[v]++
		}
		if parent[v] != None {
			cnt[parent[v]] += cnt[v]
		}
	}
	hull := make([]VertexID, 0, t.NumVertices())
	for v := VertexID(0); int(v) < t.NumVertices(); v++ {
		if inS[v] {
			hull = append(hull, v)
			continue
		}
		// Components of T − v: one per child subtree, plus the "above"
		// component through parent[v] holding k − cnt[v] S-vertices.
		nonEmpty := 0
		if cnt[v] < k {
			nonEmpty++ // the component containing the parent side
		}
		for _, w := range t.adj[v] {
			if w == parent[v] {
				continue
			}
			if cnt[w] > 0 {
				nonEmpty++
				if nonEmpty >= 2 {
					break
				}
			}
		}
		if nonEmpty >= 2 {
			hull = append(hull, v)
		}
	}
	return hull
}

// InHull reports whether v lies in ⟨S⟩. It is a convenience wrapper around
// ConvexHull for single queries.
func (t *Tree) InHull(s []VertexID, v VertexID) bool {
	for _, w := range t.ConvexHull(s) {
		if w == v {
			return true
		}
	}
	return false
}

// SafeArea returns the t-robust safe area of a multiset m of vertices: the
// set of vertices v such that v ∈ ⟨S⟩ for *every* sub-multiset S of m
// obtained by discarding at most f elements. This is the safe-area notion of
// iteration-based AA on trees (Nowak & Rybicki, DISC 2019), used by the
// baseline protocol.
//
// Characterization used (proved by the component argument): v is in the safe
// area iff every component C of T − v contains at most len(m) − f − 1
// elements of m. ("⇐": any len(m)−f-subset must then either contain v or meet
// two components, so its hull contains v. "⇒": a component holding
// ≥ len(m)−f elements admits discarding the ≤ f others, leaving a hull inside
// C that excludes v.)
//
// The safe area of a multiset with len(m) > f is a non-empty subtree when the
// hull structure permits; callers must handle an empty result when
// len(m) <= f. Results are in ascending VertexID order.
func (t *Tree) SafeArea(m []VertexID, f int) []VertexID {
	if len(m) == 0 || len(m) <= f {
		return nil
	}
	weight := make([]int, t.NumVertices()) // multiplicity of each vertex in m
	for _, v := range m {
		weight[v]++
	}
	total := len(m)
	order := t.bfsOrder(0)
	parent := make([]VertexID, t.NumVertices())
	parent[0] = None
	for _, v := range order {
		for _, w := range t.adj[v] {
			if w != parent[v] {
				parent[w] = v
			}
		}
	}
	cnt := make([]int, t.NumVertices()) // multiset weight within subtree of v
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		cnt[v] += weight[v]
		if parent[v] != None {
			cnt[parent[v]] += cnt[v]
		}
	}
	limit := total - f - 1 // max elements allowed in any one component
	safe := make([]VertexID, 0, t.NumVertices())
	for v := VertexID(0); int(v) < t.NumVertices(); v++ {
		ok := true
		if above := total - cnt[v]; above > limit {
			ok = false
		}
		if ok {
			for _, w := range t.adj[v] {
				if w == parent[v] {
					continue
				}
				if cnt[w] > limit {
					ok = false
					break
				}
			}
		}
		if ok {
			safe = append(safe, v)
		}
	}
	return safe
}

// InducedSubtree returns a new Tree containing exactly the vertices vs
// (which must induce a connected subgraph) with their original labels.
func (t *Tree) InducedSubtree(vs []VertexID) (*Tree, error) {
	keep := make(map[VertexID]bool, len(vs))
	for _, v := range vs {
		keep[v] = true
	}
	var b Builder
	for _, v := range vs {
		b.AddVertex(t.Label(v))
	}
	for _, e := range t.Edges() {
		if keep[e[0]] && keep[e[1]] {
			b.AddEdge(t.Label(e[0]), t.Label(e[1]))
		}
	}
	// Builder counts AddVertex'd labels that also appear in AddEdge once.
	return b.Build()
}
