package tree

import (
	"fmt"
	"strings"
)

// Render draws the tree rooted at root as indented ASCII art, one vertex per
// line, children in label order. Optional marks annotate vertices (for
// example "input", "output", "hull") and are printed after the label.
//
//	v1
//	└── v2
//	    ├── v3  [hull]
//	    │   ├── v6
//	    │   └── v7
//	    ├── v4
//	    │   └── v8
//	    └── v5
func (t *Tree) Render(root VertexID, marks map[VertexID]string) string {
	var sb strings.Builder
	var rec func(v, parent VertexID, prefix string, last bool, isRoot bool)
	rec = func(v, parent VertexID, prefix string, last bool, isRoot bool) {
		if isRoot {
			sb.WriteString(t.Label(v))
		} else {
			sb.WriteString(prefix)
			if last {
				sb.WriteString("└── ")
			} else {
				sb.WriteString("├── ")
			}
			sb.WriteString(t.Label(v))
		}
		if m, ok := marks[v]; ok {
			fmt.Fprintf(&sb, "  [%s]", m)
		}
		sb.WriteByte('\n')
		var children []VertexID
		for _, w := range t.Neighbors(v) {
			if w != parent {
				children = append(children, w)
			}
		}
		for i, c := range children {
			childPrefix := prefix
			if !isRoot {
				if last {
					childPrefix += "    "
				} else {
					childPrefix += "│   "
				}
			}
			rec(c, v, childPrefix, i == len(children)-1, false)
		}
	}
	rec(root, None, "", true, true)
	return sb.String()
}

// RenderPath formats a vertex sequence as "v1 → v2 → v3".
func (t *Tree) RenderPath(p []VertexID) string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = t.Label(v)
	}
	return strings.Join(parts, " → ")
}
