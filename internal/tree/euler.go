package tree

import "fmt"

// EulerList is the list representation L of a rooted tree produced by
// ListConstruction (Section 6 of the paper): a DFS from the root that records
// each vertex upon every visit — once on entry, and once more after returning
// from each child. For the tree of the paper's Figure 3 rooted at v1 the list
// is [v1 v2 v3 v6 v3 v7 v3 v2 v4 v8 v4 v2 v5 v2 v1].
//
// Lemma 2's guarantees, all checked by the package tests:
//  1. consecutive list entries are adjacent vertices (when |V| > 1);
//  2. |L| <= 2·|V| and every vertex occurs at least once;
//  3. u is in the subtree rooted at v iff all occurrences of u lie within
//     [min L(v), max L(v)];
//  4. for any occurrences i of v and i' of v', lca(v, v') occurs within
//     [min(i,i'), max(i,i')].
//
// Indices follow the paper's convention and are 1-based: L_1 is the first
// element. EulerList is deterministic: children are visited in ascending
// label order, so all parties derive the identical list.
type EulerList struct {
	tree  *Tree
	root  VertexID
	seq   []VertexID // 0-based storage of L_1..L_|L|
	depth []int      // depth of seq[i] below the root
	occ   [][]int    // occ[v] = ascending 1-based indices i with L_i = v
	// sparse table over depth for O(1) range-minimum (LCA) queries:
	// table[k][i] = position in seq of the minimum depth in [i, i+2^k).
	table [][]int32
	log2  []int
}

// ListConstruction performs the paper's ListConstruction(T, root) and
// precomputes the LCA index. It is deterministic and O(|V| log |V|).
func ListConstruction(t *Tree, root VertexID) (*EulerList, error) {
	if !t.Valid(root) {
		return nil, fmt.Errorf("%w: root id %d", ErrUnknownVertex, int(root))
	}
	n := t.NumVertices()
	l := &EulerList{
		tree: t,
		root: root,
		seq:  make([]VertexID, 0, 2*n),
		occ:  make([][]int, n),
	}
	l.depth = make([]int, 0, 2*n)

	// Iterative DFS: children in ascending VertexID (= label) order.
	type frame struct {
		v     VertexID
		p     VertexID
		d     int
		nexti int // next index into t.Neighbors(v) to consider
	}
	stack := make([]frame, 0, n)
	record := func(v VertexID, d int) {
		l.seq = append(l.seq, v)
		l.depth = append(l.depth, d)
		l.occ[v] = append(l.occ[v], len(l.seq)) // 1-based
	}
	stack = append(stack, frame{v: root, p: None})
	record(root, 0)
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		ns := t.Neighbors(top.v)
		advanced := false
		for top.nexti < len(ns) {
			w := ns[top.nexti]
			top.nexti++
			if w == top.p {
				continue
			}
			stack = append(stack, frame{v: w, p: top.v, d: top.d + 1})
			record(w, top.d+1)
			advanced = true
			break
		}
		if advanced {
			continue
		}
		// All children done: pop, and re-record the parent (backtrack visit).
		d := top.d
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			record(stack[len(stack)-1].v, d-1)
		}
	}
	l.buildRMQ()
	return l, nil
}

// Len returns |L|.
func (l *EulerList) Len() int { return len(l.seq) }

// Root returns the root vertex the list was built from.
func (l *EulerList) Root() VertexID { return l.root }

// Tree returns the underlying tree.
func (l *EulerList) Tree() *Tree { return l.tree }

// At returns L_i (1-based, per the paper). It returns an error for
// out-of-range i so that protocol code can surface adversarial indices.
func (l *EulerList) At(i int) (VertexID, error) {
	if i < 1 || i > len(l.seq) {
		return None, fmt.Errorf("tree: euler index %d out of range [1,%d]", i, len(l.seq))
	}
	return l.seq[i-1], nil
}

// Occurrences returns L(v): the ascending 1-based indices at which v occurs.
// The returned slice is shared; callers must not modify it.
func (l *EulerList) Occurrences(v VertexID) []int { return l.occ[v] }

// FirstIndex returns min L(v), the index parties feed into RealAA(1) in
// PathsFinder.
func (l *EulerList) FirstIndex(v VertexID) int { return l.occ[v][0] }

// Sequence returns a copy of the full list as vertex IDs, L_1..L_|L|.
func (l *EulerList) Sequence() []VertexID {
	out := make([]VertexID, len(l.seq))
	copy(out, l.seq)
	return out
}

// Depth returns the depth (distance from the root) of L_i (1-based).
func (l *EulerList) Depth(i int) int { return l.depth[i-1] }

func (l *EulerList) buildRMQ() {
	n := len(l.seq)
	l.log2 = make([]int, n+1)
	for i := 2; i <= n; i++ {
		l.log2[i] = l.log2[i/2] + 1
	}
	levels := l.log2[n] + 1
	l.table = make([][]int32, levels)
	l.table[0] = make([]int32, n)
	for i := range l.table[0] {
		l.table[0][i] = int32(i)
	}
	for k := 1; k < levels; k++ {
		width := 1 << k
		l.table[k] = make([]int32, n-width+1)
		for i := range l.table[k] {
			a := l.table[k-1][i]
			b := l.table[k-1][i+width/2]
			if l.depth[b] < l.depth[a] {
				a = b
			}
			l.table[k][i] = a
		}
	}
}

// argminDepth returns the position (0-based) of the minimum depth in the
// 0-based half-open range [lo, hi).
func (l *EulerList) argminDepth(lo, hi int) int {
	k := l.log2[hi-lo]
	a := l.table[k][lo]
	b := l.table[k][hi-(1<<k)]
	if l.depth[b] < l.depth[a] {
		a = b
	}
	return int(a)
}

// LCA returns the lowest common ancestor of u and v with respect to the
// list's root, via the Bender–Farach-Colton Euler-tour + RMQ reduction the
// paper cites [8].
func (l *EulerList) LCA(u, v VertexID) VertexID {
	i, j := l.occ[u][0]-1, l.occ[v][0]-1
	if i > j {
		i, j = j, i
	}
	return l.seq[l.argminDepth(i, j+1)]
}

// InSubtree reports whether u lies in the subtree rooted at v (with respect
// to the list's root), using Lemma 2 property 3.
func (l *EulerList) InSubtree(u, v VertexID) bool {
	vo, uo := l.occ[v], l.occ[u]
	return uo[0] >= vo[0] && uo[len(uo)-1] <= vo[len(vo)-1]
}

// PathFromRoot returns P(root, L_i) for a 1-based list index i, clamped
// semantics excluded: i must be in range.
func (l *EulerList) PathFromRoot(i int) ([]VertexID, error) {
	v, err := l.At(i)
	if err != nil {
		return nil, err
	}
	return l.tree.Path(l.root, v), nil
}
