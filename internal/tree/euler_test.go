package tree

import (
	"math/rand"
	"strings"
	"testing"
)

// TestFigure3EulerList reproduces the paper's Figure 3 example exactly:
// rooted at v1 the DFS visit list is
// [v1 v2 v3 v6 v3 v7 v3 v2 v4 v8 v4 v2 v5 v2 v1].
func TestFigure3EulerList(t *testing.T) {
	tr := Figure3Tree()
	l, err := ListConstruction(tr, tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"v1", "v2", "v3", "v6", "v3", "v7", "v3", "v2", "v4", "v8", "v4", "v2", "v5", "v2", "v1"}
	if l.Len() != len(want) {
		t.Fatalf("|L| = %d, want %d (%s)", l.Len(), len(want), strings.Join(tr.Labels(l.Sequence()), " "))
	}
	for i, wl := range want {
		v, err := l.At(i + 1)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Label(v) != wl {
			t.Errorf("L_%d = %s, want %s", i+1, tr.Label(v), wl)
		}
	}
	// Occurrence sets from the paper's Section 6 discussion.
	occTests := []struct {
		label string
		want  []int
	}{
		{"v3", []int{3, 5, 7}},
		{"v6", []int{4}},
		{"v5", []int{13}},
		{"v4", []int{9, 11}},
		{"v8", []int{10}},
	}
	for _, tc := range occTests {
		got := l.Occurrences(tr.MustVertex(tc.label))
		if len(got) != len(tc.want) {
			t.Fatalf("L(%s) = %v, want %v", tc.label, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("L(%s)[%d] = %d, want %d", tc.label, i, got[i], tc.want[i])
			}
		}
	}
	if got := l.FirstIndex(tr.MustVertex("v3")); got != 3 {
		t.Errorf("FirstIndex(v3) = %d, want 3", got)
	}
}

func TestEulerListErrors(t *testing.T) {
	tr := Figure3Tree()
	if _, err := ListConstruction(tr, VertexID(100)); err == nil {
		t.Error("invalid root should fail")
	}
	l, _ := ListConstruction(tr, tr.Root())
	if _, err := l.At(0); err == nil {
		t.Error("At(0) should fail (1-based)")
	}
	if _, err := l.At(l.Len() + 1); err == nil {
		t.Error("At(len+1) should fail")
	}
}

func TestEulerListSingleVertex(t *testing.T) {
	tr := NewPath(1)
	l, err := ListConstruction(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("|L| = %d, want 1", l.Len())
	}
}

// TestLemma2Properties checks all four Lemma 2 guarantees on random trees.
func TestLemma2Properties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		tr := RandomPruefer(2+rng.Intn(40), rng)
		root := VertexID(rng.Intn(tr.NumVertices()))
		l, err := ListConstruction(tr, root)
		if err != nil {
			t.Fatal(err)
		}
		n := tr.NumVertices()
		// Property 2: |L| <= 2|V| and every vertex occurs.
		if l.Len() > 2*n {
			t.Fatalf("trial %d: |L| = %d > 2|V| = %d", trial, l.Len(), 2*n)
		}
		for v := 0; v < n; v++ {
			if len(l.Occurrences(VertexID(v))) == 0 {
				t.Fatalf("trial %d: vertex %s missing from L", trial, tr.Label(VertexID(v)))
			}
		}
		// Property 1: consecutive entries adjacent.
		seq := l.Sequence()
		for i := 0; i+1 < len(seq); i++ {
			if !tr.Adjacent(seq[i], seq[i+1]) {
				t.Fatalf("trial %d: L_%d=%s and L_%d=%s not adjacent",
					trial, i+1, tr.Label(seq[i]), i+2, tr.Label(seq[i+1]))
			}
		}
		// Ground truth ancestry via parent pointers from the root.
		parent := parentArray(tr, root)
		isAncestor := func(a, d VertexID) bool {
			for x := d; x != None; x = parent[x] {
				if x == a {
					return true
				}
			}
			return false
		}
		// Property 3: subtree containment iff occurrence window containment.
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				want := isAncestor(VertexID(v), VertexID(u))
				if got := l.InSubtree(VertexID(u), VertexID(v)); got != want {
					t.Fatalf("trial %d: InSubtree(%s, %s) = %v, want %v",
						trial, tr.Label(VertexID(u)), tr.Label(VertexID(v)), got, want)
				}
			}
		}
		// Property 4 + LCA correctness against the brute force.
		for range 50 {
			u := VertexID(rng.Intn(n))
			v := VertexID(rng.Intn(n))
			want := bruteLCA(parent, u, v)
			if got := l.LCA(u, v); got != want {
				t.Fatalf("trial %d: LCA(%s,%s) = %s, want %s",
					trial, tr.Label(u), tr.Label(v), tr.Label(got), tr.Label(want))
			}
			// Property 4: lca occurs within any occurrence window.
			i := l.Occurrences(u)[rng.Intn(len(l.Occurrences(u)))]
			j := l.Occurrences(v)[rng.Intn(len(l.Occurrences(v)))]
			if i > j {
				i, j = j, i
			}
			found := false
			for k := i; k <= j; k++ {
				if seq[k-1] == want {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: lca(%s,%s)=%s not in window [%d,%d]",
					trial, tr.Label(u), tr.Label(v), tr.Label(want), i, j)
			}
		}
	}
}

func parentArray(tr *Tree, root VertexID) []VertexID {
	parent := make([]VertexID, tr.NumVertices())
	for i := range parent {
		parent[i] = None
	}
	visited := make([]bool, tr.NumVertices())
	visited[root] = true
	queue := []VertexID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range tr.Neighbors(v) {
			if !visited[w] {
				visited[w] = true
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return parent
}

func bruteLCA(parent []VertexID, u, v VertexID) VertexID {
	anc := make(map[VertexID]bool)
	for x := u; x != None; x = parent[x] {
		anc[x] = true
	}
	for x := v; x != None; x = parent[x] {
		if anc[x] {
			return x
		}
	}
	return None
}

// TestFigure4SubtreeOfValid reproduces the paper's Figure 4 discussion:
// honest inputs {v3, v6, v5} have hull {v5, v2, v3, v6}; indices of v4 and v8
// fall inside the honest index range, and although v4, v8 are NOT valid they
// lie in the subtree rooted at the valid vertex v2, so P(v1, ·) intersects
// the hull (Lemma 3).
func TestFigure4SubtreeOfValid(t *testing.T) {
	tr := Figure3Tree()
	l, err := ListConstruction(tr, tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	honest := []VertexID{tr.MustVertex("v3"), tr.MustVertex("v6"), tr.MustVertex("v5")}
	hull := map[string]bool{"v5": true, "v2": true, "v3": true, "v6": true}
	gotHull := tr.ConvexHull(honest)
	if len(gotHull) != len(hull) {
		t.Fatalf("hull = %v", tr.Labels(gotHull))
	}
	for _, v := range gotHull {
		if !hull[tr.Label(v)] {
			t.Fatalf("hull contains %s", tr.Label(v))
		}
	}
	// Honest index range: min over L(v3)∪L(v6)∪L(v5) = 3, max = 13.
	iMin, iMax := l.Len()+1, 0
	for _, v := range honest {
		occ := l.Occurrences(v)
		if occ[0] < iMin {
			iMin = occ[0]
		}
		if occ[len(occ)-1] > iMax {
			iMax = occ[len(occ)-1]
		}
	}
	if iMin != 3 || iMax != 13 {
		t.Fatalf("honest index range = [%d,%d], want [3,13]", iMin, iMax)
	}
	v2 := tr.MustVertex("v2")
	for _, lbl := range []string{"v4", "v8"} {
		v := tr.MustVertex(lbl)
		for _, i := range l.Occurrences(v) {
			if i < iMin || i > iMax {
				t.Errorf("index %d of %s outside honest range", i, lbl)
			}
		}
		if hull[lbl] {
			t.Errorf("%s unexpectedly valid", lbl)
		}
		if !l.InSubtree(v, v2) {
			t.Errorf("%s not in subtree of valid v2", lbl)
		}
	}
	// Lemma 3: every index in [iMin, iMax] yields a root path hitting the hull.
	for i := iMin; i <= iMax; i++ {
		p, err := l.PathFromRoot(i)
		if err != nil {
			t.Fatal(err)
		}
		hit := false
		for _, v := range p {
			if hull[tr.Label(v)] {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("P(v1, L_%d=%s) misses the hull: %s", i, tr.Label(mustAt(l, i)), tr.RenderPath(p))
		}
	}
}

func mustAt(l *EulerList, i int) VertexID {
	v, err := l.At(i)
	if err != nil {
		panic(err)
	}
	return v
}

// TestLemma3Random property-tests Lemma 3 on random trees and input sets.
func TestLemma3Random(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		tr := RandomPruefer(2+rng.Intn(30), rng)
		root := tr.Root()
		l, err := ListConstruction(tr, root)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(5)
		s := make([]VertexID, k)
		for i := range s {
			s[i] = VertexID(rng.Intn(tr.NumVertices()))
		}
		hull := make(map[VertexID]bool)
		for _, v := range tr.ConvexHull(s) {
			hull[v] = true
		}
		iMin, iMax := l.Len()+1, 0
		for _, v := range s {
			occ := l.Occurrences(v)
			if occ[0] < iMin {
				iMin = occ[0]
			}
			if occ[len(occ)-1] > iMax {
				iMax = occ[len(occ)-1]
			}
		}
		for i := iMin; i <= iMax; i++ {
			p, err := l.PathFromRoot(i)
			if err != nil {
				t.Fatal(err)
			}
			hit := false
			for _, v := range p {
				if hull[v] {
					hit = true
					break
				}
			}
			if !hit {
				t.Fatalf("trial %d: P(root, L_%d) misses hull (S=%v)\n%s",
					trial, i, tr.Labels(s), tr)
			}
		}
	}
}

func TestEulerDepthAndRMQ(t *testing.T) {
	tr := Figure3Tree()
	l, _ := ListConstruction(tr, tr.Root())
	if d := l.Depth(1); d != 0 {
		t.Errorf("Depth(L_1) = %d, want 0", d)
	}
	if d := l.Depth(4); d != 3 { // L_4 = v6 at depth 3
		t.Errorf("Depth(L_4) = %d, want 3", d)
	}
	if l.Root() != tr.Root() || l.Tree() != tr {
		t.Error("accessors disagree")
	}
}
