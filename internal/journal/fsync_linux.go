//go:build linux

package journal

import (
	"os"
	"syscall"
)

// preallocate reserves the segment's extent up front so appends within it
// never grow the file: with the size fixed at creation, each datasync pass
// skips the inode-size journal commit that a grow-then-fsync cycle pays on
// every batch. Best-effort — filesystems without fallocate just grow the
// file as before.
func preallocate(f *os.File, size int) {
	_ = syscall.Fallocate(int(f.Fd()), 0, 0, int64(size))
}

// datasync flushes the file's data, plus only the metadata required to
// read that data back (extent state, and the size if a write grew the
// file). Preallocated segments make that the cheap path: no size change,
// no per-batch inode commit.
func datasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
