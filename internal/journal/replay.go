package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"treeaa/internal/wire"
)

// ErrCorrupt reports journal damage that cannot be explained by a crash
// mid-append: a broken record that is *followed* by a valid one, or any
// broken record outside the final segment. Recovery must not continue past
// it — later records could depend on the lost one.
var ErrCorrupt = errors.New("journal: corrupt record")

// errPadding marks a zero length prefix: the reader has walked off the end
// of the written data into a preallocated segment's zero tail. Never a real
// record (every wire payload encodes to at least one byte).
var errPadding = errors.New("zero length prefix")

// Replay streams every journaled record, in segment then append order,
// through fn. Payloads are wire.JournalOpen, wire.JournalFrame or
// wire.JournalSeal. A torn tail (crash mid-append) on the final segment is
// tolerated and counted in stats; any other damage returns ErrCorrupt
// (wrapped with position detail). A missing directory replays zero records.
// If fn returns an error, replay stops and returns it.
func Replay(dir string, stats *Stats, fn func(payload any) error) error {
	if stats == nil {
		stats = &Stats{}
	}
	stats.Replayed.Store(0)
	stats.ReplaySkips.Store(0)
	stats.ReplayedSegs.Store(0)
	segs, err := segments(dir)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		if err := replaySegment(seg, last, stats, fn); err != nil {
			return err
		}
		stats.ReplayedSegs.Add(1)
	}
	return nil
}

// replaySegment decodes one segment. A broken record is tolerated only as a
// torn tail: on the final segment, with no fully-valid record after it.
func replaySegment(seg segment, last bool, stats *Stats, fn func(payload any) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	var body []byte
	for rec := 0; ; rec++ {
		payload, resumable, err := readRecord(br, &body)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if err == errPadding {
				// Preallocated-tail padding: clean end of any segment's data,
				// unless something follows the zero run — a valid record there
				// means a record was zeroed out under us.
				nonzero, serr := skipZeros(br)
				if serr != nil {
					return fmt.Errorf("journal: %s: %v", seg.path, serr)
				}
				if !nonzero {
					return nil
				}
				if !last || validRecordFollows(br, &body) {
					return fmt.Errorf("%w: %s record %d: data follows zero padding",
						ErrCorrupt, seg.path, rec)
				}
				stats.ReplaySkips.Add(1)
				return nil
			}
			if !last {
				return fmt.Errorf("%w: %s record %d: %v", ErrCorrupt, seg.path, rec, err)
			}
			// Final segment: a crash mid-append explains a broken record only
			// if nothing valid was appended after it. When the stream position
			// past the broken record is still well-defined, scan forward — a
			// later valid record proves this is damage, not a torn tail.
			if resumable && validRecordFollows(br, &body) {
				return fmt.Errorf("%w: %s record %d (valid records follow): %v",
					ErrCorrupt, seg.path, rec, err)
			}
			stats.ReplaySkips.Add(1)
			return nil
		}
		if err := fn(payload); err != nil {
			return err
		}
		stats.Replayed.Add(1)
	}
}

// skipZeros discards a run of zero bytes and reports whether a nonzero
// byte follows it (left unconsumed in the stream).
func skipZeros(br *bufio.Reader) (nonzero bool, err error) {
	for {
		buf, perr := br.Peek(4096)
		i := 0
		for i < len(buf) && buf[i] == 0 {
			i++
		}
		br.Discard(i)
		if i < len(buf) {
			return true, nil
		}
		if perr != nil {
			if perr == io.EOF {
				return false, nil
			}
			return false, perr
		}
	}
}

// validRecordFollows reports whether any fully-valid record remains in the
// stream after a broken-but-fully-read one. Padding runs are stepped over;
// only a record that checks out end to end counts.
func validRecordFollows(br *bufio.Reader, body *[]byte) bool {
	for {
		_, resumable, err := readRecord(br, body)
		if err == nil {
			return true
		}
		if !resumable {
			return false
		}
	}
}

// readRecord reads one `uvarint(len) | crc32c | body` record. io.EOF means
// a clean segment end; every other error means the record is broken. The
// resumable result reports whether the full record was consumed despite the
// error, leaving the stream positioned at the next record — false for
// truncation and unparseable framing, where no next position exists.
func readRecord(br *bufio.Reader, body *[]byte) (payload any, resumable bool, err error) {
	sz, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return nil, false, io.EOF
		}
		return nil, false, fmt.Errorf("length prefix: %v", err)
	}
	if sz == 0 {
		return nil, true, errPadding
	}
	if sz > maxRecordBytes {
		return nil, false, fmt.Errorf("record length %d out of range", sz)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return nil, false, fmt.Errorf("checksum: %v", err)
	}
	if cap(*body) < int(sz) {
		*body = make([]byte, sz)
	}
	b := (*body)[:sz]
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, false, fmt.Errorf("body: %v", err)
	}
	if got, want := crc32.Checksum(b, castagnoli), binary.BigEndian.Uint32(crcBuf[:]); got != want {
		return nil, true, fmt.Errorf("checksum mismatch: got %08x want %08x", got, want)
	}
	// wire.Decode copies any retained bytes (JournalFrame.Body), so reusing
	// the body buffer across records is safe.
	payload, err = wire.Decode(b)
	if err != nil {
		return nil, true, fmt.Errorf("decode: %v", err)
	}
	switch payload.(type) {
	case wire.JournalOpen, wire.JournalFrame, wire.JournalSeal:
		return payload, true, nil
	default:
		return nil, true, fmt.Errorf("unexpected payload %T in journal", payload)
	}
}
