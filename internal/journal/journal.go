// Package journal is the serving layer's write-ahead session journal:
// append-only segment files of CRC-framed wire records that let a daemon
// restart re-admit every non-terminal session and deterministically re-step
// its engines from the logged inputs (internal/session owns the replay
// semantics; this package owns durability).
//
// # On-disk format
//
// A journal is a directory of segment files named seg-%08d.waj, appended in
// sequence order. Each segment is a concatenation of records:
//
//	uvarint(len(body)) | crc32c(body, 4 bytes big-endian) | body
//
// where body is one canonical wire payload (wire.JournalOpen,
// wire.JournalFrame or wire.JournalSeal). Segments rotate at SegmentBytes;
// rotation syncs the finished segment, so only the newest segment can ever
// hold a torn tail. Segments are preallocated to SegmentBytes at creation
// (best-effort), so a segment abandoned by a crash may carry a tail of
// zero bytes; replay treats a zero length prefix as end-of-data.
//
// # Fsync policy
//
// Appends never touch the filesystem: they encode into an in-memory batch
// buffer under the writer lock (pure memcpy — the inbound-frame hot path is
// never stalled behind storage latency). A background syncer swaps the
// batch out and does all file I/O — write, fsync, segment rotation — with
// the lock released, one pass per SyncInterval plus an immediate pass per
// Commit (group commit, the same batching philosophy as the serving mux's
// flush tick). Append is fire-and-forget (inbound frames are re-creatable
// noise until a session decides); Commit returns a ticket channel that
// closes once the record — and, because the log is ordered, everything
// appended before it — is durable. The serving layer acks a decided
// session to its client only after the seal's ticket resolves, so
// "decided" survives kill -9 by construction.
//
// Segments are preallocated (fallocate) and synced with fdatasync where
// the platform has them: with the file size fixed up front, a group-commit
// sync flushes data without journalling an inode update, which measurably
// cuts the per-batch fsync cost on a busy filesystem.
//
// # Recovery semantics
//
// Replay streams every record in order. A broken record (bad CRC, bad
// framing, truncation) in the *last* segment with no valid record after it
// is a torn tail — the expected shape of a crash mid-append — and replay
// stops cleanly, reporting Truncated. A broken record followed by a valid
// one, or any broken record in a non-final segment, is real corruption and
// replay fails with ErrCorrupt: recovering past silently dropped records
// would violate the durability contract.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"treeaa/internal/wire"
)

// segPrefix/segSuffix name segment files: seg-00000001.waj, ordered by the
// zero-padded sequence number.
const (
	segPrefix = "seg-"
	segSuffix = ".waj"
)

// maxRecordBytes bounds one record body; it matches the wire codec's own
// payload ceiling with headroom for the record framing.
const maxRecordBytes = 1 << 21

// castagnoli is the CRC-32C table every record checksum uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats carries the journal's counters and gauges for the observability
// endpoint. All fields are atomics; one Stats may be shared freely.
type Stats struct {
	Appends      atomic.Int64 // records appended since open
	AppendBytes  atomic.Int64 // record bytes appended (framing included)
	Syncs        atomic.Int64 // fsync batches completed
	SyncErrors   atomic.Int64
	LastSyncNS   atomic.Int64 // duration of the most recent fsync batch
	Depth        atomic.Int64 // records appended but not yet durable
	Segment      atomic.Int64 // current segment sequence number
	Replayed     atomic.Int64 // records replayed at the last recovery
	ReplaySkips  atomic.Int64 // torn-tail records dropped at recovery (0 or 1 per segment)
	ReplayedSegs atomic.Int64 // segments scanned at the last recovery
}

// Options tunes a Writer. The zero value of every field gets a default.
type Options struct {
	// Dir is the journal directory; created if missing. Required.
	Dir string
	// SegmentBytes rotates segments once the current one reaches this size.
	// Default 8 MiB.
	SegmentBytes int
	// SyncInterval is the background sync cadence: the longest a
	// fire-and-forget Append waits for durability. Commits do not wait for
	// it — each Commit kicks an immediate group-commit pass — so this only
	// bounds the loss window for records nothing is acking (inbound frames,
	// non-origin seals), and a generous default keeps the fsync rate paid
	// for them near zero. Default 100ms.
	SyncInterval time.Duration
	// Stats receives the writer's counters; nil allocates a private one.
	Stats *Stats
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.Stats == nil {
		o.Stats = &Stats{}
	}
	return o
}

// Writer appends records to the newest segment of a journal directory. It
// never writes into pre-existing segments: Open always starts a fresh one,
// so a torn tail left by a crash is sealed off rather than appended past.
//
// Concurrency split: mu guards the in-memory batch (buf/ends/tickets/err)
// and is held only for memory work; syncMu serializes sync passes, which
// own the file handle and do every syscall with mu released.
type Writer struct {
	opts  Options
	stats *Stats

	mu      sync.Mutex
	buf     []byte          // encoded records awaiting the next sync pass
	ends    []int           // cumulative record end offsets into buf
	scratch []byte          // encode workspace, reused across appends
	tickets []chan struct{} // closed by the pass that makes their records durable
	err     error           // sticky: first write/sync failure fails every later call

	// syncMu serializes sync passes (the pacer, explicit Sync, Close,
	// Abandon) and protects the file-side fields below.
	syncMu   sync.Mutex
	f        *os.File
	seq      int64
	segBytes int
	spare    []byte // recycled batch buffer
	spareEnd []int

	kick     chan struct{} // Commit nudges the pacer for prompt group commit
	quit     chan struct{}
	done     chan struct{}
	quitOnce sync.Once
}

// Open creates (or reuses) the journal directory and starts a fresh segment
// after any existing ones. Call Replay first: Open's new segment makes the
// prior tail immutable.
func Open(opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("journal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	segs, err := segments(opts.Dir)
	if err != nil {
		return nil, err
	}
	var seq int64 = 1
	if len(segs) > 0 {
		seq = segs[len(segs)-1].seq + 1
	}
	w := &Writer{
		opts:  opts,
		stats: opts.Stats,
		seq:   seq,
		kick:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if err := w.openSegment(); err != nil {
		return nil, err
	}
	w.stats.Segment.Store(seq)
	go w.syncLoop()
	return w, nil
}

func segPath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
}

// openSegment starts segment w.seq. Called from Open and (under syncMu)
// from rotation.
func (w *Writer) openSegment() error {
	f, err := os.OpenFile(segPath(w.opts.Dir, w.seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	preallocate(f, w.opts.SegmentBytes)
	w.f = f
	w.segBytes = 0
	return nil
}

// Append journals one record, buffered: it is durable after the next sync
// pass (at most SyncInterval later). Use Commit for records whose
// durability must be observed.
func (w *Writer) Append(payload any) error {
	w.mu.Lock()
	err := w.appendLocked(payload)
	w.mu.Unlock()
	return err
}

// Commit journals one record and returns a ticket channel that closes once
// the record is on stable storage (along with everything appended before
// it, by log order). On a write error the ticket still closes — callers
// waiting on durability must check Err for the verdict.
func (w *Writer) Commit(payload any) (<-chan struct{}, error) {
	w.mu.Lock()
	if err := w.appendLocked(payload); err != nil {
		w.mu.Unlock()
		closed := make(chan struct{})
		close(closed)
		return closed, err
	}
	ticket := make(chan struct{})
	w.tickets = append(w.tickets, ticket)
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	return ticket, nil
}

func (w *Writer) appendLocked(payload any) error {
	if w.err != nil {
		return w.err
	}
	sz, err := wire.EncodedSize(payload)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if sz > maxRecordBytes {
		return fmt.Errorf("journal: record of %d bytes exceeds limit", sz)
	}
	b := w.scratch[:0]
	b = binary.AppendUvarint(b, uint64(sz))
	crcAt := len(b)
	b = append(b, 0, 0, 0, 0)
	bodyAt := len(b)
	b, err = wire.Append(b, payload)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	binary.BigEndian.PutUint32(b[crcAt:], crc32.Checksum(b[bodyAt:], castagnoli))
	w.scratch = b
	w.buf = append(w.buf, b...)
	w.ends = append(w.ends, len(w.buf))
	w.stats.Appends.Add(1)
	w.stats.AppendBytes.Add(int64(len(b)))
	w.stats.Depth.Add(1)
	return nil
}

// setErrLocked records the first failure; later calls keep the original.
func (w *Writer) setErrLocked(err error) error {
	if w.err == nil {
		w.err = fmt.Errorf("journal: %w", err)
	}
	return w.err
}

// Sync runs one group-commit pass: swap the batch out, write it, fsync,
// release every outstanding Commit ticket.
func (w *Writer) Sync() error {
	return w.sync()
}

// sync is one group-commit pass. Under w.mu it only swaps the in-memory
// batch out; every syscall — write, fsync, rotation — runs with w.mu
// released, so appends on the inbound-frame hot path proceed concurrently.
// syncMu keeps passes ordered, so the file handle has a single owner.
func (w *Writer) sync() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()

	w.mu.Lock()
	tickets := w.tickets
	w.tickets = nil
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		for _, t := range tickets {
			close(t)
		}
		return err
	}
	batch, ends := w.buf, w.ends
	w.buf, w.ends = w.spare[:0], w.spareEnd[:0]
	w.mu.Unlock()

	start := time.Now()
	err := w.writeBatch(batch, ends)
	if err == nil && (len(batch) > 0 || len(tickets) > 0) {
		err = datasync(w.f)
	}
	for _, t := range tickets {
		close(t)
	}
	w.spare, w.spareEnd = batch[:0], ends[:0]
	if err != nil {
		w.stats.SyncErrors.Add(1)
		w.mu.Lock()
		err = w.setErrLocked(err)
		w.mu.Unlock()
		return err
	}
	if len(batch) > 0 || len(tickets) > 0 {
		w.stats.Syncs.Add(1)
		w.stats.LastSyncNS.Store(time.Since(start).Nanoseconds())
	}
	w.stats.Depth.Add(int64(-len(ends)))
	return nil
}

// writeBatch appends the batch to the current segment, rotating at record
// boundaries so no record ever straddles two segments (each segment must
// replay independently). A finished segment is fsynced before it is closed,
// preserving the invariant that only the newest segment can hold a torn
// tail. Caller holds syncMu.
func (w *Writer) writeBatch(batch []byte, ends []int) error {
	start := 0
	for i := 0; i < len(ends); {
		// Take records while they fit in the current segment — but always
		// at least one, so an oversized record overshoots rather than
		// wedging.
		end := ends[i]
		i++
		for i < len(ends) && w.segBytes+(ends[i]-start) <= w.opts.SegmentBytes {
			end = ends[i]
			i++
		}
		if _, err := w.f.Write(batch[start:end]); err != nil {
			return err
		}
		w.segBytes += end - start
		start = end
		if w.segBytes >= w.opts.SegmentBytes {
			if err := w.rotate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// rotate seals the current segment (fsync before close, so finished
// segments can never hold a torn tail) and opens the next one. Caller
// holds syncMu.
func (w *Writer) rotate() error {
	if err := datasync(w.f); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.seq++
	if err := w.openSegment(); err != nil {
		return err
	}
	w.stats.Segment.Store(w.seq)
	return nil
}

// syncLoop is the group-commit pacer: one pass per SyncInterval while
// there is anything to make durable, plus an immediate pass whenever a
// Commit arrives — commits landing during an in-flight pass batch into the
// next one (classic group commit).
func (w *Writer) syncLoop() {
	defer close(w.done)
	ticker := time.NewTicker(w.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.quit:
			return
		case <-ticker.C:
			w.mu.Lock()
			dirty := len(w.buf) > 0 || len(w.tickets) > 0
			w.mu.Unlock()
			if !dirty {
				continue
			}
		case <-w.kick:
		}
		w.sync() // sticky error; ticket holders check Err
	}
}

// Err reports the writer's sticky error (nil while healthy). Commit ticket
// holders consult it after their ticket closes.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close performs a final sync and closes the segment.
func (w *Writer) Close() error {
	w.quitOnce.Do(func() { close(w.quit) })
	<-w.done
	serr := w.sync()
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.f != nil {
		// Trim the preallocated tail: a closed segment ends exactly at its
		// last record. Best-effort — replay tolerates padding regardless.
		_ = w.f.Truncate(int64(w.segBytes))
		if cerr := w.f.Close(); cerr != nil && serr == nil {
			serr = fmt.Errorf("journal: %w", cerr)
		}
		w.f = nil
	}
	return serr
}

// Abandon drops the writer without flushing: buffered-but-unsynced records
// are lost, exactly as a kill -9 would lose them. The chaos harness uses
// this to simulate process death in-process; bytes already handed to the
// OS by a sync pass survive (a process kill loses only user-space
// buffers), and so does everything fsynced.
func (w *Writer) Abandon() {
	w.quitOnce.Do(func() { close(w.quit) })
	<-w.done
	w.mu.Lock()
	if w.err == nil {
		w.err = errors.New("journal: abandoned")
	}
	w.buf, w.ends = nil, nil // the unflushed tail dies here
	tickets := w.tickets
	w.tickets = nil
	w.mu.Unlock()
	for _, t := range tickets {
		close(t)
	}
	w.syncMu.Lock()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	w.syncMu.Unlock()
}

// segment is one discovered segment file.
type segment struct {
	seq  int64
	path string
}

// segments lists a journal directory's segment files in sequence order.
func segments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || len(name) <= len(segPrefix)+len(segSuffix) ||
			name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
			continue
		}
		var seq int64
		if _, err := fmt.Sscanf(name[len(segPrefix):len(name)-len(segSuffix)], "%d", &seq); err != nil || seq <= 0 {
			continue
		}
		segs = append(segs, segment{seq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}
