package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"treeaa/internal/wire"
)

var update = flag.Bool("update", false, "rewrite the golden journal corpus")

// testRecords is a small mixed batch covering all three journal payloads.
func testRecords(n int) []any {
	recs := make([]any, 0, n)
	for i := 0; i < n; i++ {
		sid := uint64(1<<48 | i)
		switch i % 3 {
		case 0:
			recs = append(recs, wire.JournalOpen{SID: sid, Origin: 0, Tree: "path:8",
				Seed: int64(i), T: 1, Inputs: "0,7", TTLMillis: 1000,
				DeadlineUnixNano: int64(i) * 1e6})
		case 1:
			recs = append(recs, wire.JournalFrame{From: 2, Body: mustEncode(
				wire.SessionEOR{SID: sid, Round: i%7 + 1, Done: i%2 == 0})})
		default:
			recs = append(recs, wire.JournalSeal{SID: sid, State: 3,
				Reason: "deadline exceeded", LatencyNS: int64(i)})
		}
	}
	return recs
}

// mustEncode panics on error; the test payloads are known-good.
func mustEncode(p any) []byte {
	b, err := wire.Encode(p)
	if err != nil {
		panic(err)
	}
	return b
}

// replayAll collects every payload Replay yields.
func replayAll(t *testing.T, dir string, stats *Stats) []any {
	t.Helper()
	var got []any
	if err := Replay(dir, stats, func(p any) error {
		got = append(got, p)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(30)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	stats := &Stats{}
	got := replayAll(t, dir, stats)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		wantB := mustEncode(recs[i])
		gotB := mustEncode(got[i])
		if !bytes.Equal(wantB, gotB) {
			t.Fatalf("record %d: got %#v want %#v", i, got[i], recs[i])
		}
	}
	if stats.Replayed.Load() != int64(len(recs)) || stats.ReplaySkips.Load() != 0 {
		t.Fatalf("stats: replayed=%d skips=%d", stats.Replayed.Load(), stats.ReplaySkips.Load())
	}
}

func TestRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	w, err := Open(Options{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(60)
	for _, r := range recs[:40] {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments after rotation, got %d", len(segs))
	}
	// A second writer must append after the existing segments, never into them.
	w2, err := Open(Options{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[40:] {
		if err := w2.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir, nil)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records across reopen, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(mustEncode(recs[i]), mustEncode(got[i])) {
			t.Fatalf("record %d mismatch after reopen", i)
		}
	}
}

func TestCommitTicketDurability(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	seal := wire.JournalSeal{SID: 7, State: 2, HasResult: true, Rounds: 3,
		Outputs: []wire.OutputPair{{Party: 0, V: 1}}}
	ticket, err := w.Commit(seal)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ticket:
	case <-time.After(5 * time.Second):
		t.Fatal("commit ticket never resolved")
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if w.stats.Syncs.Load() == 0 {
		t.Fatal("ticket resolved without a sync")
	}
	// The record must already be durable: replay without closing the writer.
	got := replayAll(t, dir, nil)
	if len(got) != 1 {
		t.Fatalf("replayed %d records before Close, want 1", len(got))
	}
	w.Abandon()
}

func TestAbandonDropsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	// Huge interval so the syncer never runs: all durability is explicit.
	w, err := Open(Options{Dir: dir, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(9)
	for _, r := range recs[:6] {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[6:] {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Abandon() // simulated kill -9: the buffered tail must vanish
	got := replayAll(t, dir, nil)
	if len(got) != 6 {
		t.Fatalf("replayed %d records after abandon, want the 6 synced ones", len(got))
	}
	if err := w.Append(recs[0]); err == nil {
		t.Fatal("append after abandon succeeded")
	}
}

func TestReplayMissingDirIsEmpty(t *testing.T) {
	got := replayAll(t, filepath.Join(t.TempDir(), "never-created"), nil)
	if len(got) != 0 {
		t.Fatalf("replayed %d records from a missing dir", len(got))
	}
}

func TestReplayCallbackErrorStops(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords(6) {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	calls := 0
	err = Replay(dir, nil, func(any) error {
		calls++
		if calls == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err=%v calls=%d, want boom after 3", err, calls)
	}
}

// writeSegment writes raw bytes as a segment file with the given sequence.
func writeSegment(t *testing.T, dir string, seq int64, b []byte) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath(dir, seq), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// encodeRecord frames one payload exactly as the Writer does.
func encodeRecord(p any) []byte {
	body := mustEncode(p)
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(body)))
	var crcBuf [4]byte
	binary.BigEndian.PutUint32(crcBuf[:], crc32.Checksum(body, castagnoli))
	b = append(b, crcBuf[:]...)
	return append(b, body...)
}

// TestReplayTorture drives Replay through every damage shape: torn tails of
// all kinds are tolerated on the last segment, everything else is ErrCorrupt.
func TestReplayTorture(t *testing.T) {
	recs := testRecords(4)
	full := func(t *testing.T) []byte {
		var b []byte
		for _, r := range recs {
			b = append(b, encodeRecord(r)...)
		}
		return b
	}
	cases := []struct {
		name string
		// build writes segment files into dir.
		build       func(t *testing.T, dir string)
		wantReplay  int
		wantSkips   int64
		wantCorrupt bool
	}{
		{
			name: "truncated tail mid-body",
			build: func(t *testing.T, dir string) {
				b := full(t)
				writeSegment(t, dir, 1, b[:len(b)-3])
			},
			wantReplay: 3, wantSkips: 1,
		},
		{
			name: "truncated tail mid-length-prefix",
			build: func(t *testing.T, dir string) {
				b := full(t)
				last := encodeRecord(recs[3])
				// Keep only part of a multi-byte... the prefix here is 1 byte,
				// so chop to exactly the prefix: body and CRC both missing.
				writeSegment(t, dir, 1, b[:len(b)-len(last)+1])
			},
			wantReplay: 3, wantSkips: 1,
		},
		{
			name: "corrupt CRC on final record",
			build: func(t *testing.T, dir string) {
				b := full(t)
				b[len(b)-1] ^= 0xFF
				writeSegment(t, dir, 1, b)
			},
			wantReplay: 3, wantSkips: 1,
		},
		{
			name: "corrupt CRC mid-segment",
			build: func(t *testing.T, dir string) {
				b := encodeRecord(recs[0])
				bad := encodeRecord(recs[1])
				bad[len(bad)-1] ^= 0xFF
				b = append(b, bad...)
				b = append(b, encodeRecord(recs[2])...)
				writeSegment(t, dir, 1, b)
			},
			wantCorrupt: true,
		},
		{
			name: "torn record in non-final segment",
			build: func(t *testing.T, dir string) {
				b := full(t)
				writeSegment(t, dir, 1, b[:len(b)-3])
				writeSegment(t, dir, 2, encodeRecord(recs[0]))
			},
			wantCorrupt: true,
		},
		{
			// Segments are preallocated, so a zero run after the data is the
			// normal shape of a crash-abandoned segment, not damage.
			name: "zero padding tail",
			build: func(t *testing.T, dir string) {
				b := encodeRecord(recs[0])
				b = append(b, make([]byte, 512)...)
				writeSegment(t, dir, 1, b)
			},
			wantReplay: 1, wantSkips: 0,
		},
		{
			// Padding in a non-final segment is equally clean: the writer
			// crashed and a reopen sealed the segment off.
			name: "zero padding tail in sealed segment",
			build: func(t *testing.T, dir string) {
				b := encodeRecord(recs[0])
				b = append(b, make([]byte, 512)...)
				writeSegment(t, dir, 1, b)
				writeSegment(t, dir, 2, encodeRecord(recs[1]))
			},
			wantReplay: 2, wantSkips: 0,
		},
		{
			// A record can never legitimately sit past a zero run — the
			// writer appends contiguously.
			name: "valid record after zero padding",
			build: func(t *testing.T, dir string) {
				b := encodeRecord(recs[0])
				b = append(b, make([]byte, 64)...)
				b = append(b, encodeRecord(recs[1])...)
				writeSegment(t, dir, 1, b)
			},
			wantCorrupt: true,
		},
		{
			name: "oversized length prefix",
			build: func(t *testing.T, dir string) {
				var b []byte
				b = binary.AppendUvarint(b, uint64(maxRecordBytes)+1)
				b = append(b, full(t)...)
				writeSegment(t, dir, 1, b)
			},
			// Broken first record followed by what would be valid bytes, but
			// record framing is not self-synchronizing: the tail is dropped.
			wantReplay: 0, wantSkips: 1,
		},
		{
			name: "non-journal payload inside journal",
			build: func(t *testing.T, dir string) {
				b := encodeRecord(recs[0])
				b = append(b, encodeRecord(wire.SessionEOR{SID: 9, Round: 1})...)
				b = append(b, encodeRecord(recs[1])...)
				writeSegment(t, dir, 1, b)
			},
			wantCorrupt: true,
		},
		{
			name: "empty segment",
			build: func(t *testing.T, dir string) {
				writeSegment(t, dir, 1, full(t))
				writeSegment(t, dir, 2, nil)
			},
			wantReplay: 4,
		},
		{
			name: "garbage body with matching CRC",
			build: func(t *testing.T, dir string) {
				body := []byte{0xDE, 0xAD, 0xBE, 0xEF}
				var b []byte
				b = binary.AppendUvarint(b, uint64(len(body)))
				var crcBuf [4]byte
				binary.BigEndian.PutUint32(crcBuf[:], crc32.Checksum(body, castagnoli))
				b = append(b, crcBuf[:]...)
				b = append(b, body...)
				writeSegment(t, dir, 1, append(encodeRecord(recs[0]), b...))
			},
			wantReplay: 1, wantSkips: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.build(t, dir)
			stats := &Stats{}
			var got int
			err := Replay(dir, stats, func(any) error { got++; return nil })
			if tc.wantCorrupt {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("err=%v, want ErrCorrupt", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if got != tc.wantReplay || stats.ReplaySkips.Load() != tc.wantSkips {
				t.Fatalf("replayed=%d skips=%d, want %d/%d",
					got, stats.ReplaySkips.Load(), tc.wantReplay, tc.wantSkips)
			}
			// Replay must be idempotent: a second pass sees the same records.
			var again int
			if err := Replay(dir, nil, func(any) error { again++; return nil }); err != nil {
				t.Fatalf("second replay: %v", err)
			}
			if again != got {
				t.Fatalf("second replay saw %d records, first saw %d", again, got)
			}
		})
	}
}

func TestStatsCounters(t *testing.T) {
	dir := t.TempDir()
	stats := &Stats{}
	w, err := Open(Options{Dir: dir, Stats: stats, SegmentBytes: 256, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(12)
	var wantBytes int64
	for _, r := range recs {
		wantBytes += int64(len(encodeRecord(r)))
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := stats.Appends.Load(); got != int64(len(recs)) {
		t.Fatalf("Appends=%d want %d", got, len(recs))
	}
	if got := stats.AppendBytes.Load(); got != wantBytes {
		t.Fatalf("AppendBytes=%d want %d", got, wantBytes)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Rotation happens on the sync pass (Close runs the final one), never
	// at append time: appends are memory-only.
	if stats.Segment.Load() < 2 {
		t.Fatalf("Segment=%d, expected rotation past 1", stats.Segment.Load())
	}
	if stats.Depth.Load() != 0 {
		t.Fatalf("Depth=%d after Close, want 0", stats.Depth.Load())
	}
	replayAll(t, dir, stats)
	if stats.Replayed.Load() != int64(len(recs)) {
		t.Fatalf("Replayed=%d want %d", stats.Replayed.Load(), len(recs))
	}
	if stats.ReplayedSegs.Load() < 2 {
		t.Fatalf("ReplayedSegs=%d, expected several", stats.ReplayedSegs.Load())
	}
}

func TestOpenRejectsMissingDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open with empty Dir succeeded")
	}
}

func TestAppendRejectsNonWirePayload(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(struct{ X int }{1}); err == nil {
		t.Fatal("appending a non-wire payload succeeded")
	}
}

// TestGoldenCorpus replays the committed testdata/journal segment and pins
// its contents, so the record framing can't drift silently. Regenerate with
//
//	go test ./internal/journal/ -run TestGoldenCorpus -update
func TestGoldenCorpus(t *testing.T) {
	const corpusDir = "../../testdata/journal"
	if *update {
		if err := os.RemoveAll(corpusDir); err != nil {
			t.Fatal(err)
		}
		w, err := Open(Options{Dir: corpusDir, SegmentBytes: 192})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range testRecords(9) {
			if err := w.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// Leave a torn tail on the final segment so replay's tolerance is
		// pinned too.
		segs, err := segments(corpusDir)
		if err != nil {
			t.Fatal(err)
		}
		last := segs[len(segs)-1].path
		b, err := os.ReadFile(last)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(last, append(b, encodeRecord(testRecords(1)[0])[:5]...), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", corpusDir)
	}
	stats := &Stats{}
	got := replayAll(t, corpusDir, stats)
	if len(got) != 9 || stats.ReplaySkips.Load() != 1 {
		t.Fatalf("golden corpus: replayed=%d skips=%d, want 9/1", len(got), stats.ReplaySkips.Load())
	}
	want := testRecords(9)
	for i := range want {
		if !bytes.Equal(mustEncode(want[i]), mustEncode(got[i])) {
			t.Fatalf("golden corpus record %d drifted", i)
		}
	}
}
