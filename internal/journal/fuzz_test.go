package journal

import (
	"testing"
)

// FuzzReplay feeds arbitrary bytes to replay as a single journal segment:
// whatever the damage, replay must never panic, and must either succeed
// (possibly dropping a torn tail) or fail with ErrCorrupt-shaped errors.
func FuzzReplay(f *testing.F) {
	// Seed with a healthy segment, its truncations, and single-byte flips.
	var healthy []byte
	for _, r := range testRecords(6) {
		healthy = append(healthy, encodeRecord(r)...)
	}
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3])
	f.Add(healthy[:1])
	f.Add([]byte{})
	for _, i := range []int{0, 1, 5, len(healthy) / 2, len(healthy) - 1} {
		flipped := append([]byte(nil), healthy...)
		flipped[i] ^= 0xFF
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		writeSegment(t, dir, 1, data)
		var n int
		if err := Replay(dir, nil, func(any) error { n++; return nil }); err != nil {
			return
		}
		// On success a second replay must be idempotent.
		var again int
		if err := Replay(dir, nil, func(any) error { again++; return nil }); err != nil {
			t.Fatalf("replay succeeded then failed: %v", err)
		}
		if again != n {
			t.Fatalf("replay not idempotent: %d then %d records", n, again)
		}
	})
}
