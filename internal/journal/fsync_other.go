//go:build !linux

package journal

import "os"

func preallocate(*os.File, int) {}

func datasync(f *os.File) error { return f.Sync() }
