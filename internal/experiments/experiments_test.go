package experiments

import (
	"math"
	"strings"
	"testing"

	"treeaa/internal/core"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// TestE2NormalizedCurvesFlat is the E2/E5 shape regression: TreeAA rounds
// normalized by log2V/log2log2V and baseline rounds normalized by log2D
// must stay within a narrow band across families and sizes.
func TestE2NormalizedCurvesFlat(t *testing.T) {
	rows, err := E2RoundsSweep(DefaultFamilies(), []int{64, 256, 1024}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 12 {
		t.Fatalf("only %d rows", len(rows))
	}
	for _, r := range rows {
		treeNorm := float64(r.TreeAARounds) / r.Theory
		baseNorm := float64(r.BaseRounds) / math.Log2(float64(r.D))
		// Path input spaces take the Section 4 shortcut (one RealAA phase),
		// roughly halving the normalized constant.
		lo, hi := 12.0, 26.0
		if r.Family == "path" {
			lo, hi = 6.0, 14.0
		}
		if treeNorm < lo || treeNorm > hi {
			t.Errorf("%s V=%d: treeaa_norm = %.2f outside [%g,%g]", r.Family, r.V, treeNorm, lo, hi)
		}
		if baseNorm < 0.8 || baseNorm > 3 {
			t.Errorf("%s V=%d: baseline_norm = %.2f outside [0.8,3]", r.Family, r.V, baseNorm)
		}
		if r.LowerBound > r.TreeAARounds {
			t.Errorf("%s V=%d: lower bound %d exceeds protocol rounds %d", r.Family, r.V, r.LowerBound, r.TreeAARounds)
		}
	}
	tab := E2Table(rows)
	if tab.Len() != len(rows) {
		t.Errorf("table rows = %d, want %d", tab.Len(), len(rows))
	}
	a, b := E2Series(rows, "path")
	if len(a.Points) != 3 || len(b.Points) != 3 {
		t.Errorf("series points = %d/%d, want 3/3", len(a.Points), len(b.Points))
	}
}

func TestE3Tables(t *testing.T) {
	diams := []float64{1e2, 1e6}
	k := E3KTable(10, 3, diams)
	if k.Len() != 5 { // R = 1..t+2
		t.Errorf("K table rows = %d, want 5", k.Len())
	}
	m := E3MinRoundsTable(10, 3, diams)
	if m.Len() != 2 {
		t.Errorf("minRounds table rows = %d", m.Len())
	}
	if !strings.Contains(k.String(), "sup") {
		t.Error("K table missing sup column")
	}
}

// TestE4ShapeDetectionWins is the E4 regression: under attack, RealAA's
// measured convergence beats DLPSW's whenever t << log2(D) — at D=1e6,
// t=3 the paper-predicted regime.
func TestE4ShapeDetectionWins(t *testing.T) {
	rows, err := E4DetectAblation(10, 3, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]E4Row{}
	for _, r := range rows {
		byKey[r.Protocol+"/"+r.Adversary] = r
		if !r.Valid {
			t.Errorf("%s/%s: AA violated (range %v)", r.Protocol, r.Adversary, r.FinalRange)
		}
	}
	real := byKey["RealAA/splitvote"]
	classic := byKey["DLPSW/splitter"]
	if real.MeasuredRounds >= classic.MeasuredRounds {
		t.Errorf("detection advantage missing: RealAA %d rounds vs DLPSW %d",
			real.MeasuredRounds, classic.MeasuredRounds)
	}
	if E4Table(rows).Len() != len(rows) {
		t.Error("table size mismatch")
	}
}

func TestE5cAsyncDepthGrowsWithD(t *testing.T) {
	tab, err := E5cAsyncDepth(4, 1, []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("rows = %d", tab.Len())
	}
}

func TestE5bExactCostGrowsWithN(t *testing.T) {
	tab, err := E5bExactCost(tree.NewPath(32), []int{4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("rows = %d", tab.Len())
	}
}

// TestE6MatrixAllOK is the resilience regression: every strategy row must
// report valid outputs within distance 1.
func TestE6MatrixAllOK(t *testing.T) {
	rows, err := E6Matrix(tree.NewPath(64), 7, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 strategies", len(rows))
	}
	for _, r := range rows {
		if !r.Valid || r.MaxDist > 1 {
			t.Errorf("%s: valid=%v maxDist=%d", r.Adversary, r.Valid, r.MaxDist)
		}
	}
	if E6Table(rows).Len() != 7 {
		t.Error("table size mismatch")
	}
}

func TestSpreadInputsBounds(t *testing.T) {
	tr := tree.NewPath(10)
	in := SpreadInputs(tr, 4)
	if in[0] != 0 || in[3] != 9 {
		t.Errorf("SpreadInputs = %v", in)
	}
	if got := SpreadInputs(tr, 1); got[0] != 0 {
		t.Errorf("single input = %v", got)
	}
}

func TestJudge(t *testing.T) {
	tr := tree.Figure3Tree()
	inputs := []tree.VertexID{tr.MustVertex("v3"), tr.MustVertex("v5"), tr.MustVertex("v8")}
	corrupt := map[sim.PartyID]bool{2: true}
	outputs := map[sim.PartyID]tree.VertexID{
		0: tr.MustVertex("v2"),
		1: tr.MustVertex("v3"),
		2: tr.MustVertex("v8"), // corrupted: ignored
	}
	maxDist, valid := Judge(tr, inputs, corrupt, outputs)
	if !valid || maxDist != 1 {
		t.Errorf("Judge = (%d, %v), want (1, true)", maxDist, valid)
	}
	outputs[1] = tr.MustVertex("v7") // outside hull {v2,v3,v5}... v7 invalid
	if _, valid := Judge(tr, inputs, corrupt, outputs); valid {
		t.Error("invalid output not flagged")
	}
}

// TestE8QuadraticMessages asserts the Θ(R·n²) message shape: messages per
// round per n² stays within a tight constant band as n grows.
func TestE8QuadraticMessages(t *testing.T) {
	tab, err := E8MessageComplexity(tree.NewPath(64), []int{4, 7, 13})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("rows = %d", tab.Len())
	}
	// Recompute directly for the band check.
	for _, n := range []int{4, 13} {
		inputs := SpreadInputs(tree.NewPath(64), n)
		res, err := coreRun(tree.NewPath(64), n, (n-1)/3, inputs)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(res.Messages) / float64(res.Rounds) / float64(n*n)
		if ratio < 1.0 || ratio > 2.2 {
			t.Errorf("n=%d: msgs/round/n² = %.3f outside [1.0, 2.2]", n, ratio)
		}
	}
}

func coreRun(tr *tree.Tree, n, tc int, inputs []tree.VertexID) (*core.Result, error) {
	return core.Run(tr, n, tc, inputs, nil)
}

func TestE1SweepMatchesFormula(t *testing.T) {
	rows, err := E1RoundsSweep(7, 2, []float64{10, 1e3, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Valid || r.FinalRange != 0 {
			t.Errorf("D=%g: final range %v valid=%v", r.D, r.FinalRange, r.Valid)
		}
		if diff := r.ScheduleRounds - r.FormulaRounds; diff < 0 || diff > 1 {
			t.Errorf("D=%g: schedule %d vs formula %d", r.D, r.ScheduleRounds, r.FormulaRounds)
		}
	}
	if E1Table(rows).Len() != 3 {
		t.Error("table size mismatch")
	}
}
