// Package experiments is the tested experiment library behind the cmd/
// binaries and EXPERIMENTS.md: each function regenerates one experiment
// from DESIGN.md's index (E1–E6) as metrics tables/series. Keeping the
// generation here — instead of inside main packages — lets the test suite
// assert the experimental *shapes* (normalized curves flat, divergence
// equal to the attack budget, bounds ordered) on every run.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"treeaa/internal/adversary"
	"treeaa/internal/async"
	"treeaa/internal/baseline"
	"treeaa/internal/core"
	"treeaa/internal/exactaa"
	"treeaa/internal/lowerbound"
	"treeaa/internal/metrics"
	"treeaa/internal/realaa"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// SpreadInputs places n inputs evenly across the vertex range.
func SpreadInputs(tr *tree.Tree, n int) []tree.VertexID {
	denom := n - 1
	if denom < 1 {
		denom = 1
	}
	inputs := make([]tree.VertexID, n)
	for i := range inputs {
		inputs[i] = tree.VertexID(i * (tr.NumVertices() - 1) / denom)
	}
	return inputs
}

// pseudoSpread returns a deterministic non-symmetric spread of n values in
// [0, d] (symmetric inputs can coincidentally neutralize splitters).
func pseudoSpread(n int, d float64) []float64 {
	inputs := make([]float64, n)
	for i := range inputs {
		inputs[i] = d * float64((i*37+13)%101) / 101
	}
	return inputs
}

// Family is a named tree generator for sweeps.
type Family struct {
	Name string
	Make func(size int) *tree.Tree
}

// DefaultFamilies returns the five standard families used by E2/E5.
func DefaultFamilies() []Family {
	return []Family{
		{"path", tree.NewPath},
		{"caterpillar", func(s int) *tree.Tree { return tree.NewCaterpillar((s+2)/3, 2) }},
		{"spider", func(s int) *tree.Tree { return tree.NewSpider(4, (s+3)/4) }},
		{"kary", func(s int) *tree.Tree {
			depth := int(math.Round(math.Log2(float64(s+1)))) - 1
			if depth < 1 {
				depth = 1
			}
			return tree.NewCompleteKAry(2, depth)
		}},
		{"random", func(s int) *tree.Tree { return tree.RandomPruefer(s, rand.New(rand.NewSource(42))) }},
	}
}

// E1Row is one measurement of the Theorem 3 round-formula sweep.
type E1Row struct {
	D              float64
	ScheduleRounds int // 3·Iterations + 1 (incl. final processing)
	FormulaRounds  int // R_RealAA(D, 1) as implemented (with the F-A margin)
	FinalRange     float64
	Valid          bool
}

// E1RoundsSweep measures RealAA's fixed schedule and final spread across
// input diameters (experiment E1), with no adversary: validity must yield a
// final range of 0. The diameters run in parallel (each execution is an
// independent deterministic protocol run); row order follows the input.
func E1RoundsSweep(n, t int, diameters []float64) ([]E1Row, error) {
	rows := make([]E1Row, len(diameters))
	err := sim.ForEach(len(diameters), func(i int) error {
		d := diameters[i]
		inputs := pseudoSpread(n, d)
		outputs, _, err := realaa.RunReal(n, t, inputs, d, 1, true, nil)
		if err != nil {
			return fmt.Errorf("experiments: E1 D=%g: %w", d, err)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range outputs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		rows[i] = E1Row{
			D:              d,
			ScheduleRounds: 3*realaa.Iterations(d, 1) + 1,
			FormulaRounds:  realaa.Rounds(d, 1),
			FinalRange:     hi - lo,
			Valid:          lo >= -1e-9 && hi <= d+1e-9,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// E1Table renders the sweep.
func E1Table(rows []E1Row) *metrics.Table {
	tab := metrics.NewTable("D", "schedule_rounds", "formula_rounds", "final_range", "valid")
	for _, r := range rows {
		tab.AddRow(r.D, r.ScheduleRounds, r.FormulaRounds, r.FinalRange, r.Valid)
	}
	return tab
}

// E2Row is one measurement of the E2/E5 sweep.
type E2Row struct {
	Family       string
	V, D         int
	TreeAARounds int
	BaseRounds   int
	LowerBound   int
	Theory       float64 // log2 V / log2 log2 V
}

// E2RoundsSweep measures TreeAA and the baseline across families and sizes
// (experiments E2 and E5). The (family, size) cells run in parallel —
// every cell builds its own tree and trees are immutable once built — and
// the rows keep the sequential family-major order.
func E2RoundsSweep(families []Family, sizes []int, n, t int) ([]E2Row, error) {
	type cell struct {
		f    Family
		size int
	}
	var cells []cell
	for _, f := range families {
		for _, size := range sizes {
			cells = append(cells, cell{f, size})
		}
	}
	rows := make([]E2Row, len(cells))
	skip := make([]bool, len(cells))
	err := sim.ForEach(len(cells), func(i int) error {
		f, size := cells[i].f, cells[i].size
		tr := f.Make(size)
		d, _, _ := tr.Diameter()
		if d <= 1 {
			skip[i] = true
			return nil
		}
		inputs := SpreadInputs(tr, n)
		res, err := core.Run(tr, n, t, inputs, nil)
		if err != nil {
			return fmt.Errorf("experiments: %s V=%d: %w", f.Name, size, err)
		}
		_, bres, err := baseline.Run(tr, n, t, inputs, nil)
		if err != nil {
			return fmt.Errorf("experiments: %s V=%d baseline: %w", f.Name, size, err)
		}
		v := float64(tr.NumVertices())
		rows[i] = E2Row{
			Family: f.Name, V: tr.NumVertices(), D: d,
			TreeAARounds: res.Rounds, BaseRounds: bres.Rounds,
			LowerBound: lowerbound.MinRounds(float64(d), n, t),
			Theory:     math.Log2(v) / math.Log2(math.Log2(v)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	kept := rows[:0]
	for i, r := range rows {
		if !skip[i] {
			kept = append(kept, r)
		}
	}
	return kept, nil
}

// E2Table renders the sweep with the normalized columns EXPERIMENTS.md
// discusses.
func E2Table(rows []E2Row) *metrics.Table {
	tab := metrics.NewTable("family", "V", "D",
		"treeaa_rounds", "baseline_rounds", "lowerbound", "logV_loglogV", "treeaa_norm", "baseline_norm")
	for _, r := range rows {
		tab.AddRow(r.Family, r.V, r.D, r.TreeAARounds, r.BaseRounds, r.LowerBound,
			r.Theory, float64(r.TreeAARounds)/r.Theory, float64(r.BaseRounds)/math.Log2(float64(r.D)))
	}
	return tab
}

// E2Series extracts (log2 V, rounds) series for one family.
func E2Series(rows []E2Row, family string) (treeAA, base metrics.Series) {
	treeAA.Name = "treeaa"
	base.Name = "baseline(logD)"
	for _, r := range rows {
		if r.Family != family {
			continue
		}
		x := math.Log2(float64(r.V))
		treeAA.Add(x, float64(r.TreeAARounds))
		base.Add(x, float64(r.BaseRounds))
	}
	return treeAA, base
}

// E3KTable renders log2 K(R, D) for R = 1..t+2 across diameters, with the
// exact partition supremum (experiment E3, Theorem 1/Corollary 1).
func E3KTable(n, t int, diameters []float64) *metrics.Table {
	headers := []string{"R", "sup(t1..tR)"}
	for _, d := range diameters {
		headers = append(headers, fmt.Sprintf("log2K_D%g", d))
	}
	tab := metrics.NewTable(headers...)
	for r := 1; r <= t+2; r++ {
		row := []any{r, lowerbound.PartitionProduct(t, r).String()}
		for _, d := range diameters {
			row = append(row, lowerbound.Log2K(r, d, n, t))
		}
		tab.AddRow(row...)
	}
	return tab
}

// E3MinRoundsTable renders the exact minimal rounds against the Theorem 2
// closed form.
func E3MinRoundsTable(n, t int, diameters []float64) *metrics.Table {
	tab := metrics.NewTable("D", "minRounds_exact", "thm2_formula")
	for _, d := range diameters {
		tab.AddRow(d, lowerbound.MinRounds(d, n, t), lowerbound.Theorem2Formula(d, n, t))
	}
	return tab
}

// E4Row is one protocol/adversary cell of the detection ablation.
type E4Row struct {
	Protocol, Adversary string
	BudgetRounds        int
	MeasuredRounds      int
	FinalRange          float64
	Valid               bool
}

// E4DetectAblation runs RealAA and DLPSW under their strongest implemented
// attacks (experiment E4).
func E4DetectAblation(n, t int, d float64) ([]E4Row, error) {
	inputs := pseudoSpread(n, d)
	ids := adversary.FirstParties(n, t)
	type variant struct {
		protocol, advName string
		detect            bool
		adv               sim.Adversary
	}
	variants := []variant{
		{"RealAA", "none", true, nil},
		{"RealAA", "splitvote", true, &adversary.SplitVote{IDs: ids, N: n, T: t, Tag: "real", PerIteration: 1}},
		{"RealAA", "equivocator", true, &adversary.GradecastEquivocator{IDs: ids, N: n, Tag: "real", Lo: -d, Hi: 2 * d}},
		{"RealAA", "halfburn", true, &adversary.HalfBurn{IDs: ids, N: n, T: t, Tag: "real"}},
		{"DLPSW", "none", false, nil},
		{"DLPSW", "splitter", false, &adversary.DLPSWSplitter{IDs: ids, N: n, Tag: "real"}},
	}
	rows := make([]E4Row, len(variants))
	err := sim.ForEach(len(variants), func(i int) error {
		v := variants[i]
		outputs, histories, err := realaa.RunReal(n, t, inputs, d, 1, v.detect, v.adv)
		if err != nil {
			return fmt.Errorf("experiments: %s/%s: %w", v.protocol, v.advName, err)
		}
		roundsPerIter, budget := 1, realaa.DLPSWIterations(d, 1)+1
		if v.detect {
			roundsPerIter, budget = 3, 3*realaa.Iterations(d, 1)+1
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, out := range outputs {
			lo = math.Min(lo, out)
			hi = math.Max(hi, out)
		}
		rows[i] = E4Row{
			Protocol: v.protocol, Adversary: v.advName,
			BudgetRounds:   budget,
			MeasuredRounds: realaa.ConvergenceRound(histories, 1, roundsPerIter),
			FinalRange:     hi - lo,
			Valid:          lo >= -1e-9 && hi <= d+1e-9 && hi-lo <= 1+1e-9,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// E4Table renders the ablation.
func E4Table(rows []E4Row) *metrics.Table {
	tab := metrics.NewTable("protocol", "adversary", "budget_rounds", "measured_rounds", "final_range", "valid")
	for _, r := range rows {
		tab.AddRow(r.Protocol, r.Adversary, r.BudgetRounds, r.MeasuredRounds, r.FinalRange, r.Valid)
	}
	return tab
}

// E5cAsyncDepth measures the asynchronous NR-style protocol's causal depth
// across diameters (experiment E5c).
func E5cAsyncDepth(n, t int, diameters []int) (*metrics.Table, error) {
	tab := metrics.NewTable("D", "iterations", "async_depth", "deliveries")
	for _, d := range diameters {
		tr := tree.NewPath(d + 1)
		inputs := SpreadInputs(tr, n)
		iters := async.TreeIterations(d)
		machines := make([]async.Machine, n)
		for p := 0; p < n; p++ {
			machines[p] = async.NewTreeAA(tr, n, t, async.PartyID(p), inputs[p], iters)
		}
		res, err := async.Run(async.Config{N: n, MaxDeliveries: 5_000_000}, machines)
		if err != nil {
			return nil, fmt.Errorf("experiments: async D=%d: %w", d, err)
		}
		tab.AddRow(d, iters, res.Depth, res.Deliveries)
	}
	return tab, nil
}

// E5bExactCost measures the Dolev–Strong exact-agreement comparator's round
// growth in n against TreeAA's flat rounds (experiment E5b).
func E5bExactCost(tr *tree.Tree, ns []int) (*metrics.Table, error) {
	tab := metrics.NewTable("n", "t", "dolevstrong_rounds", "treeaa_rounds")
	for _, n := range ns {
		t := (n - 1) / 3
		inputs := SpreadInputs(tr, n)
		_, eres, err := exactaa.Run(tr, n, t, inputs, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: exactaa n=%d: %w", n, err)
		}
		res, err := core.Run(tr, n, t, inputs, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: treeaa n=%d: %w", n, err)
		}
		tab.AddRow(n, t, eres.Rounds, res.Rounds)
	}
	return tab, nil
}

// E6Row is one adversary cell of the TreeAA correctness matrix.
type E6Row struct {
	Adversary string
	Rounds    int
	Messages  int
	Bytes     int
	MaxDist   int
	Valid     bool
}

// E6Matrix runs TreeAA under every strategy at the given corruption level
// (experiments E1/E6).
func E6Matrix(tr *tree.Tree, n, t int, seed int64) ([]E6Row, error) {
	inputs := SpreadInputs(tr, n)
	ids := adversary.FirstParties(n, t)
	corrupt := make(map[sim.PartyID]bool, len(ids))
	for _, id := range ids {
		corrupt[id] = true
	}
	phases := core.PhaseTags(tr)
	perPhase := func(mk func(p core.PhaseTag, k int) sim.Adversary) sim.Adversary {
		var parts []sim.Adversary
		for k, p := range phases {
			parts = append(parts, mk(p, k))
		}
		return &adversary.Compose{Strategies: parts}
	}
	strategies := []struct {
		name string
		adv  sim.Adversary
	}{
		{"none", nil},
		{"silent", &adversary.Silent{IDs: ids}},
		{"equivocator", perPhase(func(p core.PhaseTag, _ int) sim.Adversary {
			return &adversary.GradecastEquivocator{IDs: ids, N: n, Tag: p.Tag, StartRound: p.StartRound, Lo: -100, Hi: 1e6}
		})},
		{"splitvote", perPhase(func(p core.PhaseTag, _ int) sim.Adversary {
			return &adversary.SplitVote{IDs: ids, N: n, T: t, Tag: p.Tag, StartRound: p.StartRound, PerIteration: 1}
		})},
		{"halfburn", perPhase(func(p core.PhaseTag, _ int) sim.Adversary {
			return &adversary.HalfBurn{IDs: ids, N: n, T: t, Tag: p.Tag, StartRound: p.StartRound}
		})},
		{"replay", &adversary.Replay{IDs: ids, Delay: 3}},
		{"noise", perPhase(func(p core.PhaseTag, k int) sim.Adversary {
			return &adversary.RandomNoise{IDs: ids, N: n, Tag: p.Tag, StartRound: p.StartRound, Seed: seed + int64(1000*k), MaxVal: 2 * tr.NumVertices()}
		})},
	}
	// The strategies run in parallel: each adversary value is used by
	// exactly one execution, and the shared tree is immutable.
	rows := make([]E6Row, len(strategies))
	err := sim.ForEach(len(strategies), func(i int) error {
		s := strategies[i]
		res, err := core.Run(tr, n, t, inputs, s.adv)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", s.name, err)
		}
		maxDist, valid := Judge(tr, inputs, corrupt, res.Outputs)
		rows[i] = E6Row{
			Adversary: s.name, Rounds: res.Rounds, Messages: res.Messages,
			Bytes: res.Bytes, MaxDist: maxDist, Valid: valid,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// E6Table renders the matrix.
func E6Table(rows []E6Row) *metrics.Table {
	tab := metrics.NewTable("adversary", "rounds", "messages", "kbytes", "max_out_dist", "valid", "ok")
	for _, r := range rows {
		tab.AddRow(r.Adversary, r.Rounds, r.Messages, float64(r.Bytes)/1024, r.MaxDist, r.Valid, r.Valid && r.MaxDist <= 1)
	}
	return tab
}

// E8MessageComplexity measures TreeAA's traffic growth in n on a fixed
// tree (experiment E8): the batched gradecast implementation sends two
// vector messages per party per round (the value instance plus the
// suspicion-set instance), so totals grow as Θ(R·n²) point-to-point
// messages of O(n)-sized payloads — an improvement in message count over
// the O(R·n³) bookkeeping bound quoted for [6], paid for in message size.
func E8MessageComplexity(tr *tree.Tree, ns []int) (*metrics.Table, error) {
	tab := metrics.NewTable("n", "t", "rounds", "messages", "bytes", "msgs_per_round_n2")
	for _, n := range ns {
		t := (n - 1) / 3
		inputs := SpreadInputs(tr, n)
		res, err := core.Run(tr, n, t, inputs, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: n=%d: %w", n, err)
		}
		tab.AddRow(n, t, res.Rounds, res.Messages, res.Bytes,
			float64(res.Messages)/float64(res.Rounds)/float64(n*n))
	}
	return tab, nil
}

// Judge evaluates Definition 2 over honest outputs: the maximum pairwise
// output distance and whether every output lies in the honest hull.
func Judge(tr *tree.Tree, inputs []tree.VertexID, corrupt map[sim.PartyID]bool, outputs map[sim.PartyID]tree.VertexID) (maxDist int, allValid bool) {
	var honestIn []tree.VertexID
	for i, v := range inputs {
		if !corrupt[sim.PartyID(i)] {
			honestIn = append(honestIn, v)
		}
	}
	hull := make(map[tree.VertexID]bool)
	for _, v := range tr.ConvexHull(honestIn) {
		hull[v] = true
	}
	allValid = true
	var outs []tree.VertexID
	for p, v := range outputs {
		if corrupt[p] {
			continue
		}
		if !hull[v] {
			allValid = false
		}
		outs = append(outs, v)
	}
	for i := range outs {
		for j := i + 1; j < len(outs); j++ {
			if d := tr.Dist(outs[i], outs[j]); d > maxDist {
				maxDist = d
			}
		}
	}
	return maxDist, allValid
}
