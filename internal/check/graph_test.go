package check

// Graph-cell checker tests: space= specs parse and round-trip, graph cells
// run clean across every clause family (with the sequential/concurrent and
// TCP differentials), the generator's graph arm compiles, the out-of-model
// evil tamperer is caught on graph spaces, and the shrinker prunes blocks
// and shortens cycles through the Space field.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"treeaa/internal/cli"
)

func mustSpace(t *testing.T, spec string, seed int64) *cli.Space {
	t.Helper()
	sp, err := cli.ParseSpaceSpec(spec, seed)
	if err != nil {
		t.Fatalf("ParseSpaceSpec(%q): %v", spec, err)
	}
	return sp
}

func TestGraphSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"s=1;space=graph:cycle:9;n=4;t=1;in=spread;adv=splitvote(per=1)",
		"s=5;space=graph:cliquechain:3:4;n=7;t=2;in=spread;adv=equivocator(hi=1000,lo=-100)",
		"s=2;space=graph:cactus:2:4;n=6;t=1;in=0.3.4.2.1.5;adv=noise(maxval=20)",
		"s=7;space=graph:randomblock:12;n=5;t=1;in=spread;adv=halfburn+mutate(rate=100)",
		"s=9;space=graph:clique:5;n=4;t=0;in=spread",
	} {
		c, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := c.String(); got != spec {
			t.Errorf("round trip:\n in:  %s\n out: %s", spec, got)
		}
	}
}

func TestGraphSpecErrors(t *testing.T) {
	// Parse-level: a spec line must carry exactly one of tree= / space=.
	for _, spec := range []string{
		"s=1;n=4;t=1;in=spread",                                 // neither
		"s=1;tree=path:5;space=graph:cycle:9;n=4;t=1;in=spread", // both
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
	// Compile-level: bad graph specs and out-of-space inputs.
	for _, spec := range []string{
		"s=1;space=graph:nope:4;n=4;t=1;in=spread",   // unknown generator
		"s=1;space=graph:cycle:9;n=4;t=1;in=0.1.2.9", // vertex outside graph
		"s=1;space=graph:cycle:2;n=4;t=1;in=spread",  // degenerate cycle
		"s=1;space=path:5;n=4;t=1;in=spread",         // missing graph: prefix
	} {
		c, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if _, err := RunCell(c, Options{}); err == nil {
			t.Errorf("RunCell(%q) succeeded, want compile error", spec)
		}
	}
	// A Cell built directly with both fields set must not compile either.
	both := &Cell{Seed: 1, TreeSpec: "path:5", Space: "graph:cycle:9", N: 4}
	if _, err := RunCell(both, Options{}); err == nil {
		t.Error("cell with both tree and space compiled")
	}
}

// TestGraphDifferentialCells pins the sequential/concurrent differential and
// every invariant on a fixed matrix of graph cells covering each clause
// family and each graph shape.
func TestGraphDifferentialCells(t *testing.T) {
	for _, spec := range []string{
		"s=1;space=graph:cliquechain:3:4;n=7;t=2;in=spread;adv=splitvote(per=1)",
		"s=2;space=graph:cycle:9;n=7;t=2;in=spread;adv=halfburn+mutate(rate=300)",
		"s=3;space=graph:clique:6;n=6;t=1;in=spread;adv=noise(maxval=12)",
		"s=4;space=graph:cactus:3:4;n=7;t=2;in=spread;adv=equivocator(hi=1000,lo=-100)+omit(drop=500)",
		"s=5;space=graph:cliquechain:2:3;n=5;t=1;in=spread;adv=crash(rounds=3)",
		"s=6;space=graph:randomblock:10;n=4;t=1;in=spread;adv=replay(delay=2)+mutate(rate=500)",
		"s=7;space=graph:cactus:2:5;n=9;t=2;in=spread;adv=frame(fake=5)",
		"s=8;space=graph:cycle:6;n=4;t=0;in=spread",
		"s=9;space=graph:cliquechain:3:3;n=9;t=2;in=0.0.0.6.6.6.3.3.3;adv=silent",
	} {
		res, err := RunCell(MustParse(spec), Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for _, v := range res.Violations {
			t.Errorf("%s", v)
		}
	}
}

// TestGraphTCPDifferential runs the TCP comparison on one compatible graph
// cell: the wire carries block-cut-tree vertex payloads end to end.
func TestGraphTCPDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp cluster in -short mode")
	}
	res, err := RunCell(MustParse("s=1;space=graph:cliquechain:3:4;n=4;t=1;in=spread;adv=splitvote(per=1)"), Options{TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TCPChecked {
		t.Fatal("TCP differential did not run on a compatible graph cell")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestGeneratedGraphCellsAreClean anchors the generator's graph arm: bounded
// random exploration of graph-only cells finds no violations, every cell is
// a graph cell, round-trips through its spec line, and is async-incompatible.
func TestGeneratedGraphCellsAreClean(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 15; i++ {
		c := GenerateIn(rng, "graph")
		if !strings.HasPrefix(c.Space, "graph:") || c.TreeSpec != "" {
			t.Fatalf("cell %d is not a pure graph cell: %s", i, c)
		}
		if AsyncCompatible(c) {
			t.Errorf("graph cell %s reported async-compatible", c)
		}
		c2, err := Parse(c.String())
		if err != nil {
			t.Fatalf("generated graph cell %s does not re-parse: %v", c, err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Errorf("re-parsed cell differs:\n gen:    %#v\n parsed: %#v", c, c2)
		}
		res, err := RunCell(c, Options{})
		if err != nil {
			t.Fatalf("cell %d (%s): %v", i, c, err)
		}
		for _, v := range res.Violations {
			t.Errorf("cell %d: %s", i, v)
		}
	}
	// The tree-only filter must never emit a graph cell.
	for i := 0; i < 10; i++ {
		if c := GenerateIn(rng, "tree"); c.Space != "" {
			t.Fatalf("tree-only generation produced graph cell %s", c)
		}
	}
}

// graphEvilSpec concentrates every input on one vertex of a clique chain and
// lets the out-of-model evil tamperer drag the agreed value away: the decoded
// outputs land outside the one-vertex honest hull, deterministically.
const graphEvilSpec = "s=1;space=graph:cliquechain:3:4;n=9;t=2;in=1.1.1.1.1.1.1.1.1;adv=splitvote(per=1)+evil(val=1000000)"

// TestGraphEvilIsCaught: the checker detects the evil tamperer on graph
// spaces as a validity violation against the geodesic hull.
func TestGraphEvilIsCaught(t *testing.T) {
	c := MustParse(graphEvilSpec)
	first, err := RunCell(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hasValidity := false
	for _, v := range first.Violations {
		if v.Invariant == "validity" {
			hasValidity = true
		}
	}
	if !hasValidity {
		t.Fatalf("evil graph cell produced no validity violation: %v", first.Violations)
	}
	again, err := RunCell(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Errorf("evil graph cell is not deterministic:\n 1st: %+v\n 2nd: %+v", first, again)
	}
}

// TestGraphEvilShrinks: the shrinker minimizes through the Space field —
// dropping the decoy clause, collapsing t, and pruning the clique chain —
// while the shrunk cell stays a graph cell and still violates.
func TestGraphEvilShrinks(t *testing.T) {
	c := MustParse(graphEvilSpec)
	shrunk, runs := Shrink(c, Options{}, 300)
	if runs == 0 {
		t.Fatal("shrinker spent no runs")
	}
	if !Violates(shrunk, Options{}) {
		t.Fatalf("shrunk cell %s no longer violates", shrunk)
	}
	if !strings.HasPrefix(shrunk.Space, "graph:cliquechain:") || shrunk.TreeSpec != "" {
		t.Fatalf("shrunk cell %s left the graph space", shrunk)
	}
	if len(shrunk.Clauses) != 1 || shrunk.Clauses[0].Name != "evil" {
		t.Errorf("shrunk cell kept clauses %v, want only evil", shrunk.Clauses)
	}
	if shrunk.N >= c.N {
		t.Errorf("shrunk cell kept n = %d, want < %d", shrunk.N, c.N)
	}
	if shrunk.Space == c.Space {
		t.Errorf("shrunk cell kept the full space %s", shrunk.Space)
	}
	t.Logf("shrunk: %s (%d runs)", shrunk, runs)
}

// TestGraphShrinkCandidates pins the Space-field reductions: block pruning
// and block shrinking on clique chains, cycle shortening on cycles, and
// input clamping into the reduced space.
func TestGraphShrinkCandidates(t *testing.T) {
	c := MustParse("s=1;space=graph:cliquechain:3:4;n=4;t=1;in=0.9.5.2;adv=silent")
	want := map[string]bool{"graph:cliquechain:1:4": false, "graph:cliquechain:2:4": false,
		"graph:cliquechain:3:2": false, "graph:cliquechain:3:3": false}
	for _, cand := range candidates(c) {
		if cand.TreeSpec != "" {
			t.Fatalf("graph candidate grew a tree spec: %s", cand)
		}
		if _, ok := want[cand.Space]; ok {
			want[cand.Space] = true
			if cand.Inputs != nil {
				sp := mustSpace(t, cand.Space, cand.Seed)
				for _, in := range cand.Inputs {
					if int(in) >= sp.NumVertices() {
						t.Errorf("candidate %s kept input %d outside the shrunk space", cand, int(in))
					}
				}
			}
		}
	}
	for spec, seen := range want {
		if !seen {
			t.Errorf("no candidate shrank the space to %s", spec)
		}
	}

	cyc := MustParse("s=1;space=graph:cycle:9;n=4;t=1;in=spread;adv=silent")
	sawShorter := false
	for _, cand := range candidates(cyc) {
		if cand.Space == "graph:cycle:4" || cand.Space == "graph:cycle:8" {
			sawShorter = true
		}
	}
	if !sawShorter {
		t.Error("no candidate shortened the cycle")
	}
}
