package check

import (
	"treeaa/internal/core"
	"treeaa/internal/realaa"
	"treeaa/internal/sim"
)

// Phase keys for probe snapshots: one per RealAA instance a TreeAA machine
// may run.
const (
	phaseShortcut   = "short" // Section 4 path shortcut
	phasePathsFind  = "pf"    // PathsFinder's inner RealAA
	phaseProjection = "proj"  // projection-phase RealAA
)

// probeSets is one RealAA instance's detection state at the end of a round.
type probeSets struct {
	suspected map[sim.PartyID]bool
	ignored   map[sim.PartyID]bool
}

// probeRec is one party's probe snapshot for one round.
type probeRec struct {
	round int
	sets  map[string]probeSets // phase key → detection state
}

// probeMachine wraps a machine and snapshots the suspicion and exclusion
// sets of every active RealAA sub-execution after each round, so the checker
// can evaluate per-round monotonicity ("once burned, always burned") without
// changing the machine's behavior. m is the machine actually driven (the
// TreeAA machine for tree cells, the graph machine for graph cells) and
// inner is the core machine whose probe surface is read — the same object
// for tree cells, the graph machine's inner TreeAA instance otherwise. It is
// driven only by the sequential oracle run — the concurrent and TCP
// differential runs use bare machines, keeping the probes free of
// cross-goroutine access.
type probeMachine struct {
	m     sim.Machine
	inner *core.Machine
	recs  []probeRec
}

var _ sim.Machine = (*probeMachine)(nil)

// Step implements sim.Machine: advance the wrapped machine, then snapshot.
func (p *probeMachine) Step(r int, inbox []sim.Message) []sim.Message {
	out := p.m.Step(r, inbox)
	rec := probeRec{round: r, sets: map[string]probeSets{}}
	snapshot := func(key string, m *realaa.Machine) {
		if m == nil {
			return
		}
		rec.sets[key] = probeSets{suspected: m.Suspected(), ignored: m.Ignored()}
	}
	if sc := p.inner.ShortcutMachine(); sc != nil {
		snapshot(phaseShortcut, sc.RealAA())
	}
	if pf := p.inner.PathsFinderMachine(); pf != nil {
		snapshot(phasePathsFind, pf.RealAA())
	}
	snapshot(phaseProjection, p.inner.ProjectionMachine())
	p.recs = append(p.recs, rec)
	return out
}

// Output implements sim.Machine.
func (p *probeMachine) Output() (any, bool) { return p.m.Output() }
