package check

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"treeaa/internal/adversary"
	"treeaa/internal/cli"
	"treeaa/internal/core"
	"treeaa/internal/gradecast"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
	"treeaa/internal/wire"
)

// tamperClauses are the delivery-seam clauses, applied via sim.Config.Tamper
// rather than the adversary interface.
func isTamperClause(name string) bool { return name == "mutate" || name == "evil" }

// compiled is a cell materialized against concrete protocol objects. The
// adversary, tamper hook and machines are built fresh per run (strategies
// and machines hold state), so compiled only fixes the static facts: the
// input space, the inputs and the corrupted-set partition.
type compiled struct {
	cell  *Cell
	space *cli.Space
	// tr is the protocol tree: the input space itself for tree cells, the
	// graph's block-cut tree for graph cells. Round budgets, adversary phase
	// schedules, PathsFinder paths and every core probe surface live here;
	// input-space semantics (validity hulls, agreement distance) go through
	// space instead.
	tr     *tree.Tree
	inputs []tree.VertexID

	byzIDs  []sim.PartyID // Byzantine clauses' shared corrupted set
	omitIDs []sim.PartyID // omission clause's set, disjoint from byzIDs
	corrupt map[sim.PartyID]bool

	adaptive   bool // a crash clause corrupts adaptively
	hasEvil    bool
	hasMutate  bool
	evilVal    float64
	mutateRate int // per-mille
}

// compile validates the cell and fixes its static facts. The corrupted-set
// partition rule: the canonical tail FirstParties(n, t) goes entirely to the
// Byzantine clauses, or entirely to the omission clause, or — when both are
// present — the lower t/2 ids become omission-faulty and the rest Byzantine
// (requiring t >= 2).
func compile(c *Cell) (*compiled, error) {
	spec := c.TreeSpec
	if c.Space != "" {
		if c.TreeSpec != "" {
			return nil, fmt.Errorf("check: cell sets both tree=%q and space=%q", c.TreeSpec, c.Space)
		}
		if !strings.HasPrefix(c.Space, cli.GraphPrefix) {
			return nil, fmt.Errorf("check: space=%q: want %q prefix (trees go in tree=)", c.Space, cli.GraphPrefix)
		}
		spec = c.Space
	}
	space, err := cli.ParseSpaceSpec(spec, c.Seed)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	if c.N < 1 {
		return nil, fmt.Errorf("check: n = %d, want >= 1", c.N)
	}
	if c.T < 0 || 3*c.T >= c.N {
		return nil, fmt.Errorf("check: t = %d, want 0 <= 3t < n = %d", c.T, c.N)
	}
	cr := &compiled{cell: c, space: space, tr: space.ProtocolTree(), corrupt: map[sim.PartyID]bool{}}
	if c.Inputs == nil {
		cr.inputs = space.SpreadInputs(c.N)
	} else {
		if len(c.Inputs) != c.N {
			return nil, fmt.Errorf("check: %d inputs for n = %d", len(c.Inputs), c.N)
		}
		for _, v := range c.Inputs {
			if !space.Valid(v) {
				return nil, fmt.Errorf("check: input vertex %d outside space %s", int(v), spec)
			}
		}
		cr.inputs = c.Inputs
	}

	hasByz, hasOmit := false, false
	for _, cl := range c.Clauses {
		switch {
		case cl.Name == "omit":
			hasOmit = true
		case cl.Name == "evil":
			cr.hasEvil = true
			val, err := cl.Int("val", 1000000)
			if err != nil {
				return nil, err
			}
			cr.evilVal = float64(val)
		case cl.Name == "mutate":
			cr.hasMutate = true
			if cr.mutateRate, err = cl.Int("rate", 200); err != nil {
				return nil, err
			}
		case cl.Name == "crash":
			hasByz, cr.adaptive = true, true
		default:
			hasByz = true
		}
	}
	if (hasByz || hasOmit) && c.T == 0 {
		return nil, fmt.Errorf("check: adversary clauses with t = 0 (only evil/mutate may stand alone)")
	}
	ids := adversary.FirstParties(c.N, c.T)
	switch {
	case hasByz && hasOmit:
		nOmit := c.T / 2
		if nOmit == 0 {
			return nil, fmt.Errorf("check: t = %d too small to mix omission and Byzantine clauses", c.T)
		}
		cr.omitIDs, cr.byzIDs = ids[:nOmit], ids[nOmit:]
	case hasOmit:
		cr.omitIDs = ids
	case hasByz:
		cr.byzIDs = ids
	}
	for _, id := range append(append([]sim.PartyID{}, cr.byzIDs...), cr.omitIDs...) {
		cr.corrupt[id] = true
	}
	return cr, nil
}

// adversary builds a fresh adversary instance for one run (strategies hold
// per-iteration state, so every driver needs its own). nil means no
// adversary.
func (cr *compiled) adversary() (sim.Adversary, error) {
	var parts []sim.Adversary
	hasFilter := false
	phases := core.PhaseTags(cr.tr)
	for k, cl := range cr.cell.Clauses {
		if isTamperClause(cl.Name) {
			continue
		}
		base := adversary.Params{IDs: cr.byzIDs, N: cr.cell.N, T: cr.cell.T, Seed: cr.cell.Seed}
		switch cl.Name {
		case "silent":
			p, err := adversary.Build("silent", base)
			if err != nil {
				return nil, err
			}
			parts = append(parts, p)
		case "replay":
			delay, err := cl.Int("delay", 3)
			if err != nil {
				return nil, err
			}
			base.Delay = delay
			p, err := adversary.Build("replay", base)
			if err != nil {
				return nil, err
			}
			parts = append(parts, p)
		case "crash":
			rounds, err := cl.IntList("rounds")
			if err != nil {
				return nil, err
			}
			base.Rounds = rounds
			p, err := adversary.Build("crash", base)
			if err != nil {
				return nil, fmt.Errorf("check: %w", err)
			}
			parts = append(parts, p)
		case "omit":
			drop, err := cl.Int("drop", 500)
			if err != nil {
				return nil, err
			}
			halves, err := cl.Int("halves", 0)
			if err != nil {
				return nil, err
			}
			base.IDs = cr.omitIDs
			base.Drop = float64(drop) / 1000
			base.Halves = halves != 0
			p, err := adversary.Build("omit", base)
			if err != nil {
				return nil, err
			}
			parts = append(parts, p)
			hasFilter = true
		case "equivocator", "splitvote", "halfburn", "noise", "frame":
			for pi, phase := range phases {
				pp := base
				pp.Tag, pp.StartRound = phase.Tag, phase.StartRound
				var err error
				switch cl.Name {
				case "equivocator":
					if lo, e := cl.Int("lo", -100); e != nil {
						err = e
					} else {
						pp.Lo = float64(lo)
					}
					if hi, e := cl.Int("hi", 1000); e != nil {
						err = e
					} else {
						pp.Hi = float64(hi)
					}
				case "splitvote":
					pp.PerIteration, err = cl.Int("per", 1)
				case "noise":
					pp.MaxVal, err = cl.Int("maxval", 2*cr.tr.NumVertices())
					pp.Seed = cr.cell.Seed + int64(1000*pi+37*k)
				case "frame":
					var fake int
					fake, err = cl.Int("fake", 7)
					pp.Fake = float64(fake)
				}
				if err != nil {
					return nil, err
				}
				p, err := adversary.Build(cl.Name, pp)
				if err != nil {
					return nil, err
				}
				parts = append(parts, p)
			}
		default:
			return nil, fmt.Errorf("check: unknown clause %q", cl.Name)
		}
	}
	if len(parts) == 0 {
		return nil, nil
	}
	if hasFilter {
		return &adversary.ComposeOmission{Compose: adversary.Compose{Strategies: parts}}, nil
	}
	return &adversary.Compose{Strategies: parts}, nil
}

// tamper builds a fresh delivery-seam hook for one run, or nil. The mutate
// clause byte-mutates corrupted senders' payloads (model-sound: a Byzantine
// party may put any bytes on its authenticated links; mutations that no
// longer decode are dropped, modeling the receiving codec's rejection).
// Mutation decisions are keyed per message — a hash of the seed, round,
// addressing and encoded bytes — never drawn from a shared sequential
// stream, so they are independent of delivery order and a reordered but
// equal message stream tampers identically. The evil clause rewrites every
// value gradecast send — honest senders included — to one fixed value;
// because the rewrite is consistent across recipients no equivocation is
// ever observed and the burn rule stays silent, which is exactly the
// out-of-model violation the shrinker demo needs.
func (cr *compiled) tamper() func(int, sim.Message) (sim.Message, bool) {
	if !cr.hasEvil && !cr.hasMutate {
		return nil
	}
	byz := make(map[sim.PartyID]bool, len(cr.byzIDs))
	for _, id := range cr.byzIDs {
		byz[id] = true
	}
	evilVal, rate := cr.evilVal, cr.mutateRate
	hasEvil, hasMutate := cr.hasEvil, cr.hasMutate
	seed := cr.cell.Seed ^ 0x6d757461
	return func(r int, m sim.Message) (sim.Message, bool) {
		if hasMutate && byz[m.From] {
			if b, err := wire.Encode(m.Payload); err == nil {
				rng := rand.New(rand.NewSource(msgKey(seed, r, m, b)))
				if rng.Intn(1000) < rate {
					b[rng.Intn(len(b))] ^= 1 << uint(rng.Intn(8))
					p, err := wire.Decode(b)
					if err != nil {
						return m, false
					}
					m.Payload = p
				}
			}
		}
		if hasEvil {
			if s, ok := m.Payload.(gradecast.SendMsg); ok && !isSuspicionTag(s.Tag) {
				s.Val = evilVal
				m.Payload = s
			}
		}
		return m, true
	}
}

// msgKey hashes one message's identity — run seed, delivery round,
// addressing and encoded payload — into a deterministic per-message rng
// seed (FNV-1a).
func msgKey(seed int64, r int, m sim.Message, encoded []byte) int64 {
	h := fnv.New64a()
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(seed))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(r))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(m.From))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(m.To))
	h.Write(hdr[:])
	h.Write(encoded)
	return int64(h.Sum64())
}

// isSuspicionTag reports whether tag is a RealAA suspicion-mask instance
// ("<tag>/acc" or "<tag>/accN"): the evil tamperer leaves those alone so the
// violation it plants is purely a value-level one.
func isSuspicionTag(tag string) bool {
	i := len(tag) - 1
	for i >= 0 && tag[i] >= '0' && tag[i] <= '9' {
		i--
	}
	return i >= 3 && tag[i-3:i+1] == "/acc"
}

// machines builds fresh machines for one run (TreeAA machines for tree
// cells, graph machines delegating to their inner TreeAA instance for graph
// cells); when probe is set they are wrapped in per-round invariant probes.
// cores always holds the underlying core machines for post-run inspection.
func (cr *compiled) machines(probe bool) (ms []sim.Machine, cores []*core.Machine, probes []*probeMachine, err error) {
	ms = make([]sim.Machine, cr.cell.N)
	cores = make([]*core.Machine, cr.cell.N)
	for i := 0; i < cr.cell.N; i++ {
		m, cm, err := cr.space.NewMachine(cr.cell.N, cr.cell.T, sim.PartyID(i), cr.inputs[i])
		if err != nil {
			return nil, nil, nil, fmt.Errorf("check: %w", err)
		}
		cores[i] = cm
		if probe {
			p := &probeMachine{m: m, inner: cm}
			probes = append(probes, p)
			ms[i] = p
		} else {
			ms[i] = m
		}
	}
	return ms, cores, probes, nil
}

// config assembles the sim.Config for one run with fresh adversary and
// tamper instances.
func (cr *compiled) config() (sim.Config, error) {
	adv, err := cr.adversary()
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		N: cr.cell.N, MaxCorrupt: cr.cell.T,
		MaxRounds: core.Rounds(cr.tr) + 2,
		Adversary: adv, Tamper: cr.tamper(),
	}, nil
}

// tcpCompatible reports whether the cell can run unchanged on the TCP
// transport: no delivery-seam tamper, no omission filtering, no adaptive
// corruption, and (when an adversary exists) at least one initial
// corruption.
func (cr *compiled) tcpCompatible() bool {
	if cr.hasEvil || cr.hasMutate || len(cr.omitIDs) > 0 || cr.adaptive {
		return false
	}
	return true
}
