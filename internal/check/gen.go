package check

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"treeaa/internal/cli"
	"treeaa/internal/core"
	"treeaa/internal/tree"
)

// byzPool is the model-sound Byzantine clause pool the generator draws from.
// The out-of-model "evil" tamperer is deliberately absent: it exists only to
// exercise the checker's own violation-and-shrink machinery via explicit
// injection (cmd/check -inject-bad).
var byzPool = []string{"silent", "crash", "equivocator", "splitvote", "halfburn", "noise", "replay", "frame"}

// Generate draws one random cell: a small input space (a tree, or — one in
// four — a block graph), party parameters, an input placement and a composed
// adversary. Everything derives from rng, and the produced cell always
// compiles.
func Generate(rng *rand.Rand) *Cell {
	return GenerateIn(rng, "")
}

// GenerateIn is Generate restricted to one kind of input space: "tree"
// draws only tree cells, "graph" only graph cells, "" mixes both (trees
// three to one).
func GenerateIn(rng *rand.Rand, space string) *Cell {
	for {
		c := generate(rng, space)
		if _, err := compile(c); err == nil {
			return c
		}
	}
}

func generate(rng *rand.Rand, space string) *Cell {
	c := &Cell{Seed: rng.Int63n(1 << 31)}
	if space == "graph" || (space == "" && rng.Intn(4) == 0) {
		c.Space = cli.GraphPrefix + genGraphSpec(rng)
	} else {
		c.TreeSpec = genTreeSpec(rng)
	}
	spec := c.TreeSpec
	if c.Space != "" {
		spec = c.Space
	}
	sp, err := cli.ParseSpaceSpec(spec, c.Seed)
	if err != nil {
		panic(fmt.Sprintf("check: generator produced bad space spec %q: %v", spec, err))
	}
	// Clause arguments (crash schedules, noise/frame value ranges) are drawn
	// against the protocol tree — the input space itself for trees, the
	// block-cut tree for graphs — because that is the tree the protocol's
	// values and rounds live on.
	tr := sp.ProtocolTree()
	c.N = 4 + rng.Intn(6)         // 4..9
	c.T = rng.Intn((c.N-1)/3 + 1) // 0..floor((n-1)/3)
	if rng.Intn(2) == 0 {         // half spread, half random placement
		c.Inputs = make([]tree.VertexID, c.N)
		for i := range c.Inputs {
			c.Inputs[i] = tree.VertexID(rng.Intn(sp.NumVertices()))
		}
	}
	if c.T == 0 {
		return c
	}

	hasOmit := c.T >= 2 && rng.Intn(4) == 0
	nByz := rng.Intn(2) + 1 // 1..2 Byzantine clauses
	if hasOmit {
		nByz = rng.Intn(2) // 0..1 alongside omission
	}
	byzIDCount := c.T
	if hasOmit && nByz > 0 {
		byzIDCount = c.T - c.T/2
	}
	perm := rng.Perm(len(byzPool))
	for _, pi := range perm[:nByz] {
		c.Clauses = append(c.Clauses, genByzClause(rng, byzPool[pi], tr, byzIDCount))
	}
	if hasOmit {
		c.Clauses = append(c.Clauses, Clause{Name: "omit", Args: map[string]string{
			"drop":   strconv.Itoa(200 + rng.Intn(600)),
			"halves": strconv.Itoa(rng.Intn(2)),
		}})
	}
	if nByz > 0 && rng.Intn(4) == 0 {
		c.Clauses = append(c.Clauses, Clause{Name: "mutate", Args: map[string]string{
			"rate": strconv.Itoa(50 + rng.Intn(400)),
		}})
	}
	return c
}

func genTreeSpec(rng *rand.Rand) string {
	switch rng.Intn(7) {
	case 0:
		return fmt.Sprintf("path:%d", 2+rng.Intn(9))
	case 1:
		return fmt.Sprintf("star:%d", 3+rng.Intn(7))
	case 2:
		return fmt.Sprintf("caterpillar:%d:%d", 2+rng.Intn(3), 1+rng.Intn(2))
	case 3:
		return fmt.Sprintf("spider:%d:%d", 2+rng.Intn(2), 1+rng.Intn(3))
	case 4:
		return fmt.Sprintf("kary:2:%d", 1+rng.Intn(2))
	case 5:
		return fmt.Sprintf("random:%d", 4+rng.Intn(6))
	default:
		return "figure3"
	}
}

// genGraphSpec draws a small graph input space (internal/graph grammar,
// without the "graph:" prefix): cycles and cliques (single-block extremes),
// clique chains and cacti (multi-block shapes with cut vertices) and seeded
// random block graphs.
func genGraphSpec(rng *rand.Rand) string {
	switch rng.Intn(5) {
	case 0:
		return fmt.Sprintf("cycle:%d", 4+rng.Intn(6))
	case 1:
		return fmt.Sprintf("clique:%d", 4+rng.Intn(5))
	case 2:
		return fmt.Sprintf("cliquechain:%d:%d", 2+rng.Intn(2), 2+rng.Intn(3))
	case 3:
		return fmt.Sprintf("cactus:%d:%d", 2+rng.Intn(2), 3+rng.Intn(3))
	default:
		return fmt.Sprintf("randomblock:%d", 8+rng.Intn(7))
	}
}

func genByzClause(rng *rand.Rand, name string, tr *tree.Tree, byzIDCount int) Clause {
	cl := Clause{Name: name, Args: map[string]string{}}
	switch name {
	case "crash":
		maxRound := core.Rounds(tr) + 1
		rounds := make([]string, byzIDCount)
		for i := range rounds {
			rounds[i] = strconv.Itoa(1 + rng.Intn(maxRound))
		}
		cl.Args["rounds"] = strings.Join(rounds, ".")
	case "equivocator":
		cl.Args["lo"] = strconv.Itoa(-rng.Intn(200))
		cl.Args["hi"] = strconv.Itoa(100 + rng.Intn(10000))
	case "splitvote":
		cl.Args["per"] = strconv.Itoa(1 + rng.Intn(2))
	case "noise":
		cl.Args["maxval"] = strconv.Itoa(tr.NumVertices() + rng.Intn(3*tr.NumVertices()))
	case "replay":
		cl.Args["delay"] = strconv.Itoa(1 + rng.Intn(5))
	case "frame":
		cl.Args["fake"] = strconv.Itoa(rng.Intn(2 * tr.NumVertices()))
	}
	if len(cl.Args) == 0 {
		cl.Args = nil
	}
	return cl
}
