package check

import (
	"strconv"
	"strings"

	"treeaa/internal/cli"
	"treeaa/internal/tree"
)

// Shrink greedily minimizes a violating cell: it tries candidate reductions
// — dropping adversary clauses, shrinking t and n, collapsing explicit
// inputs to the spread placement, shrinking tree-spec and clause-arg
// numbers — and keeps any candidate that still violates (any invariant; a
// shrink may legitimately shift which one fires first). budget caps the
// total number of candidate runs. It returns the smallest violating cell
// found and the number of runs spent; if c itself does not violate it is
// returned unchanged.
func Shrink(c *Cell, opt Options, budget int) (*Cell, int) {
	runs := 0
	current := c.clone()
	improved := true
	for improved && runs < budget {
		improved = false
		for _, cand := range candidates(current) {
			if runs >= budget {
				break
			}
			runs++
			if Violates(cand, opt) {
				current = cand
				improved = true
				break // restart from the reduced cell
			}
		}
	}
	return current, runs
}

func (c *Cell) clone() *Cell {
	out := &Cell{Seed: c.Seed, TreeSpec: c.TreeSpec, Space: c.Space, N: c.N, T: c.T}
	if c.Inputs != nil {
		out.Inputs = append([]tree.VertexID(nil), c.Inputs...)
	}
	for _, cl := range c.Clauses {
		nc := Clause{Name: cl.Name}
		if cl.Args != nil {
			nc.Args = make(map[string]string, len(cl.Args))
			for k, v := range cl.Args {
				nc.Args[k] = v
			}
		}
		out.Clauses = append(out.Clauses, nc)
	}
	return out
}

// byzClauseIDCount mirrors compile's corrupted-set partition: how many ids
// the Byzantine clauses share for a given t.
func byzClauseIDCount(c *Cell) int {
	hasByz, hasOmit := false, false
	for _, cl := range c.Clauses {
		switch {
		case cl.Name == "omit":
			hasOmit = true
		case isTamperClause(cl.Name):
		default:
			hasByz = true
		}
	}
	if !hasByz {
		return 0
	}
	if hasOmit {
		return c.T - c.T/2
	}
	return c.T
}

// candidates returns the next-step reductions of c, most aggressive first.
// Invalid candidates are cheap: compile rejects them and Violates returns
// false.
func candidates(c *Cell) []*Cell {
	var out []*Cell
	// Drop one clause.
	for i := range c.Clauses {
		cand := c.clone()
		cand.Clauses = append(cand.Clauses[:i], cand.Clauses[i+1:]...)
		out = append(out, cand)
	}
	// Collapse explicit inputs to the canonical spread.
	if c.Inputs != nil {
		cand := c.clone()
		cand.Inputs = nil
		out = append(out, cand)
	}
	// Shrink the corruption budget (trimming crash schedules to the new
	// Byzantine id count, which compile validates).
	if c.T > 0 {
		cand := c.clone()
		cand.T--
		nByz := byzClauseIDCount(cand)
		for i, cl := range cand.Clauses {
			if cl.Name == "crash" {
				if rounds, err := cl.IntList("rounds"); err == nil && len(rounds) > nByz {
					cand.Clauses[i].Args["rounds"] = joinInts(rounds[:nByz])
				}
			}
		}
		out = append(out, cand)
	}
	// Shrink the party count.
	if c.N > 2 && c.N-1 > 3*c.T {
		cand := c.clone()
		cand.N--
		if cand.Inputs != nil {
			cand.Inputs = cand.Inputs[:cand.N]
		}
		out = append(out, cand)
	}
	// Shrink spec numbers (halve, then decrement) — tree-spec sizes for tree
	// cells, block counts / block sizes / cycle lengths for graph cells
	// (cliquechain:3:4 prunes blocks, cycle:9 shortens the cycle).
	spec, isGraph := c.TreeSpec, false
	if c.Space != "" {
		spec, isGraph = c.Space, true
	}
	parts := strings.Split(spec, ":")
	for i := 1; i < len(parts); i++ {
		v, err := strconv.Atoi(parts[i])
		if err != nil {
			continue
		}
		for _, nv := range []int{v / 2, v - 1} {
			if nv < 1 || nv == v {
				continue
			}
			np := append([]string(nil), parts...)
			np[i] = strconv.Itoa(nv)
			cand := c.clone()
			if isGraph {
				cand.Space = strings.Join(np, ":")
			} else {
				cand.TreeSpec = strings.Join(np, ":")
			}
			// Clamp explicit inputs into the smaller space so a violation
			// that depends on the placement survives the shrink.
			if cand.Inputs != nil {
				sp, err := cli.ParseSpaceSpec(strings.Join(np, ":"), cand.Seed)
				if err != nil {
					continue
				}
				for j, in := range cand.Inputs {
					if int(in) >= sp.NumVertices() {
						cand.Inputs[j] = tree.VertexID(sp.NumVertices() - 1)
					}
				}
			}
			out = append(out, cand)
		}
	}
	// Halve clause numeric args toward 1 (schedule-shaped lists excluded).
	for i, cl := range c.Clauses {
		for k, v := range cl.Args {
			n, err := strconv.Atoi(v)
			if err != nil || n/2 == n || k == "rounds" || k == "halves" {
				continue
			}
			cand := c.clone()
			cand.Clauses[i].Args[k] = strconv.Itoa(n / 2)
			out = append(out, cand)
		}
	}
	return out
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ".")
}
