package check

import (
	"fmt"
	"reflect"

	"treeaa/internal/sim"
	"treeaa/internal/transport"
)

// Options tunes one cell run.
type Options struct {
	// TCP also runs the cell on the loopback TCP transport and compares
	// results, when the cell is transport-compatible. Roughly 100x slower
	// than the in-process differential; cmd/check samples every Nth cell.
	TCP bool
}

// CellResult is the outcome of running one cell.
type CellResult struct {
	// Spec is the cell's canonical one-line spec.
	Spec string `json:"spec"`
	// Violations holds every invariant failure (empty for a clean cell).
	Violations []Violation `json:"violations,omitempty"`
	// Rounds and Messages are the sequential oracle run's statistics.
	Rounds   int `json:"rounds"`
	Messages int `json:"messages"`
	// TCPChecked reports whether the TCP differential actually ran.
	TCPChecked bool `json:"tcpChecked,omitempty"`
}

// RunCell executes one cell and evaluates every invariant: the sequential
// probe run is the oracle; a concurrent run (and, when requested and
// compatible, a TCP run) must reproduce its sim.Result exactly. The error
// return reports an unbuildable cell (bad spec), never a protocol failure —
// those are Violations.
func RunCell(c *Cell, opt Options) (*CellResult, error) {
	cr, err := compile(c)
	if err != nil {
		return nil, err
	}
	out := &CellResult{Spec: c.String()}

	// Sequential oracle run, with per-round probes.
	cfg, err := cr.config()
	if err != nil {
		return nil, err
	}
	ms, cores, probes, err := cr.machines(true)
	if err != nil {
		return nil, err
	}
	res, runErr := sim.Run(cfg, ms)
	out.Violations = append(out.Violations, cr.evaluate(res, runErr, cores, probes)...)
	if runErr != nil {
		return out, nil // no oracle result to compare against
	}
	out.Rounds, out.Messages = res.Rounds, res.Messages

	// Concurrent differential: fresh machines, adversary and tamper (all
	// hold state), identical Result expected.
	ccfg, err := cr.config()
	if err != nil {
		return nil, err
	}
	cms, _, _, err := cr.machines(false)
	if err != nil {
		return nil, err
	}
	cres, cerr := sim.RunConcurrent(ccfg, cms)
	if cerr != nil {
		out.Violations = append(out.Violations, Violation{Cell: out.Spec, Invariant: "differential-concurrent",
			Detail: fmt.Sprintf("RunConcurrent failed where Run succeeded: %v", cerr)})
	} else if !reflect.DeepEqual(cres, res) {
		out.Violations = append(out.Violations, Violation{Cell: out.Spec, Invariant: "differential-concurrent",
			Detail: fmt.Sprintf("results diverge\n  concurrent: %+v\n  sequential: %+v", cres, res)})
	}

	if opt.TCP && cr.tcpCompatible() {
		tcfg, err := cr.config()
		if err != nil {
			return nil, err
		}
		tms, _, _, err := cr.machines(false)
		if err != nil {
			return nil, err
		}
		tres, terr := transport.LocalCluster(tcfg, tms, transport.Options{})
		out.TCPChecked = true
		if terr != nil {
			out.Violations = append(out.Violations, Violation{Cell: out.Spec, Invariant: "differential-tcp",
				Detail: fmt.Sprintf("LocalCluster failed where Run succeeded: %v", terr)})
		} else if !reflect.DeepEqual(tres, res) {
			out.Violations = append(out.Violations, Violation{Cell: out.Spec, Invariant: "differential-tcp",
				Detail: fmt.Sprintf("results diverge\n  tcp: %+v\n  sequential: %+v", tres, res)})
		}
	}
	return out, nil
}

// Violates reports whether the cell produces at least one violation; cells
// that fail to build do not violate (the shrinker uses this to discard
// over-shrunk candidates).
func Violates(c *Cell, opt Options) bool {
	res, err := RunCell(c, opt)
	return err == nil && len(res.Violations) > 0
}
