package check

import (
	"fmt"
	"math"
	"math/rand"

	"treeaa/internal/async"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// This file is the checker's asynchronous half: the same cell specs, run
// through the event-driven internal/async runtime instead of the lock-step
// sim engine. There is no sequential oracle to DeepEqual against — an
// asynchronous decision legitimately depends on delivery order — so the
// invariants carry the whole correctness story: every honest party decides
// within the delivery budget, outputs lie in the honest input hull and
// pairwise within distance 1, decoded root paths agree up to one trailing
// edge (Lemma 4), each phase's final AA values are within its epsilon, and
// the honest-value interval never expands across AA iterations. Each cell
// runs under every adversarial scheduler (fifo, lifo, random, starve), and
// everything randomized derives from the cell seed, so a violating spec
// replays deterministically.

// AsyncOptions tunes one async cell run.
type AsyncOptions struct {
	// Budget caps the deliveries per execution; 0 derives it from the honest
	// pipelines' own DeliveryBudget plus slack for Byzantine flood traffic.
	Budget int
}

// AsyncCellResult is the outcome of running one cell through the async
// runtime under every scheduler.
type AsyncCellResult struct {
	// Spec is the cell's canonical one-line spec.
	Spec string `json:"spec"`
	// Violations holds every invariant failure across all scheduler runs.
	Violations []Violation `json:"violations,omitempty"`
	// Schedulers lists the delivery orders exercised.
	Schedulers []string `json:"schedulers"`
	// Deliveries and Depth are the maxima across scheduler runs.
	Deliveries int `json:"deliveries"`
	Depth      int `json:"depth"`
}

// AsyncCompatible reports whether the cell translates to the asynchronous
// model. Graph cells do not (the async pipeline has no block-cut decode
// seam); omission filtering and the delivery-seam tamperers (mutate, evil)
// are round-seam constructions with no async counterpart; every Byzantine
// clause maps — silent and crash to machines that stop participating,
// everything else to a well-formed RBC flood.
func AsyncCompatible(c *Cell) bool {
	if c.Space != "" {
		return false // the async pipeline runs TreeAA directly on a tree
	}
	for _, cl := range c.Clauses {
		switch cl.Name {
		case "omit", "mutate", "evil":
			return false
		}
	}
	return true
}

// asyncSchedulers builds the adversarial delivery orders one cell runs
// under. The random order and the starvation victim derive from the cell
// seed; the victim is the last honest party (FirstParties corrupts a prefix,
// so the last id is always honest).
func asyncSchedulers(c *Cell) []struct {
	name string
	s    async.Scheduler
} {
	return []struct {
		name string
		s    async.Scheduler
	}{
		{"fifo", async.FIFO{}},
		{"lifo", async.LIFO{}},
		{"random", async.Random{Rng: rand.New(rand.NewSource(c.Seed ^ 0x61737963))}},
		{"starve", async.Starve{Victims: map[async.PartyID]bool{async.PartyID(c.N - 1): true}}},
	}
}

// RunAsyncCell executes one cell through the async runtime under every
// scheduler and evaluates the asynchronous invariants. The error return
// reports an unbuildable or async-incompatible cell, never a protocol
// failure — those are Violations.
func RunAsyncCell(c *Cell, opt AsyncOptions) (*AsyncCellResult, error) {
	cr, err := compile(c)
	if err != nil {
		return nil, err
	}
	if !AsyncCompatible(c) {
		return nil, fmt.Errorf("check: cell %s has no async counterpart (omit/mutate/evil are round-seam constructions)", c)
	}
	out := &AsyncCellResult{Spec: c.String()}
	for _, sched := range asyncSchedulers(c) {
		out.Schedulers = append(out.Schedulers, sched.name)
		vs, deliveries, depth := cr.runAsyncOnce(sched.name, sched.s, opt.Budget)
		out.Violations = append(out.Violations, vs...)
		out.Deliveries = max(out.Deliveries, deliveries)
		out.Depth = max(out.Depth, depth)
	}
	out.Violations = dedupe(out.Violations)
	return out, nil
}

// runAsyncOnce builds fresh machines (pipelines and Byzantine behaviors all
// hold state) and runs the cell once under one scheduler.
func (cr *compiled) runAsyncOnce(name string, sched async.Scheduler, budget int) ([]Violation, int, int) {
	spec := cr.cell.String()
	var out []Violation
	add := func(invariant, format string, args ...any) {
		out = append(out, Violation{Cell: spec, Invariant: invariant,
			Detail: fmt.Sprintf("scheduler %s: %s", name, fmt.Sprintf(format, args...))})
	}

	machines, pipes, derived, err := cr.asyncMachines()
	if err != nil {
		add("engine", "async machines: %v", err)
		return out, 0, 0
	}
	if budget <= 0 {
		budget = derived
	}
	honest := cr.honestParties()
	honestSet := make(map[async.PartyID]bool, len(honest))
	for _, p := range honest {
		honestSet[async.PartyID(p)] = true
	}
	res, runErr := async.Run(async.Config{
		N: cr.cell.N, Honest: honestSet, Scheduler: sched, MaxDeliveries: budget,
	}, machines)
	if runErr != nil {
		if res == nil {
			add("engine", "async run failed: %v", runErr)
			return out, 0, 0
		}
		// The runtime returns its partial Result alongside ErrNotDecided, so
		// the remaining invariants still evaluate against what did decide.
		add("async-termination", "honest parties undecided within %d deliveries: %v", budget, runErr)
	}

	// Validity: honest outputs lie in the honest inputs' convex hull.
	honestIn := make([]tree.VertexID, 0, len(honest))
	for _, p := range honest {
		honestIn = append(honestIn, cr.inputs[p])
	}
	hull := make(map[tree.VertexID]bool)
	for _, v := range cr.tr.ConvexHull(honestIn) {
		hull[v] = true
	}
	outputs := make(map[sim.PartyID]tree.VertexID)
	for _, p := range honest {
		raw, ok := res.Outputs[async.PartyID(p)]
		if !ok {
			continue // async-termination already reported
		}
		v, ok := raw.(tree.VertexID)
		if !ok {
			add("engine", "party %d output is %T, not a vertex", p, raw)
			continue
		}
		outputs[p] = v
		if !hull[v] {
			add("async-validity", "party %d output %s outside honest hull %v",
				p, cr.tr.Label(v), cr.tr.Labels(cr.tr.ConvexHull(honestIn)))
		}
	}

	// 1-Agreement: honest outputs pairwise within distance 1.
	for i, p := range honest {
		for _, q := range honest[i+1:] {
			vp, okP := outputs[p]
			vq, okQ := outputs[q]
			if okP && okQ {
				if d := cr.tr.Dist(vp, vq); d > 1 {
					add("async-agreement", "parties %d and %d output %s and %s at distance %d",
						p, q, cr.tr.Label(vp), cr.tr.Label(vq), d)
				}
			}
		}
	}

	out = append(out, cr.checkAsyncPaths(name, honest, pipes)...)
	out = append(out, cr.checkAsyncHull(name, honest, pipes)...)
	return out, res.Deliveries, res.Depth
}

// checkAsyncPaths asserts Lemma 4 on the pipelines' decoded root paths:
// pairwise one is a prefix of the other with length difference at most 1.
// Trivial trees (diameter <= 1) never decode a path and are skipped.
func (cr *compiled) checkAsyncPaths(name string, honest []sim.PartyID, pipes map[sim.PartyID]*async.Pipeline) []Violation {
	spec := cr.cell.String()
	var out []Violation
	var paths [][]tree.VertexID
	var owners []sim.PartyID
	for _, p := range honest {
		path := pipes[p].Path()
		if path == nil {
			continue // trivial tree, or undecided (already reported)
		}
		if err := cr.tr.ValidatePath(path); err != nil {
			out = append(out, Violation{Cell: spec, Invariant: "async-paths",
				Detail: fmt.Sprintf("scheduler %s: party %d holds an invalid path: %v", name, p, err)})
			continue
		}
		if path[0] != cr.tr.Root() {
			out = append(out, Violation{Cell: spec, Invariant: "async-paths",
				Detail: fmt.Sprintf("scheduler %s: party %d path does not start at the root", name, p)})
		}
		paths = append(paths, path)
		owners = append(owners, p)
	}
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			a, b := paths[i], paths[j]
			if len(a) > len(b) {
				a, b = b, a
			}
			bad := len(b)-len(a) > 1
			for k := 0; !bad && k < len(a); k++ {
				bad = a[k] != b[k]
			}
			if bad {
				out = append(out, Violation{Cell: spec, Invariant: "async-paths",
					Detail: fmt.Sprintf("scheduler %s: parties %d and %d hold paths %s and %s (want prefix-equal up to one trailing edge)",
						name, owners[i], owners[j], cr.tr.RenderPath(paths[i]), cr.tr.RenderPath(paths[j]))})
			}
		}
	}
	return out
}

// checkAsyncHull asserts, for each pipeline phase, epsilon-agreement of the
// honest parties' final AA values (epsilon = 1 for both phases) and monotone
// non-expansion of the honest-value interval across completed iterations —
// the async counterparts of the synchronous checker's hull cell.
func (cr *compiled) checkAsyncHull(name string, honest []sim.PartyID, pipes map[sim.PartyID]*async.Pipeline) []Violation {
	spec := cr.cell.String()
	var out []Violation
	for _, ph := range []struct {
		key  string
		hist func(p *async.Pipeline) []float64
	}{
		{"pathsfinder", func(p *async.Pipeline) []float64 { pf, _ := p.Histories(); return pf }},
		{"projection", func(p *async.Pipeline) []float64 { _, pj := p.Histories(); return pj }},
	} {
		var hists [][]float64
		minLen := math.MaxInt
		for _, p := range honest {
			h := ph.hist(pipes[p])
			if h == nil {
				continue
			}
			hists = append(hists, h)
			minLen = min(minLen, len(h))
		}
		if len(hists) == 0 || minLen == 0 {
			continue
		}
		interval := func(k int) (lo, hi float64) {
			lo, hi = math.Inf(1), math.Inf(-1)
			for _, h := range hists {
				lo, hi = math.Min(lo, h[k]), math.Max(hi, h[k])
			}
			return lo, hi
		}
		prevLo, prevHi := interval(0)
		for k := 1; k < minLen; k++ {
			lo, hi := interval(k)
			if lo < prevLo-hullEps || hi > prevHi+hullEps {
				out = append(out, Violation{Cell: spec, Invariant: "async-hull",
					Detail: fmt.Sprintf("scheduler %s: phase %s: honest interval [%g, %g] after iteration %d not contained in [%g, %g]",
						name, ph.key, lo, hi, k+1, prevLo, prevHi)})
				break
			}
			prevLo, prevHi = lo, hi
		}
		// Epsilon-agreement on each phase's decided values: parties that
		// completed every iteration hold final values within epsilon = 1.
		var finals []float64
		for _, h := range hists {
			if len(h) == minLen {
				finals = append(finals, h[minLen-1])
			}
		}
		for i := range finals {
			for j := i + 1; j < len(finals); j++ {
				if math.Abs(finals[i]-finals[j]) > 1+hullEps {
					out = append(out, Violation{Cell: spec, Invariant: "async-epsilon",
						Detail: fmt.Sprintf("scheduler %s: phase %s: final values %g and %g differ by more than epsilon = 1",
							name, ph.key, finals[i], finals[j])})
				}
			}
		}
	}
	return out
}

// asyncMachines builds fresh machines for one run: honest parties get
// pipelines; Byzantine ids get behaviors mapped from the cell's clauses,
// assigned round-robin. The returned budget is the honest pipelines'
// delivery budget plus slack for the flood machines' bounded spam.
func (cr *compiled) asyncMachines() ([]async.Machine, map[sim.PartyID]*async.Pipeline, int, error) {
	n := cr.cell.N
	machines := make([]async.Machine, n)
	pipes := make(map[sim.PartyID]*async.Pipeline, n)
	budget := 64
	rng := rand.New(rand.NewSource(cr.cell.Seed ^ 0x62797a61))
	behaviors := asyncBehaviors(cr.cell)
	floods := 0
	for i := 0; i < n; i++ {
		p := sim.PartyID(i)
		if !cr.corrupt[p] {
			pipe, err := async.NewPipeline(cr.tr, n, cr.cell.T, async.PartyID(i), cr.inputs[i])
			if err != nil {
				return nil, nil, 0, err
			}
			machines[i], pipes[p] = pipe, pipe
			budget = max(budget, pipe.DeliveryBudget())
			continue
		}
		switch behaviors[i%len(behaviors)] {
		case "silent":
			machines[i] = asyncSilent{}
		case "crash":
			pipe, err := async.NewPipeline(cr.tr, n, cr.cell.T, async.PartyID(i), cr.inputs[i])
			if err != nil {
				return nil, nil, 0, err
			}
			machines[i] = &asyncCrash{inner: pipe, left: 1 + rng.Intn(2*n*n)}
		default: // every value-injecting clause floods
			machines[i] = &asyncFlood{
				id: async.PartyID(i), n: n,
				rng:    rand.New(rand.NewSource(cr.cell.Seed + int64(1000*i))),
				budget: asyncFloodBudget,
				maxVal: float64(2 * cr.tr.NumVertices()),
			}
			floods++
		}
	}
	// Each flood emission reaches at most n recipients, each a delivery.
	budget += floods * (asyncFloodBudget + 1) * n
	return machines, pipes, budget, nil
}

// asyncBehaviors maps the cell's Byzantine clauses to async behavior names;
// a corrupted party with no clause to draw from is silent.
func asyncBehaviors(c *Cell) []string {
	var out []string
	for _, cl := range c.Clauses {
		switch cl.Name {
		case "silent", "crash":
			out = append(out, cl.Name)
		default:
			out = append(out, "flood")
		}
	}
	if len(out) == 0 {
		out = []string{"silent"}
	}
	return out
}

// asyncFloodBudget bounds one flood machine's emissions: enough to outlast
// every honest iteration, small enough to stay inside the delivery slack.
const asyncFloodBudget = 500

// asyncSilent is the crash-at-start behavior: it never sends. Output is
// vacuously true so a nil Honest map cannot wedge on it.
type asyncSilent struct{}

func (asyncSilent) Init() []async.Message                 { return nil }
func (asyncSilent) Deliver(async.Message) []async.Message { return nil }
func (asyncSilent) Output() (any, bool)                   { return nil, true }

// asyncCrash is the mid-protocol crash behavior: an honest pipeline that
// stops participating after a seed-derived number of deliveries.
type asyncCrash struct {
	inner async.Machine
	left  int
}

func (m *asyncCrash) Init() []async.Message {
	if m.left <= 0 {
		return nil
	}
	return m.inner.Init()
}

func (m *asyncCrash) Deliver(msg async.Message) []async.Message {
	if m.left <= 0 {
		return nil
	}
	m.left--
	return m.inner.Deliver(msg)
}

func (m *asyncCrash) Output() (any, bool) { return nil, true }

// asyncFlood is the generic value-injecting behavior: equivocating phase-1
// value broadcasts at Init, then a bounded stream of well-formed RBC spam —
// junk values under both phase prefixes, malformed and under-filled witness
// reports — mirroring the model-sound traffic a Byzantine sender can put on
// its authenticated links.
type asyncFlood struct {
	id     async.PartyID
	n      int
	rng    *rand.Rand
	budget int
	maxVal float64
}

func (m *asyncFlood) Init() []async.Message {
	out := make([]async.Message, 0, m.n)
	for to := 0; to < m.n; to++ {
		out = append(out, async.Message{To: async.PartyID(to), Payload: async.RBCMsg[float64]{
			Tag: "pf.v/1", Kind: async.KindInit, Src: m.id, Val: m.rng.Float64() * m.maxVal,
		}})
	}
	return out
}

func (m *asyncFlood) Deliver(async.Message) []async.Message {
	if m.budget <= 0 {
		return nil
	}
	m.budget--
	phase := [2]string{"pf.", "pj."}[m.rng.Intn(2)]
	k := 1 + m.rng.Intn(4)
	switch m.rng.Intn(3) {
	case 0: // equivocating / out-of-range value traffic
		return []async.Message{{To: async.PartyID(m.rng.Intn(m.n)), Payload: async.RBCMsg[float64]{
			Tag:  fmt.Sprintf("%sv/%d", phase, k),
			Kind: async.Kind(1 + m.rng.Intn(3)), Src: m.id,
			Val: m.rng.Float64()*3*m.maxVal - m.maxVal,
		}}}
	case 1: // malformed witness report
		return []async.Message{{To: async.Broadcast, Payload: async.RBCMsg[string]{
			Tag: fmt.Sprintf("%sr/%d", phase, k), Kind: async.KindInit, Src: m.id, Val: "0,1,zz",
		}}}
	default: // under-filled but well-formed witness report
		return []async.Message{{To: async.Broadcast, Payload: async.RBCMsg[string]{
			Tag: fmt.Sprintf("%sr/%d", phase, k), Kind: async.KindInit, Src: m.id, Val: "0",
		}}}
	}
}

func (m *asyncFlood) Output() (any, bool) { return nil, true }
