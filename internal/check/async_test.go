package check

import (
	"math/rand"
	"strings"
	"testing"
)

// TestAsyncCellsClean: a matrix of honest and Byzantine cells across tree
// shapes runs clean through every scheduler — no validity, agreement, path,
// hull or epsilon violation, and every honest party decides within the
// derived delivery budget.
func TestAsyncCellsClean(t *testing.T) {
	for _, spec := range []string{
		"s=1;tree=path:8;n=4;t=0;in=spread",
		"s=2;tree=star:6;n=4;t=1;in=spread;adv=silent",
		"s=3;tree=spider:3:4;n=4;t=1;in=spread;adv=noise(maxval=30)",
		"s=4;tree=caterpillar:3:2;n=7;t=2;in=spread;adv=equivocator(hi=50,lo=-5)+silent",
		"s=5;tree=random:10;n=4;t=1;in=spread;adv=crash(rounds=3)",
		"s=6;tree=figure3;n=5;t=1;in=0.0.0.0.0;adv=splitvote(per=1)",
		"s=7;tree=star:4;n=4;t=1;in=1.1.1.1;adv=frame(fake=2)", // diameter 2, concentrated
	} {
		c := MustParse(spec)
		res, err := RunAsyncCell(c, AsyncOptions{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for _, v := range res.Violations {
			t.Errorf("%s: %s", spec, v)
		}
		if len(res.Schedulers) != 4 {
			t.Errorf("%s: ran %v, want all four schedulers", spec, res.Schedulers)
		}
		if res.Deliveries == 0 {
			t.Errorf("%s: no deliveries recorded", spec)
		}
	}
}

// TestAsyncCellIncompatible: round-seam constructions have no async
// counterpart and are refused with an explanation, mirroring how the serve
// and node commands reject async-incompatible flags.
func TestAsyncCellIncompatible(t *testing.T) {
	for _, spec := range []string{
		"s=1;tree=path:5;n=7;t=2;in=spread;adv=omit(drop=400)",
		"s=1;tree=path:5;n=4;t=1;in=spread;adv=silent+mutate(rate=100)",
		"s=1;tree=star:6;n=9;t=2;in=1.1.1.1.1.1.1.1.1;adv=evil(val=1000000)",
	} {
		c := MustParse(spec)
		if AsyncCompatible(c) {
			t.Errorf("%s reported async-compatible", spec)
		}
		if _, err := RunAsyncCell(c, AsyncOptions{}); err == nil {
			t.Errorf("RunAsyncCell(%s) succeeded, want incompatibility error", spec)
		} else if !strings.Contains(err.Error(), "async") {
			t.Errorf("%s rejection %q does not explain the async conflict", spec, err)
		}
	}
}

// TestAsyncCellBudgetTooSmall: a starved delivery budget must surface as an
// async-termination violation, not a hang or a silent pass — the checker's
// liveness cell is real.
func TestAsyncCellBudgetTooSmall(t *testing.T) {
	c := MustParse("s=1;tree=path:8;n=4;t=0;in=spread")
	res, err := RunAsyncCell(c, AsyncOptions{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Invariant == "async-termination" {
			found = true
		}
	}
	if !found {
		t.Errorf("10-delivery budget produced no async-termination violation: %v", res.Violations)
	}
}

// TestAsyncCellDeterministic: the same spec replays to the identical result —
// every randomized component (schedulers, Byzantine behaviors) derives from
// the cell seed, so a violating spec is a deterministic repro.
func TestAsyncCellDeterministic(t *testing.T) {
	spec := "s=11;tree=spider:2:3;n=4;t=1;in=spread;adv=noise(maxval=20)"
	a, err := RunAsyncCell(MustParse(spec), AsyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAsyncCell(MustParse(spec), AsyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Deliveries != b.Deliveries || a.Depth != b.Depth || len(a.Violations) != len(b.Violations) {
		t.Errorf("replay diverged:\n first:  %+v\n second: %+v", a, b)
	}
}

// TestAsyncGeneratedCells: generator output is async-compatible often enough
// to matter, and every compatible generated cell runs clean.
func TestAsyncGeneratedCells(t *testing.T) {
	if testing.Short() {
		t.Skip("generated async battery")
	}
	rng := rand.New(rand.NewSource(23))
	ran := 0
	for i := 0; i < 40 && ran < 12; i++ {
		c := Generate(rng)
		if !AsyncCompatible(c) {
			continue
		}
		ran++
		res, err := RunAsyncCell(c, AsyncOptions{})
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		for _, v := range res.Violations {
			t.Errorf("%s: %s", c, v)
		}
	}
	if ran < 5 {
		t.Fatalf("only %d of 40 generated cells were async-compatible", ran)
	}
}
