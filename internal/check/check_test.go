package check

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"s=3;tree=caterpillar:4:2;n=7;t=2;in=spread;adv=noise(maxval=24)+splitvote(per=1)",
		"s=1;tree=path:5;n=4;t=1;in=0.3.4.2;adv=silent",
		"s=9;tree=figure3;n=6;t=0;in=spread",
		"s=2;tree=star:6;n=7;t=2;in=spread;adv=crash(rounds=2.5)",
		"s=0;tree=random:8;n=5;t=1;in=spread;adv=equivocator(hi=5000,lo=-10)+mutate(rate=100)",
		"s=4;tree=kary:2:2;n=9;t=2;in=spread;adv=halfburn+omit(drop=400,halves=1)",
		"s=7;tree=spider:2:3;n=4;t=1;in=1.1.1.1;adv=evil(val=1000000)",
	} {
		c, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := c.String(); got != spec {
			t.Errorf("round trip:\n in:  %s\n out: %s", spec, got)
		}
	}
}

func TestGeneratedSpecsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		c := Generate(rng)
		c2, err := Parse(c.String())
		if err != nil {
			t.Fatalf("generated cell %s does not re-parse: %v", c, err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Errorf("re-parsed cell differs:\n gen:    %#v\n parsed: %#v", c, c2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"s=1",                                   // missing fields
		"s=1;tree=path:5;n=4;t=1",               // missing in
		"s=1;tree=path:5;n=4;t=1;in=0.x",        // bad vertex
		"s=1;tree=path:5;n=4;t=1;in=spread;adv=splitvote(per)",  // malformed arg
		"s=1;tree=path:5;n=4;t=1;in=spread;adv=splitvote(per=1", // unbalanced
		"s=1;tree=path:5;n=4;t=1;in=spread;bogus=3",             // unknown field
		"nonsense",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	for _, spec := range []string{
		"s=1;tree=path:5;n=4;t=2;in=spread",                  // 3t >= n
		"s=1;tree=nope:5;n=4;t=1;in=spread",                  // bad tree
		"s=1;tree=path:5;n=4;t=1;in=0.1;adv=silent",          // wrong input count
		"s=1;tree=path:5;n=4;t=1;in=0.1.2.9;adv=silent",      // vertex outside tree
		"s=1;tree=path:5;n=4;t=0;in=spread;adv=silent",       // clauses need t > 0
		"s=1;tree=path:5;n=4;t=1;in=spread;adv=silent+omit",  // t too small to mix
		"s=1;tree=path:5;n=4;t=1;in=spread;adv=bogus",        // unknown clause
		"s=1;tree=path:5;n=4;t=1;in=spread;adv=crash(rounds=1.2)", // rounds/ids mismatch
	} {
		c, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if _, err := RunCell(c, Options{}); err == nil {
			t.Errorf("RunCell(%q) succeeded, want compile error", spec)
		}
	}
}

func TestIsSuspicionTag(t *testing.T) {
	for tag, want := range map[string]bool{
		"treeaa/pf/acc":    true,
		"treeaa/pf/acc2":   true,
		"treeaa/proj/acc":  true,
		"treeaa/pf":        false,
		"treeaa/proj":      false,
		"treeaa/path":      false,
		"acc":              false,
		"x/accord":         false,
	} {
		if got := isSuspicionTag(tag); got != want {
			t.Errorf("isSuspicionTag(%q) = %v, want %v", tag, got, want)
		}
	}
}

// TestGeneratedCellsAreClean is the checker's own sanity anchor: a bounded
// random exploration must find no violations in the real protocol.
func TestGeneratedCellsAreClean(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 25; i++ {
		c := Generate(rng)
		res, err := RunCell(c, Options{})
		if err != nil {
			t.Fatalf("cell %d (%s): %v", i, c, err)
		}
		for _, v := range res.Violations {
			t.Errorf("cell %d: %s", i, v)
		}
	}
}

// TestDifferentialCells pins the sequential/concurrent differential on a
// fixed matrix of cells covering every clause family, including the
// delivery-seam tamperers. make prop runs this test under -race.
func TestDifferentialCells(t *testing.T) {
	for _, spec := range []string{
		"s=1;tree=path:8;n=7;t=2;in=spread;adv=splitvote(per=1)",
		"s=2;tree=figure3;n=7;t=2;in=spread;adv=halfburn+mutate(rate=300)",
		"s=3;tree=star:6;n=6;t=1;in=spread;adv=noise(maxval=12)",
		"s=4;tree=caterpillar:3:1;n=7;t=2;in=spread;adv=equivocator(hi=1000,lo=-100)+omit(drop=500)",
		"s=5;tree=spider:2:2;n=5;t=1;in=spread;adv=crash(rounds=3)",
		"s=6;tree=random:7;n=4;t=1;in=spread;adv=replay(delay=2)+mutate(rate=500)",
		"s=7;tree=kary:2:2;n=9;t=2;in=spread;adv=frame(fake=5)",
		"s=8;tree=path:6;n=4;t=0;in=spread",
	} {
		res, err := RunCell(MustParse(spec), Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for _, v := range res.Violations {
			t.Errorf("%s", v)
		}
	}
}

// TestTCPDifferential runs the TCP comparison on one compatible cell.
func TestTCPDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp cluster in -short mode")
	}
	res, err := RunCell(MustParse("s=1;tree=path:8;n=4;t=1;in=spread;adv=splitvote(per=1)"), Options{TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TCPChecked {
		t.Fatal("TCP differential did not run on a compatible cell")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// evilSpec is the known-bad injection: the delivery-seam tamperer rewrites
// every value gradecast consistently (so the burn rule never fires) to a
// position far outside the tree, dragging honest outputs out of the honest
// hull. Inputs are concentrated on one leaf so the hull is a single vertex.
const evilSpec = "s=1;tree=star:6;n=9;t=2;in=1.1.1.1.1.1.1.1.1;adv=splitvote(per=1)+evil(val=1000000)"

// TestEvilIsCaught: the checker must detect the out-of-model tamperer as a
// validity violation, deterministically across repeated runs.
func TestEvilIsCaught(t *testing.T) {
	c := MustParse(evilSpec)
	first, err := RunCell(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hasValidity := false
	for _, v := range first.Violations {
		if v.Invariant == "validity" {
			hasValidity = true
		}
	}
	if !hasValidity {
		t.Fatalf("evil cell produced no validity violation: %v", first.Violations)
	}
	again, err := RunCell(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Errorf("evil cell is not deterministic:\n 1st: %+v\n 2nd: %+v", first, again)
	}
}

// TestEvilShrinks: the shrinker must reduce the known-bad cell to a minimal
// spec — the decoy splitvote clause dropped, the corruption budget collapsed
// (evil needs no corrupted parties at all) and the tree reduced — that still
// reproduces the violation.
func TestEvilShrinks(t *testing.T) {
	c := MustParse(evilSpec)
	shrunk, runs := Shrink(c, Options{}, 300)
	if runs == 0 {
		t.Fatal("shrinker spent no runs")
	}
	if !Violates(shrunk, Options{}) {
		t.Fatalf("shrunk cell %s no longer violates", shrunk)
	}
	if shrunk.T > 0 {
		t.Errorf("shrunk cell kept t = %d; evil needs no corrupted parties", shrunk.T)
	}
	if len(shrunk.Clauses) != 1 || shrunk.Clauses[0].Name != "evil" {
		t.Errorf("shrunk cell kept clauses %v, want only evil", shrunk.Clauses)
	}
	if shrunk.N >= c.N {
		t.Errorf("shrunk cell kept n = %d, want < %d", shrunk.N, c.N)
	}
	if !strings.HasPrefix(shrunk.TreeSpec, "star:") {
		t.Fatalf("shrunk tree spec %q changed shape", shrunk.TreeSpec)
	}
	var k int
	if _, err := sscanTreeArg(shrunk.TreeSpec, &k); err != nil {
		t.Fatal(err)
	}
	if k >= 6 {
		t.Errorf("shrunk tree %s not smaller than star:6", shrunk.TreeSpec)
	}
	t.Logf("shrunk: %s (%d runs)", shrunk, runs)
}

func sscanTreeArg(spec string, k *int) (int, error) {
	parts := strings.SplitN(spec, ":", 2)
	v, err := parseInt(parts[1])
	*k = v
	return v, err
}

func parseInt(s string) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	return n, nil
}
