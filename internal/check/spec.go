// Package check is the property-based protocol checker: it generates random
// execution cells — a tree, an input placement and a composed randomized
// adversary — runs TreeAA through the internal/sim engine, and evaluates the
// paper's invariants per round. Violating cells are minimized by a greedy
// shrinker to a one-line repro spec that cmd/check replays deterministically.
//
// A cell spec is a single line in the spirit of the chaos plan language:
//
//	s=3;tree=caterpillar:4:2;n=7;t=2;in=spread;adv=splitvote(per=1)+noise(maxval=24)
//	s=5;space=graph:cliquechain:3:4;n=7;t=2;in=spread;adv=equivocator(hi=1000,lo=-100)
//
// Fields are semicolon-separated: the seed, the input space — exactly one of
// tree= (cli.ParseTreeSpec syntax) or space= (a "graph:"-prefixed
// internal/graph spec; the machines then run TreeAA on the block-cut tree
// and decode locally) — the party count n, the fault budget t, the input
// placement ("spread" or dot-separated vertex ids, one per party) and the
// adversary as +-joined clauses name(key=value,...). Integer lists inside
// clause args are dot-separated (crash rounds: rounds=2.5.9). Everything
// randomized in a cell derives from the seed, so a spec reproduces its
// execution exactly.
package check

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"treeaa/internal/tree"
)

// Clause is one adversary component of a cell: a strategy name plus its
// arguments. Recognized names are the adversary.Build registry (silent,
// crash, equivocator, splitvote, halfburn, noise, replay, frame, omit) plus
// the two delivery-seam tamperers: "mutate" (byte-level payload mutation of
// corrupted senders' traffic — model-sound) and "evil" (rewrites every
// party's gradecast sends to a fixed value, honest senders included —
// deliberately out of model; never generated, only injected to exercise the
// checker itself).
type Clause struct {
	Name string
	Args map[string]string
}

// Int returns the named integer argument, or def when absent.
func (cl Clause) Int(key string, def int) (int, error) {
	s, ok := cl.Args[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("check: clause %s: arg %s=%q: want integer", cl.Name, key, s)
	}
	return v, nil
}

// IntList returns the named dot-separated integer list argument.
func (cl Clause) IntList(key string) ([]int, error) {
	s, ok := cl.Args[key]
	if !ok {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("check: clause %s: arg %s=%q: want dot-separated integers", cl.Name, key, s)
		}
		out[i] = v
	}
	return out, nil
}

// String renders the clause canonically (args sorted by key).
func (cl Clause) String() string {
	if len(cl.Args) == 0 {
		return cl.Name
	}
	keys := make([]string, 0, len(cl.Args))
	for k := range cl.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(cl.Name)
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", k, cl.Args[k])
	}
	b.WriteByte(')')
	return b.String()
}

// Cell is one point of the checker's search space.
type Cell struct {
	// Seed drives every randomized component (tree generation for
	// random:K specs, input placement, noise and mutation PRNGs).
	Seed int64
	// TreeSpec is the input space in cli.ParseTreeSpec syntax. Exactly one
	// of TreeSpec and Space is set.
	TreeSpec string
	// Space is a "graph:"-prefixed graph input space (cli.ParseSpaceSpec
	// syntax); the protocol then runs on the graph's block-cut tree.
	Space string
	// N is the party count, T the fault budget (3T < N).
	N, T int
	// Inputs is the explicit input placement (one vertex per party);
	// nil means cli.SpreadInputs.
	Inputs []tree.VertexID
	// Clauses compose the adversary; empty means no adversary.
	Clauses []Clause
}

// String renders the cell as its canonical one-line spec.
func (c *Cell) String() string {
	var b strings.Builder
	if c.Space != "" {
		fmt.Fprintf(&b, "s=%d;space=%s;n=%d;t=%d;in=", c.Seed, c.Space, c.N, c.T)
	} else {
		fmt.Fprintf(&b, "s=%d;tree=%s;n=%d;t=%d;in=", c.Seed, c.TreeSpec, c.N, c.T)
	}
	if c.Inputs == nil {
		b.WriteString("spread")
	} else {
		for i, v := range c.Inputs {
			if i > 0 {
				b.WriteByte('.')
			}
			fmt.Fprintf(&b, "%d", int(v))
		}
	}
	if len(c.Clauses) > 0 {
		b.WriteString(";adv=")
		for i, cl := range c.Clauses {
			if i > 0 {
				b.WriteByte('+')
			}
			b.WriteString(cl.String())
		}
	}
	return b.String()
}

// Parse decodes a one-line cell spec (the inverse of Cell.String).
func Parse(spec string) (*Cell, error) {
	c := &Cell{Seed: -1, N: -1, T: -1}
	sawIn := false
	for _, field := range strings.Split(strings.TrimSpace(spec), ";") {
		key, val, found := strings.Cut(field, "=")
		if !found {
			return nil, fmt.Errorf("check: field %q: want key=value", field)
		}
		var err error
		switch key {
		case "s":
			c.Seed, err = strconv.ParseInt(val, 10, 64)
		case "tree":
			c.TreeSpec = val
		case "space":
			c.Space = val
		case "n":
			c.N, err = strconv.Atoi(val)
		case "t":
			c.T, err = strconv.Atoi(val)
		case "in":
			sawIn = true
			if val != "spread" {
				for _, p := range strings.Split(val, ".") {
					v, verr := strconv.Atoi(p)
					if verr != nil || v < 0 {
						return nil, fmt.Errorf("check: input %q: want vertex id", p)
					}
					c.Inputs = append(c.Inputs, tree.VertexID(v))
				}
			}
		case "adv":
			if val == "none" {
				break
			}
			for _, part := range strings.Split(val, "+") {
				cl, cerr := parseClause(part)
				if cerr != nil {
					return nil, cerr
				}
				c.Clauses = append(c.Clauses, cl)
			}
		default:
			return nil, fmt.Errorf("check: unknown field %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("check: field %q: %v", field, err)
		}
	}
	if c.Seed < 0 || (c.TreeSpec == "") == (c.Space == "") || c.N < 0 || c.T < 0 || !sawIn {
		return nil, fmt.Errorf("check: spec %q: want all of s, exactly one of tree/space, n, t, in", spec)
	}
	return c, nil
}

// MustParse is Parse for compile-time-constant specs in tests.
func MustParse(spec string) *Cell {
	c, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return c
}

func parseClause(s string) (Clause, error) {
	name, rest, hasArgs := strings.Cut(s, "(")
	cl := Clause{Name: name}
	if !hasArgs {
		return cl, nil
	}
	if !strings.HasSuffix(rest, ")") {
		return cl, fmt.Errorf("check: clause %q: unbalanced parentheses", s)
	}
	cl.Args = map[string]string{}
	body := strings.TrimSuffix(rest, ")")
	if body == "" {
		return cl, nil
	}
	for _, arg := range strings.Split(body, ",") {
		k, v, found := strings.Cut(arg, "=")
		if !found || k == "" || v == "" {
			return cl, fmt.Errorf("check: clause %q: arg %q: want key=value", s, arg)
		}
		cl.Args[k] = v
	}
	return cl, nil
}
