package check

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"treeaa/internal/core"
	"treeaa/internal/realaa"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// Violation is one invariant failure in one cell.
type Violation struct {
	// Cell is the violating cell's one-line spec.
	Cell string `json:"cell"`
	// Invariant names the broken property: termination, rounds, validity,
	// agreement, hull, suspicion, exclusion, paths, differential-concurrent,
	// differential-tcp, engine.
	Invariant string `json:"invariant"`
	// Detail is a human-readable explanation.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.Invariant, v.Cell, v.Detail)
}

// hullEps absorbs float rounding in the non-expansion comparison: trimmed
// midpoints are IEEE means of member values, so genuine expansion is never
// this small.
const hullEps = 1e-9

// honestParties returns the fully honest set: neither Byzantine nor
// omission-faulty (omission parties follow the protocol but their outputs
// carry no guarantees, per sim.OutboxFilter).
func (cr *compiled) honestParties() []sim.PartyID {
	out := make([]sim.PartyID, 0, cr.cell.N)
	for i := 0; i < cr.cell.N; i++ {
		if !cr.corrupt[sim.PartyID(i)] {
			out = append(out, sim.PartyID(i))
		}
	}
	return out
}

// evaluate runs every per-execution invariant against the sequential oracle
// run. res/runErr are sim.Run's outcome; cores and probes index the
// machines by party.
func (cr *compiled) evaluate(res *sim.Result, runErr error, cores []*core.Machine, probes []*probeMachine) []Violation {
	spec := cr.cell.String()
	var out []Violation
	add := func(invariant, format string, args ...any) {
		out = append(out, Violation{Cell: spec, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}
	if runErr != nil {
		if errors.Is(runErr, sim.ErrNotDone) {
			add("termination", "honest machines not done within %d rounds", core.Rounds(cr.tr)+2)
		} else {
			add("engine", "execution failed: %v", runErr)
		}
		return out
	}
	honest := cr.honestParties()

	// Termination and the round budget: every honest party outputs, within
	// R_TreeAA = R_RealAA(2|V|,1) + R_RealAA(D,1) (+2 processing rounds).
	for _, p := range honest {
		if _, ok := res.Outputs[p]; !ok {
			add("termination", "honest party %d produced no output", p)
		}
	}
	if budget := core.Rounds(cr.tr) + 2; res.Rounds > budget {
		add("rounds", "execution used %d rounds, budget %d", res.Rounds, budget)
	}

	// Validity: honest outputs lie in the honest inputs' convex hull — the
	// tree hull for tree cells, the geodesic hull for graph cells.
	honestIn := make([]tree.VertexID, 0, len(honest))
	for _, p := range honest {
		honestIn = append(honestIn, cr.inputs[p])
	}
	hull := make(map[tree.VertexID]bool)
	for _, v := range cr.space.ConvexHull(honestIn) {
		hull[v] = true
	}
	outputs := make(map[sim.PartyID]tree.VertexID)
	for _, p := range honest {
		v, ok := res.Outputs[p]
		if !ok {
			continue
		}
		outputs[p] = v.(tree.VertexID)
		if !hull[outputs[p]] {
			add("validity", "party %d output %s outside honest hull %v",
				p, cr.space.Label(outputs[p]), cr.space.Labels(cr.space.ConvexHull(honestIn)))
		}
	}

	// Agreement: honest outputs pairwise within geodesic distance 1 on trees
	// and block graphs; graphs with cycle blocks relax to a shared block
	// (adjacent block-cut-tree decisions decode into one biconnected
	// component), per the Alistarh–Ellen–Rybicki cycle impossibility.
	strict := !cr.space.IsGraph() || cr.space.Graph.IsBlockGraph()
	for i, p := range honest {
		for _, q := range honest[i+1:] {
			vp, okP := outputs[p]
			vq, okQ := outputs[q]
			if !okP || !okQ {
				continue
			}
			switch {
			case !cr.space.AgreementOK(vp, vq):
				add("agreement", "parties %d and %d output %s and %s (distance %d, no shared block)",
					p, q, cr.space.Label(vp), cr.space.Label(vq), cr.space.Dist(vp, vq))
			case strict && cr.space.Dist(vp, vq) > 1:
				add("agreement", "parties %d and %d output %s and %s at distance %d",
					p, q, cr.space.Label(vp), cr.space.Label(vq), cr.space.Dist(vp, vq))
			}
		}
	}

	out = append(out, cr.checkPaths(honest, cores)...)
	out = append(out, cr.checkHull(honest, cores)...)
	out = append(out, cr.checkDetection(honest, probes)...)
	return out
}

// checkPaths asserts PathsFinder's trailing-edge agreement (Lemma 4): every
// honest party's path is root-anchored and valid, and pairwise one path is a
// prefix of the other with length difference at most 1. Only meaningful when
// PathsFinder actually ran (nontrivial non-path trees).
func (cr *compiled) checkPaths(honest []sim.PartyID, cores []*core.Machine) []Violation {
	spec := cr.cell.String()
	var out []Violation
	var paths [][]tree.VertexID
	var owners []sim.PartyID
	for _, p := range honest {
		if cores[p].PathsFinderMachine() == nil {
			return nil // shortcut or trivial mode: no paths to compare
		}
		path := cores[p].Path()
		if path == nil {
			continue // termination violation already reported
		}
		if err := cr.tr.ValidatePath(path); err != nil {
			out = append(out, Violation{Cell: spec, Invariant: "paths",
				Detail: fmt.Sprintf("party %d holds an invalid path: %v", p, err)})
			continue
		}
		if path[0] != cr.tr.Root() {
			out = append(out, Violation{Cell: spec, Invariant: "paths",
				Detail: fmt.Sprintf("party %d path does not start at the root", p)})
		}
		paths = append(paths, path)
		owners = append(owners, p)
	}
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			a, b := paths[i], paths[j]
			if len(a) > len(b) {
				a, b = b, a
			}
			bad := len(b)-len(a) > 1
			for k := 0; !bad && k < len(a); k++ {
				bad = a[k] != b[k]
			}
			if bad {
				out = append(out, Violation{Cell: spec, Invariant: "paths",
					Detail: fmt.Sprintf("parties %d and %d hold paths %s and %s (want prefix-equal up to one trailing edge)",
						owners[i], owners[j], cr.tr.RenderPath(paths[i]), cr.tr.RenderPath(paths[j]))})
			}
		}
	}
	return out
}

// realInstances returns the RealAA sub-executions of one machine, keyed by
// phase.
func realInstances(m *core.Machine) map[string]*realaa.Machine {
	out := map[string]*realaa.Machine{}
	if sc := m.ShortcutMachine(); sc != nil {
		out[phaseShortcut] = sc.RealAA()
	}
	if pf := m.PathsFinderMachine(); pf != nil {
		out[phasePathsFind] = pf.RealAA()
	}
	if proj := m.ProjectionMachine(); proj != nil {
		out[phaseProjection] = proj
	}
	return out
}

// checkHull asserts monotone non-expansion of the honest-value interval
// across the iterations of every RealAA instance: the interval spanned by
// honest values after iteration k+1 is contained in the iteration-k
// interval. Skipped under adaptive corruption (a crash clause): a party that
// is honest for the first iterations and corrupted later contributes early
// values the final honest set never held, so the per-iteration honest
// interval is not well-defined.
func (cr *compiled) checkHull(honest []sim.PartyID, cores []*core.Machine) []Violation {
	if cr.adaptive {
		return nil
	}
	spec := cr.cell.String()
	var out []Violation
	for _, key := range []string{phaseShortcut, phasePathsFind, phaseProjection} {
		var hists [][]float64
		minLen := math.MaxInt
		for _, p := range honest {
			inst := realInstances(cores[p])[key]
			if inst == nil {
				continue
			}
			h := inst.History()
			hists = append(hists, h)
			if len(h) < minLen {
				minLen = len(h)
			}
		}
		if len(hists) == 0 || minLen == 0 {
			continue
		}
		interval := func(k int) (lo, hi float64) {
			lo, hi = math.Inf(1), math.Inf(-1)
			for _, h := range hists {
				lo, hi = math.Min(lo, h[k]), math.Max(hi, h[k])
			}
			return lo, hi
		}
		prevLo, prevHi := interval(0)
		for k := 1; k < minLen; k++ {
			lo, hi := interval(k)
			if lo < prevLo-hullEps || hi > prevHi+hullEps {
				out = append(out, Violation{Cell: spec, Invariant: "hull",
					Detail: fmt.Sprintf("phase %s: honest interval [%g, %g] after iteration %d not contained in [%g, %g]",
						key, lo, hi, k+1, prevLo, prevHi)})
				break
			}
			prevLo, prevHi = lo, hi
		}
	}
	return out
}

// checkDetection asserts two properties of the burn rule from the per-round
// probe snapshots: suspicion and exclusion sets grow monotonically ("once
// burned, always burned"), and no honest party is ever globally excluded
// (an exclusion needs t+1 suspicion sets, hence an honest witness).
// The exclusion half is skipped under the out-of-model evil tamperer, which
// may corrupt honest traffic arbitrarily.
func (cr *compiled) checkDetection(honest []sim.PartyID, probes []*probeMachine) []Violation {
	if probes == nil {
		return nil
	}
	spec := cr.cell.String()
	honestSet := make(map[sim.PartyID]bool, len(honest))
	for _, p := range honest {
		honestSet[p] = true
	}
	var out []Violation
	for _, p := range honest {
		prev := map[string]probeSets{}
		for _, rec := range probes[p].recs {
			for key, sets := range rec.sets {
				if old, ok := prev[key]; ok {
					for _, pair := range []struct {
						name     string
						old, new map[sim.PartyID]bool
					}{
						{"suspicion", old.suspected, sets.suspected},
						{"exclusion", old.ignored, sets.ignored},
					} {
						for q := range pair.old {
							if !pair.new[q] {
								out = append(out, Violation{Cell: spec, Invariant: "suspicion",
									Detail: fmt.Sprintf("party %d phase %s: %s of %d revoked (once burned, always burned)",
										p, key, pair.name, q)})
							}
						}
					}
				}
				prev[key] = sets
				if !cr.hasEvil {
					var excludedHonest []int
					for q := range sets.ignored {
						if honestSet[q] {
							excludedHonest = append(excludedHonest, int(q))
						}
					}
					if len(excludedHonest) > 0 {
						sort.Ints(excludedHonest)
						out = append(out, Violation{Cell: spec, Invariant: "exclusion",
							Detail: fmt.Sprintf("party %d phase %s: honest parties %v globally excluded",
								p, key, excludedHonest)})
					}
				}
			}
		}
	}
	return dedupe(out)
}

// dedupe collapses identical violations (monotonicity breaks repeat every
// subsequent round).
func dedupe(vs []Violation) []Violation {
	seen := map[string]bool{}
	out := vs[:0]
	for _, v := range vs {
		k := v.Invariant + "|" + v.Detail
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}
