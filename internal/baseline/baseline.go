// Package baseline implements an iteration-based Approximate Agreement
// protocol on trees in the style of Nowak and Rybicki (DISC 2019) — the
// paper's reference [33] and the O(log D(T))-round state of the art that
// TreeAA improves on. It is the comparison protocol for experiment E5.
//
// Each iteration costs one communication round: every party broadcasts its
// current vertex, computes the t-robust safe area of the received multiset
// (tree.SafeArea — the set of vertices inside the hull of every
// (n-t)-sub-multiset, which is a convex subtree contained in the honest
// values' hull), and moves to the center of that subtree. The honest values'
// hull therefore never grows and its diameter drops by roughly half per
// iteration, giving O(log D(T)) rounds — but no better: unlike RealAA's
// detect-and-ignore gradecast, plain broadcasts let a Byzantine party
// equivocate in every iteration without ever being identified.
package baseline

import (
	"fmt"

	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// Iterations returns the iteration budget for a tree of diameter d: the
// safe-area/center update halves the honest hull's diameter each iteration,
// and two extra iterations absorb rounding at odd diameters.
func Iterations(d int) int {
	if d <= 1 {
		return 0
	}
	iters := 0
	for r := d; r > 1; r = (r + 1) / 2 {
		iters++
	}
	return iters + 2
}

// Rounds returns the communication-round budget (one per iteration).
func Rounds(t *tree.Tree) int {
	d, _, _ := t.Diameter()
	return Iterations(d)
}

// VertexMsg is the per-iteration broadcast. It is exported so adversary
// strategies can craft it.
type VertexMsg struct {
	Tag  string
	Iter int
	V    tree.VertexID
}

// Size implements sim.Sizer with the exact internal/wire encoded length
// (the vertex travels as a fixed u32).
func (m VertexMsg) Size() int {
	return 2 + sim.UvarintLen(uint64(len(m.Tag))) + len(m.Tag) + sim.UvarintLen(uint64(m.Iter)) + 4
}

// Config parameterizes a baseline machine.
type Config struct {
	// Tree is the public input space.
	Tree *tree.Tree
	// N, T, ID are the party parameters (T < N/3).
	N, T int
	ID   sim.PartyID
	// Input is the party's input vertex.
	Input tree.VertexID
	// Tag disambiguates executions; defaults to "baseline".
	Tag string
	// StartRound is the global starting round (default 1).
	StartRound int
	// Iterations overrides the budget (0 means derive from the diameter).
	Iterations int
}

// Machine is one party's baseline execution; its output is a tree.VertexID.
type Machine struct {
	cfg     Config
	val     tree.VertexID
	history []tree.VertexID
	done    bool
}

var _ sim.Machine = (*Machine)(nil)

// NewMachine validates cfg and returns a baseline machine.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Tree == nil {
		return nil, fmt.Errorf("baseline: nil tree")
	}
	if !cfg.Tree.Valid(cfg.Input) {
		return nil, fmt.Errorf("baseline: invalid input vertex %d", int(cfg.Input))
	}
	if cfg.N <= 0 || cfg.T < 0 || 3*cfg.T >= cfg.N {
		return nil, fmt.Errorf("baseline: need 0 <= 3T < N, got N=%d T=%d", cfg.N, cfg.T)
	}
	if cfg.ID < 0 || int(cfg.ID) >= cfg.N {
		return nil, fmt.Errorf("baseline: ID %d out of range", cfg.ID)
	}
	if cfg.Tag == "" {
		cfg.Tag = "baseline"
	}
	if cfg.StartRound == 0 {
		cfg.StartRound = 1
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = Rounds(cfg.Tree)
	}
	return &Machine{cfg: cfg, val: cfg.Input}, nil
}

// Value returns the current vertex.
func (m *Machine) Value() tree.VertexID { return m.val }

// History returns the vertex held after each completed iteration (a copy).
func (m *Machine) History() []tree.VertexID {
	out := make([]tree.VertexID, len(m.history))
	copy(out, m.history)
	return out
}

// Step implements sim.Machine.
func (m *Machine) Step(r int, inbox []sim.Message) []sim.Message {
	rr := r - m.cfg.StartRound + 1
	if rr < 1 || m.done {
		return nil
	}
	if rr > 1 && rr <= m.cfg.Iterations+1 {
		m.finishIteration(rr-1, inbox)
	}
	if rr > m.cfg.Iterations {
		m.done = true
		return nil
	}
	return []sim.Message{{To: sim.Broadcast, Payload: VertexMsg{Tag: m.cfg.Tag, Iter: rr, V: m.val}}}
}

// finishIteration applies the safe-area/center update.
func (m *Machine) finishIteration(iter int, inbox []sim.Message) {
	got := make(map[sim.PartyID]tree.VertexID, m.cfg.N)
	for _, msg := range inbox {
		p, ok := msg.Payload.(VertexMsg)
		if !ok || p.Tag != m.cfg.Tag || p.Iter != iter || !m.cfg.Tree.Valid(p.V) {
			continue
		}
		if _, dup := got[msg.From]; !dup {
			got[msg.From] = p.V
		}
	}
	multiset := make([]tree.VertexID, 0, m.cfg.N)
	for p := sim.PartyID(0); int(p) < m.cfg.N; p++ {
		if v, ok := got[p]; ok {
			multiset = append(multiset, v)
		} else {
			multiset = append(multiset, m.val) // silent senders count as own value
		}
	}
	safe := m.cfg.Tree.SafeArea(multiset, m.cfg.T)
	if len(safe) > 0 {
		m.val = tree.SubtreeCenter(m.cfg.Tree, safe)
	}
	m.history = append(m.history, m.val)
}

// Output implements sim.Machine; the value is a tree.VertexID.
func (m *Machine) Output() (any, bool) {
	if !m.done {
		return nil, false
	}
	return m.val, true
}

// Run executes the baseline for all parties and returns the honest outputs
// together with the execution result.
func Run(t *tree.Tree, n, tc int, inputs []tree.VertexID, adv sim.Adversary) (map[sim.PartyID]tree.VertexID, *sim.Result, error) {
	if len(inputs) != n {
		return nil, nil, fmt.Errorf("baseline: %d inputs for n = %d", len(inputs), n)
	}
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		m, err := NewMachine(Config{Tree: t, N: n, T: tc, ID: sim.PartyID(i), Input: inputs[i]})
		if err != nil {
			return nil, nil, err
		}
		machines[i] = m
	}
	res, err := sim.Run(sim.Config{N: n, MaxCorrupt: tc, MaxRounds: Rounds(t) + 2, Adversary: adv}, machines)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[sim.PartyID]tree.VertexID, len(res.Outputs))
	for p, v := range res.Outputs {
		out[p] = v.(tree.VertexID)
	}
	return out, res, nil
}
