package baseline

import (
	"math/rand"
	"testing"

	"treeaa/internal/adversary"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

func checkTreeAA(t *testing.T, tr *tree.Tree, inputs []tree.VertexID, corrupt map[sim.PartyID]bool, outputs map[sim.PartyID]tree.VertexID) {
	t.Helper()
	var honestIn []tree.VertexID
	for i, v := range inputs {
		if !corrupt[sim.PartyID(i)] {
			honestIn = append(honestIn, v)
		}
	}
	hull := make(map[tree.VertexID]bool)
	for _, v := range tr.ConvexHull(honestIn) {
		hull[v] = true
	}
	var outs []tree.VertexID
	for p, v := range outputs {
		if corrupt[p] {
			continue
		}
		if !hull[v] {
			t.Errorf("validity violated: party %d output %s outside hull", p, tr.Label(v))
		}
		outs = append(outs, v)
	}
	for i := range outs {
		for j := i + 1; j < len(outs); j++ {
			if d := tr.Dist(outs[i], outs[j]); d > 1 {
				t.Errorf("1-agreement violated: %s vs %s at distance %d",
					tr.Label(outs[i]), tr.Label(outs[j]), d)
			}
		}
	}
}

func TestIterationsBudget(t *testing.T) {
	tests := []struct{ d, want int }{
		{0, 0}, {1, 0}, {2, 3}, {4, 4}, {16, 6}, {100, 9},
	}
	for _, tc := range tests {
		if got := Iterations(tc.d); got != tc.want {
			t.Errorf("Iterations(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestBaselineHonest(t *testing.T) {
	tr := tree.NewPath(33)
	n := 5
	inputs := []tree.VertexID{0, 32, 16, 8, 24}
	outputs, _, err := Run(tr, n, 1, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkTreeAA(t, tr, inputs, nil, outputs)
}

func TestBaselineHonestExactAgreementAfterOneIteration(t *testing.T) {
	// Identical multisets give identical safe areas and centers.
	tr := tree.NewSpider(3, 7)
	n := 4
	inputs := []tree.VertexID{0, 7, 14, 21}
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		m, err := NewMachine(Config{Tree: tr, N: n, T: 1, ID: sim.PartyID(i), Input: inputs[i]})
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
	}
	if _, err := sim.Run(sim.Config{N: n, MaxCorrupt: 1, MaxRounds: Rounds(tr) + 2}, machines); err != nil {
		t.Fatal(err)
	}
	var first tree.VertexID
	for i, mach := range machines {
		h := mach.(*Machine).History()
		if i == 0 {
			first = h[0]
		}
		if h[0] != first {
			t.Errorf("party %d: first-iteration value %s differs from %s",
				i, tr.Label(h[0]), tr.Label(first))
		}
		if h[len(h)-1] != h[0] {
			t.Errorf("party %d drifted after agreement: %v", i, tr.Labels(h))
		}
	}
}

// vertexSplitter equivocates against the baseline every iteration: it sends
// one hull extreme to half the parties and the other extreme to the rest —
// undetectable by plain broadcasts.
type vertexSplitter struct {
	ids    []sim.PartyID
	n      int
	tag    string
	lo, hi tree.VertexID
}

func (a *vertexSplitter) Initial() []sim.PartyID { return a.ids }
func (a *vertexSplitter) Step(r int, _ []sim.Message, _ map[sim.PartyID][]sim.Message) ([]sim.Message, []sim.PartyID) {
	var msgs []sim.Message
	for _, from := range a.ids {
		for to := 0; to < a.n; to++ {
			v := a.lo
			if to >= a.n/2 {
				v = a.hi
			}
			msgs = append(msgs, sim.Message{From: from, To: sim.PartyID(to), Payload: VertexMsg{Tag: a.tag, Iter: r, V: v}})
		}
	}
	return msgs, nil
}

func TestBaselineUnderSplitter(t *testing.T) {
	tr := tree.NewPath(65)
	n, tc := 7, 2
	inputs := []tree.VertexID{0, 64, 32, 16, 48, 0, 0}
	ids := adversary.FirstParties(n, tc)
	corrupt := map[sim.PartyID]bool{ids[0]: true, ids[1]: true}
	adv := &vertexSplitter{ids: ids, n: n, tag: "baseline", lo: 0, hi: 64}
	outputs, _, err := Run(tr, n, tc, inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	checkTreeAA(t, tr, inputs, corrupt, outputs)
}

func TestBaselineUnderSplitterManyTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		tr := tree.RandomPruefer(3+rng.Intn(50), rng)
		n := 4 + rng.Intn(7)
		tc := (n - 1) / 3
		inputs := make([]tree.VertexID, n)
		for i := range inputs {
			inputs[i] = tree.VertexID(rng.Intn(tr.NumVertices()))
		}
		ids := adversary.FirstParties(n, tc)
		corrupt := make(map[sim.PartyID]bool)
		for _, id := range ids {
			corrupt[id] = true
		}
		_, a, b := tr.Diameter()
		adv := &vertexSplitter{ids: ids, n: n, tag: "baseline", lo: a, hi: b}
		outputs, _, err := Run(tr, n, tc, inputs, adv)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkTreeAA(t, tr, inputs, corrupt, outputs)
	}
}

func TestBaselineCrash(t *testing.T) {
	tr := tree.NewCaterpillar(10, 2)
	n, tc := 4, 1
	inputs := []tree.VertexID{0, 10, 20, 29}
	adv := &adversary.Silent{IDs: []sim.PartyID{3}}
	corrupt := map[sim.PartyID]bool{3: true}
	outputs, _, err := Run(tr, n, tc, inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	checkTreeAA(t, tr, inputs, corrupt, outputs)
}

func TestBaselineTrivial(t *testing.T) {
	tr := tree.NewPath(2)
	inputs := []tree.VertexID{0, 1, 0, 1}
	outputs, res, err := Run(tr, 4, 1, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkTreeAA(t, tr, inputs, nil, outputs)
	if res.Messages != 0 {
		t.Errorf("trivial tree used %d messages", res.Messages)
	}
}

func TestBaselineRoundsLogarithmic(t *testing.T) {
	// Rounds must grow like log2(D).
	r100 := Rounds(tree.NewPath(101))   // D = 100
	r1000 := Rounds(tree.NewPath(1025)) // D = 1024
	if r100 < 5 || r100 > 12 {
		t.Errorf("Rounds(D=100) = %d, want ~log2", r100)
	}
	if r1000-r100 > 5 {
		t.Errorf("Rounds grew too fast: %d -> %d", r100, r1000)
	}
}

func TestNewMachineErrors(t *testing.T) {
	tr := tree.Figure3Tree()
	base := Config{Tree: tr, N: 4, T: 1, ID: 0, Input: 0}
	if _, err := NewMachine(base); err != nil {
		t.Fatalf("base: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.Tree = nil },
		func(c *Config) { c.Input = 99 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.T = 2 },
		func(c *Config) { c.ID = 9 },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if _, err := NewMachine(c); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func TestSubtreeCenter(t *testing.T) {
	tr := tree.NewPath(9)
	all := make([]tree.VertexID, 9)
	for i := range all {
		all[i] = tree.VertexID(i)
	}
	if c := tree.SubtreeCenter(tr, all); c != 4 {
		t.Errorf("center of path = %v, want 4", c)
	}
	if c := tree.SubtreeCenter(tr, []tree.VertexID{2}); c != 2 {
		t.Errorf("center of single vertex = %v, want 2", c)
	}
	// Even-length path: tie resolves to the lower id.
	if c := tree.SubtreeCenter(tr, all[:4]); c != 1 {
		t.Errorf("center of 4-path = %v, want 1", c)
	}
}

func TestRunInputMismatch(t *testing.T) {
	tr := tree.Figure3Tree()
	if _, _, err := Run(tr, 3, 0, []tree.VertexID{0}, nil); err == nil {
		t.Error("want error for input count mismatch")
	}
}
