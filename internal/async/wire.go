package async

// Wire conversion for the networked asynchronous mode: the in-memory
// pipeline payloads (RBCMsg[float64] value steps, RBCMsg[string] report
// steps, tag-prefixed by phase) map 1:1 onto wire.AsyncValue and
// wire.AsyncReport. The mapping is total in both directions for honest
// traffic: every payload a Pipeline emits converts (ToWire), and every
// frame the codec accepts converts back (FromWire) — the codec's
// canonicality checks (phase/kind ranges, iter >= 1, strictly ascending
// sender sets) mean a Byzantine peer cannot craft a decodable frame that
// FromWire rejects, so the driver never needs a second validation pass.

import (
	"fmt"
	"strconv"
	"strings"

	"treeaa/internal/sim"
	"treeaa/internal/wire"
)

func phasePrefix(phase byte) (string, bool) {
	switch phase {
	case PhasePathsFinder:
		return prefixPathsFinder, true
	case PhaseProjection:
		return prefixProjection, true
	}
	return "", false
}

// ToWire converts a pipeline payload to its wire form. It reports an error
// for payloads a Pipeline cannot emit (foreign tags, non-canonical report
// sets) — hitting one is a bug, not a network condition.
func ToWire(payload any) (any, error) {
	switch q := payload.(type) {
	case RBCMsg[float64]:
		phase, tag, ok := splitPhase(q.Tag)
		if !ok {
			return nil, fmt.Errorf("async: payload tag %q has no phase prefix", q.Tag)
		}
		iter, ok := parseTag(tag, "v/")
		if !ok {
			return nil, fmt.Errorf("async: value payload tag %q is not v/<k>", q.Tag)
		}
		return wire.AsyncValue{Phase: phase, Kind: byte(q.Kind), Iter: iter,
			Src: sim.PartyID(q.Src), Val: q.Val}, nil
	case RBCMsg[string]:
		phase, tag, ok := splitPhase(q.Tag)
		if !ok {
			return nil, fmt.Errorf("async: payload tag %q has no phase prefix", q.Tag)
		}
		iter, ok := parseTag(tag, "r/")
		if !ok {
			return nil, fmt.Errorf("async: report payload tag %q is not r/<k>", q.Tag)
		}
		senders, err := canonicalSenders(q.Val)
		if err != nil {
			return nil, err
		}
		return wire.AsyncReport{Phase: phase, Kind: byte(q.Kind), Iter: iter,
			Src: sim.PartyID(q.Src), Senders: senders}, nil
	}
	return nil, fmt.Errorf("async: payload %T has no wire form", payload)
}

// FromWire converts a decoded wire payload back to the pipeline payload.
// The bool reports whether the payload was an async frame at all.
func FromWire(payload any) (any, bool) {
	switch q := payload.(type) {
	case wire.AsyncValue:
		prefix, ok := phasePrefix(q.Phase)
		if !ok {
			return nil, false
		}
		return RBCMsg[float64]{Tag: prefix + valTag(q.Iter), Kind: Kind(q.Kind),
			Src: PartyID(q.Src), Val: q.Val}, true
	case wire.AsyncReport:
		prefix, ok := phasePrefix(q.Phase)
		if !ok {
			return nil, false
		}
		ids := make([]PartyID, len(q.Senders))
		for i, p := range q.Senders {
			ids[i] = PartyID(p)
		}
		return RBCMsg[string]{Tag: prefix + repTag(q.Iter), Kind: Kind(q.Kind),
			Src: PartyID(q.Src), Val: encodeIDs(ids)}, true
	}
	return nil, false
}

// canonicalSenders parses an encoded report set and checks it is canonical
// (strictly ascending), which the wire encoding requires.
func canonicalSenders(enc string) ([]sim.PartyID, error) {
	if enc == "" {
		return nil, nil
	}
	parts := strings.Split(enc, ",")
	out := make([]sim.PartyID, 0, len(parts))
	prev := -1
	for _, p := range parts {
		id, err := strconv.Atoi(p)
		if err != nil || id <= prev {
			return nil, fmt.Errorf("async: report set %q not canonical", enc)
		}
		prev = id
		out = append(out, sim.PartyID(id))
	}
	return out, nil
}

// encodeIDs renders an ascending id list in the report-set encoding
// ("0,2,5") shared with encodeSet.
func encodeIDs(ids []PartyID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(int(id))
	}
	return strings.Join(parts, ",")
}
