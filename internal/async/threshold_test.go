package async

import "testing"

// The Bracha thresholds at their exact boundaries, n=4 t=1: echo→ready at
// n-t, ready amplification at t+1, delivery at 2t+1. Each test feeds one
// message fewer than the threshold first and asserts silence.

func TestRBCEchoThresholdExact(t *testing.T) {
	r := NewRBC[float64](4, 1, 0)
	for _, from := range []PartyID{1, 2} { // n-t-1 = 2 echoes: below threshold
		out, dels := r.Handle(Message{From: from, Payload: RBCMsg[float64]{Tag: "x", Kind: KindEcho, Src: 1, Val: 5}})
		if len(out) != 0 || len(dels) != 0 {
			t.Fatalf("ready sent after %d echoes, threshold is n-t=3", from)
		}
	}
	out, dels := r.Handle(Message{From: 3, Payload: RBCMsg[float64]{Tag: "x", Kind: KindEcho, Src: 1, Val: 5}})
	if len(dels) != 0 {
		t.Fatal("echoes alone delivered")
	}
	if len(out) != 1 {
		t.Fatalf("got %d messages at the n-t echo, want the ready broadcast", len(out))
	}
	p := out[0].Payload.(RBCMsg[float64])
	if p.Kind != KindReady || out[0].To != Broadcast || p.Val != 5 {
		t.Fatalf("n-t echoes produced %+v, want broadcast ready for 5", p)
	}
}

func TestRBCReadyThresholdsExact(t *testing.T) {
	r := NewRBC[float64](4, 1, 0)
	// t readies: no amplification yet.
	out, dels := r.Handle(Message{From: 1, Payload: RBCMsg[float64]{Tag: "x", Kind: KindReady, Src: 2, Val: 7}})
	if len(out) != 0 || len(dels) != 0 {
		t.Fatal("single ready amplified, threshold is t+1=2")
	}
	// t+1 readies: amplify, but 2t+1 not reached — no delivery.
	out, dels = r.Handle(Message{From: 2, Payload: RBCMsg[float64]{Tag: "x", Kind: KindReady, Src: 2, Val: 7}})
	if len(dels) != 0 {
		t.Fatal("delivered at t+1 readies, threshold is 2t+1=3")
	}
	if len(out) != 1 || out[0].Payload.(RBCMsg[float64]).Kind != KindReady {
		t.Fatalf("t+1 readies produced %v, want our own ready", out)
	}
	// 2t+1 readies: deliver exactly once, no further traffic.
	out, dels = r.Handle(Message{From: 3, Payload: RBCMsg[float64]{Tag: "x", Kind: KindReady, Src: 2, Val: 7}})
	if len(out) != 0 {
		t.Fatalf("delivery round sent %v, want nothing", out)
	}
	if len(dels) != 1 || dels[0].Val != 7 || dels[0].Src != 2 {
		t.Fatalf("deliveries = %v, want value 7 from src 2", dels)
	}
	// A fourth ready must not re-deliver.
	if _, dels = r.Handle(Message{From: 0, Payload: RBCMsg[float64]{Tag: "x", Kind: KindReady, Src: 2, Val: 7}}); len(dels) != 0 {
		t.Fatal("re-delivered past 2t+1")
	}
}

// TestAADecidesWithMinimumMessages drives one AA iteration on the leanest
// possible transcript: no INIT or ECHO ever arrives — every RBC delivery
// rides pure ready quorums — and the party sees exactly n-t values and n-t
// reports, (n-t)·(2t+1)·2 = 18 messages in all. One message short it must
// still be undecided.
func TestAADecidesWithMinimumMessages(t *testing.T) {
	n, tc := 4, 1
	m := NewRealAA(n, tc, 0, 1.0, 1)
	m.Init()

	type step struct {
		msg Message
	}
	var script []step
	for src, val := range map[PartyID]float64{0: 1, 1: 2, 2: 3} {
		for _, from := range []PartyID{1, 2, 3} {
			script = append(script, step{Message{From: from, Payload: RBCMsg[float64]{
				Tag: valTag(1), Kind: KindReady, Src: src, Val: val}}})
		}
	}
	for _, rep := range []PartyID{0, 1, 2} {
		for _, from := range []PartyID{1, 2, 3} {
			script = append(script, step{Message{From: from, Payload: RBCMsg[string]{
				Tag: repTag(1), Kind: KindReady, Src: rep, Val: "0,1,2"}}})
		}
	}
	for i, s := range script {
		if _, done := m.Output(); done {
			t.Fatalf("decided after %d messages, minimum is %d", i, len(script))
		}
		m.Deliver(s.msg)
	}
	raw, done := m.Output()
	if !done {
		t.Fatalf("undecided after the full %d-message minimum transcript", len(script))
	}
	// Trimmed midpoint of {1,2,3} with t=1: drop 1 and 3, midpoint of {2}.
	if v := raw.(float64); v != 2 {
		t.Errorf("decided %v, want 2", v)
	}
}
