package async

import (
	"math/rand"
	"testing"

	"treeaa/internal/cli"
	"treeaa/internal/core"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

func pipelineFleet(t *testing.T, tr *tree.Tree, n, tc int, inputs []tree.VertexID) ([]Machine, int) {
	t.Helper()
	ms := make([]Machine, n)
	budget := 0
	for i := 0; i < n; i++ {
		p, err := NewPipeline(tr, n, tc, PartyID(i), inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = p
		if b := p.DeliveryBudget(); b > budget {
			budget = b
		}
	}
	return ms, budget
}

// TestPipelineShapes: the full two-phase TreeAA pipeline (PathsFinder over
// the Euler list, then projection onto the decided path) upholds validity
// and 1-agreement on every tree shape under every scheduler.
func TestPipelineShapes(t *testing.T) {
	n, tc := 4, 1
	for _, shape := range []string{"path:8", "star:6", "spider:3:3"} {
		tr, err := cli.ParseTreeSpec(shape, 1)
		if err != nil {
			t.Fatal(err)
		}
		inputs := cli.SpreadInputs(tr, n)
		for name, sched := range map[string]Scheduler{
			"fifo":   FIFO{},
			"lifo":   LIFO{},
			"random": Random{Rng: rand.New(rand.NewSource(7))},
			"starve": Starve{Victims: map[PartyID]bool{1: true}},
		} {
			ms, budget := pipelineFleet(t, tr, n, tc, inputs)
			res, err := Run(Config{N: n, MaxDeliveries: budget, Scheduler: sched}, ms)
			if err != nil {
				t.Fatalf("%s/%s: %v", shape, name, err)
			}
			checkAsyncTreeAA(t, tr, inputs, []PartyID{0, 1, 2, 3}, res.Outputs, shape+"/"+name)
			for i, m := range ms {
				p := m.(*Pipeline)
				if len(p.Path()) == 0 {
					t.Errorf("%s/%s: party %d skipped the projection phase", shape, name, i)
				}
			}
		}
	}
}

// TestPipelineTrivialTree: diameter <= 1 needs no protocol at all — every
// party is decided on its own input at construction.
func TestPipelineTrivialTree(t *testing.T) {
	tr := tree.NewPath(2)
	inputs := []tree.VertexID{0, 1, 0, 1}
	ms, budget := pipelineFleet(t, tr, 4, 1, inputs)
	for i, m := range ms {
		if msgs := m.Init(); len(msgs) != 0 {
			t.Errorf("party %d sent %d messages on a trivial tree", i, len(msgs))
		}
		raw, done := m.Output()
		if !done || raw.(tree.VertexID) != inputs[i] {
			t.Errorf("party %d: output %v, %v; want own input %v", i, raw, done, inputs[i])
		}
	}
	if budget <= 0 {
		t.Error("trivial pipeline has no delivery budget slack")
	}
}

// TestAsyncMatchesSyncOnQuietNet is the differential anchor: with no
// faults (t=0) and deterministic FIFO scheduling, every async report names
// all n senders, so the decided values are delivery-order independent —
// and they must land within the agreement tolerance (tree distance 1) of
// what the synchronous protocol decides from the same inputs. Path input
// spaces are excluded: there the synchronous machine runs the Section 4
// single-phase shortcut, a different algorithm whose decision point inside
// the hull need not coincide with the two-phase pipeline's (paths are
// still covered property-wise by TestPipelineShapes).
func TestAsyncMatchesSyncOnQuietNet(t *testing.T) {
	n := 4
	for _, shape := range []string{"star:6", "spider:3:3", "caterpillar:4:2"} {
		for seed := int64(1); seed <= 5; seed++ {
			tr, err := cli.ParseTreeSpec(shape, seed)
			if err != nil {
				t.Fatal(err)
			}
			inputs := cli.SpreadInputs(tr, n)

			syncMachines := make([]sim.Machine, n)
			for i := range syncMachines {
				m, err := core.NewMachine(core.Config{Tree: tr, N: n, T: 0,
					ID: sim.PartyID(i), Input: inputs[i]})
				if err != nil {
					t.Fatal(err)
				}
				syncMachines[i] = m
			}
			want, err := sim.Run(sim.Config{N: n, MaxRounds: core.Rounds(tr) + 2}, syncMachines)
			if err != nil {
				t.Fatalf("%s seed %d: sync oracle: %v", shape, seed, err)
			}

			ms, budget := pipelineFleet(t, tr, n, 0, inputs)
			res, err := Run(Config{N: n, MaxDeliveries: budget}, ms)
			if err != nil {
				t.Fatalf("%s seed %d: async: %v", shape, seed, err)
			}
			checkAsyncTreeAA(t, tr, inputs, []PartyID{0, 1, 2, 3}, res.Outputs, shape)
			for p, raw := range res.Outputs {
				av := raw.(tree.VertexID)
				for q, sraw := range want.Outputs {
					sv := sraw.(tree.VertexID)
					if d := tr.Dist(av, sv); d > 1 {
						t.Errorf("%s seed %d: async party %d decided %s, sync party %d decided %s (dist %d > 1)",
							shape, seed, p, tr.Label(av), q, tr.Label(sv), d)
					}
				}
			}
		}
	}
}

// TestPipelineWireRoundTrip: every payload the pipeline emits survives the
// ToWire/FromWire conversion with its phase and tag intact, and foreign
// payloads are refused.
func TestPipelineWireRoundTrip(t *testing.T) {
	payloads := []any{
		RBCMsg[float64]{Tag: "pf.v/3", Kind: KindEcho, Src: 2, Val: 4.5},
		RBCMsg[float64]{Tag: "pj.v/1", Kind: KindInit, Src: 0, Val: 1},
		RBCMsg[string]{Tag: "pf.r/2", Kind: KindReady, Src: 3, Val: "0,1,3"},
		RBCMsg[string]{Tag: "pj.r/7", Kind: KindInit, Src: 1, Val: ""},
	}
	for _, p := range payloads {
		w, err := ToWire(p)
		if err != nil {
			t.Fatalf("ToWire(%+v): %v", p, err)
		}
		back, ok := FromWire(w)
		if !ok {
			t.Fatalf("FromWire rejected %+v", w)
		}
		if back != p {
			t.Errorf("round trip: %+v -> %+v", p, back)
		}
	}
	if _, err := ToWire(RBCMsg[float64]{Tag: "v/3", Kind: KindEcho, Src: 2, Val: 4.5}); err == nil {
		t.Error("ToWire accepted a tag without a phase prefix")
	}
	if _, err := ToWire(RBCMsg[string]{Tag: "pf.r/2", Kind: KindInit, Src: 3, Val: "3,1"}); err == nil {
		t.Error("ToWire accepted a non-canonical sender set")
	}
	if _, err := ToWire("stray"); err == nil {
		t.Error("ToWire accepted a foreign payload")
	}
}
