package async

import (
	"errors"
	"math/rand"
	"testing"
)

// echoMachine: a toy machine — party 0 broadcasts "ping"; every recipient
// decides upon receipt.
type echoMachine struct {
	id   PartyID
	out  string
	done bool
}

func (m *echoMachine) Init() []Message {
	if m.id == 0 {
		return []Message{{To: Broadcast, Payload: "ping"}}
	}
	return nil
}

func (m *echoMachine) Deliver(msg Message) []Message {
	if s, ok := msg.Payload.(string); ok {
		m.out, m.done = s, true
	}
	return nil
}

func (m *echoMachine) Output() (any, bool) {
	if !m.done {
		return nil, false
	}
	return m.out, true
}

func echoMachines(n int) []Machine {
	ms := make([]Machine, n)
	for i := range ms {
		ms[i] = &echoMachine{id: PartyID(i)}
	}
	return ms
}

func TestRunEcho(t *testing.T) {
	res, err := Run(Config{N: 3, MaxDeliveries: 100}, echoMachines(3))
	if err != nil {
		t.Fatal(err)
	}
	for p := PartyID(0); p < 3; p++ {
		if res.Outputs[p] != "ping" {
			t.Errorf("party %d output %v", p, res.Outputs[p])
		}
	}
	if res.Depth != 1 {
		t.Errorf("depth = %d, want 1 (single hop)", res.Depth)
	}
}

func TestRunConfigErrors(t *testing.T) {
	if _, err := Run(Config{N: 0, MaxDeliveries: 1}, nil); err == nil {
		t.Error("want error for N=0")
	}
	if _, err := Run(Config{N: 3}, echoMachines(3)); err == nil {
		t.Error("want error for missing MaxDeliveries")
	}
}

func TestRunNotDecided(t *testing.T) {
	// Nobody sends to party 2 if party 0's ping is capped away.
	_, err := Run(Config{N: 3, MaxDeliveries: 1}, echoMachines(3))
	if !errors.Is(err, ErrNotDecided) {
		t.Errorf("err = %v, want ErrNotDecided", err)
	}
}

func TestSchedulers(t *testing.T) {
	schedulers := map[string]Scheduler{
		"fifo":   FIFO{},
		"lifo":   LIFO{},
		"random": Random{Rng: rand.New(rand.NewSource(1))},
		"starve": Starve{Victims: map[PartyID]bool{0: true}},
	}
	for name, s := range schedulers {
		t.Run(name, func(t *testing.T) {
			res, err := Run(Config{N: 4, MaxDeliveries: 100, Scheduler: s}, echoMachines(4))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Outputs) != 4 {
				t.Errorf("outputs = %d, want 4", len(res.Outputs))
			}
		})
	}
}

// --- RBC tests ---

// rbcHarness drives n RBC components directly as Machines.
type rbcParty struct {
	id    PartyID
	rbc   *RBC[float64]
	val   float64
	lead  bool
	got   map[PartyID]float64
	done  bool
	needs int
}

func (m *rbcParty) Init() []Message {
	if m.lead {
		return m.rbc.Broadcast("x", m.val)
	}
	return nil
}

func (m *rbcParty) Deliver(msg Message) []Message {
	out, deliveries := m.rbc.Handle(msg)
	for _, d := range deliveries {
		m.got[d.Src] = d.Val
	}
	if len(m.got) >= m.needs {
		m.done = true
	}
	return out
}

func (m *rbcParty) Output() (any, bool) {
	if !m.done {
		return nil, false
	}
	cp := make(map[PartyID]float64, len(m.got))
	for k, v := range m.got {
		cp[k] = v
	}
	return cp, true
}

func rbcParties(n, t, leaders, needs int, vals []float64) []Machine {
	ms := make([]Machine, n)
	for i := 0; i < n; i++ {
		ms[i] = &rbcParty{
			id: PartyID(i), rbc: NewRBC[float64](n, t, PartyID(i)),
			val: vals[i], lead: i < leaders, got: map[PartyID]float64{}, needs: needs,
		}
	}
	return ms
}

func TestRBCHonestLeaders(t *testing.T) {
	n, tc := 4, 1
	vals := []float64{7, 8, 9, 10}
	for _, sched := range []Scheduler{FIFO{}, LIFO{}, Random{Rng: rand.New(rand.NewSource(3))}} {
		res, err := Run(Config{N: n, MaxDeliveries: 10000, Scheduler: sched}, rbcParties(n, tc, n, n, vals))
		if err != nil {
			t.Fatal(err)
		}
		for p, raw := range res.Outputs {
			got := raw.(map[PartyID]float64)
			for src, v := range got {
				if v != vals[src] {
					t.Errorf("party %d delivered %v for src %d, want %v", p, v, src, vals[src])
				}
			}
		}
	}
}

// equivocatingRBCLeader sends different INITs to different halves.
type equivocatingRBCLeader struct {
	id   PartyID
	n    int
	rbc  *RBC[float64]
	sent bool
}

func (m *equivocatingRBCLeader) Init() []Message {
	m.sent = true
	var out []Message
	for to := 0; to < m.n; to++ {
		v := 1.0
		if to >= m.n/2 {
			v = 2.0
		}
		out = append(out, Message{To: PartyID(to), Payload: RBCMsg[float64]{Tag: "x", Kind: KindInit, Src: m.id, Val: v}})
	}
	return out
}

func (m *equivocatingRBCLeader) Deliver(msg Message) []Message {
	// Participate honestly as echoer so honest broadcasts complete.
	out, _ := m.rbc.Handle(msg)
	return out
}

func (m *equivocatingRBCLeader) Output() (any, bool) { return nil, true }

func TestRBCConsistencyUnderEquivocation(t *testing.T) {
	n, tc := 4, 1
	vals := []float64{7, 8, 9, 99}
	for seed := int64(0); seed < 20; seed++ {
		ms := rbcParties(n, tc, 3, 3, vals) // parties 0-2 honest leaders; wait for 3 deliveries
		ms[3] = &equivocatingRBCLeader{id: 3, n: n, rbc: NewRBC[float64](n, tc, 3)}
		res, err := Run(Config{
			N: n, MaxDeliveries: 10000,
			Honest:    map[PartyID]bool{0: true, 1: true, 2: true},
			Scheduler: Random{Rng: rand.New(rand.NewSource(seed))},
		}, ms)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Consistency: if two honest parties delivered for src 3, the values
		// must agree (they may also not deliver for 3 at all).
		var seen *float64
		for p := PartyID(0); p < 3; p++ {
			got, ok := res.Outputs[p].(map[PartyID]float64)
			if !ok {
				continue
			}
			if v, ok := got[3]; ok {
				if seen != nil && *seen != v {
					t.Fatalf("seed %d: inconsistent RBC deliveries for equivocator: %v vs %v", seed, *seen, v)
				}
				vv := v
				seen = &vv
			}
		}
	}
}

func TestRBCNoForgedInit(t *testing.T) {
	// A Byzantine party relaying an INIT with Src != From must be ignored.
	n, tc := 4, 1
	r := NewRBC[float64](n, tc, 0)
	out, dels := r.Handle(Message{From: 2, Payload: RBCMsg[float64]{Tag: "x", Kind: KindInit, Src: 1, Val: 5}})
	if len(out) != 0 || len(dels) != 0 {
		t.Error("forged INIT processed")
	}
	// Genuine INIT passes.
	out, _ = r.Handle(Message{From: 1, Payload: RBCMsg[float64]{Tag: "x", Kind: KindInit, Src: 1, Val: 5}})
	if len(out) != 1 {
		t.Error("genuine INIT not echoed")
	}
}

func TestRBCDuplicateVotesIgnored(t *testing.T) {
	n, tc := 4, 1
	r := NewRBC[float64](n, tc, 0)
	for i := 0; i < 5; i++ {
		r.Handle(Message{From: 2, Payload: RBCMsg[float64]{Tag: "x", Kind: KindEcho, Src: 1, Val: 5}})
	}
	// One echoer, even repeated, is far below n-t: no ready sent.
	out, _ := r.Handle(Message{From: 2, Payload: RBCMsg[float64]{Tag: "x", Kind: KindEcho, Src: 1, Val: 5}})
	if len(out) != 0 {
		t.Error("duplicate echoes amplified")
	}
}

// TestRBCTotality: if any honest party delivers a value for a Byzantine
// broadcaster, every honest party eventually delivers the same value — we
// drive the execution until the pending set drains and compare.
func TestRBCTotality(t *testing.T) {
	n, tc := 4, 1
	vals := []float64{7, 8, 9, 99}
	for seed := int64(0); seed < 30; seed++ {
		// Parties wait for all four deliveries but we stop at drain; the
		// required set is empty so Run ends when pending drains.
		ms := rbcParties(n, tc, 3, 99 /* never "done" */, vals)
		ms[3] = &equivocatingRBCLeader{id: 3, n: n, rbc: NewRBC[float64](n, tc, 3)}
		res, err := Run(Config{
			N: n, MaxDeliveries: 100000,
			Honest:    map[PartyID]bool{}, // run to drain
			Scheduler: Random{Rng: rand.New(rand.NewSource(seed))},
		}, ms)
		if err != nil && !errors.Is(err, ErrNotDecided) {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_ = res
		// Inspect the parties' delivery maps directly.
		type result struct {
			got map[PartyID]float64
		}
		var delivered []map[PartyID]float64
		for p := 0; p < 3; p++ {
			delivered = append(delivered, ms[p].(*rbcParty).got)
		}
		// Totality + consistency for every src any honest party delivered.
		for src := PartyID(0); int(src) < n; src++ {
			var seen *float64
			count := 0
			for _, got := range delivered {
				if v, ok := got[src]; ok {
					count++
					if seen != nil && *seen != v {
						t.Fatalf("seed %d: inconsistent deliveries for src %d", seed, src)
					}
					vv := v
					seen = &vv
				}
			}
			if count != 0 && count != 3 {
				t.Fatalf("seed %d: totality violated for src %d: %d of 3 honest delivered", seed, src, count)
			}
		}
	}
}
