package async

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"treeaa/internal/tree"
)

// AAMachine is the iteration skeleton shared by asynchronous Approximate
// Agreement on reals and on trees, following the classic structure of
// Abraham–Amit–Dolev and Nowak–Rybicki [33]:
//
// in each iteration k, every party (1) reliably broadcasts its current
// value; (2) upon RBC-delivering n-t iteration-k values, reliably
// broadcasts a *report* naming the senders it has; (3) accepts a report
// once all named senders' values have been locally RBC-delivered; (4) upon
// accepting n-t reports, updates its value from the union of the named
// senders' values and moves to iteration k+1.
//
// The witness property: two honest parties' accepted report sets share at
// least n-2t >= t+1 reporters, whose (RBC-consistent) value sets are
// contained in both unions — so any two honest unions share at least n-t
// values, which is what the trimmed update rules need to contract.
//
// Values are RBC'd under tag "v/<k>", reports under "r/<k>" with the named
// senders encoded canonically ("0,3,5").
type AAMachine[V comparable] struct {
	n, t  int
	me    PartyID
	iters int
	// update maps the multiset of collected values to the next value.
	update func([]V) V

	val     V
	valRBC  *RBC[V]
	repRBC  *RBC[string]
	iter    int
	vals    map[int]map[PartyID]V      // iteration -> src -> delivered value
	reports map[int]map[PartyID]string // iteration -> reporter -> named set
	sent    map[int]bool               // report sent for iteration?
	history []V
	done    bool
}

// NewAAMachine builds the skeleton. iters is the fixed iteration budget;
// update is the domain-specific contraction rule.
func NewAAMachine[V comparable](n, t int, me PartyID, input V, iters int, update func([]V) V) *AAMachine[V] {
	return &AAMachine[V]{
		n: n, t: t, me: me, iters: iters, update: update,
		val:     input,
		valRBC:  NewRBC[V](n, t, me),
		repRBC:  NewRBC[string](n, t, me),
		iter:    1,
		vals:    make(map[int]map[PartyID]V),
		reports: make(map[int]map[PartyID]string),
		sent:    make(map[int]bool),
	}
}

// Init implements Machine.
func (m *AAMachine[V]) Init() []Message {
	if m.iters == 0 {
		m.done = true
		return nil
	}
	return m.valRBC.Broadcast(valTag(1), m.val)
}

// Deliver implements Machine.
func (m *AAMachine[V]) Deliver(msg Message) []Message {
	var out []Message
	o1, valDeliveries := m.valRBC.Handle(msg)
	out = append(out, o1...)
	for _, d := range valDeliveries {
		k, ok := parseTag(d.Tag, "v/")
		if !ok {
			continue
		}
		if m.vals[k] == nil {
			m.vals[k] = make(map[PartyID]V)
		}
		m.vals[k][d.Src] = d.Val
	}
	o2, repDeliveries := m.repRBC.Handle(msg)
	out = append(out, o2...)
	for _, d := range repDeliveries {
		k, ok := parseTag(d.Tag, "r/")
		if !ok {
			continue
		}
		if m.reports[k] == nil {
			m.reports[k] = make(map[PartyID]string)
		}
		m.reports[k][d.Src] = d.Val
	}
	out = append(out, m.progress()...)
	return out
}

// progress advances the iteration state machine as far as the collected
// deliveries allow (multiple iterations can complete on one delivery when
// the scheduler batched this party's traffic).
func (m *AAMachine[V]) progress() []Message {
	var out []Message
	for !m.done {
		k := m.iter
		// Step 2: send the report once n-t iteration-k values arrived.
		if !m.sent[k] && len(m.vals[k]) >= m.n-m.t {
			m.sent[k] = true
			out = append(out, m.repRBC.Broadcast(repTag(k), encodeSet(m.vals[k]))...)
		}
		// Steps 3-4: count accepted reports.
		accepted := m.acceptedSenders(k)
		if accepted == nil {
			return out
		}
		var union []V
		for src := range accepted {
			union = append(union, m.vals[k][src])
		}
		m.val = m.update(union)
		m.history = append(m.history, m.val)
		m.iter++
		if m.iter > m.iters {
			m.done = true
			return out
		}
		out = append(out, m.valRBC.Broadcast(valTag(m.iter), m.val)...)
	}
	return out
}

// acceptedSenders returns the union of senders named by n-t accepted
// reports for iteration k, or nil if fewer than n-t reports are acceptable
// yet. A report is acceptable when every sender it names has been locally
// delivered for iteration k.
func (m *AAMachine[V]) acceptedSenders(k int) map[PartyID]bool {
	acceptable := 0
	union := make(map[PartyID]bool)
	for _, enc := range m.reports[k] {
		ids, err := decodeSet(enc)
		if err != nil {
			continue // malformed Byzantine report: never acceptable
		}
		all := true
		for _, src := range ids {
			if _, ok := m.vals[k][src]; !ok {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		acceptable++
		for _, src := range ids {
			union[src] = true
		}
	}
	if acceptable < m.n-m.t {
		return nil
	}
	return union
}

// Output implements Machine.
func (m *AAMachine[V]) Output() (any, bool) {
	if !m.done {
		return nil, false
	}
	return m.val, true
}

// History returns the value after each completed iteration (a copy).
func (m *AAMachine[V]) History() []V {
	out := make([]V, len(m.history))
	copy(out, m.history)
	return out
}

func valTag(k int) string { return "v/" + strconv.Itoa(k) }
func repTag(k int) string { return "r/" + strconv.Itoa(k) }

func parseTag(tag, prefix string) (int, bool) {
	if !strings.HasPrefix(tag, prefix) {
		return 0, false
	}
	k, err := strconv.Atoi(tag[len(prefix):])
	if err != nil || k < 1 {
		return 0, false
	}
	return k, true
}

// encodeSet canonically encodes the key set of a delivery map ("0,2,5").
func encodeSet[V comparable](vals map[PartyID]V) string {
	ids := make([]int, 0, len(vals))
	for src := range vals {
		ids = append(ids, int(src))
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}

// decodeSet parses an encoded sender set, rejecting malformed input.
func decodeSet(enc string) ([]PartyID, error) {
	if enc == "" {
		return nil, nil
	}
	parts := strings.Split(enc, ",")
	out := make([]PartyID, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(p)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("async: bad report entry %q", p)
		}
		out = append(out, PartyID(id))
	}
	return out, nil
}

// NewRealAA returns an asynchronous AA machine on real values: the update
// rule sorts the collected multiset, discards the t lowest and t highest,
// and adopts the midpoint of the remaining extremes — halving the honest
// range per iteration. iters should be HalvingIterations(d, eps).
func NewRealAA(n, t int, me PartyID, input float64, iters int) *AAMachine[float64] {
	return NewAAMachine(n, t, me, input, iters, func(vals []float64) float64 {
		sort.Float64s(vals)
		trim := t
		if 2*trim >= len(vals) {
			trim = (len(vals) - 1) / 2
		}
		w := vals[trim : len(vals)-trim]
		return (w[0] + w[len(w)-1]) / 2
	})
}

// HalvingIterations is the classic asynchronous iteration budget:
// ceil(log2(d/eps)) plus one slack iteration.
func HalvingIterations(d, eps float64) int {
	if eps <= 0 {
		panic("async: eps must be positive")
	}
	iters := 0
	for r := d; r > eps; r /= 2 {
		iters++
	}
	if iters > 0 {
		iters++
	}
	return iters
}

// NewTreeAA returns the asynchronous NR-style AA machine on a tree: the
// update rule is the center of the t-robust safe area of the collected
// multiset (see tree.SafeArea), contracting the honest hull by roughly half
// per iteration — the O(log D(T)) protocol the paper improves on.
func NewTreeAA(tr *tree.Tree, n, t int, me PartyID, input tree.VertexID, iters int) *AAMachine[tree.VertexID] {
	return NewAAMachine(n, t, me, input, iters, func(vals []tree.VertexID) tree.VertexID {
		safe := tr.SafeArea(vals, t)
		if len(safe) == 0 {
			return vals[0] // cannot happen for n > 3t; defensive
		}
		return tree.SubtreeCenter(tr, safe)
	})
}

// TreeIterations is the asynchronous tree budget for diameter d.
func TreeIterations(d int) int {
	if d <= 1 {
		return 0
	}
	iters := 0
	for r := d; r > 1; r = (r + 1) / 2 {
		iters++
	}
	return iters + 2
}
