package async

import "fmt"

// Kind is an RBC message phase.
type Kind byte

// Bracha's three phases.
const (
	// KindInit carries the broadcaster's value.
	KindInit Kind = iota + 1
	// KindEcho is the first-level endorsement.
	KindEcho
	// KindReady is the second-level endorsement that triggers delivery.
	KindReady
)

// RBCMsg is a Bracha reliable-broadcast message for value type V. Tag
// namespaces independent instances (e.g. "val/3" for iteration 3's value
// broadcasts); Src is the original broadcaster, carried because every party
// broadcasts its own value concurrently.
type RBCMsg[V comparable] struct {
	Tag  string
	Kind Kind
	Src  PartyID
	Val  V
}

// RBCDelivery reports one reliably delivered value.
type RBCDelivery[V comparable] struct {
	Tag string
	Src PartyID
	Val V
}

// RBC runs any number of concurrent Bracha reliable broadcasts for one
// party, keyed by (tag, src). For n > 3t it guarantees: (Consistency) no
// two honest parties deliver different values for the same (tag, src);
// (Totality) if any honest party delivers, every honest party eventually
// delivers; (Validity) an honest broadcaster's value is eventually
// delivered by all honest parties.
//
// The classic thresholds: a party echoes the first INIT it sees from the
// broadcaster; sends READY upon n-t matching echoes or t+1 matching
// readies; delivers upon 2t+1 matching readies.
type RBC[V comparable] struct {
	n, t int
	me   PartyID

	echoed    map[string]bool          // sent our echo for (tag,src)?
	readied   map[string]bool          // sent our ready?
	delivered map[string]bool          // delivered?
	echoes    map[string]map[PartyID]V // echo votes per (tag,src)
	readies   map[string]map[PartyID]V // ready votes per (tag,src)
}

// NewRBC returns the RBC component for one party.
func NewRBC[V comparable](n, t int, me PartyID) *RBC[V] {
	return &RBC[V]{
		n: n, t: t, me: me,
		echoed:    make(map[string]bool),
		readied:   make(map[string]bool),
		delivered: make(map[string]bool),
		echoes:    make(map[string]map[PartyID]V),
		readies:   make(map[string]map[PartyID]V),
	}
}

func rbcKey(tag string, src PartyID) string { return fmt.Sprintf("%s/%d", tag, src) }

// Broadcast initiates this party's own broadcast under tag.
func (r *RBC[V]) Broadcast(tag string, val V) []Message {
	return []Message{{To: Broadcast, Payload: RBCMsg[V]{Tag: tag, Kind: KindInit, Src: r.me, Val: val}}}
}

// Handle processes one incoming message. Non-RBC payloads are ignored. It
// returns the protocol messages to send and any new deliveries.
func (r *RBC[V]) Handle(m Message) (out []Message, deliveries []RBCDelivery[V]) {
	p, ok := m.Payload.(RBCMsg[V])
	if !ok {
		return nil, nil
	}
	key := rbcKey(p.Tag, p.Src)
	switch p.Kind {
	case KindInit:
		// Only the broadcaster itself may originate its INIT.
		if m.From != p.Src || r.echoed[key] {
			return nil, nil
		}
		r.echoed[key] = true
		out = append(out, Message{To: Broadcast, Payload: RBCMsg[V]{Tag: p.Tag, Kind: KindEcho, Src: p.Src, Val: p.Val}})
	case KindEcho:
		if r.echoes[key] == nil {
			r.echoes[key] = make(map[PartyID]V)
		}
		if _, dup := r.echoes[key][m.From]; dup {
			return nil, nil
		}
		r.echoes[key][m.From] = p.Val
		if !r.readied[key] {
			if v, c := plurality(r.echoes[key]); c >= r.n-r.t {
				r.readied[key] = true
				out = append(out, Message{To: Broadcast, Payload: RBCMsg[V]{Tag: p.Tag, Kind: KindReady, Src: p.Src, Val: v}})
			}
		}
	case KindReady:
		if r.readies[key] == nil {
			r.readies[key] = make(map[PartyID]V)
		}
		if _, dup := r.readies[key][m.From]; dup {
			return nil, nil
		}
		r.readies[key][m.From] = p.Val
		v, c := plurality(r.readies[key])
		if !r.readied[key] && c >= r.t+1 {
			r.readied[key] = true
			out = append(out, Message{To: Broadcast, Payload: RBCMsg[V]{Tag: p.Tag, Kind: KindReady, Src: p.Src, Val: v}})
		}
		if !r.delivered[key] && c >= 2*r.t+1 {
			r.delivered[key] = true
			deliveries = append(deliveries, RBCDelivery[V]{Tag: p.Tag, Src: p.Src, Val: v})
		}
	}
	return out, deliveries
}

// plurality returns the most endorsed value and its count. Byzantine
// senders can contribute at most one vote each, so for the thresholds used
// the plurality value is unique whenever it matters.
func plurality[V comparable](votes map[PartyID]V) (best V, count int) {
	counts := make(map[V]int, len(votes))
	for _, v := range votes {
		counts[v]++
	}
	for v, c := range counts {
		if c > count {
			best, count = v, c
		}
	}
	return best, count
}
