// Package async provides the asynchronous counterpart of the synchronous
// simulator: an event-driven message-passing runtime where the adversary
// controls delivery order (every message is delivered *eventually*, with no
// bound the protocol may rely on).
//
// The paper's comparison point for trees — Nowak & Rybicki's protocol [33]
// — lives in this model and achieves O(log D(T)) asynchronous rounds, which
// "remains the state of the art in the asynchronous model". This package
// implements that world: Bracha reliable broadcast (rbc.go), the witness
// technique for collecting (n-t)-overlapping value sets (witness.go inside
// aa.go), asynchronous Approximate Agreement on reals, and the NR-style
// asynchronous AA on trees — so the repository covers both sides of the
// paper's related-work comparison.
//
// Time in the asynchronous model is measured in causal depth ("async
// rounds"): each message carries depth = 1 + the maximum depth its sender
// had consumed when sending; the execution's depth is the longest such
// chain. A protocol's asynchronous round complexity is the depth it needs
// under the worst scheduler.
package async

import (
	"errors"
	"fmt"
	"math/rand"
)

// PartyID identifies one of the n parties, in [0, n).
type PartyID int

// Broadcast is a destination wildcard expanded by the runtime.
const Broadcast PartyID = -1

// Message is a single authenticated point-to-point message. From is stamped
// by the runtime; Byzantine parties cannot forge origins.
type Message struct {
	From    PartyID
	To      PartyID
	Payload any

	depth int // causal depth, maintained by the runtime
}

// Machine is an event-driven protocol state machine for one party.
// Byzantine behaviors are Machines too: the adversary supplies arbitrary
// implementations for corrupted slots.
type Machine interface {
	// Init is called once before any delivery; it returns the party's
	// initial messages.
	Init() []Message
	// Deliver handles a single message and returns the messages it
	// triggers. The runtime calls it exactly once per delivered message.
	Deliver(m Message) []Message
	// Output returns the protocol output and whether the party has decided.
	// Decided machines may keep receiving deliveries (and must tolerate
	// them), as real asynchronous parties do.
	Output() (any, bool)
}

// Scheduler chooses which in-flight message is delivered next. The runtime
// guarantees eventual delivery only in the sense that it keeps asking until
// the pending set is empty; schedulers must eventually pick every message
// (all provided schedulers do).
type Scheduler interface {
	// Next returns the index into pending of the message to deliver.
	Next(pending []Message) int
}

// Config parameterizes an asynchronous execution.
type Config struct {
	// N is the number of parties.
	N int
	// Honest marks which parties' outputs are required for termination;
	// nil means all.
	Honest map[PartyID]bool
	// Scheduler orders deliveries; nil defaults to FIFO.
	Scheduler Scheduler
	// MaxDeliveries bounds the execution (guards against Byzantine
	// flooding); required.
	MaxDeliveries int
}

// Result summarizes an asynchronous execution.
type Result struct {
	// Outputs holds the decided parties' outputs.
	Outputs map[PartyID]any
	// Deliveries is the number of messages delivered.
	Deliveries int
	// Depth is the maximum causal depth consumed by any required party —
	// the execution's length in asynchronous rounds.
	Depth int
}

// Execution errors.
var (
	// ErrNotDecided reports required parties still undecided when the
	// pending set drained or MaxDeliveries was reached.
	ErrNotDecided = errors.New("async: required parties undecided")
)

// Run executes the machines until every required party has decided, the
// pending set drains, or MaxDeliveries is hit.
func Run(cfg Config, machines []Machine) (*Result, error) {
	if cfg.N <= 0 || len(machines) != cfg.N {
		return nil, fmt.Errorf("async: %d machines for N = %d", len(machines), cfg.N)
	}
	if cfg.MaxDeliveries <= 0 {
		return nil, fmt.Errorf("async: MaxDeliveries required")
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = FIFO{}
	}
	required := cfg.Honest
	if required == nil {
		required = make(map[PartyID]bool, cfg.N)
		for p := 0; p < cfg.N; p++ {
			required[PartyID(p)] = true
		}
	}

	depth := make([]int, cfg.N) // causal depth consumed per party
	var pending []Message
	enqueue := func(from PartyID, msgs []Message) {
		d := depth[from] + 1
		for _, m := range msgs {
			m.From = from
			m.depth = d
			if m.To == Broadcast {
				for to := 0; to < cfg.N; to++ {
					mm := m
					mm.To = PartyID(to)
					pending = append(pending, mm)
				}
				continue
			}
			if m.To < 0 || int(m.To) >= cfg.N {
				continue // drop misaddressed Byzantine traffic
			}
			pending = append(pending, m)
		}
	}
	for p, m := range machines {
		enqueue(PartyID(p), m.Init())
	}

	res := &Result{Outputs: make(map[PartyID]any)}
	decided := make(map[PartyID]bool)
	allDecided := func() bool {
		for p := range required {
			if !decided[p] {
				return false
			}
		}
		return true
	}
	for len(pending) > 0 && res.Deliveries < cfg.MaxDeliveries {
		idx := sched.Next(pending)
		if idx < 0 || idx >= len(pending) {
			return nil, fmt.Errorf("async: scheduler returned invalid index %d", idx)
		}
		m := pending[idx]
		pending = append(pending[:idx], pending[idx+1:]...) // keep order: FIFO/LIFO semantics depend on it
		res.Deliveries++
		if m.depth > depth[m.To] {
			depth[m.To] = m.depth
		}
		enqueue(m.To, machines[m.To].Deliver(m))
		if !decided[m.To] {
			if v, ok := machines[m.To].Output(); ok {
				decided[m.To] = true
				res.Outputs[m.To] = v
				if required[m.To] && depth[m.To] > res.Depth {
					res.Depth = depth[m.To]
				}
			}
		}
		if allDecided() {
			return res, nil
		}
	}
	if allDecided() {
		return res, nil
	}
	return res, fmt.Errorf("%w: after %d deliveries (pending %d)", ErrNotDecided, res.Deliveries, len(pending))
}

// FIFO delivers messages in send order.
type FIFO struct{}

// Next implements Scheduler.
func (FIFO) Next([]Message) int { return 0 }

// Random delivers a uniformly random pending message — the usual model for
// "benign" asynchrony.
type Random struct {
	Rng *rand.Rand
}

// Next implements Scheduler.
func (s Random) Next(pending []Message) int { return s.Rng.Intn(len(pending)) }

// Starve is an adversarial scheduler: messages from or to the victim
// parties are deferred as long as anything else is deliverable, modeling a
// network that delays specific links arbitrarily (but still eventually
// delivers, as the asynchronous model requires).
type Starve struct {
	Victims map[PartyID]bool
}

// Next implements Scheduler.
func (s Starve) Next(pending []Message) int {
	for i, m := range pending {
		if !s.Victims[m.From] && !s.Victims[m.To] {
			return i
		}
	}
	return 0 // only starved traffic remains: deliver it (eventual delivery)
}

// LIFO delivers the newest message first — an adversarial order that
// reorders causally unrelated traffic maximally.
type LIFO struct{}

// Next implements Scheduler.
func (LIFO) Next(pending []Message) int { return len(pending) - 1 }
