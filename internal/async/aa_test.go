package async

import (
	"math"
	"math/rand"
	"testing"

	"treeaa/internal/tree"
)

// byzFlood is a Byzantine machine that floods random well-formed RBC
// traffic (including equivocating its own value broadcasts and malformed
// reports) for a bounded number of deliveries, then goes quiet.
type byzFlood struct {
	id     PartyID
	n      int
	rng    *rand.Rand
	budget int
}

func (m *byzFlood) Init() []Message {
	var out []Message
	// Equivocate the iteration-1 value broadcast.
	for to := 0; to < m.n; to++ {
		out = append(out, Message{To: PartyID(to), Payload: RBCMsg[float64]{
			Tag: valTag(1), Kind: KindInit, Src: m.id, Val: float64(m.rng.Intn(3) * 1000),
		}})
	}
	return out
}

func (m *byzFlood) Deliver(Message) []Message {
	if m.budget <= 0 {
		return nil
	}
	m.budget--
	var out []Message
	switch m.rng.Intn(4) {
	case 0:
		out = append(out, Message{To: PartyID(m.rng.Intn(m.n)), Payload: RBCMsg[float64]{
			Tag: valTag(1 + m.rng.Intn(3)), Kind: Kind(1 + m.rng.Intn(3)),
			Src: m.id, Val: float64(m.rng.Intn(2000) - 500),
		}})
	case 1:
		out = append(out, Message{To: Broadcast, Payload: RBCMsg[string]{
			Tag: repTag(1 + m.rng.Intn(3)), Kind: KindInit, Src: m.id, Val: "0,1,zz",
		}})
	case 2:
		out = append(out, Message{To: Broadcast, Payload: RBCMsg[string]{
			Tag: repTag(1), Kind: KindInit, Src: m.id, Val: "0",
		}})
	}
	return out
}

func (m *byzFlood) Output() (any, bool) { return nil, true }

func checkRealAA(t *testing.T, outputs map[PartyID]any, honest []PartyID, lo, hi, eps float64, ctx string) {
	t.Helper()
	var vals []float64
	for _, p := range honest {
		raw, ok := outputs[p]
		if !ok {
			t.Fatalf("%s: party %d undecided", ctx, p)
		}
		v := raw.(float64)
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Errorf("%s: validity violated: %v outside [%v,%v]", ctx, v, lo, hi)
		}
		vals = append(vals, v)
	}
	for i := range vals {
		for j := range vals {
			if d := math.Abs(vals[i] - vals[j]); d > eps+1e-9 {
				t.Errorf("%s: agreement violated: %v vs %v", ctx, vals[i], vals[j])
			}
		}
	}
}

func TestAsyncRealAAHonest(t *testing.T) {
	n, tc := 4, 1
	inputs := []float64{0, 64, 32, 16}
	iters := HalvingIterations(64, 1)
	for name, sched := range map[string]Scheduler{
		"fifo": FIFO{}, "lifo": LIFO{},
		"random": Random{Rng: rand.New(rand.NewSource(5))},
	} {
		machines := make([]Machine, n)
		for i := 0; i < n; i++ {
			machines[i] = NewRealAA(n, tc, PartyID(i), inputs[i], iters)
		}
		res, err := Run(Config{N: n, MaxDeliveries: 500000, Scheduler: sched}, machines)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkRealAA(t, res.Outputs, []PartyID{0, 1, 2, 3}, 0, 64, 1, name)
		if res.Depth <= 0 {
			t.Errorf("%s: depth = %d", name, res.Depth)
		}
	}
}

func TestAsyncRealAAUnderByzantineFlood(t *testing.T) {
	n, tc := 4, 1
	inputs := []float64{0, 64, 32, 0}
	iters := HalvingIterations(64, 1)
	for seed := int64(0); seed < 10; seed++ {
		machines := make([]Machine, n)
		for i := 0; i < n-1; i++ {
			machines[i] = NewRealAA(n, tc, PartyID(i), inputs[i], iters)
		}
		machines[3] = &byzFlood{id: 3, n: n, rng: rand.New(rand.NewSource(seed)), budget: 500}
		res, err := Run(Config{
			N: n, MaxDeliveries: 500000,
			Honest:    map[PartyID]bool{0: true, 1: true, 2: true},
			Scheduler: Random{Rng: rand.New(rand.NewSource(seed + 100))},
		}, machines)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkRealAA(t, res.Outputs, []PartyID{0, 1, 2}, 0, 64, 1, "flood")
	}
}

func TestAsyncRealAAUnderStarvation(t *testing.T) {
	// Starving one honest party's links delays but cannot block progress.
	n, tc := 4, 1
	inputs := []float64{0, 64, 32, 16}
	iters := HalvingIterations(64, 1)
	machines := make([]Machine, n)
	for i := 0; i < n; i++ {
		machines[i] = NewRealAA(n, tc, PartyID(i), inputs[i], iters)
	}
	res, err := Run(Config{
		N: n, MaxDeliveries: 500000,
		Scheduler: Starve{Victims: map[PartyID]bool{2: true}},
	}, machines)
	if err != nil {
		t.Fatal(err)
	}
	checkRealAA(t, res.Outputs, []PartyID{0, 1, 2, 3}, 0, 64, 1, "starve")
}

func TestAsyncTreeAAHonest(t *testing.T) {
	tr := tree.NewPath(33)
	n, tc := 4, 1
	inputs := []tree.VertexID{0, 32, 16, 8}
	d, _, _ := tr.Diameter()
	iters := TreeIterations(d)
	machines := make([]Machine, n)
	for i := 0; i < n; i++ {
		machines[i] = NewTreeAA(tr, n, tc, PartyID(i), inputs[i], iters)
	}
	res, err := Run(Config{N: n, MaxDeliveries: 500000, Scheduler: Random{Rng: rand.New(rand.NewSource(9))}}, machines)
	if err != nil {
		t.Fatal(err)
	}
	checkAsyncTreeAA(t, tr, inputs, []PartyID{0, 1, 2, 3}, res.Outputs, "honest")
}

func checkAsyncTreeAA(t *testing.T, tr *tree.Tree, inputs []tree.VertexID, honest []PartyID, outputs map[PartyID]any, ctx string) {
	t.Helper()
	var honestIn []tree.VertexID
	for _, p := range honest {
		honestIn = append(honestIn, inputs[p])
	}
	hull := make(map[tree.VertexID]bool)
	for _, v := range tr.ConvexHull(honestIn) {
		hull[v] = true
	}
	var outs []tree.VertexID
	for _, p := range honest {
		raw, ok := outputs[p]
		if !ok {
			t.Fatalf("%s: party %d undecided", ctx, p)
		}
		v := raw.(tree.VertexID)
		if !hull[v] {
			t.Errorf("%s: validity violated at party %d (%s)", ctx, p, tr.Label(v))
		}
		outs = append(outs, v)
	}
	for i := range outs {
		for j := i + 1; j < len(outs); j++ {
			if d := tr.Dist(outs[i], outs[j]); d > 1 {
				t.Errorf("%s: 1-agreement violated: %s vs %s", ctx, tr.Label(outs[i]), tr.Label(outs[j]))
			}
		}
	}
}

// byzTreeFlood equivocates vertex broadcasts on a tree.
type byzTreeFlood struct {
	id  PartyID
	n   int
	tr  *tree.Tree
	rng *rand.Rand
}

func (m *byzTreeFlood) Init() []Message {
	var out []Message
	for to := 0; to < m.n; to++ {
		out = append(out, Message{To: PartyID(to), Payload: RBCMsg[tree.VertexID]{
			Tag: valTag(1), Kind: KindInit, Src: m.id,
			Val: tree.VertexID(m.rng.Intn(m.tr.NumVertices())),
		}})
	}
	return out
}

func (m *byzTreeFlood) Deliver(msg Message) []Message {
	// Echo honestly so honest broadcasts complete, but equivocate its own
	// per-iteration value by replying with fresh INITs occasionally.
	if m.rng.Intn(10) != 0 {
		return nil
	}
	k := 1 + m.rng.Intn(4)
	return []Message{{To: PartyID(m.rng.Intn(m.n)), Payload: RBCMsg[tree.VertexID]{
		Tag: valTag(k), Kind: KindInit, Src: m.id,
		Val: tree.VertexID(m.rng.Intn(m.tr.NumVertices())),
	}}}
}

func (m *byzTreeFlood) Output() (any, bool) { return nil, true }

func TestAsyncTreeAAUnderByzantine(t *testing.T) {
	tr := tree.NewSpider(3, 8)
	n, tc := 4, 1
	inputs := []tree.VertexID{0, 8, 16, 0}
	d, _, _ := tr.Diameter()
	iters := TreeIterations(d)
	for seed := int64(0); seed < 10; seed++ {
		machines := make([]Machine, n)
		for i := 0; i < n-1; i++ {
			machines[i] = NewTreeAA(tr, n, tc, PartyID(i), inputs[i], iters)
		}
		machines[3] = &byzTreeFlood{id: 3, n: n, tr: tr, rng: rand.New(rand.NewSource(seed))}
		res, err := Run(Config{
			N: n, MaxDeliveries: 500000,
			Honest:    map[PartyID]bool{0: true, 1: true, 2: true},
			Scheduler: Random{Rng: rand.New(rand.NewSource(seed + 50))},
		}, machines)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkAsyncTreeAA(t, tr, inputs, []PartyID{0, 1, 2}, res.Outputs, "byz")
	}
}

func TestAsyncDepthScalesWithLogD(t *testing.T) {
	// The async protocol's causal depth grows ~ linearly in iterations =
	// O(log D): doubling D several times adds a bounded number of depth
	// units per doubling.
	n, tc := 4, 1
	depth := func(d float64) int {
		inputs := []float64{0, d, d / 2, d / 4}
		iters := HalvingIterations(d, 1)
		machines := make([]Machine, n)
		for i := 0; i < n; i++ {
			machines[i] = NewRealAA(n, tc, PartyID(i), inputs[i], iters)
		}
		res, err := Run(Config{N: n, MaxDeliveries: 2000000}, machines)
		if err != nil {
			t.Fatal(err)
		}
		return res.Depth
	}
	d16, d256 := depth(16), depth(256)
	if d256 <= d16 {
		t.Errorf("depth did not grow with D: %d vs %d", d16, d256)
	}
	// 4 extra halving iterations cost a bounded number of depth units each.
	if d256-d16 > 4*12 {
		t.Errorf("depth grew too fast: %d -> %d", d16, d256)
	}
}

func TestHalvingAndTreeIterations(t *testing.T) {
	if HalvingIterations(1, 1) != 0 {
		t.Error("no iterations needed for D <= eps")
	}
	if got := HalvingIterations(64, 1); got != 7 {
		t.Errorf("HalvingIterations(64,1) = %d, want 7", got)
	}
	if TreeIterations(1) != 0 {
		t.Error("trivial tree needs no iterations")
	}
	if got := TreeIterations(16); got != 6 {
		t.Errorf("TreeIterations(16) = %d, want 6", got)
	}
}

func TestEncodeDecodeSet(t *testing.T) {
	vals := map[PartyID]float64{3: 1, 0: 2, 7: 3}
	enc := encodeSet(vals)
	if enc != "0,3,7" {
		t.Errorf("encodeSet = %q", enc)
	}
	ids, err := decodeSet(enc)
	if err != nil || len(ids) != 3 || ids[0] != 0 || ids[2] != 7 {
		t.Errorf("decodeSet = %v, %v", ids, err)
	}
	if _, err := decodeSet("1,x"); err == nil {
		t.Error("malformed set accepted")
	}
	if _, err := decodeSet("-1"); err == nil {
		t.Error("negative id accepted")
	}
	if ids, err := decodeSet(""); err != nil || len(ids) != 0 {
		t.Errorf("empty set: %v, %v", ids, err)
	}
}

func TestParseTag(t *testing.T) {
	if k, ok := parseTag("v/3", "v/"); !ok || k != 3 {
		t.Errorf("parseTag(v/3) = %d, %v", k, ok)
	}
	for _, bad := range []string{"v/", "v/0", "v/x", "r/3"} {
		if _, ok := parseTag(bad, "v/"); ok {
			t.Errorf("parseTag(%q) accepted", bad)
		}
	}
}
