package async

// Pipeline is the asynchronous TreeAA machine: the paper's synchronous
// decomposition — PathsFinder on Euler-list indices, then RealAA(1) on
// positions along the agreed root path (internal/core.Machine) — rebuilt on
// the witness-based asynchronous RealAA of this package.
//
// Phase 1 runs AAMachine on the party's first Euler-list index,
// HalvingIterations(2|V|, 1) iterations, so outputs land within 1/2 of each
// other; ClampIndex rounds them to list indices that differ by at most one,
// and consecutive list entries are adjacent vertices, so the decoded root
// paths are equal up to one trailing edge — exactly PathsFinder's Lemma 4
// guarantee, carried by AA validity + epsilon-agreement alone. Phase 2 runs
// AAMachine on the 1-based projected position of the input onto the party's
// own path; core.DecideVertex decodes, with its shorter-path fallback
// covering the trailing-edge case (the paper's Figure 5).
//
// Unlike the synchronous machine there is no global round at which phase 2
// begins: each party starts its projection phase the moment its own phase 1
// decides, and buffers any projection-phase traffic that arrives earlier
// (peers ahead of us). Every party always runs both phases — even when its
// decoded path is a single vertex — because a party that skipped phase 2
// would look crashed to the witness thresholds of those that did not.
//
// Trees of diameter <= 1 are trivial, mirroring core: any input is within
// distance 1 of any other, so the machine decides its own input at Init
// with no communication.

import (
	"fmt"

	"treeaa/internal/core"
	"treeaa/internal/pathsfinder"
	"treeaa/internal/tree"
)

// Phase tags namespacing the two chained AAMachine instances' RBC traffic.
const (
	prefixPathsFinder = "pf."
	prefixProjection  = "pj."
)

// Pipeline phase identifiers, aligned with wire.AsyncPhase*.
const (
	PhasePathsFinder byte = 1
	PhaseProjection  byte = 2
)

// Pipeline is one party's asynchronous TreeAA execution.
type Pipeline struct {
	tr    *tree.Tree
	n, t  int
	me    PartyID
	input tree.VertexID
	list  *tree.EulerList

	pfIters   int
	projIters int

	phase1 *AAMachine[float64]
	path   []tree.VertexID
	phase2 *AAMachine[float64]
	// buf2 holds projection-phase messages that arrived before this party's
	// own phase 1 decided; they replay into phase2 the moment it exists.
	buf2 []Message

	out  tree.VertexID
	done bool
}

// NewPipeline validates the configuration and builds the machine. The
// parameters mirror core.Config: n > 3t whenever t > 0, and the input must
// be a vertex of tr.
func NewPipeline(tr *tree.Tree, n, t int, me PartyID, input tree.VertexID) (*Pipeline, error) {
	if tr == nil {
		return nil, fmt.Errorf("async: nil tree")
	}
	if n < 1 {
		return nil, fmt.Errorf("async: n = %d, want >= 1", n)
	}
	if t < 0 {
		return nil, fmt.Errorf("async: t = %d, want >= 0", t)
	}
	if t > 0 && n <= 3*t {
		return nil, fmt.Errorf("async: n = %d does not satisfy n > 3t for t = %d", n, t)
	}
	if me < 0 || int(me) >= n {
		return nil, fmt.Errorf("async: party id %d out of range [0, %d)", int(me), n)
	}
	if !tr.Valid(input) {
		return nil, fmt.Errorf("async: invalid input vertex %d", int(input))
	}
	p := &Pipeline{tr: tr, n: n, t: t, me: me, input: input}
	d, _, _ := tr.Diameter()
	if d <= 1 {
		p.out, p.done = input, true
		return p, nil
	}
	list, err := tree.ListConstruction(tr, tr.Root())
	if err != nil {
		return nil, fmt.Errorf("async: %w", err)
	}
	p.list = list
	// The same iteration budgets as the synchronous phases, in asynchronous
	// halving iterations: indices span [1, |L|] with |L| <= 2|V|, positions
	// span [1, d+1] with range d.
	p.pfIters = HalvingIterations(float64(2*tr.NumVertices()), 1)
	p.projIters = HalvingIterations(float64(d), 1)
	p.phase1 = NewRealAA(n, t, me, float64(list.FirstIndex(input)), p.pfIters)
	return p, nil
}

// Init implements Machine.
func (p *Pipeline) Init() []Message {
	if p.done {
		return nil
	}
	return prefixTags(prefixPathsFinder, p.phase1.Init())
}

// Deliver implements Machine. Messages route to the phase their tag prefix
// names; anything else (Byzantine garbage) is ignored.
func (p *Pipeline) Deliver(m Message) []Message {
	phase, inner, ok := stripTag(m)
	if !ok || p.phase1 == nil {
		return nil
	}
	var out []Message
	switch phase {
	case PhasePathsFinder:
		// Phase 1 keeps echoing after it decides — peers may still need the
		// amplification — so deliveries route unconditionally.
		out = prefixTags(prefixPathsFinder, p.phase1.Deliver(inner))
		if p.phase2 == nil {
			if j, decided := p.phase1.Output(); decided {
				out = append(out, p.startProjection(j.(float64))...)
			}
		}
	case PhaseProjection:
		if p.phase2 == nil {
			p.buf2 = append(p.buf2, inner)
			return out
		}
		out = append(out, prefixTags(prefixProjection, p.phase2.Deliver(inner))...)
	}
	if !p.done && p.phase2 != nil {
		if j, decided := p.phase2.Output(); decided {
			p.out, _ = core.DecideVertex(p.path, j.(float64))
			p.done = true
		}
	}
	return out
}

// startProjection decodes phase 1's index agreement into this party's root
// path, builds phase 2 on the projected position, and replays any buffered
// projection traffic through it.
func (p *Pipeline) startProjection(j float64) []Message {
	idx := pathsfinder.ClampIndex(p.list, j)
	path, err := p.list.PathFromRoot(idx)
	if err != nil {
		// Unreachable after ClampIndex; decide defensively at the root
		// rather than deadlock the other parties' witness thresholds.
		path = []tree.VertexID{p.list.Root()}
	}
	p.path = path
	pos, _ := p.tr.ProjectOntoPath(path, p.input)
	p.phase2 = NewRealAA(p.n, p.t, p.me, float64(pos+1), p.projIters)
	out := prefixTags(prefixProjection, p.phase2.Init())
	buffered := p.buf2
	p.buf2 = nil
	for _, m := range buffered {
		out = append(out, prefixTags(prefixProjection, p.phase2.Deliver(m))...)
	}
	return out
}

// Output implements Machine; the value is a tree.VertexID.
func (p *Pipeline) Output() (any, bool) {
	if !p.done {
		return nil, false
	}
	return p.out, true
}

// Path returns the root path this party decoded from phase 1 (nil until
// then); read-only, for tests and invariant probes.
func (p *Pipeline) Path() []tree.VertexID { return p.path }

// Histories returns each phase's per-iteration value history (copies; nil
// for a phase that has not started, or on trivial trees where neither phase
// runs). Read-only, for tests and invariant probes: the checker asserts
// monotone non-expansion of the honest-value interval across iterations.
func (p *Pipeline) Histories() (pathsFinder, projection []float64) {
	if p.phase1 != nil {
		pathsFinder = p.phase1.History()
	}
	if p.phase2 != nil {
		projection = p.phase2.History()
	}
	return pathsFinder, projection
}

// Iterations returns the two phases' iteration budgets.
func (p *Pipeline) Iterations() (pathsFinder, projection int) {
	return p.pfIters, p.projIters
}

// DeliveryBudget bounds the deliveries an execution can consume across the
// whole pipeline: per iteration there are 2n RBC instances (a value and a
// report per broadcaster), each delivering at most 1 init + n echoes + n
// readies = 2n+1 messages to each of the n parties — 2n²(2n+1) deliveries
// per iteration exactly. The extra half absorbs duplicate-suppressed
// traffic that still costs a delivery.
func (p *Pipeline) DeliveryBudget() int {
	iters := p.pfIters + p.projIters
	if iters == 0 {
		return 64
	}
	return 3*p.n*p.n*iters*(2*p.n+1) + 64
}

// EnvelopeRound maps a pipeline payload to a monotone progress index — the
// AA iteration, with projection-phase iterations offset past the
// PathsFinder budget — used as the transport envelope's round field so
// round-windowed chaos clauses key onto asynchronous progress. Unknown
// payloads map to 1.
func (p *Pipeline) EnvelopeRound(payload any) int {
	phase, tag := payloadTag(payload)
	if phase == 0 {
		return 1
	}
	k, ok := parseTag(tag, "v/")
	if !ok {
		if k, ok = parseTag(tag, "r/"); !ok {
			return 1
		}
	}
	if phase == PhaseProjection {
		k += p.pfIters
	}
	return k
}

// ---- tag namespacing

// prefixTags namespaces outgoing RBC payload tags with the phase prefix,
// so the two AAMachine instances' concurrent broadcasts cannot collide.
func prefixTags(prefix string, msgs []Message) []Message {
	for i := range msgs {
		switch q := msgs[i].Payload.(type) {
		case RBCMsg[float64]:
			q.Tag = prefix + q.Tag
			msgs[i].Payload = q
		case RBCMsg[string]:
			q.Tag = prefix + q.Tag
			msgs[i].Payload = q
		}
	}
	return msgs
}

// stripTag classifies an incoming message by phase prefix and returns it
// with the inner (unprefixed) tag restored.
func stripTag(m Message) (phase byte, inner Message, ok bool) {
	switch q := m.Payload.(type) {
	case RBCMsg[float64]:
		phase, q.Tag, ok = splitPhase(q.Tag)
		m.Payload = q
	case RBCMsg[string]:
		phase, q.Tag, ok = splitPhase(q.Tag)
		m.Payload = q
	default:
		return 0, m, false
	}
	return phase, m, ok
}

func splitPhase(tag string) (byte, string, bool) {
	if len(tag) > len(prefixPathsFinder) && tag[:len(prefixPathsFinder)] == prefixPathsFinder {
		return PhasePathsFinder, tag[len(prefixPathsFinder):], true
	}
	if len(tag) > len(prefixProjection) && tag[:len(prefixProjection)] == prefixProjection {
		return PhaseProjection, tag[len(prefixProjection):], true
	}
	return 0, tag, false
}

// payloadTag extracts the phase and inner tag of a pipeline payload.
func payloadTag(payload any) (byte, string) {
	var tag string
	switch q := payload.(type) {
	case RBCMsg[float64]:
		tag = q.Tag
	case RBCMsg[string]:
		tag = q.Tag
	default:
		return 0, ""
	}
	phase, inner, ok := splitPhase(tag)
	if !ok {
		return 0, ""
	}
	return phase, inner
}
