package cli

import (
	"reflect"
	"testing"

	"treeaa/internal/tree"
)

func TestParseSpaceSpec(t *testing.T) {
	sp, err := ParseSpaceSpec("path:8", 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.IsGraph() || sp.Tree == nil || sp.NumVertices() != 8 {
		t.Fatalf("tree space = %+v", sp)
	}
	if sp.ProtocolTree() != sp.Tree {
		t.Fatal("tree space protocol tree is not the tree itself")
	}

	gp, err := ParseSpaceSpec("graph:cliquechain:3:3", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !gp.IsGraph() || gp.NumVertices() != 7 {
		t.Fatalf("graph space = %+v", gp)
	}
	// 3 blocks + 2 cut vertices.
	if got := gp.ProtocolTree().NumVertices(); got != 5 {
		t.Fatalf("block-cut tree has %d nodes, want 5", got)
	}
	if _, err := ParseSpaceSpec("graph:nope:3", 1); err == nil {
		t.Fatal("bad graph spec accepted")
	}
	if _, err := ParseSpaceSpec("nope:3", 1); err == nil {
		t.Fatal("bad tree spec accepted")
	}
}

func TestParseSpaceFlagPair(t *testing.T) {
	sp, err := ParseSpace("", "star:5", 1)
	if err != nil || sp.IsGraph() {
		t.Fatalf("empty -space: %+v, %v", sp, err)
	}
	gp, err := ParseSpace("graph:cycle:6", "star:5", 1)
	if err != nil || !gp.IsGraph() {
		t.Fatalf("-space graph: %+v, %v", gp, err)
	}
	if _, err := ParseSpace("cycle:6", "star:5", 1); err == nil {
		t.Fatal("-space without graph: prefix accepted")
	}
}

func TestSpaceInputsMatchTreeHelpers(t *testing.T) {
	sp, err := ParseSpaceSpec("caterpillar:4:2", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4, 7} {
		if got, want := sp.SpreadInputs(n), SpreadInputs(sp.Tree, n); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: SpreadInputs %v vs tree helper %v", n, got, want)
		}
		if got, want := sp.RotateInputs(n, 3), RotateInputs(sp.Tree, n, 3); got != want {
			t.Fatalf("n=%d: RotateInputs %q vs tree helper %q", n, got, want)
		}
	}
	in, err := sp.ParseInputs("", 5)
	if err != nil || len(in) != 5 {
		t.Fatalf("ParseInputs spread: %v, %v", in, err)
	}
}

func TestSpaceGraphSemantics(t *testing.T) {
	gp, err := ParseSpaceSpec("graph:cycle:4", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Antipodal hull on C4 is the whole cycle (graph semantics, not tree).
	if got := gp.ConvexHull([]tree.VertexID{0, 2}); len(got) != 4 {
		t.Fatalf("C4 hull = %v", got)
	}
	if gp.AgreementOK(0, 2) != true { // same (only) block
		t.Fatal("cycle block pair rejected")
	}
	bp, err := ParseSpaceSpec("graph:cliquechain:3:3", 1)
	if err != nil {
		t.Fatal(err)
	}
	if bp.AgreementOK(0, 6) {
		t.Fatal("chain endpoints accepted as agreeing")
	}
	// Round trip labels.
	v, err := bp.VertexByLabel(bp.Label(3))
	if err != nil || v != 3 {
		t.Fatalf("label round trip: %v, %v", v, err)
	}
	// Machines: sim machine and core machine are distinct for graphs.
	m, cm, err := bp.NewMachine(4, 1, 0, 0)
	if err != nil || m == nil || cm == nil {
		t.Fatalf("graph NewMachine: %v", err)
	}
	if any(m) == any(cm) {
		t.Fatal("graph space returned the core machine as the sim machine")
	}
	tp, err := ParseSpaceSpec("path:4", 1)
	if err != nil {
		t.Fatal(err)
	}
	tm, tcm, err := tp.NewMachine(4, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if any(tm) != any(tcm) {
		t.Fatal("tree space sim machine is not the core machine")
	}
}
