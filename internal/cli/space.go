package cli

// Space is the input-space abstraction shared by the cmd/ binaries and the
// property checker: either a tree (the original TreeAA space) or a block
// graph (the journal version's extension, run as TreeAA on the block-cut
// tree plus a local decode). Exactly one of Tree/Graph is set.
//
// The canonical spec string for a graph space is "graph:" + the graph spec
// grammar of internal/graph ("graph:cycle:9", "graph:cliquechain:3:4",
// "graph:@FILE"); anything without the prefix is a tree spec. The prefixed
// form flows through every existing string-shaped seam unchanged — Spec.Tree
// in the serving layer, JournalOpen.Tree in the WAL, the cluster session
// hash — so graph sessions replay and rendezvous exactly like tree sessions.

import (
	"fmt"
	"strings"

	"treeaa/internal/core"
	"treeaa/internal/graph"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// GraphPrefix marks a spec string as a graph-space spec.
const GraphPrefix = "graph:"

// Space is one parsed input space. Use ParseSpaceSpec or ParseSpace to
// construct it.
type Space struct {
	// Spec is the canonical spec string this space was parsed from (with
	// the "graph:" prefix for graph spaces).
	Spec  string
	Tree  *tree.Tree
	Graph *graph.Graph
}

// ParseSpaceSpec parses a canonical space spec: a "graph:"-prefixed graph
// spec, or a tree spec.
func ParseSpaceSpec(spec string, seed int64) (*Space, error) {
	if gspec, ok := strings.CutPrefix(spec, GraphPrefix); ok {
		g, err := graph.ParseSpec(gspec, seed)
		if err != nil {
			return nil, err
		}
		return &Space{Spec: spec, Graph: g}, nil
	}
	tr, err := ParseTreeSpec(spec, seed)
	if err != nil {
		return nil, err
	}
	return &Space{Spec: spec, Tree: tr}, nil
}

// ParseSpace resolves the -space / -tree flag pair of the binaries: an
// empty spaceFlag selects the tree spec (full backward compatibility), a
// non-empty one must be a "graph:"-prefixed spec and wins over treeFlag.
func ParseSpace(spaceFlag, treeFlag string, seed int64) (*Space, error) {
	if spaceFlag == "" {
		return ParseSpaceSpec(treeFlag, seed)
	}
	if !strings.HasPrefix(spaceFlag, GraphPrefix) {
		return nil, fmt.Errorf("-space %q: want %q prefix (trees stay on -tree)", spaceFlag, GraphPrefix)
	}
	return ParseSpaceSpec(spaceFlag, seed)
}

// IsGraph reports whether this is a graph space.
func (s *Space) IsGraph() bool { return s.Graph != nil }

// ProtocolTree returns the tree the TreeAA protocol actually runs on: the
// space itself for trees, the block-cut tree for graphs. Round budgets,
// adversary phase schedules, wire vertex payloads and every core probe
// surface are defined against this tree.
func (s *Space) ProtocolTree() *tree.Tree {
	if s.IsGraph() {
		return s.Graph.BlockCutTree()
	}
	return s.Tree
}

// NumVertices returns the number of input-space vertices.
func (s *Space) NumVertices() int {
	if s.IsGraph() {
		return s.Graph.NumVertices()
	}
	return s.Tree.NumVertices()
}

// Valid reports whether v is an input-space vertex.
func (s *Space) Valid(v tree.VertexID) bool {
	if s.IsGraph() {
		return s.Graph.Valid(v)
	}
	return s.Tree.Valid(v)
}

// Label returns the label of input-space vertex v.
func (s *Space) Label(v tree.VertexID) string {
	if s.IsGraph() {
		return s.Graph.Label(v)
	}
	return s.Tree.Label(v)
}

// Labels returns the labels of vs, in order.
func (s *Space) Labels(vs []tree.VertexID) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = s.Label(v)
	}
	return out
}

// VertexByLabel resolves an input-space label.
func (s *Space) VertexByLabel(label string) (tree.VertexID, error) {
	if s.IsGraph() {
		return s.Graph.VertexByLabel(label)
	}
	return s.Tree.VertexByLabel(label)
}

// Dist returns the input-space distance (geodesic for graphs).
func (s *Space) Dist(u, v tree.VertexID) int {
	if s.IsGraph() {
		return s.Graph.Dist(u, v)
	}
	return s.Tree.Dist(u, v)
}

// ConvexHull returns the input-space convex hull of vs, ascending.
func (s *Space) ConvexHull(vs []tree.VertexID) []tree.VertexID {
	if s.IsGraph() {
		return s.Graph.ConvexHull(vs)
	}
	return s.Tree.ConvexHull(vs)
}

// InHull reports whether v lies in the input-space hull of vs.
func (s *Space) InHull(vs []tree.VertexID, v tree.VertexID) bool {
	if s.IsGraph() {
		return s.Graph.InHull(vs, v)
	}
	return s.Tree.InHull(vs, v)
}

// AgreementOK reports the pairwise output guarantee of the space's
// protocol: distance <= 1 on trees and block graphs, relaxed to a common
// block when the graph has cycle (or other non-clique) blocks.
func (s *Space) AgreementOK(u, v tree.VertexID) bool {
	if s.IsGraph() {
		return s.Graph.AgreementOK(u, v)
	}
	return s.Tree.Dist(u, v) <= 1
}

// Rounds returns the honest round budget of the space's protocol.
func (s *Space) Rounds() int { return core.Rounds(s.ProtocolTree()) }

// NewMachine builds one party's machine for this space. It returns the
// sim.Machine to drive and the underlying core machine on the protocol
// tree — the probe surface checkers read; for trees they are the same
// object, for graphs the core machine is the graph machine's inner TreeAA
// instance.
func (s *Space) NewMachine(n, t int, id sim.PartyID, input tree.VertexID) (sim.Machine, *core.Machine, error) {
	if s.IsGraph() {
		gm, err := graph.NewMachine(graph.Config{Graph: s.Graph, N: n, T: t, ID: id, Input: input})
		if err != nil {
			return nil, nil, err
		}
		return gm, gm.Core(), nil
	}
	m, err := core.NewMachine(core.Config{Tree: s.Tree, N: n, T: t, ID: id, Input: input})
	if err != nil {
		return nil, nil, err
	}
	return m, m, nil
}

// BuildAdversary constructs the named adversary against this space's
// protocol tree (phase tags and round budgets follow the block-cut tree
// for graph spaces).
func (s *Space) BuildAdversary(name string, n, t int, seed int64) (sim.Adversary, map[sim.PartyID]bool, error) {
	return BuildAdversary(name, s.ProtocolTree(), n, t, seed)
}

// SpreadInputs places n inputs roughly evenly across the input-space
// vertex ID range, like SpreadInputs does for trees.
func (s *Space) SpreadInputs(n int) []tree.VertexID {
	inputs := make([]tree.VertexID, n)
	denom := n - 1
	if denom < 1 {
		denom = 1
	}
	for i := range inputs {
		inputs[i] = tree.VertexID(i * (s.NumVertices() - 1) / denom)
	}
	return inputs
}

// ParseInputs resolves a comma-separated list of input-space labels, or
// spreads inputs when the spec is empty.
func (s *Space) ParseInputs(spec string, n int) ([]tree.VertexID, error) {
	if spec == "" {
		return s.SpreadInputs(n), nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("got %d inputs for n = %d", len(parts), n)
	}
	inputs := make([]tree.VertexID, n)
	for i, label := range parts {
		v, err := s.VertexByLabel(strings.TrimSpace(label))
		if err != nil {
			return nil, err
		}
		inputs[i] = v
	}
	return inputs, nil
}

// RotateInputs renders the spread placement rotated by shift vertex
// positions as a comma-separated label list, like RotateInputs for trees.
func (s *Space) RotateInputs(n, shift int) string {
	labels := make([]string, n)
	denom := n - 1
	if denom < 1 {
		denom = 1
	}
	v := s.NumVertices()
	for i := range labels {
		labels[i] = s.Label(tree.VertexID((i*(v-1)/denom + shift) % v))
	}
	return strings.Join(labels, ",")
}
