package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseTreeSpec(t *testing.T) {
	tests := []struct {
		spec     string
		vertices int
		diameter int
	}{
		{"path:10", 10, 9},
		{"star:8", 8, 2},
		{"spider:3:4", 13, 8},
		{"caterpillar:4:2", 12, 5},
		{"kary:2:3", 15, 6},
		{"random:20", 20, -1}, // diameter varies
		{"figure3", 8, 4},
	}
	for _, tc := range tests {
		t.Run(tc.spec, func(t *testing.T) {
			tr, err := ParseTreeSpec(tc.spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			if tr.NumVertices() != tc.vertices {
				t.Errorf("vertices = %d, want %d", tr.NumVertices(), tc.vertices)
			}
			if tc.diameter >= 0 {
				if d, _, _ := tr.Diameter(); d != tc.diameter {
					t.Errorf("diameter = %d, want %d", d, tc.diameter)
				}
			}
		})
	}
}

func TestParseTreeSpecDeterministicRandom(t *testing.T) {
	a, err := ParseTreeSpec("random:30", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseTreeSpec("random:30", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed should produce identical random trees")
	}
}

func TestParseTreeSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"", "bogus", "path", "path:x", "path:0", "spider:3", "kary:2",
		"@/nonexistent/file",
	} {
		if _, err := ParseTreeSpec(spec, 1); err == nil {
			t.Errorf("ParseTreeSpec(%q) succeeded, want error", spec)
		}
	}
}

func TestParseTreeSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.txt")
	if err := os.WriteFile(path, []byte("a - b\nb - c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseTreeSpec("@"+path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumVertices() != 3 {
		t.Errorf("vertices = %d, want 3", tr.NumVertices())
	}
}

func TestSpreadInputs(t *testing.T) {
	tr, err := ParseTreeSpec("path:10", 1)
	if err != nil {
		t.Fatal(err)
	}
	in := SpreadInputs(tr, 4)
	if len(in) != 4 || in[0] != 0 || in[3] != 9 {
		t.Errorf("SpreadInputs = %v", in)
	}
	// Single party: no division by zero.
	if in := SpreadInputs(tr, 1); len(in) != 1 || in[0] != 0 {
		t.Errorf("SpreadInputs(1) = %v", in)
	}
}
