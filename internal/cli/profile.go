package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profile carries the standard profiling flag values shared by the serving
// commands (cmd/serve, cmd/serve-bench). Register the flags before
// flag.Parse, then bracket the measured region with Start/stop:
//
//	var prof cli.Profile
//	prof.RegisterFlags()
//	flag.Parse()
//	stop, err := prof.Start()
//	if err != nil { ... }
//	defer stop()
//
// CPU profiling and execution tracing run for the Start..stop window; the
// heap profile is written at stop time (after a GC, so it reflects live
// objects, not garbage awaiting collection).
type Profile struct {
	CPU string
	Mem string
	Tr  string
}

// RegisterFlags installs -cpuprofile, -memprofile and -trace on the default
// flag set.
func (p *Profile) RegisterFlags() {
	flag.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file at exit")
	flag.StringVar(&p.Tr, "trace", "", "write a runtime execution trace to this file")
}

// Start begins whichever collectors the flags request and returns the stop
// function that finishes them (idempotent, safe to call when no flag was
// set). Errors opening any requested file abort the whole start so a typo
// never silently produces a partial profile set.
func (p *Profile) Start() (stop func(), err error) {
	var (
		cpuF, trF *os.File
		stops     []func()
	)
	fail := func(err error) (func(), error) {
		for _, s := range stops {
			s()
		}
		return nil, err
	}
	if p.CPU != "" {
		if cpuF, err = os.Create(p.CPU); err != nil {
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		stops = append(stops, func() { pprof.StopCPUProfile(); cpuF.Close() })
	}
	if p.Tr != "" {
		if trF, err = os.Create(p.Tr); err != nil {
			return fail(fmt.Errorf("trace: %w", err))
		}
		if err = trace.Start(trF); err != nil {
			trF.Close()
			return fail(fmt.Errorf("trace: %w", err))
		}
		stops = append(stops, func() { trace.Stop(); trF.Close() })
	}
	mem := p.Mem
	done := false
	return func() {
		if done {
			return
		}
		done = true
		for _, s := range stops {
			s()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
