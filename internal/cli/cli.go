// Package cli holds small helpers shared by the cmd/ binaries: the tree
// specification mini-language, input spreading and parsing, and adversary
// construction from its flag name.
package cli

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"treeaa/internal/adversary"
	"treeaa/internal/core"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// ParseTreeSpec builds a tree from a compact spec:
//
//	path:K            path with K vertices
//	star:K            star with K vertices
//	spider:LEGS:LEN   spider with LEGS legs of length LEN
//	caterpillar:S:L   caterpillar with spine S and L legs per spine vertex
//	kary:K:DEPTH      complete K-ary tree of the given depth
//	random:K          uniform random labeled tree on K vertices (uses seed)
//	figure3           the paper's Figure 3 tree
//	@FILE             edge-list file ("a - b" per line)
func ParseTreeSpec(spec string, seed int64) (*tree.Tree, error) {
	if strings.HasPrefix(spec, "@") {
		f, err := os.Open(spec[1:])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return tree.Parse(f)
	}
	parts := strings.Split(spec, ":")
	argInt := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("tree spec %q: missing argument %d", spec, i)
		}
		v, err := strconv.Atoi(parts[i])
		if err != nil || v < 1 {
			return 0, fmt.Errorf("tree spec %q: bad argument %q", spec, parts[i])
		}
		return v, nil
	}
	switch parts[0] {
	case "path":
		k, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return tree.NewPath(k), nil
	case "star":
		k, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return tree.NewStar(k), nil
	case "spider":
		legs, err := argInt(1)
		if err != nil {
			return nil, err
		}
		length, err := argInt(2)
		if err != nil {
			return nil, err
		}
		return tree.NewSpider(legs, length), nil
	case "caterpillar":
		s, err := argInt(1)
		if err != nil {
			return nil, err
		}
		l, err := argInt(2)
		if err != nil {
			return nil, err
		}
		return tree.NewCaterpillar(s, l), nil
	case "kary":
		k, err := argInt(1)
		if err != nil {
			return nil, err
		}
		depth, err := argInt(2)
		if err != nil {
			return nil, err
		}
		return tree.NewCompleteKAry(k, depth), nil
	case "random":
		k, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return tree.RandomPruefer(k, rand.New(rand.NewSource(seed))), nil
	case "figure3":
		return tree.Figure3Tree(), nil
	default:
		return nil, fmt.Errorf("unknown tree spec %q", spec)
	}
}

// SpreadInputs places n inputs roughly evenly across the vertex ID range.
func SpreadInputs(tr *tree.Tree, n int) []tree.VertexID {
	inputs := make([]tree.VertexID, n)
	denom := n - 1
	if denom < 1 {
		denom = 1
	}
	for i := range inputs {
		inputs[i] = tree.VertexID(i * (tr.NumVertices() - 1) / denom)
	}
	return inputs
}

// ParseInputs resolves a comma-separated list of vertex labels to inputs,
// or spreads them across the tree when the spec is empty.
func ParseInputs(tr *tree.Tree, spec string, n int) ([]tree.VertexID, error) {
	if spec == "" {
		return SpreadInputs(tr, n), nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("got %d inputs for n = %d", len(parts), n)
	}
	inputs := make([]tree.VertexID, n)
	for i, label := range parts {
		v, err := tr.VertexByLabel(strings.TrimSpace(label))
		if err != nil {
			return nil, err
		}
		inputs[i] = v
	}
	return inputs, nil
}

// RotateInputs renders the spread input placement rotated by shift vertex
// positions, as a comma-separated label list ParseInputs accepts. The
// serving-layer drivers use it to give concurrent sessions distinct but
// deterministic inputs from one knob.
func RotateInputs(tr *tree.Tree, n, shift int) string {
	labels := make([]string, n)
	denom := n - 1
	if denom < 1 {
		denom = 1
	}
	v := tr.NumVertices()
	for i := range labels {
		labels[i] = tr.Label(tree.VertexID((i*(v-1)/denom + shift) % v))
	}
	return strings.Join(labels, ",")
}

// AdversaryNames lists the -adversary flag values for help text.
func AdversaryNames() []string {
	return []string{"none", "silent", "crash", "equivocator", "splitvote", "halfburn", "noise"}
}

// BuildAdversary constructs the named adversary over the canonical
// corrupted set FirstParties(n, t), phase-composed for TreeAA's gradecast
// tags where the strategy is tag-scoped. It returns the adversary (nil for
// "none" or t = 0) and the corrupted-party map.
func BuildAdversary(name string, tr *tree.Tree, n, t int, seed int64) (sim.Adversary, map[sim.PartyID]bool, error) {
	if name == "none" || t == 0 {
		return nil, map[sim.PartyID]bool{}, nil
	}
	ids := adversary.FirstParties(n, t)
	corrupt := make(map[sim.PartyID]bool, len(ids))
	for _, id := range ids {
		corrupt[id] = true
	}
	phases := core.PhaseTags(tr)
	perPhase := func(strategy string, mk func(p core.PhaseTag, k int) adversary.Params) (sim.Adversary, error) {
		var parts []sim.Adversary
		for k, p := range phases {
			part, err := adversary.Build(strategy, mk(p, k))
			if err != nil {
				return nil, err
			}
			parts = append(parts, part)
		}
		return &adversary.Compose{Strategies: parts}, nil
	}
	base := adversary.Params{IDs: ids, N: n, T: t, Seed: seed}
	var adv sim.Adversary
	var err error
	switch name {
	case "silent":
		adv, err = adversary.Build("silent", base)
	case "crash":
		rounds := make([]int, len(ids))
		rng := rand.New(rand.NewSource(seed))
		for i := range rounds {
			rounds[i] = 1 + rng.Intn(core.Rounds(tr)+1)
		}
		crash := base
		crash.Rounds = rounds
		adv, err = adversary.Build("crash", crash)
	case "equivocator":
		adv, err = perPhase("equivocator", func(p core.PhaseTag, _ int) adversary.Params {
			eq := base
			eq.Tag, eq.StartRound, eq.Lo, eq.Hi = p.Tag, p.StartRound, -100, 1e6
			return eq
		})
	case "splitvote":
		adv, err = perPhase("splitvote", func(p core.PhaseTag, _ int) adversary.Params {
			sv := base
			sv.Tag, sv.StartRound, sv.PerIteration = p.Tag, p.StartRound, 1
			return sv
		})
	case "halfburn":
		adv, err = perPhase("halfburn", func(p core.PhaseTag, _ int) adversary.Params {
			hb := base
			hb.Tag, hb.StartRound = p.Tag, p.StartRound
			return hb
		})
	case "noise":
		adv, err = perPhase("noise", func(p core.PhaseTag, k int) adversary.Params {
			no := base
			no.Tag, no.StartRound = p.Tag, p.StartRound
			no.Seed, no.MaxVal = seed+int64(1000*k), 2*tr.NumVertices()
			return no
		})
	default:
		return nil, nil, fmt.Errorf("unknown adversary %q", name)
	}
	if err != nil {
		return nil, nil, err
	}
	return adv, corrupt, nil
}
