// Package cli holds small helpers shared by the cmd/ binaries: the tree
// specification mini-language and input spreading.
package cli

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"treeaa/internal/tree"
)

// ParseTreeSpec builds a tree from a compact spec:
//
//	path:K            path with K vertices
//	star:K            star with K vertices
//	spider:LEGS:LEN   spider with LEGS legs of length LEN
//	caterpillar:S:L   caterpillar with spine S and L legs per spine vertex
//	kary:K:DEPTH      complete K-ary tree of the given depth
//	random:K          uniform random labeled tree on K vertices (uses seed)
//	figure3           the paper's Figure 3 tree
//	@FILE             edge-list file ("a - b" per line)
func ParseTreeSpec(spec string, seed int64) (*tree.Tree, error) {
	if strings.HasPrefix(spec, "@") {
		f, err := os.Open(spec[1:])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return tree.Parse(f)
	}
	parts := strings.Split(spec, ":")
	argInt := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("tree spec %q: missing argument %d", spec, i)
		}
		v, err := strconv.Atoi(parts[i])
		if err != nil || v < 1 {
			return 0, fmt.Errorf("tree spec %q: bad argument %q", spec, parts[i])
		}
		return v, nil
	}
	switch parts[0] {
	case "path":
		k, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return tree.NewPath(k), nil
	case "star":
		k, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return tree.NewStar(k), nil
	case "spider":
		legs, err := argInt(1)
		if err != nil {
			return nil, err
		}
		length, err := argInt(2)
		if err != nil {
			return nil, err
		}
		return tree.NewSpider(legs, length), nil
	case "caterpillar":
		s, err := argInt(1)
		if err != nil {
			return nil, err
		}
		l, err := argInt(2)
		if err != nil {
			return nil, err
		}
		return tree.NewCaterpillar(s, l), nil
	case "kary":
		k, err := argInt(1)
		if err != nil {
			return nil, err
		}
		depth, err := argInt(2)
		if err != nil {
			return nil, err
		}
		return tree.NewCompleteKAry(k, depth), nil
	case "random":
		k, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return tree.RandomPruefer(k, rand.New(rand.NewSource(seed))), nil
	case "figure3":
		return tree.Figure3Tree(), nil
	default:
		return nil, fmt.Errorf("unknown tree spec %q", spec)
	}
}

// SpreadInputs places n inputs roughly evenly across the vertex ID range.
func SpreadInputs(tr *tree.Tree, n int) []tree.VertexID {
	inputs := make([]tree.VertexID, n)
	denom := n - 1
	if denom < 1 {
		denom = 1
	}
	for i := range inputs {
		inputs[i] = tree.VertexID(i * (tr.NumVertices() - 1) / denom)
	}
	return inputs
}
