package cli

import (
	"errors"
	"testing"

	"treeaa/internal/tree"
)

// The exact error strings are part of the CLI surface: cmd/treeaa prints
// them verbatim and the property checker's spec language documentation
// references them. These tables pin them.

func TestParseInputsErrors(t *testing.T) {
	tr, err := ParseTreeSpec("path:5", 1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name, spec string
		n          int
		wantErr    string
	}{
		{"too few", "v1,v2", 4, "got 2 inputs for n = 4"},
		{"too many", "v1,v2,v3,v4,v5", 4, "got 5 inputs for n = 4"},
		{"one for zero", "v1", 0, "got 1 inputs for n = 0"},
		{"unknown label", "v1,v2,v3,nope", 4, `tree: unknown vertex: "nope"`},
		{"bare id", "v1,v2,v3,7", 4, `tree: unknown vertex: "7"`},
		{"empty element", "v1,v2,v3,", 4, `tree: unknown vertex: ""`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseInputs(tr, tc.spec, tc.n)
			if err == nil {
				t.Fatalf("ParseInputs(%q, %d) succeeded, want error", tc.spec, tc.n)
			}
			if err.Error() != tc.wantErr {
				t.Errorf("ParseInputs(%q, %d) error = %q, want %q", tc.spec, tc.n, err, tc.wantErr)
			}
		})
	}

	t.Run("unknown label wraps sentinel", func(t *testing.T) {
		_, err := ParseInputs(tr, "v1,v2,v3,nope", 4)
		if !errors.Is(err, tree.ErrUnknownVertex) {
			t.Errorf("error %v does not wrap tree.ErrUnknownVertex", err)
		}
	})

	t.Run("labels are trimmed", func(t *testing.T) {
		inputs, err := ParseInputs(tr, " v1 , v2 ,v3, v4 ", 4)
		if err != nil {
			t.Fatalf("whitespace around labels rejected: %v", err)
		}
		if len(inputs) != 4 {
			t.Fatalf("got %d inputs", len(inputs))
		}
	})
}

func TestBuildAdversaryErrors(t *testing.T) {
	tr, err := ParseTreeSpec("path:5", 1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		adv     string
		wantErr string
	}{
		{"unknown name", "bogus", `unknown adversary "bogus"`},
		{"typo", "equivocater", `unknown adversary "equivocater"`},
		{"empty name", "", `unknown adversary ""`},
		{"registry name not exposed", "replay", `unknown adversary "replay"`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := BuildAdversary(tc.adv, tr, 4, 1, 1)
			if err == nil {
				t.Fatalf("BuildAdversary(%q) succeeded, want error", tc.adv)
			}
			if err.Error() != tc.wantErr {
				t.Errorf("BuildAdversary(%q) error = %q, want %q", tc.adv, err, tc.wantErr)
			}
		})
	}

	t.Run("t=0 short-circuits before name check", func(t *testing.T) {
		adv, corrupt, err := BuildAdversary("bogus", tr, 4, 0, 1)
		if err != nil || adv != nil || len(corrupt) != 0 {
			t.Errorf("BuildAdversary(bogus, t=0) = (%v, %v, %v), want (nil, empty, nil)", adv, corrupt, err)
		}
	})

	t.Run("every advertised name builds", func(t *testing.T) {
		for _, name := range AdversaryNames() {
			if _, _, err := BuildAdversary(name, tr, 7, 2, 1); err != nil {
				t.Errorf("BuildAdversary(%q): %v", name, err)
			}
		}
	})
}
