package wire

// Client-plane payloads for the serving layer's binary client API
// (internal/session server.go / client.go): the request/response frames a
// client exchanges with one daemon over its client listener. They never
// travel on peer links and never nest inside SessionMsg. Four types:
//
//	ClientSubmit  0x0D  offer a session to the daemon:
//	                    uvarint(sid) | tree spec | seed(8, big-endian two's
//	                    complement) | uvarint(t) | input spec |
//	                    uvarint(ttl ms) | flags(1) (bit 0: wait)
//	ClientWait    0x0E  block until the session is terminal: uvarint(sid)
//	ClientStatus  0x0F  current lifecycle view: uvarint(sid)
//	ClientOutcome 0x10  the daemon's answer to any request:
//	                    flags(1) (bit 0: ok) | uvarint(sid) | state(1) |
//	                    err string | uvarint(latency ns) | uvarint(rounds) |
//	                    uvarint(msgs) | uvarint(bytes) | uvarint(#outputs) |
//	                    (u32 party | u32 vertex)* parties strictly ascending
//
// All four keep the package's canonicality contract — Encode(Decode(b)) ==
// b and an exact Sizer — so the golden-frame and fuzz harnesses cover them
// unchanged. On the socket each frame travels uvarint-length-prefixed
// (transport.AppendFrame / ReadFrame), exactly like the peer mux.

import (
	"encoding/binary"
	"fmt"
	"math"

	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// Client API type tags (continuing the session tags 0x08–0x0C).
const (
	TypeClientSubmit  byte = 0x0D
	TypeClientWait    byte = 0x0E
	TypeClientStatus  byte = 0x0F
	TypeClientOutcome byte = 0x10
)

// ClientStateNone marks a ClientOutcome that carries no session state (a
// request-level rejection: unknown op, bad spec, unknown sid). Valid states
// are the session.State values 0–4.
const ClientStateNone byte = 0xFF

// maxClientState is the largest encodable session state (StateExpired).
const maxClientState byte = 4

// ClientSubmit offers one session spec. SID 0 means auto-assign; Wait asks
// the daemon to answer with the terminal outcome instead of the admission.
type ClientSubmit struct {
	SID       uint64
	Tree      string
	Seed      int64
	T         int
	Inputs    string
	TTLMillis uint64
	Wait      bool
}

func (m ClientSubmit) Size() int {
	return 2 + sim.UvarintLen(m.SID) +
		sim.UvarintLen(uint64(len(m.Tree))) + len(m.Tree) + 8 +
		sim.UvarintLen(uint64(m.T)) +
		sim.UvarintLen(uint64(len(m.Inputs))) + len(m.Inputs) +
		sim.UvarintLen(m.TTLMillis) + 1
}

// ClientWait blocks until the session reaches a terminal state.
type ClientWait struct {
	SID uint64
}

func (m ClientWait) Size() int { return 2 + sim.UvarintLen(m.SID) }

// ClientStatus asks for a session's current lifecycle view.
type ClientStatus struct {
	SID uint64
}

func (m ClientStatus) Size() int { return 2 + sim.UvarintLen(m.SID) }

// OutputPair is one party's decided vertex inside a ClientOutcome; pairs
// are encoded with strictly ascending parties, which Decode enforces.
type OutputPair struct {
	Party sim.PartyID
	V     tree.VertexID
}

// ClientOutcome answers every client request. OK reports request-level
// success; State is a session.State value or ClientStateNone; the result
// fields (Rounds/Msgs/Bytes/Outputs) are populated for decided sessions
// only and zero otherwise.
type ClientOutcome struct {
	OK        bool
	SID       uint64
	State     byte
	Err       string
	LatencyNS int64
	Rounds    int
	Msgs      int
	Bytes     int
	Outputs   []OutputPair
}

func (m ClientOutcome) Size() int {
	return 2 + 1 + sim.UvarintLen(m.SID) + 1 +
		sim.UvarintLen(uint64(len(m.Err))) + len(m.Err) +
		sim.UvarintLen(uint64(m.LatencyNS)) +
		sim.UvarintLen(uint64(m.Rounds)) +
		sim.UvarintLen(uint64(m.Msgs)) + sim.UvarintLen(uint64(m.Bytes)) +
		sim.UvarintLen(uint64(len(m.Outputs))) + 8*len(m.Outputs)
}

// ---- encoders

func appendClientSubmit(dst []byte, m ClientSubmit) ([]byte, error) {
	if m.T < 0 || m.T > math.MaxInt32 {
		return nil, fmt.Errorf("wire: submit t %d out of range", m.T)
	}
	dst = append(dst, Version, TypeClientSubmit)
	dst = AppendUvarint(dst, m.SID)
	dst, err := appendString(dst, m.Tree)
	if err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Seed))
	dst = AppendUvarint(dst, uint64(m.T))
	if dst, err = appendString(dst, m.Inputs); err != nil {
		return nil, err
	}
	dst = AppendUvarint(dst, m.TTLMillis)
	var flags byte
	if m.Wait {
		flags |= 0x01
	}
	return append(dst, flags), nil
}

func appendClientQuery(dst []byte, typ byte, sid uint64) []byte {
	dst = append(dst, Version, typ)
	return AppendUvarint(dst, sid)
}

func appendClientOutcome(dst []byte, m ClientOutcome) ([]byte, error) {
	if m.State > maxClientState && m.State != ClientStateNone {
		return nil, fmt.Errorf("wire: outcome state %d out of range", m.State)
	}
	if m.LatencyNS < 0 {
		return nil, fmt.Errorf("wire: negative latency %d", m.LatencyNS)
	}
	if m.Rounds < 0 || m.Rounds > math.MaxInt32 {
		return nil, fmt.Errorf("wire: outcome rounds %d out of range", m.Rounds)
	}
	if m.Msgs < 0 || uint64(m.Msgs) > maxCount || m.Bytes < 0 || uint64(m.Bytes) > maxCount {
		return nil, fmt.Errorf("wire: outcome counters %d/%d out of range", m.Msgs, m.Bytes)
	}
	dst = append(dst, Version, TypeClientOutcome)
	var flags byte
	if m.OK {
		flags |= 0x01
	}
	dst = append(dst, flags)
	dst = AppendUvarint(dst, m.SID)
	dst = append(dst, m.State)
	dst, err := appendString(dst, m.Err)
	if err != nil {
		return nil, err
	}
	dst = AppendUvarint(dst, uint64(m.LatencyNS))
	dst = AppendUvarint(dst, uint64(m.Rounds))
	dst = AppendUvarint(dst, uint64(m.Msgs))
	dst = AppendUvarint(dst, uint64(m.Bytes))
	dst = AppendUvarint(dst, uint64(len(m.Outputs)))
	prev := -1
	for _, pair := range m.Outputs {
		if int(pair.Party) <= prev {
			return nil, fmt.Errorf("wire: outcome outputs not strictly ascending at party %d", pair.Party)
		}
		prev = int(pair.Party)
		if dst, err = appendID(dst, int(pair.Party)); err != nil {
			return nil, err
		}
		if dst, err = appendID(dst, int(pair.V)); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// ---- decoders

func decodeClientSubmit(b []byte) (any, []byte, error) {
	sid, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	treeSpec, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < 8 {
		return nil, nil, malformed("truncated submit seed")
	}
	seed := binary.BigEndian.Uint64(b[:8])
	b = b[8:]
	t, b, err := consumeIter(b)
	if err != nil {
		return nil, nil, err
	}
	inputs, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	ttl, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < 1 {
		return nil, nil, malformed("truncated submit flags")
	}
	flags := b[0]
	if flags&^byte(0x01) != 0 {
		return nil, nil, malformed("unknown submit flags %#x", flags)
	}
	return ClientSubmit{SID: sid, Tree: treeSpec, Seed: int64(seed), T: t,
		Inputs: inputs, TTLMillis: ttl, Wait: flags&0x01 != 0}, b[1:], nil
}

func decodeClientQuery(b []byte, typ byte) (any, []byte, error) {
	sid, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if typ == TypeClientWait {
		return ClientWait{SID: sid}, b, nil
	}
	return ClientStatus{SID: sid}, b, nil
}

func decodeClientOutcome(b []byte) (any, []byte, error) {
	if len(b) < 1 {
		return nil, nil, malformed("truncated outcome flags")
	}
	flags := b[0]
	if flags&^byte(0x01) != 0 {
		return nil, nil, malformed("unknown outcome flags %#x", flags)
	}
	b = b[1:]
	sid, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < 1 {
		return nil, nil, malformed("truncated outcome state")
	}
	state := b[0]
	if state > maxClientState && state != ClientStateNone {
		return nil, nil, malformed("outcome state %d out of range", state)
	}
	b = b[1:]
	errStr, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	lat, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if lat > uint64(math.MaxInt64) {
		return nil, nil, malformed("latency %d out of range", lat)
	}
	rounds, b, err := consumeIter(b)
	if err != nil {
		return nil, nil, err
	}
	msgs, b, err := consumeCount(b)
	if err != nil {
		return nil, nil, err
	}
	bytesSum, b, err := consumeCount(b)
	if err != nil {
		return nil, nil, err
	}
	count, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if count > uint64(MaxIDValue)+1 || 8*count > uint64(len(b)) {
		return nil, nil, malformed("output count %d exceeds buffer", count)
	}
	var outputs []OutputPair
	prev := -1
	for i := uint64(0); i < count; i++ {
		var party, v int
		if party, b, err = consumeID(b); err != nil {
			return nil, nil, err
		}
		if v, b, err = consumeID(b); err != nil {
			return nil, nil, err
		}
		if party <= prev {
			return nil, nil, malformed("outcome outputs not strictly ascending at party %d", party)
		}
		prev = party
		outputs = append(outputs, OutputPair{Party: sim.PartyID(party), V: tree.VertexID(v)})
	}
	return ClientOutcome{OK: flags&0x01 != 0, SID: sid, State: state, Err: errStr,
		LatencyNS: int64(lat), Rounds: rounds, Msgs: msgs, Bytes: bytesSum,
		Outputs: outputs}, b, nil
}

// PeekSession reads the type tag and session id of an encoded session-plane
// frame (0x08–0x0C, or the graph session open 0x18) without decoding its
// payload — the serving mux's zero-copy routing primitive: data frames are
// handed to the owning engine's shard as raw bytes and decoded there, off
// the link reader.
func PeekSession(b []byte) (typ byte, sid uint64, err error) {
	if len(b) < 3 {
		return 0, 0, malformed("body shorter than session header")
	}
	if b[0] != Version {
		return 0, 0, malformed("version %d, want %d", b[0], Version)
	}
	typ = b[1]
	if (typ < TypeSessionMsg || typ > TypeSessionDecide) && typ != TypeSessionOpenGraph {
		return 0, 0, malformed("unknown session type 0x%02x", typ)
	}
	sid, _, err = ConsumeUvarint(b[2:])
	if err != nil {
		return 0, 0, err
	}
	return typ, sid, nil
}
