package wire

// go test -fuzz=FuzzDecode ./internal/wire/ — the Makefile fuzz-wire target
// runs it for 30s. The corpus is seeded from the committed golden frames
// (testdata/wire/*.bin) plus systematic mutations of them; the invariants
// are: Decode never panics, and every accepted frame is canonical
// (Encode(Decode(b)) == b) with an exact Sizer (Size() == len(b)).

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"treeaa/internal/sim"
)

func FuzzDecode(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join(goldenDir, "*.bin"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no golden frames to seed the corpus (run TestGoldenFrames -update): %v", err)
	}
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Truncations, extensions and bit flips of known-good frames reach
		// deeper decode states than random bytes.
		f.Add(b[:len(b)/2])
		f.Add(append(append([]byte{}, b...), 0x00))
		for i := 0; i < len(b); i += 5 {
			mut := append([]byte{}, b...)
			mut[i] ^= 0x80
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, TypeGradecastEcho, 0x00, 0x00, 0xFF})

	// The committed corpus (testdata/wire/corpus/*.bin) holds inputs earlier
	// fuzzing runs found interesting — near-valid frames probing length
	// fields, map-key ordering and float encodings. Seeding them makes even a
	// 10-second fuzz-short pass start from deep decoder states.
	corpus, err := filepath.Glob(filepath.Join(goldenDir, "corpus", "*.bin"))
	if err != nil || len(corpus) == 0 {
		f.Fatalf("no committed corpus under %s/corpus: %v", goldenDir, err)
	}
	for _, path := range corpus {
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Decode(b)
		if err != nil {
			return // malformed frames must error, never panic
		}
		re, err := Encode(p)
		if err != nil {
			t.Fatalf("decoded payload does not re-encode: %#v: %v", p, err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted non-canonical frame:\n  in %x\n out %x", b, re)
		}
		if s, ok := p.(sim.Sizer); !ok || s.Size() != len(b) {
			t.Fatalf("%T: Size() = %d, frame length = %d", p, p.(sim.Sizer).Size(), len(b))
		}
	})
}
