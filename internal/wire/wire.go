// Package wire is the deterministic, versioned binary codec for every
// payload the synchronous protocols put on the network: the gradecast
// send/echo/vote messages (which carry RealAA values and suspicion masks,
// PathsFinder list indices and TreeAA projection positions), the DLPSW and
// crash-AA value broadcasts, the baseline vertex broadcasts and the
// exact-agreement signature chains. The internal/transport TCP layer frames
// these bodies onto sockets; the in-process engine never encodes (payloads
// cross goroutines as values) but charges exactly len(Encode(p)) bytes per
// message because every payload's sim.Sizer implementation mirrors this
// codec — TestSizerMatchesEncoding pins that equality.
//
// # Format
//
// Every body is
//
//	version(1) | type(1) | fields...
//
// with field encodings chosen so that encoding is *canonical* (each value
// has exactly one accepted byte representation — Decode rejects everything
// else, and FuzzDecode asserts Encode(Decode(b)) == b):
//
//   - uvarint: minimal-length LEB128 (non-minimal forms are rejected);
//   - string: uvarint length followed by the raw bytes;
//   - float64: IEEE-754 bits, big-endian (bit patterns, including NaN
//     payloads, survive round trips untouched);
//   - party/vertex ids: fixed big-endian u32 (ids are validated to
//     [0, 2^31) so they fit an int everywhere);
//   - id→float64 maps: uvarint count, then entries sorted by strictly
//     ascending id, each id(u32) | value(f64);
//   - byte strings: uvarint length + bytes.
//
// The fixed-width map entries keep sim.Sizer implementations O(1): a vector
// message's size is arithmetic on len(Tag) and len(Vals), never a map walk,
// so exact byte accounting costs the hot simulation path nothing.
//
// The asynchronous mode's RBC and witness-report payloads (async.go in this
// package, types 0x16–0x17) ride the same codec: internal/async's in-process
// Message values convert to and from them at the transport boundary.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"treeaa/internal/baseline"
	"treeaa/internal/crashaa"
	"treeaa/internal/exactaa"
	"treeaa/internal/gradecast"
	"treeaa/internal/realaa"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// Version is the wire-format version, the first byte of every body. Bump it
// on any format change and regenerate the golden frames (testdata/wire) so
// the drift is reviewed like a protocol change.
const Version = 1

// Type tags, the second byte of every body.
const (
	TypeGradecastSend byte = 0x01
	TypeGradecastEcho byte = 0x02
	TypeGradecastVote byte = 0x03
	TypeDLPSW         byte = 0x04
	TypeCrashValue    byte = 0x05
	TypeBaselineVert  byte = 0x06
	TypeExactChain    byte = 0x07
)

// Limits. Decode validates counts against the remaining buffer before
// allocating, so a malformed frame can never force a large allocation, but
// explicit caps also keep encoded frames bounded.
const (
	// MaxIDValue bounds encoded party and vertex ids: they must fit an
	// int32 so decoding is portable.
	MaxIDValue = math.MaxInt32
	// maxLen bounds every length prefix (strings, lists, signatures).
	maxLen = 1 << 20
)

// ErrUnknownPayload reports an Encode/EncodedSize call with a payload type
// the codec does not know.
var ErrUnknownPayload = errors.New("wire: unknown payload type")

// ErrMalformed reports a Decode rejection; the wrapped detail says why.
var ErrMalformed = errors.New("wire: malformed frame")

// Encode returns the canonical encoding of payload, which must be one of
// the protocol payload types listed in the package comment.
func Encode(payload any) ([]byte, error) {
	sz, err := EncodedSize(payload)
	if err != nil {
		return nil, err
	}
	return Append(make([]byte, 0, sz), payload)
}

// Append appends the canonical encoding of payload to dst and returns the
// extended slice.
func Append(dst []byte, payload any) ([]byte, error) {
	switch m := payload.(type) {
	case gradecast.SendMsg:
		return appendScalar(dst, TypeGradecastSend, m.Tag, m.Iter, m.Val)
	case gradecast.EchoMsg:
		return appendVector(dst, TypeGradecastEcho, m.Tag, m.Iter, m.Vals)
	case gradecast.VoteMsg:
		return appendVector(dst, TypeGradecastVote, m.Tag, m.Iter, m.Vals)
	case realaa.DLPSWMsg:
		return appendScalar(dst, TypeDLPSW, m.Tag, m.Iter, m.Val)
	case crashaa.ValueMsg:
		return appendScalar(dst, TypeCrashValue, m.Tag, m.Iter, m.Val)
	case baseline.VertexMsg:
		dst, err := appendHeader(dst, TypeBaselineVert, m.Tag, m.Iter)
		if err != nil {
			return nil, err
		}
		return appendID(dst, int(m.V))
	case exactaa.ChainMsg:
		return appendChain(dst, m)
	case SessionMsg:
		return appendSessionMsg(dst, m)
	case SessionEOR:
		return appendSessionEOR(dst, m)
	case SessionOpen:
		return appendSessionOpen(dst, m)
	case SessionAbort:
		return appendSessionAbort(dst, m)
	case SessionDecide:
		return appendSessionDecide(dst, m)
	case ClientSubmit:
		return appendClientSubmit(dst, m)
	case ClientWait:
		return appendClientQuery(dst, TypeClientWait, m.SID), nil
	case ClientStatus:
		return appendClientQuery(dst, TypeClientStatus, m.SID), nil
	case ClientOutcome:
		return appendClientOutcome(dst, m)
	case JournalOpen:
		return appendJournalOpen(dst, m)
	case JournalFrame:
		return appendJournalFrame(dst, m)
	case JournalSeal:
		return appendJournalSeal(dst, m)
	case RelayMsg:
		return appendRelay(dst, m)
	case OverlayEOR:
		return appendOverlayEOR(dst, m)
	case AsyncValue:
		return appendAsyncValue(dst, m)
	case AsyncReport:
		return appendAsyncReport(dst, m)
	case SessionOpenGraph:
		return appendSessionOpenGraph(dst, m)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownPayload, payload)
	}
}

// EncodedSize returns len(Encode(payload)) without encoding. For every
// payload type it equals the type's sim.Sizer Size(); the codec tests pin
// all three quantities to each other.
func EncodedSize(payload any) (int, error) {
	s, ok := payload.(sim.Sizer)
	if !ok {
		return 0, fmt.Errorf("%w: %T", ErrUnknownPayload, payload)
	}
	switch payload.(type) {
	case gradecast.SendMsg, gradecast.EchoMsg, gradecast.VoteMsg,
		realaa.DLPSWMsg, crashaa.ValueMsg, baseline.VertexMsg, exactaa.ChainMsg,
		SessionMsg, SessionEOR, SessionOpen, SessionAbort, SessionDecide,
		ClientSubmit, ClientWait, ClientStatus, ClientOutcome,
		JournalOpen, JournalFrame, JournalSeal, RelayMsg, OverlayEOR,
		AsyncValue, AsyncReport, SessionOpenGraph:
		return s.Size(), nil
	}
	return 0, fmt.Errorf("%w: %T", ErrUnknownPayload, payload)
}

// Decode parses one canonical body and returns the concrete payload value.
// The whole buffer must be consumed; any structural violation (unknown
// version or type, truncation, trailing bytes, non-minimal varints,
// unsorted or duplicate map keys, oversized lengths) yields an error
// wrapping ErrMalformed, never a panic.
func Decode(b []byte) (any, error) {
	if len(b) < 2 {
		return nil, malformed("body shorter than header")
	}
	if b[0] != Version {
		return nil, malformed("version %d, want %d", b[0], Version)
	}
	typ, rest := b[1], b[2:]
	var (
		payload any
		err     error
	)
	switch typ {
	case TypeGradecastSend:
		payload, rest, err = decodeScalar(rest, typ)
	case TypeGradecastEcho, TypeGradecastVote:
		payload, rest, err = decodeVector(rest, typ)
	case TypeDLPSW:
		payload, rest, err = decodeScalar(rest, typ)
	case TypeCrashValue:
		payload, rest, err = decodeScalar(rest, typ)
	case TypeBaselineVert:
		payload, rest, err = decodeVertex(rest)
	case TypeExactChain:
		payload, rest, err = decodeChain(rest)
	case TypeSessionMsg:
		payload, rest, err = decodeSessionMsg(rest)
	case TypeSessionEOR:
		payload, rest, err = decodeSessionEOR(rest)
	case TypeSessionOpen:
		payload, rest, err = decodeSessionOpen(rest)
	case TypeSessionAbort:
		payload, rest, err = decodeSessionAbort(rest)
	case TypeSessionDecide:
		payload, rest, err = decodeSessionDecide(rest)
	case TypeClientSubmit:
		payload, rest, err = decodeClientSubmit(rest)
	case TypeClientWait, TypeClientStatus:
		payload, rest, err = decodeClientQuery(rest, typ)
	case TypeClientOutcome:
		payload, rest, err = decodeClientOutcome(rest)
	case TypeJournalOpen:
		payload, rest, err = decodeJournalOpen(rest)
	case TypeJournalFrame:
		payload, rest, err = decodeJournalFrame(rest)
	case TypeJournalSeal:
		payload, rest, err = decodeJournalSeal(rest)
	case TypeRelay:
		payload, rest, err = decodeRelay(rest)
	case TypeOverlayEOR:
		payload, rest, err = decodeOverlayEOR(rest)
	case TypeAsyncValue:
		payload, rest, err = decodeAsyncValue(rest)
	case TypeAsyncReport:
		payload, rest, err = decodeAsyncReport(rest)
	case TypeSessionOpenGraph:
		payload, rest, err = decodeSessionOpenGraph(rest)
	default:
		return nil, malformed("unknown type 0x%02x", typ)
	}
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, malformed("%d trailing bytes", len(rest))
	}
	return payload, nil
}

func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

// ---- primitive encoders (exported where the transport framing reuses them)

// AppendUvarint appends x as a canonical LEB128 varint.
func AppendUvarint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

// ConsumeUvarint reads a canonical uvarint, rejecting non-minimal
// encodings, and returns the value and the remaining bytes.
func ConsumeUvarint(b []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, malformed("bad uvarint")
	}
	if n != sim.UvarintLen(x) {
		return 0, nil, malformed("non-minimal uvarint")
	}
	return x, b[n:], nil
}

// AppendU32 appends x as a fixed big-endian u32.
func AppendU32(dst []byte, x uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, x)
}

// ConsumeU32 reads a fixed big-endian u32.
func ConsumeU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, malformed("truncated u32")
	}
	return binary.BigEndian.Uint32(b), b[4:], nil
}

func appendID(dst []byte, id int) ([]byte, error) {
	if id < 0 || id > MaxIDValue {
		return nil, fmt.Errorf("wire: id %d out of range [0, %d]", id, MaxIDValue)
	}
	return AppendU32(dst, uint32(id)), nil
}

func consumeID(b []byte) (int, []byte, error) {
	x, rest, err := ConsumeU32(b)
	if err != nil {
		return 0, nil, err
	}
	if x > MaxIDValue {
		return 0, nil, malformed("id %d out of range", x)
	}
	return int(x), rest, nil
}

func appendFloat(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

func consumeFloat(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, malformed("truncated float64")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), b[8:], nil
}

func appendString(dst []byte, s string) ([]byte, error) {
	if len(s) > maxLen {
		return nil, fmt.Errorf("wire: string of %d bytes exceeds limit", len(s))
	}
	dst = AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...), nil
}

func consumeString(b []byte) (string, []byte, error) {
	n, rest, err := ConsumeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > maxLen || n > uint64(len(rest)) {
		return "", nil, malformed("string length %d exceeds buffer", n)
	}
	return string(rest[:n]), rest[n:], nil
}

func appendIter(dst []byte, iter int) ([]byte, error) {
	if iter < 0 {
		return nil, fmt.Errorf("wire: negative iteration %d", iter)
	}
	return AppendUvarint(dst, uint64(iter)), nil
}

func consumeIter(b []byte) (int, []byte, error) {
	x, rest, err := ConsumeUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if x > math.MaxInt32 {
		return 0, nil, malformed("iteration %d out of range", x)
	}
	return int(x), rest, nil
}

// ---- shared field groups

// appendHeader writes version | type | tag-string | iter, the prefix every
// payload shares.
func appendHeader(dst []byte, typ byte, tag string, iter int) ([]byte, error) {
	dst = append(dst, Version, typ)
	dst, err := appendString(dst, tag)
	if err != nil {
		return nil, err
	}
	return appendIter(dst, iter)
}

func appendScalar(dst []byte, typ byte, tag string, iter int, val float64) ([]byte, error) {
	dst, err := appendHeader(dst, typ, tag, iter)
	if err != nil {
		return nil, err
	}
	return appendFloat(dst, val), nil
}

func decodeScalar(b []byte, typ byte) (any, []byte, error) {
	tag, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	iter, b, err := consumeIter(b)
	if err != nil {
		return nil, nil, err
	}
	val, b, err := consumeFloat(b)
	if err != nil {
		return nil, nil, err
	}
	switch typ {
	case TypeGradecastSend:
		return gradecast.SendMsg{Tag: tag, Iter: iter, Val: val}, b, nil
	case TypeDLPSW:
		return realaa.DLPSWMsg{Tag: tag, Iter: iter, Val: val}, b, nil
	default:
		return crashaa.ValueMsg{Tag: tag, Iter: iter, Val: val}, b, nil
	}
}

// appendVector writes a gradecast.Vec, which is already in canonical order:
// Vecs are sorted by construction, so encoding validates the strictly
// ascending invariant instead of sorting a map's keys per message.
func appendVector(dst []byte, typ byte, tag string, iter int, vals gradecast.Vec) ([]byte, error) {
	dst, err := appendHeader(dst, typ, tag, iter)
	if err != nil {
		return nil, err
	}
	if len(vals) > maxLen {
		return nil, fmt.Errorf("wire: vector of %d entries exceeds limit", len(vals))
	}
	dst = AppendUvarint(dst, uint64(len(vals)))
	prev := -1
	for _, e := range vals {
		if int(e.ID) <= prev {
			return nil, fmt.Errorf("wire: vector ids not strictly ascending at %d", e.ID)
		}
		prev = int(e.ID)
		dst, err = appendID(dst, int(e.ID))
		if err != nil {
			return nil, err
		}
		dst = appendFloat(dst, e.Val)
	}
	return dst, nil
}

func decodeVector(b []byte, typ byte) (any, []byte, error) {
	tag, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	iter, b, err := consumeIter(b)
	if err != nil {
		return nil, nil, err
	}
	count, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	// 12 bytes per entry: reject before allocating anything count-sized.
	if count > maxLen || count*12 > uint64(len(b)) {
		return nil, nil, malformed("vector count %d exceeds buffer", count)
	}
	// One exact-size flat allocation; the wire order is already the Vec
	// invariant, so entries land in place with no sorting and no map.
	var vals gradecast.Vec
	if count > 0 {
		vals = make(gradecast.Vec, 0, count)
	}
	prev := -1
	for i := uint64(0); i < count; i++ {
		var id int
		id, b, err = consumeID(b)
		if err != nil {
			return nil, nil, err
		}
		if id <= prev {
			return nil, nil, malformed("vector keys not strictly ascending")
		}
		prev = id
		var v float64
		v, b, err = consumeFloat(b)
		if err != nil {
			return nil, nil, err
		}
		vals = append(vals, gradecast.VecEntry{ID: sim.PartyID(id), Val: v})
	}
	if typ == TypeGradecastEcho {
		return gradecast.EchoMsg{Tag: tag, Iter: iter, Vals: vals}, b, nil
	}
	return gradecast.VoteMsg{Tag: tag, Iter: iter, Vals: vals}, b, nil
}

func decodeVertex(b []byte) (any, []byte, error) {
	tag, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	iter, b, err := consumeIter(b)
	if err != nil {
		return nil, nil, err
	}
	v, b, err := consumeID(b)
	if err != nil {
		return nil, nil, err
	}
	return baseline.VertexMsg{Tag: tag, Iter: iter, V: tree.VertexID(v)}, b, nil
}

func appendChain(dst []byte, m exactaa.ChainMsg) ([]byte, error) {
	dst = append(dst, Version, TypeExactChain)
	dst, err := appendString(dst, m.Tag)
	if err != nil {
		return nil, err
	}
	if dst, err = appendID(dst, int(m.Sender)); err != nil {
		return nil, err
	}
	if dst, err = appendID(dst, int(m.V)); err != nil {
		return nil, err
	}
	if len(m.Signer) > maxLen || len(m.Sigs) > maxLen {
		return nil, fmt.Errorf("wire: chain of %d/%d entries exceeds limit", len(m.Signer), len(m.Sigs))
	}
	dst = AppendUvarint(dst, uint64(len(m.Signer)))
	for _, p := range m.Signer {
		if dst, err = appendID(dst, int(p)); err != nil {
			return nil, err
		}
	}
	dst = AppendUvarint(dst, uint64(len(m.Sigs)))
	for _, sig := range m.Sigs {
		if len(sig) > maxLen {
			return nil, fmt.Errorf("wire: signature of %d bytes exceeds limit", len(sig))
		}
		dst = AppendUvarint(dst, uint64(len(sig)))
		dst = append(dst, sig...)
	}
	return dst, nil
}

func decodeChain(b []byte) (any, []byte, error) {
	tag, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	sender, b, err := consumeID(b)
	if err != nil {
		return nil, nil, err
	}
	v, b, err := consumeID(b)
	if err != nil {
		return nil, nil, err
	}
	nSigner, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if nSigner > maxLen || nSigner*4 > uint64(len(b)) {
		return nil, nil, malformed("signer count %d exceeds buffer", nSigner)
	}
	m := exactaa.ChainMsg{Tag: tag, Sender: sim.PartyID(sender), V: tree.VertexID(v)}
	if nSigner > 0 {
		m.Signer = make([]sim.PartyID, 0, nSigner)
	}
	for i := uint64(0); i < nSigner; i++ {
		var p int
		p, b, err = consumeID(b)
		if err != nil {
			return nil, nil, err
		}
		m.Signer = append(m.Signer, sim.PartyID(p))
	}
	nSigs, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	// Each signature costs at least its 1-byte length prefix.
	if nSigs > maxLen || nSigs > uint64(len(b)) {
		return nil, nil, malformed("signature count %d exceeds buffer", nSigs)
	}
	if nSigs > 0 {
		m.Sigs = make([][]byte, 0, nSigs)
	}
	for i := uint64(0); i < nSigs; i++ {
		var n uint64
		n, b, err = ConsumeUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		if n > maxLen || n > uint64(len(b)) {
			return nil, nil, malformed("signature length %d exceeds buffer", n)
		}
		m.Sigs = append(m.Sigs, append([]byte(nil), b[:n]...))
		b = b[n:]
	}
	return m, b, nil
}
