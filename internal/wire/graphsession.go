package wire

// Graph-space session control. A graph session announces the input graph
// instead of a tree:
//
//	SessionOpenGraph 0x18  origin announces a new graph-space session:
//	                       uvarint(sid) | graph spec | seed(8, big-endian
//	                       two's complement) | uvarint(t) | input spec |
//	                       uvarint(ttl ms)
//
// The field layout is byte-for-byte that of SessionOpen with the tree spec
// replaced by a graph spec (the internal/graph grammar, WITHOUT the
// "graph:" routing prefix — the tag itself is the routing). Receivers
// convert it to the prefixed Spec form ("graph:" + Graph), which is what
// flows into journals, the cluster session hash, and replay.

import (
	"encoding/binary"
	"fmt"
	"math"

	"treeaa/internal/sim"
)

// TypeSessionOpenGraph is the graph-space session announcement tag.
const TypeSessionOpenGraph byte = 0x18

// SessionOpenGraph announces a new graph-space session from its origin
// daemon to every peer: the full spec a seat needs to build its graph
// machine deterministically.
type SessionOpenGraph struct {
	SID       uint64
	Graph     string // internal/graph spec, e.g. "cliquechain:3:4" (no "graph:" prefix)
	Seed      int64  // graph-spec seed (randomblock); fixed 8-byte encoding
	T         int    // corruption budget the machines are built with
	Inputs    string // graph-label input spec; "" means spread placement
	TTLMillis uint64 // session deadline; 0 means the server default
}

func (m SessionOpenGraph) Size() int {
	return 2 + sim.UvarintLen(m.SID) +
		sim.UvarintLen(uint64(len(m.Graph))) + len(m.Graph) + 8 +
		sim.UvarintLen(uint64(m.T)) +
		sim.UvarintLen(uint64(len(m.Inputs))) + len(m.Inputs) +
		sim.UvarintLen(m.TTLMillis)
}

func appendSessionOpenGraph(dst []byte, m SessionOpenGraph) ([]byte, error) {
	if m.T < 0 || m.T > math.MaxInt32 {
		return nil, fmt.Errorf("wire: session t %d out of range", m.T)
	}
	dst = append(dst, Version, TypeSessionOpenGraph)
	dst = AppendUvarint(dst, m.SID)
	dst, err := appendString(dst, m.Graph)
	if err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Seed))
	dst = AppendUvarint(dst, uint64(m.T))
	if dst, err = appendString(dst, m.Inputs); err != nil {
		return nil, err
	}
	return AppendUvarint(dst, m.TTLMillis), nil
}

func decodeSessionOpenGraph(b []byte) (any, []byte, error) {
	sid, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	graphSpec, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < 8 {
		return nil, nil, malformed("truncated session seed")
	}
	seed := int64(binary.BigEndian.Uint64(b))
	b = b[8:]
	t, b, err := consumeIter(b)
	if err != nil {
		return nil, nil, err
	}
	inputs, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	ttl, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	return SessionOpenGraph{SID: sid, Graph: graphSpec, Seed: seed, T: t,
		Inputs: inputs, TTLMillis: ttl}, b, nil
}
