package wire

// Asynchronous-mode payloads: the two message families the event-driven
// `-mode async` transport carries. Unlike the synchronous leaf payloads,
// which are one-per-protocol, these two cover the whole asynchronous TreeAA
// pipeline — every frame is either a Bracha reliable-broadcast step for a
// real value (AsyncValue) or for a witness report (AsyncReport):
//
//	AsyncValue  0x16  one RBC step (init/echo/ready) of an iteration value:
//	                  phase(1) | kind(1) | uvarint(iter) | u32(src) | f64
//	AsyncReport 0x17  one RBC step of a witness report naming the senders
//	                  whose iteration values the reporter holds:
//	                  phase(1) | kind(1) | uvarint(iter) | u32(src) |
//	                  uvarint(count) | u32 ids, strictly ascending
//
// Phase selects which of the pipeline's two chained RealAA instances the
// frame belongs to (1 = PathsFinder on Euler-list indices, 2 = projection
// on path positions); kind is the Bracha step (1 init, 2 echo, 3 ready);
// src is the original broadcaster, carried because every party broadcasts
// concurrently and echoes/readies travel under the originator's name. Both
// types keep the codec's canonicality contract — minimal varints, strictly
// ascending id lists, Encode(Decode(b)) == b, exact Size() — so the golden
// frame and fuzz harnesses cover them unchanged, and a malformed frame from
// a Byzantine peer is rejected at decode, before any protocol state.
//
// There is deliberately no iteration-window validation beyond iter >= 1:
// asynchrony means arbitrarily old and arbitrarily new iterations are both
// legal on a link at any time. Flood protection lives in the driver's
// delivery budget, not the codec.

import (
	"fmt"
	"math"

	"treeaa/internal/sim"
)

// Async type tags (continuing the overlay tags 0x14–0x15).
const (
	TypeAsyncValue  byte = 0x16
	TypeAsyncReport byte = 0x17
)

// Pipeline phases an async frame can belong to.
const (
	AsyncPhasePathsFinder byte = 1
	AsyncPhaseProjection  byte = 2
)

// Bracha RBC steps (mirroring async.KindInit/KindEcho/KindReady).
const (
	AsyncKindInit  byte = 1
	AsyncKindEcho  byte = 2
	AsyncKindReady byte = 3
)

// AsyncValue is one Bracha step of a reliable value broadcast: party Src's
// iteration-Iter value in the given pipeline phase, at RBC step Kind.
type AsyncValue struct {
	Phase byte
	Kind  byte
	Iter  int
	Src   sim.PartyID
	Val   float64
}

// Size implements sim.Sizer exactly.
func (m AsyncValue) Size() int {
	return 2 + 2 + sim.UvarintLen(uint64(m.Iter)) + 4 + 8
}

// AsyncReport is one Bracha step of a witness-report broadcast: reporter
// Src names the senders whose iteration-Iter values it has RBC-delivered.
// Senders must be strictly ascending — the canonical set encoding.
type AsyncReport struct {
	Phase   byte
	Kind    byte
	Iter    int
	Src     sim.PartyID
	Senders []sim.PartyID
}

// Size implements sim.Sizer exactly.
func (m AsyncReport) Size() int {
	return 2 + 2 + sim.UvarintLen(uint64(m.Iter)) + 4 +
		sim.UvarintLen(uint64(len(m.Senders))) + 4*len(m.Senders)
}

// ---- encoders

func appendAsyncHeader(dst []byte, typ, phase, kind byte, iter int, src sim.PartyID) ([]byte, error) {
	if phase != AsyncPhasePathsFinder && phase != AsyncPhaseProjection {
		return nil, fmt.Errorf("wire: async phase %d out of range", phase)
	}
	if kind < AsyncKindInit || kind > AsyncKindReady {
		return nil, fmt.Errorf("wire: async kind %d out of range", kind)
	}
	if iter < 1 || iter > math.MaxInt32 {
		return nil, fmt.Errorf("wire: async iteration %d out of range", iter)
	}
	dst = append(dst, Version, typ, phase, kind)
	dst = AppendUvarint(dst, uint64(iter))
	return appendID(dst, int(src))
}

func appendAsyncValue(dst []byte, m AsyncValue) ([]byte, error) {
	dst, err := appendAsyncHeader(dst, TypeAsyncValue, m.Phase, m.Kind, m.Iter, m.Src)
	if err != nil {
		return nil, err
	}
	return appendFloat(dst, m.Val), nil
}

func appendAsyncReport(dst []byte, m AsyncReport) ([]byte, error) {
	dst, err := appendAsyncHeader(dst, TypeAsyncReport, m.Phase, m.Kind, m.Iter, m.Src)
	if err != nil {
		return nil, err
	}
	if len(m.Senders) > maxLen {
		return nil, fmt.Errorf("wire: report of %d senders exceeds limit", len(m.Senders))
	}
	dst = AppendUvarint(dst, uint64(len(m.Senders)))
	prev := -1
	for _, p := range m.Senders {
		if int(p) <= prev {
			return nil, fmt.Errorf("wire: report senders not strictly ascending at %d", p)
		}
		prev = int(p)
		if dst, err = appendID(dst, int(p)); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// ---- decoders

func consumeAsyncHeader(b []byte) (phase, kind byte, iter int, src sim.PartyID, rest []byte, err error) {
	if len(b) < 2 {
		return 0, 0, 0, 0, nil, malformed("truncated async header")
	}
	phase, kind, b = b[0], b[1], b[2:]
	if phase != AsyncPhasePathsFinder && phase != AsyncPhaseProjection {
		return 0, 0, 0, 0, nil, malformed("async phase %d out of range", phase)
	}
	if kind < AsyncKindInit || kind > AsyncKindReady {
		return 0, 0, 0, 0, nil, malformed("async kind %d out of range", kind)
	}
	iter, b, err = consumeIter(b)
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	if iter < 1 {
		return 0, 0, 0, 0, nil, malformed("async iteration %d out of range", iter)
	}
	id, b, err := consumeID(b)
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	return phase, kind, iter, sim.PartyID(id), b, nil
}

func decodeAsyncValue(b []byte) (any, []byte, error) {
	phase, kind, iter, src, b, err := consumeAsyncHeader(b)
	if err != nil {
		return nil, nil, err
	}
	val, b, err := consumeFloat(b)
	if err != nil {
		return nil, nil, err
	}
	return AsyncValue{Phase: phase, Kind: kind, Iter: iter, Src: src, Val: val}, b, nil
}

func decodeAsyncReport(b []byte) (any, []byte, error) {
	phase, kind, iter, src, b, err := consumeAsyncHeader(b)
	if err != nil {
		return nil, nil, err
	}
	count, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if count > maxLen || count*4 > uint64(len(b)) {
		return nil, nil, malformed("report sender count %d exceeds buffer", count)
	}
	m := AsyncReport{Phase: phase, Kind: kind, Iter: iter, Src: src}
	if count > 0 {
		m.Senders = make([]sim.PartyID, 0, count)
	}
	prev := -1
	for i := uint64(0); i < count; i++ {
		var id int
		id, b, err = consumeID(b)
		if err != nil {
			return nil, nil, err
		}
		if id <= prev {
			return nil, nil, malformed("report senders not strictly ascending")
		}
		prev = id
		m.Senders = append(m.Senders, sim.PartyID(id))
	}
	return m, b, nil
}
