package wire

// Journal record payloads for the serving layer's write-ahead session
// journal (internal/journal). A daemon appends these to its on-disk log so
// a restart can re-admit every non-terminal session and deterministically
// re-step its engine from the logged inputs. Three types:
//
//	JournalOpen  0x11  a session was admitted on this daemon:
//	                   uvarint(sid) | u32(origin) | tree spec | seed(8,
//	                   big-endian two's complement) | uvarint(t) |
//	                   input spec | uvarint(ttl ms) | deadline(8, unix
//	                   nanoseconds, big-endian two's complement)
//	JournalFrame 0x12  one inbound session-plane frame, exactly as read off
//	                   the peer link:
//	                   u32(from) | uvarint(len) | raw session body
//	JournalSeal  0x13  a session reached a terminal state:
//	                   uvarint(sid) | state(1, terminal: 2–4) | reason
//	                   string | uvarint(latency ns) | flags(1) (bit 0: has
//	                   result) | [uvarint(rounds) | uvarint(msgs) |
//	                   uvarint(bytes) | uvarint(#outputs) | (u32 party |
//	                   u32 vertex)* parties strictly ascending]
//
// JournalFrame nests the raw bytes of exactly one session-plane frame
// (0x08–0x0C); Append and Decode both validate the nested body, and journal
// types are themselves barred from SessionMsg nesting like every other
// non-leaf payload. All three types keep the package's canonicality
// contract — Encode(Decode(b)) == b and an exact Sizer — so the
// golden-frame and fuzz harnesses cover them unchanged. Journal records
// never travel on peer or client links; they live inside CRC-framed journal
// segments (see internal/journal for the on-disk record framing).

import (
	"encoding/binary"
	"fmt"
	"math"

	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// Journal type tags (continuing the client tags 0x0D–0x10).
const (
	TypeJournalOpen  byte = 0x11
	TypeJournalFrame byte = 0x12
	TypeJournalSeal  byte = 0x13
)

// JournalOpen records a session admission: the full spec plus the resolved
// absolute deadline, so recovery re-admits with the remaining TTL instead of
// a fresh one.
type JournalOpen struct {
	SID       uint64
	Origin    sim.PartyID // daemon the session was submitted to
	Tree      string
	Seed      int64
	T         int
	Inputs    string
	TTLMillis uint64 // the resolved TTL (never 0 after admission)
	// DeadlineUnixNano is the admission deadline as absolute unix
	// nanoseconds; fixed 8-byte two's complement encoding like Seed.
	DeadlineUnixNano int64
}

func (m JournalOpen) Size() int {
	return 2 + sim.UvarintLen(m.SID) + 4 +
		sim.UvarintLen(uint64(len(m.Tree))) + len(m.Tree) + 8 +
		sim.UvarintLen(uint64(m.T)) +
		sim.UvarintLen(uint64(len(m.Inputs))) + len(m.Inputs) +
		sim.UvarintLen(m.TTLMillis) + 8
}

// JournalFrame records one inbound session-plane frame verbatim: the wire
// body exactly as the link reader received it, attributed to its
// authenticated peer. Recovery replays these bodies through the same
// handler path the mux feeds, so a restored engine re-steps byte-identically.
type JournalFrame struct {
	From sim.PartyID
	Body []byte // a complete encoded session-plane frame (0x08–0x0C)
}

func (m JournalFrame) Size() int {
	return 2 + 4 + sim.UvarintLen(uint64(len(m.Body))) + len(m.Body)
}

// JournalSeal records a session's terminal transition. Decided sessions on
// their origin daemon carry the assembled result (HasResult true); peer
// seats and failed or expired sessions seal without one.
type JournalSeal struct {
	SID       uint64
	State     byte // a terminal session.State value: 2 decided, 3 failed, 4 expired
	Reason    string
	LatencyNS int64
	HasResult bool
	Rounds    int
	Msgs      int
	Bytes     int
	Outputs   []OutputPair
}

func (m JournalSeal) Size() int {
	sz := 2 + sim.UvarintLen(m.SID) + 1 +
		sim.UvarintLen(uint64(len(m.Reason))) + len(m.Reason) +
		sim.UvarintLen(uint64(m.LatencyNS)) + 1
	if m.HasResult {
		sz += sim.UvarintLen(uint64(m.Rounds)) +
			sim.UvarintLen(uint64(m.Msgs)) + sim.UvarintLen(uint64(m.Bytes)) +
			sim.UvarintLen(uint64(len(m.Outputs))) + 8*len(m.Outputs)
	}
	return sz
}

// minSealState is the smallest terminal session.State (StateDecided).
const minSealState byte = 2

// ---- encoders

func appendJournalOpen(dst []byte, m JournalOpen) ([]byte, error) {
	if m.T < 0 || m.T > math.MaxInt32 {
		return nil, fmt.Errorf("wire: journal open t %d out of range", m.T)
	}
	dst = append(dst, Version, TypeJournalOpen)
	dst = AppendUvarint(dst, m.SID)
	dst, err := appendID(dst, int(m.Origin))
	if err != nil {
		return nil, err
	}
	if dst, err = appendString(dst, m.Tree); err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Seed))
	dst = AppendUvarint(dst, uint64(m.T))
	if dst, err = appendString(dst, m.Inputs); err != nil {
		return nil, err
	}
	dst = AppendUvarint(dst, m.TTLMillis)
	return binary.BigEndian.AppendUint64(dst, uint64(m.DeadlineUnixNano)), nil
}

func appendJournalFrame(dst []byte, m JournalFrame) ([]byte, error) {
	if len(m.Body) > maxLen {
		return nil, fmt.Errorf("wire: journal frame body of %d bytes exceeds limit", len(m.Body))
	}
	if len(m.Body) < 2 || m.Body[1] < TypeSessionMsg || m.Body[1] > TypeSessionDecide {
		return nil, fmt.Errorf("wire: journal frame body must be a session-plane frame")
	}
	dst = append(dst, Version, TypeJournalFrame)
	dst, err := appendID(dst, int(m.From))
	if err != nil {
		return nil, err
	}
	dst = AppendUvarint(dst, uint64(len(m.Body)))
	return append(dst, m.Body...), nil
}

func appendJournalSeal(dst []byte, m JournalSeal) ([]byte, error) {
	if m.State < minSealState || m.State > maxClientState {
		return nil, fmt.Errorf("wire: journal seal state %d is not terminal", m.State)
	}
	if m.LatencyNS < 0 {
		return nil, fmt.Errorf("wire: negative journal seal latency %d", m.LatencyNS)
	}
	dst = append(dst, Version, TypeJournalSeal)
	dst = AppendUvarint(dst, m.SID)
	dst = append(dst, m.State)
	dst, err := appendString(dst, m.Reason)
	if err != nil {
		return nil, err
	}
	dst = AppendUvarint(dst, uint64(m.LatencyNS))
	if !m.HasResult {
		return append(dst, 0), nil
	}
	if m.Rounds < 0 || m.Rounds > math.MaxInt32 {
		return nil, fmt.Errorf("wire: journal seal rounds %d out of range", m.Rounds)
	}
	if m.Msgs < 0 || uint64(m.Msgs) > maxCount || m.Bytes < 0 || uint64(m.Bytes) > maxCount {
		return nil, fmt.Errorf("wire: journal seal counters %d/%d out of range", m.Msgs, m.Bytes)
	}
	dst = append(dst, 1)
	dst = AppendUvarint(dst, uint64(m.Rounds))
	dst = AppendUvarint(dst, uint64(m.Msgs))
	dst = AppendUvarint(dst, uint64(m.Bytes))
	dst = AppendUvarint(dst, uint64(len(m.Outputs)))
	prev := -1
	for _, pair := range m.Outputs {
		if int(pair.Party) <= prev {
			return nil, fmt.Errorf("wire: journal seal outputs not strictly ascending at party %d", pair.Party)
		}
		prev = int(pair.Party)
		if dst, err = appendID(dst, int(pair.Party)); err != nil {
			return nil, err
		}
		if dst, err = appendID(dst, int(pair.V)); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// ---- decoders

func decodeJournalOpen(b []byte) (any, []byte, error) {
	sid, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	origin, b, err := consumeID(b)
	if err != nil {
		return nil, nil, err
	}
	treeSpec, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < 8 {
		return nil, nil, malformed("truncated journal open seed")
	}
	seed := int64(binary.BigEndian.Uint64(b))
	b = b[8:]
	t, b, err := consumeIter(b)
	if err != nil {
		return nil, nil, err
	}
	inputs, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	ttl, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < 8 {
		return nil, nil, malformed("truncated journal open deadline")
	}
	deadline := int64(binary.BigEndian.Uint64(b))
	b = b[8:]
	return JournalOpen{SID: sid, Origin: sim.PartyID(origin), Tree: treeSpec,
		Seed: seed, T: t, Inputs: inputs, TTLMillis: ttl,
		DeadlineUnixNano: deadline}, b, nil
}

func decodeJournalFrame(b []byte) (any, []byte, error) {
	from, b, err := consumeID(b)
	if err != nil {
		return nil, nil, err
	}
	n, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > maxLen || n > uint64(len(b)) {
		return nil, nil, malformed("journal frame body length %d exceeds buffer", n)
	}
	body := append([]byte(nil), b[:n]...)
	b = b[n:]
	// The nested body must itself be a canonical session-plane frame: a
	// journaled frame that would not have survived the link reader must not
	// survive replay either.
	if len(body) < 2 || body[1] < TypeSessionMsg || body[1] > TypeSessionDecide {
		return nil, nil, malformed("journal frame body is not a session-plane frame")
	}
	if _, err := Decode(body); err != nil {
		return nil, nil, fmt.Errorf("%w (nested journal frame body)", err)
	}
	return JournalFrame{From: sim.PartyID(from), Body: body}, b, nil
}

func decodeJournalSeal(b []byte) (any, []byte, error) {
	sid, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < 1 {
		return nil, nil, malformed("truncated journal seal state")
	}
	state := b[0]
	if state < minSealState || state > maxClientState {
		return nil, nil, malformed("journal seal state %d is not terminal", state)
	}
	b = b[1:]
	reason, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	lat, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if lat > uint64(math.MaxInt64) {
		return nil, nil, malformed("journal seal latency %d out of range", lat)
	}
	if len(b) < 1 {
		return nil, nil, malformed("truncated journal seal flags")
	}
	flags := b[0]
	if flags&^byte(0x01) != 0 {
		return nil, nil, malformed("unknown journal seal flags %#x", flags)
	}
	b = b[1:]
	m := JournalSeal{SID: sid, State: state, Reason: reason, LatencyNS: int64(lat)}
	if flags&0x01 == 0 {
		return m, b, nil
	}
	m.HasResult = true
	if m.Rounds, b, err = consumeIter(b); err != nil {
		return nil, nil, err
	}
	if m.Msgs, b, err = consumeCount(b); err != nil {
		return nil, nil, err
	}
	if m.Bytes, b, err = consumeCount(b); err != nil {
		return nil, nil, err
	}
	count, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if count > uint64(MaxIDValue)+1 || 8*count > uint64(len(b)) {
		return nil, nil, malformed("journal seal output count %d exceeds buffer", count)
	}
	prev := -1
	for i := uint64(0); i < count; i++ {
		var party, v int
		if party, b, err = consumeID(b); err != nil {
			return nil, nil, err
		}
		if v, b, err = consumeID(b); err != nil {
			return nil, nil, err
		}
		if party <= prev {
			return nil, nil, malformed("journal seal outputs not strictly ascending at party %d", party)
		}
		prev = party
		m.Outputs = append(m.Outputs, OutputPair{Party: sim.PartyID(party), V: tree.VertexID(v)})
	}
	return m, b, nil
}
