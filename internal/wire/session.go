package wire

// Session-scoped payloads for the serving layer (internal/session): a daemon
// hosts many concurrent TreeAA sessions over one set of peer links, so every
// frame it puts on a link carries the session id it belongs to. The five
// types are
//
//	SessionMsg    0x08  one protocol message inside a session:
//	                    uvarint(sid) | uvarint(round) | nested leaf body
//	SessionEOR    0x09  per-session end-of-round barrier:
//	                    uvarint(sid) | uvarint(round) | flags(1) (bit 0: done)
//	SessionOpen   0x0A  origin announces a new session to its peers:
//	                    uvarint(sid) | tree spec | seed(8, big-endian two's
//	                    complement) | uvarint(t) | input spec | uvarint(ttl ms)
//	SessionAbort  0x0B  terminal failure broadcast (admission rejection,
//	                    deadline eviction, engine error):
//	                    uvarint(sid) | reason string
//	SessionDecide 0x0C  a seat reports its terminal record to the origin:
//	                    uvarint(sid) | u32(party) | u32(vertex) |
//	                    uvarint(done round) | uvarint(term round) |
//	                    uvarint(msgs) | uvarint(bytes)
//
// SessionMsg nests exactly one leaf protocol payload (the seven types this
// codec already speaks); session payloads never nest inside each other, and
// both Append and Decode reject the attempt. All five types keep the
// package's canonicality contract — Encode(Decode(b)) == b and an exact
// Sizer — so the golden-frame and fuzz harnesses cover them unchanged.

import (
	"encoding/binary"
	"fmt"
	"math"

	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// Session type tags (continuing the leaf payload tags 0x01–0x07).
const (
	TypeSessionMsg    byte = 0x08
	TypeSessionEOR    byte = 0x09
	TypeSessionOpen   byte = 0x0A
	TypeSessionAbort  byte = 0x0B
	TypeSessionDecide byte = 0x0C
)

// maxCount bounds the message/byte counters in a SessionDecide: they must
// fit an int64 with room to sum across seats.
const maxCount = uint64(1) << 62

// SessionMsg wraps one leaf protocol payload with the session id and round
// it belongs to. It is the unit the serving mux demultiplexes on.
type SessionMsg struct {
	SID     uint64
	Round   int
	Payload any
}

// Size implements sim.Sizer exactly: the nested payload contributes its own
// wire size, so a session frame costs its header over the leaf encoding.
func (m SessionMsg) Size() int {
	return 2 + sim.UvarintLen(m.SID) + sim.UvarintLen(uint64(m.Round)) + sim.PayloadSize(m.Payload)
}

// SessionEOR is the per-session round barrier: the last frame a seat emits
// for (sid, round), with Done marking its machine as terminated.
type SessionEOR struct {
	SID   uint64
	Round int
	Done  bool
}

func (m SessionEOR) Size() int {
	return 2 + sim.UvarintLen(m.SID) + sim.UvarintLen(uint64(m.Round)) + 1
}

// SessionOpen announces a new session from its origin daemon to every peer:
// the full spec a seat needs to build its machine deterministically.
type SessionOpen struct {
	SID       uint64
	Tree      string // cli.ParseTreeSpec input, e.g. "path:16" or "random:20"
	Seed      int64  // tree-spec seed (random shapes); fixed 8-byte encoding
	T         int    // corruption budget the machines are built with
	Inputs    string // cli.ParseInputs spec; "" means spread placement
	TTLMillis uint64 // session deadline; 0 means the server default
}

func (m SessionOpen) Size() int {
	return 2 + sim.UvarintLen(m.SID) +
		sim.UvarintLen(uint64(len(m.Tree))) + len(m.Tree) + 8 +
		sim.UvarintLen(uint64(m.T)) +
		sim.UvarintLen(uint64(len(m.Inputs))) + len(m.Inputs) +
		sim.UvarintLen(m.TTLMillis)
}

// SessionAbort broadcasts a terminal failure for a session.
type SessionAbort struct {
	SID    uint64
	Reason string
}

func (m SessionAbort) Size() int {
	return 2 + sim.UvarintLen(m.SID) + sim.UvarintLen(uint64(len(m.Reason))) + len(m.Reason)
}

// SessionDecide is a seat's terminal record, sent to the session's origin,
// which assembles the N records into the sim.Run-identical Result.
type SessionDecide struct {
	SID       uint64
	Party     sim.PartyID
	V         tree.VertexID
	DoneRound int // round the machine first produced its output
	TermRound int // round the seat terminated (done + all peers done)
	Msgs      int // messages this seat sent in rounds 1..TermRound
	Bytes     int // payload bytes this seat sent in rounds 1..TermRound
}

func (m SessionDecide) Size() int {
	return 2 + sim.UvarintLen(m.SID) + 8 +
		sim.UvarintLen(uint64(m.DoneRound)) + sim.UvarintLen(uint64(m.TermRound)) +
		sim.UvarintLen(uint64(m.Msgs)) + sim.UvarintLen(uint64(m.Bytes))
}

// ---- encoders

func appendSessionHeader(dst []byte, typ byte, sid uint64, round int) ([]byte, error) {
	if round < 1 || round > math.MaxInt32 {
		return nil, fmt.Errorf("wire: session round %d out of range", round)
	}
	dst = append(dst, Version, typ)
	dst = AppendUvarint(dst, sid)
	return AppendUvarint(dst, uint64(round)), nil
}

func appendSessionMsg(dst []byte, m SessionMsg) ([]byte, error) {
	switch m.Payload.(type) {
	case SessionMsg, SessionEOR, SessionOpen, SessionAbort, SessionDecide,
		SessionOpenGraph,
		ClientSubmit, ClientWait, ClientStatus, ClientOutcome,
		JournalOpen, JournalFrame, JournalSeal, RelayMsg, OverlayEOR:
		return nil, fmt.Errorf("wire: session payloads do not nest (%T)", m.Payload)
	}
	dst, err := appendSessionHeader(dst, TypeSessionMsg, m.SID, m.Round)
	if err != nil {
		return nil, err
	}
	return Append(dst, m.Payload)
}

func appendSessionEOR(dst []byte, m SessionEOR) ([]byte, error) {
	dst, err := appendSessionHeader(dst, TypeSessionEOR, m.SID, m.Round)
	if err != nil {
		return nil, err
	}
	var flags byte
	if m.Done {
		flags |= 0x01
	}
	return append(dst, flags), nil
}

func appendSessionOpen(dst []byte, m SessionOpen) ([]byte, error) {
	if m.T < 0 || m.T > math.MaxInt32 {
		return nil, fmt.Errorf("wire: session t %d out of range", m.T)
	}
	dst = append(dst, Version, TypeSessionOpen)
	dst = AppendUvarint(dst, m.SID)
	dst, err := appendString(dst, m.Tree)
	if err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Seed))
	dst = AppendUvarint(dst, uint64(m.T))
	if dst, err = appendString(dst, m.Inputs); err != nil {
		return nil, err
	}
	return AppendUvarint(dst, m.TTLMillis), nil
}

func appendSessionAbort(dst []byte, m SessionAbort) ([]byte, error) {
	dst = append(dst, Version, TypeSessionAbort)
	dst = AppendUvarint(dst, m.SID)
	return appendString(dst, m.Reason)
}

func appendSessionDecide(dst []byte, m SessionDecide) ([]byte, error) {
	if m.DoneRound < 1 || m.DoneRound > math.MaxInt32 ||
		m.TermRound < 1 || m.TermRound > math.MaxInt32 {
		return nil, fmt.Errorf("wire: decide rounds %d/%d out of range", m.DoneRound, m.TermRound)
	}
	if m.Msgs < 0 || uint64(m.Msgs) > maxCount || m.Bytes < 0 || uint64(m.Bytes) > maxCount {
		return nil, fmt.Errorf("wire: decide counters %d/%d out of range", m.Msgs, m.Bytes)
	}
	dst = append(dst, Version, TypeSessionDecide)
	dst = AppendUvarint(dst, m.SID)
	dst, err := appendID(dst, int(m.Party))
	if err != nil {
		return nil, err
	}
	if dst, err = appendID(dst, int(m.V)); err != nil {
		return nil, err
	}
	dst = AppendUvarint(dst, uint64(m.DoneRound))
	dst = AppendUvarint(dst, uint64(m.TermRound))
	dst = AppendUvarint(dst, uint64(m.Msgs))
	return AppendUvarint(dst, uint64(m.Bytes)), nil
}

// ---- decoders

func consumeSessionRound(b []byte) (int, []byte, error) {
	r, rest, err := ConsumeUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if r == 0 || r > math.MaxInt32 {
		return 0, nil, malformed("session round %d out of range", r)
	}
	return int(r), rest, nil
}

func decodeSessionMsg(b []byte) (any, []byte, error) {
	sid, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	round, b, err := consumeSessionRound(b)
	if err != nil {
		return nil, nil, err
	}
	// The nested body must be a complete leaf frame: Decode consumes the
	// whole remaining buffer and rejects nested session types itself (they
	// would re-enter this switch; the explicit check keeps the error crisp).
	// Client-plane frames (0x0D–0x10), journal records (0x11–0x13) and
	// overlay envelopes (0x14–0x15) and the graph session open (0x18) are
	// likewise barred from peer links (async leaves 0x16–0x17 may nest).
	if len(b) >= 2 && (b[1] >= TypeSessionMsg && b[1] <= TypeOverlayEOR || b[1] == TypeSessionOpenGraph) {
		return nil, nil, malformed("session payloads do not nest")
	}
	payload, err := Decode(b)
	if err != nil {
		return nil, nil, err
	}
	return SessionMsg{SID: sid, Round: round, Payload: payload}, nil, nil
}

func decodeSessionEOR(b []byte) (any, []byte, error) {
	sid, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	round, b, err := consumeSessionRound(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < 1 {
		return nil, nil, malformed("truncated session eor")
	}
	flags := b[0]
	if flags&^byte(0x01) != 0 {
		return nil, nil, malformed("unknown session eor flags %#x", flags)
	}
	return SessionEOR{SID: sid, Round: round, Done: flags&0x01 != 0}, b[1:], nil
}

func decodeSessionOpen(b []byte) (any, []byte, error) {
	sid, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	treeSpec, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < 8 {
		return nil, nil, malformed("truncated session seed")
	}
	seed := int64(binary.BigEndian.Uint64(b))
	b = b[8:]
	t, b, err := consumeIter(b)
	if err != nil {
		return nil, nil, err
	}
	inputs, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	ttl, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	return SessionOpen{SID: sid, Tree: treeSpec, Seed: seed, T: t,
		Inputs: inputs, TTLMillis: ttl}, b, nil
}

func decodeSessionAbort(b []byte) (any, []byte, error) {
	sid, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	reason, b, err := consumeString(b)
	if err != nil {
		return nil, nil, err
	}
	return SessionAbort{SID: sid, Reason: reason}, b, nil
}

func decodeSessionDecide(b []byte) (any, []byte, error) {
	sid, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	party, b, err := consumeID(b)
	if err != nil {
		return nil, nil, err
	}
	v, b, err := consumeID(b)
	if err != nil {
		return nil, nil, err
	}
	doneRound, b, err := consumeSessionRound(b)
	if err != nil {
		return nil, nil, err
	}
	termRound, b, err := consumeSessionRound(b)
	if err != nil {
		return nil, nil, err
	}
	msgs, b, err := consumeCount(b)
	if err != nil {
		return nil, nil, err
	}
	bytesSent, b, err := consumeCount(b)
	if err != nil {
		return nil, nil, err
	}
	return SessionDecide{SID: sid, Party: sim.PartyID(party), V: tree.VertexID(v),
		DoneRound: doneRound, TermRound: termRound, Msgs: msgs, Bytes: bytesSent}, b, nil
}

func consumeCount(b []byte) (int, []byte, error) {
	x, rest, err := ConsumeUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if x > maxCount {
		return 0, nil, malformed("counter %d out of range", x)
	}
	return int(x), rest, nil
}
