package wire

// Golden wire frames: one committed .bin per payload type pins the byte
// format. Any codec change — even one that still round-trips — fails this
// test, so format drift has to be reviewed and shipped deliberately with a
// Version bump:
//
//	go test -run TestGoldenFrames -update ./internal/wire/
//
// The same files seed the FuzzDecode corpus.

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"treeaa/internal/baseline"
	"treeaa/internal/crashaa"
	"treeaa/internal/exactaa"
	"treeaa/internal/gradecast"
	"treeaa/internal/realaa"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

var update = flag.Bool("update", false, "rewrite golden wire frames")

// mustEncode builds a nested golden body; the fixed payloads are known-good.
func mustEncode(p any) []byte {
	b, err := Encode(p)
	if err != nil {
		panic(err)
	}
	return b
}

// goldenDir is the repo-root testdata/wire directory (this package lives at
// internal/wire).
const goldenDir = "../../testdata/wire"

// goldenPayloads fixes one representative frame per payload type. Values
// are chosen to exercise multi-byte varints and non-trivial float bits.
func goldenPayloads() map[string]any {
	return map[string]any{
		"gradecast_send": gradecast.SendMsg{Tag: "treeaa/pf", Iter: 3, Val: 17.5},
		"gradecast_echo": gradecast.EchoMsg{Tag: "treeaa/proj", Iter: 2, Vals: gradecast.CopyVals(map[sim.PartyID]float64{
			0: 1.5, 3: -2.25, 7: 4096, 51: float64(1 << 52),
		})},
		"gradecast_vote": gradecast.VoteMsg{Tag: "treeaa/path", Iter: 200, Vals: gradecast.CopyVals(map[sim.PartyID]float64{
			1: 0, 6: math.Pi,
		})},
		"dlpsw_value":     realaa.DLPSWMsg{Tag: "dlpsw", Iter: 4, Val: -1e9},
		"crash_value":     crashaa.ValueMsg{Tag: "crash", Iter: 7, Val: 0.125},
		"baseline_vertex": baseline.VertexMsg{Tag: "baseline", Iter: 5, V: tree.VertexID(39)},
		"exact_chain": exactaa.ChainMsg{Tag: "exact", Sender: 2, V: 11,
			Signer: []sim.PartyID{2, 0},
			Sigs:   [][]byte{bytes.Repeat([]byte{0xAB}, 64), {0x01, 0x02}},
		},
		"session_msg": SessionMsg{SID: 1<<48 | 42, Round: 3,
			Payload: gradecast.SendMsg{Tag: "treeaa/pf", Iter: 3, Val: 17.5}},
		"session_eor": SessionEOR{SID: 1<<48 | 42, Round: 7, Done: true},
		"session_open": SessionOpen{SID: 2<<48 | 1, Tree: "path:16", Seed: -7,
			T: 2, Inputs: "0,5,10,15", TTLMillis: 30_000},
		"session_open_graph": SessionOpenGraph{SID: 2<<48 | 2, Graph: "cliquechain:3:4",
			Seed: -7, T: 2, Inputs: "v01,v04,v07,v10", TTLMillis: 30_000},
		"session_abort": SessionAbort{SID: 2<<48 | 1, Reason: "deadline exceeded"},
		"session_decide": SessionDecide{SID: 1<<48 | 42, Party: 3, V: 12,
			DoneRound: 5, TermRound: 6, Msgs: 1234, Bytes: 1 << 17},
		"client_submit": ClientSubmit{SID: 3<<48 | 9, Tree: "spider:3:3", Seed: -1,
			T: 1, Inputs: "0,4,8,12", TTLMillis: 120_000, Wait: true},
		"client_wait":   ClientWait{SID: 3<<48 | 9},
		"client_status": ClientStatus{SID: 3<<48 | 9},
		"client_outcome": ClientOutcome{OK: true, SID: 3<<48 | 9, State: 2,
			LatencyNS: 41_250_000, Rounds: 6, Msgs: 1234, Bytes: 1 << 17,
			Outputs: []OutputPair{{Party: 0, V: 4}, {Party: 1, V: 4}, {Party: 3, V: 7}}},
		"journal_open": JournalOpen{SID: 2<<48 | 77, Origin: 1, Tree: "spider:3:3",
			Seed: -3, T: 1, Inputs: "0,4,8,12", TTLMillis: 120_000,
			DeadlineUnixNano: 1_754_000_000_123_456_789},
		"journal_frame": JournalFrame{From: 2, Body: mustEncode(
			SessionEOR{SID: 2<<48 | 77, Round: 4, Done: true})},
		"journal_seal": JournalSeal{SID: 2<<48 | 77, State: 2,
			LatencyNS: 93_000_000, HasResult: true, Rounds: 6, Msgs: 1234, Bytes: 1 << 17,
			Outputs: []OutputPair{{Party: 0, V: 4}, {Party: 2, V: 7}}},
		"relay": RelayMsg{Origin: 5, Dest: sim.Broadcast, Seq: 300, Round: 3,
			Body: mustEncode(gradecast.SendMsg{Tag: "treeaa/pf", Iter: 3, Val: 17.5})},
		"overlay_eor": OverlayEOR{Round: 7, Down: false,
			Arrived: []byte{0xFF, 0x03}, Done: []byte{0x01}},
		"async_value": AsyncValue{Phase: AsyncPhasePathsFinder, Kind: AsyncKindEcho,
			Iter: 3, Src: 5, Val: 17.5},
		"async_report": AsyncReport{Phase: AsyncPhaseProjection, Kind: AsyncKindInit,
			Iter: 200, Src: 2, Senders: []sim.PartyID{0, 2, 3, 6}},
	}
}

func TestGoldenFrames(t *testing.T) {
	if *update {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, p := range goldenPayloads() {
		enc, err := Encode(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		path := filepath.Join(goldenDir, name+".bin")
		if *update {
			if err := os.WriteFile(path, enc, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", path, len(enc))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden frame (regenerate with -update): %v", name, err)
		}
		if !bytes.Equal(enc, want) {
			t.Errorf("%s: wire format drifted (bump Version and regenerate with -update if intentional)\n got %x\nwant %x",
				name, enc, want)
		}
		// The committed frame must also decode back to the fixed payload.
		dec, err := Decode(want)
		if err != nil {
			t.Errorf("%s: golden frame no longer decodes: %v", name, err)
		} else if re, err := Encode(dec); err != nil || !bytes.Equal(re, want) {
			t.Errorf("%s: golden frame not canonical under decode/encode", name)
		}
	}
}
