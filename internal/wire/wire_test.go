package wire

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"treeaa/internal/baseline"
	"treeaa/internal/crashaa"
	"treeaa/internal/exactaa"
	"treeaa/internal/gradecast"
	"treeaa/internal/realaa"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// samplePayloads covers every codec type with representative values,
// including the edge shapes (empty tag, empty map, NaN and ±Inf values,
// zero-length signatures).
func samplePayloads() []any {
	return []any{
		gradecast.SendMsg{Tag: "treeaa/pf", Iter: 3, Val: 17.5},
		gradecast.SendMsg{Tag: "", Iter: 0, Val: math.Inf(-1)},
		gradecast.SendMsg{Tag: "treeaa/pf/acc", Iter: 300, Val: float64(1 << 52)},
		gradecast.EchoMsg{Tag: "treeaa/proj", Iter: 2, Vals: gradecast.CopyVals(map[sim.PartyID]float64{
			0: 1.5, 3: -2.25, 7: 4096, 51: math.NaN(),
		})},
		gradecast.EchoMsg{Tag: "x", Iter: 1, Vals: gradecast.Vec{}},
		gradecast.VoteMsg{Tag: "treeaa/path", Iter: 9, Vals: gradecast.CopyVals(map[sim.PartyID]float64{
			1: 0, 2: math.Copysign(0, -1), 130: 1e-300,
		})},
		realaa.DLPSWMsg{Tag: "dlpsw", Iter: 4, Val: -1e9},
		crashaa.ValueMsg{Tag: "crash", Iter: 7, Val: 0.125},
		baseline.VertexMsg{Tag: "baseline", Iter: 5, V: tree.VertexID(39)},
		exactaa.ChainMsg{Tag: "exact", Sender: 2, V: 11,
			Signer: []sim.PartyID{2, 0, 5},
			Sigs:   [][]byte{bytes.Repeat([]byte{0xAB}, 64), {}, {0x01, 0x02}},
		},
		exactaa.ChainMsg{Tag: "", Sender: 0, V: 0},
		SessionMsg{SID: 1, Round: 1,
			Payload: gradecast.SendMsg{Tag: "treeaa/pf", Iter: 3, Val: 17.5}},
		SessionMsg{SID: 1<<48 | 7, Round: 300,
			Payload: baseline.VertexMsg{Tag: "baseline", Iter: 5, V: 39}},
		SessionEOR{SID: 0, Round: 1, Done: false},
		SessionEOR{SID: math.MaxUint64, Round: 12, Done: true},
		SessionOpen{SID: 9, Tree: "path:16", Seed: -3, T: 2, Inputs: "0,5,10,15", TTLMillis: 30_000},
		SessionOpen{SID: 1, Tree: "random:20", Seed: 1 << 40, T: 0, Inputs: "", TTLMillis: 0},
		SessionOpenGraph{SID: 9, Graph: "cycle:9", Seed: -3, T: 2, Inputs: "v1,v3,v5,v7", TTLMillis: 30_000},
		SessionOpenGraph{SID: 1, Graph: "randomblock:20", Seed: 1 << 40, T: 0, Inputs: "", TTLMillis: 0},
		SessionAbort{SID: 77, Reason: "session capacity reached"},
		SessionAbort{SID: 0, Reason: ""},
		SessionDecide{SID: 5, Party: 3, V: 12, DoneRound: 4, TermRound: 5, Msgs: 1234, Bytes: 1 << 20},
		SessionDecide{SID: 1, Party: 0, V: 0, DoneRound: 1, TermRound: 1, Msgs: 0, Bytes: 0},
		ClientSubmit{SID: 0, Tree: "spider:3:3", Seed: 1, T: 0, Inputs: "0,4,8,12",
			TTLMillis: 120_000, Wait: true},
		ClientSubmit{SID: 3<<48 | 9, Tree: "random:20", Seed: -1 << 40, T: 6,
			Inputs: "", TTLMillis: 0, Wait: false},
		ClientWait{SID: 3<<48 | 9},
		ClientWait{SID: 0},
		ClientStatus{SID: math.MaxUint64},
		ClientOutcome{OK: false, SID: 0, State: ClientStateNone, Err: "unknown session"},
		ClientOutcome{OK: true, SID: 3<<48 | 9, State: 2, LatencyNS: 41_250_000,
			Rounds: 6, Msgs: 1234, Bytes: 1 << 17,
			Outputs: []OutputPair{{Party: 0, V: 4}, {Party: 2, V: 7}}},
		ClientOutcome{OK: true, SID: 1, State: 0},
		JournalOpen{SID: 2<<48 | 77, Origin: 1, Tree: "spider:3:3", Seed: -3, T: 1,
			Inputs: "0,4,8,12", TTLMillis: 120_000, DeadlineUnixNano: 1_754_000_000_123_456_789},
		JournalOpen{SID: 1, Origin: 0, Tree: "path:4", Seed: 0, T: 0,
			Inputs: "", TTLMillis: 0, DeadlineUnixNano: -1},
		JournalFrame{From: 2, Body: mustEncode(SessionEOR{SID: 2<<48 | 77, Round: 4, Done: true})},
		JournalFrame{From: 0, Body: mustEncode(SessionMsg{SID: 9, Round: 1,
			Payload: gradecast.SendMsg{Tag: "treeaa/pf", Iter: 3, Val: 17.5}})},
		JournalFrame{From: 1, Body: mustEncode(SessionDecide{SID: 5, Party: 1, V: 12,
			DoneRound: 4, TermRound: 5, Msgs: 1234, Bytes: 1 << 20})},
		JournalSeal{SID: 2<<48 | 77, State: 2, LatencyNS: 93_000_000, HasResult: true,
			Rounds: 6, Msgs: 1234, Bytes: 1 << 17,
			Outputs: []OutputPair{{Party: 0, V: 4}, {Party: 2, V: 7}}},
		JournalSeal{SID: 3, State: 3, Reason: "deadline exceeded", LatencyNS: 0},
		JournalSeal{SID: 4, State: 4, Reason: "daemon shutting down", LatencyNS: 1},
		RelayMsg{Origin: 5, Dest: sim.Broadcast, Seq: 300, Round: 3,
			Body: mustEncode(gradecast.SendMsg{Tag: "treeaa/pf", Iter: 3, Val: 17.5})},
		RelayMsg{Origin: 0, Dest: 511, Seq: 1, Round: 1,
			Body: mustEncode(gradecast.EchoMsg{Tag: "t", Iter: 1,
				Vals: gradecast.Vec{{ID: 2, Val: -0.5}}})},
		OverlayEOR{Round: 7, Down: false, Arrived: []byte{0xFF, 0x03}, Done: []byte{0x01}},
		OverlayEOR{Round: 1, Down: true, Done: []byte{0x0F}},
		OverlayEOR{Round: 2, Down: true},
	}
}

// equalPayload compares payloads treating NaN map values as equal when
// their bit patterns match (reflect.DeepEqual treats NaN != NaN).
func equalPayload(a, b any) bool {
	switch av := a.(type) {
	case gradecast.EchoMsg:
		bv, ok := b.(gradecast.EchoMsg)
		return ok && av.Tag == bv.Tag && av.Iter == bv.Iter && equalVals(av.Vals, bv.Vals)
	case gradecast.VoteMsg:
		bv, ok := b.(gradecast.VoteMsg)
		return ok && av.Tag == bv.Tag && av.Iter == bv.Iter && equalVals(av.Vals, bv.Vals)
	default:
		return reflect.DeepEqual(a, b)
	}
}

func equalVals(a, b gradecast.Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i, av := range a {
		if b[i].ID != av.ID || math.Float64bits(av.Val) != math.Float64bits(b[i].Val) {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	for _, p := range samplePayloads() {
		enc, err := Encode(p)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", p, err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(%#v)): %v", p, err)
		}
		if !equalPayload(p, normalizeEmpty(dec, p)) {
			t.Errorf("round trip changed payload:\n in: %#v\nout: %#v", p, dec)
		}
		re, err := Encode(dec)
		if err != nil {
			t.Fatalf("re-Encode: %v", err)
		}
		if !bytes.Equal(enc, re) {
			t.Errorf("encoding not canonical for %#v", p)
		}
	}
}

// normalizeEmpty maps decoded nil/empty collections onto the original's
// empty form: the codec cannot (and need not) distinguish nil from empty.
func normalizeEmpty(dec, orig any) any {
	switch d := dec.(type) {
	case gradecast.EchoMsg:
		if o, ok := orig.(gradecast.EchoMsg); ok && len(d.Vals) == 0 && len(o.Vals) == 0 {
			d.Vals = o.Vals
			return d
		}
	case exactaa.ChainMsg:
		if o, ok := orig.(exactaa.ChainMsg); ok {
			if len(d.Signer) == 0 && len(o.Signer) == 0 {
				d.Signer = o.Signer
			}
			if len(d.Sigs) == 0 && len(o.Sigs) == 0 {
				d.Sigs = o.Sigs
			}
			for i := range d.Sigs {
				if len(d.Sigs[i]) == 0 && i < len(o.Sigs) && len(o.Sigs[i]) == 0 {
					d.Sigs[i] = o.Sigs[i]
				}
			}
			return d
		}
	}
	return dec
}

// TestSizerMatchesEncoding pins the three size quantities to each other for
// every payload type: the type's sim.Sizer arithmetic, EncodedSize, and the
// actual encoded length. The protocol packages cannot import wire (wire
// imports them), so their Size() methods mirror the codec by hand — this
// test is what keeps the mirrors honest.
func TestSizerMatchesEncoding(t *testing.T) {
	check := func(p any) {
		t.Helper()
		enc, err := Encode(p)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", p, err)
		}
		want := p.(sim.Sizer).Size()
		if len(enc) != want {
			t.Errorf("%T: Size() = %d, encoded length = %d", p, want, len(enc))
		}
		if sz, err := EncodedSize(p); err != nil || sz != len(enc) {
			t.Errorf("%T: EncodedSize = %d (%v), encoded length = %d", p, sz, err, len(enc))
		}
	}
	for _, p := range samplePayloads() {
		check(p)
	}
	// Randomized shapes: long tags (multi-byte length prefix), large
	// iteration counts and map sizes.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		tag := strings.Repeat("t", rng.Intn(300))
		iter := rng.Intn(1 << 16)
		vals := make(map[sim.PartyID]float64)
		for j := rng.Intn(200); j > 0; j-- {
			vals[sim.PartyID(rng.Intn(1<<20))] = rng.NormFloat64()
		}
		vec := gradecast.CopyVals(vals)
		check(gradecast.SendMsg{Tag: tag, Iter: iter, Val: rng.NormFloat64()})
		check(gradecast.EchoMsg{Tag: tag, Iter: iter, Vals: vec})
		check(gradecast.VoteMsg{Tag: tag, Iter: iter, Vals: vec})
		check(realaa.DLPSWMsg{Tag: tag, Iter: iter, Val: rng.NormFloat64()})
		check(crashaa.ValueMsg{Tag: tag, Iter: iter, Val: rng.NormFloat64()})
		check(baseline.VertexMsg{Tag: tag, Iter: iter, V: tree.VertexID(rng.Intn(1 << 20))})
		sigs := make([][]byte, rng.Intn(5))
		signers := make([]sim.PartyID, len(sigs))
		for j := range sigs {
			sigs[j] = make([]byte, rng.Intn(200))
			signers[j] = sim.PartyID(rng.Intn(1 << 10))
		}
		check(exactaa.ChainMsg{Tag: tag, Sender: sim.PartyID(rng.Intn(1 << 10)),
			V: tree.VertexID(rng.Intn(1 << 10)), Signer: signers, Sigs: sigs})
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid, err := Encode(gradecast.EchoMsg{Tag: "t", Iter: 1,
		Vals: gradecast.Vec{{ID: 1, Val: 1}, {ID: 2, Val: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             {},
		"header only":       {Version},
		"bad version":       {99, TypeGradecastSend},
		"unknown type":      {Version, 0x7F},
		"truncated body":    valid[:len(valid)-3],
		"trailing bytes":    append(append([]byte{}, valid...), 0),
		"huge string":       {Version, TypeGradecastSend, 0xFF, 0xFF, 0xFF, 0xFF, 0x07},
		"huge vec count":    {Version, TypeGradecastEcho, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0x07},
		"nonminimal varint": {Version, TypeGradecastSend, 0x80, 0x00},
	}
	// Unsorted map keys: swap the two 12-byte entries of the valid frame.
	unsorted := append([]byte{}, valid...)
	entries := unsorted[len(unsorted)-24:]
	swapped := append(append([]byte{}, entries[12:]...), entries[:12]...)
	copy(entries, swapped)
	cases["unsorted keys"] = unsorted
	// Duplicate keys: make both entries key 1.
	dup := append([]byte{}, valid...)
	copy(dup[len(dup)-12:len(dup)-8], dup[len(dup)-24:len(dup)-20])
	cases["duplicate keys"] = dup

	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted %x", name, b)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	cases := []any{
		struct{ X int }{1}, // unknown type
		gradecast.SendMsg{Tag: "t", Iter: -1},
		gradecast.EchoMsg{Tag: "t", Iter: 1, Vals: gradecast.Vec{{ID: -1, Val: 0}}},
		gradecast.EchoMsg{Tag: "t", Iter: 1, // unsorted Vec is not canonical
			Vals: gradecast.Vec{{ID: 2, Val: 0}, {ID: 1, Val: 0}}},
		baseline.VertexMsg{Tag: "t", Iter: 1, V: -2},
		exactaa.ChainMsg{Tag: "t", Sender: -1},
		SessionMsg{SID: 1, Round: 0, Payload: gradecast.SendMsg{Tag: "t"}},
		SessionMsg{SID: 1, Round: 1, Payload: SessionAbort{SID: 1}}, // no nesting
		SessionMsg{SID: 1, Round: 1, Payload: nil},
		SessionEOR{SID: 1, Round: -1},
		SessionOpen{SID: 1, Tree: "path:4", T: -1},
		SessionOpenGraph{SID: 1, Graph: "cycle:4", T: -1},
		SessionMsg{SID: 1, Round: 1, Payload: SessionOpenGraph{SID: 1, Graph: "cycle:4"}}, // no nesting
		SessionDecide{SID: 1, Party: -1, DoneRound: 1, TermRound: 1},
		SessionDecide{SID: 1, Party: 0, DoneRound: 0, TermRound: 1},
		SessionDecide{SID: 1, Party: 0, DoneRound: 1, TermRound: 1, Msgs: -1},
		SessionMsg{SID: 1, Round: 1, Payload: ClientWait{SID: 1}}, // no client nesting
		ClientSubmit{SID: 1, Tree: "path:4", T: -1},
		ClientOutcome{OK: true, SID: 1, State: 5},
		ClientOutcome{OK: true, SID: 1, State: 0, LatencyNS: -1},
		ClientOutcome{OK: true, SID: 1, State: 0, Rounds: -1},
		ClientOutcome{OK: true, SID: 1, State: 0, Msgs: -1},
		ClientOutcome{OK: true, SID: 1, State: 0,
			Outputs: []OutputPair{{Party: 2, V: 1}, {Party: 2, V: 1}}}, // not ascending
		ClientOutcome{OK: true, SID: 1, State: 0,
			Outputs: []OutputPair{{Party: -1, V: 1}}},
		JournalOpen{SID: 1, Origin: -1, Tree: "path:4"},
		JournalOpen{SID: 1, Origin: 0, Tree: "path:4", T: -1},
		JournalFrame{From: 0, Body: nil},                                     // empty body is not a session frame
		JournalFrame{From: 0, Body: mustEncode(gradecast.SendMsg{Tag: "t"})}, // leaf, not session-plane
		JournalFrame{From: 0, Body: mustEncode(ClientWait{SID: 1})},          // client plane barred
		SessionMsg{SID: 1, Round: 1, Payload: JournalSeal{SID: 1, State: 2}}, // no journal nesting
		JournalSeal{SID: 1, State: 0},                                        // not terminal
		JournalSeal{SID: 1, State: 5},                                        // out of range
		JournalSeal{SID: 1, State: 2, LatencyNS: -1},
		JournalSeal{SID: 1, State: 2, HasResult: true, Rounds: -1},
		JournalSeal{SID: 1, State: 2, HasResult: true, Msgs: -1},
		JournalSeal{SID: 1, State: 2, HasResult: true,
			Outputs: []OutputPair{{Party: 2, V: 1}, {Party: 2, V: 1}}}, // not ascending
		RelayMsg{Origin: 0, Dest: 1, Seq: 0, Round: 1, // seq must be positive
			Body: mustEncode(gradecast.SendMsg{Tag: "t"})},
		RelayMsg{Origin: 0, Dest: -2, Seq: 1, Round: 1, // dest below Broadcast
			Body: mustEncode(gradecast.SendMsg{Tag: "t"})},
		RelayMsg{Origin: 0, Dest: 1, Seq: 1, Round: 0, // round must be positive
			Body: mustEncode(gradecast.SendMsg{Tag: "t"})},
		RelayMsg{Origin: 0, Dest: 1, Seq: 1, Round: 1, Body: nil}, // empty body
		RelayMsg{Origin: 0, Dest: 1, Seq: 1, Round: 1, // non-leaf body barred
			Body: mustEncode(SessionEOR{SID: 1, Round: 1})},
		OverlayEOR{Round: 0, Done: []byte{0x01}},                    // round 0
		OverlayEOR{Round: 1, Arrived: []byte{0x01, 0x00}},           // trailing zero
		OverlayEOR{Round: 1, Down: true, Arrived: []byte{0x01}},     // down w/ arrived
		OverlayEOR{Round: 1, Done: []byte{0x00}},                    // zero byte
		SessionMsg{SID: 1, Round: 1, Payload: OverlayEOR{Round: 1}}, // no nesting
		JournalFrame{From: 0, Body: mustEncode(OverlayEOR{Round: 1, Down: true})},
	}
	for _, p := range cases {
		if enc, err := Encode(p); err == nil {
			t.Errorf("Encode(%#v) accepted: %x", p, enc)
		}
	}
}

// TestPayloadSizeAgreement: the sim accounting helper charges exactly the
// encoded length for codec payloads, so in-process Result.Bytes equals the
// bytes a TCP execution puts on the wire.
func TestPayloadSizeAgreement(t *testing.T) {
	for _, p := range samplePayloads() {
		enc, err := Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := sim.PayloadSize(p); got != len(enc) {
			t.Errorf("%T: sim.PayloadSize = %d, wire length = %d", p, got, len(enc))
		}
	}
}
