package wire

// Overlay payloads for the communication-tree transport (internal/overlay):
// instead of a full mesh, parties connect along a deterministic three-level
// tree and flood protocol traffic along its edges. Two types:
//
//	Relay      0x14  flooded relay envelope around one leaf protocol body:
//	                 u32(origin) | uvarint(dest+1) | uvarint(seq) |
//	                 uvarint(round) | uvarint(len) | body
//	OverlayEOR 0x15  aggregated end-of-round control frame:
//	                 uvarint(round) | flags(1) (bit 0: down) |
//	                 uvarint(len) arrived-bitmap | uvarint(len) done-bitmap
//
// A Relay's dest is encoded shifted by one so that sim.Broadcast (-1) has a
// canonical representation (0). The body must be a leaf protocol frame
// (types 0x01–0x07): relays forward the envelope bytes verbatim without
// decoding the body, so the codec validates only the nested header here and
// the delivering node decodes (and thereby fully validates) the body.
// Canonicality of the envelope itself is preserved — the body bytes are
// copied untouched in both directions, so Encode(Decode(b)) == b holds.
//
// OverlayEOR bitmaps are little-endian party sets (party p is bit p%8 of
// byte p/8) with a canonical minimal length: the last byte must be nonzero,
// and the empty set is the empty byte string. Up frames (flags bit 0 clear)
// carry a node's cumulative arrived/done knowledge toward the root; down
// frames carry the root's release for the round, with the arrived bitmap
// empty and the done bitmap naming the parties whose machines terminated.

import (
	"fmt"
	"math"

	"treeaa/internal/sim"
)

// Overlay type tags (continuing the journal tags 0x11–0x13).
const (
	TypeRelay      byte = 0x14
	TypeOverlayEOR byte = 0x15
)

// RelayMsg is the flooded overlay envelope: origin's seq'th protocol
// message of the run, addressed to Dest (sim.Broadcast for everyone),
// carrying one encoded leaf protocol frame.
type RelayMsg struct {
	Origin sim.PartyID
	Dest   sim.PartyID // sim.Broadcast or a concrete party
	Seq    uint64      // per-origin, strictly increasing from 1
	Round  int
	Body   []byte // one canonical leaf frame (version | 0x01–0x07 | ...)
}

// Size implements sim.Sizer with the exact encoded length.
func (m RelayMsg) Size() int {
	return 2 + 4 + sim.UvarintLen(uint64(int64(m.Dest)+1)) + sim.UvarintLen(m.Seq) +
		sim.UvarintLen(uint64(m.Round)) + sim.UvarintLen(uint64(len(m.Body))) + len(m.Body)
}

// OverlayEOR is the aggregated round barrier of the tree overlay.
type OverlayEOR struct {
	Round   int
	Down    bool   // root's release (true) vs child's cumulative report
	Arrived []byte // parties whose round traffic is accounted for (up only)
	Done    []byte // parties whose machines have terminated
}

// Size implements sim.Sizer with the exact encoded length.
func (m OverlayEOR) Size() int {
	return 2 + sim.UvarintLen(uint64(m.Round)) + 1 +
		sim.UvarintLen(uint64(len(m.Arrived))) + len(m.Arrived) +
		sim.UvarintLen(uint64(len(m.Done))) + len(m.Done)
}

// checkRelayBody validates the nested frame header of a relay body: a leaf
// protocol frame of this codec's version. Full structural validation is the
// delivering node's Decode of the body; relays never pay it.
func checkRelayBody(body []byte) error {
	if len(body) > maxLen {
		return fmt.Errorf("wire: relay body of %d bytes exceeds limit", len(body))
	}
	if len(body) < 2 || body[0] != Version || body[1] < TypeGradecastSend || body[1] > TypeExactChain {
		return fmt.Errorf("wire: relay body is not a leaf protocol frame")
	}
	return nil
}

func appendRelay(dst []byte, m RelayMsg) ([]byte, error) {
	if err := checkRelayBody(m.Body); err != nil {
		return nil, err
	}
	if m.Dest < sim.Broadcast || int(m.Dest) > MaxIDValue {
		return nil, fmt.Errorf("wire: relay dest %d out of range", m.Dest)
	}
	if m.Seq == 0 {
		return nil, fmt.Errorf("wire: relay seq must be positive")
	}
	if m.Round < 1 || m.Round > math.MaxInt32 {
		return nil, fmt.Errorf("wire: relay round %d out of range", m.Round)
	}
	dst = append(dst, Version, TypeRelay)
	dst, err := appendID(dst, int(m.Origin))
	if err != nil {
		return nil, err
	}
	dst = AppendUvarint(dst, uint64(int64(m.Dest)+1))
	dst = AppendUvarint(dst, m.Seq)
	dst = AppendUvarint(dst, uint64(m.Round))
	dst = AppendUvarint(dst, uint64(len(m.Body)))
	return append(dst, m.Body...), nil
}

func decodeRelay(b []byte) (any, []byte, error) {
	origin, b, err := consumeID(b)
	if err != nil {
		return nil, nil, err
	}
	destPlus, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if destPlus > MaxIDValue+1 {
		return nil, nil, malformed("relay dest %d out of range", destPlus)
	}
	seq, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if seq == 0 {
		return nil, nil, malformed("relay seq must be positive")
	}
	round, b, err := consumeSessionRound(b)
	if err != nil {
		return nil, nil, err
	}
	blen, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if blen > maxLen || blen > uint64(len(b)) {
		return nil, nil, malformed("relay body length %d exceeds buffer", blen)
	}
	body := append([]byte(nil), b[:blen]...)
	if err := checkRelayBody(body); err != nil {
		return nil, nil, malformed("%v", err)
	}
	return RelayMsg{Origin: sim.PartyID(origin), Dest: sim.PartyID(int64(destPlus) - 1),
		Seq: seq, Round: round, Body: body}, b[blen:], nil
}

// checkBitmap enforces the canonical minimal bitmap form.
func checkBitmap(name string, bm []byte) error {
	if len(bm) > maxLen {
		return fmt.Errorf("wire: %s bitmap of %d bytes exceeds limit", name, len(bm))
	}
	if n := len(bm); n > 0 && bm[n-1] == 0 {
		return fmt.Errorf("wire: %s bitmap has trailing zero byte", name)
	}
	return nil
}

func appendOverlayEOR(dst []byte, m OverlayEOR) ([]byte, error) {
	if m.Round < 1 || m.Round > math.MaxInt32 {
		return nil, fmt.Errorf("wire: overlay eor round %d out of range", m.Round)
	}
	if err := checkBitmap("arrived", m.Arrived); err != nil {
		return nil, err
	}
	if err := checkBitmap("done", m.Done); err != nil {
		return nil, err
	}
	if m.Down && len(m.Arrived) != 0 {
		return nil, fmt.Errorf("wire: down eor carries no arrived bitmap")
	}
	dst = append(dst, Version, TypeOverlayEOR)
	dst = AppendUvarint(dst, uint64(m.Round))
	var flags byte
	if m.Down {
		flags |= 0x01
	}
	dst = append(dst, flags)
	dst = AppendUvarint(dst, uint64(len(m.Arrived)))
	dst = append(dst, m.Arrived...)
	dst = AppendUvarint(dst, uint64(len(m.Done)))
	return append(dst, m.Done...), nil
}

func decodeOverlayEOR(b []byte) (any, []byte, error) {
	round, b, err := consumeSessionRound(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < 1 {
		return nil, nil, malformed("truncated overlay eor")
	}
	flags := b[0]
	if flags&^byte(0x01) != 0 {
		return nil, nil, malformed("unknown overlay eor flags %#x", flags)
	}
	b = b[1:]
	arrived, b, err := consumeBitmap(b)
	if err != nil {
		return nil, nil, err
	}
	done, b, err := consumeBitmap(b)
	if err != nil {
		return nil, nil, err
	}
	m := OverlayEOR{Round: round, Down: flags&0x01 != 0, Arrived: arrived, Done: done}
	if m.Down && len(m.Arrived) != 0 {
		return nil, nil, malformed("down eor carries an arrived bitmap")
	}
	return m, b, nil
}

func consumeBitmap(b []byte) ([]byte, []byte, error) {
	n, b, err := ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > maxLen || n > uint64(len(b)) {
		return nil, nil, malformed("bitmap length %d exceeds buffer", n)
	}
	if n == 0 {
		return nil, b, nil
	}
	bm := append([]byte(nil), b[:n]...)
	if bm[n-1] == 0 {
		return nil, nil, malformed("bitmap has trailing zero byte")
	}
	return bm, b[n:], nil
}
