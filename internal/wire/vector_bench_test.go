package wire

import (
	"testing"

	"treeaa/internal/gradecast"
	"treeaa/internal/sim"
)

// bigEchoFrame is an n=64 echo vector, the shape that dominates the serving
// hot path (engine.apply decodes one per inbound vector frame).
func bigEchoFrame(tb testing.TB, n int) []byte {
	tb.Helper()
	vals := make(map[sim.PartyID]float64, n)
	for i := 0; i < n; i++ {
		vals[sim.PartyID(i)] = float64(i) * 1.5
	}
	enc, err := Encode(gradecast.EchoMsg{Tag: "treeaa/pf", Iter: 3, Vals: gradecast.CopyVals(vals)})
	if err != nil {
		tb.Fatal(err)
	}
	return enc
}

// TestDecodeVectorAllocs pins the decode cost of a vector payload: one flat
// exact-size Vec, the tag string, and the interface box — three allocations,
// independent of entry count. The map-based decoder this replaced allocated
// the hmap plus a bucket chain per message (~34% of serve-path allocations);
// this assertion is the regression gate that keeps it dead.
func TestDecodeVectorAllocs(t *testing.T) {
	frame := bigEchoFrame(t, 64)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := Decode(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Fatalf("Decode(echo[64]) = %.1f allocs/op, want <= 3 (flat Vec + tag + box)", allocs)
	}
}

func BenchmarkDecodeVector(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		frame := bigEchoFrame(b, n)
		b.Run(map[int]string{8: "n8", 64: "n64", 256: "n256"}[n], func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(frame)))
			for i := 0; i < b.N; i++ {
				if _, err := Decode(frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
