// Package pathsfinder implements the paper's PathsFinder subprotocol
// (Section 6): it lets the honest parties *approximately* agree on a path
// that intersects their inputs' convex hull — avoiding the t+1-round cost of
// exact Byzantine Agreement on a path.
//
// Each party deterministically flattens the rooted input tree into the DFS
// visit list L (tree.ListConstruction), joins RealAA(1) with the first index
// of its input vertex in L, and returns the path from the root to
// L_closestInt(j). Lemma 4 gives the two guarantees TreeAA needs:
//
//  1. every returned path intersects the honest inputs' convex hull
//     (via Lemma 3: all of [i_min, i_max] maps to root paths through the
//     lowest common ancestor of the extreme honest list entries);
//  2. the returned paths are all equal, except that some may extend the
//     others by exactly one trailing edge (RealAA's outputs are 1-close, and
//     consecutive list entries are adjacent vertices).
package pathsfinder

import (
	"fmt"

	"treeaa/internal/realaa"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// Rounds returns R_PathsFinder for a tree with list length |L|: the paper
// uses R_RealAA(2·|V(T)|, 1); the list indices span [1, |L|] with
// |L| <= 2|V|, so this budget is always sufficient.
func Rounds(t *tree.Tree) int {
	return realaa.Rounds(float64(2*t.NumVertices()), 1)
}

// Iterations is Rounds expressed in 3-round RealAA iterations.
func Iterations(t *tree.Tree) int {
	return realaa.Iterations(float64(2*t.NumVertices()), 1)
}

// Config parameterizes a Machine.
type Config struct {
	// Tree is the input space; Root must be the commonly agreed root
	// (TreeAA uses the lowest-label vertex, tree.Tree.Root).
	Tree *tree.Tree
	Root tree.VertexID
	// N, T, ID are the party parameters (T < N/3).
	N, T int
	ID   sim.PartyID
	// Input is the party's input vertex.
	Input tree.VertexID
	// Tag disambiguates concurrent executions; defaults to "pathsfinder".
	Tag string
	// StartRound is the global starting round (default 1).
	StartRound int
}

// Machine is one party's PathsFinder execution. Its output is the path
// P(root, L_closestInt(j)) as a []tree.VertexID beginning at the root.
type Machine struct {
	cfg  Config
	list *tree.EulerList
	real *realaa.Machine
	out  []tree.VertexID
	done bool
}

var _ sim.Machine = (*Machine)(nil)

// NewMachine validates cfg, computes the shared list representation and
// prepares the inner RealAA(1) execution with input min L(v_IN).
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Tree == nil {
		return nil, fmt.Errorf("pathsfinder: nil tree")
	}
	if !cfg.Tree.Valid(cfg.Input) {
		return nil, fmt.Errorf("pathsfinder: invalid input vertex %d", int(cfg.Input))
	}
	if cfg.Tag == "" {
		cfg.Tag = "pathsfinder"
	}
	if cfg.StartRound == 0 {
		cfg.StartRound = 1
	}
	list, err := tree.ListConstruction(cfg.Tree, cfg.Root)
	if err != nil {
		return nil, fmt.Errorf("pathsfinder: %w", err)
	}
	real, err := realaa.NewMachine(realaa.Config{
		N: cfg.N, T: cfg.T, ID: cfg.ID, Tag: cfg.Tag,
		Iterations: Iterations(cfg.Tree),
		StartRound: cfg.StartRound,
		Input:      float64(list.FirstIndex(cfg.Input)),
	})
	if err != nil {
		return nil, fmt.Errorf("pathsfinder: %w", err)
	}
	return &Machine{cfg: cfg, list: list, real: real}, nil
}

// List exposes the shared list representation (for TreeAA and tests).
func (m *Machine) List() *tree.EulerList { return m.list }

// RealAA exposes the inner RealAA execution for invariant probes (history,
// suspicion and exclusion sets); treat it as read-only.
func (m *Machine) RealAA() *realaa.Machine { return m.real }

// ClampIndex decodes a RealAA output j to a valid list index. Remark 1 keeps
// closestInt(j) within the range of honest indices, hence within [1, |L|];
// the clamping to the list ends is defensive only, and exported so that
// tests can exercise the out-of-range decode directly.
func ClampIndex(list *tree.EulerList, j float64) int {
	idx := realaa.ClosestInt(j)
	if idx < 1 {
		idx = 1
	}
	if idx > list.Len() {
		idx = list.Len()
	}
	return idx
}

// Step implements sim.Machine.
func (m *Machine) Step(r int, inbox []sim.Message) []sim.Message {
	if m.done {
		return nil
	}
	out := m.real.Step(r, inbox)
	if j, ok := m.real.Output(); ok {
		idx := ClampIndex(m.list, j.(float64))
		p, err := m.list.PathFromRoot(idx)
		if err != nil {
			// Unreachable after clamping; fall back to the root itself so
			// the machine still terminates.
			p = []tree.VertexID{m.cfg.Root}
		}
		m.out = p
		m.done = true
	}
	return out
}

// Output implements sim.Machine; the value is a []tree.VertexID path from
// the root.
func (m *Machine) Output() (any, bool) {
	if !m.done {
		return nil, false
	}
	return m.out, true
}

// Run executes PathsFinder for all parties and returns the honest parties'
// paths.
func Run(t *tree.Tree, root tree.VertexID, n, tc int, inputs []tree.VertexID, adv sim.Adversary) (map[sim.PartyID][]tree.VertexID, error) {
	if len(inputs) != n {
		return nil, fmt.Errorf("pathsfinder: %d inputs for n = %d", len(inputs), n)
	}
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		m, err := NewMachine(Config{Tree: t, Root: root, N: n, T: tc, ID: sim.PartyID(i), Input: inputs[i]})
		if err != nil {
			return nil, err
		}
		machines[i] = m
	}
	res, err := sim.Run(sim.Config{N: n, MaxCorrupt: tc, MaxRounds: Rounds(t) + 2, Adversary: adv}, machines)
	if err != nil {
		return nil, err
	}
	out := make(map[sim.PartyID][]tree.VertexID, len(res.Outputs))
	for p, v := range res.Outputs {
		out[p] = v.([]tree.VertexID)
	}
	return out, nil
}
