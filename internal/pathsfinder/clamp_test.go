package pathsfinder

import (
	"testing"

	"treeaa/internal/tree"
)

// TestClampIndexEdges drives the list-index decode directly with
// out-of-range RealAA outputs: values past either end of the Euler list
// clamp to that end instead of indexing out of bounds.
func TestClampIndexEdges(t *testing.T) {
	tr := tree.NewStar(5)
	list, err := tree.ListConstruction(tr, tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	last := list.Len()
	for _, tc := range []struct {
		name string
		j    float64
		want int
	}{
		{"interior", 2.0, 2},
		{"rounds up", 2.5, 3},
		{"rounds down", 2.49, 2},
		{"first in range", 1.0, 1},
		{"below the range", 0.49, 1},
		{"far below the range", -10, 1},
		{"last in range", float64(last) + 0.49, last},
		{"past the end", float64(last) + 0.5, last},
		{"far past the end", 1e9, last},
	} {
		if got := ClampIndex(list, tc.j); got != tc.want {
			t.Errorf("%s: ClampIndex(list, %v) = %d, want %d", tc.name, tc.j, got, tc.want)
		}
	}
}

// TestClampIndexSingleVertexList: a one-vertex tree's list absorbs every
// decode to index 1.
func TestClampIndexSingleVertexList(t *testing.T) {
	tr := tree.NewPath(1)
	list, err := tree.ListConstruction(tr, tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []float64{1, 0, -5, 2, 100} {
		if got := ClampIndex(list, j); got != 1 {
			t.Errorf("ClampIndex(list, %v) = %d, want 1", j, got)
		}
	}
}

// TestPathsFinderSingleEdgeTree: on a two-vertex tree every honest path is
// anchored at the root and the Lemma 4 trailing-edge bound still holds.
func TestPathsFinderSingleEdgeTree(t *testing.T) {
	tr := tree.NewPath(2)
	inputs := []tree.VertexID{0, 1, 0, 1}
	paths, err := Run(tr, tr.Root(), 4, 1, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkLemma4(t, tr, inputs, nil, paths)
}
