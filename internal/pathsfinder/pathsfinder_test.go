package pathsfinder

import (
	"math/rand"
	"testing"

	"treeaa/internal/adversary"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// checkLemma4 asserts the two PathsFinder guarantees over the honest paths:
// each intersects the honest inputs' hull, and all paths are equal up to one
// trailing edge.
func checkLemma4(t *testing.T, tr *tree.Tree, inputs []tree.VertexID, corrupt map[sim.PartyID]bool, paths map[sim.PartyID][]tree.VertexID) {
	t.Helper()
	var honestIn []tree.VertexID
	for i, v := range inputs {
		if !corrupt[sim.PartyID(i)] {
			honestIn = append(honestIn, v)
		}
	}
	hull := make(map[tree.VertexID]bool)
	for _, v := range tr.ConvexHull(honestIn) {
		hull[v] = true
	}
	var honestPaths [][]tree.VertexID
	for p, path := range paths {
		if corrupt[p] {
			continue
		}
		if err := tr.ValidatePath(path); err != nil {
			t.Fatalf("party %d: invalid path %v: %v", p, tr.Labels(path), err)
		}
		if path[0] != tr.Root() {
			t.Errorf("party %d: path does not start at the root", p)
		}
		hit := false
		for _, v := range path {
			if hull[v] {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("party %d: path %s misses the hull", p, tr.RenderPath(path))
		}
		honestPaths = append(honestPaths, path)
	}
	// Property 2: pairwise, one path is a prefix of the other with length
	// difference at most 1.
	for i := range honestPaths {
		for j := i + 1; j < len(honestPaths); j++ {
			a, b := honestPaths[i], honestPaths[j]
			if len(a) > len(b) {
				a, b = b, a
			}
			if len(b)-len(a) > 1 {
				t.Errorf("paths differ by more than one edge:\n  %s\n  %s",
					tr.RenderPath(honestPaths[i]), tr.RenderPath(honestPaths[j]))
				continue
			}
			for k := range a {
				if a[k] != b[k] {
					t.Errorf("paths are not prefix-compatible at position %d:\n  %s\n  %s",
						k, tr.RenderPath(honestPaths[i]), tr.RenderPath(honestPaths[j]))
					break
				}
			}
		}
	}
}

func TestPathsFinderHonestFigure3(t *testing.T) {
	tr := tree.Figure3Tree()
	inputs := []tree.VertexID{
		tr.MustVertex("v3"), tr.MustVertex("v6"), tr.MustVertex("v5"), tr.MustVertex("v6"),
	}
	paths, err := Run(tr, tr.Root(), 4, 1, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("got %d paths", len(paths))
	}
	checkLemma4(t, tr, inputs, nil, paths)
}

func TestPathsFinderSingleVertexTree(t *testing.T) {
	tr := tree.NewPath(1)
	inputs := []tree.VertexID{0, 0, 0, 0}
	paths, err := Run(tr, tr.Root(), 4, 1, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for p, path := range paths {
		if len(path) != 1 || path[0] != 0 {
			t.Errorf("party %d path = %v, want [root]", p, path)
		}
	}
}

func TestPathsFinderUnderEquivocation(t *testing.T) {
	tr := tree.NewSpider(3, 10)
	n, tc := 7, 2
	inputs := make([]tree.VertexID, n)
	for i := range inputs {
		inputs[i] = tree.VertexID((i * 5) % tr.NumVertices())
	}
	ids := adversary.FirstParties(n, tc)
	corrupt := map[sim.PartyID]bool{ids[0]: true, ids[1]: true}
	adv := &adversary.GradecastEquivocator{IDs: ids, N: n, Tag: "pathsfinder", Lo: -100, Hi: 1000}
	paths, err := Run(tr, tr.Root(), n, tc, inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	checkLemma4(t, tr, inputs, corrupt, paths)
}

func TestPathsFinderUnderSplitVote(t *testing.T) {
	tr := tree.NewCaterpillar(12, 2)
	n, tc := 7, 2
	inputs := make([]tree.VertexID, n)
	for i := range inputs {
		inputs[i] = tree.VertexID((i * 7) % tr.NumVertices())
	}
	ids := adversary.FirstParties(n, tc)
	corrupt := map[sim.PartyID]bool{ids[0]: true, ids[1]: true}
	adv := &adversary.SplitVote{IDs: ids, N: n, T: tc, Tag: "pathsfinder", PerIteration: 1}
	paths, err := Run(tr, tr.Root(), n, tc, inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	checkLemma4(t, tr, inputs, corrupt, paths)
}

func TestPathsFinderRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		tr := tree.RandomPruefer(2+rng.Intn(40), rng)
		n := 4 + rng.Intn(6)
		tc := (n - 1) / 3
		inputs := make([]tree.VertexID, n)
		for i := range inputs {
			inputs[i] = tree.VertexID(rng.Intn(tr.NumVertices()))
		}
		ids := adversary.FirstParties(n, tc)
		corrupt := make(map[sim.PartyID]bool)
		for _, id := range ids {
			corrupt[id] = true
		}
		adv := &adversary.RandomNoise{IDs: ids, N: n, Tag: "pathsfinder", Seed: int64(trial), MaxVal: 2 * tr.NumVertices()}
		paths, err := Run(tr, tr.Root(), n, tc, inputs, adv)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkLemma4(t, tr, inputs, corrupt, paths)
	}
}

func TestPathsFinderRoundBudget(t *testing.T) {
	tr := tree.NewPath(50)
	if Rounds(tr) != 3*Iterations(tr) {
		t.Errorf("Rounds = %d, want 3*Iterations = %d", Rounds(tr), 3*Iterations(tr))
	}
	if Iterations(tr) <= 0 {
		t.Errorf("Iterations = %d, want > 0", Iterations(tr))
	}
}

func TestNewMachineErrors(t *testing.T) {
	tr := tree.Figure3Tree()
	base := Config{Tree: tr, Root: tr.Root(), N: 4, T: 1, ID: 0, Input: 0}
	if _, err := NewMachine(base); err != nil {
		t.Fatalf("base: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.Tree = nil },
		func(c *Config) { c.Root = 99 },
		func(c *Config) { c.Input = 99 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.T = 2 },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if _, err := NewMachine(c); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func TestRunInputMismatch(t *testing.T) {
	tr := tree.Figure3Tree()
	if _, err := Run(tr, tr.Root(), 3, 0, []tree.VertexID{0}, nil); err == nil {
		t.Error("want error for input count mismatch")
	}
}

func TestMachineListAccessor(t *testing.T) {
	tr := tree.Figure3Tree()
	m, err := NewMachine(Config{Tree: tr, Root: tr.Root(), N: 4, T: 1, ID: 0, Input: 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.List() == nil || m.List().Len() != 15 {
		t.Errorf("List() length = %v, want 15", m.List().Len())
	}
}
