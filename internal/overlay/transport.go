package overlay

import (
	"fmt"

	"treeaa/internal/sim"
	"treeaa/internal/transport"
)

// Tree is the communication-tree substrate as a transport.Transport: the
// -transport flag accepts "tree" (automatic branching) or "tree:<b>" next
// to mem and tcp, and Run hands off to Cluster.
type Tree struct {
	Opts Options
}

// Name implements transport.Transport.
func (t Tree) Name() string {
	if t.Opts.Branching > 0 {
		return fmt.Sprintf("tree:%d", t.Opts.Branching)
	}
	return "tree"
}

// Run implements transport.Transport.
func (t Tree) Run(cfg sim.Config, machines []sim.Machine) (*sim.Result, error) {
	return Cluster(cfg, machines, t.Opts)
}

func init() {
	transport.Register("tree", func(spec string) (transport.Transport, error) {
		branching, err := ParseSpec(spec)
		if err != nil {
			return nil, err
		}
		return Tree{Opts: Options{Branching: branching}}, nil
	})
}
