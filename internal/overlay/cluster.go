package overlay

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"treeaa/internal/sim"
	"treeaa/internal/transport"
)

// Cluster executes machines over the communication tree: one TCP node per
// party on 127.0.0.1 loopback, connected along the Layout's edges instead
// of a full mesh. For any configuration it accepts, its Result — outputs,
// rounds, message and byte counts, trace — is byte-for-byte the Result of
// sim.Run on the same inputs; the equivalence tests pin that. Message and
// byte counts are logical (counted at the emitting party per recipient,
// exactly as the engine counts), independent of how many physical relay
// hops the overlay spent; the physical side lands in Options.Wire/Stats.
//
// Adversaries are rejected outright: a rushing observer must see every
// honest round-r message before choosing its own, and only the mesh (or the
// in-process engine) grants that global view — a tree would have to route
// all traffic through the observer's position. Per-party rate limits and
// tamper hooks need a global arbiter and are rejected for the same reason
// as in the tcp transport.
func Cluster(cfg sim.Config, machines []sim.Machine, opts Options) (*sim.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(machines) != cfg.N {
		return nil, fmt.Errorf("sim: %d machines for N = %d", len(machines), cfg.N)
	}
	if cfg.Adversary != nil {
		return nil, fmt.Errorf("overlay: a rushing adversary observes all honest traffic before sending; " +
			"only the full mesh grants that view — use the tcp transport or the in-process engine")
	}
	if cfg.MaxMessagesPerParty != 0 {
		return nil, fmt.Errorf("overlay: MaxMessagesPerParty requires a global rate arbiter; " +
			"the tree overlay has none — use the in-process transport")
	}
	if cfg.Tamper != nil {
		return nil, fmt.Errorf("overlay: the delivery-seam tamper hook requires a global arbiter " +
			"between send and delivery; the tree overlay has none — use the in-process transport")
	}
	opts = opts.withDefaults()
	lay, err := NewLayout(cfg.N, opts.Branching)
	if err != nil {
		return nil, err
	}
	for p, r := range opts.CrashPlan {
		if p < 0 || int(p) >= cfg.N {
			return nil, fmt.Errorf("overlay: crash plan names party %d, out of range [0, %d)", p, cfg.N)
		}
		if r <= 0 {
			return nil, fmt.Errorf("overlay: crash plan round %d for party %d, want > 0", r, p)
		}
		if opts.Restart == nil {
			return nil, fmt.Errorf("overlay: crash plan requires Options.Restart to rebuild machines")
		}
	}

	// Bind every interior party's listener first: leaves dial as soon as
	// they start, and a bind failure should abort before goroutines exist.
	// Leaves accept nothing, which is the whole point — only root and
	// sub-leaders pay a listen socket.
	addrs := make([]string, cfg.N)
	listeners := make(map[sim.PartyID]net.Listener, lay.Subleaders+1)
	for p := sim.PartyID(0); int(p) < cfg.N; p++ {
		if !lay.Interior(p) {
			continue
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners {
				l.Close()
			}
			return nil, fmt.Errorf("overlay: binding party %d: %w", p, err)
		}
		listeners[p] = ln
		addrs[p] = ln.Addr().String()
	}
	session := newSession()

	// Seat every party's first incarnation before any goroutine runs: the
	// accept hosts route inbound hellos through the holders, and with one
	// core scheduling hundreds of goroutines a leaf can easily dial before
	// its parent's supervisor ever ran — an unseated holder would bounce
	// the join.
	holders := make([]*holder, cfg.N)
	for p := sim.PartyID(0); int(p) < cfg.N; p++ {
		hold := &holder{}
		holders[p] = hold
		nd := newNode(p, lay, machines[p], cfg.MaxRounds, session, addrs, opts)
		nd.crashRound = opts.CrashPlan[p]
		hold.set(nd)
	}
	var hosts []*host
	outCh := make(chan outcome, cfg.N)
	for p := sim.PartyID(0); int(p) < cfg.N; p++ {
		if ln, ok := listeners[p]; ok {
			h := newHost(p, ln, lay, session, opts, holders[p])
			hosts = append(hosts, h)
			go h.loop()
		}
		go func(p sim.PartyID) {
			res, err := supervise(holders[p].get(), holders[p])
			outCh <- outcome{id: p, res: res, err: err}
		}(p)
	}
	defer func() {
		for _, h := range hosts {
			h.close()
		}
		for _, hold := range holders {
			if nd := hold.get(); nd != nil {
				nd.shutdown(false)
			}
		}
	}()

	var (
		nodes []outcome
		errs  []error
	)
	for i := 0; i < cfg.N; i++ {
		out := <-outCh
		nodes = append(nodes, out)
		if out.err != nil {
			errs = append(errs, out.err)
			// Unblock peers stuck on the failed party's barrier bits.
			for _, hold := range holders {
				if nd := hold.get(); nd != nil {
					nd.shutdown(false)
				}
			}
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return merge(cfg, nodes)
}

type outcome struct {
	id  sim.PartyID
	res *nodeResult
	err error
}

// holder tracks a party's current node incarnation so the cluster can abort
// it and the accept host can route inbound handshakes to it.
type holder struct {
	mu sync.Mutex
	nd *node
}

func (h *holder) set(nd *node) { h.mu.Lock(); h.nd = nd; h.mu.Unlock() }

func (h *holder) get() *node {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nd
}

// supervise runs one party from its pre-seated first incarnation,
// restarting it across injected crashes. The restarted incarnation starts
// blank — fresh machine, zero watermarks, no scheduled crash — and
// recovers entirely through the handshake replay; only its last
// incarnation's accounting reaches the merge, mirroring what the engine
// counts for a party that was "always up".
func supervise(nd *node, hold *holder) (*nodeResult, error) {
	for {
		res, err := nd.run()
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, errCrashed) {
			return nil, err
		}
		m, rerr := nd.opts.Restart(nd.id)
		if rerr != nil {
			return nil, fmt.Errorf("overlay: restarting party %d: %w", nd.id, rerr)
		}
		nd = newNode(nd.id, nd.lay, m, nd.maxRounds, nd.session, nd.addrs, nd.opts)
		hold.set(nd)
	}
}

// host owns an interior party's listener across incarnations: it validates
// inbound hellos off the main loop and hands good ones to whichever node
// currently holds the seat. A dead seat (crashed, restarting) just closes
// the connection — the dialer's retry loop carries the child until the
// restarted node is back.
type host struct {
	owner   sim.PartyID
	ln      net.Listener
	lay     Layout
	session uint64
	opts    Options
	hold    *holder
}

func newHost(owner sim.PartyID, ln net.Listener, lay Layout, session uint64,
	opts Options, hold *holder) *host {
	return &host{owner: owner, ln: ln, lay: lay, session: session, opts: opts, hold: hold}
}

func (h *host) loop() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		go h.handshake(conn)
	}
}

func (h *host) handshake(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(h.opts.SetupTimeout))
	br := bufio.NewReaderSize(conn, 64<<10)
	body, err := transport.ReadFrame(br)
	if err != nil {
		conn.Close()
		return
	}
	h.opts.Wire.AddRecv(len(body))
	hel, err := parseHello(body)
	if err != nil {
		conn.Close()
		return
	}
	if hel.session != h.session || hel.to != h.owner || hel.n != h.lay.N ||
		hel.branch != h.lay.Branching || hel.from == h.owner ||
		hel.from < 0 || int(hel.from) >= h.lay.N {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	nd := h.hold.get()
	if nd == nil || nd.closed() {
		conn.Close()
		return
	}
	nd.enqueue(levent{hs: &inbound{conn: conn, br: br, h: hel}})
}

func (h *host) close() { h.ln.Close() }

// newSession draws a random session id; hellos carrying another session are
// rejected, so two clusters on one machine can never cross-connect even if
// ports are recycled between runs.
func newSession() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// A fixed session only weakens stray-connection detection, not
		// correctness.
		return 0x7472656561610002
	}
	return binary.BigEndian.Uint64(b[:])
}

// merge folds the per-party results into the sim.Result the engine would
// have produced, checking that every party observed the same termination
// round — they must, since all decide from the same release bitmaps, so a
// mismatch is an overlay bug, not a protocol property.
func merge(cfg sim.Config, nodes []outcome) (*sim.Result, error) {
	res := &sim.Result{
		Outputs:   make(map[sim.PartyID]any, len(nodes)),
		Corrupted: make(map[sim.PartyID]bool),
	}
	term := 0
	for _, out := range nodes {
		if term == 0 {
			term = out.res.termRound
		} else if out.res.termRound != term {
			return nil, fmt.Errorf("overlay: party %d terminated at round %d, others at %d",
				out.id, out.res.termRound, term)
		}
	}
	res.Rounds = term

	msgs := make([]int, term+1)
	bytes := make([]int, term+1)
	doneAt := make(map[int][]sim.PartyID)
	for _, out := range nodes {
		for i := 0; i < term && i < len(out.res.msgs); i++ {
			msgs[i+1] += out.res.msgs[i]
			bytes[i+1] += out.res.bytes[i]
		}
		res.Outputs[out.id] = out.res.output
		doneAt[out.res.doneRound] = append(doneAt[out.res.doneRound], out.id)
	}
	for r := 1; r <= term; r++ {
		res.Messages += msgs[r]
		res.Bytes += bytes[r]
	}
	if cfg.Trace != nil {
		for r := 1; r <= term; r++ {
			newlyDone := doneAt[r]
			sort.Slice(newlyDone, func(i, j int) bool { return newlyDone[i] < newlyDone[j] })
			cfg.Trace.Rounds = append(cfg.Trace.Rounds, sim.TraceRound{
				Round: r, Messages: msgs[r], Bytes: bytes[r], NewlyDone: newlyDone,
			})
		}
	}
	return res, nil
}
