package overlay

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"treeaa/internal/sim"
	"treeaa/internal/transport"
	"treeaa/internal/wire"
)

// errCrashed is the internal signal a supervised node returns when its
// CrashPlan round fires; the cluster supervisor catches it and restarts the
// party.
var errCrashed = errors.New("overlay: injected crash")

// levent is one item of a node's merged event stream: a decoded payload
// frame with its raw bytes (kept for verbatim forwarding), an inbound
// handshake, or a link failure.
type levent struct {
	l   *link
	pay any
	raw []byte
	hs  *inbound
	err error
}

// inbound is a validated child handshake handed to the main loop, which
// owns registration and replay.
type inbound struct {
	conn net.Conn
	br   *bufio.Reader
	h    hello
}

// retFrame is one retained relay envelope, kept for handshake replay.
type retFrame struct {
	seq   uint64
	round int
	env   []byte
}

// upState is one round's cumulative barrier knowledge: the merged
// arrived/done bitmaps and the counts at the last up-frame sent, so growth
// (and only growth) propagates toward the root.
type upState struct {
	arrived, done     bitset
	sentArr, sentDone int
}

// nodeResult is one party's share of a sim.Result, mirroring the mesh
// transport's per-node accounting exactly.
type nodeResult struct {
	id        sim.PartyID
	output    any
	done      bool
	doneRound int
	termRound int
	msgs      []int
	bytes     []int
}

// mailbox is the per-round, per-sender message store; inbox reconstructs
// the engine's delivery order (ascending sender, emission order within).
type mailbox struct {
	n    int
	mail map[int]map[sim.PartyID][]sim.Message
}

func newMailbox(n int) *mailbox {
	return &mailbox{n: n, mail: make(map[int]map[sim.PartyID][]sim.Message)}
}

func (s *mailbox) add(m sim.Message) {
	box := s.mail[m.Round]
	if box == nil {
		box = make(map[sim.PartyID][]sim.Message, s.n)
		s.mail[m.Round] = box
	}
	box[m.From] = append(box[m.From], m)
}

func (s *mailbox) inbox(r int) []sim.Message {
	box := s.mail[r]
	if len(box) == 0 {
		return nil
	}
	total := 0
	for _, ms := range box {
		total += len(ms)
	}
	out := make([]sim.Message, 0, total)
	for p := sim.PartyID(0); int(p) < s.n; p++ {
		out = append(out, box[p]...)
	}
	return out
}

func (s *mailbox) drop(r int) { delete(s.mail, r) }

// node runs one party over the tree overlay.
type node struct {
	id         sim.PartyID
	n          int
	lay        Layout
	machine    sim.Machine
	maxRounds  int
	crashRound int
	session    uint64
	addrs      []string
	opts       Options

	events    chan levent
	quit      chan struct{}
	closeOnce sync.Once

	links    map[sim.PartyID]*link
	parent   *link
	parentID sim.PartyID

	sendSeq  uint64
	have     []uint64
	retained [][]retFrame
	st       *mailbox
	ups      map[int]*upState
	downs    map[int]bitset
	lastDown int

	res nodeResult
}

func newNode(id sim.PartyID, lay Layout, machine sim.Machine, maxRounds int,
	session uint64, addrs []string, opts Options) *node {
	return &node{
		id: id, n: lay.N, lay: lay, machine: machine, maxRounds: maxRounds,
		session: session, addrs: addrs, opts: opts,
		events:   make(chan levent, 8*lay.N+64),
		quit:     make(chan struct{}),
		links:    make(map[sim.PartyID]*link, lay.MaxDegree()),
		parentID: lay.Parent(id),
		have:     make([]uint64, lay.N),
		retained: make([][]retFrame, lay.N),
		st:       newMailbox(lay.N),
		ups:      make(map[int]*upState),
		downs:    make(map[int]bitset),
		res:      nodeResult{id: id},
	}
}

func (nd *node) enqueue(ev levent) {
	select {
	case nd.events <- ev:
	case <-nd.quit:
		if ev.hs != nil {
			ev.hs.conn.Close()
		}
	}
}

func (nd *node) closed() bool {
	select {
	case <-nd.quit:
		return true
	default:
		return false
	}
}

// hasDown reports whether the round-r release has been recorded. Presence
// in the map is the signal — the stored bitmap itself is nil when no party
// had terminated by round r.
func (nd *node) hasDown(r int) bool {
	_, ok := nd.downs[r]
	return ok
}

// run executes the party in lock step:
//
//	step → flood relays → report up → await release → decide
//
// The release for round r is the root's down frame, which link FIFO
// guarantees arrives behind every round-r envelope — so the round-r mailbox
// is complete at the barrier, exactly the mesh transport's invariant.
func (nd *node) run() (*nodeResult, error) {
	defer nd.shutdown(false)
	if nd.parentID >= 0 {
		if err := nd.connectParent(time.Now().Add(nd.opts.SetupTimeout)); err != nil {
			return nil, fmt.Errorf("overlay: party %d joining: %w", nd.id, err)
		}
	}
	for r := 1; r <= nd.maxRounds; r++ {
		roundStart := time.Now()
		out := nd.machine.Step(r, nd.st.inbox(r-1))
		nd.st.drop(r - 1)
		if !nd.res.done {
			if v, ok := nd.machine.Output(); ok {
				nd.res.output, nd.res.done, nd.res.doneRound = v, true, r
			}
		}
		if err := nd.floodRound(r, out); err != nil {
			return nil, err
		}
		if r == nd.crashRound {
			// Injected crash: die mid-round, relays out (possibly partially
			// flushed), the barrier report never sent. The subtree re-homes;
			// the supervisor restarts us.
			nd.crash()
			return nil, fmt.Errorf("%w: party %d at round %d", errCrashed, nd.id, r)
		}
		nd.markSelf(r)
		if err := nd.awaitDown(r); err != nil {
			return nil, err
		}
		nd.opts.Stats.AddRoundLatency(time.Since(roundStart))
		if nd.res.done && nd.downs[r].full(nd.n) {
			nd.res.termRound = r
			nd.shutdown(true)
			return &nd.res, nil
		}
		nd.prune()
	}
	return nil, fmt.Errorf("%w: party %d after %d rounds", sim.ErrNotDone, nd.id, nd.maxRounds)
}

// floodRound encodes the machine's round-r sends, counts them exactly as
// the engine does (per recipient, at send), self-delivers, and floods one
// relay envelope per emitted message along every live link.
func (nd *node) floodRound(r int, out []sim.Message) error {
	roundMsgs, roundBytes := 0, 0
	for _, raw := range out {
		if raw.To != sim.Broadcast && (raw.To < 0 || int(raw.To) >= nd.n) {
			return fmt.Errorf("overlay: party %d: recipient %d out of range [0, %d)", nd.id, raw.To, nd.n)
		}
		body, err := wire.Encode(raw.Payload)
		if err != nil {
			return fmt.Errorf("overlay: party %d round %d: %w", nd.id, r, err)
		}
		first, last := raw.To, raw.To
		if raw.To == sim.Broadcast {
			first, last = 0, sim.PartyID(nd.n-1)
		}
		for to := first; to <= last; to++ {
			roundMsgs++
			roundBytes += len(body)
			if to == nd.id {
				nd.st.add(sim.Message{From: nd.id, To: to, Round: r, Payload: raw.Payload})
			}
		}
		if raw.To != nd.id {
			// At least one remote recipient: originate an envelope. A pure
			// self-send never touches the wire, as in the mesh.
			nd.sendSeq++
			env, err := wire.Encode(wire.RelayMsg{Origin: nd.id, Dest: raw.To,
				Seq: nd.sendSeq, Round: r, Body: body})
			if err != nil {
				return fmt.Errorf("overlay: party %d round %d: %w", nd.id, r, err)
			}
			nd.have[nd.id] = nd.sendSeq
			nd.retained[nd.id] = append(nd.retained[nd.id], retFrame{seq: nd.sendSeq, round: r, env: env})
			for _, l := range nd.links {
				l.send(env)
				nd.opts.Stats.Relayed.Add(1)
				nd.opts.Stats.RelayBytes.Add(int64(len(env)))
			}
		}
	}
	nd.res.msgs = append(nd.res.msgs, roundMsgs)
	nd.res.bytes = append(nd.res.bytes, roundBytes)
	return nil
}

func (nd *node) up(r int) *upState {
	u := nd.ups[r]
	if u == nil {
		u = &upState{}
		nd.ups[r] = u
	}
	return u
}

// markSelf records this node's own barrier contribution for round r and
// propagates it. The bit is set only after floodRound queued every round-r
// envelope, so on every link the bit travels behind the frames it vouches
// for — the FIFO invariant the root's release depends on.
func (nd *node) markSelf(r int) {
	u := nd.up(r)
	u.arrived.set(nd.id)
	if nd.res.done {
		u.done.set(nd.id)
	}
	nd.propagate(r)
}

func (nd *node) propagate(r int) {
	if nd.id == Root {
		nd.checkRelease(r)
		return
	}
	nd.maybeUp(r)
}

// maybeUp sends the cumulative up-report for round r to the parent when it
// grew since the last send. Cumulative bitmaps make resends idempotent —
// the re-home path resends them wholesale.
func (nd *node) maybeUp(r int) {
	if nd.parent == nil {
		return // re-homing; the handshake replay will resend
	}
	u := nd.up(r)
	na, ndn := u.arrived.count(), u.done.count()
	if na <= u.sentArr && ndn <= u.sentDone {
		return
	}
	env, err := wire.Encode(wire.OverlayEOR{Round: r, Arrived: u.arrived.clone(), Done: u.done.clone()})
	if err != nil {
		return // unreachable: bitmaps are canonical by construction
	}
	u.sentArr, u.sentDone = na, ndn
	nd.parent.send(env)
	nd.opts.Stats.EORUp.Add(1)
}

// checkRelease (root only) floods the round-r release once every party's
// arrived bit is in. At that moment the root has accepted — and therefore
// already forwarded — every round-r envelope, so the release follows them
// down every link.
func (nd *node) checkRelease(r int) {
	u := nd.up(r)
	if nd.hasDown(r) || !u.arrived.full(nd.n) {
		return
	}
	done := bitset(u.done.clone())
	nd.downs[r] = done
	if r > nd.lastDown {
		nd.lastDown = r
	}
	env, err := wire.Encode(wire.OverlayEOR{Round: r, Down: true, Done: done.clone()})
	if err != nil {
		return // unreachable
	}
	for _, l := range nd.links {
		l.send(env)
		nd.opts.Stats.EORDown.Add(1)
	}
}

// awaitDown consumes events until the round-r release arrives (or, at the
// root, is produced). A leaf whose sub-leader goes silent for
// FailoverTimeout abandons it mid-wait.
func (nd *node) awaitDown(r int) error {
	deadline := time.NewTimer(nd.opts.RoundTimeout)
	defer deadline.Stop()
	fo := time.NewTimer(nd.opts.FailoverTimeout)
	defer fo.Stop()
	lastParent := time.Now()
	for !nd.hasDown(r) {
		select {
		case ev := <-nd.events:
			if ev.err == nil && ev.l != nil && ev.l == nd.parent {
				lastParent = time.Now()
			}
			if err := nd.handle(ev); err != nil {
				return err
			}
		case <-fo.C:
			idle := time.Since(lastParent)
			if nd.parent != nil && nd.lay.IsSubleader(nd.parentID) && idle >= nd.opts.FailoverTimeout {
				stalled := nd.parent
				stalled.close()
				delete(nd.links, nd.parentID)
				nd.parent = nil
				if err := nd.rehome(fmt.Errorf("parent %d silent for %v at barrier %d", nd.parentID, idle, r)); err != nil {
					return err
				}
				lastParent = time.Now()
				fo.Reset(nd.opts.FailoverTimeout)
			} else if wait := nd.opts.FailoverTimeout - idle; wait > 0 {
				fo.Reset(wait)
			} else {
				fo.Reset(nd.opts.FailoverTimeout)
			}
		case <-deadline.C:
			return fmt.Errorf("overlay: party %d: round %d barrier timed out after %v", nd.id, r, nd.opts.RoundTimeout)
		case <-nd.quit:
			return fmt.Errorf("overlay: party %d: node closed while waiting on round %d", nd.id, r)
		}
	}
	return nil
}

func (nd *node) handle(ev levent) error {
	switch {
	case ev.hs != nil:
		return nd.acceptChild(ev.hs)
	case ev.err != nil:
		return nd.linkDown(ev.l, ev.err)
	}
	switch m := ev.pay.(type) {
	case wire.RelayMsg:
		return nd.onRelay(ev.l, m, ev.raw)
	case wire.OverlayEOR:
		return nd.onEOR(ev.l, m)
	default:
		return fmt.Errorf("overlay: party %d: unexpected %T frame from party %d", nd.id, ev.pay, ev.l.peer)
	}
}

// onRelay is the flood step: accept exactly the next sequence per origin,
// deliver when addressed, forward everywhere but the arrival link. The
// strict watermark makes duplicates (re-homed paths, restart re-floods)
// vanish at first contact and turns a genuine gap into a loud failure — on
// FIFO links with handshake replay, gaps can only mean a protocol bug.
func (nd *node) onRelay(l *link, m wire.RelayMsg, raw []byte) error {
	o := m.Origin
	if o < 0 || int(o) >= nd.n {
		return fmt.Errorf("overlay: party %d: relay origin %d out of range", nd.id, o)
	}
	if o == nd.id {
		// Our own envelope reflected by a handshake replay; we regenerate
		// these deterministically, so the copy is redundant.
		nd.opts.Stats.DedupDropped.Add(1)
		return nil
	}
	switch {
	case m.Seq <= nd.have[o]:
		nd.opts.Stats.DedupDropped.Add(1)
		return nil
	case m.Seq > nd.have[o]+1:
		return fmt.Errorf("overlay: party %d: gap in origin %d relays: got seq %d, have %d",
			nd.id, o, m.Seq, nd.have[o])
	}
	nd.have[o] = m.Seq
	nd.retained[o] = append(nd.retained[o], retFrame{seq: m.Seq, round: m.Round, env: raw})
	nd.opts.Stats.Delivered.Add(1)
	if m.Dest == sim.Broadcast || m.Dest == nd.id {
		pay, err := wire.Decode(m.Body)
		if err != nil {
			return fmt.Errorf("overlay: party %d: relay body from origin %d: %w", nd.id, o, err)
		}
		nd.st.add(sim.Message{From: o, To: nd.id, Round: m.Round, Payload: pay})
	}
	for _, l2 := range nd.links {
		if l2 != l {
			l2.send(raw)
			nd.opts.Stats.Relayed.Add(1)
			nd.opts.Stats.RelayBytes.Add(int64(len(raw)))
		}
	}
	return nil
}

func (nd *node) onEOR(l *link, m wire.OverlayEOR) error {
	if m.Down {
		if l != nd.parent {
			return fmt.Errorf("overlay: party %d: release frame from non-parent party %d", nd.id, l.peer)
		}
		return nd.onDown(m.Round, m.Done)
	}
	if l == nd.parent {
		return fmt.Errorf("overlay: party %d: up frame from parent %d", nd.id, l.peer)
	}
	u := nd.up(m.Round)
	ga := u.arrived.merge(m.Arrived)
	gd := u.done.merge(m.Done)
	if ga || gd {
		nd.propagate(m.Round)
	}
	return nil
}

// onDown records a release and forwards it to the subtree. First receipt
// only: replays may re-deliver a known release, and the subtree already has
// those.
func (nd *node) onDown(r int, done []byte) error {
	if nd.hasDown(r) {
		return nil
	}
	nd.downs[r] = bitset(done).clone()
	if r > nd.lastDown {
		nd.lastDown = r
	}
	env, err := wire.Encode(wire.OverlayEOR{Round: r, Down: true, Done: bitset(done).clone()})
	if err != nil {
		return fmt.Errorf("overlay: party %d: re-encoding release %d: %w", nd.id, r, err)
	}
	for _, l := range nd.links {
		if l != nd.parent {
			l.send(env)
			nd.opts.Stats.EORDown.Add(1)
		}
	}
	return nil
}

// linkDown handles a failed link. A dead parent triggers the failover
// search; a dead child is benign here — if it owed barrier bits it either
// re-homes (its own failover), restarts (the supervisor's job), or the
// round times out.
func (nd *node) linkDown(l *link, err error) error {
	if nd.links[l.peer] != l {
		return nil // superseded link; its replacement owns the peer now
	}
	delete(nd.links, l.peer)
	l.close()
	if l == nd.parent {
		nd.parent = nil
		return nd.rehome(err)
	}
	return nil
}

// acceptChild registers a validated inbound handshake: ack with our
// watermarks, replay what the child lacks (frames first, then releases —
// bits never overtake the frames they account for), then start reading.
// A second handshake from the same peer supersedes the old link, which
// covers a restarted child redialing before its dead connection is noticed.
func (nd *node) acceptChild(hs *inbound) error {
	h := hs.h
	if old := nd.links[h.from]; old != nil {
		old.close()
	}
	l := newLink(nd, h.from, hs.conn, hs.br)
	nd.links[h.from] = l
	nd.opts.Stats.TrackConns(len(nd.links))
	l.send(encodeAck(nd.have))
	nd.replayTo(l, h.have)
	nd.replayDowns(l, h.lastDown)
	l.startReader()
	return nil
}

// replayTo retransmits every retained envelope beyond the peer's watermark,
// per origin in sequence order. The peer's own origin is skipped — it
// regenerates those deterministically.
func (nd *node) replayTo(l *link, peerHave []uint64) {
	for o := 0; o < nd.n; o++ {
		if sim.PartyID(o) == l.peer {
			continue
		}
		w := peerHave[o]
		for _, f := range nd.retained[o] {
			if f.seq > w {
				l.send(f.env)
				nd.opts.Stats.Replayed.Add(1)
				nd.opts.Stats.Relayed.Add(1)
				nd.opts.Stats.RelayBytes.Add(int64(len(f.env)))
			}
		}
	}
}

// replayDowns retransmits the releases a rejoining child is missing, in
// round order, after replayTo's frames — same FIFO soundness as live flow.
func (nd *node) replayDowns(l *link, peerLastDown int) {
	rounds := make([]int, 0, len(nd.downs))
	for r := range nd.downs {
		if r > peerLastDown {
			rounds = append(rounds, r)
		}
	}
	sort.Ints(rounds)
	for _, r := range rounds {
		env, err := wire.Encode(wire.OverlayEOR{Round: r, Down: true, Done: nd.downs[r].clone()})
		if err != nil {
			continue // unreachable
		}
		l.send(env)
		nd.opts.Stats.EORDown.Add(1)
	}
}

// connectParent dials nd.parentID, handshakes with our watermarks, replays
// what the parent lacks, and resends our cumulative up-reports — the full
// state transfer that makes a re-home or restart invisible to the rest of
// the tree.
// connectParent establishes the uplink, retrying transient handshake
// failures until the deadline: the parent's host accepts and immediately
// drops a connection whenever its seat holds no live node — before the
// seat's first incarnation is registered at startup, or between crash and
// restart — and the child must carry the join until the seat is back.
// Each attempt is individually clamped so the loop re-checks quit often
// enough for an aborting cluster to reclaim the goroutine promptly.
func (nd *node) connectParent(deadline time.Time) error {
	backoff := 10 * time.Millisecond
	for {
		attempt := deadline
		if lim := time.Now().Add(time.Second); lim.Before(attempt) {
			attempt = lim
		}
		err := nd.joinParent(attempt)
		if err == nil {
			return nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return err
		}
		select {
		case <-nd.quit:
			return err
		case <-time.After(backoff):
		}
		if backoff < 250*time.Millisecond {
			backoff *= 2
		}
	}
}

func (nd *node) joinParent(deadline time.Time) error {
	addr := nd.addrs[nd.parentID]
	conn, err := transport.DialRetry(addr, deadline)
	if err != nil {
		return fmt.Errorf("dialing parent %d at %s: %w", nd.parentID, addr, err)
	}
	hb := transport.AppendFrame(nil, encodeHello(hello{session: nd.session, from: nd.id,
		to: nd.parentID, n: nd.n, branch: nd.lay.Branching, lastDown: nd.lastDown, have: nd.have}))
	conn.SetWriteDeadline(deadline)
	if _, err := conn.Write(hb); err != nil {
		conn.Close()
		return fmt.Errorf("handshake to parent %d: %w", nd.parentID, err)
	}
	nd.opts.Wire.AddSent(len(hb))
	conn.SetWriteDeadline(time.Time{})
	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetReadDeadline(deadline)
	ab, err := transport.ReadFrame(br)
	if err != nil {
		conn.Close()
		return fmt.Errorf("reading ack from parent %d: %w", nd.parentID, err)
	}
	nd.opts.Wire.AddRecv(len(ab))
	conn.SetReadDeadline(time.Time{})
	parentHave, err := parseAck(ab, nd.n)
	if err != nil {
		conn.Close()
		return err
	}
	l := newLink(nd, nd.parentID, conn, br)
	nd.links[nd.parentID] = l
	nd.parent = l
	nd.opts.Stats.TrackConns(len(nd.links))
	nd.replayTo(l, parentHave)
	nd.resendUps()
	l.startReader()
	return nil
}

// resendUps pushes every retained cumulative up-report at the (new) parent,
// ascending by round. Merging is idempotent, so over-sending is safe; what
// matters is that the bits the dead parent swallowed reach the root again.
func (nd *node) resendUps() {
	rounds := make([]int, 0, len(nd.ups))
	for r, u := range nd.ups {
		if u.arrived.count() > 0 {
			rounds = append(rounds, r)
		}
	}
	sort.Ints(rounds)
	for _, r := range rounds {
		u := nd.ups[r]
		env, err := wire.Encode(wire.OverlayEOR{Round: r, Arrived: u.arrived.clone(), Done: u.done.clone()})
		if err != nil {
			continue // unreachable
		}
		u.sentArr, u.sentDone = u.arrived.count(), u.done.count()
		nd.parent.send(env)
		nd.opts.Stats.EORUp.Add(1)
	}
}

// rehome walks the failover ring until a new parent accepts: the next
// sub-leaders in ring order, the root as last resort, cycling (with
// backoff) within the round-timeout budget so a supervised restart can come
// back. The handshake's bilateral replay then heals whatever the dead
// parent stranded.
func (nd *node) rehome(cause error) error {
	if nd.id == Root {
		return fmt.Errorf("overlay: root lost a link it cannot replace: %w", cause)
	}
	failed := nd.parentID
	candidates := nd.lay.Failover(nd.id, failed)
	deadline := time.Now().Add(nd.opts.RoundTimeout)
	backoff := 10 * time.Millisecond
	for time.Now().Before(deadline) {
		if nd.closed() {
			return fmt.Errorf("overlay: party %d closed while re-homing: %w", nd.id, cause)
		}
		for _, cand := range candidates {
			attempt := time.Now().Add(nd.opts.FailoverTimeout)
			if attempt.After(deadline) {
				attempt = deadline
			}
			nd.parentID = cand
			if err := nd.connectParent(attempt); err == nil {
				nd.opts.Stats.Failovers.Add(1)
				return nil
			}
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 250*time.Millisecond {
			backoff = 250 * time.Millisecond
		}
	}
	return fmt.Errorf("overlay: party %d found no parent after %d died: %w", nd.id, failed, cause)
}

// prune releases history the barrier has retired: anything at least two
// releases behind can no longer be needed by any re-homing peer (a stalled
// peer is at most one barrier behind the fleet). RetainAll (crash plans)
// keeps everything for full restart replay.
func (nd *node) prune() {
	if nd.opts.RetainAll {
		return
	}
	keep := nd.lastDown - 2
	for o := range nd.retained {
		frames := nd.retained[o]
		i := 0
		for i < len(frames) && frames[i].round < keep {
			i++
		}
		if i > 0 {
			nd.retained[o] = append(frames[:0:0], frames[i:]...)
		}
	}
	for r := range nd.downs {
		if r < keep {
			delete(nd.downs, r)
		}
	}
	for r := range nd.ups {
		if r < keep {
			delete(nd.ups, r)
		}
	}
}

// crash kills the node the way a process death would: connections cut
// mid-stream, nothing flushed, no goodbye.
func (nd *node) crash() {
	nd.closeOnce.Do(func() {
		close(nd.quit)
		for _, l := range nd.links {
			l.close()
		}
	})
}

// shutdown ends the node. When graceful, every link drains its queue first,
// so the final release frames reach the subtree before the connections die.
func (nd *node) shutdown(graceful bool) {
	if graceful {
		for _, l := range nd.links {
			l.drain(nd.opts.RoundTimeout)
		}
	}
	nd.closeOnce.Do(func() {
		close(nd.quit)
		for _, l := range nd.links {
			l.close()
		}
	})
}
