package overlay

import (
	"context"
	"fmt"
	"net"

	"treeaa/internal/sim"
	"treeaa/internal/transport"
)

// ProcessConfig describes one process's seat in a multi-process tree
// deployment (cmd/node with -overlay). Every seat is honest — the overlay
// rejects adversaries — so unlike transport.ProcessConfig there is no
// corrupted set and no host seat; what matters instead is the party's tree
// position: interior seats (root, sub-leaders) listen on their peers-file
// address, leaves only dial.
type ProcessConfig struct {
	// ID is this process's party.
	ID sim.PartyID
	// N is the total number of parties; Addrs has one listen address per
	// party id, shared verbatim by every process. Leaf addresses are carried
	// for uniformity but never dialed.
	N     int
	Addrs []string
	// Machine is this party's protocol machine.
	Machine   sim.Machine
	MaxRounds int
	// Session must be identical across all processes of one deployment;
	// transport.DeriveSession computes one from the shared parameters — the
	// overlay spec must be among them, so a mixed mesh/tree fleet (or two
	// branching factors) refuses to pair at the handshake.
	Session uint64
	Opts    Options
	// Ctx, when non-nil, cancels the seat: on Done the current node shuts
	// down, which unblocks its barrier wait and read loops, so a SIGINT'd
	// daemon exits promptly.
	Ctx context.Context
}

// RunProcess executes this process's seat over the tree overlay and blocks
// until the deployment terminates or fails. The seat supervises itself
// across injected crashes (Opts.CrashPlan naming this ID), keeping its
// listen address stable across incarnations just like the mesh daemon.
func RunProcess(cfg ProcessConfig) (*transport.ProcessResult, error) {
	if cfg.N <= 0 || len(cfg.Addrs) != cfg.N {
		return nil, fmt.Errorf("overlay: %d addresses for n = %d", len(cfg.Addrs), cfg.N)
	}
	if cfg.MaxRounds <= 0 {
		return nil, fmt.Errorf("overlay: MaxRounds = %d, want > 0", cfg.MaxRounds)
	}
	if cfg.ID < 0 || int(cfg.ID) >= cfg.N {
		return nil, fmt.Errorf("overlay: party id %d out of range [0, %d)", cfg.ID, cfg.N)
	}
	if cfg.Machine == nil {
		return nil, fmt.Errorf("overlay: party %d needs a machine", cfg.ID)
	}
	opts := cfg.Opts.withDefaults()
	lay, err := NewLayout(cfg.N, opts.Branching)
	if err != nil {
		return nil, err
	}
	if _, crashes := opts.CrashPlan[cfg.ID]; crashes && opts.Restart == nil {
		return nil, fmt.Errorf("overlay: crash plan requires Options.Restart to rebuild machines")
	}

	hold := &holder{}
	nd := newNode(cfg.ID, lay, cfg.Machine, cfg.MaxRounds, cfg.Session, cfg.Addrs, opts)
	nd.crashRound = opts.CrashPlan[cfg.ID]
	hold.set(nd)
	if lay.Interior(cfg.ID) {
		ln, err := net.Listen("tcp", cfg.Addrs[cfg.ID])
		if err != nil {
			return nil, fmt.Errorf("overlay: party %d listening on %s: %w", cfg.ID, cfg.Addrs[cfg.ID], err)
		}
		h := newHost(cfg.ID, ln, lay, cfg.Session, opts, hold)
		go h.loop()
		defer h.close()
		defer watchCancel(cfg.Ctx, func() {
			h.close()
			if nd := hold.get(); nd != nil {
				nd.shutdown(false)
			}
		})()
	} else {
		defer watchCancel(cfg.Ctx, func() {
			if nd := hold.get(); nd != nil {
				nd.shutdown(false)
			}
		})()
	}

	res, err := supervise(nd, hold)
	if err != nil {
		return nil, err
	}
	return &transport.ProcessResult{Output: res.output, DoneRound: res.doneRound,
		Rounds: res.termRound, Messages: sum(res.msgs), Bytes: sum(res.bytes)}, nil
}

// watchCancel runs stop when ctx is cancelled; the returned release func
// retires the watcher when the seat finishes first. A nil ctx is a no-op.
func watchCancel(ctx context.Context, stop func()) func() {
	if ctx == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			stop()
		case <-done:
		}
	}()
	return func() { close(done) }
}

func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
