package overlay

import (
	"fmt"
	"math"

	"treeaa/internal/sim"
)

// Layout is the deterministic three-level communication tree over parties
// 0..n−1: party 0 is the root, parties 1..Subleaders are sub-leaders (all
// children of the root), and every higher id is a leaf assigned to a
// sub-leader round-robin. Determinism matters twice: every node derives the
// same tree from (n, branching) alone, with no coordination, and a
// crash-restarted node knows which parent to rejoin.
type Layout struct {
	N          int
	Branching  int // requested branching factor (sub-leader count)
	Subleaders int // actual sub-leader count, min(Branching, N−1)
}

// NewLayout builds the tree for n parties. branching 0 picks ≈ √(n−1),
// which balances the root's degree (branching) against each sub-leader's
// (≈ (n−1)/branching).
func NewLayout(n, branching int) (Layout, error) {
	if n < 1 {
		return Layout{}, fmt.Errorf("overlay: n = %d, want ≥ 1", n)
	}
	if branching < 0 {
		return Layout{}, fmt.Errorf("overlay: branching = %d, want ≥ 0", branching)
	}
	if branching == 0 {
		branching = int(math.Ceil(math.Sqrt(float64(n - 1))))
		if branching < 1 {
			branching = 1
		}
	}
	s := branching
	if s > n-1 {
		s = n - 1
	}
	return Layout{N: n, Branching: branching, Subleaders: s}, nil
}

// Root is the tree's root party.
const Root sim.PartyID = 0

// IsSubleader reports whether p is an interior node directly under the root.
func (l Layout) IsSubleader(p sim.PartyID) bool {
	return int(p) >= 1 && int(p) <= l.Subleaders
}

// Interior reports whether p accepts child connections (root or sub-leader).
func (l Layout) Interior(p sim.PartyID) bool {
	return p == Root || l.IsSubleader(p)
}

// Parent returns p's parent in the tree, or −1 for the root.
func (l Layout) Parent(p sim.PartyID) sim.PartyID {
	switch {
	case p == Root:
		return -1
	case l.IsSubleader(p):
		return Root
	default:
		return sim.PartyID(1 + (int(p)-l.Subleaders-1)%l.Subleaders)
	}
}

// Children returns p's children in ascending order.
func (l Layout) Children(p sim.PartyID) []sim.PartyID {
	var out []sim.PartyID
	if p == Root {
		for s := 1; s <= l.Subleaders; s++ {
			out = append(out, sim.PartyID(s))
		}
		return out
	}
	if !l.IsSubleader(p) {
		return nil
	}
	for q := l.Subleaders + 1; q < l.N; q++ {
		if l.Parent(sim.PartyID(q)) == p {
			out = append(out, sim.PartyID(q))
		}
	}
	return out
}

// Depth is the number of populated levels: 1 for a lone root, 2 with
// sub-leaders only, 3 once leaves exist.
func (l Layout) Depth() int {
	switch {
	case l.N == 1:
		return 1
	case l.N-1 <= l.Subleaders:
		return 2
	default:
		return 3
	}
}

// MaxDegree is the largest link count any node holds: the root's fan-out,
// or a sub-leader's leaf count plus its root link.
func (l Layout) MaxDegree() int {
	if l.N == 1 {
		return 0
	}
	leaves := l.N - 1 - l.Subleaders
	perSub := 0
	if l.Subleaders > 0 {
		perSub = (leaves + l.Subleaders - 1) / l.Subleaders
	}
	if d := perSub + 1; d > l.Subleaders {
		return d
	}
	return l.Subleaders
}

// Failover returns p's parent candidates after `failed` died, in preference
// order: for a leaf, the other sub-leaders starting after the failed one in
// ring order, then the root as last resort; for a sub-leader (or a leaf
// whose last resort died), just the root again — it is supervised, so
// redialing it is the only move. The caller cycles the list until its
// timeout budget runs out.
func (l Layout) Failover(p, failed sim.PartyID) []sim.PartyID {
	if p == Root {
		return nil
	}
	if !l.IsSubleader(failed) {
		return []sim.PartyID{Root}
	}
	var out []sim.PartyID
	for i := 1; i < l.Subleaders; i++ {
		s := (int(failed)-1+i)%l.Subleaders + 1
		if sim.PartyID(s) != p {
			out = append(out, sim.PartyID(s))
		}
	}
	return append(out, Root)
}
