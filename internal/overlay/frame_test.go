package overlay

import (
	"reflect"
	"testing"

	"treeaa/internal/sim"
)

func TestHelloRoundtrip(t *testing.T) {
	h := hello{session: 0xdeadbeefcafe, from: 7, to: 1, n: 12, branch: 3,
		lastDown: 41, have: []uint64{9, 0, 0, 3, 0, 0, 0, 120, 0, 0, 0, 1}}
	got, err := parseHello(encodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("roundtrip:\n got %+v\nwant %+v", got, h)
	}

	empty := hello{session: 1, from: 4, to: 0, n: 5, branch: 2, have: make([]uint64, 5)}
	got, err = parseHello(encodeHello(empty))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, empty) {
		t.Fatalf("empty-watermark roundtrip:\n got %+v\nwant %+v", got, empty)
	}
}

func TestHelloRejects(t *testing.T) {
	good := encodeHello(hello{session: 1, from: 2, to: 0, n: 4, branch: 2, have: make([]uint64, 4)})
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte("TAAX"), good[4:]...),
		"bad version":    append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
		"trailing bytes": append(append([]byte{}, good...), 0),
		"truncated":      good[:len(good)-1],
	}
	for name, b := range cases {
		if _, err := parseHello(b); err == nil {
			t.Errorf("%s: parsed", name)
		}
	}

	// Nonzero flags and out-of-range watermark origins are rejected.
	flagged := append([]byte{}, good...)
	flagged[len(flagged)-3] = 1 // flags byte sits before lastDown|count (both 0)
	if _, err := parseHello(flagged); err == nil {
		t.Error("nonzero flags parsed")
	}
	if _, err := parseHello(encodeHello(hello{session: 1, from: 2, to: 0, n: 4, branch: 2,
		have: []uint64{0, 0, 0, 0, 7}})); err == nil {
		t.Error("watermark beyond n parsed")
	}
}

func TestAckRoundtrip(t *testing.T) {
	have := []uint64{0, 44, 0, 0, 0, 0, 2, 0}
	got, err := parseAck(encodeAck(have), len(have))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, have) {
		t.Fatalf("ack roundtrip: got %v, want %v", got, have)
	}
	if _, err := parseAck(encodeHello(hello{session: 1, from: 1, to: 0, n: 2, branch: 1,
		have: make([]uint64, 2)}), 2); err == nil {
		t.Fatal("hello parsed as ack")
	}
	if _, err := parseAck(append(encodeAck(have), 9), len(have)); err == nil {
		t.Fatal("trailing bytes parsed")
	}
}

func TestBitset(t *testing.T) {
	var b bitset
	if !b.set(9) || b.set(9) {
		t.Fatal("set growth reporting broken")
	}
	if !b.has(9) || b.has(8) || b.count() != 1 {
		t.Fatalf("membership broken: %v", b)
	}
	if b[len(b)-1] == 0 {
		t.Fatalf("non-canonical after set: %v", b)
	}

	other := bitset{}
	other.set(0)
	other.set(9)
	if !b.merge(other) {
		t.Fatal("merge with new bit reported no growth")
	}
	if b.merge(other) {
		t.Fatal("repeat merge reported growth")
	}
	if b.count() != 2 || !b.full(2) || b.full(3) {
		t.Fatalf("count/full broken: %v", b)
	}
	if c := b.clone(); !reflect.DeepEqual([]byte(b), c) {
		t.Fatalf("clone = %v, want %v", c, b)
	}
	var empty bitset
	if empty.clone() != nil || empty.count() != 0 || !empty.full(0) {
		t.Fatal("empty bitset misbehaves")
	}
	if sim.Broadcast >= 0 {
		t.Fatal("sanity: Broadcast must be negative")
	}
}
