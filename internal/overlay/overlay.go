// Package overlay routes protocol traffic over a deterministic three-level
// communication tree — root, sub-leaders, leaves — instead of the transport
// package's full mesh. The mesh needs a duplex connection per party pair, so
// past n ≈ 256 the file-descriptor budget, not the protocol, is the wall;
// the tree keeps every node at O(branching) connections and replaces the
// n·(n−1) per-round end-of-round barrier frames with ~2n aggregated ones.
//
// The overlay is a delivery substrate, not a protocol change: every logical
// message a machine emits is wrapped in a wire.RelayMsg envelope stamped
// with (origin, per-origin sequence number, round) and flooded along the
// tree edges. Receivers accept each origin's envelopes strictly in sequence
// order — a duplicate (seq ≤ watermark) is dropped without forwarding, which
// makes the flood idempotent; a gap is a protocol bug and fails the node.
// Only the addressed party (everyone, for a broadcast) decodes the body.
// Because tree paths are unique and links are FIFO, per-origin delivery
// order matches emission order, exactly the property the mesh transport gets
// from per-pair connections — so a relayed run's Result is byte-for-byte
// the Result of sim.Run on the same inputs, pinned by the equivalence tests.
//
// The lock-step barrier aggregates instead of meshing: when a node finishes
// its round-r sends it sets its bit in a cumulative arrived/done bitmap and
// sends it up; interior nodes merge children's bitmaps into their own and
// forward growth. The root releases round r by flooding a down frame once
// every party's bit arrived. Link FIFO makes the release sound: a bit only
// travels behind the frames it accounts for, so by the time a down frame
// passes a link, every round-r envelope already has.
//
// Every link handshake — initial connect, failover re-home, crash-restart
// rejoin — exchanges per-origin watermarks and both sides replay what the
// other lacks. That one mechanism heals late joiners, re-homed leaves and
// restarted interior nodes alike: a leaf whose sub-leader died re-homes to
// the next sub-leader in the ring (root as last resort, ByzCoinX-style) and
// pulls the frames the crash stranded, so a dead interior node degrades
// latency, not correctness.
package overlay

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"treeaa/internal/metrics"
	"treeaa/internal/sim"
)

// Options tunes the tree overlay. The zero value gets sane defaults and an
// automatic branching factor (≈ √(n−1), which balances root and sub-leader
// degrees).
type Options struct {
	// Branching is the number of sub-leaders (and the target number of
	// leaves per sub-leader); 0 picks ≈ √(n−1) automatically.
	Branching int
	// SetupTimeout bounds the initial parent dial and handshake. Default 10s.
	SetupTimeout time.Duration
	// RoundTimeout bounds one round's traffic: barrier waits, reads, writes,
	// and a full failover search. Default 60s.
	RoundTimeout time.Duration
	// FailoverTimeout is how long a leaf lets its sub-leader stall a barrier
	// (no parent-link traffic at all) before abandoning it for the next
	// candidate; it is also the per-candidate dial budget during a failover
	// search. Default 5s.
	FailoverTimeout time.Duration

	// Stats, when non-nil, receives overlay counters (relays, dedup drops,
	// failovers, peak connection counts, round latency).
	Stats *metrics.OverlayStats
	// Wire, when non-nil, receives physical frame and byte counts, the same
	// accounting the mesh transport reports — the number BENCH_scale.json
	// compares across substrates.
	Wire *metrics.WireStats

	// RetainAll keeps every relay envelope and release frame for the whole
	// run instead of pruning behind the barrier. Required for crash
	// recovery, where a restarted node replays the full history; implied by
	// a non-empty CrashPlan.
	RetainAll bool
	// CrashPlan schedules honest-party crash injection: party → round. The
	// party dies abruptly in that round — after its protocol sends, before
	// its barrier report — and is restarted with a fresh machine from
	// Restart. Its former children re-home; the restarted node rejoins its
	// deterministic parent with zero watermarks, replays history, and
	// re-steps from round 1.
	CrashPlan map[sim.PartyID]int
	// Restart builds a fresh machine for a crash-restarted party; required
	// when CrashPlan is non-empty.
	Restart func(p sim.PartyID) (sim.Machine, error)
}

func (o Options) withDefaults() Options {
	if o.SetupTimeout <= 0 {
		o.SetupTimeout = 10 * time.Second
	}
	if o.RoundTimeout <= 0 {
		o.RoundTimeout = 60 * time.Second
	}
	if o.FailoverTimeout <= 0 {
		o.FailoverTimeout = 5 * time.Second
	}
	if o.Stats == nil {
		o.Stats = &metrics.OverlayStats{}
	}
	if o.Wire == nil {
		o.Wire = &metrics.WireStats{}
	}
	if len(o.CrashPlan) > 0 {
		o.RetainAll = true
	}
	return o
}

// ParseSpec parses an -overlay flag value: "tree" (automatic branching) or
// "tree:<branching>". The empty string means no overlay (the full mesh).
func ParseSpec(spec string) (branching int, err error) {
	if spec == "tree" {
		return 0, nil
	}
	rest, ok := strings.CutPrefix(spec, "tree:")
	if !ok {
		return 0, fmt.Errorf("overlay: unknown spec %q (want tree or tree:<branching>)", spec)
	}
	b, err := strconv.Atoi(rest)
	if err != nil || b < 1 {
		return 0, fmt.Errorf("overlay: bad branching in %q (want a positive integer)", spec)
	}
	return b, nil
}
