package overlay

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"treeaa/internal/sim"
	"treeaa/internal/wire"

	"treeaa/internal/transport"
)

// link is one duplex tree edge as seen from this node: a writer goroutine
// draining a queue in batches (one bufio flush per drained batch, so bursts
// of relays coalesce into few syscalls), and a reader goroutine turning
// inbound frames into node events. The node's main loop only ever appends
// to the queue, so it never blocks on TCP backpressure — the peer's reader
// always drains, which keeps the tree deadlock-free for the same reason the
// mesh transport is.
type link struct {
	peer sim.PartyID
	nd   *node
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	mu      sync.Mutex
	cond    *sync.Cond
	q       [][]byte
	closing bool
	failed  bool

	wdone chan struct{}
}

func newLink(nd *node, peer sim.PartyID, conn net.Conn, br *bufio.Reader) *link {
	l := &link{peer: peer, nd: nd, conn: conn, br: br,
		bw: bufio.NewWriterSize(conn, 64<<10), wdone: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	go l.writeLoop()
	return l
}

// send enqueues one frame body (length prefix added at write time). Safe
// from the main loop only; never blocks.
func (l *link) send(body []byte) {
	l.mu.Lock()
	if !l.closing {
		l.q = append(l.q, body)
		l.cond.Signal()
	}
	l.mu.Unlock()
}

func (l *link) writeLoop() {
	defer close(l.wdone)
	var scratch []byte
	for {
		l.mu.Lock()
		for len(l.q) == 0 && !l.closing {
			l.cond.Wait()
		}
		batch := l.q
		l.q = nil
		closing := l.closing
		l.mu.Unlock()

		if len(batch) > 0 && !l.failed {
			l.conn.SetWriteDeadline(time.Now().Add(l.nd.opts.RoundTimeout))
			for _, body := range batch {
				scratch = transport.AppendFrame(scratch[:0], body)
				if _, err := l.bw.Write(scratch); err != nil {
					l.fail(err)
					break
				}
				l.nd.opts.Wire.AddSent(len(scratch))
			}
			if !l.failed {
				if err := l.bw.Flush(); err != nil {
					l.fail(err)
				} else {
					l.nd.opts.Stats.Batches.Add(1)
				}
			}
		}
		if closing {
			if !l.failed {
				l.bw.Flush()
			}
			return
		}
	}
}

func (l *link) fail(err error) {
	l.failed = true
	l.nd.enqueue(levent{l: l, err: fmt.Errorf("overlay: link %d↔%d write: %w", l.nd.id, l.peer, err)})
}

// startReader begins decoding inbound frames. The node calls it only after
// the link is registered and any replay is queued, so no event can race the
// handshake's bookkeeping.
func (l *link) startReader() {
	go func() {
		for {
			l.conn.SetReadDeadline(time.Now().Add(l.nd.opts.RoundTimeout))
			body, err := transport.ReadFrame(l.br)
			if err != nil {
				l.nd.enqueue(levent{l: l, err: fmt.Errorf("overlay: link %d↔%d read: %w", l.nd.id, l.peer, err)})
				return
			}
			l.nd.opts.Wire.AddRecv(len(body))
			pay, err := wire.Decode(body)
			if err != nil {
				l.nd.enqueue(levent{l: l, err: fmt.Errorf("overlay: link %d↔%d frame: %w", l.nd.id, l.peer, err)})
				return
			}
			l.nd.enqueue(levent{l: l, pay: pay, raw: body})
		}
	}()
}

// drain flushes queued frames and closes the connection — how a node makes
// its final release frame reach its children before the FIN does.
func (l *link) drain(budget time.Duration) {
	l.mu.Lock()
	l.closing = true
	l.cond.Signal()
	l.mu.Unlock()
	select {
	case <-l.wdone:
	case <-time.After(budget):
	}
	l.conn.Close()
}

// close tears the link down abruptly (crash injection, error paths).
func (l *link) close() {
	l.mu.Lock()
	l.closing = true
	l.cond.Signal()
	l.mu.Unlock()
	l.conn.Close()
}
