package overlay

import (
	"reflect"
	"testing"
	"time"

	"treeaa/internal/core"
	"treeaa/internal/metrics"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// crashRun executes one crash-injected cluster and checks the recovered
// Result against the engine's: a crash plus restart must be invisible in
// everything the protocol can observe.
func crashRun(t *testing.T, plan map[sim.PartyID]int) *metrics.OverlayStats {
	t.Helper()
	tr := tree.NewPath(8)
	const n, branching = 12, 3
	inputs := spreadInputs(tr, n, 4)

	simCfg := sim.Config{N: n, MaxCorrupt: 3, MaxRounds: core.Rounds(tr) + 2}
	want, err := sim.Run(simCfg, buildMachines(t, tr, n, 3, inputs))
	if err != nil {
		t.Fatal(err)
	}

	var stats metrics.OverlayStats
	treeCfg := sim.Config{N: n, MaxCorrupt: 3, MaxRounds: core.Rounds(tr) + 2}
	got, err := Cluster(treeCfg, buildMachines(t, tr, n, 3, inputs), Options{
		Branching: branching,
		Stats:     &stats,
		CrashPlan: plan,
		// Keep the failure detector snappy so a stalled barrier (crash lost
		// in a TCP buffer rather than surfacing as a reset) re-homes fast.
		FailoverTimeout: 500 * time.Millisecond,
		Restart: func(p sim.PartyID) (sim.Machine, error) {
			return core.NewMachine(core.Config{Tree: tr, N: n, T: 3, ID: p, Input: inputs[p]})
		},
	})
	if err != nil {
		t.Fatalf("Cluster with crash plan %v: %v", plan, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("plan %v: results diverge\ntree: %+v\n sim: %+v", plan, got, want)
	}
	return &stats
}

// TestSubleaderCrashRestart is the tentpole failure drill: an interior node
// dies mid-round, its leaves re-home to the next sub-leader in the ring and
// pull the stranded frames, the supervisor restarts the seat, and the
// restarted node's deterministic re-flood is absorbed by the duplicate
// filter. The Result must match the engine exactly — no lost and no
// double-delivered message.
func TestSubleaderCrashRestart(t *testing.T) {
	// Party 2 is a sub-leader (n=12, branching 3 → sub-leaders 1..3, its
	// leaves 5, 8, 11).
	stats := crashRun(t, map[sim.PartyID]int{2: 2})
	if fo := stats.Failovers.Load(); fo < 1 {
		t.Errorf("Failovers = %d, want ≥ 1 (orphaned leaves must re-home)", fo)
	}
	if dd := stats.DedupDropped.Load(); dd < 1 {
		t.Errorf("DedupDropped = %d, want ≥ 1 (restart re-flood must be absorbed)", dd)
	}
	if rp := stats.Replayed.Load(); rp < 1 {
		t.Errorf("Replayed = %d, want ≥ 1 (rejoin must pull history)", rp)
	}
	t.Logf("sub-leader crash: %s", stats.String())
}

// TestLeafCrashRestart crashes a leaf: nobody re-homes, the restarted seat
// rejoins its deterministic parent and replays forward.
func TestLeafCrashRestart(t *testing.T) {
	stats := crashRun(t, map[sim.PartyID]int{11: 1})
	if rp := stats.Replayed.Load(); rp < 1 {
		t.Errorf("Replayed = %d, want ≥ 1", rp)
	}
	t.Logf("leaf crash: %s", stats.String())
}

// TestRootCrashRestart is the hardest recovery: the root loses every link
// and all barrier state. Sub-leaders redial it until the supervisor brings
// it back; their handshake replays rebuild its mailbox and up-reports, and
// its re-released rounds are ignored as duplicates below.
func TestRootCrashRestart(t *testing.T) {
	stats := crashRun(t, map[sim.PartyID]int{0: 2})
	if fo := stats.Failovers.Load(); fo < 1 {
		t.Errorf("Failovers = %d, want ≥ 1 (sub-leaders re-dial the root)", fo)
	}
	if rp := stats.Replayed.Load(); rp < 1 {
		t.Errorf("Replayed = %d, want ≥ 1 (children must rebuild the root)", rp)
	}
	t.Logf("root crash: %s", stats.String())
}
