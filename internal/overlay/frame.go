package overlay

// Overlay link handshake. A child dials its parent and opens with a hello
// carrying its per-origin receive watermarks (the highest relay sequence it
// has accepted from each origin) and the last round release it holds; the
// parent answers with an ack carrying its own watermarks. Each side then
// replays the retained frames the other lacks — which makes initial
// connects, failover re-homes and crash-restart rejoins the same code path,
// differing only in how much the watermarks say is missing.
//
//	hello  "TAAO" | version | uvarint(session) | u32(from) | u32(to) |
//	       u32(n) | u32(branching) | flags | uvarint(lastDown) | watermarks
//	ack    "TAAK" | version | watermarks
//
// watermarks = uvarint(count) then count × (u32(origin) | uvarint(have)),
// ascending by origin, zero entries omitted. After the handshake every
// frame on the link is a wire-encoded payload (wire.Version leads, so the
// two vocabularies cannot be confused).

import (
	"fmt"

	"treeaa/internal/sim"
	"treeaa/internal/wire"
)

const overlayVersion byte = 1

var (
	helloMagic = [4]byte{'T', 'A', 'A', 'O'}
	ackMagic   = [4]byte{'T', 'A', 'A', 'K'}
)

// hello is the parsed first frame of an overlay link.
type hello struct {
	session  uint64
	from, to sim.PartyID
	n        int
	branch   int
	lastDown int
	have     []uint64 // per-origin accepted watermark, length n
}

func appendWatermarks(dst []byte, have []uint64) []byte {
	count := 0
	for _, w := range have {
		if w > 0 {
			count++
		}
	}
	dst = wire.AppendUvarint(dst, uint64(count))
	for o, w := range have {
		if w > 0 {
			dst = wire.AppendU32(dst, uint32(o))
			dst = wire.AppendUvarint(dst, w)
		}
	}
	return dst
}

func consumeWatermarks(b []byte, n int) ([]uint64, []byte, error) {
	count, b, err := wire.ConsumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if count > uint64(n) {
		return nil, nil, fmt.Errorf("overlay: %d watermarks for n = %d", count, n)
	}
	have := make([]uint64, n)
	for i := uint64(0); i < count; i++ {
		var o uint32
		o, b, err = wire.ConsumeU32(b)
		if err != nil {
			return nil, nil, err
		}
		if int(o) >= n {
			return nil, nil, fmt.Errorf("overlay: watermark origin %d out of range", o)
		}
		var w uint64
		w, b, err = wire.ConsumeUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		have[o] = w
	}
	return have, b, nil
}

func encodeHello(h hello) []byte {
	body := make([]byte, 0, 64)
	body = append(body, helloMagic[:]...)
	body = append(body, overlayVersion)
	body = wire.AppendUvarint(body, h.session)
	body = wire.AppendU32(body, uint32(h.from))
	body = wire.AppendU32(body, uint32(h.to))
	body = wire.AppendU32(body, uint32(h.n))
	body = wire.AppendU32(body, uint32(h.branch))
	body = append(body, 0) // flags, reserved
	body = wire.AppendUvarint(body, uint64(h.lastDown))
	return appendWatermarks(body, h.have)
}

func parseHello(body []byte) (hello, error) {
	var h hello
	if len(body) < 5 || string(body[:4]) != string(helloMagic[:]) {
		return h, fmt.Errorf("overlay: not an overlay hello")
	}
	if body[4] != overlayVersion {
		return h, fmt.Errorf("overlay: hello version %d, want %d", body[4], overlayVersion)
	}
	b := body[5:]
	var err error
	h.session, b, err = wire.ConsumeUvarint(b)
	if err != nil {
		return h, err
	}
	var from, to, n, branch uint32
	if from, b, err = wire.ConsumeU32(b); err != nil {
		return h, err
	}
	if to, b, err = wire.ConsumeU32(b); err != nil {
		return h, err
	}
	if n, b, err = wire.ConsumeU32(b); err != nil {
		return h, err
	}
	if branch, b, err = wire.ConsumeU32(b); err != nil {
		return h, err
	}
	if len(b) < 1 || b[0] != 0 {
		return h, fmt.Errorf("overlay: bad hello flags")
	}
	b = b[1:]
	down, b, err := wire.ConsumeUvarint(b)
	if err != nil {
		return h, err
	}
	h.from, h.to = sim.PartyID(from), sim.PartyID(to)
	h.n, h.branch, h.lastDown = int(n), int(branch), int(down)
	if h.n < 1 || h.n > wire.MaxIDValue {
		return h, fmt.Errorf("overlay: hello n = %d out of range", h.n)
	}
	if h.have, b, err = consumeWatermarks(b, h.n); err != nil {
		return h, err
	}
	if len(b) != 0 {
		return h, fmt.Errorf("overlay: %d trailing bytes after hello", len(b))
	}
	return h, nil
}

func encodeAck(have []uint64) []byte {
	body := make([]byte, 0, 32)
	body = append(body, ackMagic[:]...)
	body = append(body, overlayVersion)
	return appendWatermarks(body, have)
}

func parseAck(body []byte, n int) ([]uint64, error) {
	if len(body) < 5 || string(body[:4]) != string(ackMagic[:]) {
		return nil, fmt.Errorf("overlay: not an overlay hello-ack")
	}
	if body[4] != overlayVersion {
		return nil, fmt.Errorf("overlay: ack version %d, want %d", body[4], overlayVersion)
	}
	have, rest, err := consumeWatermarks(body[5:], n)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("overlay: %d trailing bytes after ack", len(rest))
	}
	return have, nil
}

// bitset is a little-endian party set (party p is bit p%8 of byte p/8),
// kept in the canonical minimal form wire.OverlayEOR requires: it only ever
// grows to the byte holding the highest set bit, so the last byte is never
// zero and the empty set is nil.
type bitset []byte

func (b bitset) has(p sim.PartyID) bool {
	i := int(p) / 8
	return i < len(b) && b[i]&(1<<(uint(p)%8)) != 0
}

// set adds p, reporting whether the set grew.
func (b *bitset) set(p sim.PartyID) bool {
	i := int(p) / 8
	for len(*b) <= i {
		*b = append(*b, 0)
	}
	mask := byte(1) << (uint(p) % 8)
	if (*b)[i]&mask != 0 {
		return false
	}
	(*b)[i] |= mask
	return true
}

// merge ors another canonical bitmap in, reporting whether the set grew.
func (b *bitset) merge(o []byte) bool {
	for len(*b) < len(o) {
		*b = append(*b, 0)
	}
	grew := false
	for i, x := range o {
		if x&^(*b)[i] != 0 {
			grew = true
			(*b)[i] |= x
		}
	}
	return grew
}

func (b bitset) count() int {
	total := 0
	for _, x := range b {
		for ; x != 0; x &= x - 1 {
			total++
		}
	}
	return total
}

func (b bitset) full(n int) bool { return b.count() == n }

func (b bitset) clone() []byte {
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}
