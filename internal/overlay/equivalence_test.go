package overlay

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"treeaa/internal/core"
	"treeaa/internal/crashaa"
	"treeaa/internal/metrics"
	"treeaa/internal/sim"
	"treeaa/internal/transport"
	"treeaa/internal/tree"
)

// buildMachines constructs the n TreeAA machines for one run. Machines hold
// state, so each driver gets a fresh set.
func buildMachines(t *testing.T, tr *tree.Tree, n, tcorrupt int, inputs []tree.VertexID) []sim.Machine {
	t.Helper()
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		m, err := core.NewMachine(core.Config{Tree: tr, N: n, T: tcorrupt, ID: sim.PartyID(i), Input: inputs[i]})
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
	}
	return machines
}

func spreadInputs(tr *tree.Tree, n, seed int) []tree.VertexID {
	inputs := make([]tree.VertexID, n)
	for i := range inputs {
		inputs[i] = tree.VertexID((i*(tr.NumVertices()-1)/(n-1) + seed) % tr.NumVertices())
	}
	return inputs
}

// TestTreeMatchesSim is the overlay's correctness anchor: across branching
// factors on the paper's path:40 topology, a relayed execution must
// reproduce the sequential engine's Result — outputs, rounds, message and
// byte counts, per-round trace — exactly. The branching sweep covers the
// degenerate star (every party a sub-leader... of none), a deep skinny tree
// and the balanced automatic shape.
func TestTreeMatchesSim(t *testing.T) {
	tr := tree.NewPath(40)
	const n = 7
	for _, branching := range []int{0, 1, 2, 6} {
		inputs := spreadInputs(tr, n, branching+1)

		var simTrace sim.Trace
		simCfg := sim.Config{N: n, MaxCorrupt: 2, MaxRounds: core.Rounds(tr) + 2, Trace: &simTrace}
		want, err := sim.Run(simCfg, buildMachines(t, tr, n, 2, inputs))
		if err != nil {
			t.Fatalf("branching %d: sim.Run: %v", branching, err)
		}

		var treeTrace sim.Trace
		treeCfg := sim.Config{N: n, MaxCorrupt: 2, MaxRounds: core.Rounds(tr) + 2, Trace: &treeTrace}
		got, err := Cluster(treeCfg, buildMachines(t, tr, n, 2, inputs), Options{Branching: branching})
		if err != nil {
			t.Fatalf("branching %d: Cluster: %v", branching, err)
		}

		if !reflect.DeepEqual(got, want) {
			t.Errorf("branching %d: results diverge\ntree: %+v\n sim: %+v", branching, got, want)
		}
		if !reflect.DeepEqual(treeTrace, simTrace) {
			t.Errorf("branching %d: traces diverge\ntree: %+v\n sim: %+v", branching, treeTrace, simTrace)
		}
	}
}

// crashMachines builds n crashaa machines — the light one-broadcast-per-
// round workload the scale paths use, so fleet size rather than protocol
// weight is what a big-n run measures.
func crashMachines(t *testing.T, n, iters int) []sim.Machine {
	t.Helper()
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		m, err := crashaa.NewMachine(crashaa.Config{N: n, ID: sim.PartyID(i),
			Iterations: iters, Input: float64(i % 17)})
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
	}
	return machines
}

// TestTreeScale256 runs the fleet size the full mesh cannot reach on this
// machine: n = 256 would need ~n²/2 ≈ 33k sockets (130k fds with both ends
// and the per-conn goroutine stacks), while the tree holds every node at
// O(branching) links. Completion, result equality and the per-node peak
// connection count are the assertions; the messages-per-round comparison
// against the mesh lives in cmd/scale-bench where both are measured. The
// workload is crashaa's one broadcast per round — big-n with the full
// TreeAA machine is a protocol cost, not an overlay property.
func TestTreeScale256(t *testing.T) {
	if testing.Short() {
		t.Skip("n = 256 cluster in -short mode")
	}
	const n, branching, iters = 256, 16, 3

	simCfg := sim.Config{N: n, MaxCorrupt: 1, MaxRounds: iters + 2}
	want, err := sim.Run(simCfg, crashMachines(t, n, iters))
	if err != nil {
		t.Fatal(err)
	}

	var stats metrics.OverlayStats
	var wires metrics.WireStats
	treeCfg := sim.Config{N: n, MaxCorrupt: 1, MaxRounds: iters + 2}
	got, err := Cluster(treeCfg, crashMachines(t, n, iters), Options{
		Branching: branching, Stats: &stats, Wire: &wires,
		// One shared core schedules 256 node main loops; a parent that is
		// merely descheduled must not read as dead.
		FailoverTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("results diverge\ntree: %+v\n sim: %+v", got, want)
	}

	lay, _ := NewLayout(n, branching)
	if peak := stats.PeakConns(); peak == 0 || peak > lay.MaxDegree() {
		t.Errorf("peak %d conns/node, want 1..%d", peak, lay.MaxDegree())
	}
	if stats.DedupDropped.Load() != 0 {
		t.Errorf("%d duplicate envelopes in a crash-free run", stats.DedupDropped.Load())
	}
	t.Logf("n=%d: %s", n, stats.String())
	t.Logf("n=%d: physical %s", n, wires.String())
}

// TestTreeRejections pins the explanatory errors for engine features the
// tree cannot host.
func TestTreeRejections(t *testing.T) {
	tr := tree.NewPath(8)
	const n = 4
	inputs := spreadInputs(tr, n, 1)
	base := sim.Config{N: n, MaxCorrupt: 1, MaxRounds: core.Rounds(tr) + 2}

	cases := []struct {
		name string
		mut  func(*sim.Config)
		want string
	}{
		{"adversary", func(c *sim.Config) { c.Adversary = stubAdversary{} }, "rushing adversary"},
		{"rate limit", func(c *sim.Config) { c.MaxMessagesPerParty = 5 }, "MaxMessagesPerParty"},
		{"tamper", func(c *sim.Config) {
			c.Tamper = func(r int, m sim.Message) (sim.Message, bool) { return m, false }
		}, "tamper"},
	}
	for _, c := range cases {
		cfg := base
		c.mut(&cfg)
		_, err := Cluster(cfg, buildMachines(t, tr, n, 1, inputs), Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// stubAdversary corrupts party 0 and does nothing — enough to trip the
// overlay's up-front rejection.
type stubAdversary struct{}

func (stubAdversary) Initial() []sim.PartyID { return []sim.PartyID{0} }
func (stubAdversary) Step(int, []sim.Message, map[sim.PartyID][]sim.Message) ([]sim.Message, []sim.PartyID) {
	return nil, nil
}

// TestParseSpecAndRegistry pins the -overlay/-transport spec grammar and
// the tree's registration in the transport registry.
func TestParseSpecAndRegistry(t *testing.T) {
	if b, err := ParseSpec("tree"); err != nil || b != 0 {
		t.Errorf("ParseSpec(tree) = %d, %v", b, err)
	}
	if b, err := ParseSpec("tree:16"); err != nil || b != 16 {
		t.Errorf("ParseSpec(tree:16) = %d, %v", b, err)
	}
	for _, bad := range []string{"", "mesh", "tree:", "tree:0", "tree:-2", "tree:x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}

	tt, err := transport.New("tree:4")
	if err != nil {
		t.Fatal(err)
	}
	if tt.Name() != "tree:4" {
		t.Errorf("Name = %q", tt.Name())
	}
	if _, ok := tt.(Tree); !ok {
		t.Errorf("transport.New(tree:4) = %T", tt)
	}
	found := false
	for _, name := range transport.Names() {
		if name == "tree" {
			found = true
		}
	}
	if !found {
		t.Errorf("tree missing from transport.Names() = %v", transport.Names())
	}
}
