package overlay

import (
	"reflect"
	"testing"

	"treeaa/internal/sim"
)

func TestLayoutTables(t *testing.T) {
	lay, err := NewLayout(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Subleaders != 3 {
		t.Fatalf("Subleaders = %d, want 3", lay.Subleaders)
	}
	wantParent := map[sim.PartyID]sim.PartyID{
		0: -1, 1: 0, 2: 0, 3: 0,
		4: 1, 5: 2, 6: 3, 7: 1, 8: 2, 9: 3,
	}
	for p, want := range wantParent {
		if got := lay.Parent(p); got != want {
			t.Errorf("Parent(%d) = %d, want %d", p, got, want)
		}
	}
	if got := lay.Children(0); !reflect.DeepEqual(got, []sim.PartyID{1, 2, 3}) {
		t.Errorf("Children(0) = %v", got)
	}
	if got := lay.Children(1); !reflect.DeepEqual(got, []sim.PartyID{4, 7}) {
		t.Errorf("Children(1) = %v", got)
	}
	if got := lay.Children(9); got != nil {
		t.Errorf("Children(9) = %v, want nil", got)
	}
	if got := lay.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	if got := lay.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
}

func TestLayoutAutoBranching(t *testing.T) {
	lay, err := NewLayout(26, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Branching != 5 { // ceil(√25)
		t.Fatalf("auto branching for n = 26 is %d, want 5", lay.Branching)
	}
	if lay, _ := NewLayout(1, 0); lay.Depth() != 1 || lay.MaxDegree() != 0 {
		t.Fatalf("lone root: depth %d degree %d", lay.Depth(), lay.MaxDegree())
	}
	if _, err := NewLayout(0, 0); err == nil {
		t.Fatal("n = 0 accepted")
	}
	if _, err := NewLayout(4, -1); err == nil {
		t.Fatal("negative branching accepted")
	}
}

// TestLayoutInvariants checks, across a sweep of shapes, that the tree is a
// tree: every non-root has exactly one parent that lists it as a child, all
// parties are reachable, and MaxDegree matches the realized link counts.
func TestLayoutInvariants(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for _, b := range []int{0, 1, 2, 3, 5, 8} {
			lay, err := NewLayout(n, b)
			if err != nil {
				t.Fatalf("n=%d b=%d: %v", n, b, err)
			}
			seen := 1 // the root
			maxDeg := len(lay.Children(Root))
			for p := sim.PartyID(1); int(p) < n; p++ {
				par := lay.Parent(p)
				if par < 0 || int(par) >= n || !lay.Interior(par) {
					t.Fatalf("n=%d b=%d: Parent(%d) = %d", n, b, p, par)
				}
				found := false
				for _, c := range lay.Children(par) {
					if c == p {
						found = true
					}
				}
				if !found {
					t.Fatalf("n=%d b=%d: %d not in Children(%d)", n, b, p, par)
				}
				seen++
				if deg := len(lay.Children(p)) + 1; deg > maxDeg {
					maxDeg = deg
				}
			}
			if seen != n {
				t.Fatalf("n=%d b=%d: %d parties linked", n, b, seen)
			}
			if got := lay.MaxDegree(); got != maxDeg {
				t.Fatalf("n=%d b=%d: MaxDegree = %d, realized %d", n, b, got, maxDeg)
			}
		}
	}
}

func TestFailoverOrder(t *testing.T) {
	lay, err := NewLayout(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p, failed sim.PartyID
		want      []sim.PartyID
	}{
		{4, 1, []sim.PartyID{2, 3, 0}},  // leaf loses sub-leader 1: ring onward
		{5, 2, []sim.PartyID{3, 1, 0}},  // ring wraps
		{11, 3, []sim.PartyID{1, 2, 0}}, // ring wraps past the end
		{1, 0, []sim.PartyID{0}},        // sub-leader loses root: redial it
		{4, 0, []sim.PartyID{0}},        // leaf's last resort died: redial it
	}
	for _, c := range cases {
		if got := lay.Failover(c.p, c.failed); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Failover(%d, %d) = %v, want %v", c.p, c.failed, got, c.want)
		}
	}
	if got := lay.Failover(Root, 1); got != nil {
		t.Errorf("Failover(root) = %v, want nil", got)
	}
}
