package graph

// Block-cut tree decomposition. The blocks (biconnected components) of a
// connected graph, together with its cut vertices, form a tree: one node
// per block, one node per cut vertex, and an edge whenever a cut vertex
// belongs to a block. The journal algorithm runs TreeAA on exactly this
// tree — every party maps its input vertex v to η(v) (v's cut node if v is
// a cut vertex, else the node of the unique block containing v), agrees on
// a block-cut tree node within distance 1, and decodes locally back into
// the graph (machine.go).
//
// All protocol-visible determinism matches the repo convention: blocks are
// found by a DFS that visits neighbors in ascending VertexID order, then
// canonically reordered by their sorted vertex lists, and the block-cut
// tree's labels ("b<idx>", "c<vertex>", zero-padded) sort deterministically
// — so independent parties build byte-identical trees and the whole TreeAA
// stack (Euler lists, PathsFinder, adversary phase tags) applies verbatim.

import (
	"fmt"
	"sort"

	"treeaa/internal/tree"
)

// decomposition is the precomputed block-cut structure of a Graph.
type decomposition struct {
	blocks       []Block
	vertexBlocks [][]int // graph vertex -> indices of blocks containing it
	isCut        []bool  // graph vertex -> is a cut vertex

	bc        *tree.Tree      // the block-cut tree
	eta       []tree.VertexID // graph vertex -> its block-cut tree node
	nodeBlock []int           // bc node -> block index, or -1 for cut nodes
	nodeCut   []tree.VertexID // bc node -> cut vertex, or tree.None for block nodes
	blockNode []tree.VertexID // block index -> bc node
}

// decompose fills g.dc. The graph is already validated as connected and
// non-empty.
func (g *Graph) decompose() error {
	raw := g.biconnected()
	// Canonical order: sort each block's vertices, then the blocks by their
	// vertex lists (blocks are distinct as sets, so the order is total).
	blocks := make([]Block, len(raw))
	for i, vs := range raw {
		sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
		blocks[i] = Block{Vertices: vs, Kind: g.classify(vs)}
	}
	sort.Slice(blocks, func(i, j int) bool {
		a, b := blocks[i].Vertices, blocks[j].Vertices
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})

	n := g.NumVertices()
	vertexBlocks := make([][]int, n)
	for i, b := range blocks {
		for _, v := range b.Vertices {
			vertexBlocks[v] = append(vertexBlocks[v], i)
		}
	}
	isCut := make([]bool, n)
	for v := 0; v < n; v++ {
		isCut[v] = len(vertexBlocks[v]) >= 2
	}

	bLabel := func(i int) string { return fmt.Sprintf("b%0*d", digits(len(blocks)), i) }
	cLabel := func(v tree.VertexID) string { return fmt.Sprintf("c%0*d", digits(n), int(v)) }

	var tb tree.Builder
	if len(blocks) == 1 {
		tb.AddVertex(bLabel(0))
	}
	for i, b := range blocks {
		for _, v := range b.Vertices {
			if isCut[v] {
				tb.AddEdge(bLabel(i), cLabel(v))
			}
		}
	}
	bc, err := tb.Build()
	if err != nil {
		return fmt.Errorf("graph: block-cut tree: %w", err)
	}

	dc := decomposition{
		blocks:       blocks,
		vertexBlocks: vertexBlocks,
		isCut:        isCut,
		bc:           bc,
		eta:          make([]tree.VertexID, n),
		nodeBlock:    make([]int, bc.NumVertices()),
		nodeCut:      make([]tree.VertexID, bc.NumVertices()),
		blockNode:    make([]tree.VertexID, len(blocks)),
	}
	for i := range dc.nodeBlock {
		dc.nodeBlock[i] = -1
		dc.nodeCut[i] = tree.None
	}
	for i := range blocks {
		node, err := bc.VertexByLabel(bLabel(i))
		if err != nil {
			return fmt.Errorf("graph: block-cut tree: %w", err)
		}
		dc.blockNode[i] = node
		dc.nodeBlock[node] = i
	}
	for v := tree.VertexID(0); int(v) < n; v++ {
		if isCut[v] {
			node, err := bc.VertexByLabel(cLabel(v))
			if err != nil {
				return fmt.Errorf("graph: block-cut tree: %w", err)
			}
			dc.eta[v] = node
			dc.nodeCut[node] = v
		} else {
			dc.eta[v] = dc.blockNode[vertexBlocks[v][0]]
		}
	}
	g.dc = dc
	return nil
}

// digits returns the zero-pad width for count distinct indices.
func digits(count int) int {
	w := 1
	for count > 10 {
		count = (count + 9) / 10
		w++
	}
	return w
}

// biconnected returns the vertex sets of g's biconnected components via the
// classic lowpoint DFS with an edge stack. A single-vertex graph is one
// block. Deterministic: DFS from vertex 0, neighbors ascending.
func (g *Graph) biconnected() [][]tree.VertexID {
	n := g.NumVertices()
	if n == 1 {
		return [][]tree.VertexID{{0}}
	}
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]tree.VertexID, n)
	for i := range parent {
		parent[i] = tree.None
	}
	timer := 0
	type edge struct{ u, v tree.VertexID }
	var stack []edge
	var out [][]tree.VertexID

	pop := func(u, v tree.VertexID) {
		seen := map[tree.VertexID]bool{}
		var vs []tree.VertexID
		for len(stack) > 0 {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range []tree.VertexID{e.u, e.v} {
				if !seen[w] {
					seen[w] = true
					vs = append(vs, w)
				}
			}
			if e.u == u && e.v == v {
				break
			}
		}
		out = append(out, vs)
	}

	var dfs func(u tree.VertexID)
	dfs = func(u tree.VertexID) {
		timer++
		disc[u] = timer
		low[u] = timer
		for _, v := range g.adj[u] {
			switch {
			case disc[v] == 0:
				parent[v] = u
				stack = append(stack, edge{u, v})
				dfs(v)
				if low[v] < low[u] {
					low[u] = low[v]
				}
				if low[v] >= disc[u] {
					pop(u, v)
				}
			case v != parent[u] && disc[v] < disc[u]:
				stack = append(stack, edge{u, v})
				if disc[v] < low[u] {
					low[u] = disc[v]
				}
			}
		}
	}
	dfs(0)
	return out
}

// classify determines a block's kind from its induced subgraph.
func (g *Graph) classify(vs []tree.VertexID) BlockKind {
	k := len(vs)
	if k == 2 {
		return BlockEdge
	}
	in := make(map[tree.VertexID]bool, k)
	for _, v := range vs {
		in[v] = true
	}
	edges := 0
	allDegree2 := true
	for _, v := range vs {
		deg := 0
		for _, w := range g.adj[v] {
			if in[w] {
				deg++
			}
		}
		edges += deg
		if deg != 2 {
			allDegree2 = false
		}
	}
	edges /= 2
	switch {
	case edges == k*(k-1)/2:
		return BlockClique // includes K1 and K3
	case allDegree2 && edges == k:
		return BlockCycle
	default:
		return BlockOther
	}
}

// ---- decomposition accessors

// Blocks returns the biconnected components in canonical order. The slice
// and its contents are shared; callers must not mutate them.
func (g *Graph) Blocks() []Block { return g.dc.blocks }

// IsCut reports whether v is a cut (articulation) vertex.
func (g *Graph) IsCut(v tree.VertexID) bool { return g.dc.isCut[v] }

// IsBlockGraph reports whether every block is an edge or a clique — the
// class the journal algorithm achieves exact validity and 1-agreement on.
func (g *Graph) IsBlockGraph() bool {
	for _, b := range g.dc.blocks {
		if b.Kind != BlockEdge && b.Kind != BlockClique {
			return false
		}
	}
	return true
}

// BlockCutTree returns the block-cut tree: one node per block ("b<idx>"),
// one per cut vertex ("c<vertex>"), edges for containment. It is a regular
// *tree.Tree, so the entire TreeAA machinery runs on it unchanged.
func (g *Graph) BlockCutTree() *tree.Tree { return g.dc.bc }

// Eta maps a graph vertex to its block-cut tree node: its cut node if v is
// a cut vertex, else the node of the unique block containing v.
func (g *Graph) Eta(v tree.VertexID) tree.VertexID { return g.dc.eta[v] }

// NodeBlock resolves a block-cut tree node to its block index; ok is false
// for cut nodes.
func (g *Graph) NodeBlock(node tree.VertexID) (int, bool) {
	i := g.dc.nodeBlock[node]
	return i, i >= 0
}

// NodeCut resolves a block-cut tree node to its cut vertex; ok is false for
// block nodes.
func (g *Graph) NodeCut(node tree.VertexID) (tree.VertexID, bool) {
	v := g.dc.nodeCut[node]
	return v, v != tree.None
}

// BlockNode returns the block-cut tree node of block index i.
func (g *Graph) BlockNode(i int) tree.VertexID { return g.dc.blockNode[i] }

// BlocksOf returns the indices of the blocks containing v (two or more
// exactly when v is a cut vertex). The slice is shared; do not mutate.
func (g *Graph) BlocksOf(v tree.VertexID) []int { return g.dc.vertexBlocks[v] }

// InSameBlock reports whether u and v belong to a common block. Vertices of
// a common block are at geodesic distance at most the block diameter, and
// at most 1 when the block is an edge or a clique.
func (g *Graph) InSameBlock(u, v tree.VertexID) bool {
	a, b := g.dc.vertexBlocks[u], g.dc.vertexBlocks[v]
	for _, i := range a {
		for _, j := range b {
			if i == j {
				return true
			}
		}
	}
	return false
}
