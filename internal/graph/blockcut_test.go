package graph_test

// Differential tests pinning the lowpoint-DFS block-cut decomposition
// against a brute-force oracle that uses only the definitions: a cut vertex
// is one whose removal disconnects the graph, and blocks are obtained by
// recursively splitting at any cut vertex until no subgraph has one. The
// two implementations share no code (the oracle never looks at discovery
// times or lowpoints), so agreement on exhaustive small graphs and random
// graphs up to 12 vertices pins the decomposition itself.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"treeaa/internal/graph"
	"treeaa/internal/tree"
)

// adjacency is the oracle's graph view: sorted vertex set + edge test.
type adjacency struct {
	vs    []tree.VertexID
	edges map[[2]tree.VertexID]bool
}

func oracleView(g *graph.Graph) adjacency {
	a := adjacency{edges: map[[2]tree.VertexID]bool{}}
	for v := tree.VertexID(0); int(v) < g.NumVertices(); v++ {
		a.vs = append(a.vs, v)
	}
	for _, e := range g.Edges() {
		a.edges[[2]tree.VertexID{e[0], e[1]}] = true
		a.edges[[2]tree.VertexID{e[1], e[0]}] = true
	}
	return a
}

// components returns the connected components of the subgraph induced on vs.
func (a adjacency) components(vs []tree.VertexID) [][]tree.VertexID {
	in := map[tree.VertexID]bool{}
	for _, v := range vs {
		in[v] = true
	}
	seen := map[tree.VertexID]bool{}
	var out [][]tree.VertexID
	for _, s := range vs {
		if seen[s] {
			continue
		}
		comp := []tree.VertexID{s}
		seen[s] = true
		for i := 0; i < len(comp); i++ {
			for _, w := range vs {
				if !seen[w] && a.edges[[2]tree.VertexID{comp[i], w}] {
					seen[w] = true
					comp = append(comp, w)
				}
			}
		}
		_ = in
		out = append(out, comp)
	}
	return out
}

// bruteBlocks splits the (connected) induced subgraph on vs at any vertex
// whose removal disconnects it, recursing on each component plus the cut
// vertex; a subgraph with no such vertex is one block.
func (a adjacency) bruteBlocks(vs []tree.VertexID) [][]tree.VertexID {
	if len(vs) <= 2 {
		return [][]tree.VertexID{vs}
	}
	for _, cut := range vs {
		var rest []tree.VertexID
		for _, v := range vs {
			if v != cut {
				rest = append(rest, v)
			}
		}
		comps := a.components(rest)
		if len(comps) < 2 {
			continue
		}
		var out [][]tree.VertexID
		for _, comp := range comps {
			out = append(out, a.bruteBlocks(append(comp, cut))...)
		}
		return out
	}
	return [][]tree.VertexID{vs}
}

// canonical sorts a block list into a comparable form.
func canonical(blocks [][]tree.VertexID) []string {
	out := make([]string, len(blocks))
	for i, b := range blocks {
		sorted := append([]tree.VertexID(nil), b...)
		sort.Slice(sorted, func(x, y int) bool { return sorted[x] < sorted[y] })
		out[i] = fmt.Sprint(sorted)
	}
	sort.Strings(out)
	return out
}

func checkAgainstOracle(t *testing.T, g *graph.Graph, desc string) {
	t.Helper()
	a := oracleView(g)
	want := canonical(a.bruteBlocks(a.vs))
	var got [][]tree.VertexID
	for _, b := range g.Blocks() {
		got = append(got, b.Vertices)
	}
	if !reflect.DeepEqual(canonical(got), want) {
		t.Fatalf("%s: blocks = %v, oracle = %v", desc, canonical(got), want)
	}
	// Cut vertices by definition: removal disconnects.
	for v := tree.VertexID(0); int(v) < g.NumVertices(); v++ {
		var rest []tree.VertexID
		for _, u := range a.vs {
			if u != v {
				rest = append(rest, u)
			}
		}
		brute := len(rest) > 0 && len(a.components(rest)) > 1
		if g.IsCut(v) != brute {
			t.Fatalf("%s: IsCut(%d) = %v, oracle = %v", desc, int(v), g.IsCut(v), brute)
		}
	}
	checkBlockCutShape(t, g, desc)
}

// checkBlockCutShape asserts the structural invariants of the emitted tree:
// every node is exactly one of block/cut, every edge joins a block node and
// a cut node, η maps cut vertices to cut nodes and others to the node of
// their unique block, and BlockNode inverts NodeBlock.
func checkBlockCutShape(t *testing.T, g *graph.Graph, desc string) {
	t.Helper()
	bc := g.BlockCutTree()
	for node := tree.VertexID(0); int(node) < bc.NumVertices(); node++ {
		_, isBlock := g.NodeBlock(node)
		_, isCutNode := g.NodeCut(node)
		if isBlock == isCutNode {
			t.Fatalf("%s: node %d block=%v cut=%v", desc, int(node), isBlock, isCutNode)
		}
		for _, nb := range bc.Neighbors(node) {
			_, nbBlock := g.NodeBlock(nb)
			if isBlock == nbBlock {
				t.Fatalf("%s: edge %d-%d does not alternate block/cut", desc, int(node), int(nb))
			}
		}
	}
	for i := range g.Blocks() {
		if bi, ok := g.NodeBlock(g.BlockNode(i)); !ok || bi != i {
			t.Fatalf("%s: BlockNode(%d) does not invert NodeBlock", desc, i)
		}
	}
	for v := tree.VertexID(0); int(v) < g.NumVertices(); v++ {
		node := g.Eta(v)
		if g.IsCut(v) {
			if c, ok := g.NodeCut(node); !ok || c != v {
				t.Fatalf("%s: eta(cut %d) = node %d", desc, int(v), int(node))
			}
			continue
		}
		bi, ok := g.NodeBlock(node)
		if !ok {
			t.Fatalf("%s: eta(%d) is not a block node", desc, int(v))
		}
		found := false
		for _, u := range g.Blocks()[bi].Vertices {
			if u == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: eta(%d) points to a block not containing it", desc, int(v))
		}
	}
}

// buildFromEdges constructs a graph over n vertices from an edge bitmask;
// ok is false when the subset is not a connected simple graph.
func buildFromEdges(n int, pairs [][2]int, mask uint64) (*graph.Graph, bool) {
	var b graph.Builder
	for i := 1; i <= n; i++ {
		b.AddVertex(fmt.Sprintf("v%02d", i))
	}
	for i, p := range pairs {
		if mask&(1<<uint(i)) != 0 {
			b.AddEdge(fmt.Sprintf("v%02d", p[0]), fmt.Sprintf("v%02d", p[1]))
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, false
	}
	return g, true
}

func vertexPairs(n int) [][2]int {
	var pairs [][2]int
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}

// TestBlockCutOracleExhaustive checks every connected graph on up to 5
// vertices (all edge subsets of K5) against the brute-force oracle.
func TestBlockCutOracleExhaustive(t *testing.T) {
	for n := 1; n <= 5; n++ {
		pairs := vertexPairs(n)
		for mask := uint64(0); mask < 1<<uint(len(pairs)); mask++ {
			g, ok := buildFromEdges(n, pairs, mask)
			if !ok {
				continue
			}
			checkAgainstOracle(t, g, fmt.Sprintf("n=%d mask=%#x", n, mask))
		}
	}
}

// TestBlockCutOracleRandom checks random connected graphs on 6–12 vertices
// and the package generators against the oracle.
func TestBlockCutOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		n := 6 + rng.Intn(7)
		pairs := vertexPairs(n)
		p := 0.15 + 0.4*rng.Float64()
		var g *graph.Graph
		for g == nil {
			var mask uint64
			for i := range pairs {
				if rng.Float64() < p {
					mask |= 1 << uint(i)
				}
			}
			g, _ = buildFromEdges(n, pairs, mask)
		}
		checkAgainstOracle(t, g, fmt.Sprintf("random trial %d (n=%d)", trial, n))
	}
	for _, tc := range []struct {
		desc string
		g    *graph.Graph
	}{
		{"cycle:9", graph.NewCycle(9)},
		{"cycle:12", graph.NewCycle(12)},
		{"clique:5", graph.NewClique(5)},
		{"cliquechain:4:3", graph.NewCliqueChain(4, 3)},
		{"cliquechain:5:2", graph.NewCliqueChain(5, 2)},
		{"cactus:3:4", graph.NewCactusChain(3, 4)},
		{"cactus:2:5", graph.NewCactusChain(2, 5)},
	} {
		checkAgainstOracle(t, tc.g, tc.desc)
	}
	for seed := int64(1); seed <= 25; seed++ {
		g := graph.NewRandomBlock(10, rand.New(rand.NewSource(seed)))
		checkAgainstOracle(t, g, fmt.Sprintf("randomblock:10 seed %d", seed))
		if !g.IsBlockGraph() {
			t.Fatalf("randomblock:10 seed %d is not a block graph", seed)
		}
	}
}

// TestBlockKinds pins the classification on known shapes.
func TestBlockKinds(t *testing.T) {
	if bs := graph.NewCycle(9).Blocks(); len(bs) != 1 || bs[0].Kind != graph.BlockCycle {
		t.Fatalf("cycle:9 blocks = %v", bs)
	}
	if bs := graph.NewCycle(3).Blocks(); len(bs) != 1 || bs[0].Kind != graph.BlockClique {
		t.Fatalf("cycle:3 blocks = %v", bs)
	}
	for _, b := range graph.NewCliqueChain(4, 3).Blocks() {
		if b.Kind != graph.BlockClique {
			t.Fatalf("cliquechain block kind = %v", b.Kind)
		}
	}
	for _, b := range graph.NewCliqueChain(5, 2).Blocks() {
		if b.Kind != graph.BlockEdge {
			t.Fatalf("edge-chain block kind = %v", b.Kind)
		}
	}
	for _, b := range graph.NewCactusChain(3, 4).Blocks() {
		if b.Kind != graph.BlockCycle {
			t.Fatalf("cactus block kind = %v", b.Kind)
		}
	}
	// K4 minus one edge: biconnected but neither clique nor cycle.
	g, err := graph.ParseString("a - b\nb - c\nc - d\nd - a\na - c\n")
	if err != nil {
		t.Fatal(err)
	}
	if bs := g.Blocks(); len(bs) != 1 || bs[0].Kind != graph.BlockOther {
		t.Fatalf("K4-e blocks = %v", bs)
	}
	if g.IsBlockGraph() {
		t.Fatal("K4-e classified as block graph")
	}
}
