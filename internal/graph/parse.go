package graph

// The graph-space spec mini-language and the textual edge-list format. The
// spec grammar mirrors the tree specs in internal/cli:
//
//	cycle:K            cycle C_K (K >= 3)
//	clique:K           complete graph K_K
//	cliquechain:B:S    chain of B cliques of S vertices sharing cut vertices
//	cactus:B:L         chain of B cycles of length L sharing cut vertices
//	randomblock:K      random block graph on >= K vertices (uses seed)
//	@FILE              edge-list file ("a - b" per line, '#' comments)
//
// The edge-list format is the same as internal/tree's: one "a - b" line per
// edge, so a tree's edge list parses as a graph (all edge blocks) and the
// shared duplicate/self-loop validation applies on both paths.

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
)

// ParseSpec builds a graph from a compact spec (see the package comment of
// this file for the grammar).
func ParseSpec(spec string, seed int64) (*Graph, error) {
	if strings.HasPrefix(spec, "@") {
		f, err := os.Open(spec[1:])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return Parse(f)
	}
	parts := strings.Split(spec, ":")
	argInt := func(i, minVal int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("graph spec %q: missing argument %d", spec, i)
		}
		v, err := strconv.Atoi(parts[i])
		if err != nil || v < minVal {
			return 0, fmt.Errorf("graph spec %q: bad argument %q", spec, parts[i])
		}
		return v, nil
	}
	switch parts[0] {
	case "cycle":
		k, err := argInt(1, 3)
		if err != nil {
			return nil, err
		}
		return NewCycle(k), nil
	case "clique":
		k, err := argInt(1, 1)
		if err != nil {
			return nil, err
		}
		return NewClique(k), nil
	case "cliquechain":
		b, err := argInt(1, 1)
		if err != nil {
			return nil, err
		}
		s, err := argInt(2, 2)
		if err != nil {
			return nil, err
		}
		return NewCliqueChain(b, s), nil
	case "cactus":
		b, err := argInt(1, 1)
		if err != nil {
			return nil, err
		}
		l, err := argInt(2, 3)
		if err != nil {
			return nil, err
		}
		return NewCactusChain(b, l), nil
	case "randomblock":
		k, err := argInt(1, 1)
		if err != nil {
			return nil, err
		}
		return NewRandomBlock(k, rand.New(rand.NewSource(seed))), nil
	default:
		return nil, fmt.Errorf("unknown graph spec %q", spec)
	}
}

// Parse reads the textual edge-list format: one "a - b" line per edge,
// blank lines and '#' comments ignored, a single non-edge line declaring an
// isolated vertex (only valid alone, as a one-vertex graph).
func Parse(r io.Reader) (*Graph, error) {
	var b Builder
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "-")
		switch len(fields) {
		case 1:
			b.AddVertex(strings.TrimSpace(fields[0]))
		case 2:
			u, v := strings.TrimSpace(fields[0]), strings.TrimSpace(fields[1])
			if u == "" || v == "" {
				return nil, fmt.Errorf("graph: line %d: empty endpoint in %q", lineNo, line)
			}
			b.AddEdge(u, v)
		default:
			return nil, fmt.Errorf("graph: line %d: want \"a - b\", got %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}

// ParseString is Parse over a string.
func ParseString(s string) (*Graph, error) { return Parse(strings.NewReader(s)) }
