package graph_test

// End-to-end tests of the graph machine under the in-process drivers:
// validity on the geodesic hull of honest inputs, pairwise agreement
// (exact 1-agreement on block graphs, common-block on cycles), termination
// within the TreeAA round budget of the block-cut tree, determinism, and
// sequential/concurrent driver equivalence. Adversaries come from the
// shared cli catalogue built against the block-cut tree, so the graph
// machine faces exactly the attacks the tree machine does.

import (
	"fmt"
	"reflect"
	"testing"

	"treeaa/internal/cli"
	"treeaa/internal/graph"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// spreadGraphInputs mirrors cli.SpreadInputs over a graph's vertex range.
func spreadGraphInputs(g *graph.Graph, n int) []tree.VertexID {
	inputs := make([]tree.VertexID, n)
	denom := n - 1
	if denom < 1 {
		denom = 1
	}
	for i := range inputs {
		inputs[i] = tree.VertexID(i * (g.NumVertices() - 1) / denom)
	}
	return inputs
}

func graphMachines(t *testing.T, g *graph.Graph, n, tt int, inputs []tree.VertexID) []sim.Machine {
	t.Helper()
	ms := make([]sim.Machine, n)
	for i := range ms {
		m, err := graph.NewMachine(graph.Config{Graph: g, N: n, T: tt, ID: sim.PartyID(i), Input: inputs[i]})
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	return ms
}

// checkGraphResult asserts the decode rule's guarantees over an execution.
func checkGraphResult(t *testing.T, g *graph.Graph, res *sim.Result, inputs []tree.VertexID, desc string) {
	t.Helper()
	var honestInputs []tree.VertexID
	for p := 0; p < len(inputs); p++ {
		if !res.Corrupted[sim.PartyID(p)] {
			honestInputs = append(honestInputs, inputs[p])
		}
	}
	outs := make(map[sim.PartyID]tree.VertexID)
	for p, raw := range res.Outputs {
		v, ok := raw.(tree.VertexID)
		if !ok {
			t.Fatalf("%s: party %d output %T", desc, p, raw)
		}
		if !g.Valid(v) {
			t.Fatalf("%s: party %d output invalid vertex %d", desc, p, int(v))
		}
		outs[p] = v
	}
	for p := 0; p < len(inputs); p++ {
		if !res.Corrupted[sim.PartyID(p)] {
			if _, ok := outs[sim.PartyID(p)]; !ok {
				t.Fatalf("%s: honest party %d has no output", desc, p)
			}
		}
	}
	// Validity: every honest output in the geodesic hull of honest inputs.
	for p, v := range outs {
		if !g.InHull(honestInputs, v) {
			t.Fatalf("%s: party %d output %s outside hull of honest inputs %v",
				desc, p, g.Label(v), g.Labels(honestInputs))
		}
	}
	// Agreement: <= 1 or common block for every pair; exact 1-agreement on
	// block graphs.
	for p, u := range outs {
		for q, v := range outs {
			if p >= q {
				continue
			}
			if !g.AgreementOK(u, v) {
				t.Fatalf("%s: parties %d/%d outputs %s/%s violate agreement",
					desc, p, q, g.Label(u), g.Label(v))
			}
			if g.IsBlockGraph() && g.Dist(u, v) > 1 {
				t.Fatalf("%s: block graph outputs %s/%s at distance %d",
					desc, g.Label(u), g.Label(v), g.Dist(u, v))
			}
		}
	}
}

func testSpecs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	specs := map[string]*graph.Graph{}
	for _, s := range []string{
		"clique:5", "cycle:4", "cycle:9", "cliquechain:3:4",
		"cliquechain:5:2", "cactus:3:4", "cactus:2:5", "randomblock:12",
	} {
		g, err := graph.ParseSpec(s, 11)
		if err != nil {
			t.Fatal(err)
		}
		specs[s] = g
	}
	return specs
}

func TestMachineHonest(t *testing.T) {
	for spec, g := range testSpecs(t) {
		for _, n := range []int{4, 7} {
			inputs := spreadGraphInputs(g, n)
			res, err := sim.Run(sim.Config{N: n, MaxCorrupt: 0, MaxRounds: graph.Rounds(g) + 2},
				graphMachines(t, g, n, (n-1)/3, inputs))
			if err != nil {
				t.Fatalf("%s n=%d: %v", spec, n, err)
			}
			checkGraphResult(t, g, res, inputs, fmt.Sprintf("%s n=%d", spec, n))
			if res.Rounds > graph.Rounds(g)+1 {
				t.Fatalf("%s n=%d: %d rounds for budget %d", spec, n, res.Rounds, graph.Rounds(g))
			}
		}
	}
}

func TestMachineByzantine(t *testing.T) {
	for spec, g := range testSpecs(t) {
		for _, advName := range cli.AdversaryNames() {
			for seed := int64(1); seed <= 3; seed++ {
				n, tt := 4, 1
				adv, _, err := cli.BuildAdversary(advName, g.BlockCutTree(), n, tt, seed)
				if err != nil {
					t.Fatal(err)
				}
				inputs := spreadGraphInputs(g, n)
				desc := fmt.Sprintf("%s adversary=%s seed=%d", spec, advName, seed)
				res, err := sim.Run(
					sim.Config{N: n, MaxCorrupt: tt, Adversary: adv, MaxRounds: graph.Rounds(g) + 2},
					graphMachines(t, g, n, tt, inputs))
				if err != nil {
					t.Fatalf("%s: %v", desc, err)
				}
				checkGraphResult(t, g, res, inputs, desc)
			}
		}
	}
}

// TestMachineDriverEquivalence pins byte-identical Results between the
// sequential and concurrent drivers on graph machines (fresh machines per
// driver; Machine is single-execution state).
func TestMachineDriverEquivalence(t *testing.T) {
	for spec, g := range testSpecs(t) {
		n, tt := 5, 1
		inputs := spreadGraphInputs(g, n)
		mk := func() []sim.Machine { return graphMachines(t, g, n, tt, inputs) }
		adv, _, err := cli.BuildAdversary("equivocator", g.BlockCutTree(), n, tt, 7)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{N: n, MaxCorrupt: tt, Adversary: adv, MaxRounds: graph.Rounds(g) + 2}
		seq, err := sim.Run(cfg, mk())
		if err != nil {
			t.Fatalf("%s sequential: %v", spec, err)
		}
		adv2, _, err := cli.BuildAdversary("equivocator", g.BlockCutTree(), n, tt, 7)
		if err != nil {
			t.Fatal(err)
		}
		cfg2 := cfg
		cfg2.Adversary = adv2
		conc, err := sim.RunConcurrent(cfg2, mk())
		if err != nil {
			t.Fatalf("%s concurrent: %v", spec, err)
		}
		if !reflect.DeepEqual(seq, conc) {
			t.Fatalf("%s: sequential and concurrent results differ:\n%+v\n%+v", spec, seq, conc)
		}
	}
}

// TestMachineSingleBlock pins the trivial mode: one block means a
// single-node block-cut tree, zero protocol rounds, and every party keeps
// its own input — exact for cliques (diameter 1), the relaxed per-block
// regime on cycles.
func TestMachineSingleBlock(t *testing.T) {
	g := graph.NewClique(6)
	n := 4
	inputs := spreadGraphInputs(g, n)
	res, err := sim.Run(sim.Config{N: n, MaxCorrupt: 1, MaxRounds: graph.Rounds(g) + 2},
		graphMachines(t, g, n, 1, inputs))
	if err != nil {
		t.Fatal(err)
	}
	for p, raw := range res.Outputs {
		if raw.(tree.VertexID) != inputs[p] {
			t.Fatalf("party %d output %v, want own input %d", p, raw, int(inputs[p]))
		}
	}
}

// TestDecode pins the three decode cases on a concrete chain.
func TestDecode(t *testing.T) {
	g := graph.NewCliqueChain(3, 3) // triangles {0,1,2},{2,3,4},{4,5,6}; cuts 2 and 4
	m, err := graph.NewMachine(graph.Config{Graph: g, N: 4, T: 1, ID: 0, Input: 0})
	if err != nil {
		t.Fatal(err)
	}
	bc := g.BlockCutTree()
	nodeOf := func(label string) tree.VertexID {
		v, err := bc.VertexByLabel(label)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Cut node: the cut vertex itself.
	if got := m.Decode(g.Eta(2)); got != 2 {
		t.Fatalf("decode(cut 2) = %d", int(got))
	}
	// Own block: the party's own input.
	if got := m.Decode(nodeOf("b0")); got != 0 {
		t.Fatalf("decode(own block) = %d", int(got))
	}
	// Far block: the gate cut vertex toward the input. Blocks sort by vertex
	// list, so b0 = {0,1,2}, b1 = {2,3,4}, b2 = {4,5,6}; from input 0 the
	// gate of b2 is cut vertex 4 and the gate of b1 is cut vertex 2.
	if got := m.Decode(nodeOf("b2")); got != 4 {
		t.Fatalf("decode(far block b2) = %d, want gate 4", int(got))
	}
	if got := m.Decode(nodeOf("b1")); got != 2 {
		t.Fatalf("decode(mid block b1) = %d, want gate 2", int(got))
	}
}

func TestNewMachineRejects(t *testing.T) {
	g := graph.NewCycle(4)
	if _, err := graph.NewMachine(graph.Config{Graph: nil, N: 4, T: 1, ID: 0, Input: 0}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := graph.NewMachine(graph.Config{Graph: g, N: 4, T: 1, ID: 0, Input: 99}); err == nil {
		t.Fatal("out-of-range input accepted")
	}
}
