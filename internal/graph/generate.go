package graph

// Generators for the graph-space spec mini-language. Labels follow the
// repo-wide zero-padded convention ("v007") so lexicographic label order
// equals construction order and every generated graph is deterministic for
// a given spec and seed.

import (
	"fmt"
	"math/rand"
)

// numLabel formats i zero-padded to width ("v007").
func numLabel(i, width int) string { return fmt.Sprintf("v%0*d", width, i) }

// labelWidth is the pad width for n vertices numbered from 1.
func labelWidth(n int) int { return len(fmt.Sprint(n)) }

// NewCycle returns the cycle C_n (n >= 3): the canonical non-block-graph
// space, where 1-agreement is impossible (Alistarh–Ellen–Rybicki) and the
// machine's guarantee is the relaxed per-block step.
func NewCycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle of %d vertices", n))
	}
	w := labelWidth(n)
	var b Builder
	for i := 2; i <= n; i++ {
		b.AddEdge(numLabel(i-1, w), numLabel(i, w))
	}
	b.AddEdge(numLabel(n, w), numLabel(1, w))
	return mustBuild(&b)
}

// NewClique returns the complete graph K_n (n >= 1): a single clique block.
func NewClique(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: clique of %d vertices", n))
	}
	w := labelWidth(n)
	var b Builder
	b.AddVertex(numLabel(1, w))
	for i := 2; i <= n; i++ {
		for j := 1; j < i; j++ {
			b.AddEdge(numLabel(j, w), numLabel(i, w))
		}
	}
	return mustBuild(&b)
}

// NewCliqueChain returns a chain of `blocks` cliques of `size` vertices
// each, consecutive cliques sharing one cut vertex — the canonical block
// graph whose block-cut tree is a path.
func NewCliqueChain(blocks, size int) *Graph {
	if blocks < 1 || size < 2 {
		panic(fmt.Sprintf("graph: clique chain %d x %d", blocks, size))
	}
	n := blocks*(size-1) + 1
	w := labelWidth(n)
	var b Builder
	next := 1
	b.AddVertex(numLabel(next, w))
	for bl := 0; bl < blocks; bl++ {
		start := next // shared cut vertex with the previous block
		members := []int{start}
		for k := 1; k < size; k++ {
			next++
			members = append(members, next)
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				b.AddEdge(numLabel(members[i], w), numLabel(members[j], w))
			}
		}
	}
	return mustBuild(&b)
}

// NewCactusChain returns a cactus-like chain of `blocks` cycles of length
// `cycleLen`, consecutive cycles sharing one cut vertex. With cycleLen 3
// the blocks are triangles (cliques) and the result is a block graph; with
// cycleLen 4 or 5 each block's diameter is 2, the relaxed
// 2-approximation regime.
func NewCactusChain(blocks, cycleLen int) *Graph {
	if blocks < 1 || cycleLen < 3 {
		panic(fmt.Sprintf("graph: cactus chain %d x %d", blocks, cycleLen))
	}
	n := blocks*(cycleLen-1) + 1
	w := labelWidth(n)
	var b Builder
	next := 1
	b.AddVertex(numLabel(next, w))
	for bl := 0; bl < blocks; bl++ {
		start := next
		prev := start
		for k := 1; k < cycleLen; k++ {
			next++
			b.AddEdge(numLabel(prev, w), numLabel(next, w))
			prev = next
		}
		b.AddEdge(numLabel(prev, w), numLabel(start, w))
	}
	return mustBuild(&b)
}

// NewRandomBlock returns a random block graph on at least n vertices: a
// random block-cut skeleton grown by repeatedly attaching a clique block
// (2–4 vertices) at a uniformly chosen existing vertex. Every block is a
// clique, so the result is always a true block graph.
func NewRandomBlock(n int, rng *rand.Rand) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: random block graph of %d vertices", n))
	}
	// Upper-bound the label width: each attachment adds at most 3 vertices.
	w := labelWidth(n + 3)
	var b Builder
	b.AddVertex(numLabel(1, w))
	count := 1
	for count < n {
		at := 1 + rng.Intn(count)
		size := 2 + rng.Intn(3)
		members := []int{at}
		for k := 1; k < size; k++ {
			count++
			members = append(members, count)
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				b.AddEdge(numLabel(members[i], w), numLabel(members[j], w))
			}
		}
	}
	return mustBuild(&b)
}

func mustBuild(b *Builder) *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
