package graph_test

import (
	"errors"
	"strings"
	"testing"

	"treeaa/internal/graph"
	"treeaa/internal/tree"
)

func TestParseSpec(t *testing.T) {
	for _, tc := range []struct {
		spec     string
		vertices int
		edges    int
	}{
		{"cycle:6", 6, 6},
		{"clique:4", 4, 6},
		{"cliquechain:3:3", 7, 9},
		{"cliquechain:4:2", 5, 4}, // path
		{"cactus:2:5", 9, 10},
	} {
		g, err := graph.ParseSpec(tc.spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if g.NumVertices() != tc.vertices || g.NumEdges() != tc.edges {
			t.Fatalf("%s: %d vertices / %d edges, want %d / %d",
				tc.spec, g.NumVertices(), g.NumEdges(), tc.vertices, tc.edges)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"", "cycle", "cycle:2", "cycle:x", "clique:0", "cliquechain:3",
		"cliquechain:0:3", "cliquechain:3:1", "cactus:1:2", "randomblock:0",
		"path:8", // tree specs are not graph specs
	} {
		if _, err := graph.ParseSpec(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseSpecSeedDeterminism(t *testing.T) {
	a, err := graph.ParseSpec("randomblock:15", 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := graph.ParseSpec("randomblock:15", 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := graph.ParseSpec("randomblock:15", 43)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB, bufC strings.Builder
	if err := a.WriteDOT(&bufA, "g", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteDOT(&bufB, "g", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteDOT(&bufC, "g", nil); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Fatal("same seed produced different random block graphs")
	}
	if bufA.String() == bufC.String() {
		t.Fatal("different seeds produced identical random block graphs")
	}
}

func TestParseEdgeList(t *testing.T) {
	g, err := graph.ParseString("# a triangle with a tail\na - b\nb - c\nc - a\nc - d\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d vertices / %d edges", g.NumVertices(), g.NumEdges())
	}
	if !g.IsCut(must(t, g, "c")) {
		t.Fatal("c is not a cut vertex")
	}
	// Single vertex graph.
	one, err := graph.ParseString("solo\n")
	if err != nil {
		t.Fatal(err)
	}
	if one.NumVertices() != 1 || len(one.Blocks()) != 1 {
		t.Fatalf("single vertex: %d vertices, %d blocks", one.NumVertices(), len(one.Blocks()))
	}
}

func must(t *testing.T, g *graph.Graph, label string) tree.VertexID {
	t.Helper()
	v, err := g.VertexByLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct {
		name, in string
		want     error
	}{
		{"empty", "", graph.ErrEmpty},
		{"disconnected", "a - b\nc - d\n", graph.ErrNotConnected},
		{"self-loop", "a - a\na - b\n", tree.ErrDuplicate},
		{"duplicate edge", "a - b\nb - c\na - b\n", tree.ErrDuplicate},
		{"reversed duplicate", "a - b\nb - a\n", tree.ErrDuplicate},
		{"bad label", "a - #b\n", graph.ErrBadLabel},
		{"isolated extra vertex", "a - b\nc\n", graph.ErrNotConnected},
	} {
		_, err := graph.ParseString(tc.in)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := graph.ParseString("a - b - c\n"); err == nil {
		t.Error("three-field line accepted")
	}
}

// TestDecompositionDeterminism pins byte-identical block-cut trees across
// repeated builds — the property every party relies on to agree on the
// protocol tree without communication.
func TestDecompositionDeterminism(t *testing.T) {
	build := func() string {
		g, err := graph.ParseSpec("cactus:3:4", 1)
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := g.BlockCutTree().WriteDOT(&buf, "bc", nil); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := build()
	for i := 0; i < 5; i++ {
		if build() != first {
			t.Fatal("block-cut tree not deterministic across builds")
		}
	}
}
