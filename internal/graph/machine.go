package graph

// The block-graph agreement machine: the journal version's adaptation of
// TreeAA. The protocol is TreeAA, verbatim, on the block-cut tree — every
// party maps its input vertex to η(input) and runs the unchanged core
// machine (PathsFinder routing over the block-cut tree's Euler list, then
// the RealAA projection onto the agreed root path; a path-shaped block-cut
// tree takes the pathaa shortcut) — followed by a purely local decode of
// the agreed tree node back into the graph:
//
//   - a cut node decodes to its cut vertex;
//   - a block node decodes to the party's own input when that input lies in
//     the block (exact for clique and edge blocks, the relaxed per-block
//     step for cycles);
//   - otherwise to the block's gate toward the input: the cut vertex of the
//     block on the block-cut tree path toward η(input).
//
// Why this is safe. TreeAA's validity on the block-cut tree puts the agreed
// node on a path between two honest η-images, and its 1-agreement puts any
// two honest parties' nodes within distance 1; block-cut tree neighbors are
// always a block and one of its cut vertices, so every decode above lands
// in that one block's vertex set. Validity in the graph follows because a
// cut node separating two honest inputs lies on every path between them
// (hence in the geodesic hull), an own input is trivially in the hull, and
// a gate toward the party's own input lies on a geodesic from that input to
// an honest input attached beyond the block. 1-agreement in geodesic
// distance holds whenever the shared block is an edge or a clique — i.e. on
// every true block graph, the journal result — while a shared cycle block
// bounds disagreement by the block diameter (2 on the C4/C5 cactus chains),
// the best possible on cycles by the Alistarh–Ellen–Rybicki impossibility.
//
// The machine embeds the core machine rather than reimplementing any phase,
// so rounds, message complexity, wire payloads, adversary phase tags, and
// every probe surface (suspicion masks, RealAA histories, PathsFinder
// paths) are exactly those of TreeAA on the block-cut tree.

import (
	"fmt"

	"treeaa/internal/core"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// Config configures one party's graph machine.
type Config struct {
	Graph *Graph
	N     int // parties
	T     int // Byzantine budget
	ID    sim.PartyID
	Input tree.VertexID // this party's input vertex of Graph
}

// Machine is one party's block-graph agreement state machine. It implements
// sim.Machine by delegating every round to the inner core machine on the
// block-cut tree and decoding the agreed node at output time.
type Machine struct {
	g     *Graph
	input tree.VertexID
	inner *core.Machine
}

// NewMachine validates the configuration and builds the machine.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("graph: nil graph")
	}
	if !cfg.Graph.Valid(cfg.Input) {
		return nil, fmt.Errorf("%w: input %d", ErrUnknownVertex, int(cfg.Input))
	}
	inner, err := core.NewMachine(core.Config{
		Tree:  cfg.Graph.BlockCutTree(),
		N:     cfg.N,
		T:     cfg.T,
		ID:    cfg.ID,
		Input: cfg.Graph.Eta(cfg.Input),
	})
	if err != nil {
		return nil, err
	}
	return &Machine{g: cfg.Graph, input: cfg.Input, inner: inner}, nil
}

// Step implements sim.Machine.
func (m *Machine) Step(r int, inbox []sim.Message) []sim.Message {
	return m.inner.Step(r, inbox)
}

// Output implements sim.Machine: the decoded graph vertex once the inner
// machine has agreed on a block-cut tree node.
func (m *Machine) Output() (any, bool) {
	raw, done := m.inner.Output()
	if !done {
		return nil, false
	}
	return m.Decode(raw.(tree.VertexID)), true
}

// Core exposes the inner TreeAA machine on the block-cut tree — the probe
// surface the checker's per-round invariants (suspicion monotonicity,
// per-phase hull non-expansion, PathsFinder prefix agreement) read.
func (m *Machine) Core() *core.Machine { return m.inner }

// Decode maps an agreed block-cut tree node to this party's output vertex.
func (m *Machine) Decode(node tree.VertexID) tree.VertexID {
	if c, ok := m.g.NodeCut(node); ok {
		return c
	}
	bi, ok := m.g.NodeBlock(node)
	if !ok {
		panic(fmt.Sprintf("graph: node %d is neither block nor cut", int(node)))
	}
	b := m.g.Blocks()[bi]
	for _, v := range b.Vertices {
		if v == m.input {
			return m.input
		}
	}
	// Gate: the block's cut vertex toward the party's own input. The input
	// is outside the block here, so the block-cut tree path from η(input)
	// to the block node has at least one edge, and the node before the
	// block node is a cut node of the block.
	path := m.g.BlockCutTree().Path(m.g.Eta(m.input), node)
	gate, ok := m.g.NodeCut(path[len(path)-2])
	if !ok {
		panic(fmt.Sprintf("graph: block node %d adjacent to non-cut node", int(node)))
	}
	return gate
}

// AgreementOK reports the per-pair agreement invariant of the decode rule:
// outputs at geodesic distance <= 1, or both inside one common block. On a
// block graph the second case implies the first, so 1-agreement is exact;
// on cycle blocks the disagreement is bounded by the block diameter.
func (g *Graph) AgreementOK(u, v tree.VertexID) bool {
	return u == v || g.Adjacent(u, v) || g.InSameBlock(u, v)
}

// Rounds returns the honest round budget of the graph machine: TreeAA's
// budget on the block-cut tree.
func Rounds(g *Graph) int { return core.Rounds(g.BlockCutTree()) }

// PhaseTags returns the adversary-targeting phase schedule of the graph
// machine: TreeAA's phases on the block-cut tree.
func PhaseTags(g *Graph) []core.PhaseTag { return core.PhaseTags(g.BlockCutTree()) }
