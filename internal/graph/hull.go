package graph

// Geodesic convex hulls. The interval I(u, v) is the set of vertices on
// shortest u–v paths; a set is (geodesically) convex when it contains the
// interval of each of its pairs, and the hull ⟨S⟩ is the smallest convex
// superset of S. On trees this coincides with tree.ConvexHull; on graphs
// with cycles the two diverge — on C4, ⟨{u, antipode(u)}⟩ is the whole
// cycle, while any spanning tree's hull is a single path — which is exactly
// the divergence the hull tests pin.
//
// The computation is the direct fixpoint: close S under pairwise intervals
// until nothing is added. Each round is O(|S|² · |V|) on top of all-pairs
// BFS; input-space graphs are small (tens of vertices), and hulls are only
// computed by checkers and smoke drivers, never on the protocol hot path.

import (
	"sort"

	"treeaa/internal/tree"
)

// Interval returns I(u, v): every vertex w with d(u,w) + d(w,v) = d(u,v),
// in ascending order.
func (g *Graph) Interval(u, v tree.VertexID) []tree.VertexID {
	du := g.DistancesFrom(u)
	dv := g.DistancesFrom(v)
	var out []tree.VertexID
	for w := tree.VertexID(0); int(w) < g.NumVertices(); w++ {
		if du[w]+dv[w] == du[v] {
			out = append(out, w)
		}
	}
	return out
}

// ConvexHull returns ⟨S⟩, the geodesic convex hull of S, in ascending
// order. An empty S yields an empty hull.
func (g *Graph) ConvexHull(s []tree.VertexID) []tree.VertexID {
	if len(s) == 0 {
		return nil
	}
	n := g.NumVertices()
	in := make([]bool, n)
	members := make([]tree.VertexID, 0, n)
	add := func(v tree.VertexID) {
		if !in[v] {
			in[v] = true
			members = append(members, v)
		}
	}
	for _, v := range s {
		add(v)
	}
	// Fixpoint: new members pair against everything already in the set.
	// done marks the prefix of members whose pairwise intervals are closed.
	done := 0
	for done < len(members) {
		fresh := members[done:]
		done = len(members)
		for _, u := range fresh {
			du := g.DistancesFrom(u)
			for i := 0; i < done; i++ {
				v := members[i]
				if u == v {
					continue
				}
				dv := g.DistancesFrom(v)
				for w := tree.VertexID(0); int(w) < n; w++ {
					if !in[w] && du[w]+dv[w] == du[v] {
						add(w)
					}
				}
			}
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

// InHull reports whether v lies in ⟨S⟩ without materializing the hull's
// sorted order.
func (g *Graph) InHull(s []tree.VertexID, v tree.VertexID) bool {
	for _, u := range g.ConvexHull(s) {
		if u == v {
			return true
		}
	}
	return false
}
