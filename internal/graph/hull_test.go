package graph_test

// Hull tests on cycles, where geodesic graph hulls and tree hulls diverge:
// an antipodal pair on C4 has two shortest paths, so its graph hull is the
// whole cycle, while the hull in any spanning tree (a path) is a single
// path. Pinning both sides documents why the checker's validity invariant
// must use graph.ConvexHull rather than reusing tree.ConvexHull on some
// spanning structure.

import (
	"reflect"
	"testing"

	"treeaa/internal/graph"
	"treeaa/internal/tree"
)

func vids(ids ...int) []tree.VertexID {
	out := make([]tree.VertexID, len(ids))
	for i, v := range ids {
		out[i] = tree.VertexID(v)
	}
	return out
}

func TestIntervalCycle(t *testing.T) {
	c4 := graph.NewCycle(4) // v1-v2-v3-v4-v1, ids 0..3 in label order
	for _, tc := range []struct {
		g    *graph.Graph
		u, v int
		want []tree.VertexID
	}{
		{c4, 0, 1, vids(0, 1)},          // adjacent: the edge
		{c4, 0, 2, vids(0, 1, 2, 3)},    // antipodal on C4: two geodesics
		{graph.NewCycle(5), 0, 2, vids(0, 1, 2)}, // odd cycle: unique geodesic
	} {
		got := tc.g.Interval(tree.VertexID(tc.u), tree.VertexID(tc.v))
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Interval(%d, %d) = %v, want %v", tc.u, tc.v, got, tc.want)
		}
	}
}

// TestHullDivergesFromTreeHull pins the C4 divergence: the graph hull of an
// antipodal pair is all four vertices, while the hull of the corresponding
// pair in the path tree obtained by deleting one cycle edge is only the
// three-vertex path between them.
func TestHullDivergesFromTreeHull(t *testing.T) {
	c4 := graph.NewCycle(4)
	gh := c4.ConvexHull(vids(0, 2))
	if !reflect.DeepEqual(gh, vids(0, 1, 2, 3)) {
		t.Fatalf("C4 graph hull of antipodes = %v, want all vertices", gh)
	}

	// The same vertices on the spanning path v1-v2-v3-v4.
	tr, err := tree.ParseString("v1 - v2\nv2 - v3\nv3 - v4\n")
	if err != nil {
		t.Fatal(err)
	}
	th := tr.ConvexHull(vids(0, 2))
	if !reflect.DeepEqual(th, vids(0, 1, 2)) {
		t.Fatalf("path tree hull = %v, want {0,1,2}", th)
	}
	if len(gh) <= len(th) {
		t.Fatalf("expected graph hull (%v) to strictly contain tree hull (%v)", gh, th)
	}
}

func TestHullOddCycle(t *testing.T) {
	c5 := graph.NewCycle(5)
	// Unique geodesics: the hull of {v1, v3} is just the arc between them.
	if got := c5.ConvexHull(vids(0, 2)); !reflect.DeepEqual(got, vids(0, 1, 2)) {
		t.Fatalf("C5 hull of {0,2} = %v, want {0,1,2}", got)
	}
	// Three spread vertices cover geodesics in both directions: whole cycle.
	if got := c5.ConvexHull(vids(0, 2, 3)); !reflect.DeepEqual(got, vids(0, 1, 2, 3, 4)) {
		t.Fatalf("C5 hull of {0,2,3} = %v, want all vertices", got)
	}
}

func TestHullOnBlockGraphMatchesBlockCutStructure(t *testing.T) {
	g := graph.NewCliqueChain(3, 3) // triangles sharing cut vertices, 7 vertices
	// Endpoints of the chain: the hull must pass through both cut vertices
	// and include every block between them (cliques are convex-closed, so
	// each traversed triangle joins whole).
	ends := []tree.VertexID{0, tree.VertexID(g.NumVertices() - 1)}
	hull := g.ConvexHull(ends)
	for _, cut := range []tree.VertexID{2, 4} {
		if !g.InHull(ends, cut) {
			t.Fatalf("cut vertex %d missing from chain hull %v", int(cut), hull)
		}
	}
	// A singleton hull is itself.
	if got := g.ConvexHull(vids(3)); !reflect.DeepEqual(got, vids(3)) {
		t.Fatalf("singleton hull = %v", got)
	}
	// Empty set: empty hull.
	if got := g.ConvexHull(nil); got != nil {
		t.Fatalf("empty hull = %v, want nil", got)
	}
}

func TestDistAndDiameter(t *testing.T) {
	c6 := graph.NewCycle(6)
	if d := c6.Dist(0, 3); d != 3 {
		t.Fatalf("C6 antipodal distance = %d", d)
	}
	if d := c6.Diameter(); d != 3 {
		t.Fatalf("C6 diameter = %d", d)
	}
	if d := graph.NewClique(7).Diameter(); d != 1 {
		t.Fatalf("K7 diameter = %d", d)
	}
	cc := graph.NewCliqueChain(4, 3)
	if d := cc.Diameter(); d != 4 {
		t.Fatalf("cliquechain:4:3 diameter = %d, want 4", d)
	}
}
