// Package graph implements the block-graph input space from the journal
// version of the source paper ("Round and Resilience-Optimal Approximate
// Agreement on Trees and Block Graphs", arXiv 2502.05591): connected simple
// graphs whose biconnected components ("blocks") overlap in at most one
// vertex. The package provides parsing and generation, the block-cut tree
// decomposition, geodesic distance and convex hulls, and a graph.Machine
// that runs approximate agreement over the graph by reusing the full TreeAA
// stack (PathsFinder, RealAA projection, gradecast) on the block-cut tree.
//
// Vertices reuse tree.VertexID: ids are dense indices in [0, NumVertices())
// assigned in lexicographic label order, exactly like internal/tree, so
// inputs, outputs and wire payloads flow through sim, transport and the
// serving layer unchanged.
package graph

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"treeaa/internal/tree"
)

// Construction and lookup errors.
var (
	// ErrEmpty is returned when building a graph with no vertices.
	ErrEmpty = errors.New("graph: no vertices")
	// ErrNotConnected is returned when the edge set does not connect all
	// vertices.
	ErrNotConnected = errors.New("graph: not connected")
	// ErrUnknownVertex is returned when a label or VertexID does not exist.
	ErrUnknownVertex = errors.New("graph: unknown vertex")
	// ErrBadLabel is returned for labels that cannot round-trip through the
	// textual edge-list format (same rules as internal/tree).
	ErrBadLabel = errors.New("graph: invalid label")
)

// BlockKind classifies a block (biconnected component) by the structure the
// per-block agreement step exploits.
type BlockKind int

const (
	// BlockEdge is a single-edge block (K2): two vertices, one edge.
	BlockEdge BlockKind = iota
	// BlockClique is a complete block on >= 3 vertices. Block graphs — the
	// class the journal algorithm is exact on — have only edge and clique
	// blocks.
	BlockClique
	// BlockCycle is a chordless cycle on >= 4 vertices (C3 is a clique).
	// Cycles are the frontier where 1-agreement is impossible
	// (Alistarh–Ellen–Rybicki), so cycle blocks get the relaxed
	// 2-approximation-style step: agreement within the block, bounded by
	// the block diameter (2 for the C4/C5 cycles the cactus generator
	// emits).
	BlockCycle
	// BlockOther is any other biconnected component. The machine still
	// runs (decoding stays inside the block), with the same relaxed
	// guarantee as cycles.
	BlockOther
)

func (k BlockKind) String() string {
	switch k {
	case BlockEdge:
		return "edge"
	case BlockClique:
		return "clique"
	case BlockCycle:
		return "cycle"
	default:
		return "other"
	}
}

// Block is one biconnected component of the graph.
type Block struct {
	Vertices []tree.VertexID // ascending
	Kind     BlockKind
}

// Graph is an immutable connected labeled simple graph with its block-cut
// decomposition precomputed. The zero value is not useful; construct graphs
// with a Builder, a generator, or a parser.
type Graph struct {
	labels []string
	index  map[string]tree.VertexID
	adj    [][]tree.VertexID // sorted ascending

	dc decomposition
}

// Builder accumulates vertices and edges and validates them into a Graph.
// The zero value is ready to use.
type Builder struct {
	labels []string
	seen   map[string]bool
	edges  [][2]string
}

// AddVertex registers a vertex label. Adding the same label twice is an
// error reported by Build (via the shared self-loop diagnosis, like the
// tree Builder).
func (b *Builder) AddVertex(label string) {
	if b.seen == nil {
		b.seen = make(map[string]bool)
	}
	if b.seen[label] {
		b.edges = append(b.edges, [2]string{label, label}) // force duplicate error in Build
		return
	}
	b.seen[label] = true
	b.labels = append(b.labels, label)
}

// AddEdge registers an undirected edge, registering new labels as vertices.
func (b *Builder) AddEdge(a, c string) {
	if b.seen == nil {
		b.seen = make(map[string]bool)
	}
	for _, l := range []string{a, c} {
		if !b.seen[l] {
			b.seen[l] = true
			b.labels = append(b.labels, l)
		}
	}
	b.edges = append(b.edges, [2]string{a, c})
}

// Build validates the accumulated vertices and edges and returns the Graph:
// non-empty, valid labels, no self-loops or duplicate edges (the validation
// path shared with internal/tree), connected. The block-cut decomposition
// is computed here, so every accessor on the returned Graph is read-only.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.labels)
	if n == 0 {
		return nil, ErrEmpty
	}
	labels := make([]string, n)
	copy(labels, b.labels)
	sort.Strings(labels)
	for _, l := range labels {
		if !tree.ValidLabel(l) {
			return nil, fmt.Errorf("%w: %q", ErrBadLabel, l)
		}
	}
	if err := tree.ValidateEdges(b.edges); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	index := make(map[string]tree.VertexID, n)
	for i, l := range labels {
		index[l] = tree.VertexID(i)
	}
	adj := make([][]tree.VertexID, n)
	for _, e := range b.edges {
		u, v := index[e[0]], index[e[1]]
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	g := &Graph{labels: labels, index: index, adj: adj}
	for _, ns := range g.adj {
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	if reached := len(g.bfsOrder(0)); reached != n {
		return nil, fmt.Errorf("%w: reached %d of %d vertices", ErrNotConnected, reached, n)
	}
	if err := g.decompose(); err != nil {
		return nil, err
	}
	return g, nil
}

// NumVertices returns |V(G)|.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges returns |E(G)|.
func (g *Graph) NumEdges() int {
	sum := 0
	for _, ns := range g.adj {
		sum += len(ns)
	}
	return sum / 2
}

// Label returns the label of v.
func (g *Graph) Label(v tree.VertexID) string {
	if !g.Valid(v) {
		return fmt.Sprintf("<invalid:%d>", int(v))
	}
	return g.labels[v]
}

// Labels returns the labels of vs, in order.
func (g *Graph) Labels(vs []tree.VertexID) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = g.Label(v)
	}
	return out
}

// Valid reports whether v is a vertex of g.
func (g *Graph) Valid(v tree.VertexID) bool { return v >= 0 && int(v) < len(g.labels) }

// VertexByLabel returns the vertex with the given label.
func (g *Graph) VertexByLabel(label string) (tree.VertexID, error) {
	v, ok := g.index[label]
	if !ok {
		return tree.None, fmt.Errorf("%w: %q", ErrUnknownVertex, label)
	}
	return v, nil
}

// Neighbors returns the neighbors of v in ascending order. The slice is
// shared; callers must not mutate it.
func (g *Graph) Neighbors(v tree.VertexID) []tree.VertexID { return g.adj[v] }

// Adjacent reports whether u and v share an edge.
func (g *Graph) Adjacent(u, v tree.VertexID) bool {
	if u == v {
		return false
	}
	ns := g.adj[u]
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// Edges returns every undirected edge once, (u, v) with u < v, in
// lexicographic order.
func (g *Graph) Edges() [][2]tree.VertexID {
	var out [][2]tree.VertexID
	for u := tree.VertexID(0); int(u) < len(g.adj); u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]tree.VertexID{u, v})
			}
		}
	}
	return out
}

// bfsOrder returns the vertices reachable from src in BFS order.
func (g *Graph) bfsOrder(src tree.VertexID) []tree.VertexID {
	visited := make([]bool, len(g.labels))
	order := make([]tree.VertexID, 0, len(g.labels))
	visited[src] = true
	order = append(order, src)
	for i := 0; i < len(order); i++ {
		for _, w := range g.adj[order[i]] {
			if !visited[w] {
				visited[w] = true
				order = append(order, w)
			}
		}
	}
	return order
}

// DistancesFrom returns BFS distances from src to every vertex.
func (g *Graph) DistancesFrom(src tree.VertexID) []int {
	dist := make([]int, len(g.labels))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []tree.VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Dist returns the geodesic distance between u and v.
func (g *Graph) Dist(u, v tree.VertexID) int {
	return g.DistancesFrom(u)[v]
}

// Diameter returns the maximum geodesic distance over all vertex pairs.
func (g *Graph) Diameter() int {
	d := 0
	for v := tree.VertexID(0); int(v) < len(g.labels); v++ {
		for _, dd := range g.DistancesFrom(v) {
			if dd > d {
				d = dd
			}
		}
	}
	return d
}

// WriteDOT emits a Graphviz rendering with optional per-vertex attributes.
func (g *Graph) WriteDOT(w io.Writer, name string, attrs map[tree.VertexID]string) error {
	if _, err := fmt.Fprintf(w, "graph %s {\n", name); err != nil {
		return err
	}
	for v := tree.VertexID(0); int(v) < len(g.labels); v++ {
		a := attrs[v]
		if a != "" {
			a = " [" + a + "]"
		}
		if _, err := fmt.Fprintf(w, "  %q%s;\n", g.Label(v), a); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  %q -- %q;\n", g.Label(e[0]), g.Label(e[1])); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
