package core

import (
	"math/rand"
	"testing"

	"treeaa/internal/adversary"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// checkTreeAA asserts the Definition 2 properties over honest outputs:
// Termination (outputs exist), Validity (in the honest inputs' hull) and
// 1-Agreement.
func checkTreeAA(t *testing.T, tr *tree.Tree, inputs []tree.VertexID, corrupt map[sim.PartyID]bool, outputs map[sim.PartyID]tree.VertexID) {
	t.Helper()
	var honestIn []tree.VertexID
	honestCount := 0
	for i, v := range inputs {
		if !corrupt[sim.PartyID(i)] {
			honestIn = append(honestIn, v)
			honestCount++
		}
	}
	got := 0
	for p := range outputs {
		if !corrupt[p] {
			got++
		}
	}
	if got != honestCount {
		t.Errorf("termination: %d honest outputs, want %d", got, honestCount)
	}
	hull := make(map[tree.VertexID]bool)
	for _, v := range tr.ConvexHull(honestIn) {
		hull[v] = true
	}
	var outs []tree.VertexID
	for p, v := range outputs {
		if corrupt[p] {
			continue
		}
		if !hull[v] {
			t.Errorf("validity violated: party %d output %s outside hull %v",
				p, tr.Label(v), tr.Labels(tr.ConvexHull(honestIn)))
		}
		outs = append(outs, v)
	}
	for i := range outs {
		for j := i + 1; j < len(outs); j++ {
			if d := tr.Dist(outs[i], outs[j]); d > 1 {
				t.Errorf("1-agreement violated: %s vs %s at distance %d",
					tr.Label(outs[i]), tr.Label(outs[j]), d)
			}
		}
	}
}

func TestTreeAAHonestFigure3(t *testing.T) {
	tr := tree.Figure3Tree()
	inputs := []tree.VertexID{
		tr.MustVertex("v3"), tr.MustVertex("v6"), tr.MustVertex("v5"), tr.MustVertex("v8"),
	}
	res, err := Run(tr, 4, 1, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkTreeAA(t, tr, inputs, nil, res.Outputs)
	if res.Rounds > Rounds(tr)+2 {
		t.Errorf("used %d rounds, budget %d", res.Rounds, Rounds(tr))
	}
}

func TestTreeAATrivialTrees(t *testing.T) {
	// D(T) <= 1: parties output their own inputs with zero communication.
	for _, k := range []int{1, 2} {
		tr := tree.NewPath(k)
		inputs := make([]tree.VertexID, 4)
		for i := range inputs {
			inputs[i] = tree.VertexID(i % k)
		}
		res, err := Run(tr, 4, 1, inputs, nil)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for p, v := range res.Outputs {
			if v != inputs[p] {
				t.Errorf("k=%d: party %d output %v, want own input %v", k, p, v, inputs[p])
			}
		}
		if res.Messages != 0 {
			t.Errorf("k=%d: %d messages for a trivial tree, want 0", k, res.Messages)
		}
	}
}

func TestTreeAAAllSameInput(t *testing.T) {
	tr := tree.NewSpider(3, 5)
	in := tree.VertexID(7)
	inputs := []tree.VertexID{in, in, in, in}
	res, err := Run(tr, 4, 1, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range res.Outputs {
		if v != in {
			t.Errorf("party %d output %s, want the common input %s (hull is a single vertex)",
				p, tr.Label(v), tr.Label(in))
		}
	}
}

func TestTreeAATreeFamiliesHonest(t *testing.T) {
	families := []struct {
		name string
		tr   *tree.Tree
	}{
		{"path50", tree.NewPath(50)},
		{"star30", tree.NewStar(30)},
		{"spider", tree.NewSpider(4, 8)},
		{"caterpillar", tree.NewCaterpillar(10, 3)},
		{"binary", tree.NewCompleteKAry(2, 5)},
	}
	for _, f := range families {
		t.Run(f.name, func(t *testing.T) {
			n := 5
			inputs := make([]tree.VertexID, n)
			step := f.tr.NumVertices() / n
			for i := range inputs {
				inputs[i] = tree.VertexID(i * step)
			}
			res, err := Run(f.tr, n, 1, inputs, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkTreeAA(t, f.tr, inputs, nil, res.Outputs)
		})
	}
}

func TestTreeAAUnderEquivocatorsBothPhases(t *testing.T) {
	tr := tree.NewCaterpillar(15, 2)
	n, tc := 7, 2
	inputs := make([]tree.VertexID, n)
	for i := range inputs {
		inputs[i] = tree.VertexID((i * 6) % tr.NumVertices())
	}
	ids := adversary.FirstParties(n, tc)
	corrupt := map[sim.PartyID]bool{ids[0]: true, ids[1]: true}
	adv := &adversary.Compose{Strategies: []sim.Adversary{
		&adversary.GradecastEquivocator{IDs: ids[:1], N: n, Tag: TagPathsFinder, Lo: -50, Hi: 500},
		&adversary.GradecastEquivocator{IDs: ids[1:], N: n, Tag: TagProjection, StartRound: PathsFinderRounds(tr) + 1, Lo: -50, Hi: 500},
	}}
	res, err := Run(tr, n, tc, inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	checkTreeAA(t, tr, inputs, corrupt, res.Outputs)
}

func TestTreeAAUnderSplitVoteBothPhases(t *testing.T) {
	tr := tree.NewSpider(3, 12)
	n, tc := 10, 3
	inputs := make([]tree.VertexID, n)
	for i := range inputs {
		inputs[i] = tree.VertexID((i * 3) % tr.NumVertices())
	}
	ids := adversary.FirstParties(n, tc)
	corrupt := make(map[sim.PartyID]bool)
	for _, id := range ids {
		corrupt[id] = true
	}
	adv := &adversary.Compose{Strategies: []sim.Adversary{
		&adversary.SplitVote{IDs: ids, N: n, T: tc, Tag: TagPathsFinder, PerIteration: 1},
		&adversary.SplitVote{IDs: ids, N: n, T: tc, Tag: TagProjection, StartRound: PathsFinderRounds(tr) + 1, PerIteration: 1},
	}}
	res, err := Run(tr, n, tc, inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	checkTreeAA(t, tr, inputs, corrupt, res.Outputs)
}

func TestTreeAACrashFaults(t *testing.T) {
	tr := tree.NewPath(30)
	n, tc := 7, 2
	inputs := []tree.VertexID{0, 29, 15, 7, 22, 0, 29}
	adv := &adversary.CrashAt{IDs: []sim.PartyID{5, 6}, Rounds: []int{1, 5}}
	corrupt := map[sim.PartyID]bool{5: true, 6: true}
	res, err := Run(tr, n, tc, inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	checkTreeAA(t, tr, inputs, corrupt, res.Outputs)
}

// TestFigure5ForkFallback exercises the paper's Figure 5 corner case at the
// decide step: a party holding the shorter path that sees closestInt(j) > k
// must output its own last vertex, never guess a neighbor.
func TestFigure5ForkFallback(t *testing.T) {
	// Figure 5's tree: a spine v1..v7 with a red fork hanging off v6.
	var b tree.Builder
	for _, e := range [][2]string{
		{"v1", "v2"}, {"v2", "v3"}, {"v3", "v4"}, {"v4", "v5"},
		{"v5", "v6"}, {"v6", "v7"}, {"v6", "x1"}, // x1 is the red vertex
	} {
		b.AddEdge(e[0], e[1])
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(Config{Tree: tr, N: 4, T: 1, ID: 0, Input: tr.MustVertex("v3")})
	if err != nil {
		t.Fatal(err)
	}
	// Party holds the shorter path (v1..v6), k = 6.
	var short []tree.VertexID
	for _, l := range []string{"v1", "v2", "v3", "v4", "v5", "v6"} {
		short = append(short, tr.MustVertex(l))
	}
	m.path = short

	tests := []struct {
		j    float64
		want string
	}{
		{6.6, "v6"}, // closestInt = 7 > k: fall back to v_k, do NOT guess v7 vs x1
		{7.4, "v6"}, // same
		{6.4, "v6"}, // closestInt = 6 <= k: normal output
		{3.0, "v3"},
		{1.2, "v1"},
	}
	for _, tc := range tests {
		m.done = false
		m.decide(tc.j)
		v, ok := m.Output()
		if !ok {
			t.Fatalf("decide(%v): not done", tc.j)
		}
		if got := tr.Label(v.(tree.VertexID)); got != tc.want {
			t.Errorf("decide(%v) = %s, want %s", tc.j, got, tc.want)
		}
	}
}

// TestTreeAAForkScenarioEndToEnd drives the full protocol on the Figure 5
// tree with inputs straddling the fork under adversarial noise, asserting AA
// holds (the fallback keeps outputs within {v_k*, v_k*+1}).
func TestTreeAAForkScenarioEndToEnd(t *testing.T) {
	var b tree.Builder
	for _, e := range [][2]string{
		{"v1", "v2"}, {"v2", "v3"}, {"v3", "v4"}, {"v4", "v5"},
		{"v5", "v6"}, {"v6", "v7"}, {"v6", "x1"},
	} {
		b.AddEdge(e[0], e[1])
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, tc := 4, 1
	inputs := []tree.VertexID{
		tr.MustVertex("v5"), tr.MustVertex("v7"), tr.MustVertex("v6"), tr.MustVertex("v7"),
	}
	for seed := int64(0); seed < 8; seed++ {
		ids := adversary.FirstParties(n, tc)
		corrupt := map[sim.PartyID]bool{ids[0]: true}
		adv := &adversary.RandomNoise{IDs: ids, N: n, Tag: TagPathsFinder, Seed: seed, MaxVal: 20}
		res, err := Run(tr, n, tc, inputs, adv)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkTreeAA(t, tr, inputs, corrupt, res.Outputs)
	}
}

func TestTreeAARandomizedMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 20; trial++ {
		tr := tree.RandomPruefer(3+rng.Intn(40), rng)
		n := 4 + rng.Intn(7)
		tc := (n - 1) / 3
		inputs := make([]tree.VertexID, n)
		for i := range inputs {
			inputs[i] = tree.VertexID(rng.Intn(tr.NumVertices()))
		}
		ids := adversary.FirstParties(n, tc)
		corrupt := make(map[sim.PartyID]bool)
		for _, id := range ids {
			corrupt[id] = true
		}
		adv := &adversary.Compose{Strategies: []sim.Adversary{
			&adversary.RandomNoise{IDs: ids, N: n, Tag: TagPathsFinder, Seed: int64(trial), MaxVal: 2 * tr.NumVertices()},
			&adversary.RandomNoise{IDs: ids, N: n, Tag: TagProjection, StartRound: PathsFinderRounds(tr) + 1, Seed: int64(trial) + 1000, MaxVal: 2 * tr.NumVertices()},
		}}
		res, err := Run(tr, n, tc, inputs, adv)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkTreeAA(t, tr, inputs, corrupt, res.Outputs)
	}
}

// TestResilienceBoundary (experiment E6): with t = floor((n-1)/3) the
// protocol's guarantees hold; configuring 3T >= N is rejected outright.
func TestResilienceBoundary(t *testing.T) {
	tr := tree.NewPath(20)
	for _, n := range []int{4, 7, 10, 13} {
		tc := (n - 1) / 3
		inputs := make([]tree.VertexID, n)
		for i := range inputs {
			inputs[i] = tree.VertexID((i * 19 / (n - 1)))
		}
		ids := adversary.FirstParties(n, tc)
		corrupt := make(map[sim.PartyID]bool)
		for _, id := range ids {
			corrupt[id] = true
		}
		adv := &adversary.SplitVote{IDs: ids, N: n, T: tc, Tag: TagPathsFinder, PerIteration: 1}
		res, err := Run(tr, n, tc, inputs, adv)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkTreeAA(t, tr, inputs, corrupt, res.Outputs)
	}
	// At or above n/3 the configuration is invalid.
	if _, err := Run(tr, 6, 2, make([]tree.VertexID, 6), nil); err == nil {
		t.Error("want error for 3T >= N")
	}
}

func TestConfigValidate(t *testing.T) {
	tr := tree.Figure3Tree()
	base := Config{Tree: tr, N: 4, T: 1, ID: 0, Input: 0}
	if err := base.Validate(); err != nil {
		t.Fatalf("base: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.Tree = nil },
		func(c *Config) { c.Input = 99 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.T = -1 },
		func(c *Config) { c.T = 2 },
		func(c *Config) { c.ID = 7 },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func TestRunInputMismatch(t *testing.T) {
	tr := tree.Figure3Tree()
	if _, err := Run(tr, 4, 1, []tree.VertexID{0}, nil); err == nil {
		t.Error("want error for input count mismatch")
	}
}

func TestRoundsBudgets(t *testing.T) {
	// Non-path trees pay both phases.
	tr := tree.NewSpider(3, 30)
	if got := Rounds(tr); got != PathsFinderRounds(tr)+ProjectionRounds(tr) {
		t.Errorf("Rounds = %d, want sum of phases", got)
	}
	// Path input spaces use the Section 4 shortcut: cheaper than the
	// two-phase budget.
	p := tree.NewPath(100)
	if got := Rounds(p); got >= PathsFinderRounds(p)+ProjectionRounds(p) {
		t.Errorf("path shortcut not applied: %d rounds", got)
	}
	if Rounds(tree.NewPath(2)) != 0 {
		t.Error("trivial tree should need 0 rounds")
	}
	if got := len(PhaseTags(p)); got != 1 {
		t.Errorf("path phases = %d, want 1", got)
	}
	if got := len(PhaseTags(tr)); got != 2 {
		t.Errorf("tree phases = %d, want 2", got)
	}
	if got := len(PhaseTags(tree.NewPath(2))); got != 0 {
		t.Errorf("trivial phases = %d, want 0", got)
	}
}

// TestSequentialConcurrentEquivalence runs the same TreeAA execution under
// both drivers and asserts identical outputs (machine determinism).
func TestSequentialConcurrentEquivalence(t *testing.T) {
	tr := tree.NewSpider(3, 6)
	n, tc := 4, 1
	inputs := []tree.VertexID{0, 5, 11, 17}
	build := func() []sim.Machine {
		ms := make([]sim.Machine, n)
		for i := 0; i < n; i++ {
			m, err := NewMachine(Config{Tree: tr, N: n, T: tc, ID: sim.PartyID(i), Input: inputs[i]})
			if err != nil {
				t.Fatal(err)
			}
			ms[i] = m
		}
		return ms
	}
	cfg := sim.Config{N: n, MaxCorrupt: tc, MaxRounds: Rounds(tr) + 2}
	seq, err := sim.Run(cfg, build())
	if err != nil {
		t.Fatal(err)
	}
	conc, err := sim.RunConcurrent(cfg, build())
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range seq.Outputs {
		if conc.Outputs[p] != v {
			t.Errorf("party %d: sequential %v, concurrent %v", p, v, conc.Outputs[p])
		}
	}
	if seq.Messages != conc.Messages || seq.Bytes != conc.Bytes {
		t.Errorf("accounting differs: %+v vs %+v", seq, conc)
	}
}

func TestMachinePathAccessor(t *testing.T) {
	tr := tree.NewSpider(3, 7) // non-path: exercises the PathsFinder route
	n, tc := 4, 1
	machines := make([]sim.Machine, n)
	typed := make([]*Machine, n)
	inputs := []tree.VertexID{0, 19, 10, 5}
	for i := 0; i < n; i++ {
		m, err := NewMachine(Config{Tree: tr, N: n, T: tc, ID: sim.PartyID(i), Input: inputs[i]})
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
		typed[i] = m
	}
	if got := typed[0].Path(); len(got) != 0 {
		t.Errorf("Path before PathsFinder completes = %v, want empty", got)
	}
	if _, err := sim.Run(sim.Config{N: n, MaxCorrupt: tc, MaxRounds: Rounds(tr) + 2}, machines); err != nil {
		t.Fatal(err)
	}
	for i, m := range typed {
		p := m.Path()
		if len(p) == 0 || p[0] != tr.Root() {
			t.Errorf("party %d path = %v", i, tr.Labels(p))
		}
		if err := tr.ValidatePath(p); err != nil {
			t.Errorf("party %d: %v", i, err)
		}
	}
}

// TestFigure5FallbackIsDefensiveInDepth documents an emergent property of
// the repaired RealAA: honest PathsFinder outputs end *identical* — not
// merely one edge apart — under every implemented adversary whenever the
// iteration budget exceeds the corruption budget. Divergence requires a
// fresh grade-1/0 split, every splitting leader is globally convicted
// within one iteration (threshold blacklisting), and once the honest
// values coincide exactly no injection can separate a trimmed midpoint —
// so with iterations > ~2t the divergence always collapses before the
// final iteration. The closestInt(j) > k fallback of the paper's line 6
// (Figure 5) therefore never fires in these executions; it remains
// load-bearing for the paper's weaker Lemma 4 guarantee (paths equal up to
// one edge) and is exercised directly by TestFigure5ForkFallback.
func TestFigure5FallbackIsDefensiveInDepth(t *testing.T) {
	tr := tree.NewCaterpillar(14, 2) // non-path: the two-phase protocol runs
	n, tc := 4, 1
	for seed := int64(0); seed < 20; seed++ {
		inputs := []tree.VertexID{39, 39, 38, 0}
		ids := adversary.FirstParties(n, tc)
		adv := &adversary.Compose{Strategies: []sim.Adversary{
			&adversary.SplitVote{IDs: ids, N: n, T: tc, Tag: TagPathsFinder, PerIteration: 1},
			&adversary.RandomNoise{IDs: ids, N: n, Tag: TagProjection,
				StartRound: PathsFinderRounds(tr) + 1, Seed: seed, MaxVal: 80},
		}}
		machines := make([]sim.Machine, n)
		typed := make([]*Machine, n)
		for i := 0; i < n; i++ {
			m, err := NewMachine(Config{Tree: tr, N: n, T: tc, ID: sim.PartyID(i), Input: inputs[i]})
			if err != nil {
				t.Fatal(err)
			}
			machines[i] = m
			typed[i] = m
		}
		if _, err := sim.Run(sim.Config{N: n, MaxCorrupt: tc, MaxRounds: Rounds(tr) + 2, Adversary: adv}, machines); err != nil {
			t.Fatal(err)
		}
		var first []tree.VertexID
		for i := 0; i < 3; i++ { // honest parties
			p := typed[i].Path()
			if len(p) == 0 {
				t.Fatalf("seed %d: party %d has no PathsFinder path (wrong protocol mode?)", seed, i)
			}
			if first == nil {
				first = p
				continue
			}
			if len(p) != len(first) {
				t.Fatalf("seed %d: honest paths differ in length (%d vs %d) — update the Figure 5 analysis",
					seed, len(p), len(first))
			}
			for k := range p {
				if p[k] != first[k] {
					t.Fatalf("seed %d: honest paths differ at position %d", seed, k)
				}
			}
			if typed[i].FellBack() {
				t.Fatalf("seed %d: fallback fired despite identical paths", seed)
			}
		}
	}
}

func TestPartyCountBeyondOneMaskWord(t *testing.T) {
	// The suspicion-mask repair historically capped N at 52 (float64-exact
	// bitmask); masks now span multiple gradecast words, so large N must be
	// accepted by the constructor.
	tr := tree.NewPath(10)
	for _, n := range []int{52, 53, 64} {
		if _, err := NewMachine(Config{Tree: tr, N: n, T: (n - 1) / 3, ID: 0, Input: 0}); err != nil {
			t.Errorf("N = %d rejected: %v", n, err)
		}
	}
}
