package core

import (
	"testing"

	"treeaa/internal/tree"
)

// TestDecideVertexEdges drives the paper's line-6 decode directly with
// out-of-range RealAA outputs, pinning the Figure 5 path-end fallback
// (closestInt(j) > k) and the defensive pos < 1 clamp without needing an
// adversary strong enough to push j outside the honest range.
func TestDecideVertexEdges(t *testing.T) {
	path := []tree.VertexID{10, 11, 12, 13, 14} // k = 5
	for _, tc := range []struct {
		name     string
		j        float64
		want     tree.VertexID
		fellBack bool
	}{
		{"interior", 3.0, 12, false},
		{"rounds down", 3.49, 12, false},
		{"rounds up", 3.5, 13, false},
		{"last in range", 5.49, 14, false},
		{"just past the end", 5.5, 14, true},
		{"far past the end", 100, 14, true},
		{"first in range", 1.0, 10, false},
		{"below the range", 0.49, 10, false},
		{"far below the range", -7, 10, false},
	} {
		got, fellBack := DecideVertex(path, tc.j)
		if got != tc.want || fellBack != tc.fellBack {
			t.Errorf("%s: DecideVertex(path, %v) = (%d, %v), want (%d, %v)",
				tc.name, tc.j, got, fellBack, tc.want, tc.fellBack)
		}
	}
}

// TestDecideVertexSingleVertexPath: on a one-vertex path every decode — in
// range, above, below — lands on that vertex and only overruns fall back.
func TestDecideVertexSingleVertexPath(t *testing.T) {
	path := []tree.VertexID{7}
	for _, tc := range []struct {
		j        float64
		fellBack bool
	}{{1.0, false}, {1.5, true}, {42, true}, {0.2, false}, {-1, false}} {
		got, fellBack := DecideVertex(path, tc.j)
		if got != 7 || fellBack != tc.fellBack {
			t.Errorf("DecideVertex([v7], %v) = (%d, %v), want (7, %v)", tc.j, got, fellBack, tc.fellBack)
		}
	}
}
