// Package core implements TreeAA, the paper's main contribution (Section 7):
// round-optimal Approximate Agreement on trees in the synchronous model with
// optimal resilience t < n/3.
//
// The protocol composes the two reductions developed in the paper:
//
//  1. PathsFinder (Section 6) gives every honest party a root-anchored path
//     that intersects the honest inputs' convex hull, with all honest paths
//     equal up to one trailing edge. It costs R_PathsFinder =
//     R_RealAA(2|V(T)|, 1) rounds, and all parties wait until that round so
//     the next phase starts simultaneously (line 4 of the paper's TreeAA).
//  2. Each party projects its input onto its path (Section 5, Lemma 1) and
//     joins a second RealAA(1) on the projected positions. The output is the
//     vertex at position closestInt(j) on its own path, except that a party
//     holding the shorter path that sees closestInt(j) > k outputs its last
//     vertex v_k: Theorem 4 shows all honest outputs then land on
//     {v_k*, v_k*+1}, preserving 1-Agreement and Validity even though that
//     party cannot tell which neighbor extends the longer path (Figure 5).
//
// Total round complexity: R_RealAA(2|V|, 1) + R_RealAA(D(T), 1) =
// O(log|V(T)| / log log|V(T)|), which Section 3's adaptation of Fekete's
// bound shows is asymptotically optimal for D(T) ∈ |V(T)|^Θ(1), t ∈ Θ(n).
package core

import (
	"fmt"

	"treeaa/internal/pathaa"
	"treeaa/internal/pathsfinder"
	"treeaa/internal/realaa"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// Protocol-phase tags, exported so adversary strategies can target each
// phase's gradecast traffic.
const (
	// TagPathsFinder tags the PathsFinder phase (rounds 1..R_PathsFinder).
	TagPathsFinder = "treeaa/pf"
	// TagProjection tags the projection phase RealAA(1).
	TagProjection = "treeaa/proj"
	// TagPathShortcut tags the single-phase Section 4 protocol used when
	// the input space is itself a path (see Machine).
	TagPathShortcut = "treeaa/path"
)

// PhaseTag names one attackable protocol phase of an execution on t.
type PhaseTag struct {
	// Tag is the gradecast execution tag of the phase.
	Tag string
	// StartRound is the phase's first global round.
	StartRound int
}

// PhaseTags returns the phases TreeAA actually runs on t, for adversary
// targeting: the Section 4 shortcut phase for path input spaces, or
// PathsFinder followed by the projection phase otherwise. Trivial trees
// (D <= 1) have no phases.
func PhaseTags(t *tree.Tree) []PhaseTag {
	if trivial(t) {
		return nil
	}
	if t.IsPath() {
		return []PhaseTag{{Tag: TagPathShortcut, StartRound: 1}}
	}
	return []PhaseTag{
		{Tag: TagPathsFinder, StartRound: 1},
		{Tag: TagProjection, StartRound: PathsFinderRounds(t) + 1},
	}
}

// Config parameterizes a TreeAA party.
type Config struct {
	// Tree is the public input space tree.
	Tree *tree.Tree
	// N is the number of parties, T the fault budget (T < N/3).
	N, T int
	// ID is this party's identity.
	ID sim.PartyID
	// Input is this party's input vertex.
	Input tree.VertexID
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Tree == nil {
		return fmt.Errorf("treeaa: nil tree")
	}
	if !c.Tree.Valid(c.Input) {
		return fmt.Errorf("treeaa: invalid input vertex %d", int(c.Input))
	}
	if c.N <= 0 {
		return fmt.Errorf("treeaa: N = %d, want > 0", c.N)
	}
	if c.T < 0 || 3*c.T >= c.N {
		return fmt.Errorf("treeaa: T = %d, want 0 <= 3T < N = %d", c.T, c.N)
	}
	if c.ID < 0 || int(c.ID) >= c.N {
		return fmt.Errorf("treeaa: ID = %d out of range", c.ID)
	}
	return nil
}

// PathsFinderRounds returns R_PathsFinder for the tree: the round at whose
// end every honest party holds its path, and after which the projection
// phase starts simultaneously.
func PathsFinderRounds(t *tree.Tree) int { return pathsfinder.Rounds(t) }

// ProjectionRounds returns the round budget of the projection-phase
// RealAA(1): honest positions are D(T)-close.
func ProjectionRounds(t *tree.Tree) int {
	d, _, _ := t.Diameter()
	return realaa.Rounds(float64(d), 1)
}

// Rounds returns TreeAA's total communication-round budget for the tree.
// Path input spaces use the Section 4 shortcut (a single RealAA(1) on
// positions); all other trees pay both phases.
func Rounds(t *tree.Tree) int {
	if trivial(t) {
		return 0
	}
	if t.IsPath() {
		return pathaa.Rounds(t.NumVertices())
	}
	return PathsFinderRounds(t) + ProjectionRounds(t)
}

// trivial reports whether the input space makes AA trivial (D(T) <= 1:
// every party may output its own input, Section 2).
func trivial(t *tree.Tree) bool {
	d, _, _ := t.Diameter()
	return d <= 1
}

// Machine is one party's TreeAA execution; its output is a tree.VertexID.
//
// When the input space is itself a path, the machine applies the paper's
// Section 4 protocol directly (one RealAA(1) on canonical positions) —
// PathsFinder would only rediscover the path everyone already knows, so
// the shortcut halves the round budget without touching any guarantee.
type Machine struct {
	cfg Config

	pf       *pathsfinder.Machine
	pfRounds int

	// shortcut is non-nil for path input spaces (Section 4 direct mode).
	shortcut *pathaa.Machine

	path []tree.VertexID // the path P obtained from PathsFinder
	proj *realaa.Machine // projection-phase RealAA(1), created lazily

	out      tree.VertexID
	fellBack bool // decide() hit the closestInt(j) > k fallback (Figure 5)
	done     bool
}

var _ sim.Machine = (*Machine)(nil)

// NewMachine builds a TreeAA machine for one party.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, pfRounds: PathsFinderRounds(cfg.Tree)}
	if trivial(cfg.Tree) {
		// Line 0, Section 2: output the input immediately.
		m.out, m.done = cfg.Input, true
		return m, nil
	}
	if cfg.Tree.IsPath() {
		_, a, b := cfg.Tree.Diameter()
		sc, err := pathaa.NewMachine(pathaa.Config{
			Tree: cfg.Tree, Path: cfg.Tree.Path(a, b),
			N: cfg.N, T: cfg.T, ID: cfg.ID,
			Input: cfg.Input, Tag: TagPathShortcut,
		})
		if err != nil {
			return nil, err
		}
		m.shortcut = sc
		return m, nil
	}
	pf, err := pathsfinder.NewMachine(pathsfinder.Config{
		Tree: cfg.Tree, Root: cfg.Tree.Root(),
		N: cfg.N, T: cfg.T, ID: cfg.ID,
		Input: cfg.Input, Tag: TagPathsFinder,
	})
	if err != nil {
		return nil, err
	}
	m.pf = pf
	return m, nil
}

// Path returns the path obtained from PathsFinder (nil until round
// R_PathsFinder completes); primarily for tests and tracing.
func (m *Machine) Path() []tree.VertexID {
	out := make([]tree.VertexID, len(m.path))
	copy(out, m.path)
	return out
}

// PathsFinderMachine exposes the PathsFinder sub-execution (nil for path
// input spaces and trivial trees) for invariant probes; treat it as
// read-only.
func (m *Machine) PathsFinderMachine() *pathsfinder.Machine { return m.pf }

// ProjectionMachine exposes the projection-phase RealAA(1) (nil until
// PathsFinder completes, and always nil in shortcut or trivial mode) for
// invariant probes; treat it as read-only.
func (m *Machine) ProjectionMachine() *realaa.Machine { return m.proj }

// ShortcutMachine exposes the Section 4 path-shortcut sub-execution (non-nil
// exactly when the input space is a nontrivial path) for invariant probes;
// treat it as read-only.
func (m *Machine) ShortcutMachine() *pathaa.Machine { return m.shortcut }

// Step implements sim.Machine.
func (m *Machine) Step(r int, inbox []sim.Message) []sim.Message {
	if m.done {
		return nil
	}
	if m.shortcut != nil {
		out := m.shortcut.Step(r, inbox)
		if v, ok := m.shortcut.Output(); ok {
			m.out, m.done = v.(tree.VertexID), true
		}
		return out
	}
	var out []sim.Message
	if m.path == nil {
		out = append(out, m.pf.Step(r, inbox)...)
		if v, ok := m.pf.Output(); ok {
			// PathsFinder guarantees this happens by the end of round
			// pfRounds; the projection phase starts at pfRounds+1 at every
			// honest party simultaneously (the paper's line 4 wait).
			m.path = v.([]tree.VertexID)
			proj, err := m.newProjection()
			if err != nil {
				// Construction can only fail on invalid configuration,
				// which Validate has excluded; terminate defensively at the
				// path end rather than panic in a library path.
				m.out, m.done = m.path[len(m.path)-1], true
				return out
			}
			m.proj = proj
		}
	}
	if m.proj != nil && !m.done {
		out = append(out, m.proj.Step(r, inbox)...)
		if j, ok := m.proj.Output(); ok {
			m.decide(j.(float64))
		}
	}
	return out
}

// newProjection builds the projection-phase RealAA(1) with this party's
// projected position as input (the paper's line 5).
func (m *Machine) newProjection() (*realaa.Machine, error) {
	idx, _ := m.cfg.Tree.ProjectOntoPath(m.path, m.cfg.Input)
	d, _, _ := m.cfg.Tree.Diameter()
	return realaa.NewMachine(realaa.Config{
		N: m.cfg.N, T: m.cfg.T, ID: m.cfg.ID, Tag: TagProjection,
		Iterations: realaa.Iterations(float64(d), 1),
		StartRound: m.pfRounds + 1,
		Input:      float64(idx + 1), // 1-based position on the path
	})
}

// DecideVertex applies the paper's line 6 to a RealAA output j on a path of
// k vertices: output v_closestInt(j), falling back to the path's last vertex
// when closestInt(j) > k — the party holds the shorter of the two honest
// paths (Figure 5) and cannot tell which neighbor extends the longer one.
// fellBack reports that case. Exported so tests can drive the fallback and
// the defensive pos < 1 clamp directly with out-of-range positions.
func DecideVertex(path []tree.VertexID, j float64) (out tree.VertexID, fellBack bool) {
	k := len(path)
	pos := realaa.ClosestInt(j)
	switch {
	case pos > k:
		return path[k-1], true
	case pos < 1:
		// Remark 1 rules this out against <= t faults; defensive only.
		return path[0], false
	default:
		return path[pos-1], false
	}
}

// decide applies DecideVertex to this party's own path and terminates.
func (m *Machine) decide(j float64) {
	m.out, m.fellBack = DecideVertex(m.path, j)
	m.done = true
}

// Output implements sim.Machine; the value is a tree.VertexID.
func (m *Machine) Output() (any, bool) {
	if !m.done {
		return nil, false
	}
	return m.out, true
}

// FellBack reports whether this party hit the paper's Figure 5 corner case:
// it held the shorter path and saw closestInt(j) > k, outputting its path
// end instead of guessing which neighbor extends the longer path.
func (m *Machine) FellBack() bool { return m.fellBack }

// Result carries the outcome of a convenience Run.
type Result struct {
	// Outputs maps each honest party to its output vertex.
	Outputs map[sim.PartyID]tree.VertexID
	// Rounds is the number of rounds the execution used (including the
	// final local processing step).
	Rounds int
	// Messages and Bytes are the network totals.
	Messages int
	Bytes    int
}

// Run executes TreeAA for n parties on tree t with the given inputs
// (inputs[i] is party i's input vertex) under adv (nil for none), and
// returns the honest outputs and execution statistics.
func Run(t *tree.Tree, n, tc int, inputs []tree.VertexID, adv sim.Adversary) (*Result, error) {
	if len(inputs) != n {
		return nil, fmt.Errorf("treeaa: %d inputs for n = %d", len(inputs), n)
	}
	machines := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		m, err := NewMachine(Config{Tree: t, N: n, T: tc, ID: sim.PartyID(i), Input: inputs[i]})
		if err != nil {
			return nil, err
		}
		machines[i] = m
	}
	res, err := sim.Run(sim.Config{N: n, MaxCorrupt: tc, MaxRounds: Rounds(t) + 2, Adversary: adv}, machines)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Outputs:  make(map[sim.PartyID]tree.VertexID, len(res.Outputs)),
		Rounds:   res.Rounds,
		Messages: res.Messages,
		Bytes:    res.Bytes,
	}
	for p, v := range res.Outputs {
		out.Outputs[p] = v.(tree.VertexID)
	}
	return out, nil
}
