package core_test

import (
	"fmt"
	"sort"

	"treeaa/internal/core"
	"treeaa/internal/tree"
)

// ExampleRun executes TreeAA on the paper's Figure 3 tree with no faults:
// with identical views the parties reach exact agreement inside the hull.
func ExampleRun() {
	tr := tree.Figure3Tree()
	inputs := []tree.VertexID{
		tr.MustVertex("v3"), tr.MustVertex("v6"), tr.MustVertex("v5"), tr.MustVertex("v6"),
	}
	res, err := core.Run(tr, 4, 1, inputs, nil)
	if err != nil {
		panic(err)
	}
	labels := make([]string, 0, len(res.Outputs))
	for _, v := range res.Outputs {
		labels = append(labels, tr.Label(v))
	}
	sort.Strings(labels)
	fmt.Println(labels)
	// Output: [v6 v6 v6 v6]
}

// ExampleRounds shows the protocol's fixed round budget growing
// sublogarithmically in |V| (Theorem 4).
func ExampleRounds() {
	for _, size := range []int{64, 1024} {
		fmt.Printf("|V|=%d: %d rounds\n", size, core.Rounds(tree.NewPath(size)))
	}
	// Output:
	// |V|=64: 24 rounds
	// |V|=1024: 27 rounds
}
