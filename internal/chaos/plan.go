// Package chaos is a seeded, fully deterministic fault-injection subsystem
// for the TCP substrate: a compact plan language for network faults, a
// net.Conn injector that materializes them at the transport's connection
// boundary, and a soak harness that sweeps seeds × plans × adversaries over
// transport.LocalCluster and asserts the protocol's safety properties after
// every run.
//
// The injectable faults are deliberately limited to what a lock-step
// synchronous protocol survives by specification: latency, stalls and
// partitions are pure delays (per-connection FIFO order is preserved and no
// frame is lost, so a run that stays under the transport's timeout budget
// produces a Result byte-identical to the sequential sim.Run oracle), drops
// and crashes destroy connections and processes but the transport's
// reconnect-with-resume and crash-restart recovery restore every lost frame
// exactly once. Everything randomized is drawn from PRNGs derived from
// (seed, link), so identical seeds and specs reproduce identical fault
// schedules.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"treeaa/internal/sim"
)

// AllLinks as a Drop target means every outgoing link of the party.
const AllLinks = sim.PartyID(-1)

// Default fault magnitudes for clauses that omit their optional duration.
const (
	DefaultStall = 25 * time.Millisecond
	DefaultHeal  = 50 * time.Millisecond
)

// Latency delays every protocol frame on matching links by Base ± Jitter,
// the jitter drawn per frame from the link's seeded PRNG. From scopes the
// clause to the links *originating* at one party (AllLinks = every link) —
// the lever for heterogeneous-network soaks, where some parties' outbound
// links are slow and the rest of the mesh is quick.
type Latency struct {
	Base, Jitter time.Duration
	From         sim.PartyID // AllLinks, or the party whose outbound links this scopes to
}

// Stall holds every outgoing frame of one party for Dur during a round
// window — a slow process, not a dead one.
type Stall struct {
	Party     sim.PartyID
	FromRound int
	ToRound   int
	Dur       time.Duration
}

// Drop tears down one connection (From → To, or every outgoing connection
// of From when To is AllLinks) the first time it carries a frame of the
// given round. The transport's reconnect path must repair the link and
// retransmit the lost frame.
type Drop struct {
	From, To sim.PartyID
	Round    int
}

// Partition holds every frame crossing the cut between SideA and SideB
// (both directions) during a round window. The partition heals Heal after
// the first in-window frame hits the cut; held frames are then released in
// their original per-link order.
type Partition struct {
	SideA, SideB []sim.PartyID
	FromRound    int
	ToRound      int
	Heal         time.Duration
}

// Plan is one parsed chaos specification.
type Plan struct {
	Spec       string
	Latencies  []Latency
	Stalls     []Stall
	Drops      []Drop
	Crashes    map[sim.PartyID]int // party → crash round (honest crash-restart)
	Partitions []Partition
}

// Parse decodes a compact chaos spec: comma-separated clauses
//
//	lat:BASE[±JIT][@pP]          per-link latency with jitter ("±" or "+-"),
//	                             optionally scoped to party P's outbound links
//	stall:pP@rA[-B][:DUR]        party P's sends stall DUR in rounds A..B
//	drop:pA-pB@rR                cut the A→B connection at round R
//	drop:pA@rR                   cut every outgoing connection of A at round R
//	crash:pP@rR                  crash honest party P at round R (restarted)
//	partition:{A-B|C-D}@rA[-B][:HEAL]  hold cross-cut frames until healed
//
// Durations use Go syntax (5ms, 1s). An empty spec parses to the empty
// plan — a chaos run with nothing injected.
//
//	lat:5ms±3ms,stall:p3@r2-4,crash:p5@r3,partition:{0-2|3-7}@r6-7
func Parse(spec string) (*Plan, error) {
	p := &Plan{Spec: spec, Crashes: map[sim.PartyID]int{}}
	if strings.TrimSpace(spec) == "" {
		p.Spec = ""
		return p, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		name, rest, found := strings.Cut(clause, ":")
		if !found {
			return nil, fmt.Errorf("chaos: clause %q: want name:args", clause)
		}
		var err error
		switch name {
		case "lat":
			err = p.parseLatency(rest)
		case "stall":
			err = p.parseStall(rest)
		case "drop":
			err = p.parseDrop(rest)
		case "crash":
			err = p.parseCrash(rest)
		case "partition":
			err = p.parsePartition(rest)
		default:
			err = fmt.Errorf("unknown clause %q", name)
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: clause %q: %w", clause, err)
		}
	}
	return p, nil
}

// MustParse is Parse for compile-time-constant specs in tests and tables.
func MustParse(spec string) *Plan {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Plan) parseLatency(rest string) error {
	l := Latency{From: AllLinks}
	if body, scope, scoped := strings.Cut(rest, "@"); scoped {
		var err error
		if l.From, err = parseParty(scope); err != nil {
			return err
		}
		rest = body
	}
	for _, prev := range p.Latencies {
		if prev.From == l.From {
			return fmt.Errorf("duplicate lat clause for the same scope")
		}
	}
	base := rest
	jitter := ""
	for _, sep := range []string{"±", "+-"} {
		if b, j, found := strings.Cut(rest, sep); found {
			base, jitter = b, j
			break
		}
	}
	var err error
	if l.Base, err = parseDur(base); err != nil {
		return err
	}
	if jitter != "" {
		if l.Jitter, err = parseDur(jitter); err != nil {
			return err
		}
	}
	if l.Jitter > l.Base {
		return fmt.Errorf("jitter %v exceeds base %v (delays must stay non-negative)", l.Jitter, l.Base)
	}
	p.Latencies = append(p.Latencies, l)
	return nil
}

func (p *Plan) parseStall(rest string) error {
	rest, dur, err := optionalDur(rest, DefaultStall)
	if err != nil {
		return err
	}
	target, window, found := strings.Cut(rest, "@")
	if !found {
		return fmt.Errorf("want pP@rA-B")
	}
	party, err := parseParty(target)
	if err != nil {
		return err
	}
	from, to, err := parseRounds(window)
	if err != nil {
		return err
	}
	p.Stalls = append(p.Stalls, Stall{Party: party, FromRound: from, ToRound: to, Dur: dur})
	return nil
}

func (p *Plan) parseDrop(rest string) error {
	target, window, found := strings.Cut(rest, "@")
	if !found {
		return fmt.Errorf("want pA-pB@rR or pA@rR")
	}
	from, to, err := parseRounds(window)
	if err != nil {
		return err
	}
	if from != to {
		return fmt.Errorf("a drop is one event, not a window: want @rR")
	}
	d := Drop{To: AllLinks, Round: from}
	if a, b, linked := strings.Cut(target, "-"); linked {
		if d.From, err = parseParty(a); err != nil {
			return err
		}
		if d.To, err = parseParty(b); err != nil {
			return err
		}
		if d.From == d.To {
			return fmt.Errorf("link %d→%d is not a connection", d.From, d.To)
		}
	} else if d.From, err = parseParty(target); err != nil {
		return err
	}
	p.Drops = append(p.Drops, d)
	return nil
}

func (p *Plan) parseCrash(rest string) error {
	target, window, found := strings.Cut(rest, "@")
	if !found {
		return fmt.Errorf("want pP@rR")
	}
	party, err := parseParty(target)
	if err != nil {
		return err
	}
	from, to, err := parseRounds(window)
	if err != nil {
		return err
	}
	if from != to {
		return fmt.Errorf("a crash is one event, not a window: want @rR")
	}
	if _, dup := p.Crashes[party]; dup {
		return fmt.Errorf("party %d already has a crash", party)
	}
	p.Crashes[party] = from
	return nil
}

func (p *Plan) parsePartition(rest string) error {
	rest, heal, err := optionalDur(rest, DefaultHeal)
	if err != nil {
		return err
	}
	cut, window, found := strings.Cut(rest, "@")
	if !found {
		return fmt.Errorf("want {A|B}@rA-B")
	}
	if len(cut) < 2 || cut[0] != '{' || cut[len(cut)-1] != '}' {
		return fmt.Errorf("cut %q: want {A|B}", cut)
	}
	a, b, found := strings.Cut(cut[1:len(cut)-1], "|")
	if !found {
		return fmt.Errorf("cut %q: want two sides split by |", cut)
	}
	part := Partition{Heal: heal}
	if part.SideA, err = parseSide(a); err != nil {
		return err
	}
	if part.SideB, err = parseSide(b); err != nil {
		return err
	}
	for _, x := range part.SideA {
		for _, y := range part.SideB {
			if x == y {
				return fmt.Errorf("party %d on both sides of the cut", x)
			}
		}
	}
	if part.FromRound, part.ToRound, err = parseRounds(window); err != nil {
		return err
	}
	p.Partitions = append(p.Partitions, part)
	return nil
}

// Validate checks the plan against a concrete party count.
func (p *Plan) Validate(n int) error {
	check := func(id sim.PartyID) error {
		if id < 0 || int(id) >= n {
			return fmt.Errorf("chaos: party %d out of range [0, %d)", id, n)
		}
		return nil
	}
	for _, l := range p.Latencies {
		if l.From != AllLinks {
			if err := check(l.From); err != nil {
				return err
			}
		}
	}
	for _, s := range p.Stalls {
		if err := check(s.Party); err != nil {
			return err
		}
	}
	for _, d := range p.Drops {
		if err := check(d.From); err != nil {
			return err
		}
		if d.To != AllLinks {
			if err := check(d.To); err != nil {
				return err
			}
		}
	}
	for c := range p.Crashes {
		if err := check(c); err != nil {
			return err
		}
	}
	for _, part := range p.Partitions {
		for _, id := range part.SideA {
			if err := check(id); err != nil {
				return err
			}
		}
		for _, id := range part.SideB {
			if err := check(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return len(p.Kinds()) == 0
}

// NeedsReconnect reports whether the plan destroys connections, requiring
// the transport's recovery path.
func (p *Plan) NeedsReconnect() bool {
	return len(p.Drops) > 0 || len(p.Crashes) > 0
}

// ClauseKind identifies one fault family of the plan language. Execution
// modes differ in which families they can inject — see Restrict.
type ClauseKind int

// The five clause families, in plan-language order.
const (
	ClauseLatency ClauseKind = iota
	ClauseStall
	ClauseDrop
	ClauseCrash
	ClausePartition
)

// String returns the clause's plan-language name.
func (k ClauseKind) String() string {
	switch k {
	case ClauseLatency:
		return "lat"
	case ClauseStall:
		return "stall"
	case ClauseDrop:
		return "drop"
	case ClauseCrash:
		return "crash"
	case ClausePartition:
		return "partition"
	}
	return fmt.Sprintf("ClauseKind(%d)", int(k))
}

// Kinds returns the fault families present in the plan, in plan-language
// order.
func (p *Plan) Kinds() []ClauseKind {
	var kinds []ClauseKind
	if len(p.Latencies) > 0 {
		kinds = append(kinds, ClauseLatency)
	}
	if len(p.Stalls) > 0 {
		kinds = append(kinds, ClauseStall)
	}
	if len(p.Drops) > 0 {
		kinds = append(kinds, ClauseDrop)
	}
	if len(p.Crashes) > 0 {
		kinds = append(kinds, ClauseCrash)
	}
	if len(p.Partitions) > 0 {
		kinds = append(kinds, ClausePartition)
	}
	return kinds
}

// Restrict checks the plan against one execution mode's injectable fault
// surface: mode names the flag combination doing the rejecting ("-overlay",
// "-mode async"), allowed lists the clause families it supports, and reason
// says why the rest cannot be injected there. The returned error names the
// mode, the offending clause family and the reason — a chaos spec that a
// mode cannot honor must fail loudly, never silently inject less.
func (p *Plan) Restrict(mode, reason string, allowed ...ClauseKind) error {
	for _, k := range p.Kinds() {
		ok := false
		for _, a := range allowed {
			if a == k {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("chaos: %s cannot inject the %s clauses of plan %q: %s", mode, k, p.Spec, reason)
		}
	}
	return nil
}

// CrashOnly reports whether crashes are the only faults in the plan — the
// predicate behind the tree overlay's Restrict gate, kept for callers that
// only classify. The overlay injects crashes through its own seat
// supervisor but exposes no seam for link-level faults: its connections are
// overlay-internal relay hops, not the party-to-party links the injector's
// clauses name.
func (p *Plan) CrashOnly() bool {
	return p.Restrict("", "", ClauseCrash) == nil
}

// parseParty decodes "p3" (the p is mandatory — it keeps parties and rounds
// visually distinct inside a clause).
func parseParty(s string) (sim.PartyID, error) {
	num, found := strings.CutPrefix(s, "p")
	if !found {
		return 0, fmt.Errorf("party %q: want pN", s)
	}
	v, err := strconv.Atoi(num)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("party %q: want pN", s)
	}
	return sim.PartyID(v), nil
}

// parseRounds decodes "r2-4" (window) or "r3" (single round).
func parseRounds(s string) (from, to int, err error) {
	num, found := strings.CutPrefix(s, "r")
	if !found {
		return 0, 0, fmt.Errorf("rounds %q: want rA or rA-B", s)
	}
	a, b, window := strings.Cut(num, "-")
	if from, err = strconv.Atoi(a); err != nil || from < 1 {
		return 0, 0, fmt.Errorf("rounds %q: want rA or rA-B with A ≥ 1", s)
	}
	to = from
	if window {
		if to, err = strconv.Atoi(b); err != nil || to < from {
			return 0, 0, fmt.Errorf("rounds %q: want B ≥ A", s)
		}
	}
	return from, to, nil
}

// parseSide decodes one side of a partition cut: "0-2" (id range) or "4".
func parseSide(s string) ([]sim.PartyID, error) {
	a, b, isRange := strings.Cut(s, "-")
	lo, err := strconv.Atoi(a)
	if err != nil || lo < 0 {
		return nil, fmt.Errorf("side %q: want N or A-B", s)
	}
	hi := lo
	if isRange {
		if hi, err = strconv.Atoi(b); err != nil || hi < lo {
			return nil, fmt.Errorf("side %q: want B ≥ A", s)
		}
	}
	side := make([]sim.PartyID, 0, hi-lo+1)
	for id := lo; id <= hi; id++ {
		side = append(side, sim.PartyID(id))
	}
	return side, nil
}

// optionalDur splits a trailing ":DUR" off a clause body, if present.
func optionalDur(s string, def time.Duration) (string, time.Duration, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return s, def, nil
	}
	d, err := parseDur(s[i+1:])
	if err != nil {
		return "", 0, err
	}
	return s[:i], d, nil
}

func parseDur(s string) (time.Duration, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return d, nil
}
