package chaos

import (
	"fmt"
	"reflect"
	"time"

	"treeaa/internal/cli"
	"treeaa/internal/core"
	"treeaa/internal/experiments"
	"treeaa/internal/metrics"
	"treeaa/internal/sim"
	"treeaa/internal/transport"
	"treeaa/internal/tree"
)

// RunSpec is one soak cell: a protocol configuration, a chaos plan and a
// seed to materialize it with.
type RunSpec struct {
	Tree      string // cli tree spec, e.g. "path:40"
	N, T      int
	Seed      int64
	Plan      string // chaos spec (Parse), "" = no chaos
	Adversary string // cli adversary name, "none" = honest run

	SetupTimeout time.Duration
	RoundTimeout time.Duration
}

// Report is one soak cell's outcome: what the protocol did, whether it
// stayed safe, and what the chaos layer injected and the transport repaired.
type Report struct {
	Tree      string `json:"tree"`
	N         int    `json:"n"`
	T         int    `json:"t"`
	Seed      int64  `json:"seed"`
	Plan      string `json:"plan"`
	Adversary string `json:"adversary"`

	Rounds   int `json:"rounds"`
	Messages int `json:"messages"`
	Bytes    int `json:"bytes"`

	// Safety: validity (outputs in the honest input hull), 1-agreement
	// (pairwise output distance ≤ 1), and byte-identity with the sequential
	// sim.Run oracle.
	Valid       bool `json:"valid"`
	MaxDist     int  `json:"max_dist"`
	OracleMatch bool `json:"oracle_match"`

	// Injected faults and recovery work.
	Delays       int64 `json:"delays"`
	Stalls       int64 `json:"stalls"`
	Drops        int64 `json:"drops"`
	Partitions   int64 `json:"partitions"`
	Crashes      int64 `json:"crashes"`
	Reconnects   int64 `json:"reconnects"`
	FramesResent int64 `json:"frames_resent"`
	BytesResent  int64 `json:"bytes_resent"`
	FramesSkip   int64 `json:"frames_skipped"`

	// Per-round wall-clock latency across parties.
	P50 time.Duration `json:"p50"`
	P99 time.Duration `json:"p99"`

	Err string `json:"err,omitempty"`
}

// Passed reports whether the cell upheld every safety assertion.
func (r *Report) Passed() bool {
	return r.Err == "" && r.Valid && r.MaxDist <= 1 && r.OracleMatch
}

// Run executes one soak cell: the sequential oracle first, then the real
// TCP cluster with the chaos plan injected, then the safety assertions. A
// configuration error (bad spec, bad plan) returns an error; a runtime
// failure of the chaotic run (e.g. a plan that blows the timeout budget)
// lands in Report.Err so sweeps keep going.
func Run(spec RunSpec) (*Report, error) {
	rep := &Report{Tree: spec.Tree, N: spec.N, T: spec.T, Seed: spec.Seed,
		Plan: spec.Plan, Adversary: spec.Adversary}
	plan, err := Parse(spec.Plan)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(spec.N); err != nil {
		return nil, err
	}
	tr, err := cli.ParseTreeSpec(spec.Tree, spec.Seed)
	if err != nil {
		return nil, err
	}
	inputs := cli.SpreadInputs(tr, spec.N)
	_, corrupt, err := cli.BuildAdversary(spec.Adversary, tr, spec.N, spec.T, spec.Seed)
	if err != nil {
		return nil, err
	}
	for c := range plan.Crashes {
		if corrupt[c] {
			return nil, fmt.Errorf("chaos: crash plan names party %d, which the %s adversary corrupts", c, spec.Adversary)
		}
	}

	machines := func() ([]sim.Machine, error) {
		ms := make([]sim.Machine, spec.N)
		for i := range ms {
			m, err := core.NewMachine(core.Config{Tree: tr, N: spec.N, T: spec.T,
				ID: sim.PartyID(i), Input: inputs[i]})
			if err != nil {
				return nil, err
			}
			ms[i] = m
		}
		return ms, nil
	}
	cfg := func() (sim.Config, error) {
		adv, _, err := cli.BuildAdversary(spec.Adversary, tr, spec.N, spec.T, spec.Seed)
		if err != nil {
			return sim.Config{}, err
		}
		return sim.Config{N: spec.N, MaxCorrupt: spec.T,
			MaxRounds: core.Rounds(tr) + 2, Adversary: adv}, nil
	}

	// The oracle: the same execution on the sequential engine, untouched by
	// chaos — the injected faults are delays and repaired losses, which a
	// correct transport must render invisible.
	oracleCfg, err := cfg()
	if err != nil {
		return nil, err
	}
	oracleMachines, err := machines()
	if err != nil {
		return nil, err
	}
	want, err := sim.Run(oracleCfg, oracleMachines)
	if err != nil {
		return nil, fmt.Errorf("chaos: oracle run: %w", err)
	}

	stats := &metrics.ChaosStats{}
	opts := NewInjector(plan, spec.Seed, stats).Apply(transport.Options{
		SetupTimeout: spec.SetupTimeout,
		RoundTimeout: spec.RoundTimeout,
	})
	if len(plan.Crashes) > 0 {
		opts.Restart = func(p sim.PartyID) (sim.Machine, error) {
			return core.NewMachine(core.Config{Tree: tr, N: spec.N, T: spec.T,
				ID: p, Input: inputs[p]})
		}
	}
	chaosCfg, err := cfg()
	if err != nil {
		return nil, err
	}
	chaosMachines, err := machines()
	if err != nil {
		return nil, err
	}
	got, err := transport.LocalCluster(chaosCfg, chaosMachines, opts)

	rep.Delays = stats.Delays.Load()
	rep.Stalls = stats.Stalls.Load()
	rep.Drops = stats.Drops.Load()
	rep.Partitions = stats.Partitions.Load()
	rep.Crashes = stats.Crashes.Load()
	rep.Reconnects = stats.Reconnects.Load()
	rep.FramesResent = stats.FramesResent.Load()
	rep.BytesResent = stats.BytesResent.Load()
	rep.FramesSkip = stats.FramesSkip.Load()
	lat := stats.RoundLatency()
	rep.P50, rep.P99 = time.Duration(lat.P50), time.Duration(lat.P99)
	if err != nil {
		rep.Err = err.Error()
		return rep, nil
	}

	rep.Rounds, rep.Messages, rep.Bytes = got.Rounds, got.Messages, got.Bytes
	rep.OracleMatch = reflect.DeepEqual(got, want)
	outputs := make(map[sim.PartyID]tree.VertexID, len(got.Outputs))
	for p, out := range got.Outputs {
		v, ok := out.(tree.VertexID)
		if !ok {
			rep.Err = fmt.Sprintf("party %d output %T, want tree.VertexID", p, out)
			return rep, nil
		}
		outputs[p] = v
	}
	rep.MaxDist, rep.Valid = experiments.Judge(tr, inputs, corrupt, outputs)
	return rep, nil
}

// SweepConfig spans a soak matrix: every tree × seed × plan × adversary
// combination becomes one Run cell.
type SweepConfig struct {
	Trees       []string
	N, T        int
	Seeds       []int64
	Plans       []string
	Adversaries []string

	SetupTimeout time.Duration
	RoundTimeout time.Duration

	// Progress, when non-nil, is called with each cell's report as the
	// sweep proceeds.
	Progress func(*Report)
}

// Sweep runs the matrix cell by cell — each cell already spins one
// goroutine per party plus senders, so cells run sequentially to keep
// wall-clock fault durations meaningful.
func Sweep(cfg SweepConfig) ([]*Report, error) {
	var reports []*Report
	for _, treeSpec := range cfg.Trees {
		for _, advName := range cfg.Adversaries {
			for _, planSpec := range cfg.Plans {
				for _, seed := range cfg.Seeds {
					rep, err := Run(RunSpec{
						Tree: treeSpec, N: cfg.N, T: cfg.T, Seed: seed,
						Plan: planSpec, Adversary: advName,
						SetupTimeout: cfg.SetupTimeout, RoundTimeout: cfg.RoundTimeout,
					})
					if err != nil {
						return reports, err
					}
					reports = append(reports, rep)
					if cfg.Progress != nil {
						cfg.Progress(rep)
					}
				}
			}
		}
	}
	return reports, nil
}

// Table renders a sweep's reports as a metrics table.
func Table(reports []*Report) *metrics.Table {
	tab := metrics.NewTable("tree", "n", "t", "seed", "plan", "adversary",
		"rounds", "oracle", "valid", "max_dist",
		"delays", "stalls", "drops", "parts", "crashes",
		"reconns", "resent", "skipped", "p50", "p99", "ok")
	for _, r := range reports {
		plan := r.Plan
		if plan == "" {
			plan = "-"
		}
		status := "pass"
		if !r.Passed() {
			status = "FAIL"
			if r.Err != "" {
				status = "ERR"
			}
		}
		tab.AddRow(r.Tree, r.N, r.T, r.Seed, plan, r.Adversary,
			r.Rounds, r.OracleMatch, r.Valid, r.MaxDist,
			r.Delays, r.Stalls, r.Drops, r.Partitions, r.Crashes,
			r.Reconnects, r.FramesResent, r.FramesSkip, r.P50, r.P99, status)
	}
	return tab
}
