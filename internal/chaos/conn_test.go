package chaos

import (
	"io"
	"net"
	"testing"
	"time"

	"treeaa/internal/metrics"
)

// eorFrame hand-builds a minimal end-of-round frame (the framing layout is
// pinned by internal/transport's own tests; chaos only needs *a* valid
// round-carrying frame to steer its windows).
func eorFrame(round byte) []byte {
	return []byte{3, 0x04, round, 0x00} // len=3 | eor | round | flags
}

// helloFrame hand-builds a minimal control frame (type hello).
func helloFrame() []byte {
	return []byte{1, 0x01} // len=1 | hello
}

// drainedPipe returns a pipe whose far end is continuously drained, so
// writes through the chaos wrapper never block on the reader.
func drainedPipe(t *testing.T) net.Conn {
	t.Helper()
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })
	go io.Copy(io.Discard, c2)
	return c1
}

func TestConnLatencyAndStallCounters(t *testing.T) {
	stats := &metrics.ChaosStats{}
	in := NewInjector(MustParse("lat:100µs±100µs,stall:p0@r1:100µs"), 1, stats)
	conn := in.WrapConn(0, 1, drainedPipe(t))

	for _, f := range [][]byte{helloFrame(), eorFrame(1), eorFrame(2)} {
		if _, err := conn.Write(f); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if got := stats.Delays.Load(); got != 2 {
		t.Errorf("Delays = %d, want 2 (hello is exempt)", got)
	}
	if got := stats.Stalls.Load(); got != 1 {
		t.Errorf("Stalls = %d, want 1 (only round 1 is in the window)", got)
	}
}

func TestConnDropFiresOnce(t *testing.T) {
	stats := &metrics.ChaosStats{}
	in := NewInjector(MustParse("drop:p0-p1@r2"), 1, stats)

	conn := in.WrapConn(0, 1, drainedPipe(t))
	if _, err := conn.Write(eorFrame(1)); err != nil {
		t.Fatalf("round 1 write: %v", err)
	}
	if _, err := conn.Write(eorFrame(2)); err == nil {
		t.Fatal("round 2 write survived the drop clause")
	}

	// The transport's reconnect path wraps a fresh connection of the same
	// link; the clause must not fire again.
	conn = in.WrapConn(0, 1, drainedPipe(t))
	if _, err := conn.Write(eorFrame(2)); err != nil {
		t.Fatalf("round 2 write after reconnect: %v", err)
	}
	if got := stats.Drops.Load(); got != 1 {
		t.Errorf("Drops = %d, want 1", got)
	}

	// Other links are untouched.
	other := in.WrapConn(0, 2, drainedPipe(t))
	if _, err := other.Write(eorFrame(2)); err != nil {
		t.Fatalf("0→2 write: %v", err)
	}
}

func TestConnPartitionHolds(t *testing.T) {
	stats := &metrics.ChaosStats{}
	in := NewInjector(MustParse("partition:{0|1}@r1-2:60ms"), 1, stats)

	cut := in.WrapConn(0, 1, drainedPipe(t))
	start := time.Now()
	if _, err := cut.Write(eorFrame(1)); err != nil {
		t.Fatal(err)
	}
	if held := time.Since(start); held < 40*time.Millisecond {
		t.Errorf("cross-cut frame held %v, want ≈ 60ms", held)
	}
	if got := stats.Partitions.Load(); got != 1 {
		t.Errorf("Partitions = %d, want 1", got)
	}

	// After the heal deadline the cut is open.
	start = time.Now()
	if _, err := cut.Write(eorFrame(2)); err != nil {
		t.Fatal(err)
	}
	if held := time.Since(start); held > 20*time.Millisecond {
		t.Errorf("post-heal frame held %v, want immediate", held)
	}

	// A same-side link never crossed the cut.
	uncut := in.WrapConn(2, 3, drainedPipe(t))
	start = time.Now()
	if _, err := uncut.Write(eorFrame(1)); err != nil {
		t.Fatal(err)
	}
	if held := time.Since(start); held > 20*time.Millisecond {
		t.Errorf("same-side frame held %v, want immediate", held)
	}
}
