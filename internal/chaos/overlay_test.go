package chaos

import (
	"reflect"
	"testing"
	"time"

	"treeaa/internal/core"
	"treeaa/internal/metrics"
	"treeaa/internal/overlay"
	"treeaa/internal/sim"
	"treeaa/internal/tree"
)

// TestOverlayInteriorCrash drives the tree overlay's recovery path from a
// parsed chaos plan — the same wiring cmd/node -overlay uses. A sub-leader
// crashes mid-round, so its leaves must re-home to the next sub-leader in
// the ring and pull the stranded frames there; one round later a leaf that
// just re-homed crashes too, restarts blank, and rebuilds through the
// handshake replay. The run must stay byte-identical to the sequential
// sim.Run oracle: that equality is the no-lost-message and
// no-duplicate-delivery assertion in its strongest form, since message
// counts, outputs, rounds and traces all enter the comparison.
func TestOverlayInteriorCrash(t *testing.T) {
	plan := MustParse("crash:p1@r2,crash:p7@r3")
	if !plan.CrashOnly() {
		t.Fatal("crash-only plan misclassified")
	}
	if plan.Empty() || !plan.NeedsReconnect() {
		t.Fatal("crash plan misclassified as empty or connection-preserving")
	}

	tr := tree.NewPath(8)
	const n, branching, tcorrupt = 12, 3, 3
	inputs := make([]tree.VertexID, n)
	for i := range inputs {
		inputs[i] = tree.VertexID((i * (tr.NumVertices() - 1) / (n - 1)) % tr.NumVertices())
	}
	machines := func() []sim.Machine {
		ms := make([]sim.Machine, n)
		for i := 0; i < n; i++ {
			m, err := core.NewMachine(core.Config{Tree: tr, N: n, T: tcorrupt,
				ID: sim.PartyID(i), Input: inputs[i]})
			if err != nil {
				t.Fatal(err)
			}
			ms[i] = m
		}
		return ms
	}

	cfg := sim.Config{N: n, MaxCorrupt: tcorrupt, MaxRounds: core.Rounds(tr) + 2}
	want, err := sim.Run(cfg, machines())
	if err != nil {
		t.Fatal(err)
	}

	var stats metrics.OverlayStats
	got, err := overlay.Cluster(cfg, machines(), overlay.Options{
		Branching:       branching,
		Stats:           &stats,
		CrashPlan:       plan.Crashes,
		FailoverTimeout: 500 * time.Millisecond,
		Restart: func(p sim.PartyID) (sim.Machine, error) {
			return core.NewMachine(core.Config{Tree: tr, N: n, T: tcorrupt, ID: p, Input: inputs[p]})
		},
	})
	if err != nil {
		t.Fatalf("overlay cluster under %q: %v", plan.Spec, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("results diverge from the oracle\ntree: %+v\n sim: %+v", got, want)
	}
	if fo := stats.Failovers.Load(); fo < 1 {
		t.Errorf("Failovers = %d, want ≥ 1 (orphaned leaves must re-home)", fo)
	}
	if rp := stats.Replayed.Load(); rp < 1 {
		t.Errorf("Replayed = %d, want ≥ 1 (rejoining seats must pull history)", rp)
	}
	if dd := stats.DedupDropped.Load(); dd < 1 {
		t.Errorf("DedupDropped = %d, want ≥ 1 (restarted seats re-flood; the watermark filter must absorb it)", dd)
	}
	t.Logf("interior crash under %q: %s", plan.Spec, stats.String())
}

// TestOverlayRejectsLinkFaults pins the crash-only gate the CLI relies on:
// a plan with any link-level clause cannot ride the overlay.
func TestOverlayRejectsLinkFaults(t *testing.T) {
	for spec, crashOnly := range map[string]bool{
		"":                          true,
		"crash:p1@r2":               true,
		"lat:1ms":                   false,
		"stall:p2@r1-2":             false,
		"drop:p0-p1@r2":             false,
		"partition:{0-1|2-3}@r2":    false,
		"crash:p1@r2,lat:1ms±500µs": false,
	} {
		if got := MustParse(spec).CrashOnly(); got != crashOnly {
			t.Errorf("CrashOnly(%q) = %v, want %v", spec, got, crashOnly)
		}
	}
}
